(* depfast-check: systematic schedule-space exploration with fail-slow
   sanitizer invariants and static-certificate cross-checking.

   Runs each named scenario (default: every gating scenario in the
   registry) through the explorer: bounded DFS over chooser-decision
   prefixes with persistent-set (DPOR-lite) pruning, a sanitizer auditing
   every terminal state (lost wakeups, double wakes, unsatisfiable and
   abandoned waits, quorum counter consistency, per-link FIFO), Spg.audit
   over each terminal trace, and — unless --no-certs — a cross-check of
   dynamic violations against the static wait-structure certificates
   computed over the library sources.

   Exit discipline matches depfast_lint: 0 when no finding gates, 1 when
   findings gate, 2 on usage errors. *)

let usage =
  "usage: depfast_check [--list] [--all] [--format text|json] [--no-certs] \
   [--certs-root dir]* [--max-schedules n] [--max-steps n] [--max-depth n] \
   [--delay-bound n] [--jobs n] [--quiet] [scenario ...]"

type opts = {
  mutable format : [ `Text | `Json ];
  mutable quiet : bool;
  mutable list_only : bool;
  mutable run_all : bool;
  mutable no_certs : bool;
  mutable certs_roots : string list;
  mutable max_schedules : int option;
  mutable max_steps : int option;
  mutable max_depth : int option;
  mutable delay_bound : int option;
  mutable jobs : int;
  mutable names : string list;
}

let parse_args () =
  let o =
    {
      format = `Text;
      quiet = false;
      list_only = false;
      run_all = false;
      no_certs = false;
      certs_roots = [];
      max_schedules = None;
      max_steps = None;
      max_depth = None;
      delay_bound = None;
      jobs = 1;
      names = [];
    }
  in
  let expect = ref None in
  let int_arg name v =
    match int_of_string_opt v with
    | Some n when n > 0 -> n
    | _ ->
      Printf.eprintf "depfast_check: %s needs a positive integer, got %S\n" name v;
      exit 2
  in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match !expect with
        | Some key ->
          expect := None;
          (match key with
          | `Format -> (
            match arg with
            | "text" -> o.format <- `Text
            | "json" -> o.format <- `Json
            | other ->
              Printf.eprintf "depfast_check: unknown format %S (want text or json)\n"
                other;
              exit 2)
          | `Certs_root -> o.certs_roots <- o.certs_roots @ [ arg ]
          | `Max_schedules -> o.max_schedules <- Some (int_arg "--max-schedules" arg)
          | `Max_steps -> o.max_steps <- Some (int_arg "--max-steps" arg)
          | `Max_depth -> o.max_depth <- Some (int_arg "--max-depth" arg)
          | `Delay_bound -> o.delay_bound <- Some (int_arg "--delay-bound" arg)
          | `Jobs -> (
            (* 0 means auto: one worker per available core (capped) *)
            match int_of_string_opt arg with
            | Some 0 -> o.jobs <- Sim.Dpool.recommended_jobs ()
            | Some n when n > 0 -> o.jobs <- n
            | _ ->
              Printf.eprintf
                "depfast_check: --jobs needs a non-negative integer, got %S\n" arg;
              exit 2))
        | None -> (
          match arg with
          | "--list" -> o.list_only <- true
          | "--all" -> o.run_all <- true
          | "--quiet" | "-q" -> o.quiet <- true
          | "--no-certs" -> o.no_certs <- true
          | "--format" -> expect := Some `Format
          | "--certs-root" -> expect := Some `Certs_root
          | "--max-schedules" -> expect := Some `Max_schedules
          | "--max-steps" -> expect := Some `Max_steps
          | "--max-depth" -> expect := Some `Max_depth
          | "--delay-bound" -> expect := Some `Delay_bound
          | "--jobs" | "-j" -> expect := Some `Jobs
          | "--help" | "-h" ->
            print_endline usage;
            exit 0
          | p when String.length p > 0 && p.[0] = '-' ->
            Printf.eprintf "depfast_check: unknown option %s\n%s\n" p usage;
            exit 2
          | name -> o.names <- o.names @ [ name ]))
    Sys.argv;
  (match !expect with
  | Some _ ->
    Printf.eprintf "depfast_check: missing argument\n%s\n" usage;
    exit 2
  | None -> ());
  o

let budget_for o (sc : Check.Scenario.t) =
  let d = Check.Explore.default_budget in
  {
    Check.Explore.max_schedules =
      (match o.max_schedules with Some n -> n | None -> sc.Check.Scenario.default_schedules);
    max_steps = (match o.max_steps with Some n -> n | None -> d.Check.Explore.max_steps);
    max_depth = (match o.max_depth with Some n -> n | None -> d.Check.Explore.max_depth);
    delay_bound =
      (match o.delay_bound with Some n -> n | None -> d.Check.Explore.delay_bound);
  }

let default_certs_roots = [ "lib" ]

let () =
  let o = parse_args () in
  if o.list_only then begin
    List.iter
      (fun (sc : Check.Scenario.t) ->
        Printf.printf "%-22s %s%s\n" sc.Check.Scenario.name sc.Check.Scenario.descr
          (if sc.Check.Scenario.gating then "" else "  [not gating]"))
      Check.Registry.all;
    exit 0
  end;
  let scenarios =
    match (o.names, o.run_all) with
    | [], false -> Check.Registry.gating_scenarios
    | [], true -> Check.Registry.all
    | names, _ ->
      List.map
        (fun n ->
          match Check.Registry.find n with
          | Some sc -> sc
          | None ->
            Printf.eprintf "depfast_check: unknown scenario %S (try --list)\n" n;
            exit 2)
        names
  in
  let certs =
    if o.no_certs then None
    else begin
      let roots =
        match o.certs_roots with [] -> default_certs_roots | roots -> roots
      in
      let missing = List.filter (fun p -> not (Sys.file_exists p)) roots in
      if missing <> [] then begin
        Printf.eprintf "depfast_check: no such certificate root: %s\n"
          (String.concat ", " missing);
        exit 2
      end;
      Some (Check.Certificate.build ~roots ())
    end
  in
  let t0 = Unix.gettimeofday () in
  let results =
    List.map
      (fun sc ->
        Check.Explore.explore ~budget:(budget_for o sc) ?certs ~jobs:o.jobs sc)
      scenarios
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let all_findings = List.concat_map (fun r -> r.Check.Explore.findings) results in
  let gating = Analysis.Finding.gating ~strict:false all_findings in
  let total_schedules =
    List.fold_left (fun a r -> a + r.Check.Explore.schedules) 0 results
  in
  let total_pruned = List.fold_left (fun a r -> a + r.Check.Explore.pruned) 0 results in
  (match o.format with
  | `Text ->
    List.iter
      (fun (r : Check.Explore.result) ->
        Printf.printf "%-22s %6d schedules, %6d pruned, deepest %4d%s%s\n"
          r.Check.Explore.scenario r.Check.Explore.schedules r.Check.Explore.pruned
          r.Check.Explore.deepest
          (if r.Check.Explore.complete then "" else "  [budget hit]")
          (match List.length r.Check.Explore.findings with
          | 0 -> ""
          | n -> Printf.sprintf "  %d finding(s)" n);
        if not o.quiet then
          List.iter
            (fun f -> Printf.printf "  %s\n" (Analysis.Finding.to_string f))
            r.Check.Explore.findings)
      results;
    Printf.printf
      "depfast-check: %d scenario(s), %d schedules explored, %d pruned, %d finding(s), \
       %d gating, %.0f ms, %d job(s)%s\n"
      (List.length results) total_schedules total_pruned (List.length all_findings)
      (List.length gating) wall_ms o.jobs
      (match certs with
      | Some c ->
        Printf.sprintf " [certs: %d files, %d flagged, %d spg exposures]"
          (Check.Certificate.covered_count c)
          (List.length (Check.Certificate.flagged_files c))
          (Check.Certificate.exposure_count c)
      | None -> "")
  | `Json ->
    Printf.printf "{ \"scenarios\": %d, \"schedules\": %d, \"pruned\": %d, \
                   \"findings\": %d, \"gating\": %d, \"wall_ms\": %.1f, \"results\": [\n"
      (List.length results) total_schedules total_pruned (List.length all_findings)
      (List.length gating) wall_ms;
    let last = List.length results - 1 in
    List.iteri
      (fun i (r : Check.Explore.result) ->
        Printf.printf
          "  { \"scenario\": \"%s\", \"schedules\": %d, \"pruned\": %d, \
           \"truncated_runs\": %d, \"nonquiescent_runs\": %d, \"deepest\": %d, \
           \"complete\": %b, \"findings\": [%s] }%s\n"
          (Analysis.Finding.json_escape r.Check.Explore.scenario)
          r.Check.Explore.schedules r.Check.Explore.pruned r.Check.Explore.truncated_runs
          r.Check.Explore.nonquiescent_runs r.Check.Explore.deepest
          r.Check.Explore.complete
          (String.concat ", "
             (List.map Analysis.Finding.to_json r.Check.Explore.findings))
          (if i < last then "," else ""))
      results;
    print_string "] }\n");
  exit (if gating = [] then 0 else 1)
