(* depfast-lint: static fail-slow analysis over OCaml sources.

   Walks the given paths (default: lib examples bench), runs the
   per-file lint over every .ml file, — with [--interproc] — the
   whole-project pass (module summaries, cross-module red waits,
   lock-order cycles, quorum arity) over all of them together, and —
   with [--bounds] — the boundedness & timeout-coverage pass
   (unbounded-growth, missing-deadline, unbounded-retry) plus its
   boundedness certificates, and — with [--domains] — the domain-safety
   pass (the mutable-state inventory, ownership verdicts, and
   [unsafe-shared-state]) plus its domain-safety certificates, and —
   with [--spg] — the slowness-propagation pass (static exposure of
   every wait site to fail-slow resources: [red-exposure],
   [unreached-mitigation]) plus its propagation certificates.

   Exit discipline: 0 when nothing gates, 1 when findings gate, 2 on
   usage errors. By default only unallowed [error]-severity findings
   gate; [--strict] escalates every unallowed finding (warnings and
   infos included). [(* depfast-lint: allow rule-id *)] pragmas exempt
   findings either way. *)

let usage =
  "usage: depfast_lint [--quiet] [--strict] [--interproc] [--bounds] [--domains] \
   [--spg] [--format text|json] [--rules] [path ...]"

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || entry = ".git" then acc
           else walk (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" && not (Filename.check_suffix path ".pp.ml") then
    path :: acc
  else acc

let () =
  let quiet = ref false in
  let strict = ref false in
  let interproc = ref false in
  let bounds = ref false in
  let domains = ref false in
  let spg = ref false in
  let format = ref `Text in
  let paths = ref [] in
  let show_rules = ref false in
  let expect_format = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if !expect_format then begin
          expect_format := false;
          match arg with
          | "text" -> format := `Text
          | "json" -> format := `Json
          | other ->
            Printf.eprintf "depfast_lint: unknown format %S (want text or json)\n" other;
            exit 2
        end
        else
          match arg with
          | "--quiet" | "-q" -> quiet := true
          | "--strict" -> strict := true
          | "--interproc" -> interproc := true
          | "--bounds" -> bounds := true
          | "--domains" -> domains := true
          | "--spg" -> spg := true
          | "--format" -> expect_format := true
          | "--rules" -> show_rules := true
          | "--help" | "-h" ->
            print_endline usage;
            exit 0
          | p when String.length p > 0 && p.[0] = '-' ->
            Printf.eprintf "depfast_lint: unknown option %s\n%s\n" p usage;
            exit 2
          | p -> paths := p :: !paths)
    Sys.argv;
  if !expect_format then begin
    Printf.eprintf "depfast_lint: --format needs an argument (text or json)\n";
    exit 2
  end;
  if !show_rules then begin
    List.iter
      (fun (id, desc) -> Printf.printf "%-24s %s\n" id desc)
      Analysis.Finding.rules;
    exit 0
  end;
  let roots = match List.rev !paths with [] -> [ "lib"; "examples"; "bench" ] | ps -> ps in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) roots in
  if missing <> [] then begin
    Printf.eprintf "depfast_lint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let files = List.rev (List.fold_left (fun acc p -> walk p acc) [] roots) in
  (* each finding is tagged with its originating pass; identical findings
     reported by more than one pass are deduplicated, first pass wins *)
  let tagged =
    List.map (fun f -> ("source-lint", f)) (List.concat_map Analysis.Source_lint.lint_file files)
  in
  let tagged =
    if !interproc then
      tagged @ List.map (fun f -> ("interproc", f)) (Analysis.Interproc.analyze_files files)
    else tagged
  in
  let tagged, bcerts =
    if !bounds then begin
      let fs, certs = Analysis.Bounds.analyze_files files in
      (tagged @ List.map (fun f -> ("bounds", f)) fs, certs)
    end
    else (tagged, [])
  in
  let tagged, dcerts =
    if !domains then begin
      let fs, certs, _footprints = Analysis.Domains.analyze_files files in
      (tagged @ List.map (fun f -> ("domains", f)) fs, certs)
    end
    else (tagged, [])
  in
  let tagged, scerts =
    if !spg then begin
      let fs, certs, _exposures = Analysis.Spg_static.analyze_files files in
      (tagged @ List.map (fun f -> ("spg", f)) fs, certs)
    end
    else (tagged, [])
  in
  let certs = bcerts @ dcerts @ scerts in
  let tagged =
    List.stable_sort (fun (_, a) (_, b) -> Analysis.Finding.by_location a b) tagged
  in
  let tagged =
    let rec dedup = function
      | (p1, f1) :: (_, f2) :: rest when Analysis.Finding.by_location f1 f2 = 0 ->
        dedup ((p1, f1) :: rest)
      | x :: rest -> x :: dedup rest
      | [] -> []
    in
    dedup tagged
  in
  let findings = List.map snd tagged in
  let gating = Analysis.Finding.gating ~strict:!strict findings in
  let unallowed = Analysis.Finding.unallowed findings in
  let bounded, flagged =
    List.partition (fun c -> c.Analysis.Growth.c_verdict = Analysis.Growth.Bounded) bcerts
  in
  let unsafe_cells =
    List.filter (fun c -> c.Analysis.Growth.c_verdict = Analysis.Growth.Flagged) dcerts
  in
  (match !format with
  | `Text ->
    List.iter
      (fun (f : Analysis.Finding.t) ->
        if not (!quiet && f.Analysis.Finding.allowed) then
          print_endline (Analysis.Finding.to_string f))
      findings;
    Printf.printf "depfast-lint: %d file(s), %d finding(s), %d unallowed, %d gating%s%s%s%s\n"
      (List.length files) (List.length findings) (List.length unallowed)
      (List.length gating)
      (if !interproc then " [interproc]" else "")
      (if !bounds then
         Printf.sprintf " [bounds: %d site(s) certified, %d flagged]" (List.length bounded)
           (List.length flagged)
       else "")
      (if !domains then
         Printf.sprintf " [domains: %d cell(s), %d unsafe]" (List.length dcerts)
           (List.length unsafe_cells)
       else "")
      (if !spg then
         let waits, props =
           List.partition (fun c -> c.Analysis.Growth.c_kind = "wait") scerts
         in
         let red =
           List.filter
             (fun c -> c.Analysis.Growth.c_verdict = Analysis.Growth.Flagged)
             waits
         in
         Printf.sprintf " [spg: %d wait site(s), %d propagation edge(s), %d red-uncovered]"
           (List.length waits) (List.length props) (List.length red)
       else "")
  | `Json ->
    (* one JSON document: summary + findings array, one finding per line *)
    Printf.printf
      "{ \"files\": %d, \"findings\": %d, \"unallowed\": %d, \"gating\": %d, \
       \"interproc\": %b, \"bounds\": %b, \"domains\": %b, \"spg\": %b, \"strict\": %b, \
       \"results\": [\n"
      (List.length files) (List.length findings) (List.length unallowed)
      (List.length gating) !interproc !bounds !domains !spg !strict;
    let shown =
      if !quiet then
        List.filter (fun ((_, f) : _ * Analysis.Finding.t) -> not f.Analysis.Finding.allowed) tagged
      else tagged
    in
    List.iteri
      (fun i (pass, f) ->
        let json = Analysis.Finding.to_json f in
        (* graft the id and pass into the object: {"id": ..., "pass": ..., <fields>} *)
        let body = String.sub json 1 (String.length json - 1) in
        Printf.printf "  {\"id\": \"%s\", \"pass\": \"%s\", %s%s\n"
          (Analysis.Finding.stable_id ~pass f)
          pass body
          (if i < List.length shown - 1 then "," else ""))
      shown;
    if !bounds || !domains || !spg then begin
      Printf.printf "], \"certificates\": [\n";
      List.iteri
        (fun i c ->
          Printf.printf "  %s%s\n" (Analysis.Growth.cert_to_json c)
            (if i < List.length certs - 1 then "," else ""))
        certs;
      print_string "] }\n"
    end
    else print_string "] }\n");
  exit (if gating = [] then 0 else 1)
