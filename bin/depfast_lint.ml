(* depfast-lint: static fail-slow analysis over OCaml sources.

   Walks the given paths (default: lib examples bench), runs the
   per-file lint over every .ml file and — with [--interproc] — the
   whole-project pass (module summaries, cross-module red waits,
   lock-order cycles, quorum arity) over all of them together.

   Exit discipline: 0 when nothing gates, 1 when findings gate, 2 on
   usage errors. By default only unallowed [error]-severity findings
   gate; [--strict] escalates every unallowed finding (warnings and
   infos included). [(* depfast-lint: allow rule-id *)] pragmas exempt
   findings either way. *)

let usage =
  "usage: depfast_lint [--quiet] [--strict] [--interproc] [--format text|json] [--rules] \
   [path ...]"

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || entry = ".git" then acc
           else walk (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" && not (Filename.check_suffix path ".pp.ml") then
    path :: acc
  else acc

let () =
  let quiet = ref false in
  let strict = ref false in
  let interproc = ref false in
  let format = ref `Text in
  let paths = ref [] in
  let show_rules = ref false in
  let expect_format = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        if !expect_format then begin
          expect_format := false;
          match arg with
          | "text" -> format := `Text
          | "json" -> format := `Json
          | other ->
            Printf.eprintf "depfast_lint: unknown format %S (want text or json)\n" other;
            exit 2
        end
        else
          match arg with
          | "--quiet" | "-q" -> quiet := true
          | "--strict" -> strict := true
          | "--interproc" -> interproc := true
          | "--format" -> expect_format := true
          | "--rules" -> show_rules := true
          | "--help" | "-h" ->
            print_endline usage;
            exit 0
          | p when String.length p > 0 && p.[0] = '-' ->
            Printf.eprintf "depfast_lint: unknown option %s\n%s\n" p usage;
            exit 2
          | p -> paths := p :: !paths)
    Sys.argv;
  if !expect_format then begin
    Printf.eprintf "depfast_lint: --format needs an argument (text or json)\n";
    exit 2
  end;
  if !show_rules then begin
    List.iter
      (fun (id, desc) -> Printf.printf "%-24s %s\n" id desc)
      Analysis.Finding.rules;
    exit 0
  end;
  let roots = match List.rev !paths with [] -> [ "lib"; "examples"; "bench" ] | ps -> ps in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) roots in
  if missing <> [] then begin
    Printf.eprintf "depfast_lint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let files = List.rev (List.fold_left (fun acc p -> walk p acc) [] roots) in
  let findings = List.concat_map Analysis.Source_lint.lint_file files in
  let findings =
    if !interproc then findings @ Analysis.Interproc.analyze_files files else findings
  in
  let findings = List.sort Analysis.Finding.by_location findings in
  let gating = Analysis.Finding.gating ~strict:!strict findings in
  let unallowed = Analysis.Finding.unallowed findings in
  (match !format with
  | `Text ->
    List.iter
      (fun (f : Analysis.Finding.t) ->
        if not (!quiet && f.Analysis.Finding.allowed) then
          print_endline (Analysis.Finding.to_string f))
      findings;
    Printf.printf "depfast-lint: %d file(s), %d finding(s), %d unallowed, %d gating%s\n"
      (List.length files) (List.length findings) (List.length unallowed)
      (List.length gating)
      (if !interproc then " [interproc]" else "")
  | `Json ->
    (* one JSON document: summary + findings array, one finding per line *)
    Printf.printf
      "{ \"files\": %d, \"findings\": %d, \"unallowed\": %d, \"gating\": %d, \
       \"interproc\": %b, \"strict\": %b, \"results\": [\n"
      (List.length files) (List.length findings) (List.length unallowed)
      (List.length gating) !interproc !strict;
    let shown =
      if !quiet then List.filter (fun (f : Analysis.Finding.t) -> not f.allowed) findings
      else findings
    in
    List.iteri
      (fun i f ->
        Printf.printf "  %s%s\n" (Analysis.Finding.to_json f)
          (if i < List.length shown - 1 then "," else ""))
      shown;
    print_string "] }\n");
  exit (if gating = [] then 0 else 1)
