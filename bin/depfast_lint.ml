(* depfast-lint: static fail-slow analysis over OCaml sources.

   Walks the given paths (default: lib examples bench), lints every .ml
   file and prints findings. Exits non-zero iff any finding is not
   exempted by a [(* depfast-lint: allow rule-id *)] pragma, so the
   @lint dune alias gates CI on it. *)

let usage = "usage: depfast_lint [--quiet] [--rules] [path ...]"

let rec walk path acc =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || entry = ".git" then acc
           else walk (Filename.concat path entry) acc)
         acc
  else if Filename.check_suffix path ".ml" && not (Filename.check_suffix path ".pp.ml") then
    path :: acc
  else acc

let () =
  let quiet = ref false in
  let paths = ref [] in
  let show_rules = ref false in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quiet" | "-q" -> quiet := true
        | "--rules" -> show_rules := true
        | "--help" | "-h" ->
          print_endline usage;
          exit 0
        | p -> paths := p :: !paths)
    Sys.argv;
  if !show_rules then begin
    List.iter
      (fun (id, desc) -> Printf.printf "%-18s %s\n" id desc)
      Analysis.Finding.rules;
    exit 0
  end;
  let roots = match List.rev !paths with [] -> [ "lib"; "examples"; "bench" ] | ps -> ps in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) roots in
  if missing <> [] then begin
    Printf.eprintf "depfast_lint: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let files = List.rev (List.fold_left (fun acc p -> walk p acc) [] roots) in
  let findings = List.concat_map Analysis.Source_lint.lint_file files in
  let findings = List.sort Analysis.Finding.by_location findings in
  let bad = Analysis.Finding.unallowed findings in
  List.iter
    (fun (f : Analysis.Finding.t) ->
      if not (!quiet && f.Analysis.Finding.allowed) then
        print_endline (Analysis.Finding.to_string f))
    findings;
  Printf.printf "depfast-lint: %d file(s), %d finding(s), %d unallowed\n" (List.length files)
    (List.length findings) (List.length bad);
  exit (if bad = [] then 0 else 1)
