(* Smoke tests of the experiment harness: every table/figure generator runs
   and produces sane, structurally correct results (tiny parameters). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny =
  {
    Harness.Params.seed = 7L;
    clients = 32;
    warmup = Sim.Time.ms 300;
    duration = Sim.Time.sec 2;
    records = 2_000;
    value_size = 1024;
  }

let test_table1_rows () =
  let rows = Harness.Table1.rows () in
  check_int "six faults" 6 (List.length rows);
  List.iter
    (fun (name, paper, sim) ->
      check_bool "named" true (name <> "");
      check_bool "paper column" true (paper <> "");
      check_bool "sim column" true (sim <> ""))
    rows

let test_runner_depfast_cell () =
  let cell =
    Harness.Runner.run_cell ~params:tiny ~system:Harness.Runner.Depfast_raft ~n:3
      ~slow_count:1 ~fault:(Some Cluster.Fault.Cpu_slow) ()
  in
  let m = cell.Harness.Runner.metrics in
  check_bool "throughput > 0" true (Workload.Metrics.throughput m > 100.0);
  check_bool "no crash" false m.Workload.Metrics.leader_crashed;
  check_bool "latency sane" true (Workload.Metrics.mean_latency_ms m > 0.1)

let test_runner_all_systems_build () =
  List.iter
    (fun system ->
      let cell =
        Harness.Runner.run_cell ~params:tiny ~system ~n:3 ~slow_count:1 ~fault:None ()
      in
      check_bool
        (Harness.Runner.system_name system ^ " serves")
        true
        (Workload.Metrics.throughput cell.Harness.Runner.metrics > 100.0))
    Harness.Runner.all_systems

let test_fig2_structure () =
  let r = Harness.Fig2.run () in
  check_bool "audit passes" true r.Harness.Fig2.intra_group_tolerant;
  let greens = List.filter (fun e -> e.Depfast.Spg.color = Depfast.Spg.Green) r.Harness.Fig2.edges in
  let reds = List.filter (fun e -> e.Depfast.Spg.color = Depfast.Spg.Red) r.Harness.Fig2.edges in
  (* three quorums x two followers = 6 green edges; 3 client->leader reds *)
  check_int "six quorum edges" 6 (List.length greens);
  check_bool "client edges red" true (List.length reds >= 3);
  List.iter
    (fun e ->
      check_int "2-of-3 arity" 2 e.Depfast.Spg.quorum_k;
      check_int "over 3 children" 3 e.Depfast.Spg.quorum_n)
    greens;
  (* every red edge originates at a client (node id >= 100) *)
  List.iter (fun e -> check_bool "red from client" true (e.Depfast.Spg.src >= 100)) reds

let test_fig3_drift_band_quick () =
  (* quick single-setup variant of the §3.4 claim: CPU-slow follower on a
     3-node cluster stays within a loose drift band even at small scale *)
  let rows = Harness.Fig3.run_setup ~params:tiny ~n:3 () in
  check_int "seven rows" 7 (List.length rows);
  let base = List.hd rows in
  check_bool "baseline row is no-fault" true (base.Harness.Fig3.fault = None);
  List.iter
    (fun r ->
      check_bool
        (Harness.Runner.fault_name r.Harness.Fig3.fault ^ " tput drift bounded")
        true
        (Float.abs r.Harness.Fig3.drift_tput < 0.25))
    rows

let test_minority_counts () =
  check_int "3 nodes -> 1 slow" 1 (Harness.Fig3.minority 3);
  check_int "5 nodes -> 2 slow" 2 (Harness.Fig3.minority 5);
  check_int "7 nodes -> 3 slow" 3 (Harness.Fig3.minority 7)

let suite =
  [
    ( "harness",
      [
        Alcotest.test_case "table1 rows" `Quick test_table1_rows;
        Alcotest.test_case "depfast cell runs" `Quick test_runner_depfast_cell;
        Alcotest.test_case "all systems build" `Slow test_runner_all_systems_build;
        Alcotest.test_case "fig2 structure" `Quick test_fig2_structure;
        Alcotest.test_case "fig3 drift (quick)" `Slow test_fig3_drift_band_quick;
        Alcotest.test_case "minority sizing" `Quick test_minority_counts;
      ] );
  ]
