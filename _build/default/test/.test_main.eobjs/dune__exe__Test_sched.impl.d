test/test_sched.ml: Alcotest Depfast Event List Sched Sim Spg String Trace
