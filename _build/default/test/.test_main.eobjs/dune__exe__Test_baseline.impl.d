test/test_baseline.ml: Alcotest Baseline Cluster Depfast List Raft Sim Workload
