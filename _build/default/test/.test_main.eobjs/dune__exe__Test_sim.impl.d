test/test_sim.ml: Alcotest Array Dist Engine Float Fun Gen Heap Hist List QCheck QCheck_alcotest Rng Sim Time
