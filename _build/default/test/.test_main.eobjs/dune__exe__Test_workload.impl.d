test/test_workload.ml: Alcotest Cluster Depfast Float Hashtbl List Option Sim String Workload
