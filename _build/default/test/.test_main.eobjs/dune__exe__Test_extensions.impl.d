test/test_extensions.ml: Alcotest Cluster Depfast List Raft Sim
