test/test_harness.ml: Alcotest Cluster Depfast Float Harness List Sim Workload
