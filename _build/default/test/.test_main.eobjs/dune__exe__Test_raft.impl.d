test/test_raft.ml: Alcotest Cluster Depfast Hashtbl List Option Printf Raft Sim
