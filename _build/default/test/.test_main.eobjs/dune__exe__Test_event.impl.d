test/test_event.ml: Alcotest Array Depfast Event Fun Int64 List QCheck QCheck_alcotest Sim
