test/test_cluster.ml: Alcotest Cluster Depfast Float List Sim String
