test/test_properties.ml: Cluster Depfast Fun Gen Hashtbl Int64 List Option Printf QCheck QCheck_alcotest Raft Sim
