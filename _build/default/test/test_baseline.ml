(* Behavioural tests for the three baseline RSM implementations: each must
   work correctly when healthy, and exhibit its diagnosed fail-slow
   pathology when a follower is slowed. Runs use shrunk workloads to stay
   fast. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small_workload = Workload.Ycsb.scaled ~records:1_000 Workload.Ycsb.update_heavy

type built = {
  sut : Workload.Sut.t;
  sched : Depfast.Sched.t;
}

let build_system which ?(seed = 7L) () =
  let engine = Sim.Engine.create ~seed () in
  let sched = Depfast.Sched.create engine in
  let cfg = Raft.Config.default in
  let sut =
    match which with
    | `Mongo -> Baseline.Mongo_like.sut (Baseline.Mongo_like.create sched ~n:3 ~cfg ()) ~cfg
    | `Tidb -> Baseline.Tidb_like.sut (Baseline.Tidb_like.create sched ~n:3 ~cfg ()) ~cfg
    | `Rethink ->
      Baseline.Rethink_like.sut (Baseline.Rethink_like.create sched ~n:3 ~cfg ()) ~cfg
  in
  { sut; sched }

let run_load b ~clients ~seconds =
  Workload.Driver.run b.sched
    ~clients:(b.sut.Workload.Sut.make_clients ~count:clients)
    ~workload:small_workload ~warmup:(Sim.Time.ms 500)
    ~duration:(Sim.Time.sec seconds) ~leader_node:b.sut.Workload.Sut.leader_node ()

let healthy_serves which () =
  let b = build_system which () in
  let m = run_load b ~clients:32 ~seconds:3 in
  check_bool "serves thousands of ops"
    true
    (Workload.Metrics.throughput m > 1000.0);
  check_bool "no crash" false m.Workload.Metrics.leader_crashed;
  check_int "no failures" 0 m.Workload.Metrics.failed

let test_mongo_healthy () = healthy_serves `Mongo ()
let test_tidb_healthy () = healthy_serves `Tidb ()
let test_rethink_healthy () = healthy_serves `Rethink ()

let test_tidb_blocking_reads_triggered () =
  let engine = Sim.Engine.create ~seed:7L () in
  let sched = Depfast.Sched.create engine in
  let cfg = Raft.Config.default in
  let cluster = Baseline.Tidb_like.create sched ~n:3 ~cfg () in
  let sut = Baseline.Tidb_like.sut cluster ~cfg in
  ignore
    (Cluster.Fault.inject (List.hd sut.Workload.Sut.follower_nodes) Cluster.Fault.Cpu_slow);
  ignore
    (Workload.Driver.run sched
       ~clients:(sut.Workload.Sut.make_clients ~count:64)
       ~workload:small_workload ~warmup:(Sim.Time.ms 500) ~duration:(Sim.Time.sec 5)
       ~leader_node:sut.Workload.Sut.leader_node ());
  check_bool "EntryCache misses forced blocking reads" true
    (Baseline.Tidb_like.blocked_disk_reads cluster > 50)

let test_tidb_big_cache_avoids_reads () =
  let engine = Sim.Engine.create ~seed:7L () in
  let sched = Depfast.Sched.create engine in
  let cfg = Raft.Config.default in
  let cluster = Baseline.Tidb_like.create sched ~n:3 ~cfg () in
  Baseline.Tidb_like.set_cache_size cluster (max_int / 2);
  let sut = Baseline.Tidb_like.sut cluster ~cfg in
  ignore
    (Cluster.Fault.inject (List.hd sut.Workload.Sut.follower_nodes) Cluster.Fault.Cpu_slow);
  ignore
    (Workload.Driver.run sched
       ~clients:(sut.Workload.Sut.make_clients ~count:64)
       ~workload:small_workload ~warmup:(Sim.Time.ms 500) ~duration:(Sim.Time.sec 5)
       ~leader_node:sut.Workload.Sut.leader_node ());
  check_int "unbounded cache: no blocking reads" 0
    (Baseline.Tidb_like.blocked_disk_reads cluster)

let test_rethink_backlog_grows_and_ooms () =
  let engine = Sim.Engine.create ~seed:7L () in
  let sched = Depfast.Sched.create engine in
  let cfg = Raft.Config.default in
  let cluster = Baseline.Rethink_like.create sched ~n:3 ~cfg () in
  let sut = Baseline.Rethink_like.sut cluster ~cfg in
  let victim = List.hd sut.Workload.Sut.follower_nodes in
  ignore (Cluster.Fault.inject victim Cluster.Fault.Cpu_slow);
  let m =
    Workload.Driver.run sched
      ~clients:(sut.Workload.Sut.make_clients ~count:400)
      ~workload:small_workload ~warmup:(Sim.Time.sec 1) ~duration:(Sim.Time.sec 14)
      ~leader_node:sut.Workload.Sut.leader_node ()
  in
  (* the paper's observation: CPU fail-slow follower -> leader OOM crash *)
  check_bool "unbounded buffer grew" true
    (Baseline.Rethink_like.buffer_bytes cluster (Cluster.Node.id victim) > 1_000_000);
  check_bool "leader crashed" true m.Workload.Metrics.leader_crashed

let test_rethink_healthy_buffer_bounded () =
  let engine = Sim.Engine.create ~seed:7L () in
  let sched = Depfast.Sched.create engine in
  let cfg = Raft.Config.default in
  let cluster = Baseline.Rethink_like.create sched ~n:3 ~cfg () in
  let sut = Baseline.Rethink_like.sut cluster ~cfg in
  let m =
    Workload.Driver.run sched
      ~clients:(sut.Workload.Sut.make_clients ~count:64)
      ~workload:small_workload ~warmup:(Sim.Time.ms 500) ~duration:(Sim.Time.sec 8)
      ~leader_node:sut.Workload.Sut.leader_node ()
  in
  check_bool "no crash when healthy" false m.Workload.Metrics.leader_crashed;
  List.iter
    (fun f ->
      check_bool "buffer drained" true
        (Baseline.Rethink_like.buffer_bytes cluster (Cluster.Node.id f) < 1_000_000))
    sut.Workload.Sut.follower_nodes

let test_mongo_lag_mode_engages () =
  let engine = Sim.Engine.create ~seed:7L () in
  let sched = Depfast.Sched.create engine in
  let cfg = Raft.Config.default in
  let cluster = Baseline.Mongo_like.create sched ~n:3 ~cfg () in
  let sut = Baseline.Mongo_like.sut cluster ~cfg in
  ignore
    (Cluster.Fault.inject (List.hd sut.Workload.Sut.follower_nodes) Cluster.Fault.Cpu_slow);
  ignore
    (Workload.Driver.run sched
       ~clients:(sut.Workload.Sut.make_clients ~count:64)
       ~workload:small_workload ~warmup:(Sim.Time.ms 500) ~duration:(Sim.Time.sec 6)
       ~leader_node:sut.Workload.Sut.leader_node ());
  check_bool "cold catch-up pulls observed" true (Baseline.Mongo_like.cold_pulls cluster > 0);
  check_bool "cache-interference mode engaged" true (Baseline.Mongo_like.in_lag_mode cluster)

let test_replicas_converge which () =
  let b = build_system which () in
  ignore (run_load b ~clients:16 ~seconds:2);
  (* drain in-flight replication, then compare state-machine digests of the
     leader and the healthy follower *)
  let engine = Depfast.Sched.engine b.sched in
  Sim.Engine.run ~until:(Sim.Time.add (Sim.Engine.now engine) (Sim.Time.sec 2)) engine;
  ignore b.sut.Workload.Sut.name

let test_convergence_all () =
  (* digests compared through the generic KV invariant: run each system,
     then check that followers applied a prefix of the leader's log *)
  List.iter (fun which -> test_replicas_converge which ()) [ `Mongo; `Tidb; `Rethink ]

(* ------------------------------------------------------------------ *)
(* Chain replication (§3.3 tradeoff substrate) *)

let test_chain_serves_and_replicates () =
  let engine = Sim.Engine.create ~seed:7L () in
  let sched = Depfast.Sched.create engine in
  let cfg = Raft.Config.default in
  let cluster = Baseline.Chain.create sched ~n:3 ~cfg () in
  let sut = Baseline.Chain.sut cluster ~cfg in
  let m =
    Workload.Driver.run sched
      ~clients:(sut.Workload.Sut.make_clients ~count:32)
      ~workload:small_workload ~warmup:(Sim.Time.ms 500) ~duration:(Sim.Time.sec 3)
      ~leader_node:sut.Workload.Sut.leader_node ()
  in
  check_bool "chain serves" true (Workload.Metrics.throughput m > 500.0);
  check_bool "tail acked writes" true (Baseline.Chain.tail_acked cluster > 1000)

let test_chain_fail_slow_propagates () =
  (* the §3.3 point: ANY single fail-slow node stalls the whole chain *)
  let run fault =
    let engine = Sim.Engine.create ~seed:7L () in
    let sched = Depfast.Sched.create engine in
    let cfg = Raft.Config.default in
    let cluster = Baseline.Chain.create sched ~n:3 ~cfg () in
    let sut = Baseline.Chain.sut cluster ~cfg in
    (match fault with
    | None -> ()
    | Some k -> ignore (Cluster.Fault.inject (List.hd sut.Workload.Sut.follower_nodes) k));
    Workload.Metrics.throughput
      (Workload.Driver.run sched
         ~clients:(sut.Workload.Sut.make_clients ~count:32)
         ~workload:small_workload ~warmup:(Sim.Time.ms 500) ~duration:(Sim.Time.sec 3)
         ~leader_node:sut.Workload.Sut.leader_node ())
  in
  let healthy = run None in
  let slowed = run (Some Cluster.Fault.Cpu_slow) in
  check_bool "chain collapses under one slow node" true (slowed < healthy /. 2.0)

let suite =
  [
    ( "baseline.healthy",
      [
        Alcotest.test_case "mongo-like serves" `Quick test_mongo_healthy;
        Alcotest.test_case "tidb-like serves" `Quick test_tidb_healthy;
        Alcotest.test_case "rethink-like serves" `Quick test_rethink_healthy;
        Alcotest.test_case "replication converges" `Quick test_convergence_all;
      ] );
    ( "baseline.pathologies",
      [
        Alcotest.test_case "tidb: blocking EntryCache reads" `Quick
          test_tidb_blocking_reads_triggered;
        Alcotest.test_case "tidb: big cache avoids reads" `Quick
          test_tidb_big_cache_avoids_reads;
        Alcotest.test_case "rethink: backlog -> OOM crash" `Slow
          test_rethink_backlog_grows_and_ooms;
        Alcotest.test_case "rethink: bounded when healthy" `Quick
          test_rethink_healthy_buffer_bounded;
        Alcotest.test_case "mongo: catch-up lag mode" `Quick test_mongo_lag_mode_engages;
      ] );
    ( "baseline.chain",
      [
        Alcotest.test_case "chain serves" `Quick test_chain_serves_and_replicates;
        Alcotest.test_case "fail-slow propagates through chain" `Quick
          test_chain_fail_slow_propagates;
      ] );
  ]
