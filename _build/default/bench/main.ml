(** The benchmark harness: regenerates every table and figure of the paper
    (Table 1, Figures 1-3), the ablations, the §5 mitigation experiment, and
    the bechamel microbenchmarks.

    Usage:
      bench/main.exe                  run everything (full parameters)
      bench/main.exe --quick          run everything with small parameters
      bench/main.exe fig1 [--quick]   one experiment (table1 | fig1 | fig2 |
                                      fig3 | ablation | mitigation | micro)
*)

let params quick = if quick then Harness.Params.quick else Harness.Params.full

let run_experiment quick = function
  | "table1" -> Harness.Table1.print ()
  | "fig1" -> Harness.Fig1.print ~params:(params quick) ()
  | "fig2" -> Harness.Fig2.print ()
  | "fig3" -> Harness.Fig3.print ~params:(params quick) ()
  | "ablation" -> Harness.Ablation.print ~params:(params quick) ()
  | "mitigation" -> Harness.Mitigation.print ~params:(params quick) ()
  | "micro" -> Micro.run ()
  | other ->
    Printf.eprintf
      "unknown experiment %S (expected table1|fig1|fig2|fig3|ablation|mitigation|micro)\n"
      other;
    exit 2

let all = [ "table1"; "fig1"; "fig2"; "fig3"; "ablation"; "mitigation"; "micro" ]

let () =
  let quick = ref false in
  let names = ref [] in
  let spec = [ ("--quick", Arg.Set quick, " use small parameters (CI-friendly)") ] in
  Arg.parse spec (fun a -> names := a :: !names) "bench/main.exe [--quick] [experiment...]";
  let names = if !names = [] then all else List.rev !names in
  List.iter (run_experiment !quick) names
