bench/micro.ml: Analyze Bechamel Benchmark Depfast Hashtbl Instance List Measure Printf Raft Sim Staged Test Time Toolkit
