bench/main.ml: Arg Harness List Micro Printf
