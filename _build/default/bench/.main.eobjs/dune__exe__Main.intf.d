bench/main.mli:
