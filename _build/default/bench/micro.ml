(** Bechamel microbenchmarks of the DepFast core primitives. *)

open Bechamel
open Toolkit

let bench_event_fire =
  Test.make ~name:"event: create+fire signal"
    (Staged.stage (fun () ->
         let ev = Depfast.Event.signal () in
         Depfast.Event.fire ev))

let bench_quorum_propagation =
  Test.make ~name:"event: 5-child majority quorum fires"
    (Staged.stage (fun () ->
         let q = Depfast.Event.quorum Depfast.Event.Majority in
         let children = List.init 5 (fun i -> Depfast.Event.rpc_completion ~peer:i ()) in
         List.iter (fun c -> Depfast.Event.add q ~child:c) children;
         List.iter Depfast.Event.fire children;
         assert (Depfast.Event.is_ready q)))

let bench_nested_stallers =
  Test.make ~name:"event: stallers of 2PC-shaped tree"
    (Staged.stage
       (let shard base =
          let q = Depfast.Event.quorum Depfast.Event.Majority in
          for i = 0 to 2 do
            Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer:(base + i) ())
          done;
          q
        in
        let all = Depfast.Event.and_ () in
        Depfast.Event.add all ~child:(shard 0);
        Depfast.Event.add all ~child:(shard 3);
        fun () -> ignore (Depfast.Event.stallers all)))

let bench_coroutine_spawn =
  Test.make ~name:"sched: spawn+run 100 coroutines"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let sched = Depfast.Sched.create engine in
         for _ = 1 to 100 do
           Depfast.Sched.spawn sched (fun () -> Depfast.Sched.yield sched)
         done;
         Depfast.Sched.run sched))

let bench_coroutine_wait =
  Test.make ~name:"sched: 100 quorum waits over timers"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let sched = Depfast.Sched.create engine in
         for _ = 1 to 100 do
           Depfast.Sched.spawn sched (fun () ->
               let q = Depfast.Event.quorum Depfast.Event.Majority in
               Depfast.Event.add q ~child:(Depfast.Sched.timer sched 10);
               Depfast.Event.add q ~child:(Depfast.Sched.timer sched 20);
               Depfast.Event.add q ~child:(Depfast.Sched.timer sched 400);
               Depfast.Sched.wait sched q)
         done;
         Depfast.Sched.run sched))

let bench_engine_timers =
  Test.make ~name:"engine: 1000 timers through the heap"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         for i = 1 to 1000 do
           ignore (Sim.Engine.schedule engine ~delay:(i mod 97) (fun () -> ()))
         done;
         Sim.Engine.run engine))

let bench_hist =
  Test.make ~name:"hist: add + p99 over 1000 samples"
    (Staged.stage (fun () ->
         let h = Sim.Hist.create () in
         for i = 1 to 1000 do
           Sim.Hist.add h (i * 37 mod 100_000)
         done;
         ignore (Sim.Hist.p99 h)))

let bench_rlog =
  Test.make ~name:"rlog: append+slice 1000 entries"
    (Staged.stage (fun () ->
         let log = Raft.Rlog.create () in
         for i = 1 to 1000 do
           Raft.Rlog.append log
             { term = 1; index = i; cmd = Raft.Types.Nop; client_id = -1; seq = 0 }
         done;
         ignore (Raft.Rlog.slice log ~from:500 ~max:64)))

let all_tests =
  [
    bench_event_fire;
    bench_quorum_propagation;
    bench_nested_stallers;
    bench_coroutine_spawn;
    bench_coroutine_wait;
    bench_engine_timers;
    bench_hist;
    bench_rlog;
  ]

let run () =
  Printf.printf "\n=== Microbenchmarks (bechamel) ===\n\n%!";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-45s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-45s (no estimate)\n%!" name)
        analyzed)
    all_tests
