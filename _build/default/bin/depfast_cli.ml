(* depfast-cli: drive the simulated DepFastRaft cluster from the command
   line — run workloads under injected fail-slow faults, dump slowness
   propagation graphs, and list the fault catalog.

     dune exec bin/depfast_cli.exe -- run --nodes 3 --clients 64 \
         --fault cpu-slow --seconds 5
     dune exec bin/depfast_cli.exe -- spg --shards 3
     dune exec bin/depfast_cli.exe -- faults
*)

open Cmdliner

let fault_conv =
  let parse = function
    | "cpu-slow" -> Ok (Some Cluster.Fault.Cpu_slow)
    | "cpu-contention" -> Ok (Some Cluster.Fault.Cpu_contention)
    | "disk-slow" -> Ok (Some Cluster.Fault.Disk_slow)
    | "disk-contention" -> Ok (Some Cluster.Fault.Disk_contention)
    | "mem-contention" -> Ok (Some Cluster.Fault.Mem_contention)
    | "net-slow" -> Ok (Some Cluster.Fault.Net_slow)
    | "none" -> Ok None
    | s -> Error (`Msg (Printf.sprintf "unknown fault %S" s))
  in
  let print fmt f =
    Format.pp_print_string fmt
      (match f with None -> "none" | Some k -> Cluster.Fault.name k)
  in
  Arg.conv (parse, print)

(* ---- run ---- *)

let run_cmd =
  let nodes =
    Arg.(value & opt int 3 & info [ "nodes"; "n" ] ~doc:"Cluster size (odd).")
  in
  let clients = Arg.(value & opt int 64 & info [ "clients"; "c" ] ~doc:"Closed-loop clients.") in
  let seconds = Arg.(value & opt int 5 & info [ "seconds"; "t" ] ~doc:"Measured duration.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Simulation seed.") in
  let fault =
    Arg.(
      value
      & opt fault_conv None
      & info [ "fault"; "f" ]
          ~doc:
            "Fail-slow fault for a minority of followers: cpu-slow, \
             cpu-contention, disk-slow, disk-contention, mem-contention, \
             net-slow, or none.")
  in
  let action nodes clients seconds seed fault =
    let params =
      {
        Harness.Params.quick with
        seed = Int64.of_int seed;
        clients;
        duration = Sim.Time.sec seconds;
      }
    in
    let slow_count = ((nodes + 1) / 2) - 1 in
    let cell =
      Harness.Runner.run_cell ~params ~system:Harness.Runner.Depfast_raft ~n:nodes
        ~slow_count ~fault ()
    in
    Format.printf "DepFastRaft, %d nodes, fault = %s on %d follower(s):@." nodes
      (Harness.Runner.fault_name fault)
      (match fault with None -> 0 | Some _ -> slow_count);
    Format.printf "  %a@." Workload.Metrics.pp cell.Harness.Runner.metrics
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a YCSB-style write workload against DepFastRaft.")
    Term.(const action $ nodes $ clients $ seconds $ seed $ fault)

(* ---- spg ---- *)

let spg_cmd =
  let shards = Arg.(value & opt int 3 & info [ "shards" ] ~doc:"Raft groups (3 replicas each).") in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Print Graphviz only.") in
  let action shards dot =
    ignore shards;
    let r = Harness.Fig2.run () in
    if dot then print_string r.Harness.Fig2.dot
    else begin
      Depfast.Spg.pp ~node_name:r.Harness.Fig2.names Format.std_formatter r.Harness.Fig2.spg;
      Format.printf "audit: %s@."
        (if r.Harness.Fig2.intra_group_tolerant then "fail-slow tolerant" else "VIOLATIONS")
    end
  in
  Cmd.v
    (Cmd.info "spg" ~doc:"Record a trace and print the slowness propagation graph.")
    Term.(const action $ shards $ dot)

(* ---- faults ---- *)

let faults_cmd =
  let action () = Harness.Table1.print () in
  Cmd.v (Cmd.info "faults" ~doc:"List the Table-1 fault injection catalog.")
    Term.(const action $ const ())

let () =
  let doc = "fail-slow fault-tolerance sandbox (DepFast reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "depfast-cli" ~doc) [ run_cmd; spg_cmd; faults_cmd ]))
