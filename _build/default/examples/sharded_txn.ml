(* §5 future work, implemented: a sharded store with cross-shard
   transactions (2PC over multiple DepFastRaft groups).

   The coordinator's phase-1 wait is the paper's §3.2 nested-event idiom:

     Or( And(prepared on every shard), Or(any shard rejected) )

   where each per-shard outcome is itself produced by that shard's majority
   QuorumEvent. A fail-slow follower in any shard slows nothing.

   Run with:  dune exec examples/sharded_txn.exe *)

let () =
  let engine = Sim.Engine.create ~seed:3L () in
  let sched = Depfast.Sched.create engine in
  let store = Raft.Sharded.create sched ~shards:3 ~replicas:3 () in
  Raft.Sharded.bootstrap store;
  Printf.printf "3 shards x 3 replicas up; keys hash-partitioned\n";

  (* make one shard's follower fail slow: transactions must not care *)
  let g = List.hd (Raft.Sharded.groups store) in
  let victim = List.nth g.Raft.Group.nodes 1 in
  ignore (Cluster.Fault.inject victim Cluster.Fault.Cpu_slow);
  Printf.printf "injected CPU (slow) into a follower of shard 0\n\n";

  let alice = Raft.Sharded.session store ~id:1 in
  let mallory = Raft.Sharded.session store ~id:2 in
  Cluster.Node.spawn (Raft.Sharded.session_node alice) ~name:"alice" (fun () ->
      (* a cross-shard transfer: debit + credit atomically *)
      let t0 = Depfast.Sched.now sched in
      (match
         Raft.Sharded.txn alice
           ~writes:[ ("account/alice", "900"); ("account/bob", "1100") ]
       with
      | Raft.Sharded.Committed ->
        Printf.printf "[alice] transfer committed in %.1f ms across shards %d and %d\n"
          (Sim.Time.to_ms_f (Sim.Time.diff (Depfast.Sched.now sched) t0))
          (Raft.Sharded.shard_of store "account/alice")
          (Raft.Sharded.shard_of store "account/bob")
      | Raft.Sharded.Aborted -> Printf.printf "[alice] aborted\n"
      | Raft.Sharded.Failed -> Printf.printf "[alice] failed\n");
      (match Raft.Sharded.read alice ~key:"account/bob" with
      | Some (Some v) -> Printf.printf "[alice] reads bob = %s\n" v
      | _ -> Printf.printf "[alice] read failed\n"));
  Depfast.Sched.run ~until:(Sim.Time.sec 8) sched;

  (* conflicting transactions: locks make one abort *)
  let done_ = ref 0 in
  let attempt name s =
    Cluster.Node.spawn (Raft.Sharded.session_node s) ~name (fun () ->
        let r =
          Raft.Sharded.txn s
            ~writes:[ ("account/alice", "0"); ("account/bob", "2000") ]
        in
        incr done_;
        Printf.printf "[%s] %s\n" name
          (match r with
          | Raft.Sharded.Committed -> "committed"
          | Raft.Sharded.Aborted -> "aborted on lock conflict"
          | Raft.Sharded.Failed -> "failed"))
  in
  attempt "alice " alice;
  attempt "mallory" mallory;
  Depfast.Sched.run ~until:(Sim.Time.sec 20) sched;
  Printf.printf "\n%d/2 racing transactions resolved; locks released either way\n" !done_
