examples/kv_store.ml: Cluster Depfast List Option Printf Raft Sim
