examples/sharded_txn.ml: Cluster Depfast List Printf Raft Sim
