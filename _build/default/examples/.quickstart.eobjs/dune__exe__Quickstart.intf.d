examples/quickstart.mli:
