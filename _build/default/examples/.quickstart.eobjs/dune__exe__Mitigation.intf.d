examples/mitigation.mli:
