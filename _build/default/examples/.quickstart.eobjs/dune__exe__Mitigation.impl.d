examples/mitigation.ml: Cluster Depfast List Printf Raft Sim
