examples/sharded_txn.mli:
