examples/spg_analysis.ml: Cluster Depfast Format List Printf Raft Sim
