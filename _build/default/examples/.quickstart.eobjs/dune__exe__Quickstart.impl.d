examples/quickstart.ml: Depfast List Printf Sim
