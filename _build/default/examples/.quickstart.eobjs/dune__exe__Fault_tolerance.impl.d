examples/fault_tolerance.ml: Cluster Depfast List Printf Raft Sim String Workload
