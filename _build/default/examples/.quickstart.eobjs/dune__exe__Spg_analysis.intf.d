examples/spg_analysis.mli:
