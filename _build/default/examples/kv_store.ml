(* A replicated key-value store on DepFastRaft (§3.4).

   Boots a three-node cluster on the simulated datacenter, elects a leader,
   runs a few client sessions against it, then crashes the leader and shows
   the system re-electing and carrying on.

   Run with:  dune exec examples/kv_store.exe *)

let () =
  let engine = Sim.Engine.create ~seed:42L () in
  let sched = Depfast.Sched.create engine in
  let g = Raft.Group.create sched ~n:3 () in
  let clients = Raft.Group.make_clients g ~count:2 () in

  Depfast.Sched.spawn sched ~name:"main" (fun () ->
      (* wait for the randomized-timeout election to settle *)
      let leader =
        match Raft.Group.wait_for_leader g () with
        | Some s -> s
        | None -> failwith "no leader"
      in
      Printf.printf "[%4.0f ms] s%d elected leader (term %d)\n"
        (Sim.Time.to_ms_f (Depfast.Sched.now sched))
        (Raft.Server.id leader + 1)
        (Raft.Server.term leader);

      (* two client sessions write and read *)
      let c1 = List.nth clients 0 and c2 = List.nth clients 1 in
      assert (Raft.Client.put c1 ~key:"lang" ~value:"ocaml");
      assert (Raft.Client.put c2 ~key:"paper" ~value:"depfast");
      (match Raft.Client.get c1 ~key:"paper" with
      | Some (Some v) ->
        Printf.printf "[%4.0f ms] c1 reads paper = %S (linearizable, via the log)\n"
          (Sim.Time.to_ms_f (Depfast.Sched.now sched))
          v
      | _ -> failwith "read failed");

      (* kill the leader; a follower takes over *)
      Printf.printf "[%4.0f ms] crashing the leader...\n"
        (Sim.Time.to_ms_f (Depfast.Sched.now sched));
      Cluster.Node.crash (Raft.Server.node leader);
      assert (Raft.Client.put c1 ~key:"lang" ~value:"still ocaml");
      let new_leader = Option.get (Raft.Group.leader g) in
      Printf.printf "[%4.0f ms] s%d took over (term %d); write committed after crash\n"
        (Sim.Time.to_ms_f (Depfast.Sched.now sched))
        (Raft.Server.id new_leader + 1)
        (Raft.Server.term new_leader);

      (* replicas agree on the surviving majority *)
      let survivors =
        List.filter (fun s -> Cluster.Node.alive (Raft.Server.node s)) g.Raft.Group.servers
      in
      Depfast.Sched.sleep sched (Sim.Time.ms 500);
      (match survivors with
      | a :: rest ->
        List.iter
          (fun b ->
            assert (Raft.Kv.digest (Raft.Server.kv a) = Raft.Kv.digest (Raft.Server.kv b)))
          rest
      | [] -> ());
      Printf.printf "[%4.0f ms] surviving replicas agree on the store contents\n"
        (Sim.Time.to_ms_f (Depfast.Sched.now sched)));
  Depfast.Sched.run ~until:(Sim.Time.sec 30) sched
