(* §5 future work, implemented: detect a fail-slow LEADER from the
   commit-latency trace signal and mitigate by transferring leadership —
   "turn the fail-slow leader into a fail-slow follower, which is well
   tolerated".

   Run with:  dune exec examples/mitigation.exe *)

let () =
  let engine = Sim.Engine.create ~seed:11L () in
  let sched = Depfast.Sched.create engine in
  let g = Raft.Group.create sched ~n:3 () in
  Depfast.Sched.spawn sched ~name:"bootstrap" (fun () -> Raft.Group.elect g 0);
  Depfast.Sched.run ~until:(Sim.Time.sec 1) sched;
  let detectors = List.map (fun s -> Raft.Detector.attach s ()) g.Raft.Group.servers in

  (* light closed-loop load so the detector has a commit-latency signal *)
  let clients = Raft.Group.make_clients g ~count:32 () in
  List.iter
    (fun c ->
      Cluster.Node.spawn (Raft.Client.node c) ~name:"load" (fun () ->
          let rec go i =
            if Raft.Client.put c ~key:(Printf.sprintf "k%d" (i mod 50)) ~value:"v" then ();
            go (i + 1)
          in
          go 0))
    clients;
  Depfast.Sched.run ~until:(Sim.Time.sec 4) sched;

  let show () =
    match Raft.Group.leader g with
    | Some s ->
      Printf.printf "[%5.0f ms] leader = s%d (term %d), commit latency ewma = %.2f ms\n"
        (Sim.Time.to_ms_f (Sim.Engine.now engine))
        (Raft.Server.id s + 1) (Raft.Server.term s)
        (Raft.Server.commit_latency_ewma s /. 1000.0)
    | None -> Printf.printf "[%5.0f ms] no leader\n" (Sim.Time.to_ms_f (Sim.Engine.now engine))
  in
  show ();

  (* the LEADER fails slow: cgroup-style 5% CPU *)
  Printf.printf "\ninjecting CPU (slow) into the leader...\n";
  ignore (Cluster.Fault.inject (Raft.Server.node (Raft.Group.server g 0)) Cluster.Fault.Cpu_slow);
  Depfast.Sched.run ~until:(Sim.Time.sec 10) sched;
  show ();

  let total = List.fold_left (fun a d -> a + Raft.Detector.mitigations d) 0 detectors in
  Printf.printf "\nleadership transfers triggered by the detector: %d\n" total;
  (match Raft.Group.leader g with
  | Some s when Raft.Server.id s <> 0 ->
    Printf.printf
      "the fail-slow node s1 is now a follower; the majority QuorumEvent masks it.\n"
  | _ -> Printf.printf "mitigation did not complete (unexpected)\n")
