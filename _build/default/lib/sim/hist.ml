(* Logarithmic bucketing: values < 64 are exact; above that, each power of
   two is split into 32 sub-buckets (top 6 significant bits), giving <= ~3%
   relative quantile error, plenty for latency reporting. *)

let sub = 64
let max_exp = 62
let nbuckets = sub + ((max_exp - 6 + 1) * 32)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  {
    buckets = Array.make nbuckets 0;
    count = 0;
    sum = 0.0;
    sumsq = 0.0;
    min_v = max_int;
    max_v = 0;
  }

let msb v =
  (* position of most significant set bit; v > 0 *)
  let rec go v acc = if v = 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index_of v =
  if v < sub then v
  else
    let k = msb v in
    let m = v lsr (k - 5) in
    sub + ((k - 6) * 32) + (m - 32)

let upper_bound_of idx =
  if idx < sub then idx
  else
    let k = 6 + ((idx - sub) / 32) in
    let m = 32 + ((idx - sub) mod 32) in
    ((m + 1) lsl (k - 5)) - 1

let add t v =
  let v = if v < 0 then 0 else v in
  t.buckets.(index_of v) <- t.buckets.(index_of v) + 1;
  t.count <- t.count + 1;
  let f = float_of_int v in
  t.sum <- t.sum +. f;
  t.sumsq <- t.sumsq +. (f *. f);
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

let stddev t =
  if t.count = 0 then 0.0
  else
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.count) -. (m *. m) in
    sqrt (Float.max 0.0 var)

let quantile t q =
  if t.count = 0 then 0
  else
    let target =
      let x = int_of_float (ceil (q *. float_of_int t.count)) in
      if x < 1 then 1 else if x > t.count then t.count else x
    in
    let rec go idx acc =
      if idx >= nbuckets then t.max_v
      else
        let acc = acc + t.buckets.(idx) in
        if acc >= target then min (upper_bound_of idx) t.max_v else go (idx + 1) acc
    in
    go 0 0

let p50 t = quantile t 0.50
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let merge a b =
  let t = create () in
  Array.blit a.buckets 0 t.buckets 0 nbuckets;
  Array.iteri (fun i v -> t.buckets.(i) <- t.buckets.(i) + v) b.buckets;
  t.count <- a.count + b.count;
  t.sum <- a.sum +. b.sum;
  t.sumsq <- a.sumsq +. b.sumsq;
  t.min_v <- min a.min_v b.min_v;
  t.max_v <- max a.max_v b.max_v;
  t

let clear t =
  Array.fill t.buckets 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.sumsq <- 0.0;
  t.min_v <- max_int;
  t.max_v <- 0

let pp_summary fmt t =
  Format.fprintf fmt "n=%d mean=%a p50=%a p99=%a max=%a" t.count Time.pp
    (int_of_float (mean t))
    Time.pp (p50 t) Time.pp (p99 t) Time.pp (max_value t)
