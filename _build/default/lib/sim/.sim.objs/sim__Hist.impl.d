lib/sim/hist.ml: Array Float Format Time
