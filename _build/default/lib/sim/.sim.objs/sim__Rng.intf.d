lib/sim/rng.mli:
