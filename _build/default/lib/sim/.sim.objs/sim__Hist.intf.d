lib/sim/hist.mli: Format Time
