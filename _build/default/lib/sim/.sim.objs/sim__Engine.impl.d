lib/sim/engine.ml: Heap Queue Rng Time
