(** Latency histogram with HDR-style logarithmic buckets.

    Records durations in microseconds with bounded relative error
    (~1/64 per bucket) and answers quantile queries without retaining every
    sample. Also tracks exact count / sum / min / max. *)

type t

val create : unit -> t

val add : t -> Time.span -> unit
(** Record one duration. Negative values are clamped to 0. *)

val count : t -> int

val min_value : t -> Time.span
(** 0 when empty. *)

val max_value : t -> Time.span
(** 0 when empty. *)

val mean : t -> float
(** Mean in microseconds; 0 when empty. *)

val stddev : t -> float

val quantile : t -> float -> Time.span
(** [quantile t q] with [q] in [\[0, 1\]]: smallest recorded bucket upper
    bound covering fraction [q] of samples. 0 when empty. *)

val p50 : t -> Time.span
val p95 : t -> Time.span
val p99 : t -> Time.span
val p999 : t -> Time.span

val merge : t -> t -> t
(** Combined histogram; inputs unchanged. *)

val clear : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** One-line [count/mean/p50/p99/max] summary. *)
