type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  (* re-mix with a distinct constant so split streams do not collide with
     the parent's own output stream *)
  { state = mix64 (Int64.logxor seed 0xA5A5A5A5DEADBEEFL) }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits a native int on 64-bit platforms *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits -> [0,1) *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
