(** Probability distributions used by the latency and workload models.

    A value of type {!t} is a description of a distribution; {!sample} draws
    from it with a caller-supplied generator, so distributions are pure data
    and can be stored in configuration records. *)

type t =
  | Constant of float
  | Uniform of float * float  (** [Uniform (lo, hi)], half-open. *)
  | Exponential of float  (** [Exponential mean]. *)
  | Normal of float * float  (** [Normal (mean, stddev)], truncated at 0. *)
  | Lognormal of float * float
      (** [Lognormal (mu, sigma)] of the underlying normal. *)
  | Pareto of float * float
      (** [Pareto (scale, shape)]; heavy-tailed, used for transient hiccups. *)
  | Shifted of float * t  (** [Shifted (offset, d)]: [offset + sample d]. *)
  | Scaled of float * t  (** [Scaled (k, d)]: [k *. sample d]. *)

val sample : Rng.t -> t -> float
(** Draw one value. Never negative (negative draws are clamped to 0). *)

val sample_span : Rng.t -> t -> Time.span
(** Draw a duration, interpreting the distribution's unit as microseconds. *)

val mean : t -> float
(** Analytic mean (for Pareto with shape <= 1, returns infinity). *)

val zipfian : Rng.t -> n:int -> theta:float -> int
(** [zipfian rng ~n ~theta] draws a rank in [\[0, n)] from a zipfian
    distribution with skew [theta] (YCSB uses [theta = 0.99]). Uses the
    Gray et al. rejection-free method, recomputing constants per call is
    avoided via {!make_zipfian}. *)

val make_zipfian : n:int -> theta:float -> Rng.t -> int
(** [make_zipfian ~n ~theta] precomputes the zipfian constants and returns a
    sampling function (preferred in hot paths). *)

val pp : Format.formatter -> t -> unit
