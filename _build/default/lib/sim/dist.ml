type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Normal of float * float
  | Lognormal of float * float
  | Pareto of float * float
  | Shifted of float * t
  | Scaled of float * t

let rec sample_raw rng = function
  | Constant x -> x
  | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
  | Exponential mean ->
    let u = 1.0 -. Rng.unit_float rng in
    -.mean *. log u
  | Normal (mean, std) ->
    (* Box-Muller; one draw per call keeps the stream simple *)
    let u1 = 1.0 -. Rng.unit_float rng in
    let u2 = Rng.unit_float rng in
    mean +. (std *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  | Lognormal (mu, sigma) ->
    let u1 = 1.0 -. Rng.unit_float rng in
    let u2 = Rng.unit_float rng in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    exp (mu +. (sigma *. z))
  | Pareto (scale, shape) ->
    let u = 1.0 -. Rng.unit_float rng in
    scale /. (u ** (1.0 /. shape))
  | Shifted (off, d) -> off +. sample_raw rng d
  | Scaled (k, d) -> k *. sample_raw rng d

let sample rng d = Float.max 0.0 (sample_raw rng d)
let sample_span rng d = Time.of_us_f (sample rng d)

let rec mean = function
  | Constant x -> x
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential m -> m
  | Normal (m, _) -> m
  | Lognormal (mu, sigma) -> exp (mu +. (sigma *. sigma /. 2.0))
  | Pareto (scale, shape) ->
    if shape <= 1.0 then infinity else scale *. shape /. (shape -. 1.0)
  | Shifted (off, d) -> off +. mean d
  | Scaled (k, d) -> k *. mean d

(* Zipfian sampling following Gray et al. ("Quickly generating
   billion-record synthetic databases"), as used by YCSB. *)
let make_zipfian ~n ~theta =
  assert (n > 0);
  let zeta =
    let acc = ref 0.0 in
    for i = 1 to n do
      acc := !acc +. (1.0 /. (float_of_int i ** theta))
    done;
    !acc
  in
  let alpha = 1.0 /. (1.0 -. theta) in
  let zeta2 = 1.0 +. (0.5 ** theta) in
  let eta = (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta))) /. (1.0 -. (zeta2 /. zeta)) in
  fun rng ->
    let u = Rng.unit_float rng in
    let uz = u *. zeta in
    if uz < 1.0 then 0
    else if uz < zeta2 then 1
    else
      let rank = float_of_int n *. (((eta *. u) -. eta +. 1.0) ** alpha) in
      let r = int_of_float rank in
      if r >= n then n - 1 else r

let zipfian rng ~n ~theta = (make_zipfian ~n ~theta) rng

let rec pp fmt = function
  | Constant x -> Format.fprintf fmt "const(%g)" x
  | Uniform (lo, hi) -> Format.fprintf fmt "uniform(%g,%g)" lo hi
  | Exponential m -> Format.fprintf fmt "exp(mean=%g)" m
  | Normal (m, s) -> Format.fprintf fmt "normal(%g,%g)" m s
  | Lognormal (mu, s) -> Format.fprintf fmt "lognormal(%g,%g)" mu s
  | Pareto (sc, sh) -> Format.fprintf fmt "pareto(%g,%g)" sc sh
  | Shifted (off, d) -> Format.fprintf fmt "%g+%a" off pp d
  | Scaled (k, d) -> Format.fprintf fmt "%g*%a" k pp d
