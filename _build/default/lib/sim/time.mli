(** Virtual time for the discrete-event simulator.

    Time is an absolute instant measured in integer microseconds since the
    start of the simulation; {!span} is a duration in the same unit. Using
    integers keeps the simulator deterministic across platforms. *)

type t = int
(** Absolute virtual time, in microseconds since simulation start. *)

type span = int
(** Duration in microseconds. *)

val zero : t

val us : int -> span
(** [us n] is a span of [n] microseconds. *)

val ms : int -> span
(** [ms n] is a span of [n] milliseconds. *)

val sec : int -> span
(** [sec n] is a span of [n] seconds. *)

val of_ms_f : float -> span
(** [of_ms_f x] is a span of [x] milliseconds, rounded to the nearest
    microsecond. *)

val of_us_f : float -> span
(** [of_us_f x] is a span of [x] microseconds, rounded. *)

val to_ms_f : span -> float
(** [to_ms_f s] is [s] expressed in (possibly fractional) milliseconds. *)

val to_sec_f : span -> float
(** [to_sec_f s] is [s] expressed in (possibly fractional) seconds. *)

val add : t -> span -> t

val diff : t -> t -> span
(** [diff a b] is [a - b]. *)

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints a time with an adaptive unit, e.g. ["1.500ms"] or ["2.000s"]. *)
