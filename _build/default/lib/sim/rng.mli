(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (splitmix64) so that every simulation
    component can own an independent stream derived from the experiment seed.
    Streams are stable across OCaml versions, unlike [Stdlib.Random]. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Used to give each node / client / distribution its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniformly chosen element. Requires a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
