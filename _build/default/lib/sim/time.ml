type t = int
type span = int

let zero = 0
let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000
let of_ms_f x = int_of_float (Float.round (x *. 1_000.))
let of_us_f x = int_of_float (Float.round x)
let to_ms_f s = float_of_int s /. 1_000.
let to_sec_f s = float_of_int s /. 1_000_000.
let add t s = t + s
let diff a b = a - b
let compare = Int.compare

let pp fmt t =
  if t >= 1_000_000 then Format.fprintf fmt "%.3fs" (to_sec_f t)
  else if t >= 1_000 then Format.fprintf fmt "%.3fms" (to_ms_f t)
  else Format.fprintf fmt "%dus" t
