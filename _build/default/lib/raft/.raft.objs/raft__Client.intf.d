lib/raft/client.pp.mli: Cluster Config Types
