lib/raft/sharded.pp.ml: Array Client Cluster Config Depfast Group Hashtbl List Option Printf Server Sim Types
