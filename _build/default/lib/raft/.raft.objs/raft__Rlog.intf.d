lib/raft/rlog.pp.mli: Types
