lib/raft/server.pp.mli: Cluster Config Kv Rlog Types
