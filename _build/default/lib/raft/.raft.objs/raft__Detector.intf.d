lib/raft/detector.pp.mli: Server Sim
