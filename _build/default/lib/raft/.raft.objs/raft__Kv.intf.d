lib/raft/kv.pp.mli: Types
