lib/raft/sharded.pp.mli: Cluster Config Depfast Group
