lib/raft/server.pp.ml: Cluster Config Depfast Dist Engine Hashtbl Kv List Option Printf Queue Rlog Rng Sim Time Types
