lib/raft/config.pp.ml: Dist Sim Time
