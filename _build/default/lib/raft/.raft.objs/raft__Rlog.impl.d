lib/raft/rlog.pp.ml: Array List Printf Types
