lib/raft/kv.pp.ml: Hashtbl List Option Types
