lib/raft/detector.pp.ml: Cluster Depfast List Server Sim
