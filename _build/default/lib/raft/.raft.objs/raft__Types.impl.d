lib/raft/types.pp.ml: List Ppx_deriving_runtime String
