lib/raft/group.pp.mli: Client Cluster Config Depfast Server Sim
