lib/raft/group.pp.ml: Client Cluster Config Depfast List Printf Server Sim
