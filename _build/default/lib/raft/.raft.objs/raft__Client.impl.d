lib/raft/client.pp.ml: Array Cluster Config Depfast Sim Types
