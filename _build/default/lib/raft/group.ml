type t = {
  rpc : Server.rpc;
  servers : Server.t list;
  nodes : Cluster.Node.t list;
  cfg : Config.t;
  sched : Depfast.Sched.t;
}

let create sched ~n ?(cfg = Config.default) ?(first_node_id = 0) () =
  let rpc = Cluster.Rpc.create sched () in
  let ids = List.init n (fun i -> first_node_id + i) in
  let nodes =
    List.mapi
      (fun i id -> Cluster.Node.create sched ~id ~name:(Printf.sprintf "s%d" (i + 1)) ())
      ids
  in
  let servers =
    List.map
      (fun node ->
        let peers = List.filter (fun p -> p <> Cluster.Node.id node) ids in
        Server.create rpc node ~peers ~cfg)
      nodes
  in
  List.iter Server.start servers;
  { rpc; servers; nodes; cfg; sched }

let server t id = List.find (fun s -> Server.id s = id) t.servers

let leader t =
  List.filter (fun s -> Server.is_leader s && Cluster.Node.alive (Server.node s)) t.servers
  |> List.fold_left
       (fun best s ->
         match best with
         | None -> Some s
         | Some b -> if Server.term s > Server.term b then Some s else best)
       None

let wait_for_leader t ?(timeout = Sim.Time.sec 5) () =
  let deadline = Sim.Time.add (Depfast.Sched.now t.sched) timeout in
  let rec poll () =
    match leader t with
    | Some s -> Some s
    | None ->
      if Depfast.Sched.now t.sched >= deadline then None
      else begin
        Depfast.Sched.sleep t.sched (Sim.Time.ms 10);
        poll ()
      end
  in
  poll ()

let elect t id =
  let s = server t id in
  Server.become_leader_now s;
  let rec poll tries =
    if (not (Server.is_leader s)) && tries > 0 then begin
      Depfast.Sched.sleep t.sched (Sim.Time.ms 10);
      if not (Server.is_leader s) then Server.become_leader_now s;
      poll (tries - 1)
    end
  in
  poll 100

let make_clients t ~count ?first_node_id () =
  let first =
    match first_node_id with
    | Some f -> f
    | None -> List.fold_left (fun m n -> max m (Cluster.Node.id n)) 0 t.nodes + 1
  in
  let server_ids = List.map Server.id t.servers in
  List.init count (fun j ->
      let node =
        Cluster.Node.create t.sched ~id:(first + j)
          ~name:(Printf.sprintf "c%d" (j + 1))
          ()
      in
      Cluster.Rpc.attach t.rpc node;
      Client.create t.rpc node ~servers:server_ids ~cfg:t.cfg ~id:(first + j) ())

let node_name t id =
  match List.find_opt (fun n -> Cluster.Node.id n = id) t.nodes with
  | Some n -> Cluster.Node.name n
  | None ->
    let max_server = List.fold_left (fun m n -> max m (Cluster.Node.id n)) 0 t.nodes in
    if id > max_server then Printf.sprintf "c%d" (id - max_server) else Printf.sprintf "n%d" id
