type t = {
  store : (string, string) Hashtbl.t;
  sessions : (int, int) Hashtbl.t;  (* client_id -> last applied seq *)
  locks : (string, int) Hashtbl.t;  (* key -> txid holding its 2PC lock *)
  staged : (int, (string * string) list) Hashtbl.t;  (* txid -> writes *)
  mutable applied : int;
}

let create () =
  {
    store = Hashtbl.create 1024;
    sessions = Hashtbl.create 64;
    locks = Hashtbl.create 64;
    staged = Hashtbl.create 64;
    applied = 0;
  }

let last_seq t ~client_id = Option.value ~default:(-1) (Hashtbl.find_opt t.sessions client_id)

let bump t (e : Types.entry) =
  if e.client_id >= 0 then Hashtbl.replace t.sessions e.client_id e.seq;
  t.applied <- t.applied + 1

let apply t (e : Types.entry) =
  let duplicate = e.client_id >= 0 && e.seq <= last_seq t ~client_id:e.client_id in
  match e.cmd with
  | Types.Nop -> None
  | Types.Tx_prepare { txid; writes } ->
    if duplicate then
      (* deterministic re-answer: prepared iff still staged *)
      Some (if Hashtbl.mem t.staged txid then "ok" else "conflict")
    else begin
      bump t e;
      let conflicting =
        List.exists
          (fun (k, _) ->
            match Hashtbl.find_opt t.locks k with
            | Some holder -> holder <> txid
            | None -> false)
          writes
      in
      if conflicting then Some "conflict"
      else begin
        List.iter (fun (k, _) -> Hashtbl.replace t.locks k txid) writes;
        Hashtbl.replace t.staged txid writes;
        Some "ok"
      end
    end
  | Types.Tx_commit { txid } ->
    if not duplicate then begin
      bump t e;
      (match Hashtbl.find_opt t.staged txid with
      | Some writes ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace t.store k v;
            Hashtbl.remove t.locks k)
          writes;
        Hashtbl.remove t.staged txid
      | None -> ())
    end;
    Some "ok"
  | Types.Tx_abort { txid } ->
    if not duplicate then begin
      bump t e;
      (match Hashtbl.find_opt t.staged txid with
      | Some writes ->
        List.iter (fun (k, _) -> Hashtbl.remove t.locks k) writes;
        Hashtbl.remove t.staged txid
      | None -> ())
    end;
    Some "ok"
  | Types.Get { key } ->
    if not duplicate then bump t e;
    Hashtbl.find_opt t.store key
  | Types.Put { key; value } ->
    if not duplicate then begin
      Hashtbl.replace t.store key value;
      bump t e
    end;
    None

let get t key = Hashtbl.find_opt t.store key
let size t = Hashtbl.length t.store
let applied_count t = t.applied

let locked t key = Hashtbl.find_opt t.locks key
let staged_count t = Hashtbl.length t.staged

let digest t =
  Hashtbl.fold (fun k v acc -> acc lxor Hashtbl.hash (k, v)) t.store 0
