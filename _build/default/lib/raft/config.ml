(** Timing and cost model for the RSM implementations.

    The CPU costs are calibrated (see DESIGN.md §6) so that a 3-node
    DepFastRaft under the paper's YCSB-style closed-loop write workload
    serves ≈5K requests/second with the leader around 75% CPU — the §3.4
    operating point. All implementations share this model; they differ only
    in {e how they wait}. *)

open Sim

type t = {
  (* Raft timing *)
  election_timeout_min : Time.span;
  election_timeout_max : Time.span;
  heartbeat_interval : Time.span;
  batch_max : int;  (** max entries per AppendEntries *)
  group_commit_window : Time.span;  (** how long an idle leader waits for work *)
  rpc_timeout : Time.span;
  client_timeout : Time.span;
  (* CPU cost model, nominal core-microseconds *)
  cost_client_parse : Time.span;  (** per client request, at the leader *)
  cost_client_reply : Time.span;
  cost_round_fixed : Time.span;  (** per replication round, leader serial *)
  cost_marshal_entry : Time.span;  (** per entry per round, leader serial *)
  cost_per_follower : Time.span;  (** per follower per round, leader serial *)
  cost_ack_process : Time.span;  (** per ack, leader async *)
  cost_send_entry : Time.span;  (** per entry per follower, sender serial *)
  cost_follower_fixed : Time.span;  (** per AppendEntries, follower serial *)
  cost_follower_entry : Time.span;  (** per entry, follower serial *)
  cost_apply_entry : Time.span;  (** per committed entry, both sides *)
  cost_vote : Time.span;
  (* storage *)
  wal_entry_overhead : int;  (** bytes per entry beyond payload *)
  (* transient hiccups (GC pauses etc.), per node *)
  hiccup_interval : Dist.t;  (** gap between hiccups, us *)
  hiccup_duration : Dist.t;  (** hiccup length, us *)
  hiccup_factor : float;  (** CPU slowdown during a hiccup *)
  enable_hiccups : bool;
  replication_arity : [ `Majority | `All ];
      (** ablation knob: [`All] replaces the replication QuorumEvent's
          majority arity with wait-for-everyone — the anti-pattern *)
}

let default =
  {
    election_timeout_min = Time.ms 150;
    election_timeout_max = Time.ms 300;
    heartbeat_interval = Time.ms 50;
    batch_max = 64;
    group_commit_window = Time.ms 5;
    rpc_timeout = Time.ms 1000;
    client_timeout = Time.ms 5000;
    cost_client_parse = Time.us 250;
    cost_client_reply = Time.us 120;
    cost_round_fixed = Time.us 240;
    cost_marshal_entry = Time.us 80;
    cost_per_follower = Time.us 60;
    cost_ack_process = Time.us 60;
    cost_send_entry = Time.us 20;
    cost_follower_fixed = Time.us 200;
    cost_follower_entry = Time.us 100;
    cost_apply_entry = Time.us 100;
    cost_vote = Time.us 50;
    wal_entry_overhead = 48;
    hiccup_interval = Dist.Exponential 400_000.0;  (* ~every 400 ms *)
    hiccup_duration = Dist.Shifted (500.0, Dist.Pareto (500.0, 1.8));
    hiccup_factor = 4.0;
    enable_hiccups = true;
    replication_arity = `Majority;
  }

(** Majority of a group of [n] voters. *)
let majority n = (n / 2) + 1
