(** §5 extension: a fail-slow failure detector + mitigation.

    The paper's future-work section proposes building failure detectors on
    DepFast's trace points and, when the {e leader} is the fail-slow
    component, triggering a re-election "to turn the fail-slow leader into a
    fail-slow follower, which is well tolerated".

    This detector runs on each server. While the server leads, it samples
    the commit-latency trace signal ({!Server.commit_latency_ewma}), learns
    a baseline over the first samples, and — when the current value exceeds
    [threshold] × baseline for [confirmations] consecutive checks — hands
    leadership to the most caught-up follower. The fail-slow node keeps
    serving as a follower, where quorum waits mask it. *)

type t

val attach :
  Server.t ->
  ?check_interval:Sim.Time.span ->
  ?baseline_samples:int ->
  ?threshold:float ->
  ?confirmations:int ->
  unit ->
  t
(** Spawns the monitoring coroutine on the server's node. Defaults:
    check every 200 ms, 10 baseline samples, threshold 4.0, 2
    confirmations. *)

val suspected : t -> bool
(** Currently past threshold. *)

val mitigations : t -> int
(** Number of leadership transfers this detector has triggered. *)

val baseline : t -> float
(** Learned baseline commit latency in microseconds (0 until learned). *)
