(** §5 extension: a sharded data store with distributed transactions.

    The paper's future work — "sharded data stores with distributed
    transaction protocols which also have complicated waiting conditions" —
    built on DepFastRaft: keys are hash-partitioned over independent Raft
    groups; cross-shard updates run two-phase commit, with both phases
    replicated through each participant shard's log (prepares lock keys and
    stage writes; commit installs them).

    The coordinator's waits are exactly the §3.2 nested-event idiom: phase 1
    waits on an [OrEvent] of {e AndEvent(all shards prepared-ok)} versus
    {e OrEvent(any shard rejected)}; each per-shard outcome is itself
    determined by that shard's majority QuorumEvent. *)

type t

val create : Depfast.Sched.t -> shards:int -> replicas:int -> ?cfg:Config.t -> unit -> t
(** Builds [shards] independent Raft groups of [replicas] servers each.
    Call {!bootstrap} before use. *)

val bootstrap : t -> unit
(** Elect the first replica of each shard (drives the engine ~1 s). *)

val shards : t -> int
val groups : t -> Group.t list
val shard_of : t -> string -> int

type session
(** A transaction client: one node issuing commands to every shard. *)

val session : t -> id:int -> session
val session_node : session -> Cluster.Node.t

type outcome = Committed | Aborted | Failed

val txn : session -> writes:(string * string) list -> outcome
(** Atomically apply all writes (coroutine context). [Aborted] = a lock
    conflict with a concurrent transaction; [Failed] = could not reach a
    shard's leader. Single-shard transactions skip 2PC and commit directly. *)

val read : session -> key:string -> string option option
(** Linearizable single-key read through the owning shard's log. *)

val put : session -> key:string -> value:string -> bool
(** Single-key fast path (no 2PC). *)
