(** RSM client: leader discovery, retries, exactly-once sessions.

    A client is a coroutine-side handle bound to a client {!Cluster.Node.t}.
    Operations block the calling coroutine until the command commits (or
    retries are exhausted). Retries reuse the same sequence number, so the
    server-side session dedup keeps them exactly-once.

    Per the paper's Figure 2, the client's wait on the leader is a {e red}
    1/1 edge — an accepted single-point wait outside the replication
    quorums. *)

type t

val create :
  (Types.req, Types.resp) Cluster.Rpc.t ->
  Cluster.Node.t ->
  servers:int list ->
  ?cfg:Config.t ->
  id:int ->
  unit ->
  t
(** The client node must already be attached to the RPC fabric
    ([Cluster.Rpc.attach]). *)

val id : t -> int

val node : t -> Cluster.Node.t
(** The node hosting this client's coroutines. *)

val command : t -> Types.command -> string option option
(** Submit any state-machine command through the log (used by the 2PC
    coordinator). [None] = failed; [Some r] = committed with apply result
    [r]. Blocking; coroutine context. *)

val put : t -> key:string -> value:string -> bool
(** Blocking update; [true] iff committed. Must run inside a coroutine on
    the client's node. *)

val get : t -> key:string -> string option option
(** Blocking linearizable read through the log. [None] = failed;
    [Some v] = committed, [v] is the value (or [None] if key absent). *)

val ops_attempted : t -> int
val ops_failed : t -> int
