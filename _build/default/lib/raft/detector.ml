type t = {
  server : Server.t;
  check_interval : Sim.Time.span;
  baseline_samples : int;
  threshold : float;
  confirmations : int;
  mutable samples : float list;  (* baseline collection, newest first *)
  mutable baseline : float;
  mutable strikes : int;
  mutable suspected : bool;
  mutable mitigations : int;
}

let suspected t = t.suspected
let mitigations t = t.mitigations
let baseline t = t.baseline

let check t =
  let lat = Server.commit_latency_ewma t.server in
  if Server.is_leader t.server && lat >= 0.0 then begin
    if t.baseline = 0.0 then begin
      t.samples <- lat :: t.samples;
      if List.length t.samples >= t.baseline_samples then
        t.baseline <-
          List.fold_left ( +. ) 0.0 t.samples /. float_of_int (List.length t.samples)
    end
    else if lat > t.threshold *. t.baseline then begin
      t.strikes <- t.strikes + 1;
      t.suspected <- t.strikes >= t.confirmations;
      if t.suspected then begin
        match Server.best_follower t.server with
        | Some target ->
          t.mitigations <- t.mitigations + 1;
          t.strikes <- 0;
          t.suspected <- false;
          Server.transfer_leadership t.server ~target
        | None -> ()
      end
    end
    else begin
      t.strikes <- 0;
      t.suspected <- false
    end
  end
  else begin
    (* not leading: reset the episode (a new leadership learns afresh) *)
    t.strikes <- 0;
    t.suspected <- false;
    t.samples <- [];
    t.baseline <- 0.0
  end

let attach server ?(check_interval = Sim.Time.ms 200) ?(baseline_samples = 10)
    ?(threshold = 4.0) ?(confirmations = 2) () =
  let t =
    {
      server;
      check_interval;
      baseline_samples;
      threshold;
      confirmations;
      samples = [];
      baseline = 0.0;
      strikes = 0;
      suspected = false;
      mitigations = 0;
    }
  in
  let node = Server.node server in
  let sched = Cluster.Node.sched node in
  Cluster.Node.spawn node ~name:"fail-slow-detector" (fun () ->
      let rec loop () =
        if Cluster.Node.alive node then begin
          Depfast.Sched.sleep sched t.check_interval;
          check t;
          loop ()
        end
      in
      loop ());
  t
