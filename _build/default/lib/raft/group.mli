(** Convenience constructor for a DepFastRaft cluster plus its clients. *)

type t = {
  rpc : Server.rpc;
  servers : Server.t list;
  nodes : Cluster.Node.t list;
  cfg : Config.t;
  sched : Depfast.Sched.t;
}

val create :
  Depfast.Sched.t ->
  n:int ->
  ?cfg:Config.t ->
  ?first_node_id:int ->
  unit ->
  t
(** [n] servers with node ids [first_node_id..] (default 0..) named
    s1..sN, all started. *)

val server : t -> int -> Server.t
(** By node id. *)

val leader : t -> Server.t option
(** The live leader with the highest term, if any claims leadership. *)

val wait_for_leader : t -> ?timeout:Sim.Time.span -> unit -> Server.t option
(** Coroutine-context: poll until some server is leader. *)

val elect : t -> int -> unit
(** Deterministic bootstrap (coroutine-context): make the given node id run
    for leader immediately and wait until it wins. *)

val make_clients :
  t -> count:int -> ?first_node_id:int -> unit -> Client.t list
(** Client nodes ids default to starting right after the servers'. *)

val node_name : t -> int -> string
(** [s<i>] for servers, [c<j>] for clients created via {!make_clients}. *)
