(** An m-server FIFO queueing station.

    Models a contended hardware resource (CPU cores, a disk spindle): jobs
    queue, up to [servers] are in service simultaneously, and service time is
    the job's nominal work scaled by the station's current {e speed factor}
    (1.0 = nominal; 20.0 = the cgroup-limited "5% CPU" fail-slow fault).

    Completion is an {!Depfast.Event.t}, so coroutines wait on station work
    like on any other wait point, and the tracer sees it. *)

type t

val create : Depfast.Sched.t -> ?servers:int -> name:string -> unit -> t
(** [servers] defaults to 1. *)

val name : t -> string
val servers : t -> int

val set_speed : t -> float -> unit
(** Service-time multiplier for jobs {e starting} from now on. *)

val speed : t -> float

val set_penalty : t -> (unit -> float) -> unit
(** Extra multiplicative latency sampled at each job start — used to apply
    memory-pressure penalties. Default: [fun () -> 1.0]. *)

val submit : t -> ?event:Depfast.Event.t -> work:Sim.Time.span -> unit -> Depfast.Event.t
(** Enqueue a job of nominal duration [work]; the returned event fires when
    it completes. [event] lets the caller supply the completion event (e.g.
    a [Disk]-kind event for tracing); default is a fresh signal. *)

val queue_length : t -> int
(** Jobs waiting (excluding those in service). *)

val busy_servers : t -> int

val utilization : t -> float
(** Mean fraction of servers busy since the last {!reset_stats} (or
    creation), from the internal busy-time integral. *)

val reset_stats : t -> unit
(** Restart the utilization window and the completed-job counter. *)

val completed_jobs : t -> int
