let gib = 1024 * 1024 * 1024

type t = {
  mutable used : int;
  mutable soft : int;
  mutable hard : int;
  mutable oom_handlers : (unit -> unit) list;
  mutable oom_fired : bool;
}

let create ?(soft_cap = 16 * gib) ?(hard_cap = 16 * gib) () =
  { used = 0; soft = soft_cap; hard = hard_cap; oom_handlers = []; oom_fired = false }

let used t = t.used
let soft_cap t = t.soft

let set_caps t ~soft_cap ~hard_cap =
  t.soft <- soft_cap;
  t.hard <- hard_cap

let over_hard_cap t = t.used > t.hard

let fire_oom t =
  if not t.oom_fired then begin
    t.oom_fired <- true;
    List.iter (fun f -> f ()) (List.rev t.oom_handlers)
  end

let alloc t bytes =
  t.used <- t.used + bytes;
  if t.used > t.hard then fire_oom t

let free t bytes = t.used <- max 0 (t.used - bytes)
let pressure t = float_of_int t.used /. float_of_int t.soft

let penalty t =
  let p = pressure t in
  if p <= 1.0 then 1.0 else 1.0 +. (4.0 *. (p -. 1.0))

let on_oom t f = t.oom_handlers <- f :: t.oom_handlers
