open Sim

type job = { work : Time.span; event : Depfast.Event.t }

type t = {
  sched : Depfast.Sched.t;
  name : string;
  servers : int;
  mutable speed : float;
  mutable penalty : unit -> float;
  queue : job Queue.t;
  mutable busy : int;
  (* utilization accounting *)
  mutable busy_integral : float;  (* server-microseconds *)
  mutable last_change : Time.t;
  mutable window_start : Time.t;
  mutable completed : int;
}

let create sched ?(servers = 1) ~name () =
  let now = Sim.Engine.now (Depfast.Sched.engine sched) in
  {
    sched;
    name;
    servers;
    speed = 1.0;
    penalty = (fun () -> 1.0);
    queue = Queue.create ();
    busy = 0;
    busy_integral = 0.0;
    last_change = now;
    window_start = now;
    completed = 0;
  }

let name t = t.name
let servers t = t.servers
let set_speed t f = t.speed <- f
let speed t = t.speed
let set_penalty t f = t.penalty <- f
let queue_length t = Queue.length t.queue
let busy_servers t = t.busy

let engine t = Depfast.Sched.engine t.sched

let account t =
  let now = Engine.now (engine t) in
  t.busy_integral <- t.busy_integral +. (float_of_int t.busy *. float_of_int (Time.diff now t.last_change));
  t.last_change <- now

let rec start_job t job =
  account t;
  t.busy <- t.busy + 1;
  let dur =
    Time.of_us_f (float_of_int job.work *. t.speed *. t.penalty ())
  in
  ignore
    (Engine.schedule (engine t) ~delay:dur (fun () ->
         account t;
         t.busy <- t.busy - 1;
         t.completed <- t.completed + 1;
         Depfast.Event.fire job.event;
         if not (Queue.is_empty t.queue) then start_job t (Queue.pop t.queue)))

let submit t ?event ~work () =
  let event =
    match event with
    | Some ev -> ev
    | None -> Depfast.Event.signal ~label:t.name ()
  in
  let job = { work; event } in
  if t.busy < t.servers then start_job t job else Queue.add job t.queue;
  event

let utilization t =
  account t;
  let window = Time.diff t.last_change t.window_start in
  if window <= 0 then 0.0
  else t.busy_integral /. (float_of_int t.servers *. float_of_int window)

let reset_stats t =
  account t;
  t.busy_integral <- 0.0;
  t.window_start <- t.last_change;
  t.completed <- 0

let completed_jobs t = t.completed
