(** Per-node memory model.

    Tracks bytes in use by the hosted process (dominated, in the RSM
    workloads, by replication buffers). A {e soft cap} models the onset of
    memory pressure — beyond it, CPU and disk operations pay a growing
    swap/reclaim penalty — and a {e hard cap} models the OOM killer: the
    node crashes (this is how the RethinkDB-style unbounded-buffer backlog
    kills the leader, §2.2). *)

type t

val create : ?soft_cap:int -> ?hard_cap:int -> unit -> t
(** Caps in bytes; defaults are effectively unlimited (16 GiB / 16 GiB). *)

val alloc : t -> int -> unit
val free : t -> int -> unit

val used : t -> int
val soft_cap : t -> int

val set_caps : t -> soft_cap:int -> hard_cap:int -> unit
(** Used by the memory-contention fault injector. *)

val pressure : t -> float
(** [used / soft_cap]; > 1.0 means thrashing. *)

val penalty : t -> float
(** Multiplicative latency penalty for CPU/disk work under the current
    pressure: 1.0 below the soft cap, growing linearly to [1 + 4 * excess]
    above it. *)

val over_hard_cap : t -> bool

val on_oom : t -> (unit -> unit) -> unit
(** Invoked (once) by {!alloc} when usage first exceeds the hard cap. *)
