(** Fail-slow fault injection — Table 1 of the paper.

    Each injector perturbs one resource of one node, the way the paper's
    tooling did with cgroups / contending processes / tc:

    - {e CPU (slow)}: cgroup limits the process to 5% CPU → CPU station
      speed factor ×20.
    - {e CPU (contention)}: a contending program with 16× the CPU share →
      a contender job stream keeps the CPU station almost fully busy, so
      victim jobs see bursty queueing (≈1/17 effective share).
    - {e Disk (slow)}: cgroup blkio bandwidth limit → disk bandwidth ×0.05.
    - {e Disk (contention)}: a heavy writer on the shared disk → contender
      write stream through the same disk station.
    - {e Memory (contention)}: cgroup memory cap → soft/hard caps on the
      node's memory; pressure slows CPU/disk, exceeding the hard cap OOMs.
    - {e Network (slow)}: `tc` adds 400 ms to the NIC.

    Injection is protocol-agnostic: the RSM code under test never observes
    the fault, only its effects. *)

type kind =
  | Cpu_slow
  | Cpu_contention
  | Disk_slow
  | Disk_contention
  | Mem_contention
  | Net_slow

val all : kind list
(** In Table 1 order. *)

val name : kind -> string
(** Short name, e.g. ["CPU (slow)"]. *)

val paper_injection : kind -> string
(** The paper's injection method (Table 1, column 2). *)

val sim_injection : kind -> string
(** This repo's simulator mapping (DESIGN.md §5). *)

type active
(** A fault in effect; needed to {!clear} it. *)

val inject : Node.t -> kind -> active
(** Apply the fault to the node, starting contender coroutines if the kind
    needs them. At most one active fault per node is supported. *)

val clear : active -> unit
(** Restore the node's nominal resources and stop contenders. (A node that
    already crashed from OOM stays crashed.) *)
