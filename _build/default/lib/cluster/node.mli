(** A simulated machine: CPU, disk, memory, NIC, liveness.

    Matches the paper's testbed shape (Standard_D4s_v3: 4 vCPUs, 16 GB RAM,
    SSD). All fail-slow faults are injected by mutating a node's resources
    (see {!Fault}); protocol code never sees the fault directly — exactly as
    in the real systems. *)

type t

val create :
  Depfast.Sched.t ->
  id:int ->
  name:string ->
  ?cpu_cores:int ->
  ?mem_soft_cap:int ->
  ?mem_hard_cap:int ->
  ?resident_bytes:int ->
  unit ->
  t
(** [cpu_cores] defaults to 4 (the paper's Standard_D4s_v3 shape);
    [resident_bytes] (default 200 MiB) is the process's steady working set,
    pre-charged to {!memory} so memory-cap faults create real pressure. *)

val id : t -> int
val name : t -> string
val sched : t -> Depfast.Sched.t
val cpu : t -> Station.t
val disk : t -> Disk.t
val memory : t -> Memory.t

val nic_delay : t -> Sim.Time.span
val set_nic_delay : t -> Sim.Time.span -> unit
(** Extra one-way delay added to every message in and out of this node
    (the `tc netem` fault). *)

val alive : t -> bool

val crash : t -> unit
(** Mark the node dead and run crash hooks. Dead nodes drop all traffic and
    process nothing. Memory OOM calls this automatically. *)

val on_crash : t -> (unit -> unit) -> unit

val cpu_work : t -> Sim.Time.span -> unit
(** Coroutine-context helper: occupy one CPU core for the given nominal
    work (inflated by the CPU speed factor and memory-pressure penalty) and
    wait for it. No-op if the node is dead (the caller's coroutine simply
    never resumes — dead machines do not return). *)

val cpu_work_event : t -> Sim.Time.span -> Depfast.Event.t
(** Non-blocking variant: returns the completion event. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** Spawn a coroutine tagged with this node's id. *)
