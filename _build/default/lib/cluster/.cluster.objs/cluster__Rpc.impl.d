lib/cluster/rpc.ml: Depfast Hashtbl List Memory Net Node Option Printf
