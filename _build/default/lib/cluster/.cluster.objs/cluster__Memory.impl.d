lib/cluster/memory.ml: List
