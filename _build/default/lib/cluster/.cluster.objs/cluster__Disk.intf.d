lib/cluster/disk.mli: Depfast Sim Station
