lib/cluster/memory.mli:
