lib/cluster/fault.mli: Node
