lib/cluster/node.ml: Depfast Disk List Memory Printf Sim Station
