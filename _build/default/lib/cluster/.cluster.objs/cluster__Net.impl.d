lib/cluster/net.ml: Depfast Dist Engine Hashtbl List Node Rng Sim Time
