lib/cluster/disk.ml: Depfast Printf Sim Station Time
