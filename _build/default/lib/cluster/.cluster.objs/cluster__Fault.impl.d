lib/cluster/fault.ml: Depfast Disk Memory Node Sim Station Time
