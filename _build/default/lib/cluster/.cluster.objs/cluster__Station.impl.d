lib/cluster/station.ml: Depfast Engine Queue Sim Time
