lib/cluster/net.mli: Depfast Node Sim
