lib/cluster/station.mli: Depfast Sim
