lib/cluster/rpc.mli: Depfast Node Sim
