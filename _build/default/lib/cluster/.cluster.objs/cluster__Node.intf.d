lib/cluster/node.mli: Depfast Disk Memory Sim Station
