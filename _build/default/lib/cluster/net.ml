open Sim

type 'msg endpoint = { node : Node.t; handler : src:int -> 'msg -> unit }

type 'msg t = {
  sched : Depfast.Sched.t;
  latency : Dist.t;
  rng : Rng.t;
  endpoints : (int, 'msg endpoint) Hashtbl.t;
  cuts : (int * int, unit) Hashtbl.t;
  last_delivery : (int * int, Time.t) Hashtbl.t;  (* FIFO per directed link *)
  mutable delivered : int;
  mutable dropped : int;
}

let create sched ?(latency = Dist.Shifted (120.0, Dist.Exponential 30.0)) ?rng () =
  let rng =
    match rng with Some r -> r | None -> Engine.split_rng (Depfast.Sched.engine sched)
  in
  {
    sched;
    latency;
    rng;
    endpoints = Hashtbl.create 16;
    cuts = Hashtbl.create 4;
    last_delivery = Hashtbl.create 64;
    delivered = 0;
    dropped = 0;
  }

let register t node ~handler =
  Hashtbl.replace t.endpoints (Node.id node) { node; handler }

let node t id =
  match Hashtbl.find_opt t.endpoints id with
  | Some ep -> ep.node
  | None -> raise Not_found

let nodes t =
  Hashtbl.fold (fun _ ep acc -> ep.node :: acc) t.endpoints []
  |> List.sort (fun a b -> compare (Node.id a) (Node.id b))

let cut_key a b = if a < b then (a, b) else (b, a)
let partition t a b = Hashtbl.replace t.cuts (cut_key a b) ()
let heal t a b = Hashtbl.remove t.cuts (cut_key a b)
let partitioned t a b = Hashtbl.mem t.cuts (cut_key a b)

let send t ~src ~dst msg =
  match (Hashtbl.find_opt t.endpoints src, Hashtbl.find_opt t.endpoints dst) with
  | Some sep, Some dep ->
    if (not (Node.alive sep.node)) || partitioned t src dst then t.dropped <- t.dropped + 1
    else begin
      let delay =
        Dist.sample_span t.rng t.latency
        + Node.nic_delay sep.node + Node.nic_delay dep.node
      in
      (* links are TCP-like: delivery on a directed link is FIFO, so a
         message never overtakes an earlier one *)
      let engine = Depfast.Sched.engine t.sched in
      let arrival = Time.add (Engine.now engine) delay in
      let arrival =
        match Hashtbl.find_opt t.last_delivery (src, dst) with
        | Some prev when prev >= arrival -> Time.add prev 1
        | Some _ | None -> arrival
      in
      Hashtbl.replace t.last_delivery (src, dst) arrival;
      let delay = Time.diff arrival (Engine.now engine) in
      ignore
        (Engine.schedule engine ~delay (fun () ->
             if Node.alive dep.node && not (partitioned t src dst) then begin
               t.delivered <- t.delivered + 1;
               dep.handler ~src msg
             end
             else t.dropped <- t.dropped + 1))
    end
  | _ -> t.dropped <- t.dropped + 1

let delivered_count t = t.delivered
let dropped_count t = t.dropped
