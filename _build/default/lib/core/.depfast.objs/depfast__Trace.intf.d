lib/core/trace.mli: Event Format Sim
