lib/core/sched.ml: Effect Engine Event List Sim Time Trace
