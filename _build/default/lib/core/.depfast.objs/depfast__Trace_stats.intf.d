lib/core/trace_stats.mli: Format Sim Trace
