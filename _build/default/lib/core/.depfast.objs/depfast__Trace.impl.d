lib/core/trace.ml: Event Format List Queue Sim String
