lib/core/sched.mli: Event Sim Trace
