lib/core/trace_stats.ml: Format Hashtbl List Option Printf Sim Trace
