lib/core/mutex.mli: Sched
