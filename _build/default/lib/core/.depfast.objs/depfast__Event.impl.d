lib/core/event.ml: Format Hashtbl List Printf
