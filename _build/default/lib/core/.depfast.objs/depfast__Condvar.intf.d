lib/core/condvar.mli: Event Sched Sim
