lib/core/spg.mli: Format Trace
