lib/core/mutex.ml: Event Queue Sched
