lib/core/condvar.ml: Event Sched
