lib/core/spg.ml: Buffer Format Hashtbl List Option Printf Trace
