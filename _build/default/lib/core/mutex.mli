(** A FIFO mutex for coroutines.

    Waiters acquire strictly in arrival order (ownership is handed directly
    to the next waiter on {!unlock}), which is what serial per-connection
    processing of a replication stream needs: messages enter the critical
    section in delivery order. *)

type t

val create : ?label:string -> unit -> t

val lock : Sched.t -> t -> unit
(** Coroutine context; suspends until the lock is held. *)

val unlock : t -> unit
(** @raise Invalid_argument if the mutex is not locked. *)

val with_lock : Sched.t -> t -> (unit -> 'a) -> 'a
(** Runs the thunk holding the lock; always releases, re-raising any
    exception. *)

val locked : t -> bool

val waiters : t -> int
