type t = { label : string; mutable current : Event.t }

let fresh label = Event.signal ~label ()
let create ?(label = "condvar") () = { label; current = fresh label }
let wait sched t = Sched.wait sched t.current
let wait_timeout sched t span = Sched.wait_timeout sched t.current span

let broadcast t =
  let ev = t.current in
  t.current <- fresh t.label;
  Event.fire ev

let event t = t.current
