(** §5 extension: observability through the event interface.

    "The events in principle provide trace points needed by existing
    monitoring techniques and the traces can be used for performance
    analysis." This module aggregates a wait trace into per-key wait-time
    histograms — by event label, by waiting node, or by (node, peer) pair —
    the raw material for dashboards, detectors, and the per-RPC latency
    matrices that tools like IASO build. Works online (subscribe to a live
    trace) or offline (fold over a recorded one). *)

type t

type key =
  | By_label  (** e.g. all ["replicate"] quorum waits together *)
  | By_node  (** all waits performed by each node *)
  | By_edge  (** (waiting node, remote peer) pairs — per-link latency *)

val create : key -> t

val observe : t -> Trace.wait -> unit
(** Fold one record in. *)

val attach : t -> Trace.t -> unit
(** Subscribe to a live trace: every future wait is folded in. *)

val of_trace : key -> Trace.t -> t
(** Offline aggregation of everything recorded so far. *)

val keys : t -> string list
(** Sorted. Edges render as ["n3->n7"]. *)

val histogram : t -> string -> Sim.Hist.t option

val timeouts : t -> string -> int
(** Waits under this key that ended in [Timed_out]. *)

val pp : Format.formatter -> t -> unit
(** One summary line per key: count, mean, p99, max, timeouts. *)
