type outcome = Ready | Timed_out

type wait = {
  cid : int;
  node : int;
  coroutine : string;
  event_id : int;
  event_kind : Event.kind;
  event_label : string;
  quorum_k : int;
  quorum_n : int;
  peers : int list;
  stallers : int list;
  t_start : Sim.Time.t;
  t_end : Sim.Time.t;
  outcome : outcome;
}

type t = {
  mutable enabled : bool;
  records : wait Queue.t;
  mutable subscribers : (wait -> unit) list;
}

let create ?(enabled = false) () = { enabled; records = Queue.create (); subscribers = [] }
let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let record_wait t w =
  if t.enabled then begin
    Queue.add w t.records;
    List.iter (fun f -> f w) t.subscribers
  end

let waits t = List.of_seq (Queue.to_seq t.records)
let wait_count t = Queue.length t.records
let clear t = Queue.clear t.records
let iter t f = Queue.iter f t.records
let on_wait t f = t.subscribers <- f :: t.subscribers

let pp_wait fmt w =
  Format.fprintf fmt "[%a-%a] c%d@n%d %s waits #%d %s %d/%d peers=[%s] %s" Sim.Time.pp
    w.t_start Sim.Time.pp w.t_end w.cid w.node w.coroutine w.event_id w.event_label
    w.quorum_k w.quorum_n
    (String.concat "," (List.map string_of_int w.peers))
    (match w.outcome with Ready -> "ready" | Timed_out -> "timeout")
