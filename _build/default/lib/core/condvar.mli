(** Condition-variable idiom over DepFast events.

    A condvar is a renewable wait point: {!wait} blocks on the current
    underlying event; {!broadcast} fires it and installs a fresh one, waking
    every current waiter. The classic "wait until the predicate holds" loop:

    {[
      while not (predicate ()) do Condvar.wait sched cv done
    ]} *)

type t

val create : ?label:string -> unit -> t

val wait : Sched.t -> t -> unit

val wait_timeout : Sched.t -> t -> Sim.Time.span -> Sched.outcome

val broadcast : t -> unit
(** Wake all current waiters. No-op visible to future waiters. *)

val event : t -> Event.t
(** The current underlying event (e.g. to add into a compound). Consumed by
    the next {!broadcast}. *)
