(** Event trace points (§3.3).

    Every wait executed by a coroutine is recorded with the identity of the
    waiter (coroutine + node), the event waited on, its quorum arity at wait
    time, the remote peers it depends on, and the wait's duration and
    outcome. Traces feed the slowness propagation graph ({!Spg}) and the
    fail-slow audit, and are the hook for the paper's §5 failure
    detectors. *)

type outcome = Ready | Timed_out

type wait = {
  cid : int;  (** waiting coroutine *)
  node : int;  (** node the coroutine runs on; -1 if untagged *)
  coroutine : string;  (** coroutine name *)
  event_id : int;
  event_kind : Event.kind;
  event_label : string;
  quorum_k : int;  (** children needed (1 for basic events) *)
  quorum_n : int;  (** children attached (1 for basic events) *)
  peers : int list;  (** remote nodes the event depends on *)
  stallers : int list;  (** remote nodes able to single-handedly stall it *)
  t_start : Sim.Time.t;
  t_end : Sim.Time.t;
  outcome : outcome;
}

type t

val create : ?enabled:bool -> unit -> t
val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val record_wait : t -> wait -> unit

val waits : t -> wait list
(** In recording order. *)

val wait_count : t -> int
val clear : t -> unit

val iter : t -> (wait -> unit) -> unit

val on_wait : t -> (wait -> unit) -> unit
(** Streaming subscription: called for every subsequent recorded wait. Used
    by online failure detectors. *)

val pp_wait : Format.formatter -> wait -> unit
