(** A system under test, as the benchmark harness sees it: enough to aim
    clients at it, find the leader, and pick fault-injection victims. *)

type t = {
  name : string;
  leader_node : Cluster.Node.t;
  follower_nodes : Cluster.Node.t list;
  make_clients : count:int -> Driver.client list;
}
