lib/workload/ycsb.ml: Array Char Hashtbl Option Sim String
