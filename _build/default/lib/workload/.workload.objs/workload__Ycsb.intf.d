lib/workload/ycsb.mli: Sim
