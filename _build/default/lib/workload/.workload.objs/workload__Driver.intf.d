lib/workload/driver.mli: Cluster Depfast Metrics Sim Ycsb
