lib/workload/metrics.ml: Format Sim
