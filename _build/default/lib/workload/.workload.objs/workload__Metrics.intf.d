lib/workload/metrics.mli: Format Sim
