lib/workload/driver.ml: Cluster Depfast Engine Hist List Metrics Sim Time Ycsb
