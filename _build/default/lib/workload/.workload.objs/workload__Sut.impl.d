lib/workload/sut.ml: Cluster Driver
