(** Results of one benchmark run: the three quantities in every figure of
    the paper (throughput, average latency, P99 latency), plus diagnostics. *)

type t = {
  duration : Sim.Time.span;  (** measurement window *)
  completed : int;
  failed : int;
  latency : Sim.Hist.t;  (** successful ops completing in the window *)
  leader_utilization : float;  (** leader CPU over the window, 0..1 *)
  leader_crashed : bool;
}

val throughput : t -> float
(** Successful operations per second. *)

val mean_latency_ms : t -> float
val p99_latency_ms : t -> float
val p50_latency_ms : t -> float

val normalize : t -> baseline:t -> float * float * float
(** [(throughput, mean latency, p99 latency)] of [t] relative to
    [baseline] — the Figure 1 normalization. *)

val pp : Format.formatter -> t -> unit
