(** Closed-loop benchmark driver (§2.1 methodology).

    Spawns one coroutine per client; each repeatedly draws an operation from
    the workload, executes it through the system under test, and records the
    latency if the operation {e completes} inside the measurement window
    (after [warmup], before [warmup + duration]).

    The driver is implementation-agnostic: a system under test is a list of
    {!client} records — DepFastRaft and the three baselines all provide
    them. *)

type client = {
  node : Cluster.Node.t;  (** where the client coroutine runs *)
  run_op : Ycsb.op -> bool;  (** blocking; [true] iff committed *)
}

val run :
  Depfast.Sched.t ->
  clients:client list ->
  workload:Ycsb.t ->
  warmup:Sim.Time.span ->
  duration:Sim.Time.span ->
  ?leader_node:Cluster.Node.t ->
  unit ->
  Metrics.t
(** Drives the engine itself (run this from outside any coroutine, after
    the cluster has a leader). [leader_node] enables CPU-utilization and
    crash reporting in the metrics. *)
