(** YCSB-style workload generation (§2.1).

    The paper drives each system with the YCSB write workload, updating
    500K records, from 256–1200 concurrent closed-loop clients. Keys follow
    YCSB's zipfian request distribution; values are fixed-size blobs. *)

type t = {
  record_count : int;
  value_size : int;
  read_proportion : float;  (** 0.0 = pure updates (the paper's setting) *)
  zipf_theta : float;  (** YCSB default 0.99 *)
}

val update_heavy : t
(** The paper's workload: 100% updates over 500K records, 1 KiB values. *)

val scaled : ?records:int -> ?value_size:int -> t -> t
(** Shrink a workload for quick tests. *)

type op =
  | Update of { key : string; value : string }
  | Read of { key : string }

val key_of_rank : t -> int -> string
(** YCSB-style key name for a record rank, e.g. ["user3342"]. *)

type gen
(** Per-client operation generator (owns its RNG stream). *)

val make_gen : t -> Sim.Rng.t -> gen

val next_op : gen -> op
