(** Figure 1: performance of the three baseline RSM implementations with a
    fail-slow follower (three-node deployments), normalized to each system's
    own no-fault baseline.

    The paper reports: 17–41% throughput drops, 21–50% average-latency
    increases, 1.6–3.46x P99 increases, and RethinkDB leader crashes under
    CPU fail-slow faults. *)

type row = {
  system : Runner.system;
  fault : Cluster.Fault.kind option;
  throughput_norm : float;
  mean_latency_norm : float;
  p99_latency_norm : float;
  crashed : bool;
  raw : Workload.Metrics.t;
}

let run ?(params = Params.full) ?(systems = Runner.baseline_systems) () =
  List.concat_map
    (fun system ->
      let base =
        Runner.run_cell ~params ~system ~n:3 ~slow_count:1 ~fault:None ()
      in
      let base_m = base.Runner.metrics in
      let no_fault_row =
        {
          system;
          fault = None;
          throughput_norm = 1.0;
          mean_latency_norm = 1.0;
          p99_latency_norm = 1.0;
          crashed = base_m.Workload.Metrics.leader_crashed;
          raw = base_m;
        }
      in
      no_fault_row
      :: List.map
           (fun kind ->
             let cell =
               Runner.run_cell ~params ~system ~n:3 ~slow_count:1 ~fault:(Some kind) ()
             in
             let m = cell.Runner.metrics in
             let tput, mean, p99 = Workload.Metrics.normalize m ~baseline:base_m in
             {
               system;
               fault = Some kind;
               throughput_norm = tput;
               mean_latency_norm = mean;
               p99_latency_norm = p99;
               crashed = m.Workload.Metrics.leader_crashed;
               raw = m;
             })
           Cluster.Fault.all)
    systems

let print_rows rows =
  Printf.printf
    "\n=== Figure 1: baseline RSMs, 3 nodes, one fail-slow follower (normalized) ===\n\n";
  Printf.printf "%-15s %-20s | %10s %10s %10s | %9s %8s %8s\n" "System" "Fault"
    "tput(norm)" "avg(norm)" "p99(norm)" "tput/s" "avg ms" "p99 ms";
  Printf.printf "%s\n" (String.make 105 '-');
  List.iter
    (fun r ->
      Printf.printf "%-15s %-20s | %10.2f %10.2f %10.2f | %9.0f %8.2f %8.2f%s\n"
        (Runner.system_name r.system)
        (Runner.fault_name r.fault) r.throughput_norm r.mean_latency_norm
        r.p99_latency_norm
        (Workload.Metrics.throughput r.raw)
        (Workload.Metrics.mean_latency_ms r.raw)
        (Workload.Metrics.p99_latency_ms r.raw)
        (if r.crashed then "  ** LEADER CRASHED **" else ""))
    rows

let print ?params ?systems () = print_rows (run ?params ?systems ())
