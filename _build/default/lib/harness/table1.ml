(** Table 1: the fail-slow fault-injection catalog, with both the paper's
    injection method and this repo's simulator mapping. *)

let rows () =
  List.map
    (fun k -> (Cluster.Fault.name k, Cluster.Fault.paper_injection k, Cluster.Fault.sim_injection k))
    Cluster.Fault.all

let print () =
  Printf.printf "\n=== Table 1: simulated fail-slow faults ===\n\n";
  Printf.printf "%-20s | %-72s | %s\n" "Fail-slow type" "Paper's fault injection"
    "Simulator mapping";
  Printf.printf "%s\n" (String.make 160 '-');
  List.iter
    (fun (name, paper, sim) -> Printf.printf "%-20s | %-72s | %s\n" name paper sim)
    (rows ())
