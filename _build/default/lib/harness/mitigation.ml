(** §5 extension: fail-slow leader detection + mitigation via leadership
    transfer.

    A CPU fail-slow fault is injected into the {e leader} mid-run. Without
    mitigation, every request suffers (the known algorithmic weakness of
    leader-based consensus — cf. Copilot). With the detector attached, the
    commit-latency trace signal crosses the threshold, leadership transfers
    to a healthy follower, and throughput recovers; the fail-slow node keeps
    serving as a follower, which DepFastRaft tolerates. *)

type phase = { label : string; metrics : Workload.Metrics.t }

type result = {
  variant : string;
  phases : phase list;  (** before / during+after fault *)
  mitigated : int;  (** leadership transfers triggered *)
  detect_ms : float;  (** fault injection -> transfer, ms (-1 if none) *)
}

let run_variant ?(params = Params.full) ~with_detector () =
  let engine = Sim.Engine.create ~seed:params.Params.seed () in
  let sched = Depfast.Sched.create engine in
  let cfg = Raft.Config.default in
  let g = Raft.Group.create sched ~n:3 ~cfg () in
  Depfast.Sched.spawn sched ~name:"bootstrap" (fun () -> Raft.Group.elect g 0);
  Depfast.Sched.run ~until:(Sim.Time.sec 1) sched;
  let detectors =
    if with_detector then List.map (fun s -> Raft.Detector.attach s ()) g.Raft.Group.servers
    else []
  in
  let leader_node = Raft.Server.node (Raft.Group.server g 0) in
  let clients = Runner.clients_of_group g ~count:params.Params.clients in
  (* phase 1: healthy *)
  let healthy =
    Workload.Driver.run sched ~clients ~workload:(Params.workload params)
      ~warmup:params.Params.warmup ~duration:params.Params.duration ~leader_node ()
  in
  (* inject the fault into the CURRENT leader *)
  let injected_at = Sim.Engine.now engine in
  ignore (Cluster.Fault.inject leader_node Cluster.Fault.Cpu_slow);
  let faulty =
    Workload.Driver.run sched ~clients ~workload:(Params.workload params)
      ~warmup:(Sim.Time.ms 200) ~duration:params.Params.duration ~leader_node ()
  in
  let mitigated = List.fold_left (fun acc d -> acc + Raft.Detector.mitigations d) 0 detectors in
  let detect_ms =
    if mitigated > 0 then
      (* approximate: when a non-initial leader first shows up *)
      match Raft.Group.leader g with
      | Some s when Raft.Server.id s <> 0 ->
        Sim.Time.to_ms_f (Sim.Time.diff (Sim.Engine.now engine) injected_at)
      | _ -> -1.0
    else -1.0
  in
  {
    variant = (if with_detector then "with detector + transfer" else "no mitigation");
    phases = [ { label = "healthy"; metrics = healthy }; { label = "leader fail-slow"; metrics = faulty } ];
    mitigated;
    detect_ms;
  }

let run ?params () =
  [ run_variant ?params ~with_detector:false (); run_variant ?params ~with_detector:true () ]

let print ?params () =
  Printf.printf
    "\n=== Mitigation (§5): fail-slow LEADER, detector + leadership transfer ===\n\n";
  List.iter
    (fun r ->
      Printf.printf "%s:\n" r.variant;
      List.iter
        (fun p ->
          Printf.printf "  %-18s %9.0f tput/s, avg %8.2f ms, p99 %8.2f ms\n" p.label
            (Workload.Metrics.throughput p.metrics)
            (Workload.Metrics.mean_latency_ms p.metrics)
            (Workload.Metrics.p99_latency_ms p.metrics))
        r.phases;
      if r.mitigated > 0 then
        Printf.printf "  leadership transfers: %d\n" r.mitigated;
      Printf.printf "\n")
    (run ?params ())
