(** Ablations for the design choices DESIGN.md calls out.

    A1 — {e quorum wait vs wait-for-all}: replace DepFastRaft's majority
    arity with wait-for-everyone ([replication_arity = `All]). Under a CPU
    fail-slow follower the "all" variant degrades like the baselines,
    showing the QuorumEvent is what buys the tolerance.

    A2 — {e EntryCache size} in the TiDB-like baseline: with a cache large
    enough that nothing is evicted, the blocking disk reads disappear and
    so does most of the degradation — isolating the diagnosed root cause.

    A3 — {e framework-aware broadcast} (§2.3): with straggler discarding
    off, abandoned-call buffers for a slow follower are never released and
    the leader's outstanding-RPC memory grows; with it on, it stays flat.

    A4 — {e chain replication vs quorum replication} (§3.3's tradeoff):
    the same three nodes, the same workload, the same CPU fail-slow fault —
    but writes flow through a chain whose every link is a 1/1 wait. The
    chain collapses where the quorum barely moves, quantifying what the
    paper's SPG analysis predicts (and why §2.1 turned chained replication
    off). *)

type row = { label : string; fault : string; metrics : Workload.Metrics.t }

let quorum_vs_all ?(params = Params.full) () =
  List.concat_map
    (fun (label, arity) ->
      let cfg = { Raft.Config.default with replication_arity = arity } in
      List.map
        (fun fault ->
          let cell =
            Runner.run_cell ~cfg ~params ~system:Runner.Depfast_raft ~n:3
              ~slow_count:1 ~fault ()
          in
          {
            label;
            fault = Runner.fault_name fault;
            metrics = cell.Runner.metrics;
          })
        [ None; Some Cluster.Fault.Cpu_slow ])
    [ ("quorum (majority)", `Majority); ("wait-for-all", `All) ]

let entry_cache ?(params = Params.full) () =
  (* the TiDB-like cluster with its default (evicting) cache vs an
     effectively infinite cache *)
  List.map
    (fun (label, cache_size) ->
      let engine = Sim.Engine.create ~seed:params.Params.seed () in
      let sched = Depfast.Sched.create engine in
      let cfg = Raft.Config.default in
      let cluster = Baseline.Tidb_like.create sched ~n:3 ~cfg () in
      Baseline.Tidb_like.set_cache_size cluster cache_size;
      let sut = Baseline.Tidb_like.sut cluster ~cfg in
      (match sut.Workload.Sut.follower_nodes with
      | v :: _ -> ignore (Cluster.Fault.inject v Cluster.Fault.Cpu_slow)
      | [] -> ());
      let clients = sut.Workload.Sut.make_clients ~count:params.Params.clients in
      let metrics =
        Workload.Driver.run sched ~clients ~workload:(Params.workload params)
          ~warmup:params.Params.warmup ~duration:params.Params.duration
          ~leader_node:sut.Workload.Sut.leader_node ()
      in
      {
        label = Printf.sprintf "%s (%d blocking reads)" label
            (Baseline.Tidb_like.blocked_disk_reads cluster);
        fault = "CPU (slow)";
        metrics;
      })
    [ ("EntryCache 4096", 4096); ("EntryCache unbounded", max_int / 2) ]

(** Framework-level view of §2.3's broadcast optimization: a caller issues a
    stream of majority broadcasts while one replica never answers in time.
    With straggler discarding, each broadcast's stale buffers are released
    the moment its quorum is met; without it, they accumulate until (if
    ever) the slow replica replies. Returns
    [(label, peak outstanding bytes, discarded responses)]. *)
let discard_stragglers ?(params = Params.full) () =
  ignore params;
  List.map
    (fun (label, discard) ->
      let engine = Sim.Engine.create ~seed:5L () in
      let sched = Depfast.Sched.create engine in
      let rpc : (unit, unit) Cluster.Rpc.t = Cluster.Rpc.create sched () in
      Cluster.Rpc.set_discard_stragglers rpc discard;
      let caller = Cluster.Node.create sched ~id:0 ~name:"caller" () in
      Cluster.Rpc.attach rpc caller;
      List.iter
        (fun i ->
          let replica = Cluster.Node.create sched ~id:i ~name:(Printf.sprintf "r%d" i) () in
          Cluster.Rpc.serve rpc ~node:replica ~handler:(fun ~src:_ () ->
              (* replica 3 is fail-slow: each reply takes ~2 s of CPU *)
              if i = 3 then Cluster.Node.cpu_work replica (Sim.Time.sec 2);
              Some ()))
        [ 1; 2; 3 ];
      let peak = ref 0 in
      Cluster.Node.spawn caller ~name:"broadcaster" (fun () ->
          for _ = 1 to 2_000 do
            let quorum, _calls =
              Cluster.Rpc.broadcast rpc ~src:caller ~dsts:[ 1; 2; 3 ]
                ~arity:Depfast.Event.Majority ~bytes:4096 ()
            in
            Depfast.Sched.wait sched quorum;
            peak := max !peak (Cluster.Rpc.outstanding_bytes rpc ~node:0)
          done);
      Depfast.Sched.run ~until:(Sim.Time.sec 30) sched;
      (label, !peak, Cluster.Rpc.discarded_responses rpc))
    [ ("discard stragglers (DepFast)", true); ("keep stragglers", false) ]

(** Chain replication vs DepFastRaft under a fail-slow middle node. *)
let chain_vs_quorum ?(params = Params.full) () =
  let run_chain fault =
    let engine = Sim.Engine.create ~seed:params.Params.seed () in
    let sched = Depfast.Sched.create engine in
    let cfg = Raft.Config.default in
    let cluster = Baseline.Chain.create sched ~n:3 ~cfg () in
    let sut = Baseline.Chain.sut cluster ~cfg in
    (match fault with
    | None -> ()
    | Some kind ->
      (* the middle node of the chain *)
      ignore (Cluster.Fault.inject (List.hd sut.Workload.Sut.follower_nodes) kind));
    let clients = sut.Workload.Sut.make_clients ~count:params.Params.clients in
    Workload.Driver.run sched ~clients ~workload:(Params.workload params)
      ~warmup:params.Params.warmup ~duration:params.Params.duration
      ~leader_node:sut.Workload.Sut.leader_node ()
  in
  let run_quorum fault =
    (Runner.run_cell ~params ~system:Runner.Depfast_raft ~n:3 ~slow_count:1 ~fault ())
      .Runner.metrics
  in
  List.concat_map
    (fun fault ->
      [
        { label = "chain replication"; fault = Runner.fault_name fault; metrics = run_chain fault };
        { label = "quorum (DepFastRaft)"; fault = Runner.fault_name fault; metrics = run_quorum fault };
      ])
    [ None; Some Cluster.Fault.Cpu_slow ]

let print ?(params = Params.full) () =
  Printf.printf "\n=== Ablation A1: quorum wait vs wait-for-all (DepFastRaft, 3 nodes) ===\n\n";
  Printf.printf "%-20s %-15s | %9s %8s %8s\n" "Variant" "Fault" "tput/s" "avg ms" "p99 ms";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun r ->
      Printf.printf "%-20s %-15s | %9.0f %8.2f %8.2f%s\n" r.label r.fault
        (Workload.Metrics.throughput r.metrics)
        (Workload.Metrics.mean_latency_ms r.metrics)
        (Workload.Metrics.p99_latency_ms r.metrics)
        (if r.metrics.Workload.Metrics.leader_crashed then "  ** CRASH **" else ""))
    (quorum_vs_all ~params ());
  Printf.printf "\n=== Ablation A2: TiDB-like EntryCache size under a CPU-slow follower ===\n\n";
  List.iter
    (fun r ->
      Printf.printf "%-45s | %9.0f tput/s, avg %8.2f ms, p99 %8.2f ms\n" r.label
        (Workload.Metrics.throughput r.metrics)
        (Workload.Metrics.mean_latency_ms r.metrics)
        (Workload.Metrics.p99_latency_ms r.metrics))
    (entry_cache ~params ());
  Printf.printf "\n=== Ablation A3: framework-aware broadcast (discard stragglers) ===\n\n";
  Printf.printf "2000 majority broadcasts, one fail-slow replica:\n";
  List.iter
    (fun (label, peak, discarded) ->
      Printf.printf
        "%-30s | peak outstanding buffers: %9d bytes | late responses dropped: %d\n" label
        peak discarded)
    (discard_stragglers ~params ());
  Printf.printf
    "\n=== Ablation A4: chain replication vs quorum under a fail-slow node (§3.3) ===\n\n";
  Printf.printf "%-22s %-15s | %9s %8s %8s\n" "Topology" "Fault" "tput/s" "avg ms" "p99 ms";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun r ->
      Printf.printf "%-22s %-15s | %9.0f %8.2f %8.2f\n" r.label r.fault
        (Workload.Metrics.throughput r.metrics)
        (Workload.Metrics.mean_latency_ms r.metrics)
        (Workload.Metrics.p99_latency_ms r.metrics))
    (chain_vs_quorum ~params ())
