(** Figure 3: DepFastRaft with a minority of fail-slow followers, 3-node and
    5-node deployments — absolute throughput / average latency / P99.

    The paper's §3.4 claim: all three metrics stay within a 5% band of the
    no-fault baseline, at a base throughput around 5K requests/second. *)

type row = {
  n : int;
  fault : Cluster.Fault.kind option;
  metrics : Workload.Metrics.t;
  drift_tput : float;  (** (value - baseline) / baseline *)
  drift_mean : float;
  drift_p99 : float;
}

let minority n = ((n + 1) / 2) - 1

let run_setup ?(params = Params.full) ?(cfg = Raft.Config.default) ~n () =
  let base =
    Runner.run_cell ~cfg ~params ~system:Runner.Depfast_raft ~n ~slow_count:0
      ~fault:None ()
  in
  let base_m = base.Runner.metrics in
  let drift v b = if b = 0.0 then 0.0 else (v -. b) /. b in
  let row_of fault m =
    {
      n;
      fault;
      metrics = m;
      drift_tput =
        drift (Workload.Metrics.throughput m) (Workload.Metrics.throughput base_m);
      drift_mean =
        drift (Workload.Metrics.mean_latency_ms m) (Workload.Metrics.mean_latency_ms base_m);
      drift_p99 =
        drift (Workload.Metrics.p99_latency_ms m) (Workload.Metrics.p99_latency_ms base_m);
    }
  in
  row_of None base_m
  :: List.map
       (fun kind ->
         let cell =
           Runner.run_cell ~cfg ~params ~system:Runner.Depfast_raft ~n
             ~slow_count:(minority n) ~fault:(Some kind) ()
         in
         row_of (Some kind) cell.Runner.metrics)
       Cluster.Fault.all

let run ?params ?cfg () =
  List.concat_map (fun n -> run_setup ?params ?cfg ~n ()) [ 3; 5 ]

let print_rows rows =
  Printf.printf
    "\n=== Figure 3: DepFastRaft with a minority of fail-slow followers ===\n\n";
  Printf.printf "%-8s %-20s | %9s %8s %8s | %7s %7s %7s | %5s\n" "Setup" "Fault"
    "tput/s" "avg ms" "p99 ms" "d.tput" "d.avg" "d.p99" "cpu%";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun r ->
      Printf.printf
        "%-8s %-20s | %9.0f %8.2f %8.2f | %6.1f%% %6.1f%% %6.1f%% | %4.0f%%\n"
        (Printf.sprintf "%d nodes" r.n)
        (Runner.fault_name r.fault)
        (Workload.Metrics.throughput r.metrics)
        (Workload.Metrics.mean_latency_ms r.metrics)
        (Workload.Metrics.p99_latency_ms r.metrics)
        (100.0 *. r.drift_tput) (100.0 *. r.drift_mean) (100.0 *. r.drift_p99)
        (100.0 *. r.metrics.Workload.Metrics.leader_utilization))
    rows;
  let worst =
    List.fold_left
      (fun acc r ->
        List.fold_left max acc
          [ Float.abs r.drift_tput; Float.abs r.drift_mean; Float.abs r.drift_p99 ])
      0.0 rows
  in
  Printf.printf "\nWorst-case drift across all faults and setups: %.1f%% %s\n"
    (100.0 *. worst)
    (if worst <= 0.05 then "(within the paper's 5% band)" else "(paper's band: 5%)")

let print ?params ?cfg () = print_rows (run ?params ?cfg ())
