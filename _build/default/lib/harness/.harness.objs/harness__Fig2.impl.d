lib/harness/fig2.ml: Cluster Depfast Format List Printf Raft Sim
