lib/harness/runner.ml: Baseline Cluster Depfast List Params Raft Sim Workload
