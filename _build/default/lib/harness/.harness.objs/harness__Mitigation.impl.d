lib/harness/mitigation.ml: Cluster Depfast List Params Printf Raft Runner Sim Workload
