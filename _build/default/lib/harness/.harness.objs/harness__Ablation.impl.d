lib/harness/ablation.ml: Baseline Cluster Depfast List Params Printf Raft Runner Sim String Workload
