lib/harness/table1.ml: Cluster List Printf String
