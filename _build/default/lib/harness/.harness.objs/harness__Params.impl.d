lib/harness/params.ml: Sim Workload
