lib/harness/fig3.ml: Cluster Float List Params Printf Raft Runner String Workload
