lib/harness/fig1.ml: Cluster List Params Printf Runner String Workload
