(** Experiment parameters.

    [full] follows the paper's §2.1 methodology (YCSB update workload over
    500K records, hundreds of closed-loop clients, leader around 75% CPU);
    [quick] shrinks everything for CI and unit tests. *)

type t = {
  seed : int64;
  clients : int;
  warmup : Sim.Time.span;
  duration : Sim.Time.span;
  records : int;
  value_size : int;
}

let full =
  {
    seed = 7L;
    clients = 48;
    warmup = Sim.Time.sec 2;
    duration = Sim.Time.sec 12;
    records = 500_000;
    value_size = 1024;
  }

let quick =
  {
    seed = 7L;
    clients = 64;
    warmup = Sim.Time.ms 500;
    duration = Sim.Time.sec 3;
    records = 10_000;
    value_size = 1024;
  }

let workload t =
  Workload.Ycsb.scaled ~records:t.records ~value_size:t.value_size
    Workload.Ycsb.update_heavy
