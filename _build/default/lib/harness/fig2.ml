(** Figure 2: the slowness propagation graph of a three-shard DepFastRaft
    deployment (servers s1–s9 in three quorums, clients c1–c3).

    Expected shape, as in the paper: {e green} majority-arity edges between
    the members of each quorum (no single-event waits inside groups), and
    {e red} 1/1 edges from each client to the leader it talks to. *)

type result = {
  spg : Depfast.Spg.t;
  dot : string;
  edges : Depfast.Spg.edge list;
  violations : Depfast.Spg.violation list;  (** with clients exempted *)
  intra_group_tolerant : bool;
  names : int -> string;
}

let run ?(seed = 21L) () =
  let engine = Sim.Engine.create ~seed () in
  let trace = Depfast.Trace.create () in
  let sched = Depfast.Sched.create ~trace engine in
  let cfg = { Raft.Config.default with enable_hiccups = false } in
  (* three independent raft groups: s1-s3, s4-s6, s7-s9 (node ids 0-8) *)
  let groups =
    List.map
      (fun shard -> Raft.Group.create sched ~n:3 ~cfg ~first_node_id:(3 * shard) ())
      [ 0; 1; 2 ]
  in
  List.iteri
    (fun shard g ->
      Depfast.Sched.spawn sched ~name:"bootstrap" (fun () ->
          Raft.Group.elect g (3 * shard)))
    groups;
  Depfast.Sched.run ~until:(Sim.Time.sec 1) sched;
  (* one client per shard (node ids 100-102 -> c1-c3) *)
  let clients =
    List.mapi
      (fun shard g -> List.hd (Raft.Group.make_clients g ~count:1 ~first_node_id:(100 + shard) ()))
      groups
  in
  (* record traces while the clients issue writes *)
  Depfast.Trace.enable trace;
  List.iteri
    (fun i c ->
      Cluster.Node.spawn (Raft.Client.node c) ~name:"fig2-client" (fun () ->
          for k = 1 to 50 do
            ignore
              (Raft.Client.put c
                 ~key:(Printf.sprintf "shard%d-key%d" i k)
                 ~value:"v")
          done))
    clients;
  Depfast.Sched.run ~until:(Sim.Time.sec 4) sched;
  Depfast.Trace.disable trace;
  let names id =
    if id >= 100 then Printf.sprintf "c%d" (id - 99) else Printf.sprintf "s%d" (id + 1)
  in
  let spg = Depfast.Spg.of_trace trace in
  let is_client ~node = node >= 100 in
  {
    spg;
    dot = Depfast.Spg.to_dot ~node_name:names spg;
    edges = Depfast.Spg.edges spg;
    violations = Depfast.Spg.audit ~allow:is_client trace;
    intra_group_tolerant = Depfast.Spg.is_fail_slow_tolerant ~allow:is_client trace;
    names;
  }

let print ?seed () =
  let r = run ?seed () in
  Printf.printf
    "\n=== Figure 2: slowness propagation graph (3-shard DepFastRaft, s1-s9, c1-c3) ===\n\n";
  Depfast.Spg.pp ~node_name:r.names Format.std_formatter r.spg;
  Format.pp_print_flush Format.std_formatter ();
  Printf.printf "\nFail-slow audit (clients exempted): %s\n"
    (if r.intra_group_tolerant then
       "PASS - no single-event waits inside the replication quorums"
     else Printf.sprintf "FAIL - %d violating waits" (List.length r.violations));
  Printf.printf "\nGraphviz:\n%s\n" r.dot
