lib/baseline/rethink_like.ml: Cluster Common Depfast Hashtbl List Printf Queue Raft Workload
