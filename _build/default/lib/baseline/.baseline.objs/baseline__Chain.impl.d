lib/baseline/chain.ml: Cluster Common Depfast List Queue Raft Workload
