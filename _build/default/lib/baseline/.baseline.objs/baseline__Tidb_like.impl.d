lib/baseline/tidb_like.ml: Cluster Common Depfast Hashtbl List Queue Raft Workload
