lib/baseline/common.ml: Cluster Depfast Hashtbl List Printf Queue Raft Sim Workload
