lib/baseline/mongo_like.ml: Cluster Common Depfast Hashtbl List Option Queue Raft Sim Workload
