(** Event trace points (§3.3).

    Every wait executed by a coroutine is recorded with the identity of the
    waiter (coroutine + node), the event waited on, its quorum arity at wait
    time, and the wait's duration and outcome. Traces feed the slowness
    propagation graph ({!Spg}) and the fail-slow audit, and are the hook for
    the paper's §5 failure detectors.

    Records live in a fixed-capacity ring buffer: recording a wait is O(1)
    and allocation-free beyond the record itself, and once the ring is full
    the {e oldest} record is overwritten ({!dropped} counts how many).
    Peer and staller sets are captured {e lazily}: the record holds the
    event, and {!peers}/{!stallers} derive the sets on first use (memoised),
    so a trace-enabled wait never pays for an analysis nobody reads. For
    waits that ended [Ready] the root event is frozen (children cannot be
    added to a fired compound), so lazy evaluation matches eager capture;
    for [Timed_out] waits on still-live events the sets reflect the
    structure at first read, which is at least as current as record time. *)

type outcome = Ready | Timed_out

type wait = {
  cid : int;  (** waiting coroutine *)
  node : int;  (** node the coroutine runs on; -1 if untagged *)
  coroutine : string;  (** coroutine name *)
  event : Event.t;  (** the event waited on *)
  quorum_k : int;  (** children needed (1 for basic events) *)
  quorum_n : int;  (** children attached (1 for basic events) *)
  t_start : Sim.Time.t;
  t_end : Sim.Time.t;
  outcome : outcome;
  mutable stallers_memo : int list option;  (** internal memo; use {!stallers} *)
}

val event : wait -> Event.t
val event_id : wait -> int
val event_kind : wait -> Event.kind
val event_label : wait -> string

val peers : wait -> int list
(** Remote nodes the event depends on (cached on the event). *)

val stallers : wait -> int list
(** Remote nodes able to single-handedly stall the wait
    (see {!Event.stallers}); computed on first call, then memoised. *)

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [capacity] bounds the ring (default 65536 records); the buffer itself
    is allocated lazily on the first recorded wait. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val capacity : t -> int

val record_wait : t -> wait -> unit

val waits : t -> wait list
(** In recording order, oldest first. *)

val wait_count : t -> int
(** Records currently held (≤ capacity). *)

val dropped : t -> int
(** Records overwritten because the ring was full. *)

val clear : t -> unit
(** Drop all records (and reset {!dropped}). *)

val iter : t -> (wait -> unit) -> unit

val on_wait : t -> (wait -> unit) -> unit
(** Streaming subscription: called for every subsequent recorded wait
    (including waits that will later be overwritten in the ring). Used by
    online failure detectors. *)

val pp_wait : Format.formatter -> wait -> unit
