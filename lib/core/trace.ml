type outcome = Ready | Timed_out

type wait = {
  cid : int;
  node : int;
  coroutine : string;
  event : Event.t;
  quorum_k : int;
  quorum_n : int;
  t_start : Sim.Time.t;
  t_end : Sim.Time.t;
  outcome : outcome;
  mutable stallers_memo : int list option;
}

let event w = w.event
let event_id w = Event.id w.event
let event_kind w = Event.kind w.event
let event_label w = Event.label w.event

(* lazy capture: the wait record keeps the event itself; peer/staller sets
   are derived on demand. [Event.peers] is cached on the event, and the
   staller analysis — the expensive part — runs at most once per record. *)
let peers w = Event.peers w.event

let stallers w =
  match w.stallers_memo with
  | Some l -> l
  | None ->
    let l = Event.stallers w.event in
    w.stallers_memo <- Some l;
    l

type t = {
  mutable enabled : bool;
  capacity : int;
  mutable buf : wait array;  (* ring; allocated on first record *)
  mutable start : int;  (* index of the oldest record *)
  mutable len : int;
  mutable dropped : int;
  mutable subscribers : (wait -> unit) list;
}

let default_capacity = 1 lsl 16

(* placeholder for empty ring slots; never observable through the API *)
let dummy_wait =
  lazy
    {
      cid = -1;
      node = -1;
      coroutine = "";
      event = Event.signal ~label:"(trace-dummy)" ();
      quorum_k = 0;
      quorum_n = 0;
      t_start = Sim.Time.zero;
      t_end = Sim.Time.zero;
      outcome = Ready;
      stallers_memo = Some [];
    }

let create ?(capacity = default_capacity) ?(enabled = false) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { enabled; capacity; buf = [||]; start = 0; len = 0; dropped = 0; subscribers = [] }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled
let capacity t = t.capacity
let dropped t = t.dropped

let record_wait t w =
  if t.enabled then begin
    if Array.length t.buf = 0 then t.buf <- Array.make t.capacity (Lazy.force dummy_wait);
    if t.len = t.capacity then begin
      (* full: overwrite the oldest record (drop-oldest policy) *)
      t.buf.(t.start) <- w;
      t.start <- (t.start + 1) mod t.capacity;
      t.dropped <- t.dropped + 1
    end
    else begin
      t.buf.((t.start + t.len) mod t.capacity) <- w;
      t.len <- t.len + 1
    end;
    List.iter (fun f -> f w) t.subscribers
  end

let waits t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.capacity))
let wait_count t = t.len

let clear t =
  if Array.length t.buf > 0 then Array.fill t.buf 0 t.capacity (Lazy.force dummy_wait);
  t.start <- 0;
  t.len <- 0;
  t.dropped <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod t.capacity)
  done

let on_wait t f = t.subscribers <- f :: t.subscribers

let pp_wait fmt w =
  Format.fprintf fmt "[%a-%a] c%d@n%d %s waits #%d %s %d/%d peers=[%s] %s" Sim.Time.pp
    w.t_start Sim.Time.pp w.t_end w.cid w.node w.coroutine (event_id w) (event_label w)
    w.quorum_k w.quorum_n
    (String.concat "," (List.map string_of_int (peers w)))
    (match w.outcome with Ready -> "ready" | Timed_out -> "timeout")
