type kind = Signal | Timer | Rpc | Disk | Quorum | And_ | Or_

type arity = Count of int | Majority | All | Any

(* Children live in a growable array so the steady-state hot paths (fire
   propagation, quorum counting, staller analysis) neither allocate nor
   re-traverse lists. Observers are reverse-order lists run by recursing to
   the tail first, so registration is one cons and firing allocates
   nothing. The whole mutable lifecycle — the ready and abandoned bits, the
   ready-child count, and the attached-child count (the children array's
   live prefix length) — packs into the single [state] word, and
   [peer_node] is [-1] when absent, keeping the record at 12 words with no
   option boxes. *)
type t = {
  id : int;
  kind : kind;
  label : string;
  arity : arity;
  peer_node : int;  (* -1 = none *)
  mutable state : int;
      (* bit 0 = ready, bit 1 = abandoned,
         bits 2..31 = ready children, bits 32.. = attached children *)
  mutable children : t array;  (* attachment order; live prefix only *)
  mutable parents : t list;
  mutable fire_obs : (unit -> unit) list;  (* reverse registration order *)
  mutable abandon_obs : (unit -> unit) list;
  mutable peers_cache : int list option;
      (* transitive remote peers, dedup in DFS pre-order. Invariant: if a
         node's cache is [None], every ancestor's cache is [None] too
         (computing a compound's peers caches the whole subtree), so
         invalidation can stop at the first uncached ancestor. *)
}

let ready_bit = 1
let abandoned_bit = 2
let one_ready = 1 lsl 2
let one_child = 1 lsl 32
let n_children_of t = t.state lsr 32
let n_ready_of t = (t.state lsr 2) land 0x3FFFFFFF

let dummy =
  {
    id = 0;
    kind = Signal;
    label = "";
    arity = Any;
    peer_node = -1;
    state = ready_bit;
    children = [||];
    parents = [];
    fire_obs = [];
    abandon_obs = [];
    peers_cache = None;
  }

(* a lock-free counter, so id allocation stays domain-safe once engines
   run on separate OCaml 5 domains (ids start at 1; 0 is [dummy]) *)
let next_id = Atomic.make 0

let make_p label peer kind arity =
  {
    id = Atomic.fetch_and_add next_id 1 + 1;
    kind;
    label;
    arity;
    peer_node = peer;
    state = 0;
    children = [||];
    parents = [];
    fire_obs = [];
    abandon_obs = [];
    peers_cache = None;
  }

let make ?(label = "") kind arity = make_p label (-1) kind arity
let id t = t.id
let kind t = t.kind
let label t = t.label
let signal ?label () = make ?label Signal Any
let rpc_completion ?(label = "") ~peer () = make_p label peer Rpc Any
let disk_completion ?(label = "") ~node () = make_p label node Disk Any
let timer_kind ?label () = make ?label Timer Any
let quorum ?label arity = make ?label Quorum arity
let and_ ?label () = make ?label And_ All
let or_ ?label () = make ?label Or_ Any
let is_ready t = t.state land ready_bit <> 0
let is_abandoned t = t.state land abandoned_bit <> 0
let child_count t = n_children_of t
let children t = List.init (n_children_of t) (fun i -> t.children.(i))

let iter_children t f =
  for i = 0 to n_children_of t - 1 do
    f t.children.(i)
  done

let ready_children t = n_ready_of t
let peer t = if t.peer_node < 0 then None else Some t.peer_node

let is_compound t =
  match t.kind with Quorum | And_ | Or_ -> true | Signal | Timer | Rpc | Disk -> false

let required t =
  if not (is_compound t) then 1
  else
    match t.arity with
    | Count k -> k
    | Majority -> (n_children_of t / 2) + 1
    | All -> n_children_of t
    | Any -> 1

(* observers are stored in reverse registration order; recursing to the
   tail first runs them in registration order without a List.rev *)
let rec run_obs = function
  | [] -> ()
  | f :: tl ->
    run_obs tl;
    f ()

(* mark [t] ready and propagate to parents; compounds with zero required
   children fire as soon as checked *)
let rec become_ready t =
  if t.state land ready_bit = 0 then begin
    t.state <- t.state lor ready_bit;
    let obs = t.fire_obs in
    t.fire_obs <- [];
    run_obs obs;
    List.iter child_became_ready t.parents
  end

and child_became_ready parent =
  if parent.state land ready_bit = 0 then begin
    parent.state <- parent.state + one_ready;
    check_compound parent
  end

and check_compound t =
  if
    t.state land ready_bit = 0
    && is_compound t
    && n_children_of t > 0
    && n_ready_of t >= required t
  then become_ready t

let fire t =
  if is_compound t then invalid_arg "Event.fire: compound events fire via children";
  if t.state land abandoned_bit = 0 then become_ready t

(* initial capacity 6 covers the common shapes (or_ pairs, 3- and 5-child
   quorums plus a local WAL sibling) with a single allocation; the literal
   allocates inline where [Array.make] would be an out-of-line C call *)
let push_child parent child =
  let n = n_children_of parent in
  let cap = Array.length parent.children in
  if n = cap then begin
    let bigger =
      if cap = 0 then [| dummy; dummy; dummy; dummy; dummy; dummy |]
      else Array.make (2 * cap) dummy
    in
    Array.blit parent.children 0 bigger 0 n;
    parent.children <- bigger
  end;
  parent.children.(n) <- child;
  parent.state <- parent.state + one_child

(* see the [peers_cache] invariant: stopping at an uncached node is safe *)
let rec invalidate_peers t =
  match t.peers_cache with
  | None -> ()
  | Some _ ->
    t.peers_cache <- None;
    List.iter invalidate_peers t.parents

let add parent ~child =
  if not (is_compound parent) then invalid_arg "Event.add: not a compound event";
  if parent.state land ready_bit <> 0 then invalid_arg "Event.add: parent already fired";
  push_child parent child;
  (* depfast-lint: allow unbounded-growth — parent back-links mirror the
     wiring the program performs explicitly; bounded by the event graph *)
  child.parents <- parent :: child.parents;
  invalidate_peers parent;
  if child.state land ready_bit <> 0 then parent.state <- parent.state + one_ready;
  check_compound parent

let on_fire t f =
  (* depfast-lint: allow unbounded-growth — observers run and are freed at
     the fire; the list is bounded by registrations on one live event *)
  if t.state land ready_bit <> 0 then f () else t.fire_obs <- f :: t.fire_obs

let live_mask = ready_bit lor abandoned_bit

let abandon t =
  let rec go t =
    if t.state land live_mask = 0 then begin
      t.state <- t.state lor abandoned_bit;
      let obs = t.abandon_obs in
      t.abandon_obs <- [];
      run_obs obs;
      (* abandoning a compound abandons children that no live parent still
         awaits *)
      for i = 0 to n_children_of t - 1 do
        let child = t.children.(i) in
        if not (List.exists (fun p -> p.state land live_mask = 0) child.parents) then
          go child
      done
    end
  in
  go t

let on_abandon t f =
  (* depfast-lint: allow unbounded-growth — cleared wholesale by abandon;
     bounded by registrations on one live event *)
  if t.state land abandoned_bit <> 0 then f () else t.abandon_obs <- f :: t.abandon_obs

let rec peers t =
  match t.peers_cache with
  | Some l -> l
  | None ->
    let l =
      if not (is_compound t) then (if t.peer_node < 0 then [] else [ t.peer_node ])
      else begin
        (* merge the children's (cached) peer lists, deduplicating by
           first occurrence — identical to a DFS pre-order of the tree *)
        let seen = Hashtbl.create 8 in
        let out = ref [] in
        if t.peer_node >= 0 then begin
          Hashtbl.add seen t.peer_node ();
          out := [ t.peer_node ]
        end;
        for i = 0 to n_children_of t - 1 do
          List.iter
            (fun p ->
              if not (Hashtbl.mem seen p) then begin
                Hashtbl.add seen p ();
                out := p :: !out
              end)
            (peers t.children.(i))
        done;
        List.rev !out
      end
    in
    t.peers_cache <- Some l;
    l

let stallers t =
  (* a-priori structural analysis: readiness is ignored, the question is
     whether the wait's shape gave node [p] the power to stall it. One
     refinement: a child abandoned while its parent is still pending can
     never fire, so it weakens the parent's quorum exactly like a child
     [p] controls. Abandonment observed under an already-fired parent
     (straggler discard after a quorum fired) is ignored — for completed
     waits the analysis stays purely structural. *)
  let rec can_stall p e =
    if not (is_compound e) then e.peer_node = p
    else begin
      let stallable = ref 0 in
      let e_pending = e.state land ready_bit = 0 in
      for i = 0 to n_children_of e - 1 do
        let c = e.children.(i) in
        if (e_pending && c.state land live_mask = abandoned_bit) || can_stall p c then
          incr stallable
      done;
      n_children_of e - !stallable < required e
    end
  in
  List.filter (fun p -> can_stall p t) (peers t)

let kind_name = function
  | Signal -> "signal"
  | Timer -> "timer"
  | Rpc -> "rpc"
  | Disk -> "disk"
  | Quorum -> "quorum"
  | And_ -> "and"
  | Or_ -> "or"

let pp fmt t =
  Format.fprintf fmt "#%d:%s%s%s%s" t.id (kind_name t.kind)
    (if t.label = "" then "" else "(" ^ t.label ^ ")")
    (if is_compound t then
       Printf.sprintf "[%d/%d ready, need %d]" (n_ready_of t) (n_children_of t) (required t)
     else "")
    (if is_ready t then "!" else if is_abandoned t then "x" else "?")
