type kind = Signal | Timer | Rpc | Disk | Quorum | And_ | Or_

type arity = Count of int | Majority | All | Any

type t = {
  id : int;
  kind : kind;
  label : string;
  arity : arity;
  peer_node : int option;
  mutable ready : bool;
  mutable abandoned : bool;
  mutable children : t list;  (* reverse attachment order *)
  mutable n_children : int;
  mutable n_ready : int;
  mutable parents : t list;
  mutable fire_obs : (unit -> unit) list;
  mutable abandon_obs : (unit -> unit) list;
}

let next_id = ref 0

let make ?(label = "") ?peer kind arity =
  incr next_id;
  {
    id = !next_id;
    kind;
    label;
    arity;
    peer_node = peer;
    ready = false;
    abandoned = false;
    children = [];
    n_children = 0;
    n_ready = 0;
    parents = [];
    fire_obs = [];
    abandon_obs = [];
  }

let id t = t.id
let kind t = t.kind
let label t = t.label
let signal ?label () = make ?label Signal Any
let rpc_completion ?label ~peer () = make ?label ~peer Rpc Any
let disk_completion ?label ~node () = make ?label ~peer:node Disk Any
let timer_kind ?label () = make ?label Timer Any
let quorum ?label arity = make ?label Quorum arity
let and_ ?label () = make ?label And_ All
let or_ ?label () = make ?label Or_ Any
let is_ready t = t.ready
let is_abandoned t = t.abandoned
let children t = List.rev t.children
let ready_children t = t.n_ready
let peer t = t.peer_node

let is_compound t =
  match t.kind with Quorum | And_ | Or_ -> true | Signal | Timer | Rpc | Disk -> false

let required t =
  if not (is_compound t) then 1
  else
    match t.arity with
    | Count k -> k
    | Majority -> (t.n_children / 2) + 1
    | All -> t.n_children
    | Any -> 1

let run_observers obs =
  List.iter (fun f -> f ()) (List.rev obs)

(* mark [t] ready and propagate to parents; compounds with zero required
   children fire as soon as checked *)
let rec become_ready t =
  if not t.ready then begin
    t.ready <- true;
    let obs = t.fire_obs in
    t.fire_obs <- [];
    run_observers obs;
    List.iter child_became_ready t.parents
  end

and child_became_ready parent =
  if not parent.ready then begin
    parent.n_ready <- parent.n_ready + 1;
    check_compound parent
  end

and check_compound t =
  if (not t.ready) && is_compound t && t.n_children > 0 && t.n_ready >= required t then
    become_ready t

let fire t =
  if is_compound t then invalid_arg "Event.fire: compound events fire via children";
  if not t.abandoned then become_ready t

let add parent ~child =
  if not (is_compound parent) then invalid_arg "Event.add: not a compound event";
  if parent.ready then invalid_arg "Event.add: parent already fired";
  parent.children <- child :: parent.children;
  parent.n_children <- parent.n_children + 1;
  child.parents <- parent :: child.parents;
  if child.ready then begin
    parent.n_ready <- parent.n_ready + 1;
    check_compound parent
  end
  else check_compound parent

let on_fire t f = if t.ready then f () else t.fire_obs <- f :: t.fire_obs

let rec abandon t =
  if (not t.abandoned) && not t.ready then begin
    t.abandoned <- true;
    let obs = t.abandon_obs in
    t.abandon_obs <- [];
    run_observers obs;
    (* abandoning a compound abandons children that no live parent still
       awaits *)
    List.iter
      (fun child ->
        if not (List.exists (fun p -> (not p.abandoned) && not p.ready) child.parents) then
          abandon child)
      t.children
  end

let on_abandon t f = if t.abandoned then f () else t.abandon_obs <- f :: t.abandon_obs

let peers t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go e =
    (match e.peer_node with
    | Some p when not (Hashtbl.mem seen p) ->
      Hashtbl.add seen p ();
      out := p :: !out
    | Some _ | None -> ());
    List.iter go (List.rev e.children)
  in
  go t;
  List.rev !out

let stallers t =
  (* a-priori structural analysis: readiness is ignored, the question is
     whether the wait's shape gave node [p] the power to stall it. One
     refinement: a child abandoned while its parent is still pending can
     never fire, so it weakens the parent's quorum exactly like a child
     [p] controls. Abandonment observed under an already-fired parent
     (straggler discard after a quorum fired) is ignored — for completed
     waits the analysis stays purely structural. *)
  let rec can_stall p e =
    if not (is_compound e) then e.peer_node = Some p
    else
      let blocked c =
        ((not e.ready) && c.abandoned && not c.ready) || can_stall p c
      in
      let stallable = List.length (List.filter blocked e.children) in
      e.n_children - stallable < required e
  in
  List.filter (fun p -> can_stall p t) (peers t)

let kind_name = function
  | Signal -> "signal"
  | Timer -> "timer"
  | Rpc -> "rpc"
  | Disk -> "disk"
  | Quorum -> "quorum"
  | And_ -> "and"
  | Or_ -> "or"

let pp fmt t =
  Format.fprintf fmt "#%d:%s%s%s%s" t.id (kind_name t.kind)
    (if t.label = "" then "" else "(" ^ t.label ^ ")")
    (if is_compound t then Printf.sprintf "[%d/%d ready, need %d]" t.n_ready t.n_children (required t)
     else "")
    (if t.ready then "!" else if t.abandoned then "x" else "?")
