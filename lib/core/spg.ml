type color = Red | Green

type edge = {
  src : int;
  dst : int;
  quorum_k : int;
  quorum_n : int;
  color : color;
  count : int;
}

type t = { edge_tbl : (int * int * int * int, int) Hashtbl.t }

let of_trace trace =
  let edge_tbl = Hashtbl.create 64 in
  Trace.iter trace (fun w ->
      let k = w.Trace.quorum_k and n = w.Trace.quorum_n in
      List.iter
        (fun peer ->
          if peer <> w.Trace.node then begin
            let key = (w.Trace.node, peer, k, n) in
            let prev = Option.value ~default:0 (Hashtbl.find_opt edge_tbl key) in
            Hashtbl.replace edge_tbl key (prev + 1)
          end)
        (Trace.peers w));
  { edge_tbl }

let edges t =
  Hashtbl.fold
    (fun (src, dst, quorum_k, quorum_n) count acc ->
      let color = if quorum_k >= quorum_n then Red else Green in
      { src; dst; quorum_k; quorum_n; color; count } :: acc)
    t.edge_tbl []
  |> List.sort (fun a b ->
         compare (a.src, a.dst, a.quorum_k, a.quorum_n) (b.src, b.dst, b.quorum_k, b.quorum_n))

(* Per-waiter edges: the same aggregation as {!of_trace}/{!edges}, but
   keyed by the waiting coroutine's name so a checker can attribute an
   observed propagation edge back to the code that waited. [allow]
   exempts waiter nodes exactly as in {!audit}. *)
let waiter_edges ?(allow = fun ~node:_ -> false) trace =
  let tbl = Hashtbl.create 64 in
  Trace.iter trace (fun w ->
      if not (allow ~node:w.Trace.node) then begin
        let k = w.Trace.quorum_k and n = w.Trace.quorum_n in
        List.iter
          (fun peer ->
            if peer <> w.Trace.node then begin
              let key = (w.Trace.coroutine, w.Trace.node, peer, k, n) in
              let prev = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
              Hashtbl.replace tbl key (prev + 1)
            end)
          (Trace.peers w)
      end);
  Hashtbl.fold
    (fun (coroutine, src, dst, quorum_k, quorum_n) count acc ->
      let color = if quorum_k >= quorum_n then Red else Green in
      (coroutine, { src; dst; quorum_k; quorum_n; color; count }) :: acc)
    tbl []
  |> List.sort (fun (ca, a) (cb, b) ->
         compare
           (ca, a.src, a.dst, a.quorum_k, a.quorum_n)
           (cb, b.src, b.dst, b.quorum_k, b.quorum_n))

let nodes t =
  let seen = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (src, dst, _, _) _ ->
      Hashtbl.replace seen src ();
      Hashtbl.replace seen dst ())
    t.edge_tbl;
  List.sort compare (Hashtbl.fold (fun n () acc -> n :: acc) seen [])

let default_name n = "n" ^ string_of_int n

let to_dot ?(node_name = default_name) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph spg {\n  rankdir=LR;\n";
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf "  %s;\n" (node_name n)))
    (nodes t);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=\"%d/%d\", color=%s];\n" (node_name e.src)
           (node_name e.dst) e.quorum_k e.quorum_n
           (match e.color with Red -> "red" | Green -> "green")))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ?(node_name = default_name) fmt t =
  List.iter
    (fun e ->
      Format.fprintf fmt "%s -> %s  %d/%d %s (%d waits)@." (node_name e.src) (node_name e.dst)
        e.quorum_k e.quorum_n
        (match e.color with Red -> "RED" | Green -> "green")
        e.count)
    (edges t)

type violation = { v_wait : Trace.wait; v_peer : int; v_count : int }

(* A violating *site*: the same code location re-offending every round is
   one finding, not one per occurrence. *)
let site v =
  let w = v.v_wait in
  ( w.Trace.node,
    w.Trace.coroutine,
    Event.label w.Trace.event,
    w.Trace.quorum_k,
    w.Trace.quorum_n,
    v.v_peer )

let audit ?(allow = fun ~node:_ -> false) ?(dedup = true) trace =
  let out = ref [] in
  Trace.iter trace (fun w ->
      if not (allow ~node:w.Trace.node) then
        List.iter
          (fun p ->
            if p <> w.Trace.node then
              out := { v_wait = w; v_peer = p; v_count = 1 } :: !out)
          (Trace.stallers w));
  let raw = List.rev !out in
  if not dedup then raw
  else begin
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun v ->
        let key = site v in
        match Hashtbl.find_opt tbl key with
        | Some r -> r := { !r with v_count = !r.v_count + 1 }
        | None -> Hashtbl.add tbl key (ref v))
      raw;
    Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
    |> List.sort (fun a b -> compare (site a) (site b))
  end

let is_fail_slow_tolerant ?allow trace = audit ?allow trace = []
