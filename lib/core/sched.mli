(** The DepFast runtime: coroutines + cooperative scheduler (§3.3).

    Coroutines are implemented with OCaml 5 effect handlers: user code is
    plain direct-style OCaml; {!wait}, {!sleep} and {!yield} perform effects
    that suspend the coroutine and hand control back to the scheduler, which
    resumes it when the awaited event fires. This is the library's answer to
    callback spaghetti: logic reads synchronously, yet nothing blocks.

    A scheduler drives one {!Sim.Engine.t}; in a simulation one scheduler
    hosts the coroutines of every simulated node, each tagged with its node
    id for tracing. *)

type t

val create : ?trace:Trace.t -> Sim.Engine.t -> t
val engine : t -> Sim.Engine.t
val trace : t -> Trace.t

(** {2 Runtime monitoring}

    Observation hooks for the schedule-space sanitizer (lib/check): the
    coroutine lifecycle and the park/wake/resume protocol around every
    suspension. With no monitor installed (the default) each hook site is
    a single branch. *)

type wake = Wake_fire | Wake_timeout

type monitor = {
  on_spawn : cid:int -> node:int -> name:string -> unit;
  on_park : cid:int -> node:int -> name:string -> Event.t -> unit;
      (** the coroutine suspended on a not-yet-ready event *)
  on_wake : cid:int -> Event.t -> wake -> unit;
      (** the wakeup was delivered (a resume was posted, or the wait's
          timeout fired) *)
  on_resume : cid:int -> unit;  (** the continuation actually runs again *)
  on_done : cid:int -> unit;  (** the body returned *)
}

val set_monitor : t -> monitor option -> unit

val spawn : t -> ?node:int -> ?name:string -> (unit -> unit) -> unit
(** Start a coroutine. [node] tags it for tracing (inherited by coroutines
    it spawns if they pass no tag of their own — see {!spawn_here}).
    The body runs when the engine next dispatches; exceptions escaping the
    body abort the simulation. *)

val spawn_here : t -> ?name:string -> (unit -> unit) -> unit
(** Spawn inheriting the calling coroutine's node tag. Must be called from
    inside a coroutine. *)

type outcome = Ready | Timed_out

(** Operations below must run inside a coroutine of this scheduler. *)

val wait : t -> Event.t -> unit
(** Suspend until the event fires (returns immediately if already ready). *)

val wait_timeout : t -> Event.t -> Sim.Time.span -> outcome
(** Like {!wait} with an upper bound. On [Timed_out] the event is left
    pending (not abandoned); callers decide (see [Event.abandon]). *)

val sleep : t -> Sim.Time.span -> unit

val yield : t -> unit
(** Reschedule behind other runnable work at the same instant. *)

val timer : t -> Sim.Time.span -> Event.t
(** An event that fires after the given delay. *)

val current_node : t -> int
(** Node tag of the running coroutine; -1 outside coroutines/untagged. *)

val current_coroutine : t -> string
(** Name of the running coroutine, [""] outside one. *)

val now : t -> Sim.Time.t

val run : ?until:Sim.Time.t -> t -> unit
(** Drive the engine (see {!Sim.Engine.run}). *)
