open Sim

type ctx = { cid : int; node : int; name : string }

(* Runtime observation hooks for the schedule-space sanitizer (lib/check):
   coroutine lifecycle and the park/wake/resume protocol around every wait.
   [None] in steady state — each call site pays one match. *)
type wake = Wake_fire | Wake_timeout

type monitor = {
  on_spawn : cid:int -> node:int -> name:string -> unit;
  on_park : cid:int -> node:int -> name:string -> Event.t -> unit;
      (** the coroutine suspended on a not-yet-ready event *)
  on_wake : cid:int -> Event.t -> wake -> unit;
      (** the wakeup was delivered (resume posted / timeout fired) *)
  on_resume : cid:int -> unit;  (** the continuation actually runs again *)
  on_done : cid:int -> unit;  (** the body returned *)
}

type t = {
  engine : Engine.t;
  trace_rec : Trace.t;
  mutable current : ctx option;
  mutable next_cid : int;
  mutable monitor : monitor option;
}

type outcome = Ready | Timed_out

type _ Effect.t +=
  | E_wait : (t * Event.t * Time.span option) -> outcome Effect.t
  | E_sleep : (t * Time.span) -> unit Effect.t
  | E_yield : t -> unit Effect.t

let create ?trace engine =
  let trace_rec = match trace with Some tr -> tr | None -> Trace.create () in
  { engine; trace_rec; current = None; next_cid = 0; monitor = None }

let engine t = t.engine
let trace t = t.trace_rec
let now t = Engine.now t.engine
let set_monitor t m = t.monitor <- m

let current_node t = match t.current with Some c -> c.node | None -> -1
let current_coroutine t = match t.current with Some c -> c.name | None -> ""

let resume : type a. t -> ctx -> (a, unit) Effect.Deep.continuation -> a -> unit =
 fun t ctx k v ->
  let saved = t.current in
  t.current <- Some ctx;
  Effect.Deep.continue k v;
  t.current <- saved

(* O(1): arity fields are counters on the event, and peer/staller analysis
   is deferred to whoever consumes the record (Trace is lazy) *)
let record_wait t ctx ev ~t_start ~outcome =
  if Trace.is_enabled t.trace_rec then
    let k, n =
      match Event.kind ev with
      | Event.Quorum | Event.And_ | Event.Or_ ->
        (Event.required ev, Event.child_count ev)
      | Event.Signal | Event.Timer | Event.Rpc | Event.Disk -> (1, 1)
    in
    Trace.record_wait t.trace_rec
      {
        Trace.cid = ctx.cid;
        node = ctx.node;
        coroutine = ctx.name;
        event = ev;
        quorum_k = k;
        quorum_n = n;
        t_start;
        t_end = now t;
        outcome = (match outcome with Ready -> Trace.Ready | Timed_out -> Trace.Timed_out);
        stallers_memo = None;
      }

let rec spawn_ctx t ctx f =
  (match t.monitor with
  | Some m -> m.on_spawn ~cid:ctx.cid ~node:ctx.node ~name:ctx.name
  | None -> ());
  Engine.post_tag t.engine (Engine.Coro (ctx.cid, ctx.node)) (fun () ->
      let open Effect.Deep in
      let saved = t.current in
      t.current <- Some ctx;
      match_with f ()
        {
          retc =
            (fun () ->
              match t.monitor with Some m -> m.on_done ~cid:ctx.cid | None -> ());
          exnc = (fun e -> raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | E_wait (st, ev, timeout) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    wait_impl st ctx ev timeout k;
                    st.current <- None)
              | E_sleep (st, d) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    ignore
                      (Engine.schedule_tag st.engine ~delay:d
                         (Engine.Coro (ctx.cid, ctx.node)) (fun () ->
                           resume st ctx k ()));
                    st.current <- None)
              | E_yield st ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    Engine.post_tag st.engine
                      (Engine.Coro (ctx.cid, ctx.node))
                      (fun () -> resume st ctx k ());
                    st.current <- None)
              | _ -> None);
        };
      t.current <- saved)

and wait_impl :
    t -> ctx -> Event.t -> Time.span option -> (outcome, unit) Effect.Deep.continuation -> unit
    =
 fun t ctx ev timeout k ->
  let t_start = now t in
  if Event.is_ready ev then begin
    record_wait t ctx ev ~t_start ~outcome:Ready;
    resume t ctx k Ready
  end
  else begin
    (match t.monitor with
    | Some m -> m.on_park ~cid:ctx.cid ~node:ctx.node ~name:ctx.name ev
    | None -> ());
    let resumed = ref false in
    let timer_h = ref None in
    Event.on_fire ev (fun () ->
        if not !resumed then begin
          resumed := true;
          (match !timer_h with Some h -> Engine.cancel t.engine h | None -> ());
          (match t.monitor with
          | Some m -> m.on_wake ~cid:ctx.cid ev Wake_fire
          | None -> ());
          Engine.post_tag t.engine
            (Engine.Coro (ctx.cid, ctx.node))
            (fun () ->
              (match t.monitor with Some m -> m.on_resume ~cid:ctx.cid | None -> ());
              record_wait t ctx ev ~t_start ~outcome:Ready;
              resume t ctx k Ready)
        end);
    match timeout with
    | None -> ()
    | Some d ->
      if not !resumed then
        timer_h :=
          Some
            (Engine.schedule_tag t.engine ~delay:d
               (Engine.Coro (ctx.cid, ctx.node))
               (fun () ->
                 if not !resumed then begin
                   resumed := true;
                   (match t.monitor with
                   | Some m ->
                     m.on_wake ~cid:ctx.cid ev Wake_timeout;
                     m.on_resume ~cid:ctx.cid
                   | None -> ());
                   record_wait t ctx ev ~t_start ~outcome:Timed_out;
                   resume t ctx k Timed_out
                 end))
  end

let spawn t ?(node = -1) ?(name = "coroutine") f =
  t.next_cid <- t.next_cid + 1;
  spawn_ctx t { cid = t.next_cid; node; name } f

let spawn_here t ?name f =
  let node = current_node t in
  let name = match name with Some n -> n | None -> current_coroutine t ^ "/child" in
  spawn t ~node ~name f

let wait t ev =
  match Effect.perform (E_wait (t, ev, None)) with Ready -> () | Timed_out -> assert false

let wait_timeout t ev span = Effect.perform (E_wait (t, ev, Some span))
let sleep t span = Effect.perform (E_sleep (t, span))
let yield t = Effect.perform (E_yield t)

let timer t span =
  let ev = Event.timer_kind ~label:"timer" () in
  ignore (Engine.schedule t.engine ~delay:span (fun () -> Event.fire ev));
  ev

let run ?until t = Engine.run ?until t.engine
