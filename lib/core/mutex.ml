type t = { label : string; mutable held : bool; queue : Event.t Queue.t }

let create ?(label = "mutex") () = { label; held = false; queue = Queue.create () }

let lock sched t =
  if not t.held then t.held <- true
  else begin
    let ev = Event.signal ~label:t.label () in
    (* depfast-lint: allow unbounded-growth — waiter queue: drained by
       unlock's ownership hand-off, at most one entry per parked coroutine *)
    Queue.add ev t.queue;
    (* ownership is transferred by the firing unlock *)
    Sched.wait sched ev
  end

let unlock t =
  if not t.held then invalid_arg "Mutex.unlock: not locked";
  if Queue.is_empty t.queue then t.held <- false
  else Event.fire (Queue.pop t.queue)

let with_lock sched t f =
  lock sched t;
  match f () with
  | v ->
    unlock t;
    v
  | exception e ->
    unlock t;
    raise e

let locked t = t.held
let waiters t = Queue.length t.queue
