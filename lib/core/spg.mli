(** Slowness propagation graphs (§3.3, Figure 2).

    An SPG aggregates a wait trace to node granularity: a directed edge
    [src -> dst] means some coroutine on node [src] waited on an event that
    depends on node [dst]. Each edge carries the quorum arity of the waits
    that produced it: an edge from a basic (1/1) wait is {e red} — a
    potential fail-slow propagation channel — while an edge from a
    QuorumEvent wait (k/n, k < n) is {e green} — tolerant to [n - k] slow
    peers.

    {!audit} mechanises the paper's definition of fail-slow fault-tolerant
    code: it reports every wait that gives a single remote node the power to
    stall the waiter. *)

type color = Red | Green

type edge = {
  src : int;
  dst : int;
  quorum_k : int;
  quorum_n : int;
  color : color;
  count : int;  (** number of waits aggregated into this edge *)
}

type t

val of_trace : Trace.t -> t
(** Build the SPG from all recorded waits. Waits with no remote peers
    (timers, local conditions) contribute no edges. *)

val edges : t -> edge list
(** Sorted by [(src, dst, quorum_k, quorum_n)]. *)

val nodes : t -> int list

val waiter_edges : ?allow:(node:int -> bool) -> Trace.t -> (string * edge) list
(** The same aggregation as {!of_trace} + {!edges}, but keyed by the
    waiting coroutine's name, so a checker can attribute an observed
    propagation edge back to the code that waited; sorted by
    (coroutine, edge key). [allow ~node] exempts waiter nodes as in
    {!audit} (e.g. clients that by design wait on the leader). *)

val to_dot : ?node_name:(int -> string) -> t -> string
(** Graphviz rendering; red/green edge colors as in Figure 2. *)

val pp : ?node_name:(int -> string) -> Format.formatter -> t -> unit
(** Human-readable edge list. *)

type violation = {
  v_wait : Trace.wait;  (** a representative occurrence (the first seen) *)
  v_peer : int;  (** the single node able to stall the waiter *)
  v_count : int;  (** occurrences folded into this site (1 when [~dedup:false]) *)
}

val audit : ?allow:(node:int -> bool) -> ?dedup:bool -> Trace.t -> violation list
(** Waits whose completion depends on a {e single} remote node — i.e.
    non-quorum remote waits, or degenerate quorums needing every child.
    [allow ~node] exempts waiters (e.g. clients, which by design wait on
    the leader; cf. Figure 2 discussion). Default allows none.

    By default repeated offences from one site — same
    [(node, coroutine, event label, quorum arity, peer)] — are folded into a
    single violation whose [v_count] is the occurrence count, sorted by that
    site key. [~dedup:false] returns every occurrence in trace order. *)

val is_fail_slow_tolerant : ?allow:(node:int -> bool) -> Trace.t -> bool
(** [audit] is empty. *)
