type key = By_label | By_node | By_edge

type cell = { hist : Sim.Hist.t; mutable timeouts : int }

type t = { key : key; cells : (string, cell) Hashtbl.t }

let create key = { key; cells = Hashtbl.create 32 }

let cell_of t name =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c
  | None ->
    let c = { hist = Sim.Hist.create (); timeouts = 0 } in
    Hashtbl.replace t.cells name c;
    c

let names_of t (w : Trace.wait) =
  match t.key with
  | By_label ->
    let label = Trace.event_label w in
    [ (if label = "" then "(unnamed)" else label) ]
  | By_node -> [ Printf.sprintf "n%d" w.node ]
  | By_edge ->
    List.filter_map
      (fun p ->
        if p = w.node then None else Some (Printf.sprintf "n%d->n%d" w.node p))
      (Trace.peers w)

let observe t w =
  let duration = Sim.Time.diff w.Trace.t_end w.Trace.t_start in
  List.iter
    (fun name ->
      let c = cell_of t name in
      Sim.Hist.add c.hist duration;
      if w.Trace.outcome = Trace.Timed_out then c.timeouts <- c.timeouts + 1)
    (names_of t w)

let attach t trace = Trace.on_wait trace (observe t)

let of_trace key trace =
  let t = create key in
  Trace.iter trace (observe t);
  t

let keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.cells [])
let histogram t name = Option.map (fun c -> c.hist) (Hashtbl.find_opt t.cells name)
let timeouts t name = match Hashtbl.find_opt t.cells name with Some c -> c.timeouts | None -> 0

let pp fmt t =
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.cells name with
      | None -> ()
      | Some c ->
        Format.fprintf fmt "%-24s %a timeouts=%d@." name Sim.Hist.pp_summary c.hist c.timeouts)
    (keys t)
