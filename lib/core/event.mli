(** DepFast events: named wait points.

    An event is a one-shot occurrence: it is created pending, {!fire}d at
    most once (firing is idempotent), and stays ready forever after. Every
    wait a program performs is a wait on some event, which is what makes
    waits visible to the tracer and the fail-slow audit (§3.3 of the paper).

    {b Basic events} ({!signal}) are fired by the framework: RPC completion,
    disk-write completion, a condition becoming true.

    {b Compound events} combine children. The paper's three compound types
    are all arity-parameterised quorums over their children:
    - [QuorumEvent] — ready when [k] of [n] children are ready;
    - [AndEvent] — ready when all children are ready ([k = n]);
    - [OrEvent] — ready when any child is ready ([k = 1]).

    Children may themselves be compound (nesting, §3.2). Children can be
    {!add}ed until the event fires; arities expressed as {!arity} are
    re-evaluated against the current child count. *)

type kind =
  | Signal  (** plain framework-fired event *)
  | Timer
  | Rpc
  | Disk
  | Quorum
  | And_
  | Or_

type arity =
  | Count of int  (** exactly [k] children ready *)
  | Majority  (** [n/2 + 1] of the current [n] children *)
  | All
  | Any

type t

val id : t -> int
val kind : t -> kind
val label : t -> string

val signal : ?label:string -> unit -> t
(** A basic event, fired later by whoever created it. *)

val rpc_completion : ?label:string -> peer:int -> unit -> t
(** A basic event standing for "reply from node [peer] arrived". The peer is
    recorded so traces can attribute the wait to a remote node. *)

val disk_completion : ?label:string -> node:int -> unit -> t
(** A basic event standing for "local disk I/O on [node] finished". *)

val timer_kind : ?label:string -> unit -> t
(** A basic event fired by a timer. (Usually created via [Sched.timer].) *)

val quorum : ?label:string -> arity -> t
(** The paper's [QuorumEvent]. *)

val and_ : ?label:string -> unit -> t
(** The paper's [AndEvent]: ready when all children are. *)

val or_ : ?label:string -> unit -> t
(** The paper's [OrEvent]: ready when any child is. *)

val add : t -> child:t -> unit
(** [add parent ~child] attaches a child to a compound event. If the child
    is already ready it counts immediately (and may fire [parent]).
    @raise Invalid_argument on basic events or if [parent] already fired. *)

val children : t -> t list
(** Children in attachment order (compound events; [] for basic).
    Allocates a fresh list per call — hot paths should use {!child_count}
    or {!iter_children} instead. *)

val child_count : t -> int
(** Number of attached children, O(1) and allocation-free. *)

val iter_children : t -> (t -> unit) -> unit
(** Apply a function to each child in attachment order without
    materialising the child list. *)

val required : t -> int
(** Number of ready children needed for a compound to fire, resolved
    against the current child count; [1] for basic events. *)

val peer : t -> int option
(** Remote node this basic event depends on, if any. *)

val peers : t -> int list
(** All remote nodes the event transitively depends on (deduplicated, DFS
    pre-order). The result is cached on the event and invalidated when the
    subtree gains children, so repeated calls are O(1); callers must not
    mutate the returned list. *)

val stallers : t -> int list
(** Remote nodes that can {e single-handedly} prevent the event from firing:
    [p] stalls a basic event iff it is its peer, and stalls a compound iff,
    with every [p]-independent child fired, the required count is still not
    reached. Children [abandon]ed while the compound is still pending are
    counted as never-firing (they shrink the live quorum); abandonment seen
    under an already-fired compound is ignored. A wait is fail-slow
    fault-tolerant iff this list is empty (local waits aside) — the
    quantitative version of the paper's "only QuorumEvent waits" rule. *)

val is_ready : t -> bool

val ready_children : t -> int

val fire : t -> unit
(** Mark a {b basic} event ready and propagate to compound parents.
    Idempotent. @raise Invalid_argument on compound events (they fire only
    via their children). *)

val on_fire : t -> (unit -> unit) -> unit
(** [on_fire t f]: run [f] when [t] fires (immediately if already ready).
    Used by the scheduler to resume waiters and by the framework to cancel
    straggler work once a quorum is met. *)

val abandon : t -> unit
(** Mark the event as no longer awaited (quorum satisfied elsewhere or wait
    timed out); observers registered via {!on_abandon} run once. Firing an
    abandoned event is a silent no-op. *)

val on_abandon : t -> (unit -> unit) -> unit
(** Framework hook: e.g. the RPC layer discards buffered messages for a
    slow replica when the enclosing broadcast is abandoned (§2.3). *)

val is_abandoned : t -> bool

val pp : Format.formatter -> t -> unit
