(** Figure 2: the slowness propagation graph of a three-shard DepFastRaft
    deployment (servers s1-s9 in three quorums, clients c1-c3).

    Expected shape, as in the paper: {e green} majority-arity edges
    between the members of each quorum (no single-event waits inside
    groups), and {e red} 1/1 edges from each client to the leader it
    talks to. *)

type result = {
  spg : Depfast.Spg.t;
  dot : string;  (** Graphviz rendering with s1-s9/c1-c3 labels *)
  edges : Depfast.Spg.edge list;
  violations : Depfast.Spg.violation list;  (** with clients exempted *)
  intra_group_tolerant : bool;
      (** no single-event waits inside the replication quorums *)
  names : int -> string;  (** node id -> display name *)
}

val run : ?seed:int64 -> unit -> result
(** Elect one leader per shard, trace 50 client writes per shard, and
    audit the recorded propagation graph. *)

val print : ?seed:int64 -> unit -> unit
