(** Builds a system under test on a fresh simulation and runs one
    (system x fault) experiment cell. *)

type system = Depfast_raft | Mongo_like | Tidb_like | Rethink_like

val all_systems : system list
(** Baselines first, DepFastRaft last — the tables' row order. *)

val baseline_systems : system list
val system_name : system -> string

val outcome_of_submit : Raft.Client.outcome -> Workload.Driver.outcome
(** Map a Raft client submit result onto the driver's ledger. *)

val clients_of_group :
  Raft.Group.t -> count:int -> Workload.Driver.client list
(** Closed-loop driver clients wrapping a Raft group's RPC clients. *)

val build :
  system -> Depfast.Sched.t -> n:int -> cfg:Raft.Config.t -> Workload.Sut.t
(** Construct the SUT; for DepFastRaft, bootstraps node 0 as leader so
    fault victims are always followers (the paper's setup). *)

type cell = {
  system : system;
  n : int;
  fault : Cluster.Fault.kind option;
  metrics : Workload.Metrics.t;
}

val run_cell :
  ?cfg:Raft.Config.t ->
  ?trace:bool ->
  params:Params.t ->
  system:system ->
  n:int ->
  slow_count:int ->
  fault:Cluster.Fault.kind option ->
  unit ->
  cell
(** Run one experiment cell on a fresh engine. [slow_count] faulty
    followers (paper: 1 in 3-node, a minority — 2 — in 5-node setups).
    [trace] records every wait into the scheduler's trace ring for the
    whole run — used to measure the overhead of always-on tracing. *)

val fault_name : Cluster.Fault.kind option -> string
(** Row label: ["No Slowness"] or the injected fault's name. *)
