(** Table 1: the fail-slow fault-injection catalog, with both the paper's
    injection method and this repo's simulator mapping. *)

val rows : unit -> (string * string * string) list
(** [(fault name, paper's injection, simulator mapping)] per fault kind. *)

val print : unit -> unit
