(** Figure 1: performance of the three baseline RSM implementations with
    a fail-slow follower (three-node deployments), normalized to each
    system's own no-fault baseline.

    The paper reports: 17-41% throughput drops, 21-50% average-latency
    increases, 1.6-3.46x P99 increases, and RethinkDB leader crashes
    under CPU fail-slow faults. *)

type row = {
  system : Runner.system;
  fault : Cluster.Fault.kind option;
  throughput_norm : float;  (** relative to the system's no-fault cell *)
  mean_latency_norm : float;
  p99_latency_norm : float;
  crashed : bool;  (** leader made no progress during the window *)
  raw : Workload.Metrics.t;
}

val run : ?params:Params.t -> ?systems:Runner.system list -> unit -> row list
(** One no-fault baseline cell plus one cell per fault kind for each
    system, on fresh engines; defaults to {!Params.full} over
    {!Runner.baseline_systems}. *)

val print_rows : row list -> unit
val print : ?params:Params.t -> ?systems:Runner.system list -> unit -> unit
