(** Builds a system under test on a fresh simulation and runs one
    (system × fault) experiment cell. *)

type system = Depfast_raft | Mongo_like | Tidb_like | Rethink_like

let all_systems = [ Mongo_like; Tidb_like; Rethink_like; Depfast_raft ]
let baseline_systems = [ Mongo_like; Tidb_like; Rethink_like ]

let system_name = function
  | Depfast_raft -> "DepFastRaft"
  | Mongo_like -> "MongoDB-like"
  | Tidb_like -> "TiDB-like"
  | Rethink_like -> "RethinkDB-like"

let outcome_of_submit = function
  | Raft.Client.Committed _ -> Workload.Driver.Committed
  | Raft.Client.Shed -> Workload.Driver.Shed
  | Raft.Client.Failed -> Workload.Driver.Failed

let clients_of_group g ~count =
  List.map
    (fun c ->
      {
        Workload.Driver.node = Raft.Client.node c;
        run_op =
          (fun op ->
            outcome_of_submit
              (match op with
              | Workload.Ycsb.Update { key; value } ->
                Raft.Client.submit c (Raft.Types.Put { key; value })
              | Workload.Ycsb.Read { key } ->
                Raft.Client.submit c (Raft.Types.Get { key })));
      })
    (Raft.Group.make_clients g ~count ())

(* build the SUT; for DepFastRaft, bootstrap node 0 as leader so fault
   victims are always followers (the paper's setup) *)
let build system sched ~n ~cfg =
  match system with
  | Mongo_like -> Baseline.Mongo_like.sut (Baseline.Mongo_like.create sched ~n ~cfg ()) ~cfg
  | Tidb_like -> Baseline.Tidb_like.sut (Baseline.Tidb_like.create sched ~n ~cfg ()) ~cfg
  | Rethink_like ->
    Baseline.Rethink_like.sut (Baseline.Rethink_like.create sched ~n ~cfg ()) ~cfg
  | Depfast_raft ->
    let g = Raft.Group.create sched ~n ~cfg () in
    Depfast.Sched.spawn sched ~name:"bootstrap" (fun () -> Raft.Group.elect g 0);
    Depfast.Sched.run ~until:(Sim.Time.sec 1) sched;
    let leader =
      match Raft.Group.leader g with
      | Some s when Raft.Server.id s = 0 -> s
      | _ -> failwith "bootstrap election failed"
    in
    {
      Workload.Sut.name = "DepFastRaft";
      leader_node = Raft.Server.node leader;
      follower_nodes =
        List.filter (fun nd -> Cluster.Node.id nd <> 0) g.Raft.Group.nodes;
      make_clients = (fun ~count -> clients_of_group g ~count);
    }

type cell = {
  system : system;
  n : int;
  fault : Cluster.Fault.kind option;
  metrics : Workload.Metrics.t;
}

(** Run one experiment cell on a fresh engine. [slow_count] faulty
    followers (paper: 1 in 3-node, a minority — 2 — in 5-node setups).
    [trace] records every wait into the scheduler's trace ring for the whole
    run — used to measure the overhead of always-on tracing. *)
let run_cell ?(cfg = Raft.Config.default) ?(trace = false) ~params ~system ~n
    ~slow_count ~fault () =
  let engine = Sim.Engine.create ~seed:params.Params.seed () in
  let sched = Depfast.Sched.create engine in
  if trace then Depfast.Trace.enable (Depfast.Sched.trace sched);
  let sut = build system sched ~n ~cfg in
  (match fault with
  | None -> ()
  | Some kind ->
    let victims =
      List.filteri (fun i _ -> i < slow_count) sut.Workload.Sut.follower_nodes
    in
    List.iter (fun v -> ignore (Cluster.Fault.inject v kind)) victims);
  let clients = sut.Workload.Sut.make_clients ~count:params.Params.clients in
  let metrics =
    Workload.Driver.run sched ~clients ~workload:(Params.workload params)
      ~warmup:params.Params.warmup ~duration:params.Params.duration
      ~leader_node:sut.Workload.Sut.leader_node ()
  in
  { system; n; fault; metrics }

let fault_name = function None -> "No Slowness" | Some k -> Cluster.Fault.name k
