(** Experiment parameters.

    [full] follows the paper's §2.1 methodology (YCSB update workload
    over 500K records, hundreds of closed-loop clients, leader around
    75% CPU); [quick] shrinks everything for CI and unit tests. *)

type t = {
  seed : int64;  (** engine seed — experiments are deterministic in it *)
  clients : int;  (** closed-loop client count *)
  warmup : Sim.Time.span;  (** excluded from the measured window *)
  duration : Sim.Time.span;  (** measured window *)
  records : int;  (** keyspace size *)
  value_size : int;  (** value payload bytes *)
}

val full : t
val quick : t

val workload : t -> Workload.Ycsb.t
(** The update-heavy YCSB mix scaled to [t]'s records and value size. *)
