(** Ablations for the design choices DESIGN.md calls out.

    A1 — {e quorum wait vs wait-for-all}: replace DepFastRaft's majority
    arity with wait-for-everyone ([replication_arity = `All]). Under a CPU
    fail-slow follower the "all" variant degrades like the baselines,
    showing the QuorumEvent is what buys the tolerance.

    A2 — {e EntryCache size} in the TiDB-like baseline: with a cache large
    enough that nothing is evicted, the blocking disk reads disappear and
    so does most of the degradation — isolating the diagnosed root cause.

    A3 — {e framework-aware broadcast} (§2.3): with straggler discarding
    off, abandoned-call buffers for a slow follower are never released and
    the leader's outstanding-RPC memory grows; with it on, it stays flat.

    A4 — {e chain replication vs quorum replication} (§3.3's tradeoff):
    the same three nodes, workload, and CPU fail-slow fault, but writes
    flow through a chain whose every link is a 1/1 wait. *)

type row = { label : string; fault : string; metrics : Workload.Metrics.t }

val quorum_vs_all : ?params:Params.t -> unit -> row list
(** A1: majority vs wait-for-all arity, no-fault and CPU-slow cells. *)

val entry_cache : ?params:Params.t -> unit -> row list
(** A2: TiDB-like with default (evicting) vs effectively infinite cache;
    each row's label carries the observed blocking disk-read count. *)

val discard_stragglers : ?params:Params.t -> unit -> (string * int * int) list
(** A3: [(label, peak outstanding bytes, discarded responses)] for a
    stream of majority broadcasts with one fail-slow replica. *)

val chain_vs_quorum : ?params:Params.t -> unit -> row list
(** A4: chain replication vs DepFastRaft under a fail-slow middle node. *)

val print : ?params:Params.t -> unit -> unit
