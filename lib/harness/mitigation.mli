(** §5 extension: fail-slow leader detection + mitigation via leadership
    transfer.

    A CPU fail-slow fault is injected into the {e leader} mid-run. Without
    mitigation, every request suffers (the known algorithmic weakness of
    leader-based consensus — cf. Copilot). With the detector attached, the
    commit-latency trace signal crosses the threshold, leadership transfers
    to a healthy follower, and throughput recovers; the fail-slow node keeps
    serving as a follower, which DepFastRaft tolerates. *)

type phase = { label : string; metrics : Workload.Metrics.t }

type result = {
  variant : string;
  phases : phase list;  (** before / during+after fault *)
  mitigated : int;  (** leadership transfers triggered *)
  detect_ms : float;  (** fault injection -> transfer, ms (-1 if none) *)
}

val run_variant : ?params:Params.t -> with_detector:bool -> unit -> result

val run : ?params:Params.t -> unit -> result list
(** The unmitigated variant followed by the detector variant. *)

val print : ?params:Params.t -> unit -> unit
