(** Figure 3: DepFastRaft with a minority of fail-slow followers, 3-node
    and 5-node deployments — absolute throughput / average latency / P99.

    The paper's §3.4 claim: all three metrics stay within a 5% band of
    the no-fault baseline, at a base throughput around 5K
    requests/second. *)

type row = {
  n : int;
  fault : Cluster.Fault.kind option;
  metrics : Workload.Metrics.t;
  drift_tput : float;  (** (value - baseline) / baseline *)
  drift_mean : float;
  drift_p99 : float;
}

val minority : int -> int
(** Largest follower count that still leaves a working majority. *)

val run_setup :
  ?params:Params.t -> ?cfg:Raft.Config.t -> n:int -> unit -> row list
(** The no-fault baseline row plus one row per fault kind, all injected
    into a minority of followers of an [n]-node group. *)

val run : ?params:Params.t -> ?cfg:Raft.Config.t -> unit -> row list
(** {!run_setup} for the paper's 3-node and 5-node deployments. *)

val print_rows : row list -> unit
val print : ?params:Params.t -> ?cfg:Raft.Config.t -> unit -> unit
