(** Front end 3: whole-project interprocedural event-flow analysis.

    The per-file lint ({!Source_lint}) stops at module boundaries: a
    bare remote completion returned from another file, smuggled through
    a record field, or a suspension hidden behind a call are all
    invisible to it. This pass scans {e every} source together, builds a
    {!Summary.t} per top-level function (returns/accepts a remote
    completion event, suspends, acquires mutexes), resolves calls
    through a {!Callgraph.t} keyed on [Module.fn], and iterates the
    summaries to a fixpoint so facts flow through returns, tuple
    components, record fields and arguments. Whole-program rules:

    - {b cross-module-red-wait}: a bare rpc/disk completion produced in
      one module and [Sched.wait]ed in another (directly, via a record
      field, or via an argument passed to a waiting callee). Same-file
      facts are deliberately left to {!Source_lint} — no double
      reporting.
    - {b lock-across-call}: a call made while holding a [Depfast.Mutex]
      into a function that (transitively) suspends on an event.
    - {b lock-order-cycle}: a cycle in the static mutex
      acquisition-order graph (nested regions and held-across-call
      acquisitions), with a witness path in the message.
    - {b quorum-arity-mismatch}: [Event.quorum (Count k)] where [k]
      (resolved through constants, possibly cross-module) exceeds the
      children that statically flow in via [Event.add].

    Soundness: this is a token-level heuristic, neither sound nor
    complete — names are resolved on their last two dot-segments,
    record fields merge by name across types, and control flow is
    ignored (every call in a body is assumed reachable). It is a
    reviewer that never sleeps, not a verifier. Findings honour the
    same [(* depfast-lint: allow rule-id *)] pragmas as the per-file
    pass. *)

val analyze_sources : (string * string) list -> Finding.t list
(** [(path, contents)] pairs — the whole project at once. *)

val analyze_files : string list -> Finding.t list
