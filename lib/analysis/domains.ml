(* Front end 5: depfast-domains — ownership verdicts over the mutable
   state inventory, domain-safety certificates, and per-file effect
   footprints for the explorer's DPOR independence feed. *)

type cert = Growth.cert = {
  c_rule : string;
  c_kind : string;
  c_file : string;
  c_line : int;
  c_site : string;
  c_verdict : Growth.verdict;
  c_evidence : string;
}

type footprint = string * (string list * string list)

let class_immutable = "immutable-after-init"
let class_engine = "engine-owned"
let class_guarded = "guarded"
let class_unsafe = "unsafe-shared"

let analyze p =
  let eff = Effects.compute p in
  (* writes per cell, in (file, line) order so witnesses are stable *)
  let writes = Hashtbl.create 64 in
  List.iter
    (fun (a : Effects.access) ->
      if a.Effects.a_write then
        Hashtbl.replace writes a.Effects.a_cell
          (a :: (try Hashtbl.find writes a.Effects.a_cell with Not_found -> [])))
    (List.rev eff.Effects.e_accesses);
  let findings = ref [] in
  let certs = ref [] in
  List.iter
    (fun (c : Effects.cell) ->
      let ws = try Hashtbl.find writes c.Effects.cl_name with Not_found -> [] in
      let unlocked = List.filter (fun (a : Effects.access) -> not a.Effects.a_locked) ws in
      let nws = List.length ws in
      let cls, verdict, evidence =
        match c.Effects.cl_kind with
        | Effects.Atomic ->
          (class_guarded, Growth.Bounded, "lock-free: every operation an atomic read-modify-write")
        | Effects.Field ->
          if ws = [] then
            (class_immutable, Growth.Bounded, "mutable field never assigned anywhere in the tree")
          else if unlocked = [] then
            ( class_guarded,
              Growth.Bounded,
              Printf.sprintf "%d assignment site(s), all under a Mutex region" nws )
          else
            let tops = List.length (List.filter (fun (a : Effects.access) -> a.Effects.a_top) ws) in
            ( class_engine,
              Growth.Bounded,
              if tops = 0 then
                Printf.sprintf "%d assignment site(s), every base a threaded record value" nws
              else
                Printf.sprintf
                  "%d assignment site(s); %d through top-level bases, judged at those cells"
                  nws tops )
        | _ ->
          if ws = [] then
            (class_immutable, Growth.Bounded, "never written after its initializer")
          else if unlocked = [] then
            ( class_guarded,
              Growth.Bounded,
              Printf.sprintf "%d write site(s), all under a Mutex region" nws )
          else
            let w = List.hd unlocked in
            ( class_unsafe,
              Growth.Flagged,
              Printf.sprintf "written at %s:%d outside any Mutex region" w.Effects.a_file
                w.Effects.a_line )
      in
      certs :=
        {
          c_rule = Finding.unsafe_shared_state;
          c_kind = Effects.kind_name c.Effects.cl_kind;
          c_file = c.Effects.cl_file;
          c_line = c.Effects.cl_line;
          c_site = c.Effects.cl_name;
          c_verdict = verdict;
          c_evidence = cls ^ ": " ^ evidence;
        }
        :: !certs;
      if verdict = Growth.Flagged then begin
        let w = List.hd unlocked in
        findings :=
          Finding.v ~rule:Finding.unsafe_shared_state ~severity:Finding.Error
            ~loc:(Finding.File { file = c.Effects.cl_file; line = c.Effects.cl_line })
            (Printf.sprintf
               "top-level %s %s is written at %s:%d outside any Mutex region or owner \
                record: a data race once this runs across OCaml 5 domains — make it \
                atomic, guard it, or scope it per instance"
               (Effects.kind_name c.Effects.cl_kind)
               c.Effects.cl_name w.Effects.a_file w.Effects.a_line)
          :: !findings
      end)
    eff.Effects.e_cells;
  (* Per-file effect footprints: the union of the closed summaries of
     the file's items — the DPOR independence feed. Restricted to the
     schedule-relevant cells: [.field] effects are engine-owned (their
     sharing is judged at top-level base cells, whose writes ARE in the
     footprint) and atomic cells are linearizable counters — keeping
     either would put e.g. [Event.next_id] in every file that allocates
     an event and make all pairs conflict. The optimism is exactly what
     the dynamic probe cross-check exists to validate. *)
  let excluded = Hashtbl.create 32 in
  List.iter
    (fun (c : Effects.cell) ->
      if c.Effects.cl_kind = Effects.Atomic then
        Hashtbl.replace excluded c.Effects.cl_name ())
    eff.Effects.e_cells;
  let keep c = String.length c > 0 && c.[0] <> '.' && not (Hashtbl.mem excluded c) in
  let footprints =
    List.map
      (fun (fc : Growth.file_ctx) ->
        let reads = ref [] and wrs = ref [] in
        List.iter
          (fun (f : Growth.fn) ->
            match Effects.fn_summary eff f.Growth.g_qname with
            | None -> ()
            | Some s ->
              List.iter
                (fun c -> if keep c && not (List.mem c !reads) then reads := c :: !reads)
                s.Summary.reads;
              List.iter
                (fun c -> if keep c && not (List.mem c !wrs) then wrs := c :: !wrs)
                s.Summary.writes)
          fc.Growth.fc_fns;
        (fc.Growth.fc_path, (List.sort compare !reads, List.sort compare !wrs)))
      (Growth.files p)
  in
  ( List.sort_uniq Finding.by_location !findings,
    List.sort_uniq Growth.by_site !certs,
    footprints )

(* ---- driver ---------------------------------------------------------- *)

let allowed_at pragmas rule line =
  List.exists
    (fun (p : Lexer.pragma) ->
      p.Lexer.p_line <= line && p.Lexer.p_line >= line - 3 && List.mem rule p.Lexer.p_rules)
    pragmas

let analyze_sources sources =
  let p = Growth.load sources in
  let findings, certs, footprints = analyze p in
  let pragmas_of = Hashtbl.create 16 in
  List.iter
    (fun (fc : Growth.file_ctx) ->
      Hashtbl.replace pragmas_of fc.Growth.fc_path fc.Growth.fc_pragmas)
    (Growth.files p);
  let apply (f : Finding.t) =
    match f.Finding.loc with
    | Finding.File { file; line } ->
      let ps = try Hashtbl.find pragmas_of file with Not_found -> [] in
      if allowed_at ps f.Finding.rule line then { f with Finding.allowed = true } else f
    | _ -> f
  in
  (List.map apply findings, certs, footprints)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let analyze_files paths = analyze_sources (List.map (fun p -> (p, read_file p)) paths)
