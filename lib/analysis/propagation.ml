(* Interprocedural slowness taint: which functions are (transitively)
   downstream of a fail-slow resource site. Seeds are syntactic heads —
   disk submissions, net/rpc sends and deliveries, declared cost-model
   work, and flagged growth sites from the boundedness pass — and taint
   flows callee -> caller over {!Growth}'s call graph: a synchronous
   caller inherits the slowness of everything it invokes. Each tainted
   function keeps a deterministic least-(file, line) seed witness and
   one call-chain path back to it, so certificates can print the same
   evidence regardless of discovery order. *)

module SL = Source_lint

type fault = Cpu_slow | Disk_slow | Net_slow | Memory

let fault_name = function
  | Cpu_slow -> "cpu-slow"
  | Disk_slow -> "disk-slow"
  | Net_slow -> "net-slow"
  | Memory -> "memory"

let all = [ Cpu_slow; Disk_slow; Net_slow; Memory ]
let fault_rank = function Cpu_slow -> 0 | Disk_slow -> 1 | Net_slow -> 2 | Memory -> 3

type source = { s_fault : fault; s_head : string; s_file : string; s_line : int }

type taint = {
  t_source : source;  (** least-(file, line, head) seed reaching this fn *)
  t_path : string list;  (** qnames, this fn first, seed fn last *)
}

type t = {
  (* (fault rank, fn qname) -> best taint *)
  tbl : (int * string, taint) Hashtbl.t;
  sources : source list;  (** every seed site, sorted *)
}

(* Heads seeding each fault kind, matched on the last two dot-segments
   of a qualified mention (so [Cluster.Disk.write] and [Disk.write]
   both hit). [Disk.write]/[fsync] are slowness {e sources} here even
   though {!Source_lint} does not treat them as remote producers: a
   red-wait on one's own WAL is protocol-inherent, but a slow disk
   still delays whoever awaits it — exactly the exposure we chart. *)
let seed_heads =
  [
    ("Disk.write", Disk_slow);
    ("Disk.fsync", Disk_slow);
    ("Disk.read", Disk_slow);
    ("Event.disk_completion", Disk_slow);
    ("Rpc.call", Net_slow);
    ("Rpc.broadcast", Net_slow);
    ("Rpc.event", Net_slow);
    ("Rpc.serve", Net_slow);
    ("Net.send", Net_slow);
    ("Net.register", Net_slow);
    ("Event.rpc_completion", Net_slow);
    ("Node.cpu_work", Cpu_slow);
  ]

let source_key s = (s.s_file, s.s_line, s.s_head, fault_rank s.s_fault)

let taint_key t =
  (source_key t.t_source, List.length t.t_path, t.t_path)

let better a b = compare (taint_key a) (taint_key b) < 0

(* Seeds mentioned directly in a function body. *)
let scan_seeds (fc : Growth.file_ctx) (fn : Growth.fn) =
  let toks = fc.Growth.fc_toks in
  let acc = ref [] in
  let i = ref fn.Growth.g_b in
  while !i < fn.Growth.g_e do
    let t = toks.(!i) in
    (* module segments start uppercase; [SL.qualified] joins the dotted
       mention across the lexer's separate "." tokens *)
    if Lexer.is_ident t.Lexer.text && t.Lexer.text.[0] >= 'A' && t.Lexer.text.[0] <= 'Z'
    then begin
      let name, line, j = SL.qualified toks !i in
      (if String.contains name '.' then
         match List.assoc_opt (SL.last2 name) seed_heads with
         | Some k ->
           acc :=
             { s_fault = k; s_head = SL.last2 name; s_file = fc.Growth.fc_path; s_line = line }
             :: !acc
         | None -> ());
      i := j
    end
    else incr i
  done;
  List.rev !acc

(* Map a (file, line) growth site to its enclosing function. *)
let fn_at_line (fc : Growth.file_ctx) line =
  List.fold_left
    (fun best (fn : Growth.fn) ->
      if fn.Growth.g_line <= line then
        match best with
        | Some (b : Growth.fn) when b.Growth.g_line >= fn.Growth.g_line -> best
        | _ -> Some fn
      else best)
    None fc.Growth.fc_fns

let analyze (p : Growth.project) =
  let tbl : (int * string, taint) Hashtbl.t = Hashtbl.create 256 in
  let sources = ref [] in
  let seed fn_qname s =
    sources := s :: !sources;
    let key = (fault_rank s.s_fault, fn_qname) in
    let cand = { t_source = s; t_path = [ fn_qname ] } in
    match Hashtbl.find_opt tbl key with
    | Some old when not (better cand old) -> ()
    | _ -> Hashtbl.replace tbl key cand
  in
  let files = Growth.files p in
  (* direct seeds: head mentions in bodies, plus the defining functions
     themselves (so [Disk.write]'s own definition is a disk source and
     every resolvable caller inherits it through the call graph even
     without spelling the head qualified) *)
  List.iter
    (fun fc ->
      List.iter
        (fun (fn : Growth.fn) ->
          (match List.assoc_opt fn.Growth.g_qname seed_heads with
          | Some k ->
            seed fn.Growth.g_qname
              {
                s_fault = k;
                s_head = fn.Growth.g_qname;
                s_file = fc.Growth.fc_path;
                s_line = fn.Growth.g_line;
              }
          | None -> ());
          List.iter (seed fn.Growth.g_qname) (scan_seeds fc fn))
        fc.Growth.fc_fns)
    files;
  (* memory-pressure seeds: growth sites the boundedness pass flagged
     as unbounded (a bounded queue is not a slowness source) and no
     pragma exempted — an [allow unbounded-growth] means a human
     certified the site bounded in practice, so it does not radiate *)
  let allowed_growth fc line =
    List.exists
      (fun (pr : Lexer.pragma) ->
        pr.Lexer.p_line <= line
        && pr.Lexer.p_line >= line - 3
        && List.mem "unbounded-growth" pr.Lexer.p_rules)
      fc.Growth.fc_pragmas
  in
  let _, gcerts = Growth.analyze p in
  List.iter
    (fun (c : Growth.cert) ->
      if c.Growth.c_verdict = Growth.Flagged then
        List.iter
          (fun fc ->
            if fc.Growth.fc_path = c.Growth.c_file && not (allowed_growth fc c.Growth.c_line)
            then
              match fn_at_line fc c.Growth.c_line with
              | Some fn ->
                seed fn.Growth.g_qname
                  {
                    s_fault = Memory;
                    s_head = c.Growth.c_kind;
                    s_file = c.Growth.c_file;
                    s_line = c.Growth.c_line;
                  }
              | None -> ())
          files)
    gcerts;
  (* callee -> caller fixpoint with least-witness merging; keys only
     ever decrease, so this terminates even across call cycles *)
  let fns =
    List.concat_map
      (fun fc -> List.map (fun (f : Growth.fn) -> f.Growth.g_qname) fc.Growth.fc_fns)
      files
    |> List.sort_uniq compare
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun caller ->
        List.iter
          (fun callee ->
            if callee <> caller then
              List.iter
                (fun k ->
                  match Hashtbl.find_opt tbl (fault_rank k, callee) with
                  | None -> ()
                  | Some tc ->
                    if not (List.mem caller tc.t_path) then begin
                      let cand = { tc with t_path = caller :: tc.t_path } in
                      let key = (fault_rank k, caller) in
                      match Hashtbl.find_opt tbl key with
                      | Some old when not (better cand old) -> ()
                      | _ ->
                        Hashtbl.replace tbl key cand;
                        changed := true
                    end)
                all)
          (Growth.callees p caller))
      fns
  done;
  { tbl; sources = List.sort_uniq (fun a b -> compare (source_key a) (source_key b)) !sources }

let taints t qname =
  List.filter_map
    (fun k ->
      match Hashtbl.find_opt t.tbl (fault_rank k, qname) with
      | Some taint -> Some (k, taint)
      | None -> None)
    all

let sources t = t.sources
