(** A deliberately small OCaml tokenizer: enough structure for call-site
    scanning (identifiers, punctuation, line/column positions) without a
    real parser. Comments, strings and char literals are consumed, and
    [(* depfast-lint: allow rule-id ... *)] pragmas are collected. *)

type token = {
  line : int;  (** 1-based line of the token's first character *)
  col : int;  (** 0-based column — [col = 0] marks top-level items *)
  text : string;
}

type pragma = {
  p_line : int;  (** line the pragma comment starts on *)
  p_rules : string list;  (** words following "allow" in the comment *)
}

type result = { tokens : token array; pragmas : pragma list }

val scan : string -> result

val is_ident : string -> bool
(** True for identifier-shaped tokens (starts with a letter or [_]). *)
