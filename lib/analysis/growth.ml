module SL = Source_lint

(* ---- certificates ---------------------------------------------------- *)

type verdict = Bounded | Flagged

type cert = {
  c_rule : string;  (* the rule family this site was judged under *)
  c_kind : string;  (* queue | hashtbl | buffer | log | counter-window | cons | quorum-wait | retry *)
  c_file : string;
  c_line : int;
  c_site : string;  (* canonical container / window name, or the function *)
  c_verdict : verdict;
  c_evidence : string;  (* witness: what bounds it, or why it is flagged *)
}

let verdict_name = function Bounded -> "bounded" | Flagged -> "flagged"

let cert_to_json c =
  Printf.sprintf
    "{\"file\": \"%s\", \"line\": %d, \"site\": \"%s\", \"kind\": \"%s\", \"rule\": \
     \"%s\", \"verdict\": \"%s\", \"evidence\": \"%s\"}"
    (Finding.json_escape c.c_file) c.c_line (Finding.json_escape c.c_site)
    (Finding.json_escape c.c_kind) (Finding.json_escape c.c_rule)
    (verdict_name c.c_verdict)
    (Finding.json_escape c.c_evidence)

let by_site a b =
  let c = compare a.c_file b.c_file in
  if c <> 0 then c
  else
    let c = compare a.c_line b.c_line in
    if c <> 0 then c
    else
      let c = compare a.c_site b.c_site in
      if c <> 0 then c else compare a.c_kind b.c_kind

(* ---- project model --------------------------------------------------- *)

type fn = {
  g_qname : string;  (* Module.name; "Module.<unit:L>" for anonymous items *)
  g_line : int;
  g_b : int;  (* first token of the item (the [let]) *)
  g_e : int;  (* exclusive *)
}

type file_ctx = {
  fc_path : string;
  fc_mdl : string;
  fc_toks : Lexer.token array;
  fc_pm : int array;
  fc_pragmas : Lexer.pragma list;
  fc_fns : fn list;
  fc_stores : (string, unit) Hashtbl.t;  (* module-level containers *)
}

type project = {
  files : file_ctx list;
  defs : (string, file_ctx * fn) Hashtbl.t;  (* qname -> definition, first wins *)
  calls : (string, string list) Hashtbl.t;  (* qname -> resolved callees *)
  roots : (string, string) Hashtbl.t;  (* root qname -> why it is a root *)
  reach : (string, (string, unit) Hashtbl.t) Hashtbl.t;  (* root -> reachable set *)
}

let is_upper c = c >= 'A' && c <= 'Z'
let segments name = String.split_on_char '.' name
let last_segment name = List.nth (segments name) (List.length (segments name) - 1)

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Canonical name of a container/counter expression, mirroring the
   interprocedural pass's lock canonicalization: [Module.x] for
   module-level stores, [.field] for record fields (same-named fields
   merge across types — an accepted over-approximation), ["?"]-prefixed
   when identity is unknowable (locals, parameters). *)
let canon ctx raw =
  if SL.is_simple raw then
    if Hashtbl.mem ctx.fc_stores raw then ctx.fc_mdl ^ "." ^ raw else "?" ^ raw
  else
    let first = List.hd (segments raw) in
    if first <> "" && is_upper first.[0] then SL.last2 raw else "." ^ last_segment raw

let canonical s = String.length s > 0 && s.[0] <> '?'

(* Skip one argument-shaped token group: a dotted name, a balanced
   ()/[]/{} group, or a single token. Labels are skipped transparently
   by the callers. *)
let skip_group (a : Lexer.token array) i =
  let n = Array.length a in
  match a.(i).Lexer.text with
  | "(" | "[" | "{" ->
    let depth = ref 0 in
    let j = ref i in
    let stop = ref (-1) in
    while !stop < 0 && !j < n do
      (match a.(!j).Lexer.text with
      | "(" | "[" | "{" -> incr depth
      | ")" | "]" | "}" ->
        decr depth;
        if !depth = 0 then stop := !j
      | _ -> ());
      incr j
    done;
    if !stop >= 0 then !stop + 1 else n
  | t when Lexer.is_ident t ->
    let _, _, j = SL.qualified a i in
    j
  | _ -> i + 1

(* The [k]-th positional argument after token [i], as a dotted name;
   [~label:] arguments are skipped. *)
let rec nth_arg (a : Lexer.token array) i k =
  let n = Array.length a in
  if i >= n then None
  else if a.(i).Lexer.text = "~" && i + 2 < n && a.(i + 2).Lexer.text = ":" then
    nth_arg a (skip_group a (i + 3)) k
  else if k = 0 then
    if Lexer.is_ident a.(i).Lexer.text then
      let name, _, _ = SL.qualified a i in
      Some name
    else None
  else nth_arg a (skip_group a i) (k - 1)

(* ---- parsing one file ------------------------------------------------ *)

let store_heads = [ "Queue.create"; "Hashtbl.create"; "Buffer.create"; "Rlog.create" ]

let parse_file (path, src) =
  let { Lexer.tokens = a; pragmas } = Lexer.scan src in
  let pm = SL.paren_matches a in
  let mdl = module_of_path path in
  let bounds = SL.boundaries a in
  let n = Array.length a in
  let rec pairs = function
    | b :: rest ->
      let e = match rest with b2 :: _ -> b2 | [] -> n in
      (b, e) :: pairs rest
    | [] -> []
  in
  let stores = Hashtbl.create 8 in
  let fns = ref [] in
  List.iter
    (fun (b, e) ->
      let kw = a.(b).Lexer.text in
      if (kw = "let" || kw = "and") && e > b + 1 then begin
        let j = if a.(b + 1).Lexer.text = "rec" && b + 2 < e then b + 2 else b + 1 in
        let line = a.(b).Lexer.line in
        let qname =
          if j < e && Lexer.is_ident a.(j).Lexer.text then begin
            (* module-level store? [let name = Queue.create ...] *)
            (if j + 2 < e && a.(j + 1).Lexer.text = "=" && Lexer.is_ident a.(j + 2).Lexer.text
             then
               let h, _, _ = SL.qualified a (j + 2) in
               if List.mem (SL.last2 h) store_heads then
                 Hashtbl.replace stores a.(j).Lexer.text ());
            mdl ^ "." ^ a.(j).Lexer.text
          end
          else Printf.sprintf "%s.<unit:%d>" mdl line
        in
        fns := { g_qname = qname; g_line = line; g_b = b; g_e = e } :: !fns
      end)
    (pairs bounds);
  {
    fc_path = path;
    fc_mdl = mdl;
    fc_toks = a;
    fc_pm = pm;
    fc_pragmas = pragmas;
    fc_fns = List.rev !fns;
    fc_stores = stores;
  }

(* ---- call edges and remote-triggered roots --------------------------- *)

(* Heads whose closure argument runs in a remote- or callback-triggered
   context: the RPC/net delivery path, a spawned coroutine (fed by
   remote traffic), or an event-completion callback. *)
let trigger_heads =
  [
    ("Rpc.serve", "RPC handler");
    ("Net.register", "net delivery handler");
    ("Sched.spawn", "spawned coroutine");
    ("Sched.spawn_here", "spawned coroutine");
    ("Node.spawn", "spawned coroutine");
    ("Event.on_fire", "completion callback");
    ("Event.on_abandon", "abandon callback");
  ]

let resolve p ~mdl name =
  if SL.is_simple name then
    let q = mdl ^ "." ^ name in
    if Hashtbl.mem p.defs q then Some q else None
  else
    let q = SL.last2 name in
    if Hashtbl.mem p.defs q then Some q else None

let load sources =
  let files = List.map parse_file sources in
  let defs = Hashtbl.create 256 in
  List.iter
    (fun fc ->
      List.iter
        (fun f -> if not (Hashtbl.mem defs f.g_qname) then Hashtbl.add defs f.g_qname (fc, f))
        fc.fc_fns)
    files;
  let p = { files; defs; calls = Hashtbl.create 256; roots = Hashtbl.create 32; reach = Hashtbl.create 32 } in
  (* call edges: any resolvable name mentioned in a body is an edge —
     closures are treated as invoked, so a pump thunk stored in a record
     still connects its installer to the drain *)
  List.iter
    (fun fc ->
      let a = fc.fc_toks in
      List.iter
        (fun f ->
          let callees = ref [] in
          let i = ref f.g_b in
          while !i < f.g_e do
            if Lexer.is_ident a.(!i).Lexer.text then begin
              let name, _, ni = SL.qualified a !i in
              (match resolve p ~mdl:fc.fc_mdl name with
              | Some q when q <> f.g_qname -> callees := q :: !callees
              | _ -> ());
              i := ni
            end
            else incr i
          done;
          Hashtbl.replace p.calls f.g_qname (List.sort_uniq compare !callees))
        fc.fc_fns)
    files;
  (* roots: resolvable names inside the first [(fun ...)] closure
     following a trigger head ([~handler:(fun ...)], spawn thunks,
     completion callbacks) *)
  List.iter
    (fun fc ->
      let a = fc.fc_toks in
      let n = Array.length a in
      let i = ref 0 in
      while !i < n do
        if Lexer.is_ident a.(!i).Lexer.text then begin
          let name, _, ni = SL.qualified a !i in
          (match List.assoc_opt (SL.last2 name) trigger_heads with
          | Some why ->
            (* find the first [(fun] within the next tokens *)
            let j = ref ni in
            let found = ref false in
            while (not !found) && !j < min n (ni + 100) do
              if
                a.(!j).Lexer.text = "("
                && !j + 1 < n
                && a.(!j + 1).Lexer.text = "fun"
                && fc.fc_pm.(!j) >= 0
              then begin
                found := true;
                let close = fc.fc_pm.(!j) in
                let k = ref (!j + 2) in
                while !k < close do
                  if Lexer.is_ident a.(!k).Lexer.text then begin
                    let cname, _, kn = SL.qualified a !k in
                    (match resolve p ~mdl:fc.fc_mdl cname with
                    | Some q -> if not (Hashtbl.mem p.roots q) then Hashtbl.add p.roots q why
                    | None -> ());
                    k := kn
                  end
                  else incr k
                done
              end
              else incr j
            done
          | None -> ());
          i := ni
        end
        else incr i
      done)
    files;
  (* reachability closure per root *)
  Hashtbl.iter
    (fun root _ ->
      let seen = Hashtbl.create 32 in
      let rec go q =
        if not (Hashtbl.mem seen q) then begin
          Hashtbl.add seen q ();
          match Hashtbl.find_opt p.calls q with
          | Some cs -> List.iter go cs
          | None -> ()
        end
      in
      go root;
      Hashtbl.replace p.reach root seen)
    p.roots;
  p

let files p = p.files
let callees p q = try Hashtbl.find p.calls q with Not_found -> []

let fn_of_token fc i =
  List.find_opt (fun f -> f.g_b <= i && i < f.g_e) fc.fc_fns

let remote_reachable p qname =
  Hashtbl.fold (fun _ set acc -> acc || Hashtbl.mem set qname) p.reach false

(* roots whose reachable set contains [qname], with the reason *)
let roots_reaching p qname =
  Hashtbl.fold
    (fun root set acc -> if Hashtbl.mem set qname then (root, Hashtbl.find p.roots root) :: acc else acc)
    p.reach []
  |> List.sort compare

(* ---- growth sites and bound evidence --------------------------------- *)

type site_kind = Queue | Hash | Buf | Log | Cons | Counter

let kind_name = function
  | Queue -> "queue"
  | Hash -> "hashtbl"
  | Buf -> "buffer"
  | Log -> "log"
  | Cons -> "cons"
  | Counter -> "counter-window"

(* (head, container argument position, kind) *)
let growth_ops =
  [
    ("Queue.add", (1, Queue));
    ("Queue.push", (1, Queue));
    ("Hashtbl.add", (0, Hash));
    ("Buffer.add_string", (0, Buf));
    ("Buffer.add_char", (0, Buf));
    ("Buffer.add_bytes", (0, Buf));
    ("Buffer.add_buffer", (0, Buf));
    ("Rlog.append", (0, Log));
  ]

let drain_ops =
  [
    ("Queue.pop", Queue);
    ("Queue.take", Queue);
    ("Queue.take_opt", Queue);
    ("Queue.clear", Queue);
    ("Queue.transfer", Queue);
    ("Hashtbl.remove", Hash);
    ("Hashtbl.reset", Hash);
    ("Hashtbl.clear", Hash);
    ("Buffer.clear", Buf);
    ("Buffer.reset", Buf);
    ("Rlog.truncate_from", Log);
  ]

let length_ops =
  [ ("Queue.length", Queue); ("Hashtbl.length", Hash); ("Buffer.length", Buf); ("Rlog.length", Log) ]

type site = {
  s_fn : string;
  s_file : string;
  s_line : int;
  s_container : string;
  s_kind : site_kind;
  s_op : string;
}

(* what bounds a container, and where *)
type evidence = {
  e_fn : string;
  e_line : int;
  e_container : string;
  e_kind : site_kind;  (* the container kind this evidence is valid for *)
  e_what : string;
}

type facts = { mutable sites : site list; mutable evidence : evidence list }

(* Does a comparison operator neighbour token [i] (the first token of a
   container/counter mention ending at [j])? [<-] is not a comparison. *)
let near_comparison (a : Lexer.token array) i j =
  let n = Array.length a in
  let is_cmp k =
    k >= 0 && k < n
    &&
    match a.(k).Lexer.text with
    | "<" -> not (k + 1 < n && a.(k + 1).Lexer.text = "-")
    | ">" -> true
    | _ -> false
  in
  is_cmp j
  || (j + 1 < n && a.(j).Lexer.text = "=" && is_cmp (j + 1))
  || is_cmp (i - 1)
  || (i - 1 >= 0 && a.(i - 1).Lexer.text = "=" && is_cmp (i - 2))

let scan_fn fc (f : fn) (facts : facts) =
  let a = fc.fc_toks in
  let n = f.g_e in
  let add_site line container kind op =
    if canonical container then
      facts.sites <-
        {
          s_fn = f.g_qname;
          s_file = fc.fc_path;
          s_line = line;
          s_container = container;
          s_kind = kind;
          s_op = op;
        }
        :: facts.sites
  in
  let add_ev line container kind what =
    if canonical container then
      facts.evidence <-
        { e_fn = f.g_qname; e_line = line; e_container = container; e_kind = kind; e_what = what }
        :: facts.evidence
  in
  let i = ref f.g_b in
  while !i < n do
    if Lexer.is_ident a.(!i).Lexer.text then begin
      let name, line, ni = SL.qualified a !i in
      let l2 = SL.last2 name in
      (* container operations *)
      (match List.assoc_opt l2 growth_ops with
      | Some (argpos, kind) -> (
        match nth_arg a ni argpos with
        | Some arg -> add_site line (canon fc arg) kind l2
        | None -> ())
      | None -> ());
      (match List.assoc_opt l2 drain_ops with
      | Some kind -> (
        match nth_arg a ni 0 with
        | Some arg ->
          add_ev line (canon fc arg) kind (Printf.sprintf "drained via %s at line %d" l2 line)
        | None -> ())
      | None -> ());
      (match List.assoc_opt l2 length_ops with
      | Some kind -> (
        match nth_arg a ni 0 with
        | Some arg ->
          if near_comparison a (!i) ni then
            add_ev line (canon fc arg) kind
              (Printf.sprintf "capacity check on %s at line %d" l2 line)
        | None -> ())
      | None -> ());
      (* assignment forms: counter windows, list-cons accumulators,
         resets. [x.f <- x.f + 1] grows a window; [x.f <- x.f - 1] and a
         comparison on [x.f] bound it; [x.f <- e :: x.f] grows a list;
         any other [x.f <- rhs] is a reset (evidence for cons only). *)
      if ni + 1 < n && a.(ni).Lexer.text = "<" && a.(ni + 1).Lexer.text = "-" then begin
        let field = last_segment name in
        let c = canon fc name in
        let rhs = ni + 2 in
        let handled = ref false in
        if rhs < n && Lexer.is_ident a.(rhs).Lexer.text then begin
          let rname, _, rn = SL.qualified a rhs in
          if last_segment rname = field && rn < n then
            match a.(rn).Lexer.text with
            | "+" ->
              handled := true;
              add_site line c Counter "increment"
            | "-" ->
              handled := true;
              add_ev line c Counter (Printf.sprintf "decremented at line %d" line)
            | _ -> ()
        end;
        if not !handled then begin
          (* cons onto self before the statement ends? *)
          let stop = min n (rhs + 60) in
          let k = ref rhs in
          let found_cons = ref false in
          while (not !found_cons) && !k + 2 < stop do
            if
              a.(!k).Lexer.text = ":"
              && a.(!k + 1).Lexer.text = ":"
              && Lexer.is_ident a.(!k + 2).Lexer.text
            then begin
              let rname, _, _ = SL.qualified a (!k + 2) in
              if last_segment rname = field then found_cons := true
            end;
            incr k
          done;
          if !found_cons then add_site line c Cons "cons"
          else add_ev line c Cons (Printf.sprintf "reset/reassigned at line %d" line)
        end
      end;
      (* a comparison adjacent to a mention bounds a counter window *)
      if near_comparison a !i ni then
        add_ev line (canon fc name) Counter
          (Printf.sprintf "compared against a capacity at line %d" line);
      i := ni
    end
    else incr i
  done

(* ---- the growth analysis --------------------------------------------- *)

let analyze p =
  let facts = { sites = []; evidence = [] } in
  List.iter (fun fc -> List.iter (fun f -> scan_fn fc f facts) fc.fc_fns) p.files;
  (* index evidence by (function, container, kind) for component lookup *)
  let ev_by_fn = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.add ev_by_fn (e.e_fn, e.e_container, e.e_kind) e) facts.evidence;
  let component_evidence root site =
    match Hashtbl.find_opt p.reach root with
    | None -> None
    | Some set ->
      (* deterministic witness: the least (function, line) match, so
         reported evidence cannot depend on hash-table iteration order *)
      Hashtbl.fold
        (fun q () acc ->
          let cand = Hashtbl.find_opt ev_by_fn (q, site.s_container, site.s_kind) in
          match (acc, cand) with
          | None, c -> c
          | Some _, None -> acc
          | Some a, Some c -> if (c.e_fn, c.e_line) < (a.e_fn, a.e_line) then cand else acc)
        set None
  in
  let findings = ref [] in
  let certs = ref [] in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let key = (s.s_file, s.s_line, s.s_container) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        match roots_reaching p s.s_fn with
        | [] -> ()  (* not remote-triggered: out of scope *)
        | roots -> (
          (* a site is unbounded if SOME remote-triggered component
             reaches it with no drain/capacity evidence: backpressure
             must live on the producing path, not in a sibling loop *)
          let naked =
            List.find_opt (fun (root, _) -> component_evidence root s = None) roots
          in
          match naked with
          | None ->
            let root = fst (List.hd roots) in
            let ev = Option.get (component_evidence root s) in
            certs :=
              {
                c_rule = Finding.unbounded_growth;
                c_kind = kind_name s.s_kind;
                c_file = s.s_file;
                c_line = s.s_line;
                c_site = s.s_container;
                c_verdict = Bounded;
                c_evidence = Printf.sprintf "%s (in %s)" ev.e_what ev.e_fn;
              }
              :: !certs
          | Some (root, why) ->
            if s.s_kind = Counter then ()
              (* a bare counter consumes no memory; without a cap
                 comparison it is simply not a window — stay silent *)
            else begin
              findings :=
                Finding.v ~rule:Finding.unbounded_growth ~severity:Finding.Error
                  ~loc:(Finding.File { file = s.s_file; line = s.s_line })
                  (Printf.sprintf
                     "%s grows %s on a path from %s (%s) with no drain, truncation, or \
                      capacity check in that component: a slow consumer lets it grow \
                      without bound (the paper's RethinkDB backlog, §2)"
                     s.s_op s.s_container root why)
                :: !findings;
              certs :=
                {
                  c_rule = Finding.unbounded_growth;
                  c_kind = kind_name s.s_kind;
                  c_file = s.s_file;
                  c_line = s.s_line;
                  c_site = s.s_container;
                  c_verdict = Flagged;
                  c_evidence =
                    Printf.sprintf "no drain or capacity check reachable from %s" root;
                }
                :: !certs
            end)
      end)
    (List.rev facts.sites);
  (!findings, !certs)
