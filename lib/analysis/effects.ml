module SL = Source_lint

(* The mutable-state inventory and interprocedural effect analysis
   behind the depfast-domains pass: which top-level mutable cells exist,
   and which of them each function may read or write, including through
   calls across modules and SCCs. *)

type cell_kind = Ref | Queue | Hash | Buf | Log | Atomic | Record | Field

let kind_name = function
  | Ref -> "ref"
  | Queue -> "queue"
  | Hash -> "hashtbl"
  | Buf -> "buffer"
  | Log -> "log"
  | Atomic -> "atomic"
  | Record -> "record"
  | Field -> "field"

type cell = {
  cl_name : string;  (* canonical: Module.x, or .field *)
  cl_kind : cell_kind;
  cl_file : string;
  cl_line : int;
}

type access = {
  a_fn : string;
  a_cell : string;
  a_file : string;
  a_line : int;
  a_write : bool;
  a_locked : bool;  (* lexically inside a Mutex.with_lock body or lock..unlock span *)
  a_top : bool;  (* a field access whose base resolves to a top-level cell *)
  a_escape : bool;  (* unconsumed mention: the cell aliases out, read-only here *)
}

type t = {
  e_cells : cell list;  (* sorted by canonical name *)
  e_accesses : access list;  (* sorted by (cell, file, line, fn) *)
  e_summaries : (string, Summary.t) Hashtbl.t;  (* qname -> closed effects *)
}

(* ---- inventory ------------------------------------------------------- *)

(* rhs heads that allocate a top-level mutable store *)
let rhs_heads =
  [
    ("Queue.create", Queue);
    ("Hashtbl.create", Hash);
    ("Buffer.create", Buf);
    ("Rlog.create", Log);
    ("Atomic.make", Atomic);
    ("Stdlib.ref", Ref);
  ]

(* Every [mutable] field declaration in the tree. Same-named fields
   merge across types (the growth pass's canonicalization); the cell's
   site is the lexicographically least (file, line) declaration. *)
let field_inventory files =
  let fields = Hashtbl.create 64 in
  List.iter
    (fun (fc : Growth.file_ctx) ->
      let a = fc.Growth.fc_toks in
      Array.iteri
        (fun i (tok : Lexer.token) ->
          if
            tok.Lexer.text = "mutable"
            && i + 1 < Array.length a
            && Lexer.is_ident a.(i + 1).Lexer.text
          then begin
            let cellname = "." ^ a.(i + 1).Lexer.text in
            let site = (fc.Growth.fc_path, a.(i + 1).Lexer.line) in
            match Hashtbl.find_opt fields cellname with
            | Some s when s <= site -> ()
            | _ -> Hashtbl.replace fields cellname site
          end)
        a)
    files;
  fields

(* Top-level value bindings whose right-hand side allocates mutable
   state: [let x = ref 0], [let q = Queue.create ()], [let d = { ... }]
   with a mutable label, through an optional [: ty] annotation (the
   first [=] at paren depth 0) and a [lazy] wrapper. Function
   definitions (parameters before the [=]) are not cells. *)
let global_inventory files fields =
  let cells = Hashtbl.create 64 in
  List.iter
    (fun (fc : Growth.file_ctx) ->
      let a = fc.Growth.fc_toks in
      List.iter
        (fun (f : Growth.fn) ->
          let b = f.Growth.g_b and e = f.Growth.g_e in
          let j =
            if b + 1 < e && a.(b + 1).Lexer.text = "rec" then b + 2 else b + 1
          in
          if j < e && Lexer.is_ident a.(j).Lexer.text && a.(j).Lexer.text <> "_" then begin
            let rhs =
              if j + 1 < e && a.(j + 1).Lexer.text = "=" then Some (j + 2)
              else if j + 1 < e && a.(j + 1).Lexer.text = ":" then begin
                (* [let x : <ty> = rhs]: first [=] at depth 0 *)
                let depth = ref 0 and k = ref (j + 2) and found = ref None in
                while !found = None && !k < e do
                  (match a.(!k).Lexer.text with
                  | "(" | "[" | "{" -> incr depth
                  | ")" | "]" | "}" -> decr depth
                  | "=" when !depth = 0 -> found := Some (!k + 1)
                  | _ -> ());
                  incr k
                done;
                !found
              end
              else None
            in
            match rhs with
            | None -> ()
            | Some r ->
              let r = if r < e && a.(r).Lexer.text = "lazy" then r + 1 else r in
              if r < e then begin
                let kind =
                  let t = a.(r).Lexer.text in
                  if t = "ref" then Some Ref
                  else if t = "{" then begin
                    (* record literal: mutable iff a label inside the
                       braces is a known mutable field *)
                    let depth = ref 0 and k = ref r and close = ref (-1) in
                    while !close < 0 && !k < e do
                      (match a.(!k).Lexer.text with
                      | "{" -> incr depth
                      | "}" ->
                        decr depth;
                        if !depth = 0 then close := !k
                      | _ -> ());
                      incr k
                    done;
                    let close = if !close >= 0 then !close else e in
                    let m = ref false in
                    for k = r + 1 to close - 1 do
                      if
                        (not !m)
                        && Lexer.is_ident a.(k).Lexer.text
                        && Hashtbl.mem fields ("." ^ a.(k).Lexer.text)
                      then m := true
                    done;
                    if !m then Some Record else None
                  end
                  else if Lexer.is_ident t then begin
                    let h, _, _ = SL.qualified a r in
                    List.assoc_opt (SL.last2 h) rhs_heads
                  end
                  else None
                in
                match kind with
                | Some k ->
                  let cname = fc.Growth.fc_mdl ^ "." ^ a.(j).Lexer.text in
                  if not (Hashtbl.mem cells cname) then
                    Hashtbl.replace cells cname
                      {
                        cl_name = cname;
                        cl_kind = k;
                        cl_file = fc.Growth.fc_path;
                        cl_line = f.Growth.g_line;
                      }
                | None -> ()
              end
          end)
        fc.Growth.fc_fns)
    files;
  Hashtbl.iter
    (fun cname (file, line) ->
      Hashtbl.replace cells cname
        { cl_name = cname; cl_kind = Field; cl_file = file; cl_line = line })
    fields;
  cells

(* ---- per-function access scan ---------------------------------------- *)

(* What a mention resolves to under the cell inventory. *)
type target =
  | TGlobal of string
  | TField of string * string option  (* field cell, top-level base if any *)
  | TNone

let segments name = String.split_on_char '.' name
let last_segment name = List.nth (segments name) (List.length (segments name) - 1)

let target cells (fc : Growth.file_ctx) name =
  if SL.is_simple name then begin
    let q = fc.Growth.fc_mdl ^ "." ^ name in
    if Hashtbl.mem cells q then TGlobal q else TNone
  end
  else
    let segs = segments name in
    let first = List.hd segs in
    if first <> "" && first.[0] >= 'A' && first.[0] <= 'Z' then begin
      let l2 = SL.last2 name in
      if Hashtbl.mem cells l2 then TGlobal l2
      else
        (* [Mod.glob.field]: the first two segments may name a cell *)
        match segs with
        | m :: g :: (_ :: _ as rest) ->
          let base = m ^ "." ^ g in
          if Hashtbl.mem cells base then begin
            let fieldc = "." ^ List.nth rest (List.length rest - 1) in
            if Hashtbl.mem cells fieldc then TField (fieldc, Some base)
            else TGlobal base
          end
          else TNone
        | _ -> TNone
    end
    else begin
      let fieldc = "." ^ last_segment name in
      let baseq = fc.Growth.fc_mdl ^ "." ^ first in
      let base = if Hashtbl.mem cells baseq then Some baseq else None in
      if Hashtbl.mem cells fieldc then TField (fieldc, base)
      else match base with Some b -> TGlobal b | None -> TNone
    end

(* (head, container argument positions): mutating and read-only
   operations over the store kinds the inventory tracks *)
let write_ops =
  [
    ("Queue.add", [ 1 ]);
    ("Queue.push", [ 1 ]);
    ("Queue.pop", [ 0 ]);
    ("Queue.take", [ 0 ]);
    ("Queue.take_opt", [ 0 ]);
    ("Queue.clear", [ 0 ]);
    ("Queue.transfer", [ 0; 1 ]);
    ("Hashtbl.add", [ 0 ]);
    ("Hashtbl.replace", [ 0 ]);
    ("Hashtbl.remove", [ 0 ]);
    ("Hashtbl.reset", [ 0 ]);
    ("Hashtbl.clear", [ 0 ]);
    ("Buffer.add_string", [ 0 ]);
    ("Buffer.add_char", [ 0 ]);
    ("Buffer.add_bytes", [ 0 ]);
    ("Buffer.add_buffer", [ 0 ]);
    ("Buffer.clear", [ 0 ]);
    ("Buffer.reset", [ 0 ]);
    ("Rlog.append", [ 0 ]);
    ("Rlog.truncate_from", [ 0 ]);
    ("Atomic.set", [ 0 ]);
    ("Atomic.incr", [ 0 ]);
    ("Atomic.decr", [ 0 ]);
    ("Atomic.fetch_and_add", [ 0 ]);
    ("Atomic.exchange", [ 0 ]);
    ("Atomic.compare_and_set", [ 0 ]);
    ("incr", [ 0 ]);
    ("decr", [ 0 ]);
  ]

let read_ops =
  [
    ("Queue.length", [ 0 ]);
    ("Queue.is_empty", [ 0 ]);
    ("Queue.peek", [ 0 ]);
    ("Queue.peek_opt", [ 0 ]);
    ("Queue.iter", [ 1 ]);
    ("Hashtbl.find", [ 0 ]);
    ("Hashtbl.find_opt", [ 0 ]);
    ("Hashtbl.find_all", [ 0 ]);
    ("Hashtbl.mem", [ 0 ]);
    ("Hashtbl.length", [ 0 ]);
    ("Hashtbl.iter", [ 1 ]);
    ("Hashtbl.fold", [ 1 ]);
    ("Buffer.length", [ 0 ]);
    ("Buffer.contents", [ 0 ]);
    ("Rlog.length", [ 0 ]);
    ("Atomic.get", [ 0 ]);
  ]

(* [nth_arg] with the argument's start token, so the mention scan can
   skip arguments the operation tables already consumed. *)
let rec nth_arg_pos (a : Lexer.token array) i k =
  let n = Array.length a in
  if i >= n then None
  else if a.(i).Lexer.text = "~" && i + 2 < n && a.(i + 2).Lexer.text = ":" then
    nth_arg_pos a (Growth.skip_group a (i + 3)) k
  else if k = 0 then
    if Lexer.is_ident a.(i).Lexer.text then
      let name, _, _ = SL.qualified a i in
      Some (name, i)
    else None
  else nth_arg_pos a (Growth.skip_group a i) (k - 1)

let scan_fn cells (fc : Growth.file_ctx) (f : Growth.fn) ~add =
  let a = fc.Growth.fc_toks in
  let pm = fc.Growth.fc_pm in
  let hi = f.Growth.g_e in
  (* lock regions: [Mutex.with_lock sched m (fun ...)] bodies, and
     [Mutex.lock]..[Mutex.unlock] spans within the item *)
  let spans = ref [] in
  let i = ref f.Growth.g_b in
  while !i < hi do
    if Lexer.is_ident a.(!i).Lexer.text then begin
      let name, _, ni = SL.qualified a !i in
      (match SL.last2 name with
      | "Mutex.with_lock" ->
        let _, i1 = SL.parse_atom a pm ni in
        let _, i2 = SL.parse_atom a pm i1 in
        if i2 < hi && a.(i2).Lexer.text = "(" && pm.(i2) >= 0 then
          spans := (i2, pm.(i2)) :: !spans
        else spans := (i2, hi) :: !spans
      | "Mutex.lock" ->
        let j = ref ni and stop = ref hi in
        while !stop = hi && !j < hi do
          if Lexer.is_ident a.(!j).Lexer.text then begin
            let nm, _, nj = SL.qualified a !j in
            if SL.last2 nm = "Mutex.unlock" then stop := !j;
            j := nj
          end
          else incr j
        done;
        spans := (ni, !stop) :: !spans
      | _ -> ());
      i := ni
    end
    else incr i
  done;
  let locked k = List.exists (fun (b, e) -> b <= k && k <= e) !spans in
  (* pass 1: container/atomic operations; the container argument token
     is marked consumed so pass 2 does not read it a second time *)
  let consumed = Hashtbl.create 16 in
  let i = ref f.Growth.g_b in
  while !i < hi do
    if Lexer.is_ident a.(!i).Lexer.text then begin
      let name, line, ni = SL.qualified a !i in
      let l2 = SL.last2 name in
      let hit write poss =
        List.iter
          (fun p ->
            match nth_arg_pos a ni p with
            | None -> ()
            | Some (arg, argstart) -> (
              Hashtbl.replace consumed argstart ();
              match target cells fc arg with
              | TGlobal c ->
                add ~fn:f.Growth.g_qname ~cell:c ~line ~write ~locked:(locked !i)
                  ~top:false ~escape:false
              | TField (c, base) ->
                add ~fn:f.Growth.g_qname ~cell:c ~line ~write ~locked:(locked !i)
                  ~top:(base <> None) ~escape:false;
                (match base with
                | Some b ->
                  add ~fn:f.Growth.g_qname ~cell:b ~line ~write ~locked:(locked !i)
                    ~top:false ~escape:false
                | None -> ())
              | TNone -> ()))
          poss
      in
      (match List.assoc_opt l2 write_ops with
      | Some poss -> hit true poss
      | None -> ());
      (match List.assoc_opt l2 read_ops with
      | Some poss -> hit false poss
      | None -> ());
      i := ni
    end
    else incr i
  done;
  (* pass 2: direct mentions — [x := e], [!x], [t.f <- e], bare field
     reads, and unconsumed cell mentions (alias escapes, read-only) *)
  let n = Array.length a in
  let i = ref f.Growth.g_b in
  while !i < hi do
    if Lexer.is_ident a.(!i).Lexer.text then begin
      let name, line, ni = SL.qualified a !i in
      if not (Hashtbl.mem consumed !i) then begin
        let assign =
          ni + 1 < n
          && ((a.(ni).Lexer.text = ":" && a.(ni + 1).Lexer.text = "=")
             || (a.(ni).Lexer.text = "<" && a.(ni + 1).Lexer.text = "-"))
        in
        let deref = !i > 0 && a.(!i - 1).Lexer.text = "!" in
        match target cells fc name with
        | TGlobal c ->
          if assign then
            add ~fn:f.Growth.g_qname ~cell:c ~line ~write:true ~locked:(locked !i)
              ~top:false ~escape:false
          else
            add ~fn:f.Growth.g_qname ~cell:c ~line ~write:false ~locked:(locked !i)
              ~top:false ~escape:(not deref)
        | TField (c, base) ->
          add ~fn:f.Growth.g_qname ~cell:c ~line ~write:assign ~locked:(locked !i)
            ~top:(assign && base <> None) ~escape:false;
          (match base with
          | Some b ->
            add ~fn:f.Growth.g_qname ~cell:b ~line ~write:assign ~locked:(locked !i)
              ~top:false ~escape:(not assign)
          | None -> ())
        | TNone -> ()
      end;
      i := ni
    end
    else incr i
  done

(* ---- the effect fixpoint --------------------------------------------- *)

let compute p =
  let files = Growth.files p in
  let fields = field_inventory files in
  let cells = global_inventory files fields in
  let accesses = ref [] in
  List.iter
    (fun (fc : Growth.file_ctx) ->
      let add ~fn ~cell ~line ~write ~locked ~top ~escape =
        accesses :=
          {
            a_fn = fn;
            a_cell = cell;
            a_file = fc.Growth.fc_path;
            a_line = line;
            a_write = write;
            a_locked = locked;
            a_top = top;
            a_escape = escape;
          }
          :: !accesses
      in
      List.iter (fun f -> scan_fn cells fc f ~add) fc.Growth.fc_fns)
    files;
  let accesses =
    List.sort_uniq
      (fun a b ->
        compare
          (a.a_cell, a.a_file, a.a_line, a.a_fn, a.a_write, a.a_locked, a.a_top, a.a_escape)
          (b.a_cell, b.a_file, b.a_line, b.a_fn, b.a_write, b.a_locked, b.a_top, b.a_escape))
      !accesses
  in
  (* direct summaries, then propagate callee effects to a fixpoint *)
  let summaries = Hashtbl.create 256 in
  List.iter
    (fun (fc : Growth.file_ctx) ->
      List.iter
        (fun (f : Growth.fn) ->
          if not (Hashtbl.mem summaries f.Growth.g_qname) then
            Hashtbl.replace summaries f.Growth.g_qname
              (Summary.create ~qname:f.Growth.g_qname ~file:fc.Growth.fc_path
                 ~line:f.Growth.g_line ~params:[]))
        fc.Growth.fc_fns)
    files;
  List.iter
    (fun a ->
      match Hashtbl.find_opt summaries a.a_fn with
      | None -> ()
      | Some s ->
        if a.a_write then Summary.add_write s a.a_cell else Summary.add_read s a.a_cell)
    accesses;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    Hashtbl.iter
      (fun q s ->
        List.iter
          (fun callee ->
            match Hashtbl.find_opt summaries callee with
            | None -> ()
            | Some cs ->
              let before = Summary.fingerprint s in
              List.iter (Summary.add_read s) cs.Summary.reads;
              List.iter (Summary.add_write s) cs.Summary.writes;
              if Summary.fingerprint s <> before then changed := true)
          (Growth.callees p q))
      summaries
  done;
  let cell_list =
    Hashtbl.fold (fun _ c acc -> c :: acc) cells []
    |> List.sort (fun a b -> compare a.cl_name b.cl_name)
  in
  { e_cells = cell_list; e_accesses = accesses; e_summaries = summaries }

let fn_summary t q = Hashtbl.find_opt t.e_summaries q
