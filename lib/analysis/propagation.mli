(** Interprocedural slowness taint for the depfast-spg pass
    ({!Spg_static}).

    Seeds taint at fail-slow {e resource sites} — disk submissions
    ([Disk.write]/[fsync]/[read], [Event.disk_completion]), net/rpc
    sends and deliveries ([Rpc.call]/[broadcast]/[event]/[serve],
    [Net.send]/[register], [Event.rpc_completion]), declared cost-model
    work ([Node.cpu_work]), and growth sites the boundedness pass
    flagged unbounded — then propagates callee → caller over
    {!Growth}'s whole-project call graph: a synchronous caller inherits
    the slowness of everything it invokes.

    Fault kinds mirror the injectable [Cluster.Fault.kind]s (this
    library cannot depend on [cluster], so the mapping by name lives in
    [lib/check]). Witnesses are deterministic: each tainted function
    records the least-(file, line, head) seed that reaches it and one
    shortest call chain back to it, independent of discovery order. *)

type fault = Cpu_slow | Disk_slow | Net_slow | Memory

val fault_name : fault -> string
(** ["cpu-slow" | "disk-slow" | "net-slow" | "memory"] — matched by
    name against [Cluster.Fault.kind] in [lib/check]. *)

val all : fault list
val fault_rank : fault -> int

type source = {
  s_fault : fault;
  s_head : string;  (** seeding head, e.g. ["Disk.write"], or growth kind *)
  s_file : string;
  s_line : int;
}

type taint = {
  t_source : source;  (** least-(file, line, head) seed reaching this fn *)
  t_path : string list;  (** call chain: this fn first, seed fn last *)
}

type t

val analyze : Growth.project -> t

val taints : t -> string -> (fault * taint) list
(** Taints of a function by qualified name, in {!all} order; [[]] when
    untainted. *)

val sources : t -> source list
(** Every seed site found, sorted by (file, line, head). *)
