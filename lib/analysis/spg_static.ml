(* The depfast-spg pass: classify every wait site's static slowness
   exposure — which fail-slow resource kinds can delay it, in which
   role — and its color in the {!Spg.color} sense (quorum-k green vs
   fate-sharing red). Taint comes from {!Propagation}; wait shapes and
   timeout escapes mirror {!Bounds.scan_waits} so the two passes agree
   on what "covered" means. Every wait yields a certificate; every
   (wait x exposure) pair yields a propagation certificate carrying the
   least-(fn, line) witness path. *)

module SL = Source_lint

type color = Red | Green

let color_name = function Red -> "red" | Green -> "green"

type exposure = {
  x_fault : Propagation.fault;
  x_role : string;  (** ["self" | "peer"] *)
  x_taint : Propagation.taint;
}

type wait = {
  w_file : string;
  w_line : int;
  w_fn : string;  (** enclosing function, qualified *)
  w_site : string;  (** the waited event: binding name or head *)
  w_color : color;
  w_covered : bool;  (** wait_timeout, or_-escape, or timer child *)
  w_exposures : exposure list;
}

let role_of fault (t : Propagation.taint) ~file =
  match fault with
  | Propagation.Net_slow -> "peer"
  | _ -> if t.Propagation.t_source.s_file = file then "self" else "peer"

let path_string (t : Propagation.taint) =
  String.concat " -> " (List.rev t.Propagation.t_path)

let exposure_string x =
  Printf.sprintf "%s x %s" (Propagation.fault_name x.x_fault) x.x_role

(* ---- per-function wait scan ------------------------------------------ *)

(* Tracks, like {!Bounds.scan_waits}: quorum/or_/and_ bindings, timer
   escapes wired via [Event.add q ~child:(Sched.timer ...)], plus —
   for the unreached-mitigation rule — which simple variable a quorum's
   [Count] arity came from and which head each local was bound to. *)
let scan_fn pr taint (fc : Growth.file_ctx) (f : Growth.fn) ~wait ~arity =
  ignore pr;
  let a = fc.Growth.fc_toks in
  let pm = fc.Growth.fc_pm in
  let n = f.Growth.g_e in
  let quorums = Hashtbl.create 4 in
  let ors = Hashtbl.create 4 in
  let ands = Hashtbl.create 4 in
  let timered = Hashtbl.create 4 in
  let arity_var = Hashtbl.create 4 in
  let var_head = Hashtbl.create 8 in
  let exposures =
    List.map
      (fun (k, t) -> { x_fault = k; x_role = role_of k t ~file:fc.Growth.fc_path; x_taint = t })
      (Propagation.taints taint f.Growth.g_qname)
  in
  (* the Count arity of a quorum binding, when it is a simple variable *)
  let record_arity q eq =
    let limit = min n (eq + 60) in
    let j = ref (eq + 1) in
    while !j < limit && a.(!j).Lexer.text <> "in" do
      if a.(!j).Lexer.text = "Count" then begin
        let k = ref (!j + 1) in
        while !k < limit && a.(!k).Lexer.text = "(" do
          incr k
        done;
        (if !k < limit then
           let t = a.(!k).Lexer.text in
           if Lexer.is_ident t && SL.is_simple t && not (t.[0] >= '0' && t.[0] <= '9') then
             Hashtbl.replace arity_var q t);
        j := limit
      end
      else incr j
    done
  in
  let emit_wait ~line ~site ~color ~covered =
    wait
      {
        w_file = fc.Growth.fc_path;
        w_line = line;
        w_fn = f.Growth.g_qname;
        w_site = site;
        w_color = color;
        w_covered = covered;
        w_exposures = exposures;
      }
  in
  (* green-quorum wait whose Count arity flows from a tainted call *)
  let check_arity q line =
    match Hashtbl.find_opt arity_var q with
    | None -> ()
    | Some v -> (
      match Hashtbl.find_opt var_head v with
      | None -> ()
      | Some h ->
        let candidates =
          if SL.is_simple h then [ fc.Growth.fc_mdl ^ "." ^ h ]
          else
            [ SL.last2 h ]
            @
            (match String.rindex_opt h '.' with
            | Some j ->
              [ fc.Growth.fc_mdl ^ "." ^ String.sub h (j + 1) (String.length h - j - 1) ]
            | None -> [])
        in
        let tainted =
          List.find_map
            (fun q ->
              match Propagation.taints taint q with [] -> None | (k, t) :: _ -> Some (q, k, t))
            candidates
        in
        (match tainted with
        | Some (callee, k, t) ->
          arity ~line ~q ~v ~callee ~fault:k ~taint:t
        | None -> ()))
  in
  let classify_head h =
    match SL.last2 h with
    | "Event.quorum" | "Event.or_" -> Green
    | _ -> Red
  in
  let wait_on ~line ~covered ev =
    match ev with
    | SL.AName q when SL.is_simple q ->
      if Hashtbl.mem quorums q then begin
        emit_wait ~line ~site:("quorum " ^ q) ~color:Green
          ~covered:(covered || Hashtbl.mem timered q);
        check_arity q line
      end
      else if Hashtbl.mem ors q then emit_wait ~line ~site:("or_ " ^ q) ~color:Green ~covered:true
      else if Hashtbl.mem ands q then emit_wait ~line ~site:("and_ " ^ q) ~color:Red ~covered
      else emit_wait ~line ~site:q ~color:Red ~covered
    | SL.AName q -> emit_wait ~line ~site:q ~color:Red ~covered
    | SL.AParen (Some h) -> emit_wait ~line ~site:(SL.last2 h) ~color:(classify_head h) ~covered
    | SL.AParen None | SL.AOther -> emit_wait ~line ~site:"<expr>" ~color:Red ~covered
  in
  let i = ref f.Growth.g_b in
  while !i < n do
    (match SL.binding_at a pm !i with
    (* [let quorum, calls = Rpc.broadcast ...]: the first component is
       an [Event.quorum arity] built by the rpc layer — green *)
    | Some (SL.PTuple (q :: _), SL.RHead (Some h), _) when SL.last2 h = "Rpc.broadcast" ->
      Hashtbl.replace quorums q a.(!i).Lexer.line
    | Some (SL.PVar name, SL.RHead (Some h), eq) ->
      let l2 = SL.last2 h in
      Hashtbl.remove quorums name;
      Hashtbl.remove ors name;
      Hashtbl.remove ands name;
      Hashtbl.remove timered name;
      (match l2 with
      | "Event.quorum" ->
        Hashtbl.replace quorums name a.(!i).Lexer.line;
        record_arity name eq
      | "Event.or_" -> Hashtbl.replace ors name ()
      | "Event.and_" -> Hashtbl.replace ands name ()
      | _ -> Hashtbl.replace var_head name h)
    | Some (SL.PVar name, _, _) ->
      Hashtbl.remove quorums name;
      Hashtbl.remove ors name;
      Hashtbl.remove ands name;
      Hashtbl.remove timered name;
      Hashtbl.remove var_head name
    | _ -> ());
    if Lexer.is_ident a.(!i).Lexer.text then begin
      let name, line, ni = SL.qualified a !i in
      (match SL.last2 name with
      | "Event.add" -> (
        let parent, i1 = SL.parse_atom a pm ni in
        match parent with
        | SL.AName q when SL.is_simple q && Hashtbl.mem quorums q ->
          if
            i1 + 3 < n
            && a.(i1).Lexer.text = "~"
            && a.(i1 + 1).Lexer.text = "child"
            && a.(i1 + 2).Lexer.text = ":"
          then begin
            let child, _ = SL.parse_atom a pm (i1 + 3) in
            let timerish h = List.mem (SL.last2 h) [ "Sched.timer"; "Event.timer_kind" ] in
            match child with
            | SL.AName h when timerish h -> Hashtbl.replace timered q ()
            | SL.AParen (Some h) when timerish h -> Hashtbl.replace timered q ()
            | _ -> ()
          end
        | _ -> ())
      | "Sched.wait" | "Sched.wait_timeout" ->
        let covered = SL.last2 name = "Sched.wait_timeout" in
        let _sched, i1 = SL.parse_atom a pm ni in
        let ev, _ = SL.parse_atom a pm i1 in
        wait_on ~line ~covered ev
      | "Condvar.wait" | "Condvar.wait_timeout" ->
        (* a condvar handoff fate-shares with its (single) signaller *)
        let covered = SL.last2 name = "Condvar.wait_timeout" in
        let _sched, i1 = SL.parse_atom a pm ni in
        let cv, _ = SL.parse_atom a pm i1 in
        let site =
          match cv with
          | SL.AName c -> "condvar " ^ c
          | _ -> "condvar"
        in
        emit_wait ~line ~site ~color:Red ~covered
      | _ -> ());
      i := ni
    end
    else incr i
  done

(* ---- driver ---------------------------------------------------------- *)

let allowed_at pragmas rule line =
  List.exists
    (fun (p : Lexer.pragma) ->
      p.Lexer.p_line <= line && p.Lexer.p_line >= line - 3 && List.mem rule p.Lexer.p_rules)
    pragmas

let analyze_project p =
  let taint = Propagation.analyze p in
  let findings = ref [] in
  let certs = ref [] in
  let waits = ref [] in
  let emit f = findings := f :: !findings in
  List.iter
    (fun fc ->
      List.iter
        (fun f ->
          scan_fn p taint fc f
            ~wait:(fun w -> waits := w :: !waits)
            ~arity:(fun ~line ~q ~v ~callee ~fault ~taint:t ->
              emit
                (Finding.v ~rule:Finding.unreached_mitigation ~severity:Finding.Warning
                   ~loc:(Finding.File { file = fc.Growth.fc_path; line })
                   (Printf.sprintf
                      "quorum %S claims green but its Count arity %S comes from %s, which \
                       is %s-tainted (seed %s at %s:%d): the mitigation's k is itself \
                       controlled by the slow resource"
                      q v callee
                      (Propagation.fault_name fault)
                      t.Propagation.t_source.Propagation.s_head
                      t.Propagation.t_source.Propagation.s_file
                      t.Propagation.t_source.Propagation.s_line))))
        fc.Growth.fc_fns)
    (Growth.files p);
  (* certificates + red-exposure findings per wait *)
  List.iter
    (fun w ->
      let exposed = w.w_exposures <> [] in
      let flagged = w.w_color = Red && exposed && not w.w_covered in
      let verdict = if flagged then Growth.Flagged else Growth.Bounded in
      let exp_str =
        if not exposed then "no slow-resource exposure reaches this wait"
        else
          Printf.sprintf "exposed to %s%s"
            (String.concat ", " (List.map exposure_string w.w_exposures))
            (if w.w_color = Green then "; quorum-k green"
             else if w.w_covered then "; deadline-covered"
             else "; fate-sharing and uncovered")
      in
      certs :=
        {
          Growth.c_rule = Finding.red_exposure;
          c_kind = "wait";
          c_file = w.w_file;
          c_line = w.w_line;
          c_site = w.w_site;
          c_verdict = verdict;
          c_evidence = Printf.sprintf "%s wait in %s: %s" (color_name w.w_color) w.w_fn exp_str;
        }
        :: !certs;
      List.iter
        (fun x ->
          let s = x.x_taint.Propagation.t_source in
          certs :=
            {
              Growth.c_rule = Finding.red_exposure;
              c_kind = "propagation";
              c_file = w.w_file;
              c_line = w.w_line;
              c_site = Printf.sprintf "%s->%s" (Propagation.fault_name x.x_fault) w.w_site;
              c_verdict = verdict;
              c_evidence =
                Printf.sprintf "role=%s color=%s path %s; seed %s at %s:%d" x.x_role
                  (color_name w.w_color) (path_string x.x_taint) s.Propagation.s_head
                  s.Propagation.s_file s.Propagation.s_line;
            }
            :: !certs)
        w.w_exposures;
      if flagged then
        emit
          (Finding.v ~rule:Finding.red_exposure ~severity:Finding.Warning
             ~loc:(Finding.File { file = w.w_file; line = w.w_line })
             (Printf.sprintf
                "fate-sharing wait on %s is exposed to %s (via %s) with no timeout \
                 escape: one slow resource delays this coroutine without bound"
                w.w_site
                (String.concat ", " (List.map exposure_string w.w_exposures))
                (path_string (List.hd w.w_exposures).x_taint))))
    !waits;
  (* pragma exemptions, same window as the other passes *)
  let pragmas_of = Hashtbl.create 16 in
  List.iter
    (fun fc -> Hashtbl.replace pragmas_of fc.Growth.fc_path fc.Growth.fc_pragmas)
    (Growth.files p);
  let apply (f : Finding.t) =
    match f.Finding.loc with
    | Finding.File { file; line } ->
      let ps = try Hashtbl.find pragmas_of file with Not_found -> [] in
      if allowed_at ps f.Finding.rule line then { f with Finding.allowed = true } else f
    | _ -> f
  in
  let exposures =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun w ->
        List.iter
          (fun x ->
            let prev = try Hashtbl.find tbl w.w_file with Not_found -> [] in
            Hashtbl.replace tbl w.w_file
              ((Propagation.fault_name x.x_fault, color_name w.w_color) :: prev))
          w.w_exposures)
      !waits;
    Hashtbl.fold (fun file l acc -> (file, List.sort_uniq compare l) :: acc) tbl []
    |> List.sort compare
  in
  ( List.sort_uniq Finding.by_location (List.map apply !findings),
    List.sort_uniq Growth.by_site !certs,
    exposures )

let analyze_sources sources = analyze_project (Growth.load sources)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let analyze_files paths = analyze_sources (List.map (fun p -> (p, read_file p)) paths)
