(** Front end 5: depfast-domains — domain-safety verdicts over the
    mutable-state inventory.

    Built on {!Effects}: every top-level mutable cell gets an ownership
    verdict and a machine-readable certificate (same shape as the
    boundedness certificates, under the [unsafe-shared-state] rule):

    - {b immutable-after-init}: never written anywhere in the tree —
      safe to share across domains by construction;
    - {b engine-owned}: a [mutable] field written only through threaded
      record values ([t.f <- ...]) — domain-local as long as the owner
      record is;
    - {b guarded}: every write lexically under a canonical
      [Depfast.Mutex] region, or the cell is an [Atomic];
    - {b unsafe-shared} ([Flagged] + an [Error] finding at the cell's
      definition): written outside any Mutex region or owner record —
      a data race once the tree runs on OCaml 5 domains.

    The pass also exports per-file {e effect footprints} (the union of
    the file's closed read/write sets): two files whose write sets are
    disjoint from each other's read+write sets are statically
    independent, which the schedule explorer ([lib/check]) uses to
    enlarge DPOR persistent-set pruning — cross-checked dynamically by
    sanitizer probes, since the static footprints cannot see writes
    through escaped aliases. *)

type cert = Growth.cert = {
  c_rule : string;
  c_kind : string;
  c_file : string;
  c_line : int;
  c_site : string;
  c_verdict : Growth.verdict;
  c_evidence : string;  (** ["<class>: <witness>"] *)
}

type footprint = string * (string list * string list)
(** [(path, (cells read, cells written))] — whole-file effect union,
    restricted to schedule-relevant cells: [.field] effects (engine-owned,
    judged at their top-level base cells) and atomic cells (linearizable
    counters like [Event.next_id]) are excluded, so the file-level
    independence relation reflects genuinely shared module-level state.
    This optimism is validated dynamically by the explorer's probes. *)

(** Verdict class names, as they appear in certificate evidence. *)

val class_immutable : string
val class_engine : string
val class_guarded : string
val class_unsafe : string

val analyze : Growth.project -> Finding.t list * cert list * footprint list
(** Findings are pragma-unapplied; certificates sorted by site, one per
    inventory cell; footprints in project file order. *)

val analyze_sources :
  (string * string) list -> Finding.t list * cert list * footprint list
(** [(path, contents)] pairs — the whole project at once; findings are
    pragma-applied and sorted by location. *)

val analyze_files : string list -> Finding.t list * cert list * footprint list
