(** The project model and growth analysis behind the depfast-bounds
    pass ({!Bounds}).

    Builds, from every source at once: a per-file token context, a
    table of top-level items, a call graph where {e any} resolvable
    name mentioned in a body is an edge (closures are treated as
    invoked, so a pump thunk stored in a record still connects its
    installer to the drain), and the set of {e remote-triggered roots}
    — functions named inside the closure argument of [Rpc.serve]/
    [Net.register] handlers, [spawn] thunks, and [Event.on_fire]
    callbacks.

    The growth analysis then collects {e accumulation sites}
    ([Queue.add], [Hashtbl.add], [Buffer.add_*], [Rlog.append], list
    cons onto a field, counter-window increments) over {e canonical}
    containers (module-level stores as [Module.x], record fields as
    [.field]; locals are scoped and skipped) and {e bound evidence}
    (drains, truncation, length-comparison capacity checks, counter
    decrements). A site reachable from a remote-triggered root is
    flagged {!Finding.unbounded_growth} when {e some} root's reachable
    component contains no bound evidence for its container: the exists
    semantics means backpressure must live on the producing path, not
    in a sibling drain loop. Counter windows never flag — a bare [int]
    consumes no memory — they only yield certificates when bounded.

    Like the other front ends this is a token-level heuristic, neither
    sound nor complete; same-named record fields merge across types and
    every mention is assumed reachable. *)

(** {2 Boundedness certificates} *)

type verdict = Bounded | Flagged

type cert = {
  c_rule : string;  (** the rule family this site was judged under *)
  c_kind : string;
      (** [queue | hashtbl | buffer | log | cons | counter-window |
          quorum-wait | retry] *)
  c_file : string;
  c_line : int;
  c_site : string;  (** canonical container / window name, or the function *)
  c_verdict : verdict;
  c_evidence : string;  (** witness: what bounds it, or why it is flagged *)
}

val verdict_name : verdict -> string
val cert_to_json : cert -> string
val by_site : cert -> cert -> int

(** {2 Project model} *)

type fn = {
  g_qname : string;  (** [Module.name]; [Module.<unit:L>] for anonymous items *)
  g_line : int;
  g_b : int;  (** first token of the item *)
  g_e : int;  (** exclusive *)
}

type file_ctx = {
  fc_path : string;
  fc_mdl : string;
  fc_toks : Lexer.token array;
  fc_pm : int array;
  fc_pragmas : Lexer.pragma list;
  fc_fns : fn list;
  fc_stores : (string, unit) Hashtbl.t;
}

type project

val load : (string * string) list -> project
(** Parse every [(path, contents)] pair and close call edges, roots and
    per-root reachability. *)

val files : project -> file_ctx list
val fn_of_token : file_ctx -> int -> fn option

val callees : project -> string -> string list
(** Resolved call edges out of a function, sorted; [[]] if unknown. *)

val skip_group : Lexer.token array -> int -> int
(** Index past one argument-shaped token group: a dotted name, a
    balanced ()/[]/{} group, or a single token. *)

val remote_reachable : project -> string -> bool
(** Is the function with this qualified name reachable from any
    remote-triggered root? *)

val roots_reaching : project -> string -> (string * string) list
(** The remote-triggered roots whose components contain the function:
    [(root qname, why it is a root)], sorted. *)

val analyze : project -> Finding.t list * cert list
(** The growth analysis: {!Finding.unbounded_growth} findings (pragmas
    not yet applied) and a certificate per remote-reachable site. *)
