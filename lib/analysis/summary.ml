type ret = Source_lint.kind option list

type t = {
  qname : string;
  file : string;
  line : int;
  params : string list;
  mutable ret : ret;
  mutable suspends : bool;
  mutable wait_params : int list;
  mutable acquires : string list;
  mutable reads : string list;
  mutable writes : string list;
}

let create ~qname ~file ~line ~params =
  {
    qname;
    file;
    line;
    params;
    ret = [];
    suspends = false;
    wait_params = [];
    acquires = [];
    reads = [];
    writes = [];
  }

let add_wait_param t i =
  if not (List.mem i t.wait_params) then t.wait_params <- List.sort compare (i :: t.wait_params)

let add_acquire t l =
  if not (List.mem l t.acquires) then t.acquires <- List.sort compare (l :: t.acquires)

let add_read t c =
  if not (List.mem c t.reads) then t.reads <- List.sort compare (c :: t.reads)

let add_write t c =
  if not (List.mem c t.writes) then t.writes <- List.sort compare (c :: t.writes)

(* Fingerprint of the mutable facts, for fixpoint change detection. *)
let fingerprint t = (t.ret, t.suspends, t.wait_params, t.acquires, t.reads, t.writes)

let ret_string r =
  let comp = function
    | Some k -> Source_lint.kind_name k
    | None -> "-"
  in
  match r with
  | [] -> "?"
  | [ c ] -> comp c
  | cs -> "(" ^ String.concat ", " (List.map comp cs) ^ ")"

let to_string t =
  Printf.sprintf
    "%s (%s:%d): ret=%s suspends=%b wait_params=[%s] acquires=[%s] reads=[%s] writes=[%s]"
    t.qname t.file t.line (ret_string t.ret) t.suspends
    (String.concat ";" (List.map string_of_int t.wait_params))
    (String.concat ";" t.acquires)
    (String.concat ";" t.reads)
    (String.concat ";" t.writes)
