(** Front end 2: trace-free structural analysis over a constructed
    [Event.t] DAG. Unlike [Spg.audit], which needs a recorded execution,
    this inspects the wait graph a priori — the static counterpart of
    the paper's "only quorum waits" rule. *)

val classify : Depfast.Event.t -> [ `Green | `Red of int list ]
(** Red iff some single remote node can stall the event
    ([Event.stallers] non-empty). *)

val analyze :
  ?allow:(rule:string -> Depfast.Event.t -> bool) ->
  ?firers:Depfast.Event.t list ->
  Depfast.Event.t ->
  Finding.t list
(** Check the DAG rooted at the given wait point:

    - {b red-wait} on the root when [classify] says red;
    - {b vacuous-quorum} on any pending compound whose required count
      exceeds its child count ([Count k], k > n — it can never fire);
    - {b orphan-wait} on any node that cannot become ready: an
      abandoned basic event, a basic event outside [firers] (when the
      registered-firer list is given), or a compound whose children
      cannot supply its quorum.

    [allow] mirrors [Spg.audit]'s exemption hook: findings for which it
    returns true are marked [allowed] rather than dropped. Defaults to
    allowing nothing. *)
