open Depfast

let is_compound e =
  match Event.kind e with
  | Event.Quorum | Event.And_ | Event.Or_ -> true
  | Event.Signal | Event.Timer | Event.Rpc | Event.Disk -> false

let classify e = match Event.stallers e with [] -> `Green | ps -> `Red ps

(* every distinct pending node of the DAG, root first, each once. The
   subtree under a ready event is history (it already fired): stragglers
   abandoned there are not reported. *)
let nodes root =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go e =
    if not (Hashtbl.mem seen (Event.id e)) then begin
      Hashtbl.add seen (Event.id e) ();
      out := e :: !out;
      if not (Event.is_ready e) then Event.iter_children e go
    end
  in
  go root;
  List.rev !out

let analyze ?(allow = fun ~rule:_ _ -> false) ?firers root =
  let firable =
    match firers with
    | None -> fun _ -> true
    | Some l ->
      let ids = List.map Event.id l in
      fun e -> List.mem (Event.id e) ids
  in
  let memo = Hashtbl.create 16 in
  let rec can_fire e =
    match Hashtbl.find_opt memo (Event.id e) with
    | Some v -> v
    | None ->
      let v =
        Event.is_ready e
        ||
        if is_compound e then begin
          let firable = ref 0 in
          Event.iter_children e (fun c -> if can_fire c then incr firable);
          Event.child_count e > 0 && Event.required e <= !firable
        end
        else (not (Event.is_abandoned e)) && firable e
      in
      Hashtbl.replace memo (Event.id e) v;
      v
  in
  let findings = ref [] in
  let emit ~rule ~severity e message =
    let loc = Finding.Node { event_id = Event.id e; event_label = Event.label e } in
    let allowed = allow ~rule e in
    findings := Finding.v ~allowed ~rule ~severity ~loc message :: !findings
  in
  List.iter
    (fun e ->
      if is_compound e && not (Event.is_ready e) then begin
        let k = Event.required e and nc = Event.child_count e in
        if k > nc then
          emit ~rule:Finding.vacuous_quorum ~severity:Finding.Error e
            (Printf.sprintf
               "quorum requires %d ready children but has only %d: it can never fire" k nc)
        else if not (can_fire e) then
          emit ~rule:Finding.orphan_wait ~severity:Finding.Error e
            (Printf.sprintf
               "compound cannot reach its quorum (%d of %d): too many children \
                are abandoned or unfirable"
               k nc)
      end
      else if (not (is_compound e)) && not (can_fire e) then
        emit ~rule:Finding.orphan_wait ~severity:Finding.Error e
          (if Event.is_abandoned e then "event was abandoned and can never fire"
           else "no registered firer can fire this event"))
    (nodes root);
  (match classify root with
  | `Green -> ()
  | `Red ps ->
    emit ~rule:Finding.red_wait ~severity:Finding.Error root
      (Printf.sprintf "wait is fail-slow intolerant: node%s %s can single-handedly stall it"
         (if List.length ps > 1 then "s" else "")
         (String.concat ", " (List.map string_of_int ps))));
  List.rev !findings
