(** Machine-readable findings shared by the source lint and the DAG
    checker. A finding is a rule violation at a location; [allowed]
    findings were exempted by a pragma (sources) or an [~allow]
    predicate (DAGs) and do not gate CI. *)

type severity = Error | Warning | Info

type location =
  | File of { file : string; line : int }
  | Node of { event_id : int; event_label : string }

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
  allowed : bool;
}

(** {2 Rule identifiers} *)

val red_wait : string
(** [Sched.wait] applied to a single remote completion outside a
    quorum/or_ wrapper — a statically fail-slow-intolerant wait. *)

val unbounded_wait : string
(** An untimed wait on a remote completion with no [or_]/timer escape. *)

val degenerate_quorum : string
(** [and_] composed over multiple remote completions: k = n, so every
    peer stalls it. *)

val lock_across_wait : string
(** A suspension point reached while a [Depfast.Mutex] is held — the
    scheduler hazard behind RethinkDB's fail-slow leader (paper, §2). *)

val orphan_wait : string
(** An event no registered firer can ever fire. *)

val vacuous_quorum : string
(** A quorum requiring more ready children than it can ever have
    ([Count k] with k > n). *)

val rules : (string * string) list
(** All rule ids with one-line descriptions. *)

val v : ?allowed:bool -> rule:string -> severity:severity -> loc:location -> string -> t

val severity_name : severity -> string
val loc_string : location -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val unallowed : t list -> t list
(** The findings not exempted by a pragma or allow predicate. *)

val by_location : t -> t -> int
(** Comparator for stable reporting order (file, line, rule). *)
