(** Machine-readable findings shared by the source lint and the DAG
    checker. A finding is a rule violation at a location; [allowed]
    findings were exempted by a pragma (sources) or an [~allow]
    predicate (DAGs) and do not gate CI. *)

type severity = Error | Warning | Info

type location =
  | File of { file : string; line : int }
  | Node of { event_id : int; event_label : string }

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
  allowed : bool;
}

(** {2 Rule identifiers} *)

val red_wait : string
(** [Sched.wait] applied to a single remote completion outside a
    quorum/or_ wrapper — a statically fail-slow-intolerant wait. *)

val unbounded_wait : string
(** An untimed wait on a remote completion with no [or_]/timer escape. *)

val degenerate_quorum : string
(** [and_] composed over multiple remote completions: k = n, so every
    peer stalls it. *)

val lock_across_wait : string
(** A suspension point reached while a [Depfast.Mutex] is held — the
    scheduler hazard behind RethinkDB's fail-slow leader (paper, §2). *)

val orphan_wait : string
(** An event no registered firer can ever fire. *)

val vacuous_quorum : string
(** A quorum requiring more ready children than it can ever have
    ([Count k] with k > n). *)

val cross_module_red_wait : string
(** Interprocedural: a bare remote completion produced in one module
    (via a function return, tuple component, record field, or argument)
    and [Sched.wait]ed in another — invisible to any per-file pass. *)

val lock_across_call : string
(** Interprocedural generalization of {!lock_across_wait}: a call made
    while holding a [Depfast.Mutex] into a function that (transitively)
    suspends on an event. *)

val lock_order_cycle : string
(** A cycle in the static mutex acquisition-order graph, including
    locks held across calls into other modules — a potential deadlock. *)

val quorum_arity_mismatch : string
(** A [Quorum (Count k)] whose k (resolved through constants, possibly
    cross-module) exceeds the number of children that statically flow
    into it. *)

val unbounded_growth : string
(** Boundedness (the depfast-bounds pass): an accumulation site
    (Queue/Hashtbl/Buffer/[Rlog.append]/list cons) reachable from
    remote-triggered code with no drain, truncation, or capacity check
    anywhere in the same call-graph component — the unbounded-backlog
    shape behind the paper's RethinkDB fail-slow leader. *)

val missing_deadline : string
(** Timeout coverage: an untimed [Sched.wait] on a quorum with no
    [Sched.timer]/[Event.or_] escape wired in — a remote minority can
    still delay it without bound even though the wait is green. *)

val unbounded_retry : string
(** A self-recursive retry around a timed-out remote call with neither
    an attempt bound nor a backoff sleep: under a fail-slow peer it
    turns into a tight, unbounded resend loop. *)

val unsafe_shared_state : string
(** Domain safety (the depfast-domains pass): a top-level mutable cell
    written outside any [Depfast.Mutex] region or engine-owned record —
    a data race waiting to happen once the tree runs on OCaml 5
    domains. *)

val red_exposure : string
(** Slowness propagation (the depfast-spg pass): a fate-sharing wait —
    red in the {!Spg.color} sense — whose enclosing function is
    statically reachable from a fail-slow resource site (disk, net,
    declared CPU cost, or remote-triggered growth) and carries no
    timeout escape: the static blast radius of that resource includes
    this wait, with nothing bounding the delay. *)

val unreached_mitigation : string
(** A wait whose certificate claims quorum-k green, but whose
    [Count k] arity flows from a value produced by a tainted function:
    the mitigation (waiting for only k of n) is itself controlled by
    the slow resource, so the green claim is unreached. *)

val spg_stale_edge : string
(** Dynamic staleness cross-check: a module carries a static red
    exposure for the injected fault kind, yet no explored schedule
    ever observed a red SPG edge there. Non-gating — over-approximate
    static edges are expected — but worth an eye for dead mitigation
    paths or over-wide summaries. *)

(** Dynamic rules, reported by the schedule-space checker ([lib/check])
    rather than by a static pass. *)

val lost_wakeup : string
(** A coroutine is parked on an event that is ready, yet no wakeup was
    delivered — the runtime's park/wake protocol broke. *)

val double_wake : string
(** More than one wakeup delivered for a single park. *)

val parked_on_abandoned : string
(** A coroutine parked (with no pending timeout) on an abandoned event:
    nothing can ever resume it. *)

val unsatisfiable_wait : string
(** A parked compound wait that can no longer gather enough ready
    children (e.g. a [Count k] quorum wired to fewer than [k] live
    children) — the dynamic cousin of {!vacuous_quorum}. *)

val quorum_overcount : string
(** A compound event's packed ready counter disagrees with a recount of
    its children — a double-fire or lost decrement. *)

val net_fifo_violation : string
(** Per-link FIFO broken: a message overtook an earlier one on the same
    directed link. *)

val parked_at_quiescence : string
(** A coroutine is still parked when the engine has no work left: nothing
    can ever resume it. Reported when none of the more specific rules
    ({!lost_wakeup}, {!parked_on_abandoned}, {!unsatisfiable_wait})
    explains the hang — e.g. a pending signal nobody is left to fire. *)

val dynamic_red_wait : string
(** A wait observed at run time whose completion one remote node can
    stall — [Spg.audit] at a terminal state of an explored schedule. *)

val invariant_violation : string
(** A scenario's terminal-state invariant (e.g. at most one Raft leader
    per term, committed log prefixes agree) does not hold. *)

val certificate_mismatch : string
(** The static wait-structure certificate and the dynamic evidence
    disagree: a module the static passes certified clean produced a
    dynamic violation. Either the static analysis missed a flow or the
    runtime broke an assumption — both are reportable bugs. *)

val queue_gauge_overflow : string
(** A queue/log depth gauge registered with the sanitizer grew
    monotonically past its declared cap during exploration — dynamic
    evidence of an unbounded (or under-provisioned) accumulation. *)

val rules : (string * string) list
(** All rule ids with one-line descriptions. *)

val v : ?allowed:bool -> rule:string -> severity:severity -> loc:location -> string -> t

val severity_name : severity -> string
val loc_string : location -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val unallowed : t list -> t list
(** The findings not exempted by a pragma or allow predicate. *)

val gating : strict:bool -> t list -> t list
(** The unallowed findings that should fail the build: [Error]s only by
    default, every unallowed finding under [~strict:true]. *)

val to_json : t -> string
(** One finding as a JSON object (single line, fields escaped). *)

val stable_id : pass:string -> t -> string
(** A 48-bit FNV-1a hex id over (pass, rule, location, message): stable
    across runs and path orderings, distinct per concrete finding. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal. *)

val by_location : t -> t -> int
(** Comparator for stable reporting order: (file, line, rule, severity,
    message) — total enough that sorted output cannot depend on the order
    sources were discovered in. *)
