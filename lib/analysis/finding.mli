(** Machine-readable findings shared by the source lint and the DAG
    checker. A finding is a rule violation at a location; [allowed]
    findings were exempted by a pragma (sources) or an [~allow]
    predicate (DAGs) and do not gate CI. *)

type severity = Error | Warning | Info

type location =
  | File of { file : string; line : int }
  | Node of { event_id : int; event_label : string }

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
  allowed : bool;
}

(** {2 Rule identifiers} *)

val red_wait : string
(** [Sched.wait] applied to a single remote completion outside a
    quorum/or_ wrapper — a statically fail-slow-intolerant wait. *)

val unbounded_wait : string
(** An untimed wait on a remote completion with no [or_]/timer escape. *)

val degenerate_quorum : string
(** [and_] composed over multiple remote completions: k = n, so every
    peer stalls it. *)

val lock_across_wait : string
(** A suspension point reached while a [Depfast.Mutex] is held — the
    scheduler hazard behind RethinkDB's fail-slow leader (paper, §2). *)

val orphan_wait : string
(** An event no registered firer can ever fire. *)

val vacuous_quorum : string
(** A quorum requiring more ready children than it can ever have
    ([Count k] with k > n). *)

val cross_module_red_wait : string
(** Interprocedural: a bare remote completion produced in one module
    (via a function return, tuple component, record field, or argument)
    and [Sched.wait]ed in another — invisible to any per-file pass. *)

val lock_across_call : string
(** Interprocedural generalization of {!lock_across_wait}: a call made
    while holding a [Depfast.Mutex] into a function that (transitively)
    suspends on an event. *)

val lock_order_cycle : string
(** A cycle in the static mutex acquisition-order graph, including
    locks held across calls into other modules — a potential deadlock. *)

val quorum_arity_mismatch : string
(** A [Quorum (Count k)] whose k (resolved through constants, possibly
    cross-module) exceeds the number of children that statically flow
    into it. *)

val rules : (string * string) list
(** All rule ids with one-line descriptions. *)

val v : ?allowed:bool -> rule:string -> severity:severity -> loc:location -> string -> t

val severity_name : severity -> string
val loc_string : location -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val unallowed : t list -> t list
(** The findings not exempted by a pragma or allow predicate. *)

val gating : strict:bool -> t list -> t list
(** The unallowed findings that should fail the build: [Error]s only by
    default, every unallowed finding under [~strict:true]. *)

val to_json : t -> string
(** One finding as a JSON object (single line, fields escaped). *)

val by_location : t -> t -> int
(** Comparator for stable reporting order (file, line, rule). *)
