type severity = Error | Warning | Info

type location =
  | File of { file : string; line : int }
  | Node of { event_id : int; event_label : string }

type t = {
  rule : string;
  severity : severity;
  loc : location;
  message : string;
  allowed : bool;
}

let red_wait = "red-wait"
let unbounded_wait = "unbounded-wait"
let degenerate_quorum = "degenerate-quorum"
let lock_across_wait = "lock-across-wait"
let orphan_wait = "orphan-wait"
let vacuous_quorum = "vacuous-quorum"
let cross_module_red_wait = "cross-module-red-wait"
let lock_across_call = "lock-across-call"
let lock_order_cycle = "lock-order-cycle"
let quorum_arity_mismatch = "quorum-arity-mismatch"

(* boundedness & timeout-coverage rules (the depfast-bounds pass) *)
let unbounded_growth = "unbounded-growth"
let missing_deadline = "missing-deadline"
let unbounded_retry = "unbounded-retry"

(* domain-safety rule (the depfast-domains pass) *)
let unsafe_shared_state = "unsafe-shared-state"

(* slowness-propagation rules (the depfast-spg pass) *)
let red_exposure = "red-exposure"
let unreached_mitigation = "unreached-mitigation"
let spg_stale_edge = "spg-stale-edge"

(* dynamic rules, reported by the schedule-space checker (lib/check) *)
let lost_wakeup = "lost-wakeup"
let double_wake = "double-wake"
let parked_on_abandoned = "parked-on-abandoned"
let unsatisfiable_wait = "unsatisfiable-wait"
let quorum_overcount = "quorum-overcount"
let net_fifo_violation = "net-fifo-violation"
let parked_at_quiescence = "parked-at-quiescence"
let dynamic_red_wait = "dynamic-red-wait"
let invariant_violation = "invariant-violation"
let certificate_mismatch = "certificate-mismatch"
let queue_gauge_overflow = "queue-gauge-overflow"

let rules =
  [
    (red_wait, "wait on a single remote completion outside a quorum/or_ wrapper");
    (unbounded_wait, "untimed wait on a remote completion with no or_/timer escape");
    (degenerate_quorum, "and_ over multiple remote completions (k = n: every peer stalls)");
    (lock_across_wait, "suspension point reached while a Depfast.Mutex is held");
    (orphan_wait, "wait on an event no registered firer can ever fire");
    (vacuous_quorum, "quorum requiring more ready children than it can ever have");
    (cross_module_red_wait,
     "wait on a bare remote completion produced in another module (via a \
      function return, tuple component, record field, or argument)");
    (lock_across_call, "call into a (transitively) suspending function while a Depfast.Mutex is held");
    (lock_order_cycle, "mutex acquisition-order cycle across functions/modules (static deadlock)");
    (quorum_arity_mismatch, "quorum Count k inconsistent with the peer count flowing into it");
    (unbounded_growth,
     "remote-triggered accumulation with no drain, truncation, or capacity check \
      in the same call-graph component");
    (missing_deadline, "untimed quorum wait with no timer/or_ escape on any path");
    (unbounded_retry, "retry loop around a timed-out remote call with no attempt bound or backoff");
    (unsafe_shared_state,
     "top-level mutable cell written outside any Mutex region or owner record: \
      unsafe to share across OCaml 5 domains");
    (red_exposure,
     "fate-sharing wait statically reachable from a fail-slow resource site \
      with no timeout escape on the waiting function");
    (unreached_mitigation,
     "wait claims quorum-k green but its Count arity flows from a value \
      tainted by a fail-slow resource");
    (spg_stale_edge,
     "static red exposure for the injected fault kind never observed as a \
      red SPG edge across the explored schedules (possible stale certificate)");
    (lost_wakeup, "coroutine parked on an event that is ready, with no wakeup delivered");
    (double_wake, "more than one wakeup delivered for a single park");
    (parked_on_abandoned, "coroutine parked forever on an abandoned event");
    (unsatisfiable_wait,
     "coroutine parked on a compound event that can no longer gather enough ready children");
    (quorum_overcount, "compound event's ready counter disagrees with its children's states");
    (net_fifo_violation, "messages reordered on a directed network link");
    (parked_at_quiescence,
     "coroutine still parked when no work remains — a deadlock or missed signal");
    (dynamic_red_wait, "a wait observed at run time that one remote node can stall");
    (invariant_violation, "a scenario's terminal-state invariant does not hold");
    (certificate_mismatch,
     "dynamic violation in code the static analyses certified as clean (or vice versa)");
    (queue_gauge_overflow,
     "a registered queue/log depth gauge grew monotonically past its declared cap");
  ]

let v ?(allowed = false) ~rule ~severity ~loc message =
  { rule; severity; loc; message; allowed }

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let loc_string = function
  | File { file; line } -> Printf.sprintf "%s:%d" file line
  | Node { event_id; event_label } ->
    if event_label = "" then Printf.sprintf "event #%d" event_id
    else Printf.sprintf "event #%d (%s)" event_id event_label

let to_string f =
  Printf.sprintf "%s: [%s] %s: %s%s" (loc_string f.loc) (severity_name f.severity)
    f.rule f.message
    (if f.allowed then "  (allowed)" else "")

let pp fmt f = Format.pp_print_string fmt (to_string f)
let unallowed fs = List.filter (fun f -> not f.allowed) fs
let gating ~strict fs = List.filter (fun f -> strict || f.severity = Error) (unallowed fs)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  let loc_fields =
    match f.loc with
    | File { file; line } -> Printf.sprintf "\"file\": \"%s\", \"line\": %d" (json_escape file) line
    | Node { event_id; event_label } ->
      Printf.sprintf "\"event_id\": %d, \"event_label\": \"%s\"" event_id (json_escape event_label)
  in
  Printf.sprintf
    "{%s, \"rule\": \"%s\", \"severity\": \"%s\", \"allowed\": %b, \"message\": \"%s\"}"
    loc_fields (json_escape f.rule) (severity_name f.severity) f.allowed (json_escape f.message)

(* Stable per-finding id: FNV-1a over the identifying fields, so a
   finding keeps its id across runs, path orderings and unrelated edits
   (but not across edits to its own file/line/message — an id names a
   concrete finding, not an abstract defect). *)
let stable_id ~pass f =
  let s = Printf.sprintf "%s|%s|%s|%s" pass f.rule (loc_string f.loc) f.message in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%012Lx" (Int64.logand !h 0xffffffffffffL)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let by_location a b =
  let c =
    match (a.loc, b.loc) with
    | File fa, File fb ->
      let c = compare fa.file fb.file in
      if c <> 0 then c else compare fa.line fb.line
    | Node na, Node nb -> compare na.event_id nb.event_id
    | File _, Node _ -> -1
    | Node _, File _ -> 1
  in
  if c <> 0 then c
  else
    (* total enough that reporting order cannot depend on discovery
       order (directory read order, hashtable iteration, ...) *)
    let c = compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = compare a.message b.message in
        if c <> 0 then c else compare a.allowed b.allowed
