module SL = Source_lint

(* Where a remote-completion fact came from; only facts that crossed a
   boundary the per-file lint cannot see (another module, a record
   field) are reported here — same-file facts are Source_lint's job. *)
type prov = PLocal | PCross of string | PField of string

type qcell = {
  q_line : int;
  q_count : int option;
  mutable q_adds : int;
  mutable q_unknown : bool;
}

type vfact =
  | VRemote of SL.kind * prov
  | VParam of int
  | VInt of int
  | VList of int
  | VQuorum of qcell
  | VNone

type fn = {
  f_qname : string;  (* "" for anonymous top-level units *)
  f_params : string list;
  f_line : int;
  f_body : int;  (* first token of the body *)
  f_end : int;  (* exclusive *)
}

type fctx = {
  path : string;
  mdl : string;
  toks : Lexer.token array;
  pm : int array;
  pragmas : Lexer.pragma list;
  mutable fns : fn list;  (* named functions, with summaries *)
  mutable units : fn list;  (* value bindings, walked for findings only *)
  consts : (string, int) Hashtbl.t;  (* module-level int constants *)
  lens : (string, int) Hashtbl.t;  (* module-level list-literal lengths *)
  aliases : (string, string) Hashtbl.t;  (* module-level name -> name aliases *)
  mlocks : (string, unit) Hashtbl.t;  (* module-level mutexes *)
  mvals : (string, SL.kind) Hashtbl.t;  (* module-level bare remote completions *)
}

type state = {
  cg : Callgraph.t;
  modmap : (string, fctx) Hashtbl.t;  (* module name -> defining file, first wins *)
  fields : (string, SL.kind * string) Hashtbl.t;  (* record field -> kind, set-in file *)
  (* lock-order graph: canonical-name edges with their witness site *)
  edge_locs : (string * string, string * int) Hashtbl.t;
  lock_graph : Callgraph.Digraph.g;
}

let iter_heads = [ "List.iter"; "List.iteri"; "List.map"; "List.mapi"; "Array.iter"; "Array.iteri" ]

let is_upper c = c >= 'A' && c <= 'Z'
let is_ident_at (a : Lexer.token array) i = i < Array.length a && Lexer.is_ident a.(i).Lexer.text

let int_of_token txt =
  int_of_string_opt (String.concat "" (String.split_on_char '_' txt))

let segments name = String.split_on_char '.' name
let last_segment name = List.nth (segments name) (List.length (segments name) - 1)

(* Canonical name of a mutex expression: [Module.x] for module-level
   mutexes, [.field] for record fields (merging same-named fields of
   different types — an accepted over-approximation), ["?"...]-prefixed
   when identity is unknowable (parameters, complex expressions); the
   latter still count as "a lock is held" but join no order graph. *)
let canon_lock ctx raw =
  if SL.is_simple raw then
    if Hashtbl.mem ctx.mlocks raw then ctx.mdl ^ "." ^ raw else "?" ^ raw
  else
    let first = List.hd (segments raw) in
    if first <> "" && is_upper first.[0] then SL.last2 raw else "." ^ last_segment raw

let canonical l = String.length l > 0 && l.[0] <> '?'

(* ---- per-file extraction -------------------------------------------- *)

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Length of a list literal starting at a "[" token: depth-0 [;] count. *)
let list_literal_length (a : Lexer.token array) i =
  let n = Array.length a in
  if i >= n || a.(i).Lexer.text <> "[" then None
  else begin
    let depth = ref 0 in
    let semis = ref 0 in
    let items = ref false in
    let j = ref i in
    let close = ref (-1) in
    while !close < 0 && !j < n do
      (match a.(!j).Lexer.text with
      | "[" | "(" | "{" -> incr depth
      | "]" | ")" | "}" ->
        decr depth;
        if !depth = 0 then close := !j
      | ";" when !depth = 1 -> incr semis
      | _ -> if !depth = 1 then items := true);
      incr j
    done;
    (* string literals are consumed by the lexer, so a separator implies
       two items even when no item token survives *)
    if !close < 0 then None
    else Some (if !semis > 0 then !semis + 1 else if !items then 1 else 0)
  end

(* Parse one top-level [let] item spanning tokens [b, e): either a named
   function (params before the [=]), a named value binding (facts are
   harvested from its right-hand side), or an anonymous unit. *)
let parse_item ctx b e =
  let a = ctx.toks in
  let j = if b + 1 < e && a.(b + 1).Lexer.text = "rec" then b + 2 else b + 1 in
  if j >= e then ()
  else if a.(j).Lexer.text = "(" && ctx.pm.(j) >= 0 && ctx.pm.(j) + 1 < e
          && a.(ctx.pm.(j) + 1).Lexer.text = "=" then
    (* [let () = ...], [let (a, b) = ...]: anonymous walk unit *)
    ctx.units <-
      { f_qname = ""; f_params = []; f_line = a.(b).Lexer.line;
        f_body = ctx.pm.(j) + 2; f_end = e }
      :: ctx.units
  else if is_ident_at a j && j < e then begin
    let name = a.(j).Lexer.text in
    if j + 1 < e && a.(j + 1).Lexer.text = "=" then begin
      (* value binding: harvest module-level facts, and walk the body *)
      let r = j + 2 in
      (if r < e then
         let t = a.(r).Lexer.text in
         if t = "[" then (
           match list_literal_length a r with
           | Some l -> Hashtbl.replace ctx.lens name l
           | None -> ())
         else
           match int_of_token t with
           | Some v when not (Lexer.is_ident t) -> Hashtbl.replace ctx.consts name v
           | _ ->
             if Lexer.is_ident t then begin
               let h, _, hn = SL.qualified a r in
               let l2 = SL.last2 h in
               if l2 = "Mutex.create" then Hashtbl.replace ctx.mlocks name ()
               else
                 match List.assoc_opt l2 SL.builtin_producers with
                 | Some k -> Hashtbl.replace ctx.mvals name k
                 | None ->
                   (* a lone name is an alias worth chasing for constants *)
                   if hn >= e || a.(hn).Lexer.line <> a.(r).Lexer.line then
                     Hashtbl.replace ctx.aliases name h
             end);
      ctx.units <-
        { f_qname = ""; f_params = []; f_line = a.(b).Lexer.line; f_body = r; f_end = e }
        :: ctx.units
    end
    else begin
      (* look for the [=] at paren depth 0, collecting positional params *)
      let params = ref [] in
      let eq = ref (-1) in
      let k = ref (j + 1) in
      while !eq < 0 && !k < e do
        let t = a.(!k).Lexer.text in
        if t = "=" then eq := !k
        else if t = "(" then begin
          params := "_" :: !params;
          k := if ctx.pm.(!k) >= 0 then ctx.pm.(!k) + 1 else e
        end
        else if t = "~" || t = "?" then begin
          (* labeled parameter: not positional; skip [~x] or [~x:pat] *)
          k := !k + 2;
          if !k < e && a.(!k).Lexer.text = ":" then begin
            let _, k' = SL.parse_atom a ctx.pm (!k + 1) in
            k := k'
          end
        end
        else if t = ":" then begin
          (* return-type annotation: scan directly to the [=] *)
          while !k < e && a.(!k).Lexer.text <> "=" do
            incr k
          done;
          if !k < e then eq := !k
        end
        else if Lexer.is_ident t then begin
          params := t :: !params;
          incr k
        end
        else incr k
      done;
      if !eq >= 0 && !eq + 1 < e then
        ctx.fns <-
          { f_qname = ctx.mdl ^ "." ^ name; f_params = List.rev !params;
            f_line = a.(b).Lexer.line; f_body = !eq + 1; f_end = e }
          :: ctx.fns
    end
  end

let build_fctx (path, src) =
  let { Lexer.tokens = toks; pragmas } = Lexer.scan src in
  let ctx =
    {
      path; mdl = module_of_path path; toks; pm = SL.paren_matches toks; pragmas;
      fns = []; units = [];
      consts = Hashtbl.create 8; lens = Hashtbl.create 8; aliases = Hashtbl.create 8;
      mlocks = Hashtbl.create 4; mvals = Hashtbl.create 4;
    }
  in
  let bounds = SL.boundaries toks in
  let n = Array.length toks in
  let rec pairs = function
    | b :: rest ->
      let e = match rest with b2 :: _ -> b2 | [] -> n in
      (b, e) :: pairs rest
    | [] -> []
  in
  List.iter
    (fun (b, e) -> if toks.(b).Lexer.text = "let" then parse_item ctx b e)
    (pairs bounds);
  ctx.fns <- List.rev ctx.fns;
  ctx.units <- List.rev ctx.units;
  ctx

(* ---- cross-module constant / length resolution ----------------------- *)

let rec lookup_const st ctx name depth =
  if depth > 4 then None
  else if SL.is_simple name then
    match Hashtbl.find_opt ctx.consts name with
    | Some v -> Some v
    | None -> (
      match Hashtbl.find_opt ctx.aliases name with
      | Some d -> lookup_const st ctx d (depth + 1)
      | None -> None)
  else
    let l2 = SL.last2 name in
    match String.index_opt l2 '.' with
    | Some j -> (
      let m = String.sub l2 0 j in
      let x = String.sub l2 (j + 1) (String.length l2 - j - 1) in
      match Hashtbl.find_opt st.modmap m with
      | Some c -> lookup_const st c x (depth + 1)
      | None -> None)
    | None -> None

let rec lookup_len st ctx name depth =
  if depth > 4 then None
  else if SL.is_simple name then
    match Hashtbl.find_opt ctx.lens name with
    | Some v -> Some v
    | None -> (
      match Hashtbl.find_opt ctx.aliases name with
      | Some d -> lookup_len st ctx d (depth + 1)
      | None -> None)
  else
    let l2 = SL.last2 name in
    match String.index_opt l2 '.' with
    | Some j -> (
      let m = String.sub l2 0 j in
      let x = String.sub l2 (j + 1) (String.length l2 - j - 1) in
      match Hashtbl.find_opt st.modmap m with
      | Some c -> lookup_len st c x (depth + 1)
      | None -> None)
    | None -> None

(* ---- named lock regions / iteration regions per function ------------ *)

(* (canonical lock name, start token, end token) — [with_lock sched mu
   (...)], [with_lock sched mu @@ fun ... -> <to end of item>], and
   explicit [lock sched mu] ... [unlock mu] pairs. *)
let lock_regions ctx (fn : fn) =
  let a = ctx.toks and pm = ctx.pm in
  let regions = ref [] in
  let open_locks = ref [] in
  let atom_name at = match at with SL.AName s -> Some s | _ -> None in
  let i = ref fn.f_body in
  while !i < fn.f_end do
    if is_ident_at a !i then begin
      let name, _, ni = SL.qualified a !i in
      (match SL.last2 name with
      | "Mutex.with_lock" ->
        let _sched, i1 = SL.parse_atom a pm ni in
        let mu, i2 = SL.parse_atom a pm i1 in
        let lname =
          match atom_name mu with Some s -> canon_lock ctx s | None -> "?with_lock"
        in
        if i2 < fn.f_end && a.(i2).Lexer.text = "(" then
          regions := (lname, i2, if pm.(i2) >= 0 then pm.(i2) else fn.f_end - 1) :: !regions
        else if i2 < fn.f_end && a.(i2).Lexer.text = "@" then
          regions := (lname, i2, fn.f_end - 1) :: !regions
      | "Mutex.lock" ->
        let _sched, i1 = SL.parse_atom a pm ni in
        let mu, _ = SL.parse_atom a pm i1 in
        let lname = match atom_name mu with Some s -> canon_lock ctx s | None -> "?lock" in
        open_locks := (lname, !i) :: !open_locks
      | "Mutex.unlock" -> (
        let mu, _ = SL.parse_atom a pm ni in
        let lname = match atom_name mu with Some s -> canon_lock ctx s | None -> "" in
        match List.partition (fun (l, _) -> l = lname) !open_locks with
        | (l, s) :: _, rest ->
          regions := ((l, s, !i) : string * int * int) :: !regions;
          open_locks := rest
        | [], (l, s) :: rest ->
          regions := (l, s, !i) :: !regions;
          open_locks := rest
        | [], [] -> ())
      | _ -> ());
      i := ni
    end
    else incr i
  done;
  List.iter (fun (l, s) -> regions := (l, s, fn.f_end - 1) :: !regions) !open_locks;
  !regions

(* Iteration regions [(start, end, length source)] for inline-closure
   iterations; the length is resolved lazily at each [Event.add] so
   that list bindings made earlier in the same body are visible.
   [for]/[while] bodies get an unknown length. *)
type len_src = LUnknown | LLit of int | LName of string

let iter_regions ctx (fn : fn) =
  let a = ctx.toks and pm = ctx.pm in
  let regions = ref [] in
  let loop_stack = ref [] in
  let i = ref fn.f_body in
  while !i < fn.f_end do
    if is_ident_at a !i then begin
      let name, _, ni = SL.qualified a !i in
      (if name = "for" || name = "while" then loop_stack := !i :: !loop_stack
       else if name = "done" then
         match !loop_stack with
         | s :: rest ->
           regions := (s, !i, LUnknown) :: !regions;
           loop_stack := rest
         | [] -> ()
       else if List.mem (SL.last2 name) iter_heads then
         if ni < fn.f_end && a.(ni).Lexer.text = "(" && pm.(ni) >= 0 then begin
           let close = pm.(ni) in
           let len =
             if close + 1 < fn.f_end && a.(close + 1).Lexer.text = "[" then
               match list_literal_length a (close + 1) with
               | Some l -> LLit l
               | None -> LUnknown
             else
               match SL.parse_atom a pm (close + 1) with
               | SL.AName s, _ -> LName s
               | _ -> LUnknown
           in
           regions := (ni, close, len) :: !regions
         end);
      i := ni
    end
    else incr i
  done;
  !regions

(* ---- the per-function walk ------------------------------------------ *)

let walk st ctx (fn : fn) ~(own : Summary.t option) ~(emit : (Finding.t -> unit) option) =
  let a = ctx.toks and pm = ctx.pm in
  let env : (string, vfact) Hashtbl.t = Hashtbl.create 16 in
  List.iteri (fun i p -> if p <> "_" then Hashtbl.replace env p (VParam i)) fn.f_params;
  let quorums = ref [] in
  let lregions = lock_regions ctx fn in
  let iregions = iter_regions ctx fn in
  (match own with
  | Some o ->
    List.iter (fun (l, _, _) -> if canonical l then Summary.add_acquire o l) lregions
  | None -> ());
  let held i = List.filter_map (fun (l, s, e) -> if s <= i && i <= e then Some l else None) lregions in
  let add_lock_edge src dst line =
    if canonical src && canonical dst && src <> dst then begin
      if not (Hashtbl.mem st.edge_locs (src, dst)) then
        Hashtbl.replace st.edge_locs (src, dst) (ctx.path, line);
      Callgraph.Digraph.add_edge st.lock_graph ~src ~dst
        ~witness:(Printf.sprintf "%s:%d" ctx.path line)
    end
  in
  (* intra-function nesting: acquiring B inside A's region orders A -> B *)
  List.iter
    (fun (lb, sb, _) ->
      List.iter
        (fun (la, sa, ea) -> if sa < sb && sb <= ea then add_lock_edge la lb a.(sb).Lexer.line)
        lregions)
    lregions;
  let set_suspends () = match own with Some o -> o.Summary.suspends <- true | None -> () in
  let set_field f k =
    if not (Hashtbl.mem st.fields f) then Hashtbl.replace st.fields f (k, ctx.path)
  in
  (* value fact of a name in value position (variable, module value,
     record-field access) *)
  let fact_of_name name =
    if SL.is_simple name then
      match Hashtbl.find_opt env name with
      | Some f -> f
      | None -> (
        match Hashtbl.find_opt ctx.mvals name with
        | Some k -> VRemote (k, PLocal)
        | None -> (
          match Hashtbl.find_opt ctx.consts name with
          | Some v -> VInt v
          | None -> (
            match Hashtbl.find_opt ctx.lens name with
            | Some v -> VList v
            | None -> VNone)))
    else
      let first = List.hd (segments name) in
      if first = "" || not (is_upper first.[0]) then (
        (* record-field path x.f / x.M.f *)
        match Hashtbl.find_opt st.fields (last_segment name) with
        | Some (k, src) -> VRemote (k, PField src)
        | None -> VNone)
      else
        let l2 = SL.last2 name in
        match String.index_opt l2 '.' with
        | Some j -> (
          let m = String.sub l2 0 j in
          let x = String.sub l2 (j + 1) (String.length l2 - j - 1) in
          match Hashtbl.find_opt st.modmap m with
          | Some c -> (
            match Hashtbl.find_opt c.mvals x with
            | Some k -> VRemote (k, if c.path = ctx.path then PLocal else PCross c.path)
            | None -> (
              match lookup_const st ctx name 0 with
              | Some v -> VInt v
              | None -> (
                match lookup_len st ctx name 0 with Some v -> VList v | None -> VNone)))
          | None -> VNone)
        | None -> VNone
  in
  (* value fact of an applied (or copied) head *)
  let head_fact h =
    let l2 = SL.last2 h in
    match List.assoc_opt l2 SL.builtin_producers with
    | Some k -> VRemote (k, PLocal)
    | None ->
      (* same policy as the per-file pass: awaiting your own WAL
         durability is protocol-inherent, so [Disk.write]/[fsync]
         results are not remote-completion facts — even though the
         call graph could prove they carry one *)
      if List.mem l2 SL.local_constructors || l2 = "Disk.write" || l2 = "Disk.fsync" then VNone
      else (
        match Callgraph.resolve st.cg ~current_module:ctx.mdl h with
        | Some callee -> (
          match callee.Summary.ret with
          | [ Some k ] ->
            VRemote (k, if callee.Summary.file = ctx.path then PLocal else PCross callee.Summary.file)
          | _ -> VNone)
        | None -> fact_of_name h)
  in
  let atom_fact = function
    | SL.AName s -> fact_of_name s
    | SL.AParen (Some h) -> head_fact h
    | SL.AParen None | SL.AOther -> VNone
  in
  let emit_finding f = match emit with Some e -> e f | None -> () in
  let emit_xmod line k p =
    let severity = match k with SL.Rpc -> Finding.Error | SL.Disk -> Finding.Warning in
    let where =
      match p with
      | PCross file -> Printf.sprintf "produced in %s" file
      | PField src -> Printf.sprintf "carried by a record field set in %s" src
      | PLocal -> "produced locally"
    in
    emit_finding
      (Finding.v ~rule:Finding.cross_module_red_wait ~severity
         ~loc:(Finding.File { file = ctx.path; line })
         (Printf.sprintf
            "wait on a bare %s completion %s: no per-file pass can see this; wrap it in \
             Event.quorum or race it against a timer via Event.or_ at the producer or here"
            (SL.kind_name k) where))
  in
  (* weight of one Event.add at token [i]: product of the lengths of the
     iteration regions covering it; None when any is unknown *)
  let add_weight i =
    List.fold_left
      (fun acc (s, e, len) ->
        if s <= i && i <= e then
          let l =
            match len with
            | LLit l -> Some l
            | LName nm -> ( match fact_of_name nm with VList l -> Some l | _ -> None)
            | LUnknown -> None
          in
          match (acc, l) with Some w, Some l -> Some (w * l) | _ -> None
        else acc)
      (Some 1) iregions
  in
  (* parse an [Event.quorum (Event.Count k)] argument following the head *)
  let quorum_cell line ni =
    let count =
      if ni < fn.f_end && a.(ni).Lexer.text = "(" && pm.(ni) >= 0 then begin
        let close = pm.(ni) in
        let c = ref None in
        let j = ref (ni + 1) in
        while !c = None && !j < close do
          if a.(!j).Lexer.text = "Count" && !j + 1 < close then begin
            let k = ref (!j + 1) in
            while !k < close && a.(!k).Lexer.text = "(" do
              incr k
            done;
            (if !k < close then
               let t = a.(!k).Lexer.text in
               if Lexer.is_ident t then begin
                 let cn, _, _ = SL.qualified a !k in
                 match fact_of_name cn with
                 | VInt v -> c := Some v
                 | _ -> c := Some (-1) (* Count of something unresolvable: give up *)
               end
               else match int_of_token t with Some v -> c := Some v | None -> c := Some (-1));
            j := close
          end
          else incr j
        done;
        match !c with Some v when v >= 0 -> Some v | _ -> None
      end
      else None
    in
    let qc = { q_line = line; q_count = count; q_adds = 0; q_unknown = false } in
    quorums := qc :: !quorums;
    qc
  in
  let mark_escaped at =
    match at with
    | SL.AName s when SL.is_simple s -> (
      match Hashtbl.find_opt env s with
      | Some (VQuorum qc) -> qc.q_unknown <- true
      | _ -> ())
    | _ -> ()
  in
  (* a resolvable call: propagate suspension/lock facts, check held
     locks, thread arguments into the callee's waited parameters *)
  let handle_call (callee : Summary.t) line i ni =
    let held_here = held i in
    (match own with
    | Some o ->
      if callee.Summary.suspends then o.Summary.suspends <- true;
      List.iter (fun l -> Summary.add_acquire o l) callee.Summary.acquires
    | None -> ());
    List.iter
      (fun h ->
        List.iter (fun acq -> add_lock_edge h acq line) callee.Summary.acquires;
        if callee.Summary.suspends then
          emit_finding
            (Finding.v ~rule:Finding.lock_across_call ~severity:Finding.Error
               ~loc:(Finding.File { file = ctx.path; line })
               (Printf.sprintf
                  "call to %s while holding %s: the callee (transitively) suspends on an \
                   event, so one slow firer blocks every contender on the lock (the \
                   RethinkDB hazard, paper §2, across a call boundary)"
                  callee.Summary.qname
                  (String.concat ", "
                     (List.map (fun l -> if canonical l then l else "a mutex") held_here)))))
      held_here;
    (* positional arguments, labels skipped; stop at the first non-atom *)
    let j = ref ni in
    let pos = ref 0 in
    let stop = ref false in
    while (not !stop) && !j < fn.f_end && !pos < 8 do
      let t = a.(!j).Lexer.text in
      if t = "~" || t = "?" then begin
        j := !j + 2;
        if !j < fn.f_end && a.(!j).Lexer.text = ":" then begin
          let at, j' = SL.parse_atom a pm (!j + 1) in
          mark_escaped at;
          j := j'
        end
      end
      else begin
        let at, j' = SL.parse_atom a pm !j in
        match at with
        | SL.AOther -> stop := true
        | _ ->
          mark_escaped at;
          if List.mem !pos callee.Summary.wait_params then begin
            match atom_fact at with
            | VRemote (k, _) when callee.Summary.file <> ctx.path ->
              let severity = match k with SL.Rpc -> Finding.Error | SL.Disk -> Finding.Warning in
              emit_finding
                (Finding.v ~rule:Finding.cross_module_red_wait ~severity
                   ~loc:(Finding.File { file = ctx.path; line })
                   (Printf.sprintf
                      "bare %s completion passed to %s, which waits on its argument: a \
                       cross-module red wait split between caller and callee"
                      (SL.kind_name k) callee.Summary.qname))
            | VParam idx -> (
              match own with Some o -> Summary.add_wait_param o idx | None -> ())
            | _ -> ()
          end;
          incr pos;
          j := j'
      end
    done
  in
  let handle_binding pat rhs line eq =
    let bind1 name f =
      Hashtbl.remove env name;
      match f with VNone -> () | f -> Hashtbl.replace env name f
    in
    match (pat, rhs) with
    | SL.PVar name, SL.RHead (Some h) ->
      if SL.last2 h = "Event.quorum" then begin
        (* the head token follows the [=]; find it to parse the arity *)
        let k = ref (eq + 1) in
        while !k < fn.f_end && a.(!k).Lexer.text = "(" do
          incr k
        done;
        if is_ident_at a !k then begin
          let _, _, hend = SL.qualified a !k in
          bind1 name (VQuorum (quorum_cell line hend))
        end
      end
      else if
        (* local list literals feed iteration lengths *)
        eq + 1 < fn.f_end && a.(eq + 1).Lexer.text = "["
      then
        match list_literal_length a (eq + 1) with
        | Some l -> bind1 name (VList l)
        | None -> bind1 name VNone
      else bind1 name (head_fact h)
    | SL.PVar name, SL.RHead None ->
      if eq + 1 < fn.f_end && a.(eq + 1).Lexer.text = "[" then (
        match list_literal_length a (eq + 1) with
        | Some l -> bind1 name (VList l)
        | None -> bind1 name VNone)
      else (
        match int_of_token a.(eq + 1).Lexer.text with
        | Some v when eq + 1 < fn.f_end -> bind1 name (VInt v)
        | _ -> bind1 name VNone)
    | SL.PVar name, SL.RTuple _ -> bind1 name VNone
    | SL.PTuple names, SL.RTuple comps ->
      List.iteri
        (fun i name ->
          match List.nth_opt comps i with
          | Some (Some h) -> bind1 name (head_fact h)
          | _ -> bind1 name VNone)
        names
    | SL.PTuple names, SL.RHead (Some h) ->
      let comps =
        match Callgraph.resolve st.cg ~current_module:ctx.mdl h with
        | Some callee ->
          List.map
            (fun c ->
              match c with
              | Some k ->
                VRemote
                  (k, if callee.Summary.file = ctx.path then PLocal else PCross callee.Summary.file)
              | None -> VNone)
            callee.Summary.ret
        | None -> []
      in
      List.iteri
        (fun i name ->
          match List.nth_opt comps i with Some f -> bind1 name f | None -> bind1 name VNone)
        names
    | SL.PTuple names, SL.RHead None -> List.iter (fun n -> bind1 n VNone) names
  in
  (* record literal at token [i]: each [field = <head>] with a remote
     head registers a field fact *)
  let handle_record i =
    let depth = ref 0 in
    let j = ref i in
    let expect_field = ref true in
    let fin = ref false in
    while (not !fin) && !j < fn.f_end do
      let t = a.(!j).Lexer.text in
      (match t with
      | "{" | "(" | "[" ->
        incr depth;
        if t = "{" && !j > i then expect_field := false
      | "}" | ")" | "]" ->
        decr depth;
        if !depth = 0 then fin := true
      | ";" when !depth = 1 -> expect_field := true
      | "=" when !depth = 1 ->
        (* token before [=] is the field, head after it is the value *)
        if !expect_field && !j > i + 1 && Lexer.is_ident a.(!j - 1).Lexer.text then begin
          let field = a.(!j - 1).Lexer.text in
          let k = ref (!j + 1) in
          while !k < fn.f_end && a.(!k).Lexer.text = "(" do
            incr k
          done;
          if is_ident_at a !k then begin
            let h, _, _ = SL.qualified a !k in
            match head_fact h with
            | VRemote (kk, _) -> set_field field kk
            | _ -> ()
          end
        end;
        expect_field := false
      | _ -> ());
      incr j
    done
  in
  (* ---- linear scan in program order ---- *)
  let i = ref fn.f_body in
  while !i < fn.f_end do
    (match SL.binding_at a pm !i with
    | Some (pat, rhs, eq) -> handle_binding pat rhs a.(!i).Lexer.line eq
    | None -> ());
    if is_ident_at a !i then begin
      let name, line, ni = SL.qualified a !i in
      (match SL.last2 name with
      | "Sched.wait" | "Sched.wait_timeout" ->
        set_suspends ();
        let _sched, i1 = SL.parse_atom a pm ni in
        let ev, _ = SL.parse_atom a pm i1 in
        (match ev with
        | SL.AName s -> (
          match fact_of_name s with
          | VRemote (k, ((PCross _ | PField _) as p)) -> emit_xmod line k p
          | VParam idx -> ( match own with Some o -> Summary.add_wait_param o idx | None -> ())
          | _ -> ())
        | SL.AParen (Some h) -> (
          match head_fact h with
          | VRemote (k, ((PCross _ | PField _) as p)) -> emit_xmod line k p
          | _ -> ())
        | _ -> ())
      | "Condvar.wait" | "Condvar.wait_timeout" -> set_suspends ()
      | "Event.add" -> (
        let parent, _ = SL.parse_atom a pm ni in
        match parent with
        | SL.AName p when SL.is_simple p -> (
          match Hashtbl.find_opt env p with
          | Some (VQuorum qc) -> (
            match add_weight !i with
            | Some w -> qc.q_adds <- qc.q_adds + w
            | None -> qc.q_unknown <- true)
          | _ -> ())
        | _ -> ())
      | "Mutex.lock" | "Mutex.unlock" | "Mutex.with_lock" -> ()
      | _ -> (
        match Callgraph.resolve st.cg ~current_module:ctx.mdl name with
        | Some callee -> handle_call callee line !i ni
        | None -> ()));
      (* field assignment [x.f <- <head>] *)
      (if (not (SL.is_simple name)) && ni + 1 < fn.f_end && a.(ni).Lexer.text = "<"
          && a.(ni + 1).Lexer.text = "-" then begin
         let k = ref (ni + 2) in
         while !k < fn.f_end && a.(!k).Lexer.text = "(" do
           incr k
         done;
         if is_ident_at a !k then begin
           let h, _, _ = SL.qualified a !k in
           match head_fact h with
           | VRemote (kk, _) -> set_field (last_segment name) kk
           | _ -> ()
         end
       end);
      i := ni
    end
    else begin
      if a.(!i).Lexer.text = "{" then handle_record !i;
      incr i
    end
  done;
  (* return shape: the last line of the body (or everything after the
     [=] for one-liners) — lone known variable, literal tuple, or an
     application of a producer *)
  (match own with
  | Some o ->
    let e = fn.f_end in
    let last_line = a.(e - 1).Lexer.line in
    let lo = ref (e - 1) in
    while !lo > fn.f_body && a.(!lo - 1).Lexer.line = last_line do
      decr lo
    done;
    let start = if !lo <= fn.f_body then fn.f_body else !lo in
    let ret =
      if start >= e then []
      else if start = e - 1 && is_ident_at a start && SL.is_simple a.(start).Lexer.text then (
        match Hashtbl.find_opt env a.(start).Lexer.text with
        | Some (VRemote (k, _)) -> [ Some k ]
        | Some (VQuorum qc) ->
          qc.q_unknown <- true;
          []
        | _ -> [])
      else if a.(start).Lexer.text = "(" && pm.(start) = e - 1 then (
        match SL.tuple_components a pm start with
        | Some comps ->
          let facts =
            List.map
              (fun h ->
                match h with
                | Some h -> (
                  match head_fact h with VRemote (k, _) -> Some k | _ -> None)
                | None -> None)
              comps
          in
          if List.exists Option.is_some facts then facts else []
        | None -> [])
      else begin
        let k = ref start in
        while !k < e && not (is_ident_at a !k) do
          incr k
        done;
        if !k < e then (
          let h, _, _ = SL.qualified a !k in
          match head_fact h with VRemote (kk, _) -> [ Some kk ] | _ -> [])
        else []
      end
    in
    if ret <> [] then o.Summary.ret <- ret
  | None -> ());
  (* quorum arity verdicts *)
  List.iter
    (fun qc ->
      match qc.q_count with
      | Some k when (not qc.q_unknown) && qc.q_adds > 0 && k > qc.q_adds ->
        emit_finding
          (Finding.v ~rule:Finding.quorum_arity_mismatch ~severity:Finding.Error
             ~loc:(Finding.File { file = ctx.path; line = qc.q_line })
             (Printf.sprintf
                "quorum requires Count %d but only %d child event(s) statically flow into \
                 it: it can never fire (constants resolved across modules)"
                k qc.q_adds))
      | _ -> ())
    !quorums

(* ---- the whole-project pass ----------------------------------------- *)

let analyze_sources sources =
  let ctxs = List.map build_fctx sources in
  let st =
    {
      cg = Callgraph.create ();
      modmap = Hashtbl.create 64;
      fields = Hashtbl.create 32;
      edge_locs = Hashtbl.create 16;
      lock_graph = Callgraph.Digraph.create ();
    }
  in
  List.iter
    (fun ctx -> if not (Hashtbl.mem st.modmap ctx.mdl) then Hashtbl.add st.modmap ctx.mdl ctx)
    ctxs;
  let summaries =
    List.concat_map
      (fun ctx ->
        List.map
          (fun (fn : fn) ->
            let s =
              Summary.create ~qname:fn.f_qname ~file:ctx.path ~line:fn.f_line
                ~params:fn.f_params
            in
            Callgraph.define st.cg s;
            (ctx, fn, s))
          ctx.fns)
      ctxs
  in
  (* fixpoint: summaries and field facts feed each other across files *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 10 do
    incr rounds;
    let before =
      List.map (fun (_, _, s) -> Summary.fingerprint s) summaries, Hashtbl.length st.fields
    in
    List.iter (fun (ctx, fn, s) -> walk st ctx fn ~own:(Some s) ~emit:None) summaries;
    List.iter
      (fun ctx -> List.iter (fun u -> walk st ctx u ~own:None ~emit:None) ctx.units)
      ctxs;
    let after =
      List.map (fun (_, _, s) -> Summary.fingerprint s) summaries, Hashtbl.length st.fields
    in
    changed := before <> after
  done;
  (* reporting round: rebuild the lock graph from scratch so every edge
     reflects fixpoint facts, then emit findings *)
  Hashtbl.reset st.edge_locs;
  let st = { st with lock_graph = Callgraph.Digraph.create () } in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  List.iter (fun (ctx, fn, s) -> walk st ctx fn ~own:(Some s) ~emit:(Some emit)) summaries;
  List.iter
    (fun ctx -> List.iter (fun u -> walk st ctx u ~own:None ~emit:(Some emit)) ctx.units)
    ctxs;
  (* lock-order cycles *)
  List.iter
    (fun (path, edges) ->
      match edges with
      | [] -> ()
      | first :: _ ->
        let loc =
          match Hashtbl.find_opt st.edge_locs (first.Callgraph.Digraph.src, first.Callgraph.Digraph.dst) with
          | Some (file, line) -> Finding.File { file; line }
          | None -> Finding.File { file = "<unknown>"; line = 0 }
        in
        let sites =
          String.concat "; "
            (List.map
               (fun (e : Callgraph.Digraph.edge) ->
                 Printf.sprintf "%s -> %s at %s" e.Callgraph.Digraph.src e.Callgraph.Digraph.dst
                   e.Callgraph.Digraph.witness)
               edges)
        in
        emit
          (Finding.v ~rule:Finding.lock_order_cycle ~severity:Finding.Error ~loc
             (Printf.sprintf
                "mutex acquisition-order cycle %s: two coroutines taking opposite ends \
                 deadlock outright — and under fail-slow faults even the non-deadlocked \
                 interleavings convoy (acquisition sites: %s)"
                (String.concat " -> " path) sites)))
    (Callgraph.Digraph.cycles st.lock_graph);
  (* pragma exemptions, per finding file *)
  let pragmas_of =
    let tbl = Hashtbl.create 16 in
    List.iter (fun ctx -> Hashtbl.replace tbl ctx.path ctx.pragmas) ctxs;
    fun path -> try Hashtbl.find tbl path with Not_found -> []
  in
  let allowed_at path rule line =
    List.exists
      (fun (p : Lexer.pragma) ->
        p.Lexer.p_line <= line && p.Lexer.p_line >= line - 3 && List.mem rule p.Lexer.p_rules)
      (pragmas_of path)
  in
  !findings
  |> List.map (fun (f : Finding.t) ->
         match f.Finding.loc with
         | Finding.File { file; line } when allowed_at file f.Finding.rule line ->
           { f with Finding.allowed = true }
         | _ -> f)
  |> List.sort_uniq (fun a b ->
         let c = Finding.by_location a b in
         if c <> 0 then c else compare a b)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let analyze_files paths = analyze_sources (List.map (fun p -> (p, read_file p)) paths)
