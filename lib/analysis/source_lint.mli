(** Front end 1: call-site lint over OCaml sources.

    A token-level scanner (no type information) that tracks, per file:
    which let-bound variables hold bare remote completion events, which
    top-level functions return one, which compounds are [and_]s, and
    which regions run under a [Depfast.Mutex]. Rules:

    - {b red-wait}: [Sched.wait]/[wait_timeout] applied directly to an
      [Event.rpc_completion]/[disk_completion] (or a local function
      returning one) outside a quorum/or_ wrapper.
    - {b unbounded-wait}: a plain [Sched.wait] (no timeout) on a bare
      rpc completion — no [or_]/timer escape at all.
    - {b degenerate-quorum}: an [Event.and_] that accumulates two or
      more remote completions via [Event.add] (k = n).
    - {b lock-across-wait}: any suspension point ([Sched.wait],
      [Condvar.wait], ...) inside a [Mutex.with_lock] body or between
      [Mutex.lock]/[unlock].

    Findings at a line L are exempted by a pragma comment
    [(* depfast-lint: allow rule-id ... *)] starting on lines L-3..L.

    Remote completions are tracked through plain and flat-tuple [let]
    bindings ([let ev, meta = begin_call peer in ...]) and through
    local functions returning them, scalar or tuple-shaped. Remaining
    blind spots, accepted for a {e per-file} pass: events crossing
    module boundaries (other than the built-in
    [Cluster.Rpc.event]/[Cluster.Disk.read] producers), record fields,
    and lock/suspension facts hidden behind calls — all of which
    {!Interproc} closes with whole-project summaries.
    [Disk.write]/[fsync] are deliberately {e not} treated as remote
    producers: awaiting one's own WAL durability is protocol-inherent,
    while a blocking [Disk.read] on the request path is the TiDB
    anti-pattern (§2). *)

val lint_string : ?path:string -> string -> Finding.t list
(** Lint source text; [path] names the file in locations. *)

val lint_file : string -> Finding.t list

(** {2 Token-stream toolkit}

    Shared with the interprocedural pass ({!Interproc}); stable only
    within this library. *)

type kind = Rpc | Disk

val kind_name : kind -> string

val builtin_producers : (string * kind) list
(** Qualified names (matched on their last two segments) constructing a
    bare remote-completion event. *)

val local_constructors : string list
(** Heads constructing a local or compound event — binding one cancels
    any remote-completion fact. *)

val last2 : string -> string
(** The last two dot-segments of a qualified name. *)

val is_simple : string -> bool
(** True when the name has no dot. *)

type atom = AName of string | AParen of string option | AOther

val qualified : Lexer.token array -> int -> string * int * int
(** [qualified a i] reads the dotted name starting at token [i]:
    (name, line, index past it). *)

val parse_atom : Lexer.token array -> int array -> int -> atom * int
(** Consume one argument-shaped expression: a dotted name, or a
    parenthesised expression reduced to its first inner head. *)

val paren_matches : Lexer.token array -> int array
(** [pm.(i)] is the index of the [')'] matching an ['('] at [i], or -1. *)

val boundaries : Lexer.token array -> int list
(** Indices of column-0 structure keywords ([let], [module], ...) —
    top-level item boundaries. *)

val tuple_components : Lexer.token array -> int array -> int -> string option list option
(** Head names of the components of a literal tuple [(e1, e2, ...)]
    starting at the given ['('] token; [None] if it is not one. *)

type pattern = PVar of string | PTuple of string list
type rhs = RHead of string option | RTuple of string option list

val binding_at : Lexer.token array -> int array -> int -> (pattern * rhs * int) option
(** A binding [let <pat> = <rhs>] at token [i], where the pattern is a
    plain variable or a flat tuple of simple names: the pattern, the
    right-hand-side shape and the index of the [=]. Function definitions
    (parameters before the [=]) return [None]. *)
