(** Front end 1: call-site lint over OCaml sources.

    A token-level scanner (no type information) that tracks, per file:
    which let-bound variables hold bare remote completion events, which
    top-level functions return one, which compounds are [and_]s, and
    which regions run under a [Depfast.Mutex]. Rules:

    - {b red-wait}: [Sched.wait]/[wait_timeout] applied directly to an
      [Event.rpc_completion]/[disk_completion] (or a local function
      returning one) outside a quorum/or_ wrapper.
    - {b unbounded-wait}: a plain [Sched.wait] (no timeout) on a bare
      rpc completion — no [or_]/timer escape at all.
    - {b degenerate-quorum}: an [Event.and_] that accumulates two or
      more remote completions via [Event.add] (k = n).
    - {b lock-across-wait}: any suspension point ([Sched.wait],
      [Condvar.wait], ...) inside a [Mutex.with_lock] body or between
      [Mutex.lock]/[unlock].

    Findings at a line L are exempted by a pragma comment
    [(* depfast-lint: allow rule-id ... *)] starting on lines L-3..L.

    Known blind spots, accepted for a per-file lint: bindings through
    tuple patterns, events returned across module boundaries (other
    than the built-in [Cluster.Rpc.event]/[Cluster.Disk.read]
    producers), and waits on record fields. [Disk.write]/[fsync] are
    deliberately {e not} treated as remote producers: awaiting one's
    own WAL durability is protocol-inherent, while a blocking
    [Disk.read] on the request path is the TiDB anti-pattern (§2). *)

val lint_string : ?path:string -> string -> Finding.t list
(** Lint source text; [path] names the file in locations. *)

val lint_file : string -> Finding.t list
