type token = { line : int; col : int; text : string }
type pragma = { p_line : int; p_rules : string list }
type result = { tokens : token array; pragmas : pragma list }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_ident s = String.length s > 0 && is_ident_start s.[0]

(* Words of a comment body, split on anything outside [a-z0-9-]; if the
   comment reads "... depfast-lint : allow <words...>" the words after
   "allow" are the allowed rule ids (trailing prose is harmless — only
   known rule ids are ever looked up). *)
let parse_pragma ~line body =
  let words = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' then
        Buffer.add_char buf c
      else flush ())
    body;
  flush ();
  let rec find = function
    | "depfast-lint" :: "allow" :: rest -> Some { p_line = line; p_rules = rest }
    | _ :: rest -> find rest
    | [] -> None
  in
  find (List.rev !words)

let scan src =
  let n = String.length src in
  let tokens = ref [] in
  let pragmas = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let col = ref 0 in
  let adv () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 0
     end
     else incr col);
    incr i
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then adv ()
    else if c = '(' && peek 1 = Some '*' then begin
      (* comment, possibly nested; collect body for pragma parsing *)
      let start_line = !line in
      let buf = Buffer.create 64 in
      adv ();
      adv ();
      let depth = ref 1 in
      while !depth > 0 && !i < n do
        if src.[!i] = '(' && peek 1 = Some '*' then begin
          incr depth;
          adv ();
          adv ()
        end
        else if src.[!i] = '*' && peek 1 = Some ')' then begin
          decr depth;
          adv ();
          adv ()
        end
        else begin
          Buffer.add_char buf src.[!i];
          adv ()
        end
      done;
      match parse_pragma ~line:start_line (Buffer.contents buf) with
      | Some p -> pragmas := p :: !pragmas
      | None -> ()
    end
    else if c = '"' then begin
      adv ();
      let fin = ref false in
      while (not !fin) && !i < n do
        if src.[!i] = '\\' && !i + 1 < n then begin
          adv ();
          adv ()
        end
        else if src.[!i] = '"' then begin
          adv ();
          fin := true
        end
        else adv ()
      done
    end
    else if c = '{' && (match peek 1 with Some ('a' .. 'z' | '_' | '|') -> true | _ -> false)
    then begin
      (* quoted string {id|...|id} — find the opening bar, then the close *)
      let j = ref (!i + 1) in
      while !j < n && (match src.[!j] with 'a' .. 'z' | '_' -> true | _ -> false) do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let close = "|" ^ id ^ "}" in
        let cl = String.length close in
        (* consume through the matching close *)
        let fin = ref false in
        while (not !fin) && !i < n do
          if !i + cl <= n && String.sub src !i cl = close && !i > !j then begin
            for _ = 1 to cl do
              adv ()
            done;
            fin := true
          end
          else adv ()
        done
      end
      else begin
        tokens := { line = !line; col = !col; text = "{" } :: !tokens;
        adv ()
      end
    end
    else if c = '\'' then begin
      (* char literal or type variable *)
      match (peek 1, peek 2) with
      | Some '\\', _ ->
        adv ();
        adv ();
        let fin = ref false in
        while (not !fin) && !i < n do
          if src.[!i] = '\'' then begin
            adv ();
            fin := true
          end
          else adv ()
        done
      | Some _, Some '\'' ->
        adv ();
        adv ();
        adv ()
      | _ -> adv () (* type variable quote: drop it *)
    end
    else if is_ident_start c then begin
      let l = !line and cl = !col in
      let buf = Buffer.create 16 in
      while !i < n && is_ident_char src.[!i] do
        Buffer.add_char buf src.[!i];
        adv ()
      done;
      tokens := { line = l; col = cl; text = Buffer.contents buf } :: !tokens
    end
    else if c >= '0' && c <= '9' then begin
      let l = !line and cl = !col in
      let buf = Buffer.create 8 in
      while
        !i < n
        && (match src.[!i] with
           | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' | 'x' | 'o' | '_' | '.' -> true
           | _ -> false)
      do
        Buffer.add_char buf src.[!i];
        adv ()
      done;
      tokens := { line = l; col = cl; text = Buffer.contents buf } :: !tokens
    end
    else begin
      tokens := { line = !line; col = !col; text = String.make 1 c } :: !tokens;
      adv ()
    end
  done;
  { tokens = Array.of_list (List.rev !tokens); pragmas = List.rev !pragmas }
