(** Per-function summaries for the interprocedural pass ({!Interproc}).

    A summary holds the facts that flow across call boundaries, refined
    to a fixpoint over the whole project:

    - [ret]: whether the function returns a bare remote-completion
      event, componentwise — a 1-element list for a scalar return, one
      slot per component for a tuple return, [[]] when unknown/none;
    - [suspends]: the function (transitively) suspends on an event
      ([Sched.wait]/[wait_timeout], [Condvar.wait]/[wait_timeout]) —
      bounded local pauses ([sleep], [yield]) deliberately excluded;
    - [wait_params]: positional parameters that (transitively) reach a
      wait inside the function;
    - [acquires]: canonical mutex names the function may acquire,
      including through its callees;
    - [reads]/[writes]: canonical mutable cells ({!Effects}) the
      function may read or write, including through its callees — the
      effect footprint behind the depfast-domains pass. *)

type ret = Source_lint.kind option list

type t = {
  qname : string;  (** [Module.fn], module from the file basename *)
  file : string;
  line : int;
  params : string list;  (** positional parameter names, in order *)
  mutable ret : ret;
  mutable suspends : bool;
  mutable wait_params : int list;  (** sorted positions *)
  mutable acquires : string list;  (** sorted canonical lock names *)
  mutable reads : string list;  (** sorted canonical cells read *)
  mutable writes : string list;  (** sorted canonical cells written *)
}

val create : qname:string -> file:string -> line:int -> params:string list -> t
val add_wait_param : t -> int -> unit
val add_acquire : t -> string -> unit
val add_read : t -> string -> unit
val add_write : t -> string -> unit

val fingerprint : t -> ret * bool * int list * string list * string list * string list
(** Snapshot of the mutable facts, for fixpoint change detection. *)

val to_string : t -> string
