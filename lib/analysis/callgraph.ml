type t = {
  defs : (string, Summary.t) Hashtbl.t;  (* "Module.fn" -> summary *)
  mutable edges : (string * string) list;  (* caller qname -> callee qname *)
}

let create () = { defs = Hashtbl.create 256; edges = [] }

let define t (s : Summary.t) =
  (* first definition wins on a basename collision (e.g. two mitigation.ml
     in different directories); resolution is a best-effort heuristic *)
  if not (Hashtbl.mem t.defs s.Summary.qname) then Hashtbl.add t.defs s.Summary.qname s

let find t qname = Hashtbl.find_opt t.defs qname

let resolve t ~current_module name =
  if Source_lint.is_simple name then find t (current_module ^ "." ^ name)
  else find t (Source_lint.last2 name)

let add_edge t ~caller ~callee =
  if not (List.mem (caller, callee) t.edges) then t.edges <- (caller, callee) :: t.edges

let edges t = t.edges
let iter t f = Hashtbl.iter (fun _ s -> f s) t.defs

(* ---- generic digraph with cycle reporting --------------------------- *)

module Digraph = struct
  type edge = { src : string; dst : string; witness : string }

  type g = {
    succ : (string, edge list ref) Hashtbl.t;
    mutable nodes : string list;
  }

  let create () = { succ = Hashtbl.create 32; nodes = [] }

  let node g n =
    if not (List.mem n g.nodes) then g.nodes <- n :: g.nodes;
    match Hashtbl.find_opt g.succ n with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add g.succ n r;
      r

  let add_edge g ~src ~dst ~witness =
    let r = node g src in
    ignore (node g dst);
    if not (List.exists (fun e -> e.dst = dst) !r) then r := { src; dst; witness } :: !r

  let successors g n = match Hashtbl.find_opt g.succ n with Some r -> !r | None -> []

  (* Tarjan's strongly connected components. *)
  let sccs g =
    let index = Hashtbl.create 32 in
    let lowlink = Hashtbl.create 32 in
    let on_stack = Hashtbl.create 32 in
    let stack = ref [] in
    let counter = ref 0 in
    let out = ref [] in
    let rec strong v =
      Hashtbl.replace index v !counter;
      Hashtbl.replace lowlink v !counter;
      incr counter;
      stack := v :: !stack;
      Hashtbl.replace on_stack v ();
      List.iter
        (fun e ->
          let w = e.dst in
          if not (Hashtbl.mem index w) then begin
            strong w;
            Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.mem on_stack w then
            Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
        (successors g v);
      if Hashtbl.find lowlink v = Hashtbl.find index v then begin
        let comp = ref [] in
        let fin = ref false in
        while not !fin do
          match !stack with
          | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            comp := w :: !comp;
            if w = v then fin := true
          | [] -> fin := true
        done;
        out := !comp :: !out
      end
    in
    List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) (List.sort compare g.nodes);
    !out

  (* One witness cycle per cyclic SCC: the edge path [n1 -> n2 -> ... -> n1]
     found by BFS inside the component from its smallest node. *)
  let cycles g =
    let in_comp comp n = List.mem n comp in
    List.filter_map
      (fun comp ->
        let cyclic =
          match comp with
          | [ n ] -> List.exists (fun e -> e.dst = n) (successors g n)
          | _ :: _ :: _ -> true
          | [] -> false
        in
        if not cyclic then None
        else begin
          let s = List.fold_left min (List.hd comp) comp in
          (* BFS from s within the component back to s *)
          let parent : (string, edge) Hashtbl.t = Hashtbl.create 8 in
          let q = Queue.create () in
          let found = ref None in
          List.iter
            (fun e ->
              if !found = None && in_comp comp e.dst then
                if e.dst = s then found := Some [ e ]
                else if not (Hashtbl.mem parent e.dst) then begin
                  Hashtbl.replace parent e.dst e;
                  Queue.add e.dst q
                end)
            (successors g s);
          while !found = None && not (Queue.is_empty q) do
            let v = Queue.pop q in
            List.iter
              (fun e ->
                if !found = None && in_comp comp e.dst then
                  if e.dst = s then begin
                    (* reconstruct s -> ... -> v -> s *)
                    let rec back n acc =
                      if n = s then acc
                      else
                        let pe = Hashtbl.find parent n in
                        back pe.src (pe :: acc)
                    in
                    found := Some (back v [] @ [ e ])
                  end
                  else if not (Hashtbl.mem parent e.dst) then begin
                    Hashtbl.replace parent e.dst e;
                    Queue.add e.dst q
                  end)
              (successors g v)
          done;
          match !found with
          | Some path -> Some (s :: List.map (fun e -> e.dst) path, path)
          | None -> None
        end)
      (sccs g)
end
