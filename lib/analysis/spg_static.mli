(** The depfast-spg pass: a static slowness-propagation map.

    For every wait site in the project, computes its {e static exposure
    set} — which fail-slow resource kinds ({!Propagation.fault}) can
    reach the waiting function through the call graph, in which role
    (["self"]: the seed lives in the same file; ["peer"]: a remote
    resource) — and its {e color} in the {!Spg.color} sense: quorum-k
    waits ([Event.quorum]/[or_] bindings) are green, everything
    fate-sharing (bare events, [and_], condvar handoffs) is red.
    Timeout coverage mirrors {!Bounds}: [wait_timeout], an [or_]
    binding, or an [Event.add ~child:(Sched.timer ...)] escape marks
    the wait covered.

    Findings: {!Finding.red_exposure} for a red, exposed, uncovered
    wait; {!Finding.unreached_mitigation} for a green quorum whose
    [Count] arity flows from a tainted call. Certificates: one
    ["wait"] certificate per site and one ["propagation"] certificate
    per (wait x exposure) pair, each carrying the deterministic
    least-(fn, line) witness path from {!Propagation}. Pragma comments
    [(* depfast-lint: allow red-exposure ... *)] exempt findings as in
    every other pass. *)

type color = Red | Green

val color_name : color -> string
(** ["red" | "green"], matching [Spg.color] naming. *)

type exposure = {
  x_fault : Propagation.fault;
  x_role : string;  (** ["self" | "peer"] *)
  x_taint : Propagation.taint;
}

type wait = {
  w_file : string;
  w_line : int;
  w_fn : string;
  w_site : string;
  w_color : color;
  w_covered : bool;
  w_exposures : exposure list;
}

val analyze_project :
  Growth.project ->
  Finding.t list * Growth.cert list * (string * (string * string) list) list
(** Findings (pragmas applied, sorted), certificates (sorted by site),
    and the per-file exposure summary: [(path, (fault-name, color)
    pairs)] — the static blast radius the dynamic cross-check in
    [lib/check] compares observed SPG edges against. *)

val analyze_sources :
  (string * string) list ->
  Finding.t list * Growth.cert list * (string * (string * string) list) list

val analyze_files :
  string list ->
  Finding.t list * Growth.cert list * (string * (string * string) list) list
