module SL = Source_lint

type cert = Growth.cert = {
  c_rule : string;
  c_kind : string;
  c_file : string;
  c_line : int;
  c_site : string;
  c_verdict : Growth.verdict;
  c_evidence : string;
}

(* ---- timeout coverage ------------------------------------------------ *)

(* Per function: quorums bound to local names, whether a timer escape
   was wired in ([Event.add q ~child:(Sched.timer ...)] or rebinding
   through [Event.or_]), and how each one is waited on. The per-file
   lint already covers bare remote completions (red-wait/unbounded-wait);
   quorum waits are green to it, so the untimed ones are exactly the
   uncovered gap this rule closes. *)
let scan_waits p (fc : Growth.file_ctx) (f : Growth.fn) ~emit ~cert =
  let a = fc.Growth.fc_toks in
  let pm = fc.Growth.fc_pm in
  let n = f.Growth.g_e in
  let quorums = Hashtbl.create 4 in
  let timered = Hashtbl.create 4 in
  let i = ref f.Growth.g_b in
  while !i < n do
    (match SL.binding_at a pm !i with
    | Some (SL.PVar name, SL.RHead (Some h), _) ->
      let l2 = SL.last2 h in
      if l2 = "Event.quorum" then Hashtbl.replace quorums name a.(!i).Lexer.line
      else begin
        Hashtbl.remove quorums name;
        Hashtbl.remove timered name
      end;
      if l2 = "Event.or_" then Hashtbl.replace timered name ()
    | Some (SL.PVar name, _, _) ->
      Hashtbl.remove quorums name;
      Hashtbl.remove timered name
    | _ -> ());
    if Lexer.is_ident a.(!i).Lexer.text then begin
      let name, line, ni = SL.qualified a !i in
      (match SL.last2 name with
      | "Event.add" -> (
        (* [Event.add q ~child:<atom>]: a timer child is an escape *)
        let parent, i1 = SL.parse_atom a pm ni in
        match parent with
        | SL.AName q when SL.is_simple q && Hashtbl.mem quorums q ->
          if
            i1 + 3 < n
            && a.(i1).Lexer.text = "~"
            && a.(i1 + 1).Lexer.text = "child"
            && a.(i1 + 2).Lexer.text = ":"
          then begin
            let child, _ = SL.parse_atom a pm (i1 + 3) in
            let timerish h = List.mem (SL.last2 h) [ "Sched.timer"; "Event.timer_kind" ] in
            match child with
            | SL.AName h when timerish h -> Hashtbl.replace timered q ()
            | SL.AParen (Some h) when timerish h -> Hashtbl.replace timered q ()
            | _ -> ()
          end
        | _ -> ())
      | "Sched.wait" -> (
        let _sched, i1 = SL.parse_atom a pm ni in
        let ev, _ = SL.parse_atom a pm i1 in
        match ev with
        | SL.AName q when SL.is_simple q && Hashtbl.mem quorums q ->
          if Hashtbl.mem timered q then
            cert
              {
                c_rule = Finding.missing_deadline;
                c_kind = "quorum-wait";
                c_file = fc.Growth.fc_path;
                c_line = line;
                c_site = q;
                c_verdict = Growth.Bounded;
                c_evidence = "timer escape wired into the quorum";
              }
          else if Growth.remote_reachable p f.Growth.g_qname then begin
            emit ~line
              (Printf.sprintf
                 "untimed wait on quorum %S with no timer/or_ escape: green to the \
                  wait-structure rules, but a fail-slow minority still delays it \
                  without bound — use Sched.wait_timeout or add a Sched.timer child"
                 q);
            cert
              {
                c_rule = Finding.missing_deadline;
                c_kind = "quorum-wait";
                c_file = fc.Growth.fc_path;
                c_line = line;
                c_site = q;
                c_verdict = Growth.Flagged;
                c_evidence = "no deadline or timer escape on any path";
              }
          end
        | _ -> ())
      | "Sched.wait_timeout" -> (
        let _sched, i1 = SL.parse_atom a pm ni in
        let ev, _ = SL.parse_atom a pm i1 in
        match ev with
        | SL.AName q when SL.is_simple q && Hashtbl.mem quorums q ->
          cert
            {
              c_rule = Finding.missing_deadline;
              c_kind = "quorum-wait";
              c_file = fc.Growth.fc_path;
              c_line = line;
              c_site = q;
              c_verdict = Growth.Bounded;
              c_evidence = "deadline via Sched.wait_timeout";
            }
        | _ -> ())
      | _ -> ());
      i := ni
    end
    else incr i
  done

(* ---- retry coverage -------------------------------------------------- *)

(* A retry loop: a recursion marker ([let rec] inside the item, or a
   [while]) plus a remote call and a [Timed_out] arm in the same item.
   It is bounded when the body backs off ([Sched.sleep]) or guards on an
   attempt bound (a </> comparison against an int literal or a local
   int constant). *)
let scan_retries (fc : Growth.file_ctx) (f : Growth.fn) ~emit ~cert =
  let a = fc.Growth.fc_toks in
  let n = f.Growth.g_e in
  let has_rec = ref false in
  let has_call = ref false in
  let has_timeout_arm = ref false in
  let has_sleep = ref false in
  let has_guard = ref false in
  let int_names = Hashtbl.create 4 in
  let is_int_tok k =
    k >= f.Growth.g_b && k < n
    &&
    let t = a.(k).Lexer.text in
    (t <> "" && t.[0] >= '0' && t.[0] <= '9') || Hashtbl.mem int_names t
  in
  (* first sweep: local int constants [let name = 8] *)
  let i = ref f.Growth.g_b in
  while !i < n do
    let t = a.(!i).Lexer.text in
    if
      t = "let"
      && !i + 3 < n
      && Lexer.is_ident a.(!i + 1).Lexer.text
      && a.(!i + 2).Lexer.text = "="
      && (let v = a.(!i + 3).Lexer.text in v <> "" && v.[0] >= '0' && v.[0] <= '9')
    then Hashtbl.replace int_names a.(!i + 1).Lexer.text ();
    incr i
  done;
  let lastseg name =
    match String.rindex_opt name '.' with
    | Some j -> String.sub name (j + 1) (String.length name - j - 1)
    | None -> name
  in
  let i = ref f.Growth.g_b in
  while !i < n do
    let t = a.(!i).Lexer.text in
    if t = "rec" || t = "while" then has_rec := true;
    if Lexer.is_ident t then begin
      let name, _, ni = SL.qualified a !i in
      (* the constructor is usually spelled qualified
         ([Depfast.Sched.Timed_out]), so match its last segment *)
      if lastseg name = "Timed_out" then has_timeout_arm := true;
      (match SL.last2 name with
      | "Rpc.call" -> has_call := true
      | "Sched.sleep" -> has_sleep := true
      | _ -> ());
      i := ni
    end
    else begin
      (match t with
      | "<" when !i + 1 < n && a.(!i + 1).Lexer.text = "-" -> ()
      | "<" | ">" ->
        let after = if !i + 1 < n && a.(!i + 1).Lexer.text = "=" then !i + 2 else !i + 1 in
        if is_int_tok after || is_int_tok (!i - 1) then has_guard := true
      | _ -> ());
      incr i
    end
  done;
  if !has_rec && !has_call && !has_timeout_arm then
    if !has_sleep || !has_guard then
      cert
        {
          c_rule = Finding.unbounded_retry;
          c_kind = "retry";
          c_file = fc.Growth.fc_path;
          c_line = f.Growth.g_line;
          c_site = f.Growth.g_qname;
          c_verdict = Growth.Bounded;
          c_evidence =
            (if !has_sleep && !has_guard then "attempt bound and backoff sleep"
             else if !has_sleep then "backoff sleep between attempts"
             else "attempt bound guards the recursion");
        }
    else begin
      emit ~line:f.Growth.g_line
        (Printf.sprintf
           "%s retries a remote call on Timed_out with no attempt bound and no \
            backoff: a fail-slow peer turns this into a tight unbounded resend loop"
           f.Growth.g_qname);
      cert
        {
          c_rule = Finding.unbounded_retry;
          c_kind = "retry";
          c_file = fc.Growth.fc_path;
          c_line = f.Growth.g_line;
          c_site = f.Growth.g_qname;
          c_verdict = Growth.Flagged;
          c_evidence = "no attempt bound or backoff sleep in the retry body";
        }
    end

(* ---- driver ---------------------------------------------------------- *)

let allowed_at pragmas rule line =
  List.exists
    (fun (p : Lexer.pragma) ->
      p.Lexer.p_line <= line && p.Lexer.p_line >= line - 3 && List.mem rule p.Lexer.p_rules)
    pragmas

let analyze_sources sources =
  let p = Growth.load sources in
  let growth_findings, growth_certs = Growth.analyze p in
  let findings = ref [] in
  let certs = ref growth_certs in
  let cert c = certs := c :: !certs in
  List.iter
    (fun fc ->
      List.iter
        (fun f ->
          let emit_rule rule ~line msg =
            findings :=
              Finding.v ~rule ~severity:Finding.Warning
                ~loc:(Finding.File { file = fc.Growth.fc_path; line })
                msg
              :: !findings
          in
          scan_waits p fc f ~emit:(emit_rule Finding.missing_deadline) ~cert;
          scan_retries fc f ~emit:(emit_rule Finding.unbounded_retry) ~cert)
        fc.Growth.fc_fns)
    (Growth.files p);
  let pragmas_of = Hashtbl.create 16 in
  List.iter (fun fc -> Hashtbl.replace pragmas_of fc.Growth.fc_path fc.Growth.fc_pragmas) (Growth.files p);
  let apply (f : Finding.t) =
    match f.Finding.loc with
    | Finding.File { file; line } ->
      let ps = try Hashtbl.find pragmas_of file with Not_found -> [] in
      if allowed_at ps f.Finding.rule line then { f with Finding.allowed = true } else f
    | _ -> f
  in
  let all = List.map apply (growth_findings @ !findings) in
  (List.sort_uniq Finding.by_location all, List.sort_uniq Growth.by_site !certs)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let analyze_files paths = analyze_sources (List.map (fun p -> (p, read_file p)) paths)
