type kind = Rpc | Disk

(* Qualified names (matched on their last two segments) that construct a
   remote completion event. [Disk.write]/[Disk.fsync] are deliberately
   absent: a wait on one's own WAL durability is protocol-inherent,
   whereas a blocking [Disk.read] on the request path is the TiDB
   anti-pattern the paper describes (§2). *)
let builtin_producers =
  [
    ("Event.rpc_completion", Rpc);
    ("Rpc.event", Rpc);
    ("Event.disk_completion", Disk);
    ("Disk.read", Disk);
  ]

(* Heads that construct a local or compound event: binding one of these
   over a name cancels any earlier remote-completion fact about it. *)
let local_constructors =
  [ "Event.quorum"; "Event.or_"; "Event.signal"; "Event.timer_kind"; "Sched.timer" ]

let iter_names =
  [ "List.iter"; "List.iteri"; "List.map"; "List.mapi"; "Array.iter"; "Array.iteri" ]

let kind_name = function Rpc -> "rpc" | Disk -> "disk"

let last2 name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some j -> (
    match String.rindex_from_opt name (j - 1) '.' with
    | None -> name
    | Some k -> String.sub name (k + 1) (String.length name - k - 1))

let is_simple name = not (String.contains name '.')

(* ---- token-stream helpers ------------------------------------------- *)

let qualified (a : Lexer.token array) i =
  let n = Array.length a in
  let buf = Buffer.create 24 in
  Buffer.add_string buf a.(i).Lexer.text;
  let j = ref (i + 1) in
  let continue = ref true in
  while !continue do
    if !j + 1 < n && a.(!j).Lexer.text = "." && Lexer.is_ident a.(!j + 1).Lexer.text then begin
      Buffer.add_char buf '.';
      Buffer.add_string buf a.(!j + 1).Lexer.text;
      j := !j + 2
    end
    else continue := false
  done;
  (Buffer.contents buf, a.(i).Lexer.line, !j)

type atom = AName of string | AParen of string option | AOther

(* [parse_atom a pm i] consumes one argument-shaped expression starting
   at token [i]: a (possibly dotted) name, or a parenthesised expression
   whose first inner name is taken as its head. *)
let parse_atom (a : Lexer.token array) (pm : int array) i =
  let n = Array.length a in
  if i >= n then (AOther, i)
  else if a.(i).Lexer.text = "(" then begin
    let close = if pm.(i) >= 0 then pm.(i) else n - 1 in
    let j = ref (i + 1) in
    while !j < close && a.(!j).Lexer.text = "(" do
      incr j
    done;
    let head =
      if !j < close && Lexer.is_ident a.(!j).Lexer.text then
        let name, _, _ = qualified a !j in
        Some name
      else None
    in
    (AParen head, close + 1)
  end
  else if Lexer.is_ident a.(i).Lexer.text then begin
    let name, _, next = qualified a i in
    (AName name, next)
  end
  else (AOther, i + 1)

let paren_matches (a : Lexer.token array) =
  let n = Array.length a in
  let pm = Array.make n (-1) in
  let stack = ref [] in
  for i = 0 to n - 1 do
    match a.(i).Lexer.text with
    | "(" -> stack := i :: !stack
    | ")" -> (
      match !stack with
      | o :: rest ->
        pm.(o) <- i;
        stack := rest
      | [] -> ())
    | _ -> ()
  done;
  pm

let boundary_keywords = [ "let"; "module"; "open"; "type"; "exception"; "include"; "and"; "end" ]

let boundaries (a : Lexer.token array) =
  let out = ref [] in
  Array.iteri
    (fun i (t : Lexer.token) ->
      if t.Lexer.col = 0 && List.mem t.Lexer.text boundary_keywords then out := i :: !out)
    a;
  List.rev !out

let next_boundary bounds i =
  match List.find_opt (fun b -> b > i) bounds with
  | Some b -> b
  | None -> max_int

(* ---- per-file environment ------------------------------------------- *)

type env = {
  remote : (string, kind) Hashtbl.t;  (* vars bound to a bare remote completion *)
  producers : (string, kind option list) Hashtbl.t;
      (* local fns returning one: a 1-element list for a scalar return,
         one slot per component for a tuple return *)
}

let scalar = function [ Some k ] -> Some k | _ -> None

(* Component facts of a right-hand-side head: builtin producers are
   scalar by definition; local names resolve through either table. *)
let components_of_head env h =
  if is_simple h then
    match Hashtbl.find_opt env.producers h with
    | Some l -> Some l
    | None -> (
      match Hashtbl.find_opt env.remote h with Some k -> Some [ Some k ] | None -> None)
  else
    match List.assoc_opt (last2 h) builtin_producers with
    | Some k -> Some [ Some k ]
    | None -> None

let resolve_head env h = Option.bind (components_of_head env h) (fun l -> scalar l)

(* Split the parenthesised region (s, pm.(s)) at depth-0 commas and
   return the head name of each component — the shape of a literal
   tuple expression. [None] if there is no depth-0 comma. *)
let tuple_components (a : Lexer.token array) pm s =
  if s >= Array.length a || a.(s).Lexer.text <> "(" || pm.(s) < 0 then None
  else begin
    let close = pm.(s) in
    let depth = ref 0 in
    let comps = ref [] in
    let head = ref None in
    let ncommas = ref 0 in
    let i = ref (s + 1) in
    while !i < close do
      let t = a.(!i).Lexer.text in
      (match t with
      | "(" | "[" | "{" -> incr depth
      | ")" | "]" | "}" -> decr depth
      | "," when !depth = 0 ->
        incr ncommas;
        comps := !head :: !comps;
        head := None
      | _ ->
        if !head = None && Lexer.is_ident t then begin
          let name, _, _ = qualified a !i in
          head := Some name
        end);
      incr i
    done;
    if !ncommas = 0 then None
    else begin
      comps := !head :: !comps;
      Some (List.rev !comps)
    end
  end

type pattern = PVar of string | PTuple of string list
type rhs = RHead of string option | RTuple of string option list

(* A binding [let <pat> = <rhs>] at token [i], where <pat> is a plain
   variable or a flat tuple of simple names (optionally parenthesised):
   returns the pattern, the right-hand-side shape (a head name, or per-
   component heads for a literal tuple) and the index of the [=]. *)
let binding_at (a : Lexer.token array) pm i =
  let n = Array.length a in
  if a.(i).Lexer.text <> "let" then None
  else
    let j = if i + 1 < n && a.(i + 1).Lexer.text = "rec" then i + 2 else i + 1 in
    (* a comma-separated run of simple names over [j0, close) *)
    let names_upto j0 close =
      let rec go acc k expect_name =
        if k = close then if expect_name then None else Some (List.rev acc)
        else if expect_name then
          if Lexer.is_ident a.(k).Lexer.text then go (a.(k).Lexer.text :: acc) (k + 1) false
          else None
        else if a.(k).Lexer.text = "," then go acc (k + 1) true
        else None
      in
      go [] j0 true
    in
    let pat =
      if j >= n then None
      else if a.(j).Lexer.text = "(" && pm.(j) >= 0 && pm.(j) + 1 < n
              && a.(pm.(j) + 1).Lexer.text = "=" then
        match names_upto (j + 1) pm.(j) with
        | Some [ x ] -> Some (PVar x, pm.(j) + 1)
        | Some (_ :: _ :: _ as xs) -> Some (PTuple xs, pm.(j) + 1)
        | _ -> None
      else if Lexer.is_ident a.(j).Lexer.text then
        if j + 1 < n && a.(j + 1).Lexer.text = "=" then Some (PVar a.(j).Lexer.text, j + 1)
        else if j + 1 < n && a.(j + 1).Lexer.text = "," then begin
          (* scan forward for the [=] closing the pattern *)
          let k = ref (j + 1) in
          while !k < n && (a.(!k).Lexer.text = "," || Lexer.is_ident a.(!k).Lexer.text) do
            incr k
          done;
          if !k < n && a.(!k).Lexer.text = "=" then
            match names_upto j !k with
            | Some (_ :: _ :: _ as xs) -> Some (PTuple xs, !k)
            | _ -> None
          else None
        end
        else None
      else None
    in
    match pat with
    | None -> None
    | Some (pat, eq) ->
      let rhs =
        match tuple_components a pm (eq + 1) with
        | Some comps -> RTuple comps
        | None ->
          let k = ref (eq + 1) in
          while !k < n && a.(!k).Lexer.text = "(" do
            incr k
          done;
          RHead
            (if !k < n && Lexer.is_ident a.(!k).Lexer.text then
               let name, _, _ = qualified a !k in
               Some name
             else None)
      in
      Some (pat, rhs, eq)

let record_binding1 env ~and_line name head line =
  Hashtbl.remove env.remote name;
  Hashtbl.remove and_line name;
  match head with
  | None -> ()
  | Some h -> (
    let l2 = last2 h in
    match List.assoc_opt l2 builtin_producers with
    | Some k -> Hashtbl.replace env.remote name k
    | None ->
      if is_simple h then (
        match Hashtbl.find_opt env.producers h with
        | Some l -> ( match scalar l with Some k -> Hashtbl.replace env.remote name k | None -> ())
        | None -> ())
      else if l2 = "Event.and_" then Hashtbl.replace and_line name line
      else if List.mem l2 local_constructors then ())

(* Assign facts under a binding: positional for tuple patterns, whether
   the right-hand side is a literal tuple or a call to a local function
   whose tuple return shape was learnt. *)
let record_binding env ~and_line pat rhs line =
  let comp_fact head = Option.bind head (fun h -> resolve_head env h) in
  match (pat, rhs) with
  | PVar name, RHead head -> record_binding1 env ~and_line name head line
  | PVar name, RTuple _ ->
    (* a literal tuple is not itself an event *)
    Hashtbl.remove env.remote name;
    Hashtbl.remove and_line name
  | PTuple names, RTuple comps ->
    List.iteri
      (fun i name ->
        Hashtbl.remove env.remote name;
        Hashtbl.remove and_line name;
        match List.nth_opt comps i with
        | Some head -> (
          match comp_fact head with
          | Some k -> Hashtbl.replace env.remote name k
          | None -> ())
        | None -> ())
      names
  | PTuple names, RHead head ->
    let comps =
      match head with
      | Some h when is_simple h -> (
        match Hashtbl.find_opt env.producers h with Some l -> l | None -> [])
      | _ -> []
    in
    List.iteri
      (fun i name ->
        Hashtbl.remove env.remote name;
        Hashtbl.remove and_line name;
        match List.nth_opt comps i with
        | Some (Some k) -> Hashtbl.replace env.remote name k
        | _ -> ())
      names

(* Learn which top-level functions return a remote completion: the
   binding's last line is either a lone variable known to be remote, an
   application of a producer, or a literal tuple whose components are
   learnt positionally. Iterated with the binding pass so producer
   facts and variable facts can feed each other. *)
let learn_producers (a : Lexer.token array) pm bounds env =
  let n = Array.length a in
  let rec pairs = function
    | b :: rest ->
      let e = match rest with b2 :: _ -> b2 | [] -> n in
      (b, e) :: pairs rest
    | [] -> []
  in
  List.iter
    (fun (b, e) ->
      if a.(b).Lexer.text = "let" && e > b + 1 then begin
        let j = if a.(b + 1).Lexer.text = "rec" && b + 2 < e then b + 2 else b + 1 in
        if j < e && Lexer.is_ident a.(j).Lexer.text then begin
          let fname = a.(j).Lexer.text in
          let last_line = a.(e - 1).Lexer.line in
          let lo = ref (e - 1) in
          while !lo > b && a.(!lo - 1).Lexer.line = last_line do
            decr lo
          done;
          (* for one-line bindings, start after the [=] *)
          let start =
            if !lo <= j then begin
              let k = ref j in
              while !k < e && a.(!k).Lexer.text <> "=" do
                incr k
              done;
              !k + 1
            end
            else !lo
          in
          if start < e then begin
            let learned =
              if start = e - 1 && Lexer.is_ident a.(start).Lexer.text
                 && is_simple a.(start).Lexer.text then
                match Hashtbl.find_opt env.remote a.(start).Lexer.text with
                | Some k -> Some [ Some k ]
                | None -> None
              else
                match
                  if a.(start).Lexer.text = "(" && pm.(start) = e - 1 then
                    tuple_components a pm start
                  else None
                with
                | Some comps ->
                  let facts = List.map (fun h -> Option.bind h (resolve_head env)) comps in
                  if List.exists Option.is_some facts then Some facts else None
                | None -> begin
                  let k = ref start in
                  while !k < e && not (Lexer.is_ident a.(!k).Lexer.text) do
                    incr k
                  done;
                  if !k < e then
                    let h, _, _ = qualified a !k in
                    components_of_head env h
                  else None
                end
            in
            match learned with
            | Some l -> Hashtbl.replace env.producers fname l
            | None -> ()
          end
        end
      end)
    (pairs bounds)

(* ---- locked / iterating regions ------------------------------------- *)

let lock_regions (a : Lexer.token array) pm bounds =
  let n = Array.length a in
  let bset = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace bset b ()) bounds;
  let regions = ref [] in
  let open_lock = ref None in
  let i = ref 0 in
  while !i < n do
    (if Hashtbl.mem bset !i then
       match !open_lock with
       | Some s ->
         regions := (s, !i - 1) :: !regions;
         open_lock := None
       | None -> ());
    if Lexer.is_ident a.(!i).Lexer.text then begin
      let name, _, ni = qualified a !i in
      (match last2 name with
      | "Mutex.with_lock" ->
        let _, i1 = parse_atom a pm ni in
        let _, i2 = parse_atom a pm i1 in
        if i2 < n && a.(i2).Lexer.text = "(" then
          regions := (i2, if pm.(i2) >= 0 then pm.(i2) else n - 1) :: !regions
        else if i2 < n && a.(i2).Lexer.text = "@" then begin
          let e = next_boundary bounds i2 in
          regions := (i2, min (e - 1) (n - 1)) :: !regions
        end
      | "Mutex.lock" -> if !open_lock = None then open_lock := Some !i
      | "Mutex.unlock" -> (
        match !open_lock with
        | Some s ->
          regions := (s, !i) :: !regions;
          open_lock := None
        | None -> ())
      | _ -> ());
      i := ni
    end
    else incr i
  done;
  (match !open_lock with Some s -> regions := (s, n - 1) :: !regions | None -> ());
  !regions

let iter_regions (a : Lexer.token array) pm =
  let n = Array.length a in
  let regions = ref [] in
  let for_stack = ref [] in
  let i = ref 0 in
  while !i < n do
    if Lexer.is_ident a.(!i).Lexer.text then begin
      let name, _, ni = qualified a !i in
      (if name = "for" || name = "while" then for_stack := !i :: !for_stack
       else if name = "done" then
         match !for_stack with
         | s :: rest ->
           regions := (s, !i) :: !regions;
           for_stack := rest
         | [] -> ()
       else if List.mem (last2 name) iter_names then
         if ni < n && a.(ni).Lexer.text = "(" then
           regions := (ni, if pm.(ni) >= 0 then pm.(ni) else n - 1) :: !regions);
      i := ni
    end
    else incr i
  done;
  !regions

let in_region regions i = List.exists (fun (s, e) -> s <= i && i <= e) regions

(* ---- the lint proper ------------------------------------------------ *)

let lint_string ?(path = "<string>") src =
  let { Lexer.tokens = a; pragmas } = Lexer.scan src in
  let n = Array.length a in
  if n = 0 then []
  else begin
    let pm = paren_matches a in
    let bounds = boundaries a in
    let env = { remote = Hashtbl.create 16; producers = Hashtbl.create 16 } in
    let and_line = Hashtbl.create 8 in
    (* fixpoint: variable facts and producer facts feed each other *)
    for _ = 1 to 2 do
      Array.iteri
        (fun i _ ->
          match binding_at a pm i with
          | Some (pat, rhs, _) -> record_binding env ~and_line pat rhs a.(i).Lexer.line
          | None -> ())
        a;
      learn_producers a pm bounds env
    done;
    Hashtbl.reset env.remote;
    Hashtbl.reset and_line;
    let locked = lock_regions a pm bounds in
    let iters = iter_regions a pm in
    let findings = ref [] in
    let emit ~rule ~severity ~line message =
      findings :=
        Finding.v ~rule ~severity ~loc:(Finding.File { file = path; line }) message
        :: !findings
    in
    let and_adds = Hashtbl.create 8 in
    let resolve_atom = function
      | AName s when is_simple s -> Hashtbl.find_opt env.remote s
      | AName _ -> None
      | AParen (Some h) -> resolve_head env h
      | AParen None | AOther -> None
    in
    (* linear scan in program order so variable shadowing is respected *)
    let i = ref 0 in
    while !i < n do
      (match binding_at a pm !i with
      | Some (pat, rhs, _) -> record_binding env ~and_line pat rhs a.(!i).Lexer.line
      | None -> ());
      if Lexer.is_ident a.(!i).Lexer.text then begin
        let name, line, ni = qualified a !i in
        (match last2 name with
        | ("Sched.wait" | "Sched.wait_timeout") as w ->
          if in_region locked !i then
            emit ~rule:Finding.lock_across_wait ~severity:Finding.Error ~line
              "suspension point while a Depfast.Mutex is held: a single slow \
               firer blocks every coroutine contending on the lock (the \
               RethinkDB hazard, paper §2)";
          let _sched, i1 = parse_atom a pm ni in
          let ev, _ = parse_atom a pm i1 in
          (match resolve_atom ev with
          | Some k ->
            let severity = match k with Rpc -> Finding.Error | Disk -> Finding.Warning in
            emit ~rule:Finding.red_wait ~severity ~line
              (Printf.sprintf
                 "wait on a single %s completion outside a quorum/or_ wrapper: \
                  that peer stalls this coroutine; wrap it in Event.quorum or \
                  race it against Sched.timer via Event.or_"
                 (kind_name k));
            if w = "Sched.wait" && k = Rpc then
              emit ~rule:Finding.unbounded_wait ~severity:Finding.Warning ~line
                "untimed wait on a remote completion with no or_/timer escape: \
                 use Sched.wait_timeout or add a timer sibling via Event.or_"
          | None -> ())
        | "Condvar.wait" | "Condvar.wait_timeout" ->
          if in_region locked !i then
            emit ~rule:Finding.lock_across_wait ~severity:Finding.Error ~line
              "condition wait while a Depfast.Mutex is held: Depfast.Condvar \
               does not release the mutex, so this deadlocks or serialises \
               every contender behind one slow firer"
        | "Event.add" -> (
          let parent, i1 = parse_atom a pm ni in
          match parent with
          | AName p when is_simple p && Hashtbl.mem and_line p ->
            (* expect [~child:<atom>] *)
            if
              i1 + 2 < n
              && a.(i1).Lexer.text = "~"
              && a.(i1 + 1).Lexer.text = "child"
              && a.(i1 + 2).Lexer.text = ":"
            then begin
              let child, _ = parse_atom a pm (i1 + 3) in
              if resolve_atom child = Some Rpc then begin
                let w = if in_region iters !i then 2 else 1 in
                let key = (p, Hashtbl.find and_line p) in
                let cur = try Hashtbl.find and_adds key with Not_found -> 0 in
                Hashtbl.replace and_adds key (cur + w)
              end
            end
          | _ -> ())
        | _ -> ());
        i := ni
      end
      else incr i
    done;
    Hashtbl.iter
      (fun (p, line) w ->
        if w >= 2 then
          emit ~rule:Finding.degenerate_quorum ~severity:Finding.Error ~line
            (Printf.sprintf
               "and_ %S collects multiple rpc completions: k = n, so every \
                peer stalls it; use Event.quorum with Majority/Count, or \
                Event.or_ with a timer escape"
               p))
      and_adds;
    (* pragma exemptions: a pragma on lines L-3..L allows a finding at L *)
    let allowed_at rule line =
      List.exists
        (fun (p : Lexer.pragma) ->
          p.Lexer.p_line <= line
          && p.Lexer.p_line >= line - 3
          && List.mem rule p.Lexer.p_rules)
        pragmas
    in
    !findings
    |> List.map (fun (f : Finding.t) ->
           match f.Finding.loc with
           | Finding.File { line; _ } when allowed_at f.Finding.rule line ->
             { f with Finding.allowed = true }
           | _ -> f)
    |> List.sort Finding.by_location
  end

let lint_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  lint_string ~path src
