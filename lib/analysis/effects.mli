(** The mutable-state inventory and interprocedural effect analysis
    behind the depfast-domains pass ({!Domains}).

    The {e inventory} finds every top-level mutable cell in the tree —
    [ref]s, top-level [Queue]/[Hashtbl]/[Buffer]/[Rlog]/[Atomic]
    values (through optional [: ty] annotations and [lazy] wrappers),
    top-level records carrying a [mutable] label, and every [mutable]
    field declaration — each under a stable canonical name:
    [Module.x] for module-level bindings, [.field] for record fields
    (same-named fields merge across types, the growth pass's accepted
    over-approximation).

    The {e effect analysis} then records, per function, which cells it
    reads and writes — through the container operation tables
    ([Queue.add], [Hashtbl.replace], [Atomic.set], ...), direct forms
    ([x := e], [!x], [incr]/[decr], [t.f <- e], bare field reads), and
    alias escapes (an unconsumed mention of a cell, counted as a read:
    writes through the escaping alias are a documented static blind
    spot, which the dynamic probe cross-check in [lib/check] exists to
    catch) — and closes the footprints over {!Growth}'s call graph to
    a fixpoint, so effects cross modules and SCCs. Writes lexically
    inside a [Mutex.with_lock] body or a [Mutex.lock]..[unlock] span
    are marked guarded; the lock fact does {e not} flow through calls
    (a helper that writes under a caller's lock still reads as
    unguarded — keep the write in the lock's lexical region).

    Like the other front ends this is token-level and neither sound
    nor complete; {!Domains} turns the result into ownership verdicts
    and certificates. *)

type cell_kind = Ref | Queue | Hash | Buf | Log | Atomic | Record | Field

val kind_name : cell_kind -> string

type cell = {
  cl_name : string;  (** canonical: [Module.x], or [.field] *)
  cl_kind : cell_kind;
  cl_file : string;
  cl_line : int;
}

type access = {
  a_fn : string;  (** qualified function recording the access *)
  a_cell : string;
  a_file : string;
  a_line : int;
  a_write : bool;
  a_locked : bool;  (** lexically inside a Mutex region *)
  a_top : bool;  (** field access whose base resolves to a top-level cell *)
  a_escape : bool;  (** unconsumed alias-escaping mention, read-only *)
}

type t = {
  e_cells : cell list;  (** sorted by canonical name *)
  e_accesses : access list;  (** sorted by (cell, file, line, fn) *)
  e_summaries : (string, Summary.t) Hashtbl.t;
      (** qname -> closed (transitive) effect footprint *)
}

val compute : Growth.project -> t

val fn_summary : t -> string -> Summary.t option
