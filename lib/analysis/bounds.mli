(** Front end 4: depfast-bounds — interprocedural boundedness and
    timeout coverage.

    The wait-structure passes ({!Source_lint}, {!Interproc}) certify
    {e which} events a coroutine may block on; this pass certifies the
    two obligations they leave open, the ones behind the paper's
    fail-slow root causes (b) and (c):

    - {b unbounded-growth} (via {!Growth}): an accumulation site
      reachable from remote-triggered code with no drain, truncation,
      or capacity check in the same call-graph component — the
      RethinkDB unbounded-backlog shape.
    - {b missing-deadline}: an untimed [Sched.wait] on an
      [Event.quorum] with no [Sched.timer] child or [or_] escape.
      Quorum waits are green to the wait-structure rules, so these are
      exactly the waits they cannot see; a fail-slow {e minority} still
      delays one without bound.
    - {b unbounded-retry}: a retry loop around a [Timed_out] remote
      call with neither an attempt bound nor a backoff sleep.

    Every clean site yields a machine-readable {!Growth.cert}
    boundedness certificate ([site, kind, verdict, evidence]); flagged
    sites yield a [Flagged] certificate alongside the finding, so the
    dynamic gauge sanitizer (lib/check) can cross-check live queue
    depths against exactly what was promised statically. Findings
    honour the usual [(* depfast-lint: allow rule-id *)] pragmas;
    certificates are unaffected by pragmas — allowing a defect
    acknowledges it, it does not make the site bounded. *)

type cert = Growth.cert = {
  c_rule : string;
  c_kind : string;
  c_file : string;
  c_line : int;
  c_site : string;
  c_verdict : Growth.verdict;
  c_evidence : string;
}

val analyze_sources : (string * string) list -> Finding.t list * cert list
(** [(path, contents)] pairs — the whole project at once. Findings are
    pragma-applied and sorted by location; certificates by site. *)

val analyze_files : string list -> Finding.t list * cert list
