(** The project call graph: an index of function summaries keyed on
    [Module.fn] (module from the defining file's basename), plus the
    name-resolution rule shared by every interprocedural check, and a
    small directed-graph toolkit with cycle reporting (used both here
    and for the mutex acquisition-order graph).

    Resolution is a heuristic over token streams, not a compiler: a
    simple call [f] resolves inside the caller's own module; a dotted
    call resolves on its last two segments, so [Raft.Server.tick],
    [Server.tick] and a library-wrapped [Depfast.Event.fire] all reach
    the right summary. On a basename collision the first definition
    wins. *)

type t

val create : unit -> t
val define : t -> Summary.t -> unit
val find : t -> string -> Summary.t option

val resolve : t -> current_module:string -> string -> Summary.t option
(** Resolve a call as written in the source ([f], [M.f], [Lib.M.f]). *)

val add_edge : t -> caller:string -> callee:string -> unit
val edges : t -> (string * string) list
val iter : t -> (Summary.t -> unit) -> unit

module Digraph : sig
  type edge = { src : string; dst : string; witness : string }
  type g

  val create : unit -> g
  val add_edge : g -> src:string -> dst:string -> witness:string -> unit
  val successors : g -> string -> edge list

  val sccs : g -> string list list
  (** Tarjan's strongly connected components. *)

  val cycles : g -> (string list * edge list) list
  (** One witness cycle per cyclic SCC: the node path
      [n1; n2; ...; n1] and the edges (with witnesses) along it. *)
end
