(** RPC on the simulated network, integrated with DepFast events.

    A call returns immediately with a {!call} handle whose {!event} fires
    when the response arrives — the paper's [rpc_event]. Server handlers run
    as coroutines on the destination node and may wait (CPU, disk, nested
    RPCs).

    {!broadcast} is the framework-aware primitive of §2.3: it sends the same
    request to a set of replicas, hands back one {!Depfast.Event.t} quorum
    event, and — when the quorum is satisfied — {e abandons} the straggler
    calls, releasing their buffers instead of letting them back up. That
    behaviour can be disabled per-RPC instance for the ablation study. *)

type ('req, 'resp) t

type 'resp call

val create :
  Depfast.Sched.t ->
  ?latency:Sim.Dist.t ->
  ?request_bytes:int ->
  unit ->
  ('req, 'resp) t
(** [request_bytes] (default 512) is the per-call buffer size charged to the
    caller's memory until the call completes or is abandoned. *)

val sched : ('req, 'resp) t -> Depfast.Sched.t

val attach : ('req, 'resp) t -> Node.t -> unit
(** Register a node that only issues calls (a client): its responses are
    routed but it serves no requests. *)

val partition : ('req, 'resp) t -> int -> int -> unit
val heal : ('req, 'resp) t -> int -> int -> unit

val serve :
  ('req, 'resp) t -> node:Node.t -> handler:(src:int -> 'req -> 'resp option) -> unit
(** Install the node's request handler; it runs in a fresh coroutine per
    request on the node, costs nothing unless it performs waits/CPU work,
    and replies iff it returns [Some _]. Re-installing replaces. *)

val call :
  ('req, 'resp) t -> src:Node.t -> dst:int -> ?bytes:int -> 'req -> 'resp call
(** Send a request. [bytes] overrides the per-call request buffer charge. *)

val event : 'resp call -> Depfast.Event.t
val response : 'resp call -> 'resp option
val dst : 'resp call -> int

val abandon : 'resp call -> unit
(** Give up on the call: its buffer is freed, a late response is dropped. *)

val broadcast :
  ('req, 'resp) t ->
  src:Node.t ->
  dsts:int list ->
  arity:Depfast.Event.arity ->
  ?bytes:int ->
  ?label:string ->
  'req ->
  Depfast.Event.t * 'resp call list
(** Parallel calls to [dsts] plus a quorum event over their reply events.
    With {!set_discard_stragglers} on (default), satisfying the quorum
    abandons the unfinished calls. *)

val set_discard_stragglers : ('req, 'resp) t -> bool -> unit

val discarded_responses : ('req, 'resp) t -> int
(** Responses that arrived after their call was abandoned. *)

val outstanding_bytes : ('req, 'resp) t -> node:int -> int
(** Call-buffer bytes currently charged to [node]. *)

val link_stats : ('req, 'resp) t -> src:int -> dst:int -> Net.stats
(** Delivered/dropped message counts and request bytes shipped on one
    directed link of the underlying network. *)

val net_totals : ('req, 'resp) t -> Net.stats
(** Network-wide counters for the underlying network. *)

val set_choice_mode : ('req, 'resp) t -> bool -> unit
(** Put the underlying network into schedule-exploration choice mode (see
    {!Net.set_choice_mode}). *)

val set_net_sanitizer : ('req, 'resp) t -> (string -> unit) -> unit
(** Install a FIFO-invariant violation reporter on the underlying network
    (see {!Net.set_sanitizer}). *)
