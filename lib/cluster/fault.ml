open Sim

type kind =
  | Cpu_slow
  | Cpu_contention
  | Disk_slow
  | Disk_contention
  | Mem_contention
  | Net_slow

let all = [ Cpu_slow; Cpu_contention; Disk_slow; Disk_contention; Mem_contention; Net_slow ]

let name = function
  | Cpu_slow -> "CPU (slow)"
  | Cpu_contention -> "CPU (contention)"
  | Disk_slow -> "Disk (slow)"
  | Disk_contention -> "Disk (contention)"
  | Mem_contention -> "Memory (contention)"
  | Net_slow -> "Network (slow)"

let paper_injection = function
  | Cpu_slow -> "Use cgroup to limit each RSM process to utilize only 5% CPU"
  | Cpu_contention ->
    "Run a contending program (assigned with 16x higher CPU share than the process)"
  | Disk_slow -> "Use cgroup to limit disk I/O bandwidth available for the RSM process"
  | Disk_contention -> "Run a contending program that writes heavily on the shared disk"
  | Mem_contention ->
    "Use cgroup to set the maximum amount of user memory for the RSM process"
  | Net_slow -> "Add a delay of 400 milliseconds to the network interface using tc"

let sim_injection = function
  | Cpu_slow -> "CPU station speed factor x20 (5% share)"
  | Cpu_contention -> "16 closed-loop contender jobs (1ms each) through the CPU station"
  | Disk_slow -> "disk bandwidth token rate x0.05"
  | Disk_contention -> "4 closed-loop contender writers (256KB each) through the disk station"
  | Mem_contention -> "memory caps at 0.5x resident set: pressure penalty on CPU/disk"
  | Net_slow -> "+400ms one-way delay on the node's NIC"

type active = {
  node : Node.t;
  undo : unit -> unit;
  mutable stopped : bool;  (* read by contender loops *)
}

let mib = 1024 * 1024

let start_cpu_contender active =
  let node = active.node in
  let sched = Node.sched node in
  for _ = 1 to 16 do
    Node.spawn node ~name:"cpu-contender" (fun () ->
        let rec loop () =
          if (not active.stopped) && Node.alive node then begin
            Depfast.Sched.wait sched (Station.submit (Node.cpu node) ~work:(Time.ms 1) ());
            loop ()
          end
        in
        loop ())
  done

let start_disk_contender active =
  let node = active.node in
  let sched = Node.sched node in
  for _ = 1 to 4 do
    Node.spawn node ~name:"disk-contender" (fun () ->
        let rec loop () =
          if (not active.stopped) && Node.alive node then begin
            (* depfast-lint: allow red-exposure — the contender exists to
               occupy the slow disk; stalling on it is the injection *)
            Depfast.Sched.wait sched (Disk.write (Node.disk node) ~bytes:(256 * 1024));
            loop ()
          end
        in
        loop ())
  done

let inject node kind =
  let cpu = Node.cpu node and disk = Node.disk node and memory = Node.memory node in
  match kind with
  | Cpu_slow ->
    let prev = Station.speed cpu in
    Station.set_speed cpu (prev *. 20.0);
    { node; undo = (fun () -> Station.set_speed cpu prev); stopped = false }
  | Cpu_contention ->
    let active = { node; undo = (fun () -> ()); stopped = false } in
    start_cpu_contender active;
    active
  | Disk_slow ->
    Disk.set_bandwidth_factor disk 0.05;
    { node; undo = (fun () -> Disk.set_bandwidth_factor disk 1.0); stopped = false }
  | Disk_contention ->
    let active = { node; undo = (fun () -> ()); stopped = false } in
    start_disk_contender active;
    active
  | Mem_contention ->
    let prev_soft = Memory.soft_cap memory in
    let used = Memory.used memory in
    Memory.set_caps memory ~soft_cap:(used / 2) ~hard_cap:(max (2 * used) (512 * mib));
    {
      node;
      undo =
        (fun () -> Memory.set_caps memory ~soft_cap:prev_soft ~hard_cap:(16 * 1024 * mib));
      stopped = false;
    }
  | Net_slow ->
    let prev = Node.nic_delay node in
    Node.set_nic_delay node (Time.ms 400);
    { node; undo = (fun () -> Node.set_nic_delay node prev); stopped = false }

let clear active =
  active.stopped <- true;
  active.undo ()
