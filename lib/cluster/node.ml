type t = {
  id : int;
  name : string;
  sched : Depfast.Sched.t;
  cpu : Station.t;
  disk : Disk.t;
  memory : Memory.t;
  mutable nic_delay : Sim.Time.span;
  mutable alive : bool;
  mutable crash_hooks : (unit -> unit) list;
}

let crash t =
  if t.alive then begin
    t.alive <- false;
    List.iter (fun f -> f ()) (List.rev t.crash_hooks)
  end

let create sched ~id ~name ?(cpu_cores = 4) ?mem_soft_cap ?mem_hard_cap
    ?(resident_bytes = 200 * 1024 * 1024) () =
  let memory = Memory.create ?soft_cap:mem_soft_cap ?hard_cap:mem_hard_cap () in
  (* the process's steady-state working set; memory faults cap against it *)
  Memory.alloc memory resident_bytes;
  let cpu = Station.create sched ~servers:cpu_cores ~name:(Printf.sprintf "cpu%d" id) () in
  let disk = Disk.create sched ~node_id:id () in
  Station.set_penalty cpu (fun () -> Memory.penalty memory);
  Disk.set_penalty disk (fun () -> Memory.penalty memory);
  let t =
    { id; name; sched; cpu; disk; memory; nic_delay = 0; alive = true; crash_hooks = [] }
  in
  Memory.on_oom memory (fun () -> crash t);
  t

let id t = t.id
let name t = t.name
let sched t = t.sched
let cpu t = t.cpu
let disk t = t.disk
let memory t = t.memory
let nic_delay t = t.nic_delay
let set_nic_delay t d = t.nic_delay <- d
let alive t = t.alive
let on_crash t f = t.crash_hooks <- f :: t.crash_hooks

let cpu_work_event t work =
  if not t.alive then Depfast.Event.signal ~label:"dead" ()
  else Station.submit t.cpu ~work ()

(* depfast-lint: allow red-exposure — this IS the declared cost-model
   wait: every cpu-slow exposure in the tree is seeded here *)
let cpu_work t work = Depfast.Sched.wait t.sched (cpu_work_event t work)
let spawn t ?name f = Depfast.Sched.spawn t.sched ~node:t.id ?name f
