type ('req, 'resp) frame =
  | Req of { id : int; body : 'req }
  | Resp of { id : int; body : 'resp }

type 'resp call = {
  call_id : int;
  call_dst : int;
  ev : Depfast.Event.t;
  mutable resp : 'resp option;
  mutable done_ : bool;  (* responded or abandoned: buffer released *)
  release : unit -> unit;
}

type ('req, 'resp) t = {
  sched : Depfast.Sched.t;
  net : ('req, 'resp) frame Net.t;
  calls : (int, 'resp call) Hashtbl.t;
  handlers : (int, src:int -> 'req -> 'resp option) Hashtbl.t;
  request_bytes : int;
  mutable next_id : int;
  mutable discard_stragglers : bool;
  mutable discarded : int;
  outstanding : (int, int) Hashtbl.t;  (* node id -> bytes charged *)
}

let create sched ?latency ?(request_bytes = 512) () =
  {
    sched;
    net = Net.create sched ?latency ();
    calls = Hashtbl.create 256;
    handlers = Hashtbl.create 16;
    request_bytes;
    next_id = 0;
    discard_stragglers = true;
    discarded = 0;
    outstanding = Hashtbl.create 16;
  }

let sched t = t.sched
let partition t a b = Net.partition t.net a b
let heal t a b = Net.heal t.net a b
let set_discard_stragglers t b = t.discard_stragglers <- b
let discarded_responses t = t.discarded

let outstanding_bytes t ~node = Option.value ~default:0 (Hashtbl.find_opt t.outstanding node)
let link_stats t ~src ~dst = Net.stats t.net ~src ~dst
let net_totals t = Net.totals t.net
let set_choice_mode t b = Net.set_choice_mode t.net b
let set_net_sanitizer t f = Net.set_sanitizer t.net f

let charge t node bytes =
  Hashtbl.replace t.outstanding node (outstanding_bytes t ~node + bytes)

let handle_frame t me ~src frame =
  match frame with
  | Req { id; body } -> (
    match Hashtbl.find_opt t.handlers (Node.id me) with
    | None -> ()
    | Some handler ->
      Node.spawn me ~name:"rpc.handler" (fun () ->
          match handler ~src body with
          | None -> ()
          | Some resp ->
            Net.send t.net ~src:(Node.id me) ~dst:src (Resp { id; body = resp })))
  | Resp { id; body } -> (
    match Hashtbl.find_opt t.calls id with
    | None -> ()
    | Some call ->
      Hashtbl.remove t.calls id;
      if call.done_ then t.discarded <- t.discarded + 1
      else begin
        call.resp <- Some body;
        call.done_ <- true;
        call.release ();
        Depfast.Event.fire call.ev
      end)

let attach t node =
  Net.register t.net node ~handler:(fun ~src frame -> handle_frame t node ~src frame)

let serve t ~node ~handler =
  attach t node;
  Hashtbl.replace t.handlers (Node.id node) handler

let call t ~src ~dst ?bytes body =
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  let bytes = Option.value ~default:t.request_bytes bytes in
  let src_id = Node.id src in
  Memory.alloc (Node.memory src) bytes;
  charge t src_id bytes;
  let released = ref false in
  let release () =
    if not !released then begin
      released := true;
      Memory.free (Node.memory src) bytes;
      charge t src_id (-bytes)
    end
  in
  let ev =
    Depfast.Event.rpc_completion ~label:(Printf.sprintf "rpc->%d" dst) ~peer:dst ()
  in
  let c = { call_id = id; call_dst = dst; ev; resp = None; done_ = false; release } in
  Hashtbl.replace t.calls id c;
  (* abandoning the event (e.g. enclosing quorum satisfied) frees the call *)
  Depfast.Event.on_abandon ev (fun () ->
      if not c.done_ then begin
        c.done_ <- true;
        release ()
      end);
  Net.send t.net ~units:bytes ~src:src_id ~dst (Req { id; body });
  c

let event c = c.ev
let response c = c.resp
let dst c = c.call_dst

let abandon c =
  if not c.done_ then begin
    c.done_ <- true;
    c.release ();
    Depfast.Event.abandon c.ev
  end

let broadcast t ~src ~dsts ~arity ?bytes ?(label = "broadcast") body =
  let q = Depfast.Event.quorum ~label arity in
  let calls = List.map (fun dst -> call t ~src ~dst ?bytes body) dsts in
  List.iter (fun c -> Depfast.Event.add q ~child:c.ev) calls;
  if t.discard_stragglers then
    Depfast.Event.on_fire q (fun () ->
        List.iter (fun c -> if not c.done_ then abandon c) calls);
  (q, calls)
