open Sim

type t = {
  node_id : int;
  base_latency : Time.span;
  fsync_latency : Time.span;
  bandwidth_mb_s : float;
  mutable bandwidth_factor : float;
  station : Station.t;
  mutable writes : int;
  mutable fsyncs : int;
}

let create sched ~node_id ?(base_latency = Time.us 80) ?(fsync_latency = Time.us 150)
    ?(bandwidth_mb_s = 200.0) () =
  {
    node_id;
    base_latency;
    fsync_latency;
    bandwidth_mb_s;
    bandwidth_factor = 1.0;
    station = Station.create sched ~servers:1 ~name:(Printf.sprintf "disk%d" node_id) ();
    writes = 0;
    fsyncs = 0;
  }

let bytes_per_us t = t.bandwidth_mb_s *. t.bandwidth_factor *. 1e6 /. 1e6
(* MB/s = bytes/us numerically *)

let transfer_time t bytes = Time.of_us_f (float_of_int bytes /. bytes_per_us t)

let io t ~label ~work =
  let event = Depfast.Event.disk_completion ~label ~node:t.node_id () in
  ignore (Station.submit t.station ~event ~work ());
  event

let write t ~bytes =
  t.writes <- t.writes + 1;
  io t ~label:"disk.write" ~work:(t.base_latency + transfer_time t bytes)

let read t ~bytes = io t ~label:"disk.read" ~work:(t.base_latency + transfer_time t bytes)

let fsync t =
  t.fsyncs <- t.fsyncs + 1;
  io t ~label:"disk.fsync" ~work:t.fsync_latency

let write_count t = t.writes
let fsync_count t = t.fsyncs

let reset_stats t =
  t.writes <- 0;
  t.fsyncs <- 0

let set_bandwidth_factor t f = t.bandwidth_factor <- f
let set_penalty t f = Station.set_penalty t.station f
let station t = t.station
