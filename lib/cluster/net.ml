open Sim

type 'msg endpoint = {
  node : Node.t;
  handler : src:int -> 'msg -> unit;
  mutable out : 'msg link option array;  (* outgoing links, indexed by dst id *)
}

(* One outbox per directed link: a FIFO ring of in-flight messages drained
   by a single reusable pump callback. This replaces the previous
   (src,dst)-keyed hashtable and the per-message delivery closure — steady
   state sends allocate nothing beyond the ring slots themselves. *)
and 'msg link = {
  link_src : int;
  link_dst : int;
  mutable ring : 'msg array;  (* lazily sized from the first message *)
  mutable times : Time.t array;  (* parallel: absolute arrival per slot *)
  mutable units : int array;  (* parallel: bytes-equivalent per slot *)
  mutable seqs : int array;  (* parallel: per-link send sequence number *)
  mutable head : int;
  mutable len : int;
  mutable next_seq : int;  (* send counter, for the FIFO sanitizer *)
  mutable last_seq : int;  (* last delivered seq; must strictly increase *)
  mutable last_arrival : Time.t;  (* FIFO clamp: arrivals strictly increase *)
  mutable armed : bool;  (* a pump callback is scheduled *)
  mutable pump : unit -> unit;  (* the one reusable delivery thunk *)
  mutable cpump : unit -> unit;  (* choice-mode: deliver exactly one *)
  mutable l_delivered : int;
  mutable l_dropped : int;
  mutable l_units : int;  (* units actually delivered *)
}

type stats = { delivered : int; dropped : int; units : int }

type 'msg t = {
  sched : Depfast.Sched.t;
  latency : Dist.t;
  rng : Rng.t;
  mutable eps : 'msg endpoint option array;  (* indexed by node id *)
  cuts : (int * int, unit) Hashtbl.t;
  mutable sorted_nodes : Node.t list;  (* cache, rebuilt on register *)
  mutable sorted_valid : bool;
  mutable delivered : int;
  mutable dropped : int;
  mutable units_total : int;
  mutable choice : bool;  (* delivery order is a chooser decision *)
  mutable on_violation : (string -> unit) option;  (* FIFO sanitizer *)
}

let no_arrival = Time.add Time.zero (-1)

let create sched ?(latency = Dist.Shifted (120.0, Dist.Exponential 30.0)) ?rng () =
  let rng =
    match rng with Some r -> r | None -> Engine.split_rng (Depfast.Sched.engine sched)
  in
  {
    sched;
    latency;
    rng;
    eps = Array.make 16 None;
    cuts = Hashtbl.create 4;
    sorted_nodes = [];
    sorted_valid = true;
    delivered = 0;
    dropped = 0;
    units_total = 0;
    choice = false;
    on_violation = None;
  }

let set_choice_mode t b = t.choice <- b
let choice_mode t = t.choice
let set_sanitizer t f = t.on_violation <- Some f

let grow_slots arr want =
  let cap = Array.length arr in
  if want < cap then arr
  else begin
    let next = Array.make (max (want + 1) (2 * cap)) None in
    Array.blit arr 0 next 0 cap;
    next
  end

let register t node ~handler =
  let id = Node.id node in
  t.eps <- grow_slots t.eps id;
  t.eps.(id) <- Some { node; handler; out = [||] };
  t.sorted_valid <- false

let ep_opt t id = if id < 0 || id >= Array.length t.eps then None else t.eps.(id)

let node t id =
  match ep_opt t id with Some ep -> ep.node | None -> raise Not_found

let nodes t =
  if not t.sorted_valid then begin
    let acc = ref [] in
    for i = Array.length t.eps - 1 downto 0 do
      match t.eps.(i) with Some ep -> acc := ep.node :: !acc | None -> ()
    done;
    t.sorted_nodes <- !acc;
    t.sorted_valid <- true
  end;
  t.sorted_nodes

let cut_key a b = if a < b then (a, b) else (b, a)
let partition t a b = Hashtbl.replace t.cuts (cut_key a b) ()
let heal t a b = Hashtbl.remove t.cuts (cut_key a b)
let partitioned t a b = Hashtbl.mem t.cuts (cut_key a b)

(* ---------- link outboxes ---------- *)

(* Deliver the head message: liveness and partitions are re-checked at
   arrival time, exactly as the per-message closures used to. *)
let deliver_head t link =
  let cap = Array.length link.ring in
  let slot = link.head in
  let msg = Array.unsafe_get link.ring slot in
  let u = Array.unsafe_get link.units slot in
  let sq = Array.unsafe_get link.seqs slot in
  link.head <- (slot + 1) mod cap;
  link.len <- link.len - 1;
  (* per-link FIFO invariant: delivered send-sequence numbers strictly
     increase (drops leave gaps; reordering would be an engine bug) *)
  (match t.on_violation with
  | Some report when sq <= link.last_seq ->
    report
      (Printf.sprintf "net: link %d->%d delivered seq %d after seq %d (FIFO violation)"
         link.link_src link.link_dst sq link.last_seq)
  | _ -> ());
  link.last_seq <- sq;
  match ep_opt t link.link_dst with
  | Some dep when Node.alive dep.node && not (partitioned t link.link_src link.link_dst)
    ->
    link.l_delivered <- link.l_delivered + 1;
    link.l_units <- link.l_units + u;
    t.delivered <- t.delivered + 1;
    t.units_total <- t.units_total + u;
    dep.handler ~src:link.link_src msg
  | Some _ | None ->
    link.l_dropped <- link.l_dropped + 1;
    t.dropped <- t.dropped + 1

let arm t link =
  link.armed <- true;
  let engine = Depfast.Sched.engine t.sched in
  if t.choice then
    (* delivery order across links is a chooser decision: one enabled
       transition per non-empty link, delivering exactly the head *)
    Engine.post_tag engine (Engine.Link (link.link_src, link.link_dst)) link.cpump
  else begin
    let delay = Time.diff link.times.(link.head) (Engine.now engine) in
    ignore
      (Engine.schedule_tag engine ~delay
         (Engine.Link (link.link_src, link.link_dst))
         link.pump)
  end

let rec pump t link () =
  link.armed <- false;
  if link.len > 0 then begin
    let now = Engine.now (Depfast.Sched.engine t.sched) in
    (* arrivals on a link are strictly increasing, so this normally
       delivers exactly the head *)
    while link.len > 0 && link.times.(link.head) <= now do
      deliver_head t link
    done;
    if link.len > 0 && not link.armed then arm t link
  end

(* choice-mode pump: deliver exactly one message, then re-arm — each
   delivery is its own transition, so the explorer can interleave other
   links' (and coroutines') work between any two deliveries *)
and choice_pump t link () =
  link.armed <- false;
  if link.len > 0 then begin
    deliver_head t link;
    if link.len > 0 && not link.armed then arm t link
  end

and make_link t ~src ~dst =
  let link =
    {
      link_src = src;
      link_dst = dst;
      ring = [||];
      times = [||];
      units = [||];
      seqs = [||];
      head = 0;
      len = 0;
      next_seq = 0;
      last_seq = -1;
      last_arrival = no_arrival;
      armed = false;
      pump = ignore;
      cpump = ignore;
      l_delivered = 0;
      l_dropped = 0;
      l_units = 0;
    }
  in
  link.pump <- pump t link;
  link.cpump <- choice_pump t link;
  link

let link_for t sep ~src ~dst =
  if dst >= Array.length sep.out then begin
    let next = Array.make (max (dst + 1) (2 * max 4 (Array.length sep.out))) None in
    Array.blit sep.out 0 next 0 (Array.length sep.out);
    sep.out <- next
  end;
  match sep.out.(dst) with
  | Some l -> l
  | None ->
    let l = make_link t ~src ~dst in
    sep.out.(dst) <- Some l;
    l

let ensure_room link msg =
  let cap = Array.length link.ring in
  if cap = 0 then begin
    link.ring <- Array.make 8 msg;
    link.times <- Array.make 8 Time.zero;
    link.units <- Array.make 8 0;
    link.seqs <- Array.make 8 0
  end
  else if link.len = cap then begin
    let ring = Array.make (2 * cap) msg in
    let times = Array.make (2 * cap) Time.zero in
    let units = Array.make (2 * cap) 0 in
    let seqs = Array.make (2 * cap) 0 in
    for i = 0 to link.len - 1 do
      let slot = (link.head + i) mod cap in
      ring.(i) <- link.ring.(slot);
      times.(i) <- link.times.(slot);
      units.(i) <- link.units.(slot);
      seqs.(i) <- link.seqs.(slot)
    done;
    link.ring <- ring;
    link.times <- times;
    link.units <- units;
    link.seqs <- seqs;
    link.head <- 0
  end

let enqueue t link msg ~units ~arrival =
  ensure_room link msg;
  let cap = Array.length link.ring in
  let slot = (link.head + link.len) mod cap in
  Array.unsafe_set link.ring slot msg;
  Array.unsafe_set link.times slot arrival;
  Array.unsafe_set link.units slot units;
  Array.unsafe_set link.seqs slot link.next_seq;
  link.next_seq <- link.next_seq + 1;
  link.len <- link.len + 1;
  if not link.armed then arm t link

let send t ?(units = 0) ~src ~dst msg =
  match (ep_opt t src, ep_opt t dst) with
  | Some sep, Some dep ->
    let link = link_for t sep ~src ~dst in
    if (not (Node.alive sep.node)) || partitioned t src dst then begin
      link.l_dropped <- link.l_dropped + 1;
      t.dropped <- t.dropped + 1
    end
    else if t.choice then
      (* explore mode abstracts latency: the message is in flight now and
         the chooser decides when (relative to everything else) it lands *)
      enqueue t link msg ~units
        ~arrival:(Engine.now (Depfast.Sched.engine t.sched))
    else begin
      let delay =
        Dist.sample_span t.rng t.latency
        + Node.nic_delay sep.node + Node.nic_delay dep.node
      in
      (* links are TCP-like: delivery on a directed link is FIFO, so a
         message never overtakes an earlier one *)
      let engine = Depfast.Sched.engine t.sched in
      let arrival = Time.add (Engine.now engine) delay in
      let arrival =
        if link.last_arrival >= arrival then Time.add link.last_arrival 1
        else arrival
      in
      link.last_arrival <- arrival;
      enqueue t link msg ~units ~arrival
    end
  | _ -> t.dropped <- t.dropped + 1

let delivered_count t = t.delivered
let dropped_count t = t.dropped
let totals t = { delivered = t.delivered; dropped = t.dropped; units = t.units_total }

let stats t ~src ~dst =
  match ep_opt t src with
  | Some sep when dst < Array.length sep.out -> (
    match sep.out.(dst) with
    | Some l -> { delivered = l.l_delivered; dropped = l.l_dropped; units = l.l_units }
    | None -> { delivered = 0; dropped = 0; units = 0 })
  | _ -> { delivered = 0; dropped = 0; units = 0 }
