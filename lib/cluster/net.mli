(** The simulated datacenter network.

    Point-to-point message delivery with per-pair latency sampled from a
    distribution, plus each endpoint's NIC delay (the `tc netem` fault adds
    400 ms there). Supports partitions. Messages to or from dead or
    partitioned nodes are silently dropped — as on a real network, senders
    learn nothing.

    Endpoints live in a direct array indexed by node id, and each directed
    link owns a pooled outbox: a FIFO ring of in-flight messages drained by
    one reusable delivery callback, so steady-state sends allocate no
    per-message closure. *)

type 'msg t

type stats = { delivered : int; dropped : int; units : int }
(** [units] is the caller-supplied bytes-equivalent accounting (see
    {!send}) summed over delivered messages. *)

val create :
  Depfast.Sched.t ->
  ?latency:Sim.Dist.t ->
  ?rng:Sim.Rng.t ->
  unit ->
  'msg t
(** [latency] is the one-way delay in microseconds; default
    [Shifted (120, Exponential 30)] — a ~150 us same-AZ RTT/2. *)

val register : 'msg t -> Node.t -> handler:(src:int -> 'msg -> unit) -> unit
(** Attach a node and its delivery handler. The handler runs as an engine
    callback (not a coroutine); it should hand off to coroutines quickly. *)

val node : 'msg t -> int -> Node.t
(** @raise Not_found for unknown ids. *)

val nodes : 'msg t -> Node.t list
(** Registered nodes in id order. The sorted list is cached and only
    rebuilt after a {!register}. *)

val send : 'msg t -> ?units:int -> src:int -> dst:int -> 'msg -> unit
(** Fire-and-forget. Sampled delay = latency + src NIC + dst NIC. Dropped if
    either end is dead or the pair is partitioned (checked at delivery time
    for dst, at send time for src). [units] (default 0) is an opaque
    bytes-equivalent weight accumulated into {!stats} on delivery. *)

val partition : 'msg t -> int -> int -> unit
(** Cut both directions between two nodes. *)

val heal : 'msg t -> int -> int -> unit

val partitioned : 'msg t -> int -> int -> bool

val delivered_count : 'msg t -> int

val dropped_count : 'msg t -> int

val totals : 'msg t -> stats
(** Network-wide delivery counters. *)

val stats : 'msg t -> src:int -> dst:int -> stats
(** Counters for one directed link; all-zero if the link never carried a
    message. *)

(** {2 Schedule exploration} *)

val set_choice_mode : 'msg t -> bool -> unit
(** In choice mode the network stops sampling latency: a sent message is in
    flight immediately and each non-empty directed link posts exactly one
    delivery transition (tagged [Engine.Link (src, dst)]) at a time, so the
    engine's chooser decides the interleaving of deliveries across links —
    while per-link FIFO order is preserved. Flip before any traffic flows;
    intended for the schedule-space checker's per-run engines. *)

val choice_mode : 'msg t -> bool

val set_sanitizer : 'msg t -> (string -> unit) -> unit
(** Install a violation reporter. The network self-checks the per-link FIFO
    invariant at every delivery (send-sequence numbers strictly increase on
    each directed link) and reports a description on violation. *)
