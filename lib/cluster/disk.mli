(** Per-node disk model.

    A single-spindle FIFO station. A write costs a base access latency plus
    transfer time at the current bandwidth; [fsync] additionally pays a
    flush latency. The disk-slow fault scales bandwidth down (cgroup blkio
    throttle); disk contention is a competing write stream submitted to the
    same station, so the victim's writes queue behind it. *)

type t

val create :
  Depfast.Sched.t ->
  node_id:int ->
  ?base_latency:Sim.Time.span ->
  ?fsync_latency:Sim.Time.span ->
  ?bandwidth_mb_s:float ->
  unit ->
  t
(** Defaults model a cloud SSD: 80 us access, 150 us fsync, 200 MB/s. *)

val write : t -> bytes:int -> Depfast.Event.t
(** Completion event (kind [Disk]) for a buffered write of [bytes]. *)

val fsync : t -> Depfast.Event.t
(** Completion event for a flush. (The WAL issues write + fsync.) *)

val read : t -> bytes:int -> Depfast.Event.t
(** Completion event for reading [bytes] (same cost model as writes; used by
    the TiDB-like baseline when the entry cache misses). *)

val set_bandwidth_factor : t -> float -> unit
(** Scale effective bandwidth by this factor (e.g. 0.05 = blkio-limited). *)

val set_penalty : t -> (unit -> float) -> unit
(** Memory-pressure hook (see {!Memory.penalty}). *)

val station : t -> Station.t
(** The underlying station — exposed so the contention fault injector can
    submit a competing write stream. *)

val bytes_per_us : t -> float
(** Effective transfer rate, after the bandwidth factor. *)

val write_count : t -> int
(** Writes submitted since creation (or the last {!reset_stats}). *)

val fsync_count : t -> int
(** Fsyncs submitted since creation (or the last {!reset_stats}). With
    group commit on, the leader's fsyncs-per-committed-op drops below 1 —
    the benchmark reports this ratio. *)

val reset_stats : t -> unit
(** Zero the write/fsync counters (the workload driver calls this at the
    warmup boundary so the ratio covers the measurement window only). *)
