(** Results of one benchmark run: the three quantities in every figure of
    the paper (throughput, average latency, P99 latency), plus diagnostics. *)

type t = {
  duration : Sim.Time.span;  (** measurement window *)
  completed : int;
  failed : int;
  shed : int;  (** ops rejected fail-fast at admission (not failures) *)
  latency : Sim.Hist.t;  (** successful ops completing in the window *)
  leader_utilization : float;  (** leader CPU over the window, 0..1 *)
  leader_crashed : bool;
  leader_fsyncs : int;  (** leader-disk fsyncs over the window *)
}

val throughput : t -> float
(** Successful operations per second. *)

val mean_latency_ms : t -> float
val p99_latency_ms : t -> float
val p50_latency_ms : t -> float

val shed_rate : t -> float
(** Shed fraction of the offered load ([shed / (completed+failed+shed)]). *)

val fsyncs_per_op : t -> float
(** Leader fsyncs per completed op — below 1 means group commit is
    amortizing durability across batched commands. *)

val merge : t list -> t
(** Aggregate per-domain (per-shard) reports into one: counters and
    fsyncs sum, latency histograms merge exactly ({!Sim.Hist.merge} is
    bucket-wise, so merging equals re-recording the concatenated
    samples), [duration] is the longest window (shards run
    concurrently), utilization is weighted by completed ops, and
    [leader_crashed] is true if any shard's leader crashed. *)

val normalize : t -> baseline:t -> float * float * float
(** [(throughput, mean latency, p99 latency)] of [t] relative to
    [baseline] — the Figure 1 normalization. *)

val pp : Format.formatter -> t -> unit
