open Sim

type outcome = Committed | Failed | Shed

type client = { node : Cluster.Node.t; run_op : Ycsb.op -> outcome }

let run sched ~clients ~workload ~warmup ~duration ?leader_node () =
  let engine = Depfast.Sched.engine sched in
  let t_start = Engine.now engine in
  let measure_from = Time.add t_start warmup in
  let t_end = Time.add measure_from duration in
  let hist = Hist.create () in
  let completed = ref 0 in
  let failed = ref 0 in
  let shed = ref 0 in
  (* one zipfian memo per run, shared by this run's clients only *)
  let memo = Ycsb.make_memo () in
  List.iter
    (fun c ->
      let gen = Ycsb.make_gen ~memo workload (Engine.split_rng engine) in
      Cluster.Node.spawn c.node ~name:"ycsb-client" (fun () ->
          let rec loop () =
            if Engine.now engine < t_end && Cluster.Node.alive c.node then begin
              let op = Ycsb.next_op gen in
              let t0 = Engine.now engine in
              let outcome = c.run_op op in
              let t1 = Engine.now engine in
              (* count only ops that ran entirely inside the window: an op
                 started during warmup but completing after [measure_from]
                 would otherwise be recorded with warmup-inflated latency *)
              if t0 >= measure_from && t1 < t_end then
                (match outcome with
                | Committed ->
                  incr completed;
                  Hist.add hist (Time.diff t1 t0)
                | Failed -> incr failed
                (* a shed op never entered the system — it is neither
                   goodput nor a failure of the replication path, so it
                   gets its own counter *)
                | Shed -> incr shed);
              loop ()
            end
          in
          loop ()))
    clients;
  (* reset the leader's CPU and disk windows at the start of measurement *)
  (match leader_node with
  | Some n ->
    ignore
      (Engine.schedule_at engine ~time:measure_from (fun () ->
           Cluster.Station.reset_stats (Cluster.Node.cpu n);
           Cluster.Disk.reset_stats (Cluster.Node.disk n)))
  | None -> ());
  Engine.run ~until:t_end engine;
  let leader_utilization, leader_crashed, leader_fsyncs =
    match leader_node with
    | Some n ->
      ( Cluster.Station.utilization (Cluster.Node.cpu n),
        not (Cluster.Node.alive n),
        Cluster.Disk.fsync_count (Cluster.Node.disk n) )
    | None -> (0.0, false, 0)
  in
  {
    Metrics.duration = duration;
    completed = !completed;
    failed = !failed;
    shed = !shed;
    latency = hist;
    leader_utilization;
    leader_crashed;
    leader_fsyncs;
  }
