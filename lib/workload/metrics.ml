type t = {
  duration : Sim.Time.span;
  completed : int;
  failed : int;
  shed : int;
  latency : Sim.Hist.t;
  leader_utilization : float;
  leader_crashed : bool;
  leader_fsyncs : int;
}

let throughput t =
  if t.duration <= 0 then 0.0
  else float_of_int t.completed /. Sim.Time.to_sec_f t.duration

let mean_latency_ms t = Sim.Hist.mean t.latency /. 1000.0
let p99_latency_ms t = Sim.Time.to_ms_f (Sim.Hist.p99 t.latency)
let p50_latency_ms t = Sim.Time.to_ms_f (Sim.Hist.p50 t.latency)

let shed_rate t =
  let offered = t.completed + t.failed + t.shed in
  if offered = 0 then 0.0 else float_of_int t.shed /. float_of_int offered

let fsyncs_per_op t =
  if t.completed = 0 then 0.0
  else float_of_int t.leader_fsyncs /. float_of_int t.completed

(* Cross-domain aggregation: one report for a workload whose shards ran
   on separate domains. Counters sum; histograms merge exactly
   (bucket-wise, [Hist.merge]); the window is the longest shard window
   (shards run concurrently, not back to back); utilization is weighted
   by completed ops so idle shards don't dilute a hot leader. *)
let merge = function
  | [] ->
    {
      duration = 0;
      completed = 0;
      failed = 0;
      shed = 0;
      latency = Sim.Hist.create ();
      leader_utilization = 0.0;
      leader_crashed = false;
      leader_fsyncs = 0;
    }
  | first :: rest as all ->
    let total = List.fold_left (fun a m -> a + m.completed) 0 all in
    let weighted =
      List.fold_left
        (fun a m -> a +. (m.leader_utilization *. float_of_int m.completed))
        0.0 all
    in
    List.fold_left
      (fun acc m ->
        {
          duration = max acc.duration m.duration;
          completed = acc.completed + m.completed;
          failed = acc.failed + m.failed;
          shed = acc.shed + m.shed;
          latency = Sim.Hist.merge acc.latency m.latency;
          leader_utilization =
            (if total = 0 then 0.0 else weighted /. float_of_int total);
          leader_crashed = acc.leader_crashed || m.leader_crashed;
          leader_fsyncs = acc.leader_fsyncs + m.leader_fsyncs;
        })
      first rest

let ratio a b = if b = 0.0 then 0.0 else a /. b

let normalize t ~baseline =
  ( ratio (throughput t) (throughput baseline),
    ratio (mean_latency_ms t) (mean_latency_ms baseline),
    ratio (p99_latency_ms t) (p99_latency_ms baseline) )

let pp fmt t =
  Format.fprintf fmt
    "%.0f ops/s, avg %.2f ms, p99 %.2f ms (%d ok, %d failed, %d shed, leader cpu %.0f%%%s)"
    (throughput t) (mean_latency_ms t) (p99_latency_ms t) t.completed t.failed
    t.shed
    (100.0 *. t.leader_utilization)
    (if t.leader_crashed then ", LEADER CRASHED" else "")
