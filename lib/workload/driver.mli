(** Closed-loop benchmark driver (§2.1 methodology).

    Spawns one coroutine per client; each repeatedly draws an operation from
    the workload, executes it through the system under test, and records the
    latency if the operation {e completes} inside the measurement window
    (after [warmup], before [warmup + duration]).

    The driver is implementation-agnostic: a system under test is a list of
    {!client} records — DepFastRaft and the three baselines all provide
    them. *)

type outcome =
  | Committed  (** applied through the log *)
  | Failed  (** retries exhausted (leader unreachable / no quorum) *)
  | Shed  (** rejected fail-fast at the leader's bounded admission queue *)

type client = {
  node : Cluster.Node.t;  (** where the client coroutine runs *)
  run_op : Ycsb.op -> outcome;  (** blocking *)
}

val run :
  Depfast.Sched.t ->
  clients:client list ->
  workload:Ycsb.t ->
  warmup:Sim.Time.span ->
  duration:Sim.Time.span ->
  ?leader_node:Cluster.Node.t ->
  unit ->
  Metrics.t
(** Drives the engine itself (run this from outside any coroutine, after
    the cluster has a leader). [leader_node] enables CPU-utilization, crash,
    and fsync-count reporting in the metrics; its CPU and disk counters are
    reset at the warmup boundary so both cover the measurement window only.
    Shed ops are counted separately from completed and failed — they never
    entered the replication path. *)
