(** YCSB-style workload generation (§2.1).

    The paper drives each system with the YCSB write workload, updating
    500K records, from 256–1200 concurrent closed-loop clients. Keys follow
    YCSB's zipfian request distribution; values are fixed-size blobs. *)

type t = {
  record_count : int;
  value_size : int;
  read_proportion : float;  (** 0.0 = pure updates (the paper's setting) *)
  zipf_theta : float;  (** YCSB default 0.99 *)
}

val update_heavy : t
(** The paper's workload: 100% updates over 500K records, 1 KiB values. *)

val scaled : ?records:int -> ?value_size:int -> t -> t
(** Shrink a workload for quick tests. *)

type op =
  | Update of { key : string; value : string }
  | Read of { key : string }

val key_of_rank : t -> int -> string
(** YCSB-style key name for a record rank, e.g. ["user3342"]. *)

type gen
(** Per-client operation generator (owns its RNG stream). *)

type memo
(** Caller-scoped cache for the O(record_count) zipfian constants —
    create one per run and pass it to every [make_gen] of that run. A
    module-level table here would be cross-domain mutable state (the
    depfast-domains pass's [unsafe-shared] verdict). *)

val make_memo : unit -> memo

val make_gen : ?memo:memo -> t -> Sim.Rng.t -> gen
(** Without [?memo] the zipfian constants are computed fresh. *)

val next_op : gen -> op
