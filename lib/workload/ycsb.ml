type t = {
  record_count : int;
  value_size : int;
  read_proportion : float;
  zipf_theta : float;
}

let update_heavy =
  { record_count = 500_000; value_size = 1024; read_proportion = 0.0; zipf_theta = 0.99 }

let scaled ?records ?value_size t =
  {
    t with
    record_count = Option.value ~default:t.record_count records;
    value_size = Option.value ~default:t.value_size value_size;
  }

type op = Update of { key : string; value : string } | Read of { key : string }

let key_of_rank _ rank = "user" ^ string_of_int rank

type gen = { wl : t; rng : Sim.Rng.t; zipf : Sim.Rng.t -> int; value_pool : string array }

(* The zipfian constants cost O(record_count) to compute; a memo shares
   them across the hundreds of client generators of one run. The memo is
   caller-scoped (one per driver run) rather than a module-level table:
   a shared global here would be cross-domain mutable state — exactly
   what the depfast-domains pass flags as unsafe-shared. *)
type memo = (int * float, Sim.Rng.t -> int) Hashtbl.t

let make_memo () : memo = Hashtbl.create 8

let make_gen ?memo wl rng =
  let key = (wl.record_count, wl.zipf_theta) in
  let fresh () = Sim.Dist.make_zipfian ~n:wl.record_count ~theta:wl.zipf_theta in
  let zipf =
    match memo with
    | None -> fresh ()
    | Some m -> (
      match Hashtbl.find_opt m key with
      | Some z -> z
      | None ->
        let z = fresh () in
        Hashtbl.replace m key z;
        z)
  in
  (* a small pool of pre-built values: contents are irrelevant to the
     simulation, size drives the cost model *)
  let value_pool =
    Array.init 8 (fun i -> String.make wl.value_size (Char.chr (Char.code 'a' + i)))
  in
  { wl; rng; zipf; value_pool }

let next_op g =
  let rank = g.zipf g.rng in
  let key = key_of_rank g.wl rank in
  if Sim.Rng.unit_float g.rng < g.wl.read_proportion then Read { key }
  else Update { key; value = g.value_pool.(Sim.Rng.int g.rng (Array.length g.value_pool)) }
