(** The TiDB-like baseline: single-threaded raftstore with an EntryCache.

    Reproduces the root cause the paper diagnosed (§2.2, confirmed by the
    developers): the raftstore runs {e one thread per data region}; when a
    fail-slow follower falls behind the in-memory EntryCache window, message
    preparation for that peer must re-read the evicted entries from disk —
    {e synchronously, on that one thread} — stalling batching, WAL writes
    and sends for every other request of the region. The commit rule itself
    is a healthy majority (acks advance the commit index as they arrive);
    the stall is purely an implementation artifact.

    Concretely here:
    - all leader-side raft work (batching, append, WAL, message prep,
      sends) happens in one [raftstore] coroutine;
    - the EntryCache holds the most recent [cache_size] entries; while any
      follower's [next_index] is below the window, each loop iteration pays
      a blocking {!Cluster.Disk.read} of the catch-up range (message
      preparation re-fetches from log storage every ready-cycle);
    - the WAL write is awaited inside the loop (TiDB syncs raft log in the
      store loop);
    - acks are processed as they arrive and advance the commit index; the
      applier completes client requests. *)

open Raft.Types

type t = {
  base : Common.base;
  mutable cache_size : int;
  catchup_max : int;
  next_index : (int, index) Hashtbl.t;
  match_index : (int, index) Hashtbl.t;
  inflight : (int, bool) Hashtbl.t;
  mutable blocked_disk_reads : int;  (** stat: synchronous cache-miss reads *)
}

let entry_size_estimate = 1100

(* ---------- follower ---------- *)

let handle_append_entries b ~prev_index ~entries ~commit =
  (* the replication stream is processed serially, in delivery order *)
  Depfast.Mutex.with_lock b.Common.sched b.Common.append_mu (fun () ->
      let cfg = b.Common.cfg in
      (* depfast-lint: allow lock-across-call — deliberate baseline defect:
         per-entry CPU work runs inside the append lock *)
      Cluster.Node.cpu_work b.Common.node
        (cfg.Raft.Config.cost_follower_fixed
        + (Array.length entries * cfg.Raft.Config.cost_follower_entry));
      if prev_index > Raft.Rlog.last_index b.Common.rlog then
        Append_resp
          { term = 1; success = false; match_index = Raft.Rlog.last_index b.Common.rlog }
      else begin
        Common.follower_append_a b entries;
        if Array.length entries > 0 then
          (* depfast-lint: allow lock-across-wait red-exposure — deliberate
             baseline defect: raftstore holds the region lock across WAL
             fsync, fate-sharing every contender with the local disk *)
          Depfast.Sched.wait b.Common.sched
            (Common.wal_append b ~bytes:(Common.wal_bytes_a b entries));
        Common.set_commit b commit;
        Append_resp
          { term = 1; success = true; match_index = Raft.Rlog.last_index b.Common.rlog }
      end)

(* ---------- leader raftstore thread ---------- *)

let advance_commit t =
  let b = t.base in
  let matches =
    Raft.Rlog.last_index b.Common.rlog
    :: List.map (fun f -> Hashtbl.find t.match_index f) b.Common.peers
  in
  let sorted = List.sort (fun a b -> compare b a) matches in
  Common.set_commit b (List.nth sorted (Raft.Config.majority b.Common.n_voters - 1))

let process_ack t f call =
  Hashtbl.replace t.inflight f false;
  Common.cpu_charge t.base t.base.Common.cfg.Raft.Config.cost_ack_process;
  (match Cluster.Rpc.response call with
  | Some (Append_resp { success; match_index; _ }) ->
    if success then begin
      Hashtbl.replace t.match_index f (max match_index (Hashtbl.find t.match_index f));
      Hashtbl.replace t.next_index f (Hashtbl.find t.match_index f + 1);
      advance_commit t
    end
    else Hashtbl.replace t.next_index f (match_index + 1)
  | Some _ | None -> ());
  (* wake the store loop: it may have sends to refill *)
  Depfast.Condvar.broadcast t.base.Common.work_cv

(* prepare and (if the peer has no message in flight) send one
   AppendEntries; cache misses block the store loop on a disk read *)
let prep_and_send t f =
  let b = t.base in
  let cfg = b.Common.cfg in
  let from = Hashtbl.find t.next_index f in
  let last = Raft.Rlog.last_index b.Common.rlog in
  if from <= last then begin
    let cache_start = max 1 (last - t.cache_size + 1) in
    let evicted = from < cache_start in
    let stop =
      if evicted then min last (from + t.catchup_max - 1)
      else min last (from + cfg.Raft.Config.batch_max - 1)
    in
    if evicted then begin
      (* EntryCache miss: message preparation re-reads the evicted range
         from disk, blocking the whole region thread (the bug) *)
      t.blocked_disk_reads <- t.blocked_disk_reads + 1;
      let bytes = (stop - from + 1) * entry_size_estimate in
      (* depfast-lint: allow red-wait red-exposure — deliberate baseline
         defect: the TiDB EntryCache miss blocks message prep on a disk
         read (§2) *)
      Depfast.Sched.wait b.Common.sched
        (Cluster.Disk.read (Cluster.Node.disk b.Common.node) ~bytes)
    end;
    if not (Hashtbl.find t.inflight f) then begin
      let entries = Raft.Rlog.slice_array b.Common.rlog ~from ~max:(stop - from + 1) in
      Cluster.Node.cpu_work b.Common.node
        (cfg.Raft.Config.cost_per_follower
        + (Array.length entries * cfg.Raft.Config.cost_send_entry));
      Hashtbl.replace t.inflight f true;
      let call =
        Cluster.Rpc.call b.Common.rpc ~src:b.Common.node ~dst:f
          ~bytes:(256 + entries_bytes_a entries)
          (Append_entries
             {
               term = 1;
               leader = Cluster.Node.id b.Common.node;
               prev_index = from - 1;
               prev_term = 1;
               (* baselines ship a copied batch, wrapped as an owned view *)
               entries = view_of_array entries;
               commit = b.Common.commit_index;
             })
      in
      Depfast.Event.on_fire (Cluster.Rpc.event call) (fun () -> process_ack t f call)
    end
  end

let raftstore_loop t =
  let b = t.base in
  let cfg = b.Common.cfg in
  let needs_send () =
    List.exists
      (fun f ->
        Hashtbl.find t.next_index f <= Raft.Rlog.last_index b.Common.rlog
        && not (Hashtbl.find t.inflight f))
      b.Common.peers
  in
  let rec loop () =
    if Common.alive b then begin
      if Queue.is_empty b.Common.pending_q && not (needs_send ()) then
        ignore
          (Depfast.Condvar.wait_timeout b.Common.sched b.Common.work_cv
             cfg.Raft.Config.group_commit_window);
      let batch = Common.take_batch b cfg.Raft.Config.batch_max in
      let entries = Common.append_batch b batch in
      let n = List.length entries in
      if n > 0 then begin
        Cluster.Node.cpu_work b.Common.node
          (cfg.Raft.Config.cost_round_fixed + (n * cfg.Raft.Config.cost_marshal_entry));
        (* raft log sync happens in the store loop, synchronously;
           depfast-lint: allow red-exposure — own-WAL durability wait *)
        Depfast.Sched.wait b.Common.sched
          (Common.wal_append b ~bytes:(Common.wal_bytes b entries))
      end;
      List.iter (fun f -> prep_and_send t f) b.Common.peers;
      loop ()
    end
  in
  loop ()

(* ---------- construction ---------- *)

type cluster = { t : t; bases : Common.base list; rpc : Common.rpc }

let handle t b ~src:_ req =
  match req with
  | Client_request { cmd; client_id; seq } ->
    Some (Common.handle_client_request b ~cmd ~client_id ~seq)
  | Append_entries { prev_index; entries; commit; _ } -> (
    match view_materialize entries with
    | None -> None
    | Some entries -> Some (handle_append_entries b ~prev_index ~entries ~commit))
  | Request_vote _ | Pull_oplog _ | Update_position _ | Transfer_leadership _
  | Timeout_now ->
    ignore t;
    Some Ack

let create sched ~n ?(cfg = Raft.Config.default) () =
  let rpc, nodes = Common.make_cluster sched ~n () in
  let ids = List.map Cluster.Node.id nodes in
  let bases =
    List.map
      (fun node ->
        let peers = List.filter (fun p -> p <> Cluster.Node.id node) ids in
        Common.make_base rpc node ~peers ~leader_id:0 ~cfg)
      nodes
  in
  let leader_base = List.hd bases in
  let t =
    {
      base = leader_base;
      cache_size = 2048;
      catchup_max = 512;
      next_index = Hashtbl.create 8;
      match_index = Hashtbl.create 8;
      inflight = Hashtbl.create 8;
      blocked_disk_reads = 0;
    }
  in
  List.iter
    (fun f ->
      Hashtbl.replace t.next_index f 1;
      Hashtbl.replace t.match_index f 0;
      Hashtbl.replace t.inflight f false)
    leader_base.Common.peers;
  List.iter
    (fun b ->
      Cluster.Rpc.serve rpc ~node:b.Common.node ~handler:(fun ~src req ->
          handle t b ~src req);
      Common.start_common b)
    bases;
  Cluster.Node.spawn leader_base.Common.node ~name:"raftstore" (fun () ->
      raftstore_loop t);
  { t; bases; rpc }

let sut c ~cfg =
  let leader = List.hd c.bases and followers = List.tl c.bases in
  {
    Workload.Sut.name = "TiDB-like";
    leader_node = leader.Common.node;
    follower_nodes = List.map (fun b -> b.Common.node) followers;
    make_clients =
      (fun ~count ->
        Common.make_clients c.rpc ~sched:leader.Common.sched
          ~server_ids:(List.map (fun b -> Cluster.Node.id b.Common.node) c.bases)
          ~cfg ~count);
  }

let blocked_disk_reads c = c.t.blocked_disk_reads
let match_of c f = Hashtbl.find c.t.match_index f
let leader_log_len c = Raft.Rlog.last_index c.t.base.Common.rlog

(** Ablation knob: a cache large enough never to evict removes the blocking
    disk reads (and with them, most of the fail-slow propagation). *)
let set_cache_size c size = c.t.cache_size <- size
