(** Shared plumbing for the three baseline RSM implementations.

    The baselines reproduce the paper's §2 measurement subjects at the level
    that matters: the {e implementation patterns} that break fail-slow
    tolerance. They share the protocol types, log, state machine, and client
    with DepFastRaft, and they run steady-state with a fixed leader (node 0)
    — the paper's Figure 1 experiments never change leaders; the one leader
    {e crash} it reports (RethinkDB under CPU faults) ends the run, which is
    exactly what the harness measures. *)

open Raft.Types

type rpc = (Raft.Types.req, Raft.Types.resp) Cluster.Rpc.t

type pending = {
  mutable p_ok : bool;
  mutable p_value : string option;
  p_done : Depfast.Event.t;
}

type queued = { q_cmd : command; q_client : int; q_seq : int; q_pending : pending }

(** Per-server state common to all three baselines. *)
type base = {
  node : Cluster.Node.t;
  rpc : rpc;
  cfg : Raft.Config.t;
  sched : Depfast.Sched.t;
  peers : int list;
  n_voters : int;
  leader_id : int;
  rlog : Raft.Rlog.t;
  kv : Raft.Kv.t;
  mutable commit_index : index;
  mutable last_applied : index;
  pending_q : queued Queue.t;
  by_index : (index, pending) Hashtbl.t;
  work_cv : Depfast.Condvar.t;
  commit_cv : Depfast.Condvar.t;
  append_mu : Depfast.Mutex.t;
      (** serializes the follower's replication-stream processing, like a
          per-connection reader thread *)
  rng : Sim.Rng.t;
}

let make_base rpc node ~peers ~leader_id ~cfg =
  let sched = Cluster.Node.sched node in
  {
    node;
    rpc;
    cfg;
    sched;
    peers;
    n_voters = List.length peers + 1;
    leader_id;
    rlog = Raft.Rlog.create ();
    kv = Raft.Kv.create ();
    commit_index = 0;
    last_applied = 0;
    pending_q = Queue.create ();
    by_index = Hashtbl.create 256;
    work_cv = Depfast.Condvar.create ~label:"work" ();
    commit_cv = Depfast.Condvar.create ~label:"commit" ();
    append_mu = Depfast.Mutex.create ~label:"append" ();
    rng = Sim.Engine.split_rng (Depfast.Sched.engine sched);
  }

let now b = Depfast.Sched.now b.sched
let alive b = Cluster.Node.alive b.node
let is_leader b = Cluster.Node.id b.node = b.leader_id
let cpu_work b w = Cluster.Node.cpu_work b.node w
let cpu_charge b w = ignore (Cluster.Station.submit (Cluster.Node.cpu b.node) ~work:w ())

let wal_append b ~bytes =
  let disk = Cluster.Node.disk b.node in
  ignore (Cluster.Disk.write disk ~bytes);
  Cluster.Disk.fsync disk

let wal_bytes b entries =
  entries_bytes entries + (List.length entries * b.cfg.Raft.Config.wal_entry_overhead)

let wal_bytes_a b entries =
  entries_bytes_a entries + (Array.length entries * b.cfg.Raft.Config.wal_entry_overhead)

let enqueue b ~cmd ~client ~seq =
  let p =
    { p_ok = false; p_value = None; p_done = Depfast.Event.signal ~label:"committed" () }
  in
  (* depfast-lint: allow unbounded-growth — deliberate baseline defect: no
     admission control on the client->leader path; the only drain is a
     sibling replicator loop (ROADMAP: bounded backpressure) *)
  Queue.add { q_cmd = cmd; q_client = client; q_seq = seq; q_pending = p } b.pending_q;
  Depfast.Condvar.broadcast b.work_cv;
  p

let take_batch b max =
  let rec go acc k =
    if k = 0 || Queue.is_empty b.pending_q then List.rev acc
    else go (Queue.pop b.pending_q :: acc) (k - 1)
  in
  go [] max

(** Append a batch of queued commands to the leader log; returns entries. *)
let append_batch b batch =
  List.map
    (fun q ->
      let e =
        {
          term = 1;
          index = Raft.Rlog.last_index b.rlog + 1;
          cmd = q.q_cmd;
          client_id = q.q_client;
          seq = q.q_seq;
        }
      in
      (* depfast-lint: allow unbounded-growth — known-unbounded log: the
         baselines never truncate (ROADMAP: log compaction / snapshots) *)
      Raft.Rlog.append b.rlog e;
      Hashtbl.replace b.by_index e.index q.q_pending;
      e)
    batch

(** Follower-side idempotent log append (no term conflicts here: baselines
    run a single fixed leader). *)
let follower_append b entries =
  List.iter
    (fun e ->
      (* depfast-lint: allow unbounded-growth — known-unbounded log
         (ROADMAP: log compaction / snapshots) *)
      if e.index = Raft.Rlog.last_index b.rlog + 1 then Raft.Rlog.append b.rlog e)
    entries

let follower_append_a b entries =
  Array.iter
    (fun e ->
      (* depfast-lint: allow unbounded-growth — known-unbounded log
         (ROADMAP: log compaction / snapshots) *)
      if e.index = Raft.Rlog.last_index b.rlog + 1 then Raft.Rlog.append b.rlog e)
    entries

let applier_loop b =
  let rec loop () =
    if alive b then begin
      if b.last_applied < b.commit_index then begin
        let i = b.last_applied + 1 in
        match Raft.Rlog.get b.rlog i with
        | None -> assert false
        | Some e ->
          cpu_work b b.cfg.Raft.Config.cost_apply_entry;
          let value = Raft.Kv.apply b.kv e in
          b.last_applied <- i;
          (match Hashtbl.find_opt b.by_index i with
          | Some p ->
            Hashtbl.remove b.by_index i;
            p.p_value <- value;
            p.p_ok <- true;
            Depfast.Event.fire p.p_done
          | None -> ());
          loop ()
      end
      else begin
        (* depfast-lint: allow red-exposure — applier handoff signalled by
           the local commit path; no remote peer can stall this condvar *)
        Depfast.Condvar.wait b.sched b.commit_cv;
        loop ()
      end
    end
  in
  loop ()

let set_commit b idx =
  if idx > b.commit_index then begin
    b.commit_index <- min idx (Raft.Rlog.last_index b.rlog);
    Depfast.Condvar.broadcast b.commit_cv
  end

let handle_client_request b ~cmd ~client_id ~seq =
  let cfg = b.cfg in
  cpu_work b cfg.Raft.Config.cost_client_parse;
  if not (is_leader b) then
    Client_resp { ok = false; shed = false; leader_hint = Some b.leader_id; value = None }
  else begin
    let p = enqueue b ~cmd ~client:client_id ~seq in
    let outcome =
      Depfast.Sched.wait_timeout b.sched p.p_done cfg.Raft.Config.client_timeout
    in
    cpu_work b cfg.Raft.Config.cost_client_reply;
    match outcome with
    | Depfast.Sched.Ready ->
      Client_resp
        { ok = p.p_ok; shed = false; leader_hint = Some b.leader_id; value = p.p_value }
    | Depfast.Sched.Timed_out ->
      Client_resp { ok = false; shed = false; leader_hint = Some b.leader_id; value = None }
  end

let hiccup_loop b =
  let cfg = b.cfg in
  let cpu = Cluster.Node.cpu b.node in
  let rec loop () =
    if alive b then begin
      Depfast.Sched.sleep b.sched (Sim.Dist.sample_span b.rng cfg.Raft.Config.hiccup_interval);
      let duration =
        min (Sim.Time.ms 10) (Sim.Dist.sample_span b.rng cfg.Raft.Config.hiccup_duration)
      in
      Cluster.Station.set_speed cpu
        (Cluster.Station.speed cpu *. cfg.Raft.Config.hiccup_factor);
      Depfast.Sched.sleep b.sched duration;
      Cluster.Station.set_speed cpu
        (Cluster.Station.speed cpu /. cfg.Raft.Config.hiccup_factor);
      loop ()
    end
  in
  loop ()

let start_common b =
  Cluster.Node.spawn b.node ~name:"applier" (fun () -> applier_loop b);
  if b.cfg.Raft.Config.enable_hiccups then
    Cluster.Node.spawn b.node ~name:"hiccup" (fun () -> hiccup_loop b)

(** Build nodes + rpc for an [n]-server baseline cluster; returns
    [(rpc, nodes)] with node ids [0..n-1], names s1..sN. *)
let make_cluster sched ~n ?mem_soft_cap ?mem_hard_cap () =
  let rpc : rpc = Cluster.Rpc.create sched () in
  let nodes =
    List.init n (fun i ->
        Cluster.Node.create sched ~id:i ~name:(Printf.sprintf "s%d" (i + 1))
          ?mem_soft_cap ?mem_hard_cap ())
  in
  (rpc, nodes)

(** Clients for a baseline cluster (reusing the Raft client). *)
let make_clients rpc ~sched ~server_ids ~cfg ~count =
  let first = List.fold_left max 0 server_ids + 1 in
  List.init count (fun j ->
      let node =
        Cluster.Node.create sched ~id:(first + j) ~name:(Printf.sprintf "c%d" (j + 1)) ()
      in
      Cluster.Rpc.attach rpc node;
      let client = Raft.Client.create rpc node ~servers:server_ids ~cfg ~id:(first + j) () in
      {
        Workload.Driver.node;
        run_op =
          (fun op ->
            let outcome =
              match op with
              | Workload.Ycsb.Update { key; value } ->
                Raft.Client.submit client (Put { key; value })
              | Workload.Ycsb.Read { key } -> Raft.Client.submit client (Get { key })
            in
            match outcome with
            | Raft.Client.Committed _ -> Workload.Driver.Committed
            | Raft.Client.Shed -> Workload.Driver.Shed
            | Raft.Client.Failed -> Workload.Driver.Failed);
      })
