(** The MongoDB-like baseline: pull-based oplog replication with periodic
    majority-commit-point advancement.

    Replication is secondary-driven: each follower tails the leader's oplog
    with pull RPCs and reports progress with position updates. A
    [w:majority] write completes when the {e majority commit point} — which
    the leader recomputes on a fixed ticker, as the real system does on
    heartbeat/progress cadence — passes the write's index.

    Why this degrades under a fail-slow follower:
    - {e tail amplification} (§2.2's third root cause): with one follower
      slowed, the majority point is pinned to the {e one} remaining healthy
      follower, so every pull-cycle wobble, CPU hiccup, or fsync stall on
      that node lands directly on client latency — there is no second
      follower to hide it;
    - {e catch-up serving}: once the slow follower's position falls out of
      the leader's in-memory oplog window, serving its pulls means cold
      reads from the leader's storage engine and evicting hot cache pages.
      The reads share the leader's disk with the WAL, and the cache
      interference taxes the leader's CPU while the lag persists (modelled
      as a constant factor — DESIGN.md §5 documents this substitution). *)

open Raft.Types

type t = {
  base : Common.base;
  match_index : (int, index) Hashtbl.t;
  commit_tick : Sim.Time.span;
  pull_idle_delay : Sim.Time.span;
  oplog_window : int;  (** entries kept hot in the leader's cache *)
  catchup_max : int;  (** entries per catch-up pull *)
  cache_tax : float;  (** leader CPU factor while a secondary lags *)
  mutable lag_mode : bool;
  mutable cold_pulls : int;
}

(* ---------- leader ---------- *)

let entry_size_estimate = 1100

let handle_pull t b ~from =
  let cfg = b.Common.cfg in
  let last = Raft.Rlog.last_index b.Common.rlog in
  let cache_start = max 1 (last - t.oplog_window + 1) in
  let max_entries =
    if from < cache_start then begin
      (* cold pull: the range was evicted; read it back from storage,
         contending with the WAL on the same disk *)
      t.cold_pulls <- t.cold_pulls + 1;
      let stop = min last (from + t.catchup_max - 1) in
      let bytes = (stop - from + 1) * entry_size_estimate in
      (* depfast-lint: allow red-wait red-exposure — deliberate baseline
         defect: cold catch-up reads block on the data disk (§2's
         contention source) *)
      Depfast.Sched.wait b.Common.sched
        (Cluster.Disk.read (Cluster.Node.disk b.Common.node) ~bytes);
      t.catchup_max
    end
    else cfg.Raft.Config.batch_max
  in
  let entries = Raft.Rlog.slice b.Common.rlog ~from ~max:max_entries in
  Cluster.Node.cpu_work b.Common.node
    (cfg.Raft.Config.cost_per_follower
    + (List.length entries * cfg.Raft.Config.cost_send_entry));
  Oplog_resp
    {
      entries;
      prev_index = from - 1;
      prev_term = 1;
      commit = b.Common.commit_index;
    }

(* cache-interference watcher: while any secondary's reported position is
   outside the hot oplog window, the leader pays [cache_tax] on its CPU *)
let lag_watcher_loop t =
  let b = t.base in
  let cpu = Cluster.Node.cpu b.Common.node in
  let rec loop () =
    if Common.alive b then begin
      Depfast.Sched.sleep b.Common.sched (Sim.Time.ms 50);
      let last = Raft.Rlog.last_index b.Common.rlog in
      let lagging =
        List.exists
          (fun f ->
            let m = Option.value ~default:0 (Hashtbl.find_opt t.match_index f) in
            last - m > t.oplog_window)
          b.Common.peers
      in
      if lagging && not t.lag_mode then begin
        t.lag_mode <- true;
        Cluster.Station.set_speed cpu (Cluster.Station.speed cpu *. t.cache_tax)
      end
      else if (not lagging) && t.lag_mode then begin
        t.lag_mode <- false;
        Cluster.Station.set_speed cpu (Cluster.Station.speed cpu /. t.cache_tax)
      end;
      loop ()
    end
  in
  loop ()

let handle_position t ~follower ~match_index =
  Common.cpu_charge t.base t.base.Common.cfg.Raft.Config.cost_ack_process;
  (match Hashtbl.find_opt t.match_index follower with
  | Some old when match_index <= old -> ()
  | Some _ | None -> Hashtbl.replace t.match_index follower match_index);
  Ack

(* the ticker: recompute the majority commit point every [commit_tick] —
   client writes only complete when a tick advances past their index *)
let commit_ticker_loop t =
  let b = t.base in
  let rec loop () =
    if Common.alive b then begin
      Depfast.Sched.sleep b.Common.sched t.commit_tick;
      let matches =
        Raft.Rlog.last_index b.Common.rlog
        :: List.map
             (fun f -> Option.value ~default:0 (Hashtbl.find_opt t.match_index f))
             b.Common.peers
      in
      let sorted = List.sort (fun a b -> compare b a) matches in
      Common.set_commit b (List.nth sorted (Raft.Config.majority b.Common.n_voters - 1));
      loop ()
    end
  in
  loop ()

(* leader write path: batch, append, WAL; completion is the ticker's job *)
let oplog_writer_loop t =
  let b = t.base in
  let cfg = b.Common.cfg in
  let rec loop () =
    if Common.alive b then begin
      if Queue.is_empty b.Common.pending_q then
        ignore
          (Depfast.Condvar.wait_timeout b.Common.sched b.Common.work_cv
             cfg.Raft.Config.group_commit_window);
      let batch = Common.take_batch b cfg.Raft.Config.batch_max in
      let entries = Common.append_batch b batch in
      let n = List.length entries in
      if n > 0 then begin
        Cluster.Node.cpu_work b.Common.node
          (cfg.Raft.Config.cost_round_fixed + (n * cfg.Raft.Config.cost_marshal_entry));
        (* depfast-lint: allow red-exposure — own-oplog durability wait:
           the single writer loop serialises on its local disk by design *)
        Depfast.Sched.wait b.Common.sched
          (Common.wal_append b ~bytes:(Common.wal_bytes b entries))
      end;
      loop ()
    end
  in
  loop ()

(* ---------- follower ---------- *)

let puller_loop t b =
  let cfg = b.Common.cfg in
  let leader = b.Common.leader_id in
  let rec loop () =
    if Common.alive b then begin
      let from = Raft.Rlog.last_index b.Common.rlog + 1 in
      let call =
        Cluster.Rpc.call b.Common.rpc ~src:b.Common.node ~dst:leader
          (Pull_oplog { from; follower = Cluster.Node.id b.Common.node })
      in
      match
        (* depfast-lint: allow red-wait — pull replication: a follower tails
           exactly one sync source by design, so this wait is single-peer *)
        Depfast.Sched.wait_timeout b.Common.sched (Cluster.Rpc.event call)
          cfg.Raft.Config.rpc_timeout
      with
      | Depfast.Sched.Timed_out ->
        Cluster.Rpc.abandon call;
        loop ()
      | Depfast.Sched.Ready -> (
        match Cluster.Rpc.response call with
        | Some (Oplog_resp { entries; commit; _ }) ->
          let n = List.length entries in
          if n > 0 then begin
            Cluster.Node.cpu_work b.Common.node
              (cfg.Raft.Config.cost_follower_fixed
              + (n * cfg.Raft.Config.cost_follower_entry));
            Common.follower_append b entries;
            (* depfast-lint: allow red-exposure — follower persists pulled
               entries to its own WAL before acking; local disk only *)
            Depfast.Sched.wait b.Common.sched
              (Common.wal_append b ~bytes:(Common.wal_bytes b entries));
            Common.set_commit b commit;
            (* report progress *)
            ignore
              (Cluster.Rpc.call b.Common.rpc ~src:b.Common.node ~dst:leader
                 (Update_position
                    {
                      follower = Cluster.Node.id b.Common.node;
                      match_index = Raft.Rlog.last_index b.Common.rlog;
                      term = 1;
                    }))
          end
          else begin
            Common.set_commit b commit;
            Depfast.Sched.sleep b.Common.sched t.pull_idle_delay
          end;
          loop ()
        | Some _ | None -> loop ())
    end
  in
  loop ()

(* ---------- construction ---------- *)

type cluster = { t : t; bases : Common.base list; rpc : Common.rpc }

let handle t b ~src:_ req =
  match req with
  | Client_request { cmd; client_id; seq } ->
    Some (Common.handle_client_request b ~cmd ~client_id ~seq)
  | Pull_oplog { from; follower = _ } -> Some (handle_pull t b ~from)
  | Update_position { follower; match_index; term = _ } ->
    Some (handle_position t ~follower ~match_index)
  | Append_entries _ | Request_vote _ | Transfer_leadership _ | Timeout_now ->
    Some Ack

let create sched ~n ?(cfg = Raft.Config.default) () =
  let rpc, nodes = Common.make_cluster sched ~n () in
  let ids = List.map Cluster.Node.id nodes in
  let bases =
    List.map
      (fun node ->
        let peers = List.filter (fun p -> p <> Cluster.Node.id node) ids in
        Common.make_base rpc node ~peers ~leader_id:0 ~cfg)
      nodes
  in
  let leader_base = List.hd bases in
  let t =
    {
      base = leader_base;
      match_index = Hashtbl.create 8;
      commit_tick = Sim.Time.ms 10;
      pull_idle_delay = Sim.Time.ms 2;
      oplog_window = 2048;
      catchup_max = 256;
      cache_tax = 1.3;
      lag_mode = false;
      cold_pulls = 0;
    }
  in
  List.iter
    (fun b ->
      Cluster.Rpc.serve rpc ~node:b.Common.node ~handler:(fun ~src req ->
          handle t b ~src req);
      Common.start_common b)
    bases;
  Cluster.Node.spawn leader_base.Common.node ~name:"oplog-writer" (fun () ->
      oplog_writer_loop t);
  Cluster.Node.spawn leader_base.Common.node ~name:"commit-ticker" (fun () ->
      commit_ticker_loop t);
  Cluster.Node.spawn leader_base.Common.node ~name:"lag-watcher" (fun () ->
      lag_watcher_loop t);
  List.iter
    (fun b ->
      if not (Common.is_leader b) then
        Cluster.Node.spawn b.Common.node ~name:"oplog-puller" (fun () -> puller_loop t b))
    bases;
  { t; bases; rpc }

let cold_pulls c = c.t.cold_pulls
let in_lag_mode c = c.t.lag_mode

let sut c ~cfg =
  let leader = List.hd c.bases and followers = List.tl c.bases in
  {
    Workload.Sut.name = "MongoDB-like";
    leader_node = leader.Common.node;
    follower_nodes = List.map (fun b -> b.Common.node) followers;
    make_clients =
      (fun ~count ->
        Common.make_clients c.rpc ~sched:leader.Common.sched
          ~server_ids:(List.map (fun b -> Cluster.Node.id b.Common.node) c.bases)
          ~cfg ~count);
  }
