(** Chain replication (van Renesse & Schneider, OSDI '04) — the design
    tradeoff the paper calls out.

    The paper's measurement methodology {e turned off} MongoDB's chained
    replication "which by design could propagate fail-slow faults" (§2.1),
    and §3.3 proposes using SPGs to reason about the tradeoff between chain
    replication's load balancing and its fail-slow tolerance. This module
    makes that concrete: writes flow head → middle → tail, the tail
    acknowledges, and {e every} link is a 1/1 wait — the SPG of a chain is
    all red. Any single fail-slow node stalls every write, even though the
    same three nodes under a majority quorum would tolerate it.

    The implementation reuses the shared baseline plumbing; each node
    forwards the replication stream to its successor and the tail's
    acknowledgement, flowing back through [Update_position], advances the
    commit point at the head. *)

open Raft.Types

type t = {
  bases : Common.base list;  (** in chain order; head first *)
  chain : int list;  (** node ids, head first *)
  mutable tail_acked : index;
}

let head t = List.hd t.bases
let tail_id t = List.nth t.chain (List.length t.chain - 1)

let successor t id =
  let rec go = function
    | a :: b :: _ when a = id -> Some b
    | _ :: rest -> go rest
    | [] -> None
  in
  go t.chain

(* forward a batch down the chain; runs in the handler/propagator coroutine
   of node [b] *)
let forward t b entries =
  match successor t (Cluster.Node.id b.Common.node) with
  | None -> ()
  | Some next ->
    let cfg = b.Common.cfg in
    let n = Array.length entries in
    if n > 0 then begin
      Cluster.Node.cpu_work b.Common.node
        (cfg.Raft.Config.cost_per_follower + (n * cfg.Raft.Config.cost_send_entry));
      let prev_index = entries.(0).index - 1 in
      ignore
        (Cluster.Rpc.call b.Common.rpc ~src:b.Common.node ~dst:next
           ~bytes:(256 + entries_bytes_a entries)
           (Append_entries
              {
                term = 1;
                leader = Cluster.Node.id (head t).Common.node;
                prev_index;
                prev_term = 1;
                (* baselines ship a copied batch, wrapped as an owned view *)
                entries = view_of_array entries;
                commit = t.tail_acked;
              }))
    end

(* every node: append, persist, forward; the tail additionally reports its
   position straight back to the head *)
let handle_append t b ~entries ~commit =
  Depfast.Mutex.with_lock b.Common.sched b.Common.append_mu (fun () ->
      let cfg = b.Common.cfg in
      let n = Array.length entries in
      (* depfast-lint: allow lock-across-call — deliberate baseline defect:
         per-entry CPU work runs inside the append lock *)
      Cluster.Node.cpu_work b.Common.node
        (cfg.Raft.Config.cost_follower_fixed + (n * cfg.Raft.Config.cost_follower_entry));
      Common.follower_append_a b entries;
      if n > 0 then
        (* depfast-lint: allow lock-across-wait red-exposure — deliberate
           baseline defect: the chain holds its append lock across WAL
           durability (Table 1), fate-sharing with its own slow disk *)
        Depfast.Sched.wait b.Common.sched
          (Common.wal_append b ~bytes:(Common.wal_bytes_a b entries));
      Common.set_commit b commit;
      (* depfast-lint: allow lock-across-call — deliberate baseline defect:
         the chain forwards downstream (CPU + rpc) without releasing the
         append lock, so one slow successor stalls the whole segment *)
      forward t b entries;
      if Cluster.Node.id b.Common.node = tail_id t && n > 0 then
        ignore
          (Cluster.Rpc.call b.Common.rpc ~src:b.Common.node
             ~dst:(Cluster.Node.id (head t).Common.node)
             (Update_position
                {
                  follower = Cluster.Node.id b.Common.node;
                  match_index = Raft.Rlog.last_index b.Common.rlog;
                  term = 1;
                })));
  None

let handle_tail_ack t ~match_index =
  let b = head t in
  Common.cpu_charge b b.Common.cfg.Raft.Config.cost_ack_process;
  if match_index > t.tail_acked then begin
    t.tail_acked <- match_index;
    Common.set_commit b match_index
  end;
  Some Ack

(* head write path: batch, append, persist, push down the chain; requests
   complete when the tail's ack brings the commit point past them *)
let head_loop t =
  let b = head t in
  let cfg = b.Common.cfg in
  let rec loop () =
    if Common.alive b then begin
      if Queue.is_empty b.Common.pending_q then
        ignore
          (Depfast.Condvar.wait_timeout b.Common.sched b.Common.work_cv
             cfg.Raft.Config.group_commit_window);
      let batch = Common.take_batch b cfg.Raft.Config.batch_max in
      let entries = Array.of_list (Common.append_batch b batch) in
      let n = Array.length entries in
      if n > 0 then begin
        Cluster.Node.cpu_work b.Common.node
          (cfg.Raft.Config.cost_round_fixed + (n * cfg.Raft.Config.cost_marshal_entry));
        (* depfast-lint: allow red-exposure — own-WAL durability wait:
           synchronous commit is the chain baseline's protocol *)
        Depfast.Sched.wait b.Common.sched
          (Common.wal_append b ~bytes:(Common.wal_bytes_a b entries));
        forward t b entries
      end;
      loop ()
    end
  in
  loop ()

(* ---------- construction ---------- *)

type cluster = { t : t; rpc : Common.rpc }

let handle t b ~src:_ req =
  match req with
  | Client_request { cmd; client_id; seq } ->
    Some (Common.handle_client_request b ~cmd ~client_id ~seq)
  | Append_entries { entries; commit; _ } -> (
    match view_materialize entries with
    | None -> None
    | Some entries -> handle_append t b ~entries ~commit)
  | Update_position { match_index; _ } -> handle_tail_ack t ~match_index
  | Request_vote _ | Pull_oplog _ | Transfer_leadership _ | Timeout_now -> Some Ack

let create sched ~n ?(cfg = Raft.Config.default) () =
  let rpc, nodes = Common.make_cluster sched ~n () in
  let ids = List.map Cluster.Node.id nodes in
  let bases =
    List.map
      (fun node ->
        let peers = List.filter (fun p -> p <> Cluster.Node.id node) ids in
        Common.make_base rpc node ~peers ~leader_id:0 ~cfg)
      nodes
  in
  let t = { bases; chain = ids; tail_acked = 0 } in
  List.iter
    (fun b ->
      Cluster.Rpc.serve rpc ~node:b.Common.node ~handler:(fun ~src req ->
          handle t b ~src req);
      Common.start_common b)
    bases;
  Cluster.Node.spawn (head t).Common.node ~name:"chain-head" (fun () -> head_loop t);
  { t; rpc }

let sut c ~cfg =
  let head_base = head c.t and rest = List.tl c.t.bases in
  {
    Workload.Sut.name = "Chain replication";
    leader_node = head_base.Common.node;
    follower_nodes = List.map (fun b -> b.Common.node) rest;
    make_clients =
      (fun ~count ->
        Common.make_clients c.rpc ~sched:head_base.Common.sched
          ~server_ids:[ Cluster.Node.id head_base.Common.node ]
          ~cfg ~count);
  }

let tail_acked c = c.t.tail_acked
