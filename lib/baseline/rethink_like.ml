(** The RethinkDB-like baseline: unbounded leader-side replication buffers.

    Reproduces the paper's §2.2 root cause (confirmed by the developers):
    the leader keeps an {e unbounded buffer of outgoing writes per replica}.
    A fail-slow follower drains its buffer slower than writes arrive, so the
    buffer grows without bound; the leader first slows down under memory
    pressure (page-cache eviction / swapping) and eventually the process is
    OOM-killed — the paper observed exactly this leader crash under CPU
    fail-slow faults.

    The commit rule is a healthy majority quorum (leader WAL + follower
    acks): the protocol is fine. The defect is purely that nothing bounds —
    or discards, cf. the §2.3 framework discussion — the straggler's queue.

    The nodes run with a memory configuration representative of a
    cache-limited deployment (small headroom above the resident set), scaled
    to simulation timescales so that a ~10–20 s fail-slow episode reaches
    the OOM threshold, like hours-long episodes do in production. *)

open Raft.Types

type buffer = {
  entries : entry Queue.t;
  mutable bytes : int;
  drain_cv : Depfast.Condvar.t;
}

type t = {
  base : Common.base;
  buffers : (int, buffer) Hashtbl.t;
  match_index : (int, index) Hashtbl.t;
  (* per-round progress watchers, as in DepFastRaft *)
  watchers : (int, (index * Depfast.Event.t) list ref) Hashtbl.t;
}

let soft_headroom = 16 * 1024 * 1024
let hard_headroom = 40 * 1024 * 1024

(* ---------- follower ---------- *)

let handle_append_entries b ~prev_index ~entries ~commit =
  (* the replication stream is processed serially, in delivery order *)
  Depfast.Mutex.with_lock b.Common.sched b.Common.append_mu (fun () ->
      let cfg = b.Common.cfg in
      (* depfast-lint: allow lock-across-call — deliberate baseline defect:
         per-entry CPU work runs inside the append lock *)
      Cluster.Node.cpu_work b.Common.node
        (cfg.Raft.Config.cost_follower_fixed
        + (Array.length entries * cfg.Raft.Config.cost_follower_entry));
      if prev_index > Raft.Rlog.last_index b.Common.rlog then
        Append_resp
          { term = 1; success = false; match_index = Raft.Rlog.last_index b.Common.rlog }
      else begin
        Common.follower_append_a b entries;
        if Array.length entries > 0 then
          (* depfast-lint: allow lock-across-wait red-exposure — deliberate
             baseline defect: the RethinkDB coroutine-lock hazard from §2,
             fate-sharing the lock holder with its own slow WAL *)
          Depfast.Sched.wait b.Common.sched
            (Common.wal_append b ~bytes:(Common.wal_bytes_a b entries));
        Common.set_commit b commit;
        Append_resp
          { term = 1; success = true; match_index = Raft.Rlog.last_index b.Common.rlog }
      end)

(* ---------- leader ---------- *)

let advance_commit t =
  let b = t.base in
  let matches =
    Raft.Rlog.last_index b.Common.rlog
    :: List.map (fun f -> Hashtbl.find t.match_index f) b.Common.peers
  in
  let sorted = List.sort (fun a b -> compare b a) matches in
  Common.set_commit b (List.nth sorted (Raft.Config.majority b.Common.n_voters - 1))

let fire_watchers t f =
  let ws = Hashtbl.find t.watchers f in
  let m = Hashtbl.find t.match_index f in
  let ready, rest = List.partition (fun (idx, _) -> idx <= m) !ws in
  ws := rest;
  List.iter (fun (_, ev) -> Depfast.Event.fire ev) ready

(* push new entries into every follower's unbounded buffer; bytes are
   charged to the leader's memory until drained — the defect *)
let buffer_entries t entries =
  let b = t.base in
  List.iter
    (fun f ->
      let buf = Hashtbl.find t.buffers f in
      List.iter
        (fun e ->
          (* depfast-lint: allow unbounded-growth — deliberate baseline
             defect: the paper's RethinkDB per-follower backlog (§2);
             buffered entries are shed only by the drainer, never here *)
          Queue.add e buf.entries;
          let sz = entry_bytes e in
          buf.bytes <- buf.bytes + sz;
          Cluster.Memory.alloc (Cluster.Node.memory b.Common.node) sz)
        entries;
      Depfast.Condvar.broadcast buf.drain_cv)
    b.Common.peers

(* one drainer coroutine per follower: streams buffered writes in order,
   keeping up to [window_bytes] on the wire (a TCP-window-like bound), and
   releasing leader memory only when the follower acknowledges. A pure
   delay fault (tc 400ms) therefore costs one bandwidth-delay product of
   memory and stabilizes; a fail-slow follower whose *drain rate* drops
   below the write rate grows the buffer without bound — the defect. *)
let window_bytes = 8 * 1024 * 1024

let drainer_loop t f =
  let b = t.base in
  let cfg = b.Common.cfg in
  let buf = Hashtbl.find t.buffers f in
  let outstanding = ref 0 in
  let rec loop () =
    if Common.alive b then begin
      if Queue.is_empty buf.entries || !outstanding >= window_bytes then begin
        (* depfast-lint: allow red-exposure — drain handoff signalled by the
           local buffer producer; idling here is the intended backpressure *)
        Depfast.Condvar.wait b.Common.sched buf.drain_cv;
        loop ()
      end
      else begin
        let batch = ref [] in
        let n = ref 0 in
        while (not (Queue.is_empty buf.entries)) && !n < cfg.Raft.Config.batch_max do
          batch := Queue.pop buf.entries :: !batch;
          incr n
        done;
        let entries = Array.of_list (List.rev !batch) in
        Cluster.Node.cpu_work b.Common.node
          (cfg.Raft.Config.cost_per_follower
          + (Array.length entries * cfg.Raft.Config.cost_send_entry));
        let prev_index = entries.(0).index - 1 in
        let bytes = entries_bytes_a entries in
        outstanding := !outstanding + bytes;
        let call =
          Cluster.Rpc.call b.Common.rpc ~src:b.Common.node ~dst:f
            ~bytes:(256 + bytes)
            (Append_entries
               {
                 term = 1;
                 leader = Cluster.Node.id b.Common.node;
                 prev_index;
                 prev_term = 1;
                 (* baselines ship a copied batch, wrapped as an owned view *)
                 entries = view_of_array entries;
                 commit = b.Common.commit_index;
               })
        in
        Depfast.Event.on_fire (Cluster.Rpc.event call) (fun () ->
            Common.cpu_charge b cfg.Raft.Config.cost_ack_process;
            outstanding := !outstanding - bytes;
            (match Cluster.Rpc.response call with
            | Some (Append_resp { success = true; match_index; _ }) ->
              (* acknowledged: finally release the buffered bytes *)
              buf.bytes <- buf.bytes - bytes;
              Cluster.Memory.free (Cluster.Node.memory b.Common.node) bytes;
              Hashtbl.replace t.match_index f
                (max match_index (Hashtbl.find t.match_index f));
              fire_watchers t f;
              advance_commit t
            | Some _ | None -> ());
            Depfast.Condvar.broadcast buf.drain_cv);
        loop ()
      end
    end
  in
  loop ()

let replicator_loop t =
  let b = t.base in
  let cfg = b.Common.cfg in
  let rec loop () =
    if Common.alive b then begin
      if Queue.is_empty b.Common.pending_q then
        ignore
          (Depfast.Condvar.wait_timeout b.Common.sched b.Common.work_cv
             cfg.Raft.Config.group_commit_window);
      let batch = Common.take_batch b cfg.Raft.Config.batch_max in
      let entries = Common.append_batch b batch in
      let n = List.length entries in
      if n > 0 then begin
        Cluster.Node.cpu_work b.Common.node
          (cfg.Raft.Config.cost_round_fixed + (n * cfg.Raft.Config.cost_marshal_entry));
        let last = Raft.Rlog.last_index b.Common.rlog in
        let wal_ev = Common.wal_append b ~bytes:(Common.wal_bytes b entries) in
        let quorum =
          Depfast.Event.quorum ~label:"rethink-majority"
            (Depfast.Event.Count (Raft.Config.majority b.Common.n_voters))
        in
        Depfast.Event.add quorum ~child:wal_ev;
        (* attach all children before firing any (a fired child can
           complete the quorum) *)
        List.iter
          (fun f ->
            let ack = Depfast.Event.rpc_completion ~label:"repl-progress" ~peer:f () in
            let ws = Hashtbl.find t.watchers f in
            ws := (last, ack) :: !ws;
            Depfast.Event.add quorum ~child:ack)
          b.Common.peers;
        List.iter (fun f -> fire_watchers t f) b.Common.peers;
        buffer_entries t entries;
        (match
           Depfast.Sched.wait_timeout b.Common.sched quorum cfg.Raft.Config.rpc_timeout
         with
        | Depfast.Sched.Ready -> advance_commit t
        | Depfast.Sched.Timed_out -> ());
        loop ()
      end
      else loop ()
    end
  in
  loop ()

(* ---------- construction ---------- *)

type cluster = { t : t; bases : Common.base list; rpc : Common.rpc }

let handle b ~src:_ req =
  match req with
  | Client_request { cmd; client_id; seq } ->
    Some (Common.handle_client_request b ~cmd ~client_id ~seq)
  | Append_entries { prev_index; entries; commit; _ } -> (
    match view_materialize entries with
    | None -> None
    | Some entries -> Some (handle_append_entries b ~prev_index ~entries ~commit))
  | Request_vote _ | Pull_oplog _ | Update_position _ | Transfer_leadership _
  | Timeout_now ->
    Some Ack

let create sched ~n ?(cfg = Raft.Config.default) () =
  let resident = 200 * 1024 * 1024 in
  let rpc, nodes =
    Common.make_cluster sched ~n
      ~mem_soft_cap:(resident + soft_headroom)
      ~mem_hard_cap:(resident + hard_headroom) ()
  in
  let ids = List.map Cluster.Node.id nodes in
  let bases =
    List.map
      (fun node ->
        let peers = List.filter (fun p -> p <> Cluster.Node.id node) ids in
        Common.make_base rpc node ~peers ~leader_id:0 ~cfg)
      nodes
  in
  let leader_base = List.hd bases in
  let t =
    {
      base = leader_base;
      buffers = Hashtbl.create 8;
      match_index = Hashtbl.create 8;
      watchers = Hashtbl.create 8;
    }
  in
  List.iter
    (fun f ->
      Hashtbl.replace t.buffers f
        {
          entries = Queue.create ();
          bytes = 0;
          drain_cv = Depfast.Condvar.create ~label:"drain" ();
        };
      Hashtbl.replace t.match_index f 0;
      Hashtbl.replace t.watchers f (ref []))
    leader_base.Common.peers;
  List.iter
    (fun b ->
      Cluster.Rpc.serve rpc ~node:b.Common.node ~handler:(fun ~src req -> handle b ~src req);
      Common.start_common b)
    bases;
  Cluster.Node.spawn leader_base.Common.node ~name:"replicator" (fun () ->
      replicator_loop t);
  List.iter
    (fun f ->
      Cluster.Node.spawn leader_base.Common.node
        ~name:(Printf.sprintf "drainer.%d" f)
        (fun () -> drainer_loop t f))
    leader_base.Common.peers;
  { t; bases; rpc }

let sut c ~cfg =
  let leader = List.hd c.bases and followers = List.tl c.bases in
  {
    Workload.Sut.name = "RethinkDB-like";
    leader_node = leader.Common.node;
    follower_nodes = List.map (fun b -> b.Common.node) followers;
    make_clients =
      (fun ~count ->
        Common.make_clients c.rpc ~sched:leader.Common.sched
          ~server_ids:(List.map (fun b -> Cluster.Node.id b.Common.node) c.bases)
          ~cfg ~count);
  }

let buffer_bytes c f = (Hashtbl.find c.t.buffers f).bytes
let match_of c f = Hashtbl.find c.t.match_index f
let log_len c node = Raft.Rlog.last_index (List.nth c.bases node).Common.rlog
let commit c = (List.hd c.bases).Common.commit_index
