(** Domain-pool plumbing for the parallel explorer and the Raft shard
    pool: job sizing, scatter/join, a blocking wakeup gate, and a
    generation barrier. No top-level mutable state. *)

val recommended_jobs : ?cap:int -> unit -> int
(** Pool size: [Domain.recommended_domain_count ()] overridden by the
    [DEPFAST_JOBS] environment variable when set to a positive integer,
    clamped to [\[1, cap\]] (default cap 8). *)

val scatter : jobs:int -> (int -> 'a) -> 'a array
(** [scatter ~jobs f] runs [f i] for [i] in [0 .. jobs-1], slice 0 on
    the calling domain and the rest on freshly spawned domains, and
    joins into an array indexed by slice. If any slice raises, every
    slice is still joined, then the lowest-indexed exception is
    re-raised. [jobs <= 1] degenerates to [[| f 0 |]] with no spawns. *)

(** Blocking wakeup gate for idle pool workers. Lost-wakeup free: read
    {!Gate.epoch}, re-check for work, then {!Gate.await} that epoch —
    any {!Gate.wake_all} in between makes the await return at once. *)
module Gate : sig
  type t

  val create : unit -> t

  val epoch : t -> int
  (** Current wakeup epoch. *)

  val wake_all : t -> unit
  (** Bump the epoch and wake every sleeper. Call after publishing work
      or a termination flag. *)

  val await : t -> seen:int -> unit
  (** Sleep until the epoch differs from [seen]; returns immediately if
      it already does. *)
end

(** Reusable generation barrier for quantum-stepped parallel
    simulation: all parties run a quantum, meet, one merges cross-shard
    state, all meet again, repeat. *)
module Barrier : sig
  type t

  val create : int -> t
  (** [create parties] — every round needs exactly [parties] waiters. *)

  val wait : t -> bool
  (** Block until all parties arrive. Returns [true] on the single
      arrival that tripped the barrier this round (any party may be
      the one), [false] on the rest. *)
end
