(* Chase–Lev work-stealing deque on OCaml 5 atomics. One owner domain
   pushes and pops at the bottom; any number of thief domains steal from
   the top. Indices are monotonic logical positions (never wrapped back),
   which sidesteps ABA: a CAS on [top] succeeds only while position [t]
   is still unconsumed, and the owner cannot overwrite position [t]'s
   physical slot before growing (push grows once bottom - top reaches the
   capacity). Growth copies the live window into a fresh slot array and
   publishes it through the atomic buffer holder; thieves that read the
   old array still see correct values because old slots are never reused
   after a copy. Slots are themselves atomics so a thief's pre-CAS read
   of the element is well-defined under the OCaml memory model. *)

type 'a t = {
  top : int Atomic.t;  (* next position to steal *)
  bottom : int Atomic.t;  (* next position to push *)
  buf : 'a option Atomic.t array Atomic.t;  (* power-of-two slot array *)
}

type 'a steal = Stolen of 'a | Empty | Retry

let min_capacity = 16

let create ?(capacity = min_capacity) () =
  let cap = ref min_capacity in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.init !cap (fun _ -> Atomic.make None));
  }

let size q = max 0 (Atomic.get q.bottom - Atomic.get q.top)
let is_empty q = size q = 0

(* double the slot array, copying live positions [t, b); only the owner
   grows, so a plain copy then a single publish of the holder is enough *)
let grow q t b old =
  let n = Array.length old in
  let fresh = Array.init (2 * n) (fun _ -> Atomic.make None) in
  for i = t to b - 1 do
    Atomic.set fresh.(i land ((2 * n) - 1)) (Atomic.get old.(i land (n - 1)))
  done;
  Atomic.set q.buf fresh;
  fresh

let push q x =
  let b = Atomic.get q.bottom in
  let t = Atomic.get q.top in
  let a = Atomic.get q.buf in
  let a = if b - t >= Array.length a then grow q t b a else a in
  Atomic.set a.(b land (Array.length a - 1)) (Some x);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* already empty: undo the reservation *)
    Atomic.set q.bottom t;
    None
  end
  else begin
    let a = Atomic.get q.buf in
    let slot = a.(b land (Array.length a - 1)) in
    let x = Atomic.get slot in
    if b > t then begin
      Atomic.set slot None;
      x
    end
    else begin
      (* last element: race thieves for it by advancing top *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then begin
        Atomic.set slot None;
        x
      end
      else None
    end
  end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then Empty
  else begin
    let a = Atomic.get q.buf in
    let slot = a.(t land (Array.length a - 1)) in
    match Atomic.get slot with
    | None -> Retry  (* the owner raced us on this position *)
    | Some v -> if Atomic.compare_and_set q.top t (t + 1) then Stolen v else Retry
  end
