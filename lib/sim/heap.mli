(** Binary min-heap of timed entries with O(log n) insertion/extraction and
    O(1) lazy cancellation.

    Ties on time are broken by insertion sequence number so the simulation is
    deterministic regardless of heap internals. *)

type 'a t

type handle
(** Identifies an inserted entry; used to cancel it. *)

val create : unit -> 'a t
val is_empty : 'a t -> bool

val size : 'a t -> int
(** Live (non-cancelled) entries. *)

val push : 'a t -> time:Time.t -> 'a -> handle
val cancel : 'a t -> handle -> unit

val cancelled : handle -> bool

val peek_time : 'a t -> Time.t option
(** Earliest live entry's time, skipping cancelled entries. *)

val peek : 'a t -> (Time.t * 'a) option
(** Earliest live entry without removing it. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest live entry. *)
