(** The discrete-event simulation engine.

    Owns the virtual clock and two work sources: a FIFO of thunks to run at
    the current instant ({!post}) and a timer structure of thunks to run at a
    future instant ({!schedule}) — a hierarchical timer wheel ({!Wheel}) with
    a heap fallback for far-future deadlines. {!run} executes work in time
    order until
    quiescence (or a deadline), advancing the clock only when the ready FIFO
    is empty. Everything above (coroutines, network, disks) is built out of
    these two primitives. *)

type t

type timer
(** A cancellable scheduled thunk. *)

(** {2 Choice points}

    Every unit of work the engine runs can carry a provenance tag. In
    normal operation tags are ignored (the ready FIFO and the timer wheel
    fix the order); with a {!chooser} installed, each step with more than
    one enabled alternative becomes an explicit choice over the tagged
    transitions — the nondeterminism interface the schedule-space checker
    (lib/check) enumerates. *)

type tag =
  | Anon  (** unknown provenance; the explorer treats it as conflicting
              with everything *)
  | Coro of int * int  (** coroutine [(cid, node)]; node [-1] = untagged *)
  | On_node of int  (** node-local housekeeping (disk, cpu, timers) *)
  | Link of int * int  (** delivery on the directed network link
                           [src -> dst] *)

type chooser = tag array -> int
(** Called at every step where more than one transition is enabled, with
    the tags of the enabled set (ready thunks, or — when no ready work
    remains — every timer tied at the minimum deadline, hoisted). Must
    return an index into the array; the engine runs that transition. *)

val set_chooser : t -> chooser -> unit
(** Switch the engine into explore mode. Anything already posted is
    adopted (tagged {!Anon}). Install at most once per engine; engines are
    cheap — the explorer builds a fresh one per run.

    Explore-mode caveat: timers tied at the minimum deadline are hoisted
    into the choice set together, so a same-instant [cancel] of a tied
    sibling no longer suppresses its thunk — it runs as a (guarded) no-op.
    Future timers cancel normally. *)

val set_step_observer : t -> (tag -> unit) option -> unit
(** Explore mode only: called with the tag of {e every} transition about
    to run — including singleton steps, which never reach the chooser.
    The explorer's probe cross-check uses this for exact per-transition
    attribution of shared-cell mutations. *)

val exploring : t -> bool

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time 0. [seed] (default [1L]) roots all derived RNG
    streams. *)

val now : t -> Time.t

val rng : t -> Rng.t
(** The engine's root RNG. Prefer {!split_rng} for per-component streams. *)

val split_rng : t -> Rng.t
(** A fresh independent stream derived from the root. *)

val post : t -> (unit -> unit) -> unit
(** Run a thunk at the current instant, after already-posted thunks.
    Equivalent to [post_tag t Anon]. *)

val post_tag : t -> tag -> (unit -> unit) -> unit
(** {!post} with provenance, so a chooser can tell transitions apart. *)

val schedule : t -> delay:Time.span -> (unit -> unit) -> timer
(** Run a thunk [delay] from now. A non-positive delay means "immediately
    after currently posted work". *)

val schedule_tag : t -> delay:Time.span -> tag -> (unit -> unit) -> timer
(** {!schedule} with provenance (surfaces when the timer comes due). *)

val schedule_at : t -> time:Time.t -> (unit -> unit) -> timer
(** Like {!schedule} with an absolute deadline (clamped to now). *)

val cancel : t -> timer -> unit
(** Cancelling an already-fired or already-cancelled timer is a no-op. *)

val pending : t -> int
(** Number of outstanding posted thunks + live timers. *)

val run : ?until:Time.t -> t -> unit
(** Execute until no work remains, or until the clock would pass [until]
    (the clock is then left at [until]). Exceptions raised by thunks
    propagate and abort the run. *)

val step : t -> bool
(** Execute one thunk (possibly advancing the clock first). [false] when no
    work remains. *)
