(** The discrete-event simulation engine.

    Owns the virtual clock and two work sources: a FIFO of thunks to run at
    the current instant ({!post}) and a timer structure of thunks to run at a
    future instant ({!schedule}) — a hierarchical timer wheel ({!Wheel}) with
    a heap fallback for far-future deadlines. {!run} executes work in time
    order until
    quiescence (or a deadline), advancing the clock only when the ready FIFO
    is empty. Everything above (coroutines, network, disks) is built out of
    these two primitives. *)

type t

type timer
(** A cancellable scheduled thunk. *)

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time 0. [seed] (default [1L]) roots all derived RNG
    streams. *)

val now : t -> Time.t

val rng : t -> Rng.t
(** The engine's root RNG. Prefer {!split_rng} for per-component streams. *)

val split_rng : t -> Rng.t
(** A fresh independent stream derived from the root. *)

val post : t -> (unit -> unit) -> unit
(** Run a thunk at the current instant, after already-posted thunks. *)

val schedule : t -> delay:Time.span -> (unit -> unit) -> timer
(** Run a thunk [delay] from now. A non-positive delay means "immediately
    after currently posted work". *)

val schedule_at : t -> time:Time.t -> (unit -> unit) -> timer
(** Like {!schedule} with an absolute deadline (clamped to now). *)

val cancel : t -> timer -> unit
(** Cancelling an already-fired or already-cancelled timer is a no-op. *)

val pending : t -> int
(** Number of outstanding posted thunks + live timers. *)

val run : ?until:Time.t -> t -> unit
(** Execute until no work remains, or until the clock would pass [until]
    (the clock is then left at [until]). Exceptions raised by thunks
    propagate and abort the run. *)

val step : t -> bool
(** Execute one thunk (possibly advancing the clock first). [false] when no
    work remains. *)
