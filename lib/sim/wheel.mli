(** Hierarchical timer wheel with the same interface and observable behaviour
    as {!Heap}, tuned for the engine's timer workload: dense short timeouts
    (network latencies, heartbeats, rpc timeouts) insert and extract in O(1)
    amortised instead of O(log n).

    Six levels of 32 slots cover [32^6] us (~17.9 min) from the current
    position at microsecond resolution; deadlines beyond the horizon fall back
    to a binary heap and are popped from there directly. Cancellation is O(1)
    and lazy, as in {!Heap}.

    Pop order is {e exactly} the heap's: ties on time break on a global
    insertion sequence number, and the wheel-vs-fallback choice compares
    [(time, seq)] before committing, so swapping {!Heap} for [Wheel] under the
    engine cannot reorder a simulation.

    Pushes must not be earlier than the last popped time (they are clamped to
    it); the engine's clock discipline guarantees this. *)

type 'a t

type 'a handle
(** Identifies an inserted entry; used to cancel it. *)

val create : unit -> 'a t
val is_empty : 'a t -> bool

val size : 'a t -> int
(** Live (non-cancelled) entries. *)

val pos : 'a t -> Time.t
(** Time of the last popped entry ({!Time.zero} initially). *)

val push : 'a t -> time:Time.t -> 'a -> 'a handle
(** O(1), one allocation. [time] earlier than the last popped time is
    clamped to it. *)

val cancel : 'a t -> 'a handle -> unit
(** O(1); cancelling twice or after the entry fired is a no-op. *)

val cancelled : 'a handle -> bool

val peek_time : 'a t -> Time.t option
(** Earliest live entry's time. Never re-buckets entries (safe to call
    between pushes); the scan result is memoised until the next
    push/cancel/pop that could change it. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest live entry, cascading its level's
    surviving siblings to lower levels. *)

val pop_handle : 'a t -> 'a handle option
(** {!pop}, but returning the popped entry itself so its identity
    ({!seq}) is available alongside the payload. Used by the engine's
    schedule explorer to hoist same-deadline ties into the choice set. *)

val seq : 'a handle -> int
(** The entry's global insertion sequence number (the pop tiebreaker). *)

val value : 'a handle -> 'a
val time : 'a handle -> Time.t

val take_or : 'a t -> default:'a -> 'a
(** {!pop} for the scheduler hot loop: returns the earliest live entry's
    value, or [default] when empty, allocating nothing in steady state. The
    popped entry's time is readable from {!pos}. *)
