(** Chase–Lev work-stealing deque over OCaml 5 domains.

    Single-owner, multi-thief: exactly one domain may call {!push} and
    {!pop} (the bottom end); any number of other domains may call
    {!steal} (the top end). Logical positions are monotonic so the
    [top] CAS is ABA-free, and the slot array grows by copy when full —
    a deque never rejects a push. All coordination is lock-free. *)

type 'a t

type 'a steal =
  | Stolen of 'a  (** an element was taken from the top *)
  | Empty  (** the deque was observed empty *)
  | Retry  (** lost a race with the owner or another thief; try again *)

val create : ?capacity:int -> unit -> 'a t
(** [create ()] makes an empty deque. [capacity] (default 16) is rounded
    up to a power of two and is only the initial slot-array size. *)

val push : 'a t -> 'a -> unit
(** Owner only: append at the bottom, growing the slot array if full. *)

val pop : 'a t -> 'a option
(** Owner only: take the most recently pushed element (LIFO for the
    owner, preserving DFS order locally), or [None] when empty. *)

val steal : 'a t -> 'a steal
(** Any thief domain: take the oldest element (FIFO from the top).
    [Retry] means a benign race, not emptiness — callers typically scan
    other deques and come back. *)

val size : 'a t -> int
(** Snapshot of the element count; approximate under concurrency. *)

val is_empty : 'a t -> bool
(** [size q = 0] at snapshot time; approximate under concurrency. *)
