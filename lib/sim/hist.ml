(* Logarithmic bucketing: values < 64 are exact; above that, each power of
   two is split into 32 sub-buckets (top 6 significant bits), giving <= ~3%
   relative quantile error, plenty for latency reporting.

   [add] is O(1) and allocation-free: the running sum / sum-of-squares live
   in a flat float array (unboxed stores — a mutable float field in a mixed
   record would box on every assignment), and the msb is found by a
   five-step branchless binary search rather than a shift loop. *)

let sub = 64
let max_exp = 62
let nbuckets = sub + ((max_exp - 6 + 1) * 32)

type t = {
  buckets : int array;
  mutable count : int;
  sums : float array;  (* [| sum; sum of squares |], kept unboxed *)
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  {
    buckets = Array.make nbuckets 0;
    count = 0;
    sums = Array.make 2 0.0;
    min_v = max_int;
    max_v = 0;
  }

(* position of most significant set bit; v > 0. Binary search over the bit
   ranges: 5 well-predicted compares instead of up to 62 loop iterations
   (values here are microsecond spans, so v < 2^32 after the first step). *)
let msb v =
  let k = ref 0 in
  let v = ref v in
  if !v >= 1 lsl 32 then begin
    k := !k + 32;
    v := !v lsr 32
  end;
  if !v >= 1 lsl 16 then begin
    k := !k + 16;
    v := !v lsr 16
  end;
  if !v >= 1 lsl 8 then begin
    k := !k + 8;
    v := !v lsr 8
  end;
  if !v >= 1 lsl 4 then begin
    k := !k + 4;
    v := !v lsr 4
  end;
  if !v >= 1 lsl 2 then begin
    k := !k + 2;
    v := !v lsr 2
  end;
  if !v >= 2 then k := !k + 1;
  !k

let index_of v =
  if v < sub then v
  else
    let k = msb v in
    let m = v lsr (k - 5) in
    sub + ((k - 6) * 32) + (m - 32)

let upper_bound_of idx =
  if idx < sub then idx
  else
    let k = 6 + ((idx - sub) / 32) in
    let m = 32 + ((idx - sub) mod 32) in
    ((m + 1) lsl (k - 5)) - 1

let add t v =
  let v = if v < 0 then 0 else v in
  let i = index_of v in
  Array.unsafe_set t.buckets i (Array.unsafe_get t.buckets i + 1);
  t.count <- t.count + 1;
  let f = float_of_int v in
  Array.unsafe_set t.sums 0 (Array.unsafe_get t.sums 0 +. f);
  Array.unsafe_set t.sums 1 (Array.unsafe_get t.sums 1 +. (f *. f));
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0.0 else t.sums.(0) /. float_of_int t.count

let stddev t =
  if t.count = 0 then 0.0
  else
    let m = mean t in
    let var = (t.sums.(1) /. float_of_int t.count) -. (m *. m) in
    sqrt (Float.max 0.0 var)

let quantile t q =
  if t.count = 0 then 0
  else
    let target =
      let x = int_of_float (ceil (q *. float_of_int t.count)) in
      if x < 1 then 1 else if x > t.count then t.count else x
    in
    let rec go idx acc =
      if idx >= nbuckets then t.max_v
      else
        let acc = acc + t.buckets.(idx) in
        if acc >= target then min (upper_bound_of idx) t.max_v else go (idx + 1) acc
    in
    go 0 0

let p50 t = quantile t 0.50
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let merge a b =
  let t = create () in
  Array.blit a.buckets 0 t.buckets 0 nbuckets;
  Array.iteri (fun i v -> t.buckets.(i) <- t.buckets.(i) + v) b.buckets;
  t.count <- a.count + b.count;
  t.sums.(0) <- a.sums.(0) +. b.sums.(0);
  t.sums.(1) <- a.sums.(1) +. b.sums.(1);
  t.min_v <- min a.min_v b.min_v;
  t.max_v <- max a.max_v b.max_v;
  t

let clear t =
  Array.fill t.buckets 0 nbuckets 0;
  t.count <- 0;
  t.sums.(0) <- 0.0;
  t.sums.(1) <- 0.0;
  t.min_v <- max_int;
  t.max_v <- 0

let pp_summary fmt t =
  Format.fprintf fmt "n=%d mean=%a p50=%a p99=%a max=%a" t.count Time.pp
    (int_of_float (mean t))
    Time.pp (p50 t) Time.pp (p99 t) Time.pp (max_value t)
