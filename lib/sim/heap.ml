type handle = { mutable live : bool }

type 'a entry = { time : Time.t; seq : int; value : 'a; h : handle }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
  mutable seq : int;
  mutable alive : int;
}

let create () = { arr = Array.make 16 None; len = 0; seq = 0; alive = 0 }
let is_empty t = t.alive = 0
let size t = t.alive

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i =
  match t.arr.(i) with Some e -> e | None -> assert false

let swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && entry_lt (get t l) (get t !smallest) then smallest := l;
  if r < t.len && entry_lt (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let arr = Array.make (2 * Array.length t.arr) None in
  Array.blit t.arr 0 arr 0 t.len;
  t.arr <- arr

let push t ~time value =
  if t.len = Array.length t.arr then grow t;
  let h = { live = true } in
  t.arr.(t.len) <- Some { time; seq = t.seq; value; h };
  t.seq <- t.seq + 1;
  t.len <- t.len + 1;
  t.alive <- t.alive + 1;
  sift_up t (t.len - 1);
  h

let cancel t h =
  if h.live then begin
    h.live <- false;
    t.alive <- t.alive - 1
  end

let cancelled h = not h.live

let pop_root t =
  let e = get t 0 in
  t.len <- t.len - 1;
  t.arr.(0) <- t.arr.(t.len);
  t.arr.(t.len) <- None;
  if t.len > 0 then sift_down t 0;
  e

(* drop cancelled roots; callers must re-count [alive] themselves *)
let rec drop_dead t =
  if t.len > 0 && not (get t 0).h.live then begin
    ignore (pop_root t);
    drop_dead t
  end

let peek_time t =
  drop_dead t;
  if t.len = 0 then None else Some (get t 0).time

let peek t =
  drop_dead t;
  if t.len = 0 then None
  else
    let e = get t 0 in
    Some (e.time, e.value)

let pop t =
  drop_dead t;
  if t.len = 0 then None
  else begin
    let e = pop_root t in
    e.h.live <- false;
    t.alive <- t.alive - 1;
    Some (e.time, e.value)
  end
