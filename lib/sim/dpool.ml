(* Domain-pool plumbing shared by the parallel explorer and the
   per-domain Raft shard pool: job sizing, a scatter/join helper, a
   blocking gate for idle workers (spinning wastes whole timeslices on
   small boxes), and a reusable generation barrier for quantum-stepped
   simulations. Everything here is instance state owned by the caller;
   the module keeps no top-level mutable cells. *)

let default_cap = 8

let recommended_jobs ?(cap = default_cap) () =
  let hw = Domain.recommended_domain_count () in
  let n =
    match Sys.getenv_opt "DEPFAST_JOBS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> hw)
    | None -> hw
  in
  max 1 (min cap n)

let scatter ~jobs f =
  let jobs = max 1 jobs in
  if jobs = 1 then [| f 0 |]
  else begin
    let spawned =
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> f (i + 1)))
    in
    (* run slice 0 inline so a 1-job scatter never pays a spawn, and the
       calling domain contributes instead of idling in join *)
    let first = try Ok (f 0) with e -> Error e in
    let rest =
      Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned
    in
    let all = Array.append [| first |] rest in
    Array.iter (function Error e -> raise e | Ok _ -> ()) all;
    Array.map (function Ok v -> v | Error _ -> assert false) all
  end

module Gate = struct
  (* Epoch-counted wakeup: a worker that finds no work records the epoch,
     re-scans once, then sleeps until the epoch moves. Producers bump the
     epoch after publishing work, so a wakeup between the scan and the
     sleep is never lost — the sleeper sees the moved epoch and returns
     immediately. *)
  type t = { m : Mutex.t; c : Condition.t; mutable epoch : int }

  let create () = { m = Mutex.create (); c = Condition.create (); epoch = 0 }

  let epoch g =
    Mutex.lock g.m;
    let e = g.epoch in
    Mutex.unlock g.m;
    e

  let wake_all g =
    Mutex.lock g.m;
    g.epoch <- g.epoch + 1;
    Condition.broadcast g.c;
    Mutex.unlock g.m

  let await g ~seen =
    Mutex.lock g.m;
    while g.epoch = seen do
      Condition.wait g.c g.m
    done;
    Mutex.unlock g.m
end

module Barrier = struct
  (* Classic generation barrier: the last arrival flips the generation
     and wakes everyone; earlier arrivals sleep on the old generation so
     reuse across rounds is safe. Returns whether this arrival was the
     one that tripped the barrier. *)
  type t = {
    m : Mutex.t;
    c : Condition.t;
    parties : int;
    mutable waiting : int;
    mutable gen : int;
  }

  let create parties =
    { m = Mutex.create (); c = Condition.create (); parties; waiting = 0; gen = 0 }

  let wait b =
    Mutex.lock b.m;
    let g = b.gen in
    b.waiting <- b.waiting + 1;
    let tripped = b.waiting = b.parties in
    if tripped then begin
      b.waiting <- 0;
      b.gen <- b.gen + 1;
      Condition.broadcast b.c
    end
    else
      while b.gen = g do
        Condition.wait b.c b.m
      done;
    Mutex.unlock b.m;
    tripped
end
