type timer = (unit -> unit) Wheel.handle

type t = {
  mutable clock : Time.t;
  ready : (unit -> unit) Queue.t;
  timers : (unit -> unit) Wheel.t;
  root_rng : Rng.t;
}

let create ?(seed = 1L) () =
  {
    clock = Time.zero;
    ready = Queue.create ();
    timers = Wheel.create ();
    root_rng = Rng.create seed;
  }

let now t = t.clock
let rng t = t.root_rng
let split_rng t = Rng.split t.root_rng
let post t f = Queue.add f t.ready

let schedule t ~delay f =
  let delay = if delay < 0 then 0 else delay in
  Wheel.push t.timers ~time:(Time.add t.clock delay) f

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Wheel.push t.timers ~time f

let cancel t h = Wheel.cancel t.timers h
let pending t = Queue.length t.ready + Wheel.size t.timers

(* sentinel for the allocation-free timer pop; compared physically, so a
   user-scheduled [fun () -> ()] can never collide with it *)
let no_timer () = ()

let step t =
  if not (Queue.is_empty t.ready) then begin
    (Queue.pop t.ready) ();
    true
  end
  else begin
    let f = Wheel.take_or t.timers ~default:no_timer in
    if f == no_timer then false
    else begin
      t.clock <- Wheel.pos t.timers;
      f ();
      true
    end
  end

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some deadline -> (
      (* only advance past the deadline if posted (same-instant) work
         remains; timers beyond the deadline stay pending *)
      if not (Queue.is_empty t.ready) then t.clock <= deadline
      else
        match Wheel.peek_time t.timers with
        | None -> false
        | Some time -> time <= deadline)
  in
  while continue () && step t do
    ()
  done;
  match until with
  | Some deadline when t.clock < deadline && Queue.is_empty t.ready -> t.clock <- deadline
  | _ -> ()
