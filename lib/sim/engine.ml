type timer = (unit -> unit) Wheel.handle

(* Provenance of a unit of work, for the schedule explorer (lib/check).
   Tags are what make nondeterminism *reifiable*: when a chooser is
   installed, every step with more than one enabled alternative becomes an
   explicit choice over tagged transitions, and the explorer's DPOR-lite
   pruner keys independence on the tags' footprints. *)
type tag =
  | Anon  (* unknown provenance: conflicts with everything *)
  | Coro of int * int  (* coroutine (cid, node); node -1 = untagged *)
  | On_node of int  (* node-local housekeeping (disk, station, timers) *)
  | Link of int * int  (* delivery on the directed network link src -> dst *)

type chooser = tag array -> int

(* Explore mode: the ready FIFO is replaced by an indexed vector so the
   chooser can run *any* enabled thunk, and same-deadline timer ties are
   hoisted into that vector as they come due. Only live when a chooser is
   installed; the steady-state engine pays one [None] check per call. *)
type explore = {
  choose : chooser;
  mutable observe : (tag -> unit) option;
      (* called with every transition about to run — including singleton
         steps the chooser never sees, so per-step attribution (the
         probe cross-check) stays exact *)
  mutable ex_tags : tag array;
  mutable ex_fns : (unit -> unit) array;
  mutable ex_n : int;
  timer_tags : (int, tag) Hashtbl.t;  (* wheel seq -> tag *)
}

type t = {
  mutable clock : Time.t;
  ready : (unit -> unit) Queue.t;
  timers : (unit -> unit) Wheel.t;
  root_rng : Rng.t;
  mutable ex : explore option;
}

let create ?(seed = 1L) () =
  {
    clock = Time.zero;
    ready = Queue.create ();
    timers = Wheel.create ();
    root_rng = Rng.create seed;
    ex = None;
  }

let now t = t.clock
let rng t = t.root_rng
let split_rng t = Rng.split t.root_rng

let no_fn () = ()

let ex_push ex tag f =
  let cap = Array.length ex.ex_fns in
  if ex.ex_n = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let fns = Array.make ncap no_fn in
    let tags = Array.make ncap Anon in
    Array.blit ex.ex_fns 0 fns 0 ex.ex_n;
    Array.blit ex.ex_tags 0 tags 0 ex.ex_n;
    ex.ex_fns <- fns;
    ex.ex_tags <- tags
  end;
  ex.ex_fns.(ex.ex_n) <- f;
  ex.ex_tags.(ex.ex_n) <- tag;
  ex.ex_n <- ex.ex_n + 1

(* remove index i preserving the order of the rest: choice identity across
   re-runs with the same prefix must be deterministic *)
let ex_take ex i =
  let f = ex.ex_fns.(i) in
  for j = i to ex.ex_n - 2 do
    ex.ex_fns.(j) <- ex.ex_fns.(j + 1);
    ex.ex_tags.(j) <- ex.ex_tags.(j + 1)
  done;
  ex.ex_n <- ex.ex_n - 1;
  ex.ex_fns.(ex.ex_n) <- no_fn;
  ex.ex_tags.(ex.ex_n) <- Anon;
  f

let set_chooser t choose =
  (match t.ex with
  | Some _ -> invalid_arg "Engine.set_chooser: a chooser is already installed"
  | None -> ());
  let ex =
    {
      choose;
      observe = None;
      ex_tags = [||];
      ex_fns = [||];
      ex_n = 0;
      timer_tags = Hashtbl.create 64;
    }
  in
  (* adopt anything already posted (setup work queued before exploration) *)
  Queue.iter (fun f -> ex_push ex Anon f) t.ready;
  Queue.clear t.ready;
  t.ex <- Some ex

let set_step_observer t observe =
  match t.ex with
  | None -> invalid_arg "Engine.set_step_observer: no chooser installed"
  | Some ex -> ex.observe <- observe

let exploring t = t.ex <> None

let post_tag t tag f =
  (* depfast-lint: allow unbounded-growth — the engine's ready queue:
     drained every step by the run loop, which no handler can reach *)
  match t.ex with None -> Queue.add f t.ready | Some ex -> ex_push ex tag f

let post t f = post_tag t Anon f

let schedule_tag t ~delay tag f =
  let delay = if delay < 0 then 0 else delay in
  let h = Wheel.push t.timers ~time:(Time.add t.clock delay) f in
  (match t.ex with
  | Some ex when tag <> Anon -> Hashtbl.replace ex.timer_tags (Wheel.seq h) tag
  | _ -> ());
  h

let schedule t ~delay f = schedule_tag t ~delay Anon f

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Wheel.push t.timers ~time f

let cancel t h = Wheel.cancel t.timers h

let ready_count t =
  match t.ex with None -> Queue.length t.ready | Some ex -> ex.ex_n

let pending t = ready_count t + Wheel.size t.timers

(* sentinel for the allocation-free timer pop; compared physically, so a
   user-scheduled [fun () -> ()] can never collide with it *)
let no_timer () = ()

let step_default t =
  if not (Queue.is_empty t.ready) then begin
    (Queue.pop t.ready) ();
    true
  end
  else begin
    let f = Wheel.take_or t.timers ~default:no_timer in
    if f == no_timer then false
    else begin
      t.clock <- Wheel.pos t.timers;
      f ();
      true
    end
  end

(* move every timer due at the minimum deadline into the choice set: ties
   are concurrent transitions, and the chooser sequences them (interleaved
   with whatever they enable) instead of inheriting wheel insertion order.
   A hoisted timer's handle is consumed, so a same-instant [cancel] of a
   tied sibling becomes a no-op — the thunk runs; the runtime's guarded
   wakeups (e.g. a wait's [resumed] flag) make that a visible no-op, which
   is exactly what the sanitizer wants to observe. *)
let hoist_due t ex =
  match Wheel.peek_time t.timers with
  | None -> ()
  | Some tmin ->
    t.clock <- tmin;
    let continue = ref true in
    while !continue do
      match Wheel.peek_time t.timers with
      | Some tm when tm = tmin -> (
        match Wheel.pop_handle t.timers with
        | Some h ->
          let seq = Wheel.seq h in
          let tag =
            match Hashtbl.find_opt ex.timer_tags seq with
            | Some tg ->
              Hashtbl.remove ex.timer_tags seq;
              tg
            | None -> Anon
          in
          ex_push ex tag (Wheel.value h)
        | None -> continue := false)
      | _ -> continue := false
    done

let step_explore t ex =
  if ex.ex_n = 0 then hoist_due t ex;
  if ex.ex_n = 0 then false
  else begin
    let i =
      if ex.ex_n = 1 then 0
      else begin
        let i = ex.choose (Array.sub ex.ex_tags 0 ex.ex_n) in
        if i < 0 || i >= ex.ex_n then invalid_arg "Engine chooser: index out of range";
        i
      end
    in
    (match ex.observe with Some f -> f ex.ex_tags.(i) | None -> ());
    (ex_take ex i) ();
    true
  end

let step t = match t.ex with None -> step_default t | Some ex -> step_explore t ex

let run ?until t =
  let continue () =
    match until with
    | None -> true
    | Some deadline -> (
      (* only advance past the deadline if posted (same-instant) work
         remains; timers beyond the deadline stay pending *)
      if ready_count t > 0 then t.clock <= deadline
      else
        match Wheel.peek_time t.timers with
        | None -> false
        | Some time -> time <= deadline)
  in
  while continue () && step t do
    ()
  done;
  match until with
  | Some deadline when t.clock < deadline && ready_count t = 0 -> t.clock <- deadline
  | _ -> ()
