(* Hierarchical timer wheel with a heap fallback for far-future deadlines.

   Levels are 32 slots wide; the slot width at level [l] is [32^l] us, so the
   wheel covers [32^levels] us (~17.9 min) from the current position. One slot
   holds exactly one "tick" of its level at any moment (ticks only approach as
   the position advances, they never wrap past a live entry), so the first
   non-empty slot in tick order holds the level's minimum.

   Pops drive everything: popping from a level >= 1 slot re-places that slot's
   surviving siblings relative to the new position (the cascade), which lands
   them at a strictly lower level because they share the popped entry's tick.
   Peeks never cascade — they only scan and lazily drop cancelled entries — so
   a peek can never misplace an entry that a later push would have outrun.

   Two memoisations keep steady-state pops cheap and allocation-free:

   - Each level memoises its minimum entry (its slot is derivable from its
     time). The memo survives pops from *other* levels: a pop only moves
     [pos] up to the global minimum, never past a live entry, so a level's
     min is unchanged until that level itself is mutated — a push into it, a
     cancel of the memoised entry, or a pop/cascade touching it.

   - A level-0 slot is a single microsecond, so its entries all share the
     current minimum time and pop in seq order. The first pop from such a
     slot moves the surviving siblings into the [due] queue in seq order;
     while the queue holds a live entry, its head is the global minimum and
     a pop is O(1). Same-instant pushes append (their seq is the largest
     yet), keeping the queue sorted.

   Dead entries (popped or cancelled) are skipped in place rather than
   filtered out; a slot's storage is reclaimed when a scan finds it fully
   dead, when its level empties, or at cascade time.

   Determinism: entries carry a global sequence number and every comparison
   (within a slot, across levels, and against the far heap) is on
   [(time, seq)], so pop order is exactly that of the plain binary heap. *)

let bits = 5
let slots_per_level = 1 lsl bits
let levels = 6
let mask = slots_per_level - 1

(* the handle is the entry itself: one allocation per push *)
type 'a handle = {
  time : Time.t;
  seq : int;
  value : 'a;
  mutable level : int;
      (* 0..levels-1 = wheel level, [levels] = far heap, -1 = dead *)
  mutable heap_h : Heap.handle option;  (* set only for far-heap entries *)
}

type 'a t = {
  mutable seq : int;
  mutable alive : int;
  mutable pos : Time.t;  (* time of the last pop; pushes are clamped to it *)
  slots : 'a handle list array array;
      (* level rows start as the shared [empty] row and materialise on first
         placement, keeping [create] cheap (an engine is created per
         simulation, and most only ever touch one or two levels) *)
  empty : 'a handle list array;
  counts : int array;  (* live entries per level, to skip empty levels *)
  cands : 'a handle option array;
      (* per-level memo: the level's min live entry; None = stale *)
  mutable due : 'a handle list;
      (* current-microsecond drain, ascending seq; head = next pop *)
  mutable due_tail : 'a handle list;
      (* same-instant pushes while draining, newest first; reversed onto
         [due] when it empties (two-list queue) *)
  far : 'a handle Heap.t;
}

let create () =
  let empty = Array.make slots_per_level [] in
  {
    seq = 0;
    alive = 0;
    pos = Time.zero;
    slots = Array.make levels empty;
    empty;
    counts = Array.make levels 0;
    cands = Array.make levels None;
    due = [];
    due_tail = [];
    far = Heap.create ();
  }

let is_empty t = t.alive = 0
let size t = t.alive
let pos t = t.pos
let cancelled h = h.level < 0
let live h = h.level >= 0
let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)
let slot_of time l = (time lsr (bits * l)) land mask

let rec place t e l =
  if l = levels then begin
    e.level <- levels;
    e.heap_h <- Some (Heap.push t.far ~time:e.time e)
  end
  else if (e.time lsr (bits * l)) - (t.pos lsr (bits * l)) <= mask then begin
    e.level <- l;
    let row = t.slots.(l) in
    let row =
      if row != t.empty then row
      else begin
        let r = Array.make slots_per_level [] in
        t.slots.(l) <- r;
        r
      end
    in
    let idx = slot_of e.time l in
    row.(idx) <- e :: row.(idx);
    t.counts.(l) <- t.counts.(l) + 1;
    (* a valid memo only improves: [e] smaller means [e] is the new min;
       a stale memo stays stale (nothing cheap to compare against) *)
    match t.cands.(l) with
    | Some b when entry_lt e b -> t.cands.(l) <- Some e
    | _ -> ()
  end
  else place t e (l + 1)

let due_active t =
  match t.due with
  | _ :: _ -> true
  | [] -> ( match t.due_tail with _ :: _ -> true | [] -> false)

let push t ~time value =
  let time = if time < t.pos then t.pos else time in
  let e = { time; seq = t.seq; value; level = 0; heap_h = None } in
  t.seq <- t.seq + 1;
  t.alive <- t.alive + 1;
  if time = t.pos && due_active t then begin
    (* same-instant push while the current microsecond drains: this entry's
       seq is the largest yet, so it pops after everything queued — it goes
       on the tail list, reversed in when the head list empties. Due
       entries stay accounted to level 0 (drain/cancel decrement there). *)
    (* depfast-lint: allow unbounded-growth — same-instant tail: reversed
       into the head list and drained before the microsecond advances *)
    t.due_tail <- e :: t.due_tail;
    t.counts.(0) <- t.counts.(0) + 1
  end
  else place t e 0;
  e

let cancel t h =
  if live h then begin
    let l = h.level in
    h.level <- -1;
    t.alive <- t.alive - 1;
    match h.heap_h with
    | Some hh ->
      h.heap_h <- None;
      Heap.cancel t.far hh
    | None ->
      t.counts.(l) <- t.counts.(l) - 1;
      if t.counts.(l) = 0 then begin
        (* a level with no live entries can shed its dead ones eagerly *)
        Array.fill t.slots.(l) 0 slots_per_level [];
        t.cands.(l) <- None
      end
      else begin
        match t.cands.(l) with
        | Some b when b == h -> t.cands.(l) <- None
        | _ -> ()
      end
  end

(* min live entry of a slot, skipping dead entries in place (no rebuild and
   no allocation until the final [Some]); [None] if it holds none *)
let rec slot_min_from best = function
  | [] -> best
  | e :: tl -> slot_min_from (if live e && entry_lt e best then e else best) tl

let rec slot_min es =
  match es with
  | [] -> None
  | e :: tl -> if live e then Some (slot_min_from e tl) else slot_min tl

(* min of the first slot with a live entry, in tick order from the current
   position; fully-dead slots met on the way are emptied. Only called when
   the level has at least one live entry, so it always finds one. *)
let level_candidate t l =
  let c = (t.pos lsr (bits * l)) land mask in
  let found = ref None in
  let d = ref 0 in
  while (match !found with None -> true | Some _ -> false) && !d <= mask do
    let idx = (c + !d) land mask in
    (match t.slots.(l).(idx) with
    | [] -> ()
    | es -> (
      match slot_min es with
      | Some _ as m -> found := m
      | None -> t.slots.(l).(idx) <- []));
    incr d
  done;
  !found

(* level of the minimum slot entry, or -1 if all levels are empty; tracks
   the running best as a plain int so the scan allocates nothing (the memo
   array holds the entries), refreshing stale memos as it goes *)
let rec best_slot_level t l bl =
  if l >= levels then bl
  else begin
    let bl =
      if t.counts.(l) = 0 then bl
      else begin
        (match t.cands.(l) with
        | Some _ -> ()
        | None -> t.cands.(l) <- level_candidate t l);
        match (t.cands.(l), if bl < 0 then None else t.cands.(bl)) with
        | Some e, Some b -> if entry_lt e b then l else bl
        | Some _, None -> l
        | None, _ -> bl (* unreachable: the level has live entries *)
      end
    in
    best_slot_level t (l + 1) bl
  end

(* drop dead (cancelled) entries from the front of the due queue, folding the
   tail list in when the head list runs out; afterwards a non-empty [t.due]
   starts with a live entry and [t.due_tail] is empty or unreachable-first *)
let rec settle_due t =
  match t.due with
  | e :: tl ->
    if not (live e) then begin
      t.due <- tl;
      settle_due t
    end
  | [] -> (
    match t.due_tail with
    | [] -> ()
    | tail ->
      t.due_tail <- [];
      t.due <- List.rev tail;
      settle_due t)

let peek_time t =
  settle_due t;
  match t.due with
  | e :: _ -> Some e.time
  | [] -> begin
    let bl = best_slot_level t 0 (-1) in
    match ((if bl < 0 then None else t.cands.(bl)), Heap.peek_time t.far) with
    | Some e, Some ft -> Some (if ft < e.time then ft else e.time)
    | Some e, None -> Some e.time
    | None, (Some _ as ft) -> ft
    | None, None -> None
  end

(* [true] if the slot list is in strictly descending seq order — direct
   pushes prepend with monotonically increasing seq *)
let rec seq_descending : 'a handle list -> bool = function
  | a :: (b :: _ as tl) -> a.seq > b.seq && seq_descending tl
  | _ -> true

(* [true] for strictly ascending seq order — a cascade re-places a
   descending slot by prepending, which reverses it *)
let rec seq_ascending : 'a handle list -> bool = function
  | a :: (b :: _ as tl) -> a.seq < b.seq && seq_ascending tl
  | _ -> true

(* reverse, keeping only live entries; one cons per survivor *)
let rec rev_live acc = function
  | [] -> acc
  | x :: tl -> rev_live (if live x then x :: acc else acc) tl

(* hand the current microsecond's entries (all sharing the popped time) to
   the due queue in seq order. An ascending slot — the cascade case — is
   adopted as-is, allocating nothing; dead entries in it are dropped lazily
   by [settle_due]. The queue is empty here: [pop] only reaches the slot
   scan once it is. *)
let activate_due t es =
  if seq_ascending es then t.due <- es
  else if seq_descending es then t.due <- rev_live [] es
  else
    t.due <-
      List.sort
        (fun (a : _ handle) b -> compare a.seq b.seq)
        (List.filter (fun x -> live x) es)

(* bookkeeping for removing entry [e]; callers then read e.time/e.value *)

let drain_due t e tl =
  t.due <- tl;
  e.level <- -1;
  t.alive <- t.alive - 1;
  t.counts.(0) <- t.counts.(0) - 1;
  t.pos <- e.time

let drain_far t e =
  e.level <- -1;
  e.heap_h <- None;
  t.alive <- t.alive - 1;
  t.pos <- e.time

let drain_slot t e l =
  e.level <- -1;
  t.alive <- t.alive - 1;
  t.counts.(l) <- t.counts.(l) - 1;
  t.pos <- e.time;
  t.cands.(l) <- None;
  let idx = slot_of e.time l in
  if l > 0 then begin
    (* cascade: the live siblings share the popped entry's level-[l] tick,
       which is now the current one, so each re-places at a strictly lower
       level; [place] keeps the destination levels' memos consistent. Dead
       entries are skipped inline — no intermediate list. *)
    let es = t.slots.(l).(idx) in
    t.slots.(l).(idx) <- [];
    List.iter
      (fun x ->
        if live x then begin
          t.counts.(l) <- t.counts.(l) - 1;
          place t x 0
        end)
      es
  end
  else begin
    match t.slots.(0).(idx) with
    | [] -> ()
    | es ->
      t.slots.(0).(idx) <- [];
      activate_due t es
  end

(* the next slot-or-far entry, with ties broken on (time, seq): a far entry
   left beyond the horizon at push time can come due as [pos] advances and
   tie with a younger wheel entry *)
let take_scan t =
  let bl = best_slot_level t 0 (-1) in
  match (if bl < 0 then None else t.cands.(bl)) with
  | None -> (
    match Heap.pop t.far with
    | None -> None
    | Some (_, e) ->
      drain_far t e;
      Some e)
  | Some e -> (
    match Heap.peek t.far with
    | Some (_, fe) when entry_lt fe e -> (
      match Heap.pop t.far with
      | None -> None (* unreachable: just peeked *)
      | Some (_, fe) ->
        drain_far t fe;
        Some fe)
    | _ ->
      drain_slot t e bl;
      Some e)

let pop t =
  settle_due t;
  match t.due with
  | e :: tl ->
    drain_due t e tl;
    Some (e.time, e.value)
  | [] -> (
    match take_scan t with None -> None | Some e -> Some (e.time, e.value))

(* [pop] returning the whole entry, for callers (the engine's schedule
   explorer) that need the payload together with its identity *)
let pop_handle t =
  settle_due t;
  match t.due with
  | e :: tl ->
    drain_due t e tl;
    Some e
  | [] -> take_scan t

let seq (h : 'a handle) = h.seq
let value (h : 'a handle) = h.value
let time (h : 'a handle) = h.time

(* allocation-free pop for the scheduler hot loop: returns [default] when
   empty; the popped entry's time is left in [pos] *)
let take_or t ~default =
  settle_due t;
  match t.due with
  | e :: tl ->
    drain_due t e tl;
    e.value
  | [] -> ( match take_scan t with None -> default | Some e -> e.value)