(* Domain-safety fixture A: a module-level queue deliberately shared
   outside any lock or owner record.

   [track] is the depfast-domains pass's canonical unsafe-shared cell:
   every worker writes it with no Mutex region in sight, so the pass
   emits a Flagged certificate and an [unsafe-shared-state] finding —
   acknowledged by the pragma below, since being that cell is this
   fixture's whole job. The explorer registers a probe over it, and the
   [domains-false-independence] scenario routes writes into it from
   {!Fixture_dom_b} through a parameter alias the static effect
   footprints cannot see — the seeded mismatch that proves the dynamic
   cross-check works. *)

(* depfast-lint: allow unsafe-shared-state *)
let track : int Queue.t = Queue.create ()

let export () = track
let depth () = Queue.length track
let reset () = Queue.clear track
let bump i = Queue.add i track

let drain () =
  while not (Queue.is_empty track) do
    ignore (Queue.pop track)
  done

(* The spawn closure names only [worker_loop], whose call component
   holds both the growth site ([bump]) and its drain — keeping the
   boundedness certificate clean over this deliberately-racy file. *)
let worker_loop sched ~rounds =
  for i = 1 to rounds do
    bump i;
    Depfast.Sched.yield sched
  done;
  drain ()

let spawn_worker sched ~name ~rounds =
  Depfast.Sched.spawn sched ~node:0 ~name (fun () -> worker_loop sched ~rounds)
