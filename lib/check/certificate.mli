(** Static wait-structure certificates for the dynamic cross-check.

    Built by running the static passes ({!Analysis.Source_lint} per file,
    {!Analysis.Interproc} whole-project) over a set of sources and
    recording, per file, whether any {e unallowed} wait-structure finding
    ([red-wait], [cross-module-red-wait], [unbounded-wait],
    [degenerate-quorum], [vacuous-quorum], [quorum-arity-mismatch],
    [orphan-wait]) was reported. A file with none is {e certified clean}:
    statically, its waits are all quorum-shaped. The schedule explorer
    treats a dynamic violation inside a certified-clean file as a
    [certificate-mismatch] — evidence that one of the two analyses is
    wrong, and a reportable bug either way. *)

type t

val build : roots:string list -> unit -> t
(** Walk the given directories for [.ml] files (skipping [_build] and
    [.git]), run the static passes (including {!Analysis.Bounds} and
    {!Analysis.Domains}), and record per-file verdicts plus the per-file
    effect footprints feeding {!independent}. *)

val of_findings :
  ?exposures:(string * (string * string) list) list ->
  files:string list ->
  Analysis.Finding.t list ->
  t
(** Assemble a certificate from already-computed findings (for tests).
    [exposures] is the per-file static SPG exposure map in
    {!Analysis.Spg_static.analyze_sources} shape: [(path, (fault-name,
    color) pairs)]. *)

val covered : t -> string -> bool
(** Was this file part of the certified set? Paths are compared by suffix,
    so repo-relative names match sandbox-relative walks. *)

val clean : t -> string -> bool
(** Covered and free of unallowed wait-structure findings. *)

val bounded_clean : t -> string -> bool
(** Covered and free of {e any} [unbounded-growth] finding — allowed or
    not: a pragma acknowledges a defect without bounding the site, so
    the boundedness certificate never vouches for a pragma'd file. The
    explorer's queue-depth gauges cross-check against this verdict. *)

val domain_clean : t -> string -> bool
(** Free of {e any} [unsafe-shared-state] finding — allowed or not: a
    pragma acknowledges a data race without removing the cell, so the
    parallel explorer refuses to run a scenario's runs concurrently
    while any of its modules carries one. This is the gate that lets
    the static domains pass certify the parallelism safe. *)

val independent : t -> string -> string -> bool
(** The static DPOR feed: are these two {e distinct} source files
    independent under the depfast-domains effect footprints — neither
    file's write set meets the other's read or write set (over
    schedule-relevant top-level cells)? Same-file pairs and files
    without a recorded footprint are never independent. The explorer
    uses a [true] here to drop same-node transition pairs from the
    persistent set, and its sanitizer probes cross-check the claim
    dynamically. Paths are compared by suffix, like {!covered}. *)

val fault_key : Cluster.Fault.kind -> string
(** The depfast-spg fault-name an injectable fault maps onto
    (contention variants share their slow sibling's key):
    ["cpu-slow" | "disk-slow" | "memory" | "net-slow"]. *)

val exposed : t -> file:string -> kind:Cluster.Fault.kind -> bool
(** Does the static SPG exposure map give this file {e any} wait
    exposed to this fault kind? The dynamic cross-check escalates to
    [certificate-mismatch] when an observed propagation edge lands in a
    covered file with no such exposure. Paths compared by suffix. *)

val red_exposed : t -> file:string -> kind:Cluster.Fault.kind -> bool
(** Like {!exposed}, but only counting fate-sharing (red) waits — the
    staleness check reports static red exposures never observed red. *)

val exposure_count : t -> int
(** Total (file, fault, color) exposure entries recorded. *)

val flagged_files : t -> string list
(** Certified-set files carrying at least one unallowed wait finding,
    sorted. *)

val growth_flagged_files : t -> string list
(** Certified-set files carrying at least one unbounded-growth finding
    (allowed or not), sorted. *)

val unsafe_shared_files : t -> string list
(** Files carrying at least one unsafe-shared-state finding (allowed or
    not), sorted. *)

val covered_count : t -> int
