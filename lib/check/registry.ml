(* The scenario registry: the closed worlds `depfast_check` explores.

   Core scenarios (condvar/mutex/signal/quorum stress) put every coroutine
   on one node: they exercise genuinely shared state, so the footprint
   heuristic must not prune — same-node transitions always conflict, which
   forces full enumeration. The Raft scenarios are share-nothing
   message-passing: cross-node effects travel only through Link-tagged
   deliveries, where persistent-set pruning is sound and earns its keep. *)

open Scenario

let reg_file = "lib/check/registry.ml"
let fixtures_file = "lib/check/fixtures.ml"
let fixture_dom_a_file = "lib/check/fixture_dom_a.ml"
let fixture_dom_b_file = "lib/check/fixture_dom_b.ml"
let fixture_spg_file = "lib/check/fixture_spg.ml"

let core_provenance name =
  if has_prefix ~prefix:"fx." name then Some fixtures_file
  else if has_prefix ~prefix:"sg." name then Some fixture_spg_file
  else if
    List.exists
      (fun p -> has_prefix ~prefix:p name)
      [ "ys."; "mx."; "cv."; "sig."; "qr."; "drv." ]
  then Some reg_file
  else None

let dom_provenance name =
  if has_prefix ~prefix:"da." name then Some fixture_dom_a_file
  else if has_prefix ~prefix:"db." name then Some fixture_dom_b_file
  else core_provenance name

let raft_provenance name =
  if has_prefix ~prefix:"raft." name then Some "lib/raft/server.ml"
  else if has_prefix ~prefix:"rpc." name then Some "lib/cluster/rpc.ml"
  else if has_prefix ~prefix:"client" name then Some "lib/raft/client.ml"
  else if has_prefix ~prefix:"drv." name then Some reg_file
  else None

(* ---------- core runtime scenarios (exhaustive) ---------- *)

let yield_storm =
  {
    name = "yield-storm";
    descr = "three coroutines interleave three yields each; pure scheduler choice";
    exhaustive = false;
    (* 12 steps over 3 equal coroutines: more interleavings than the
       default budget — intentionally a truncation workout *)
    gating = true;
    modules = [ reg_file ];
    par_safe = true;
    default_schedules = 7000;
    fault = None;
    allow = allow_none;
    provenance = core_provenance;
    make =
      (fun _san sched ->
        let steps = ref 0 in
        for i = 1 to 3 do
          Depfast.Sched.spawn sched ~node:0
            ~name:(Printf.sprintf "ys.worker%d" i)
            (fun () ->
              for _ = 1 to 3 do
                Depfast.Sched.yield sched;
                incr steps
              done)
        done;
        {
          until = None;
          check =
            (fun () ->
              if !steps = 9 then []
              else [ Printf.sprintf "expected 9 increments, got %d" !steps ]);
        });
  }

let mutex_handoff =
  {
    name = "mutex-handoff";
    descr = "three coroutines contend on one mutex, suspending inside the section";
    exhaustive = true;
    gating = true;
    modules = [ reg_file; "lib/core/mutex.ml" ];
    par_safe = true;
    default_schedules = 2500;
    fault = None;
    allow = allow_none;
    provenance = core_provenance;
    make =
      (fun _san sched ->
        let mu = Depfast.Mutex.create ~label:"mx.mu" () in
        let in_section = ref false in
        let overlapped = ref false in
        let finished = ref 0 in
        for i = 1 to 3 do
          Depfast.Sched.spawn sched ~node:0
            ~name:(Printf.sprintf "mx.worker%d" i)
            (fun () ->
              Depfast.Mutex.with_lock sched mu (fun () ->
                  if !in_section then overlapped := true;
                  in_section := true;
                  Depfast.Sched.yield sched;
                  in_section := false);
              incr finished)
        done;
        {
          until = None;
          check =
            (fun () ->
              (if !overlapped then [ "two coroutines inside the critical section" ]
               else [])
              @ (if !finished = 3 then []
                 else [ Printf.sprintf "expected 3 sections, got %d" !finished ])
              @
              if Depfast.Mutex.locked mu then [ "mutex still held at the end" ] else []);
        });
  }

let condvar_handshake =
  {
    name = "condvar-handshake";
    descr = "two consumers wait for a flag under a mutex; producer broadcasts";
    exhaustive = true;
    gating = true;
    modules = [ reg_file; "lib/core/condvar.ml"; "lib/core/mutex.ml" ];
    par_safe = true;
    default_schedules = 2500;
    fault = None;
    allow = allow_none;
    provenance = core_provenance;
    make =
      (fun _san sched ->
        let mu = Depfast.Mutex.create ~label:"cv.mu" () in
        let cv = Depfast.Condvar.create ~label:"cv.cond" () in
        let flag = ref false in
        let seen = ref 0 in
        for i = 1 to 2 do
          Depfast.Sched.spawn sched ~node:0
            ~name:(Printf.sprintf "cv.consumer%d" i)
            (fun () ->
              Depfast.Mutex.lock sched mu;
              while not !flag do
                (* capture the generation *before* unlocking: a broadcast
                   landing between unlock and wait then finds the captured
                   event already fired — no lost wakeup *)
                let gen = Depfast.Condvar.event cv in
                Depfast.Mutex.unlock mu;
                Depfast.Sched.wait sched gen;
                Depfast.Mutex.lock sched mu
              done;
              incr seen;
              Depfast.Mutex.unlock mu)
        done;
        Depfast.Sched.spawn sched ~node:0 ~name:"cv.producer" (fun () ->
            Depfast.Sched.yield sched;
            Depfast.Mutex.lock sched mu;
            flag := true;
            Depfast.Condvar.broadcast cv;
            Depfast.Mutex.unlock mu);
        {
          until = None;
          check =
            (fun () ->
              if !seen = 2 then []
              else [ Printf.sprintf "expected 2 consumers past the flag, got %d" !seen ]);
        });
  }

let signal_fanout =
  {
    name = "signal-fanout";
    descr = "two bounded waiters on one signal; firer races the parks";
    exhaustive = true;
    gating = true;
    modules = [ reg_file; "lib/core/sched.ml" ];
    par_safe = true;
    default_schedules = 1000;
    fault = None;
    allow = allow_none;
    provenance = core_provenance;
    make =
      (fun _san sched ->
        let ev = Depfast.Event.signal ~label:"sig.go" () in
        let ready = ref 0 in
        let timed_out = ref 0 in
        for i = 1 to 2 do
          Depfast.Sched.spawn sched ~node:0
            ~name:(Printf.sprintf "sig.waiter%d" i)
            (fun () ->
              match Depfast.Sched.wait_timeout sched ev (Sim.Time.ms 500) with
              | Depfast.Sched.Ready -> incr ready
              | Depfast.Sched.Timed_out -> incr timed_out)
        done;
        Depfast.Sched.spawn sched ~node:0 ~name:"sig.firer" (fun () ->
            Depfast.Sched.yield sched;
            Depfast.Event.fire ev);
        {
          until = None;
          check =
            (fun () ->
              (* the firer is always runnable before virtual time can
                 advance to the timeout, so every waiter must wake Ready *)
              if !ready = 2 && !timed_out = 0 then []
              else
                [
                  Printf.sprintf "expected 2 ready waiters, got %d ready / %d timed out"
                    !ready !timed_out;
                ]);
        });
  }

let quorum_majority =
  {
    name = "quorum-majority";
    descr = "correctly-wired majority quorum over three racing responders";
    exhaustive = true;
    gating = true;
    modules = [ reg_file; "lib/core/event.ml" ];
    par_safe = true;
    default_schedules = 2500;
    fault = None;
    allow = allow_none;
    provenance = core_provenance;
    make =
      (fun _san sched ->
        let replies =
          List.map (fun peer -> Depfast.Event.rpc_completion ~label:"qr.reply" ~peer ())
            [ 1; 2; 3 ]
        in
        let completed = ref false in
        (* wire the quorum before the engine runs: [Majority] re-evaluates
           its threshold on every [add], so adding an already-ready child
           to a 1-child quorum would fire it prematurely *)
        let q = Depfast.Event.quorum ~label:"qr.quorum" Depfast.Event.Majority in
        List.iter (fun r -> Depfast.Event.add q ~child:r) replies;
        Depfast.Sched.spawn sched ~node:0 ~name:"qr.builder" (fun () ->
            Depfast.Sched.wait sched q;
            completed := true);
        List.iteri
          (fun i ev ->
            Depfast.Sched.spawn sched ~node:0
              ~name:(Printf.sprintf "qr.responder%d" (i + 1))
              (fun () ->
                Depfast.Sched.yield sched;
                Depfast.Event.fire ev))
          replies;
        {
          until = None;
          check =
            (fun () -> if !completed then [] else [ "builder never passed its quorum" ]);
        });
  }

let broken_quorum =
  {
    name = "broken-quorum";
    descr =
      "deliberately broken fixture: ready replies are dropped from the quorum \
       wiring; only some interleavings hang";
    exhaustive = true;
    gating = false;
    (* a known-bad fixture: explored on demand and by the test suite, but
       not part of the CI gate *)
    modules = [ fixtures_file ];
    par_safe = true;
    default_schedules = 1000;
    fault = None;
    allow = allow_none;
    provenance = core_provenance;
    make =
      (fun _san sched ->
        Fixtures.spawn_broken_quorum sched;
        { until = None; check = (fun () -> []) });
  }

let leaky_backlog =
  {
    name = "leaky-backlog";
    descr =
      "deliberately seeded certificate mismatch: a producer overflows a queue \
       whose drain the static boundedness pass certified, while the consumer \
       is parked on a gate nobody fires";
    exhaustive = true;
    gating = false;
    (* a known-bad fixture for the queue-depth gauge sanitizer: explored
       on demand and by the test suite, not part of the CI gate *)
    modules = [ fixtures_file ];
    par_safe = false;
    default_schedules = 200;
    fault = None;
    allow = allow_none;
    provenance = core_provenance;
    make =
      (fun san sched ->
        Fixtures.spawn_leaky_backlog san sched;
        (* stop well before the consumer's 1000 ms gate timeout: the
           pending timer keeps the terminal state non-quiescent, so the
           parked consumer is the scenario's point, not a violation *)
        { until = Some (Sim.Time.ms 10); check = (fun () -> []) });
  }

let spg_alias_blindspot =
  {
    name = "spg-alias-blindspot";
    descr =
      "deliberately seeded certificate mismatch: a net-slow completion event \
       escapes through a module-level mailbox to a bare waiter the static \
       call graph never connects to the source, so the observed propagation \
       edge lands outside the static exposure set";
    exhaustive = true;
    gating = false;
    (* a known-bad fixture for the SPG cross-check: explored on demand
       and by the test suite, not part of the CI gate *)
    modules = [ fixture_spg_file ];
    par_safe = false;
    default_schedules = 200;
    (* the injected kind the observed edges are attributed to; the
       fixture file has no static net-slow exposure, so any observed
       edge is outside the blast radius *)
    fault = Some Cluster.Fault.Net_slow;
    allow = allow_none;
    provenance = core_provenance;
    make =
      (fun _san sched ->
        Fixture_spg.spawn sched;
        { until = None; check = (fun () -> []) });
  }

let domains_disjoint =
  {
    name = "domains-disjoint";
    descr =
      "two fixture workers on one node touch disjoint module state; the \
       depfast-domains footprints license pruning their interleavings, and \
       probes confirm neither file touches the other's cell";
    exhaustive = true;
    gating = true;
    modules = [ fixture_dom_a_file; fixture_dom_b_file ];
    par_safe = false;
    default_schedules = 400;
    fault = None;
    allow = allow_none;
    provenance = dom_provenance;
    make =
      (fun san sched ->
        Fixture_dom_a.reset ();
        Fixture_dom_b.reset ();
        Sanitizer.add_probe san ~label:"dom.track" ~file:fixture_dom_a_file (fun () ->
            Fixture_dom_a.depth ());
        Sanitizer.add_probe san ~label:"dom.counter" ~file:fixture_dom_b_file
          (fun () -> Fixture_dom_b.value ());
        Fixture_dom_a.spawn_worker sched ~name:"da.worker" ~rounds:3;
        Fixture_dom_b.spawn_worker sched ~name:"db.worker" ~rounds:3;
        {
          until = None;
          check =
            (fun () ->
              (* both outcomes are schedule-independent: A drains its own
                 queue, B's counter counts its own bumps *)
              (if Fixture_dom_a.depth () = 0 then []
               else [ Printf.sprintf "track not drained: depth %d" (Fixture_dom_a.depth ()) ])
              @
              if Fixture_dom_b.value () = 3 then []
              else [ Printf.sprintf "expected counter 3, got %d" (Fixture_dom_b.value ()) ]);
        });
  }

let domains_false_independence =
  {
    name = "domains-false-independence";
    descr =
      "deliberately seeded certificate mismatch: fixture B writes fixture A's \
       queue through a parameter alias the static effect footprints cannot \
       see, so the probe cross-check must catch the false independence claim";
    exhaustive = true;
    gating = false;
    (* a known-bad fixture for the independence cross-check: explored on
       demand and by the test suite, not part of the CI gate *)
    modules = [ fixture_dom_a_file; fixture_dom_b_file ];
    par_safe = false;
    default_schedules = 200;
    fault = None;
    allow = allow_none;
    provenance = dom_provenance;
    make =
      (fun san sched ->
        Fixture_dom_a.reset ();
        Sanitizer.add_probe san ~label:"dom.track" ~file:fixture_dom_a_file (fun () ->
            Fixture_dom_a.depth ());
        Fixture_dom_a.spawn_worker sched ~name:"da.worker" ~rounds:2;
        Fixture_dom_b.spawn_relay sched ~name:"db.relay" (Fixture_dom_a.export ())
          ~rounds:2;
        { until = None; check = (fun () -> []) });
  }

(* ---------- Raft scenarios (bounded, message-passing) ---------- *)

let raft_cfg =
  {
    Raft.Config.default with
    Raft.Config.enable_hiccups = false;
    election_timeout_min = Sim.Time.ms 80;
    election_timeout_max = Sim.Time.ms 160;
    heartbeat_interval = Sim.Time.ms 20;
    rpc_timeout = Sim.Time.ms 100;
    client_timeout = Sim.Time.ms 300;
  }

let make_raft ?(cfg = raft_cfg) san sched ~n =
  let g = Raft.Group.create sched ~n ~cfg () in
  Cluster.Rpc.set_choice_mode g.Raft.Group.rpc true;
  Cluster.Rpc.set_net_sanitizer g.Raft.Group.rpc (fun msg ->
      Sanitizer.report san ~rule:Analysis.Finding.net_fifo_violation msg);
  g

(* Safety only: terminal states of truncated interleavings may legally
   have no leader yet, but can never have two in one term, and committed
   prefixes can never disagree. *)
let raft_safety g () =
  let msgs = ref [] in
  let leaders = Hashtbl.create 4 in
  List.iter
    (fun s ->
      if Raft.Server.is_leader s then begin
        let term = Raft.Server.term s in
        match Hashtbl.find_opt leaders term with
        | Some other ->
          msgs :=
            Printf.sprintf "two leaders in term %d: s%d and s%d" term other
              (Raft.Server.id s)
            :: !msgs
        | None -> Hashtbl.replace leaders term (Raft.Server.id s)
      end)
    g.Raft.Group.servers;
  let rec pairs = function
    | [] | [ _ ] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          let upto = min (Raft.Server.commit_index a) (Raft.Server.commit_index b) in
          for i = 1 to upto do
            let ta = Raft.Rlog.term_at (Raft.Server.log a) i in
            let tb = Raft.Rlog.term_at (Raft.Server.log b) i in
            match (ta, tb) with
            | Some ta, Some tb when ta <> tb ->
              msgs :=
                Printf.sprintf
                  "committed logs disagree at index %d: s%d has term %d, s%d has term %d"
                  i (Raft.Server.id a) ta (Raft.Server.id b) tb
                :: !msgs
            | _ -> ()
          done)
        rest;
      pairs rest
  in
  pairs g.Raft.Group.servers;
  List.rev !msgs

let raft_allow ~n ~node = node >= n (* nodes past the servers are clients *)

let raft_elect ~n ~name ~schedules ~until_ms =
  {
    name;
    descr = Printf.sprintf "%d-replica leader election under delivery reordering" n;
    exhaustive = false;
    gating = true;
    modules = [ "lib/raft/server.ml"; "lib/cluster/rpc.ml" ];
    par_safe = true;
    default_schedules = schedules;
    fault = None;
    allow = raft_allow ~n;
    provenance = raft_provenance;
    make =
      (fun san sched ->
        let g = make_raft san sched ~n in
        Depfast.Sched.spawn sched ~node:0 ~name:"drv.elect" (fun () ->
            Raft.Group.elect g 0);
        { until = Some (Sim.Time.ms until_ms); check = raft_safety g });
  }

let raft_elect_3 = raft_elect ~n:3 ~name:"raft-elect-3" ~schedules:1000 ~until_ms:120
let raft_elect_5 = raft_elect ~n:5 ~name:"raft-elect-5" ~schedules:400 ~until_ms:120

let raft_replicate_3 =
  {
    name = "raft-replicate-3";
    descr = "elect, then one client write replicates to a 3-replica group";
    exhaustive = false;
    gating = true;
    modules = [ "lib/raft/server.ml"; "lib/raft/client.ml"; "lib/cluster/rpc.ml" ];
    par_safe = true;
    default_schedules = 500;
    fault = None;
    allow = raft_allow ~n:3;
    provenance = raft_provenance;
    make =
      (fun san sched ->
        let g = make_raft san sched ~n:3 in
        let client = List.hd (Raft.Group.make_clients g ~count:1 ()) in
        Cluster.Node.spawn (Raft.Client.node client) ~name:"drv.client" (fun () ->
            Raft.Group.elect g 0;
            ignore (Raft.Client.put client ~key:"k" ~value:"v"));
        { until = Some (Sim.Time.ms 250); check = raft_safety g });
  }

let raft_partition_heal_3 =
  {
    name = "raft-partition-heal-3";
    descr = "leader isolated, survivors re-elect, partition heals";
    exhaustive = false;
    gating = true;
    modules = [ "lib/raft/server.ml"; "lib/cluster/rpc.ml"; "lib/cluster/net.ml" ];
    par_safe = true;
    default_schedules = 300;
    fault = None;
    allow = raft_allow ~n:3;
    provenance = raft_provenance;
    make =
      (fun san sched ->
        let g = make_raft san sched ~n:3 in
        Depfast.Sched.spawn sched ~node:0 ~name:"drv.partition" (fun () ->
            Raft.Group.elect g 0;
            Depfast.Sched.sleep sched (Sim.Time.ms 30);
            Cluster.Rpc.partition g.Raft.Group.rpc 0 1;
            Cluster.Rpc.partition g.Raft.Group.rpc 0 2;
            Depfast.Sched.sleep sched (Sim.Time.ms 200);
            Cluster.Rpc.heal g.Raft.Group.rpc 0 1;
            Cluster.Rpc.heal g.Raft.Group.rpc 0 2);
        { until = Some (Sim.Time.ms 350); check = raft_safety g });
  }

let raft_rewind_3 =
  {
    name = "raft-rewind-3";
    descr =
      "writes continue while a follower is cut off; on heal the pipelined \
       AppendEntries stream is rejected and rewound";
    exhaustive = false;
    gating = true;
    modules = [ "lib/raft/server.ml"; "lib/raft/client.ml"; "lib/cluster/rpc.ml" ];
    par_safe = true;
    default_schedules = 300;
    fault = None;
    allow = raft_allow ~n:3;
    provenance = raft_provenance;
    make =
      (fun san sched ->
        let g = make_raft san sched ~n:3 in
        let client = List.hd (Raft.Group.make_clients g ~count:1 ()) in
        Cluster.Node.spawn (Raft.Client.node client) ~name:"drv.client" (fun () ->
            Raft.Group.elect g 0;
            ignore (Raft.Client.put client ~key:"a" ~value:"1");
            Cluster.Rpc.partition g.Raft.Group.rpc 0 2;
            ignore (Raft.Client.put client ~key:"b" ~value:"2");
            ignore (Raft.Client.put client ~key:"c" ~value:"3");
            Cluster.Rpc.heal g.Raft.Group.rpc 0 2;
            ignore (Raft.Client.put client ~key:"d" ~value:"4"));
        { until = Some (Sim.Time.ms 500); check = raft_safety g });
  }

let raft_slow_disk_admission_3 =
  (* the paper's §2 RethinkDB scenario, inverted: with the leader's disk
     fail-slow, rethink_like's pending queue grows with offered load, but
     DepFastRaft's bounded admission sheds at the door — in EVERY explored
     interleaving the gauge stays at or under [admission_depth] (there is
     no scheduling point between the depth check and the enqueue). *)
  let admission_depth = 4 in
  {
    name = "raft-slow-disk-admission-3";
    descr =
      "slow leader disk under offered load: the admission-queue gauge stays \
       within its certified bound while requests shed fail-fast";
    exhaustive = false;
    gating = true;
    modules = [ "lib/raft/server.ml"; "lib/raft/client.ml"; "lib/cluster/rpc.ml" ];
    par_safe = true;
    default_schedules = 150;
    (* the injected fault feeds the SPG cross-check: observed propagation
       edges must land inside the static disk-slow exposure set *)
    fault = Some Cluster.Fault.Disk_slow;
    allow = raft_allow ~n:3;
    provenance = raft_provenance;
    make =
      (fun san sched ->
        let cfg = { raft_cfg with Raft.Config.max_batch = 8; admission_depth } in
        let g = make_raft ~cfg san sched ~n:3 in
        let leader = Raft.Group.server g 0 in
        Sanitizer.add_gauge san ~label:"raft.pending" ~file:"lib/raft/server.ml"
          ~cap:admission_depth (fun () -> Raft.Server.pending_depth leader);
        let clients = Raft.Group.make_clients g ~count:8 () in
        (* named into the raft. provenance prefix: this driver's only
           waits happen inside Server election code, so the SPG edges it
           observes belong to lib/raft/server.ml, not this file *)
        Depfast.Sched.spawn sched ~node:0 ~name:"raft.drv-slowdisk" (fun () ->
            Raft.Group.elect g 0;
            (* fail-slow, not fail-stop: every leader-disk I/O takes 40x *)
            Cluster.Station.set_penalty
              (Cluster.Disk.station (Cluster.Node.disk (Raft.Server.node leader)))
              (fun () -> 40.0));
        List.iteri
          (fun i c ->
            Cluster.Node.spawn (Raft.Client.node c)
              ~name:(Printf.sprintf "drv.load%d" i)
              (fun () ->
                for k = 1 to 3 do
                  ignore (Raft.Client.put c ~key:(Printf.sprintf "k%d" k) ~value:"v")
                done))
          clients;
        { until = Some (Sim.Time.ms 250); check = raft_safety g });
  }

let all =
  [
    yield_storm;
    mutex_handoff;
    condvar_handshake;
    signal_fanout;
    quorum_majority;
    broken_quorum;
    leaky_backlog;
    spg_alias_blindspot;
    domains_disjoint;
    domains_false_independence;
    raft_elect_3;
    raft_elect_5;
    raft_replicate_3;
    raft_partition_heal_3;
    raft_rewind_3;
    raft_slow_disk_admission_3;
  ]

let gating_scenarios = List.filter (fun s -> s.gating) all
let find name = List.find_opt (fun s -> s.name = name) all
