(** SPG blind-spot fixture: a net-slow source whose event escapes
    through a module-level mailbox to a waiter the static call graph
    never connects it to — the seeded [certificate-mismatch] for the
    slowness-propagation cross-check. *)

val reset : unit -> unit
(** Clear the mailbox — module state persists across re-executions. *)

val post : peer:int -> Depfast.Event.t
(** Mint a remote completion (the net-slow source) and enqueue it. *)

val waiter_loop : Depfast.Sched.t -> unit
(** Take the escaped event and park on it bare — the statically
    invisible fate-sharing wait. *)

val spawn : Depfast.Sched.t -> unit
(** Wire one poster/waiter/firer round: waiter on node 0 parks on a
    completion attributed to node 1, which fires it after a yield. *)
