(** The schedule-space explorer: bounded, DPOR-pruned enumeration of
    interleavings by stateless re-execution.

    With a fixed engine seed a run is fully determined by its sequence of
    chooser decisions, so a schedule {e is} its decision prefix. The
    explorer DFSes over prefixes: each run replays its prefix, then takes
    default decisions to a terminal state while recording every enabled
    set it passed; backtracking re-runs with the prefix extended by an
    alternative decision. Alternatives outside the persistent set — the
    conflict closure of the taken transition under a node-footprint
    independence heuristic — are skipped and counted as {e pruned}.

    The heuristic is exact for share-nothing message-passing scenarios
    (cross-node effects travel through [Link]-tagged deliveries, which
    conflict on their destination); scenarios with genuinely shared state
    put all coroutines on one node, which disables pruning and falls back
    to full enumeration.

    With a {!Certificate.t}, the depfast-domains effect footprints refine
    the same-node case: two same-node transitions whose coroutines trace
    (via the scenario's provenance map) to distinct files that
    {!Certificate.independent} holds disjoint do not conflict either.
    Sanitizer probes cross-check the claim dynamically — two such files
    both observed mutating one probed cell raise [certificate-mismatch]. *)

type budget = {
  max_schedules : int;  (** explored runs *)
  max_steps : int;  (** choice points per run before truncation *)
  max_depth : int;  (** no new backtrack points past this choice index *)
  delay_bound : int;  (** max prefix extensions along one lineage *)
}

val default_budget : budget
(** 2000 schedules, 4000 steps/run, depth 200, unbounded delay. *)

type run = {
  r_steps : Sim.Engine.tag array array;
      (** enabled sets at choice points past the prefix *)
  r_nsteps : int;
  r_truncated : bool;
  r_quiescent : bool;  (** engine fully drained (no posted work, no timers) *)
  r_violations : Sanitizer.violation list;
  r_overflows : Sanitizer.overflow list;
      (** queue-depth gauges whose watermark passed the declared cap *)
  r_probes : (string * string * string list) list;
      (** probe label, owning file, files observed mutating the cell *)
  r_spg_edges : (string * Depfast.Spg.edge) list;
      (** observed slowness-propagation edges attributed (via the
          scenario's provenance map) to the waiter's source file; only
          collected when the scenario injects a fault *)
  r_tag_file : Sim.Engine.tag -> string option;
      (** scenario provenance of a transition tag, via this run's monitor *)
}

val run_one : Scenario.t -> prefix:int array -> budget:budget -> run
(** Execute a single schedule: replay [prefix], then default decisions.
    [prefix = [||]] is the program-order schedule — what a plain test run
    would see. *)

type result = {
  scenario : string;
  schedules : int;  (** schedules actually executed *)
  pruned : int;  (** enabled alternatives skipped as independent (DPOR) *)
  truncated_runs : int;
  nonquiescent_runs : int;  (** runs stopped by deadline, not quiescence *)
  deepest : int;  (** most choice points seen in one run *)
  complete : bool;  (** frontier exhausted within the schedule budget *)
  findings : Analysis.Finding.t list;  (** deduplicated, sorted *)
}

val explore :
  ?budget:budget -> ?certs:Certificate.t -> ?jobs:int -> Scenario.t -> result
(** Enumerate schedules. Each distinct violation site is reported once,
    annotated with how many schedules exhibited it; with [certs], any
    dynamic violation whose coroutine provenance maps into a
    certified-clean file additionally raises [certificate-mismatch].
    Queue-depth gauges registered by the scenario are sampled at every
    choice point and terminal state; an overflow whose file is
    {!Certificate.bounded_clean} also raises [certificate-mismatch].
    Shared-cell probes are likewise sampled at every choice point; two
    files held {!Certificate.independent} that both mutate one probed
    cell raise [certificate-mismatch] (the DPOR feed claimed a false
    independence). Without [certs] the feed is off: pruning falls back
    to the pure node heuristic.

    [jobs > 1] explores the frontier on that many OCaml 5 domains with
    work-stealing deques of schedule prefixes; every run already builds
    its own engine/scheduler/sanitizer, and each worker keeps its own
    accumulators and independence memo, merged deterministically at
    join. Because the frontier reachable from the root is one fixed
    tree and every aggregate is order-independent (sums, maxima, keyed
    unions, canonical "first" ranks over the explored-prefix set),
    parallel and serial runs report identical schedule totals and
    identical findings on every frontier-complete scenario. Scenarios
    that declare [par_safe = false], or whose modules carry an
    unsafe-shared-state verdict in [certs], are forced back to one
    domain — the static domains pass is what certifies the parallelism
    safe. *)

(**/**)

val footprint : Sim.Engine.tag -> int option
val conflicts : Sim.Engine.tag -> Sim.Engine.tag -> bool
val persistent_set : Sim.Engine.tag array -> int -> bool array
