(* A scenario is a small closed world the schedule explorer re-executes
   once per explored interleaving. [make] builds all state against a fresh
   scheduler (and wires any network it creates into choice mode + the
   sanitizer); the returned instance tells the explorer how long to run
   and how to judge the terminal state. *)

type instance = {
  until : Sim.Time.t option;
      (* virtual-time deadline for the run; [None] = run to quiescence
         (only for scenarios with no recurring timers) *)
  check : unit -> string list;
      (* terminal-state invariants; one message per violation. Must hold
         in *every* interleaving, including truncated ones — prefer
         safety properties (agreement, at-most-one-leader) over liveness *)
}

type t = {
  name : string;
  descr : string;
  exhaustive : bool;
      (* small enough that the default budget fully enumerates it *)
  gating : bool;  (* part of the default registry run (CI) *)
  modules : string list;  (* source files exercised — certificate domain *)
  par_safe : bool;
      (* every run touches only state [make] built: safe to execute runs
         concurrently on separate domains. Scenarios seeded through
         process-global fixture cells must say false *)
  default_schedules : int;  (* per-scenario schedule budget in `all` runs *)
  fault : Cluster.Fault.kind option;
      (* the fail-slow fault this scenario injects, if any: runs feed
         their observed SPG edges into the static-exposure cross-check
         attributed to this kind *)
  allow : node:int -> bool;  (* Spg.audit exemption (clients) *)
  provenance : string -> string option;
      (* coroutine name -> source file implementing it, for the
         certificate cross-check *)
  make : Sanitizer.t -> Depfast.Sched.t -> instance;
}

let no_provenance (_ : string) : string option = None
let allow_none ~node:(_ : int) = false
let allow_all ~node:(_ : int) = true

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix
