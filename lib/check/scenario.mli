(** A scenario: a small closed world the schedule explorer re-executes
    once per explored interleaving.

    [make] builds all state against a fresh scheduler (wiring any
    network it creates into choice mode and the sanitizer, and
    registering any queue-depth gauges); the returned instance tells
    the explorer how long to run and how to judge the terminal state. *)

type instance = {
  until : Sim.Time.t option;
      (** virtual-time deadline for the run; [None] = run to quiescence
          (only for scenarios with no recurring timers) *)
  check : unit -> string list;
      (** terminal-state invariants; one message per violation. Must
          hold in {e every} interleaving, including truncated ones —
          prefer safety properties (agreement, at-most-one-leader) over
          liveness *)
}

type t = {
  name : string;
  descr : string;
  exhaustive : bool;
      (** small enough that the default budget fully enumerates it *)
  gating : bool;  (** part of the default registry run (CI) *)
  modules : string list;  (** source files exercised — certificate domain *)
  par_safe : bool;
      (** every run touches only state [make] built: safe to execute
          runs concurrently on separate domains. Scenarios seeded
          through process-global fixture cells must say false — the
          explorer forces such scenarios back to one domain *)
  default_schedules : int;  (** per-scenario schedule budget in [all] runs *)
  fault : Cluster.Fault.kind option;
      (** the fail-slow fault this scenario injects, if any. When set,
          every explored run's observed SPG edges are folded into the
          cumulative per-kind edge set and cross-checked against the
          static exposure map ({!Certificate.exposed}): an observed
          propagation edge outside the static blast radius escalates to
          [certificate-mismatch] *)
  allow : node:int -> bool;  (** [Spg.audit] exemption (clients) *)
  provenance : string -> string option;
      (** coroutine name -> source file implementing it, for the
          certificate cross-check *)
  make : Sanitizer.t -> Depfast.Sched.t -> instance;
}

val no_provenance : string -> string option
val allow_none : node:int -> bool
val allow_all : node:int -> bool

val has_prefix : prefix:string -> string -> bool
(** [has_prefix ~prefix s] — does [s] start with [prefix]? Used by the
    registry's provenance maps over coroutine-name prefixes. *)
