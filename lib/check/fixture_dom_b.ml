(* Domain-safety fixture B: a lock-free counter, plus the seeded blind
   spot for the probe cross-check.

   [counter] is the guarded exemplar: an [Atomic], so every operation is
   a linearizable read-modify-write and the depfast-domains pass
   certifies it without a Mutex. Atomic cells are also excluded from the
   file's independence footprint, which leaves this file's footprint
   empty — statically independent of {!Fixture_dom_a}.

   [relay] is the blind spot made flesh: it writes whatever queue it is
   handed, and a parameter alias canonicalizes to ["?q"] — invisible to
   both the growth and the effect analyses. Hand it
   [Fixture_dom_a.export ()] and this file mutates A's [track] while the
   static footprints still hold the two files independent: exactly the
   false-independence claim the explorer's probes must catch. *)

let counter = Atomic.make 0

let value () = Atomic.get counter
let reset () = Atomic.set counter 0
let bump () = Atomic.incr counter

let spawn_worker sched ~name ~rounds =
  Depfast.Sched.spawn sched ~node:0 ~name (fun () ->
      for _ = 1 to rounds do
        bump ();
        Depfast.Sched.yield sched
      done)

let relay q n = Queue.add n q

let spawn_relay sched ~name q ~rounds =
  Depfast.Sched.spawn sched ~node:0 ~name (fun () ->
      for i = 1 to rounds do
        relay q i;
        Depfast.Sched.yield sched
      done)
