(** The scenario registry: the closed worlds [depfast_check] explores.

    Core scenarios (condvar/mutex/signal/quorum stress) put every
    coroutine on one node — genuinely shared state, so the footprint
    heuristic prunes nothing and exploration is exhaustive. The Raft
    scenarios are share-nothing message-passing, where persistent-set
    pruning is sound. Two deliberately-defective fixtures
    ([broken-quorum], [leaky-backlog]) are registered non-gating: the
    test suite explores them to prove the sanitizers catch their bugs,
    but they are excluded from the CI gate. *)

val all : Scenario.t list
(** Every registered scenario, defective fixtures included. *)

val gating_scenarios : Scenario.t list
(** The CI gate: [all] minus the non-gating fixtures. *)

val find : string -> Scenario.t option
(** Look a scenario up by name. *)
