(* The fail-slow sanitizer: runtime invariants checked at every explored
   state. One instance per explored run; [create] installs a Sched monitor
   that shadows the park/wake/resume protocol of every coroutine, and the
   checks below compare that shadow against the event structures. *)

type state = Running | Parked | Woken | Finished

type coro = {
  c_cid : int;
  c_node : int;
  c_name : string;
  mutable c_state : state;
  mutable c_event : Depfast.Event.t option;  (* event parked on, when Parked/Woken *)
}

type violation = {
  rule : string;  (* an {!Analysis.Finding} rule id *)
  coroutine : string;
  node : int;
  event_id : int;
  event_label : string;
  message : string;
}

(* A queue-depth gauge: a scenario-registered probe over a live
   container whose boundedness the static pass certified. The explorer
   samples every gauge at each choice point and at terminal states; a
   watermark past the declared cap is a [queue-gauge-overflow], and —
   when the gauge's file is statically certified bounded — a
   certificate mismatch (the cross-check lives in Explore). *)
type gauge = {
  g_label : string;
  g_file : string;  (* source file owning the container *)
  g_cap : int;  (* declared bound *)
  g_read : unit -> int;  (* live depth *)
  mutable g_watermark : int;
  mutable g_reported : bool;  (* overflow reported once per run *)
}

type overflow = { o_label : string; o_file : string; o_cap : int; o_watermark : int }

(* A shared-cell probe for the domains cross-check: a scenario-registered
   observation of a top-level mutable cell's value. The explorer samples
   every probe at each choice point, attributing a change since the last
   sample to the source file of the transition that just ran; the set of
   files observed mutating the cell is the dynamic half of the static
   independence feed (two files the effect footprints hold independent
   must never both appear as writers of one probed cell). *)
type probe = {
  p_label : string;
  p_file : string;  (* file owning the probed cell *)
  p_read : unit -> int;
  mutable p_last : int option;
  mutable p_writers : string list;  (* files observed changing the value *)
}

type t = {
  sched : Depfast.Sched.t;
  coros : (int, coro) Hashtbl.t;
  events : (int, Depfast.Event.t) Hashtbl.t;  (* every event seen at a park *)
  mutable gauges : gauge list;
  mutable probes : probe list;
  mutable violations : violation list;  (* reverse report order *)
}

let report t ~rule ?(coroutine = "") ?(node = -1) ?(event_id = 0) ?(event_label = "")
    message =
  t.violations <- { rule; coroutine; node; event_id; event_label; message } :: t.violations

let violations t = List.rev t.violations

let report_for t ~rule (c : coro) ev message =
  report t ~rule ~coroutine:c.c_name ~node:c.c_node ~event_id:(Depfast.Event.id ev)
    ~event_label:(Depfast.Event.label ev) message

let rec remember_event t ev =
  let id = Depfast.Event.id ev in
  if not (Hashtbl.mem t.events id) then begin
    Hashtbl.replace t.events id ev;
    Depfast.Event.iter_children ev (remember_event t)
  end

let add_gauge t ~label ~file ~cap read =
  t.gauges <-
    {
      g_label = label;
      g_file = file;
      g_cap = cap;
      g_read = read;
      g_watermark = 0;
      g_reported = false;
    }
    :: t.gauges

(* The violation message is watermark-free on purpose: the explorer
   dedups sites across schedules by (rule, label, message), and the
   depth at which a gauge happens to be sampled varies per
   interleaving. Watermarks travel via {!gauge_overflows}. *)
let sample_gauges t =
  List.iter
    (fun g ->
      let d = g.g_read () in
      if d > g.g_watermark then g.g_watermark <- d;
      if g.g_watermark > g.g_cap && not g.g_reported then begin
        g.g_reported <- true;
        report t ~rule:Analysis.Finding.queue_gauge_overflow ~event_label:g.g_label
          (Printf.sprintf
             "queue depth exceeded the declared cap %d at a statically certified site \
              (%s)"
             g.g_cap g.g_file)
      end)
    t.gauges

let add_probe t ~label ~file read =
  t.probes <-
    { p_label = label; p_file = file; p_read = read; p_last = None; p_writers = [] }
    :: t.probes

let sample_probes t ~writer =
  List.iter
    (fun p ->
      let v = p.p_read () in
      (match (p.p_last, writer) with
      | Some old, Some f when v <> old ->
        if not (List.mem f p.p_writers) then p.p_writers <- f :: p.p_writers
      | _ -> ());
      p.p_last <- Some v)
    t.probes

let probe_writers t =
  List.map (fun p -> (p.p_label, p.p_file, List.sort compare p.p_writers)) t.probes
  |> List.sort compare

let coro_name t cid =
  match Hashtbl.find_opt t.coros cid with Some c -> Some c.c_name | None -> None

let gauge_overflows t =
  List.filter_map
    (fun g ->
      if g.g_watermark > g.g_cap then
        Some
          { o_label = g.g_label; o_file = g.g_file; o_cap = g.g_cap; o_watermark = g.g_watermark }
      else None)
    t.gauges
  |> List.sort compare

let create sched =
  let t =
    {
      sched;
      coros = Hashtbl.create 64;
      events = Hashtbl.create 64;
      gauges = [];
      probes = [];
      violations = [];
    }
  in
  let coro_of cid ~node ~name =
    match Hashtbl.find_opt t.coros cid with
    | Some c -> c
    | None ->
      let c = { c_cid = cid; c_node = node; c_name = name; c_state = Running; c_event = None } in
      Hashtbl.replace t.coros cid c;
      c
  in
  Depfast.Sched.set_monitor sched
    (Some
       {
         Depfast.Sched.on_spawn =
           (fun ~cid ~node ~name -> ignore (coro_of cid ~node ~name));
         on_park =
           (fun ~cid ~node ~name ev ->
             let c = coro_of cid ~node ~name in
             c.c_state <- Parked;
             c.c_event <- Some ev;
             remember_event t ev);
         on_wake =
           (fun ~cid ev _wake ->
             match Hashtbl.find_opt t.coros cid with
             | None -> ()
             | Some c -> (
               match c.c_state with
               | Parked -> c.c_state <- Woken
               | Running | Woken | Finished ->
                 report_for t ~rule:Analysis.Finding.double_wake c ev
                   "second wakeup delivered for a single park"));
         on_resume =
           (fun ~cid ->
             match Hashtbl.find_opt t.coros cid with
             | None -> ()
             | Some c ->
               c.c_state <- Running;
               c.c_event <- None);
         on_done =
           (fun ~cid ->
             match Hashtbl.find_opt t.coros cid with
             | None -> ()
             | Some c -> c.c_state <- Finished);
       });
  t

(* Can [ev] still fire, structurally: is it ready, or does it have enough
   live (non-abandoned, recursively satisfiable) children to reach its
   required count? Basic pending events can always be fired by someone. *)
let rec can_fire ev =
  let open Depfast.Event in
  if is_ready ev then true
  else if is_abandoned ev then false
  else
    match kind ev with
    | Signal | Timer | Rpc | Disk -> true
    | Quorum | And_ | Or_ ->
      let fireable = ref 0 in
      iter_children ev (fun c -> if can_fire c then incr fireable);
      !fireable >= required ev

(* Counter consistency — sound at any point of the run: a still-pending
   compound's packed ready counter must equal a recount of its children,
   and can never exceed the child count (a double-fire would). Once the
   compound has fired, late-firing children legitimately outrun the
   counter, so only the arity bound is checked. *)
let check_counters t =
  let visited = Hashtbl.create 32 in
  let rec go ev =
    let open Depfast.Event in
    let id = Depfast.Event.id ev in
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      (match kind ev with
      | Signal | Timer | Rpc | Disk -> ()
      | Quorum | And_ | Or_ ->
        let actual = ref 0 in
        iter_children ev (fun c -> if is_ready c then incr actual);
        let counted = ready_children ev in
        if counted > child_count ev then
          report t ~rule:Analysis.Finding.quorum_overcount ~event_id:id
            ~event_label:(label ev)
            (Printf.sprintf "ready counter %d exceeds arity %d" counted (child_count ev))
        else if (not (is_ready ev)) && (not (is_abandoned ev)) && counted <> !actual then
          report t ~rule:Analysis.Finding.quorum_overcount ~event_id:id
            ~event_label:(label ev)
            (Printf.sprintf "ready counter %d but %d children are ready" counted !actual));
      iter_children ev go
    end
  in
  Hashtbl.iter (fun _ ev -> go ev) t.events

(* Lost wakeup — sound at any point: firing an event runs its observers
   synchronously, so a coroutine parked on a *ready* event without a
   delivered wakeup can only mean the park/wake protocol broke. *)
let check_live t =
  check_counters t;
  Hashtbl.iter
    (fun _ c ->
      match (c.c_state, c.c_event) with
      | Parked, Some ev when Depfast.Event.is_ready ev ->
        report_for t ~rule:Analysis.Finding.lost_wakeup c ev
          "parked on a ready event with no wakeup delivered"
      | _ -> ())
    t.coros

(* Terminal checks — only sound when the engine is truly quiescent (no
   posted work, no live timers): then nothing can ever add children, fire
   events, or time a wait out, so every parked coroutine is parked
   forever. *)
let check_quiescent t =
  check_live t;
  Hashtbl.iter
    (fun _ c ->
      match (c.c_state, c.c_event) with
      | Parked, Some ev when not (Depfast.Event.is_ready ev) ->
        if Depfast.Event.is_abandoned ev then
          report_for t ~rule:Analysis.Finding.parked_on_abandoned c ev
            "parked forever on an abandoned event"
        else if not (can_fire ev) then
          report_for t ~rule:Analysis.Finding.unsatisfiable_wait c ev
            (Printf.sprintf "needs %d ready children but only %d can still fire"
               (Depfast.Event.required ev)
               (let n = ref 0 in
                Depfast.Event.iter_children ev (fun ch -> if can_fire ch then incr n);
                !n))
        else
          report_for t ~rule:Analysis.Finding.parked_at_quiescence c ev
            "parked with no work left that could fire the event"
      | _ -> ())
    t.coros

let parked_count t =
  Hashtbl.fold (fun _ c acc -> if c.c_state = Parked then acc + 1 else acc) t.coros 0
