(* Static wait-structure certificates: which source files did the static
   passes (per-file lint + whole-project interprocedural analysis) certify
   as free of fail-slow wait hazards? The schedule explorer cross-checks
   these against its dynamic evidence: a dynamic violation inside a
   certified-clean module means one of the two analyses is wrong — either
   the static pass missed a flow or the runtime broke an assumption — and
   is reported as [certificate-mismatch]. *)

(* the static rules that speak about wait structure *)
let wait_rules =
  Analysis.Finding.
    [
      red_wait;
      cross_module_red_wait;
      unbounded_wait;
      degenerate_quorum;
      vacuous_quorum;
      quorum_arity_mismatch;
      orphan_wait;
    ]

type t = {
  files : (string, unit) Hashtbl.t;  (* every file covered by the certificate *)
  flagged : (string, unit) Hashtbl.t;  (* files with an unallowed wait finding *)
  growth_flagged : (string, unit) Hashtbl.t;
      (* files with any unbounded-growth finding, allowed or not: a
         pragma acknowledges the defect, it does not bound the site, so
         the boundedness certificate must not vouch for the file *)
  footprints : (string, string list * string list) Hashtbl.t;
      (* per-file (cells read, cells written) from the depfast-domains
         pass — the static DPOR independence feed *)
  unsafe_shared : (string, unit) Hashtbl.t;
      (* files with any unsafe-shared-state finding, allowed or not: a
         pragma acknowledges the race, it does not make the cell
         domain-safe, so the parallel explorer must not run such a
         file's scenarios concurrently *)
  exposure : (string, (string * string) list) Hashtbl.t;
      (* per-file static SPG exposure from the depfast-spg pass:
         (fault-kind name, wait color) pairs — the blast radius the
         dynamic cross-check compares observed edges against *)
}

let of_findings ?(exposures = []) ~files findings =
  let t =
    {
      files = Hashtbl.create 64;
      flagged = Hashtbl.create 16;
      growth_flagged = Hashtbl.create 16;
      footprints = Hashtbl.create 64;
      unsafe_shared = Hashtbl.create 16;
      exposure = Hashtbl.create 16;
    }
  in
  List.iter (fun f -> Hashtbl.replace t.files f ()) files;
  List.iter (fun (path, xs) -> Hashtbl.replace t.exposure path xs) exposures;
  List.iter
    (fun (f : Analysis.Finding.t) ->
      match f.Analysis.Finding.loc with
      | Analysis.Finding.Node _ -> ()
      | Analysis.Finding.File { file; _ } ->
        if (not f.Analysis.Finding.allowed) && List.mem f.Analysis.Finding.rule wait_rules
        then Hashtbl.replace t.flagged file ();
        if f.Analysis.Finding.rule = Analysis.Finding.unbounded_growth then
          Hashtbl.replace t.growth_flagged file ();
        if f.Analysis.Finding.rule = Analysis.Finding.unsafe_shared_state then
          Hashtbl.replace t.unsafe_shared file ())
    findings;
  t

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  src

let rec walk acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || entry = ".git" then acc
           else walk acc (Filename.concat path entry))
         acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let build ~roots () =
  let files = List.rev (List.fold_left walk [] roots) in
  let sources = List.map (fun p -> (p, read_file p)) files in
  let bounds_findings, _certs = Analysis.Bounds.analyze_sources sources in
  let domains_findings, _dcerts, footprints = Analysis.Domains.analyze_sources sources in
  let spg_findings, _scerts, exposures = Analysis.Spg_static.analyze_sources sources in
  let findings =
    Analysis.Interproc.analyze_sources sources
    @ List.concat_map
        (fun (p, src) -> Analysis.Source_lint.lint_string ~path:p src)
        sources
    @ bounds_findings @ domains_findings @ spg_findings
  in
  let t = of_findings ~exposures ~files findings in
  List.iter (fun (path, fp) -> Hashtbl.replace t.footprints path fp) footprints;
  t

(* Paths from different origins (repo-relative, test-sandbox-relative,
   absolute) are matched on their suffix: "lib/check/fixtures.ml" matches
   "../lib/check/fixtures.ml". *)
let suffix_matches ~path ~suffix =
  path = suffix
  || (let lp = String.length path and ls = String.length suffix in
      lp > ls
      && String.sub path (lp - ls) ls = suffix
      && path.[lp - ls - 1] = '/')

let mem_by_suffix tbl file =
  Hashtbl.fold
    (fun path () acc ->
      acc || suffix_matches ~path ~suffix:file || suffix_matches ~path:file ~suffix:path)
    tbl false

let covered t file = mem_by_suffix t.files file

(* [Cluster.Fault.kind] -> the depfast-spg fault-name it maps onto.
   Contention variants propagate through the same resource as their
   slow siblings, so they share an exposure key. *)
let fault_key = function
  | Cluster.Fault.Cpu_slow | Cluster.Fault.Cpu_contention -> "cpu-slow"
  | Cluster.Fault.Disk_slow | Cluster.Fault.Disk_contention -> "disk-slow"
  | Cluster.Fault.Mem_contention -> "memory"
  | Cluster.Fault.Net_slow -> "net-slow"

let exposure_by_suffix t file =
  Hashtbl.fold
    (fun path xs acc ->
      if suffix_matches ~path ~suffix:file || suffix_matches ~path:file ~suffix:path then
        xs @ acc
      else acc)
    t.exposure []

let exposed t ~file ~kind =
  let key = fault_key kind in
  List.exists (fun (k, _color) -> k = key) (exposure_by_suffix t file)

let red_exposed t ~file ~kind =
  let key = fault_key kind in
  List.exists (fun (k, color) -> k = key && color = "red") (exposure_by_suffix t file)

let exposure_count t =
  Hashtbl.fold (fun _ xs acc -> acc + List.length xs) t.exposure 0
let clean t file = covered t file && not (mem_by_suffix t.flagged file)
let bounded_clean t file = covered t file && not (mem_by_suffix t.growth_flagged file)
let domain_clean t file = not (mem_by_suffix t.unsafe_shared file)

let footprint_by_suffix t file =
  Hashtbl.fold
    (fun path fp acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if suffix_matches ~path ~suffix:file || suffix_matches ~path:file ~suffix:path
        then Some fp
        else None)
    t.footprints None

(* Two distinct files are independent when neither's write set meets the
   other's read or write set. Same-file pairs are never independent:
   file-level footprints cannot see closure-captured locals, and two
   transitions from one file routinely share them. Files with no
   recorded footprint conservatively conflict with everything. *)
let independent t fa fb =
  fa <> fb
  &&
  match (footprint_by_suffix t fa, footprint_by_suffix t fb) with
  | Some (ra, wa), Some (rb, wb) ->
    let disjoint xs ys = not (List.exists (fun x -> List.mem x ys) xs) in
    disjoint wa rb && disjoint wa wb && disjoint wb ra
  | _ -> false

let flagged_files t =
  List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) t.flagged [])

let growth_flagged_files t =
  List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) t.growth_flagged [])

let unsafe_shared_files t =
  List.sort compare (Hashtbl.fold (fun f () acc -> f :: acc) t.unsafe_shared [])

let covered_count t = Hashtbl.length t.files
