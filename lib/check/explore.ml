open Sim

(* Stateless schedule-space exploration by re-execution: given a fixed
   seed, a run is fully determined by the sequence of chooser decisions,
   so a schedule IS its decision prefix. The explorer does a DFS over
   prefixes: each run follows its prefix and then defaults (index 0) to a
   terminal state, recording the enabled set at every choice point past
   the prefix; backtracking re-runs with the prefix extended by an
   alternative decision. Alternatives are filtered by a persistent-set
   (DPOR-lite) heuristic: the conflict closure of the taken transition,
   where two transitions conflict iff their tag footprints land on the
   same node (unknown provenance conflicts with everything). This is
   exact for share-nothing message-passing scenarios — cross-node effects
   travel through Link-tagged deliveries — and scenarios with genuinely
   shared state put every coroutine on one node, disabling pruning.

   The depfast-domains certificate refines the same-node case: two
   same-node transitions whose coroutines trace to distinct source files
   that the static effect footprints hold independent (disjoint
   read/write sets over top-level cells) do not conflict either. That
   optimism is cross-checked dynamically: sanitizer probes observe
   registered shared cells at every choice point, attributing value
   changes to the file of the transition that just ran; two files
   claimed independent that both mutate one probed cell are reported as
   a [certificate-mismatch]. *)

exception Out_of_steps

type budget = {
  max_schedules : int;  (* explored runs *)
  max_steps : int;  (* choice points per run before truncation *)
  max_depth : int;  (* no new backtrack points past this choice index *)
  delay_bound : int;  (* max prefix extensions along one lineage *)
}

let default_budget =
  { max_schedules = 2000; max_steps = 4000; max_depth = 200; delay_bound = max_int }

type run = {
  r_steps : Engine.tag array array;
      (* enabled sets at choice points past the prefix (decision 0 taken) *)
  r_nsteps : int;  (* choice points seen, including prefix replay *)
  r_truncated : bool;
  r_quiescent : bool;
  r_violations : Sanitizer.violation list;
  r_overflows : Sanitizer.overflow list;  (* gauges past their declared cap *)
  r_probes : (string * string * string list) list;
      (* probe label, owning file, files observed mutating the cell *)
  r_tag_file : Engine.tag -> string option;
      (* scenario provenance of a transition tag, via this run's monitor
         (coroutine ids are run-local, so the mapping is too) *)
}

let footprint = function
  | Engine.Anon -> None
  | Engine.Coro (_, n) -> if n < 0 then None else Some n
  | Engine.On_node n -> Some n
  | Engine.Link (_, d) -> Some d

let conflicts a b =
  match (footprint a, footprint b) with
  | None, _ | _, None -> true
  | Some x, Some y -> x = y

(* conflict closure of [chosen] within [tags] under an arbitrary conflict
   relation: true for members of the persistent set; everything outside
   it is provably independent of the chosen transition and safe to skip *)
let persistent_set_by conflict tags chosen =
  let n = Array.length tags in
  let inset = Array.make n false in
  inset.(chosen) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if not inset.(i) then
        for j = 0 to n - 1 do
          if inset.(j) && conflict tags.(i) tags.(j) then begin
            inset.(i) <- true;
            changed := true
          end
        done
    done
  done;
  inset

let persistent_set tags chosen = persistent_set_by conflicts tags chosen

let run_one (scenario : Scenario.t) ~prefix ~budget =
  let engine = Engine.create ~seed:1L () in
  let trace = Depfast.Trace.create ~enabled:true () in
  let sched = Depfast.Sched.create ~trace engine in
  let san = Sanitizer.create sched in
  let nsteps = ref 0 in
  let truncated = ref false in
  let steps = ref [] in
  let plen = Array.length prefix in
  let tag_file tag =
    match tag with
    | Engine.Coro (cid, _) -> (
      match Sanitizer.coro_name san cid with
      | Some name -> scenario.Scenario.provenance name
      | None -> None)
    | _ -> None
  in
  let last_writer = ref None in
  Engine.set_chooser engine (fun tags ->
      (* queue-depth watermarks: every choice point is a reachable
         state, so the gauges see the containers mid-interleaving, not
         just at the end of the run *)
      Sanitizer.sample_gauges san;
      let i = !nsteps in
      if i >= budget.max_steps then raise Out_of_steps;
      incr nsteps;
      if i < plen then begin
        let c = prefix.(i) in
        if c < Array.length tags then c else 0
      end
      else begin
        steps := Array.copy tags :: !steps;
        0
      end);
  (* probe attribution rides the step observer, not the chooser: it sees
     every transition — singleton steps included — so a probed-cell
     change since the last sample is always the work of the previous
     transition (scenario setup runs under writer None) *)
  Engine.set_step_observer engine
    (Some
       (fun tag ->
         Sanitizer.sample_probes san ~writer:!last_writer;
         last_writer := tag_file tag));
  let inst = scenario.Scenario.make san sched in
  (try Depfast.Sched.run ?until:inst.Scenario.until sched with
  | Out_of_steps -> truncated := true
  | e ->
    Sanitizer.report san ~rule:Analysis.Finding.invariant_violation
      ("uncaught exception: " ^ Printexc.to_string e));
  let quiescent = (not !truncated) && Engine.pending engine = 0 in
  Sanitizer.sample_gauges san;
  Sanitizer.sample_probes san ~writer:!last_writer;
  if quiescent then Sanitizer.check_quiescent san else Sanitizer.check_live san;
  List.iter
    (fun msg -> Sanitizer.report san ~rule:Analysis.Finding.invariant_violation msg)
    (inst.Scenario.check ());
  List.iter
    (fun (v : Depfast.Spg.violation) ->
      let w = v.Depfast.Spg.v_wait in
      Sanitizer.report san ~rule:Analysis.Finding.dynamic_red_wait
        ~coroutine:w.Depfast.Trace.coroutine ~node:w.Depfast.Trace.node
        ~event_id:(Depfast.Trace.event_id w)
        ~event_label:(Depfast.Trace.event_label w)
        (Printf.sprintf "wait stallable by node %d alone" v.Depfast.Spg.v_peer))
    (Depfast.Spg.audit ~allow:scenario.Scenario.allow trace);
  {
    r_steps = Array.of_list (List.rev !steps);
    r_nsteps = !nsteps;
    r_truncated = !truncated;
    r_quiescent = quiescent;
    r_violations = Sanitizer.violations san;
    r_overflows = Sanitizer.gauge_overflows san;
    r_probes = Sanitizer.probe_writers san;
    r_tag_file = tag_file;
  }

(* a deduplicated violation site across all explored schedules *)
type site = {
  s_rule : string;
  s_coroutine : string;
  s_node : int;
  s_event_id : int;
  s_event_label : string;
  s_message : string;
  mutable s_runs : int;  (* schedules exhibiting it *)
  s_first : int;  (* first schedule (exploration order) that did *)
}

type result = {
  scenario : string;
  schedules : int;  (* schedules actually executed *)
  pruned : int;  (* enabled alternatives skipped as independent (DPOR) *)
  truncated_runs : int;
  nonquiescent_runs : int;
  deepest : int;  (* most choice points seen in one run *)
  complete : bool;  (* frontier exhausted within the schedule budget *)
  findings : Analysis.Finding.t list;  (* deduplicated, sorted *)
}

let finding_of_site scenario s =
  (* the event id is run-local (global counter, fresh engine per run):
     zeroed so reports are stable across runs and invocations *)
  let loc = Analysis.Finding.Node { event_id = 0; event_label = s.s_event_label } in
  let context =
    (if s.s_coroutine = "" then ""
     else Printf.sprintf " [coroutine %s, node %d]" s.s_coroutine s.s_node)
    ^ Printf.sprintf " (%d schedule%s, first #%d)" s.s_runs
        (if s.s_runs = 1 then "" else "s")
        s.s_first
  in
  Analysis.Finding.v ~rule:s.s_rule ~severity:Analysis.Finding.Error ~loc
    (Printf.sprintf "%s: %s%s" scenario s.s_message context)

let explore ?(budget = default_budget) ?certs (scenario : Scenario.t) =
  let stack = ref [ ([||], 0) ] in
  let schedules = ref 0 in
  let pruned = ref 0 in
  let truncated_runs = ref 0 in
  let nonquiescent_runs = ref 0 in
  let deepest = ref 0 in
  let sites : (string * string * string * string, site) Hashtbl.t =
    Hashtbl.create 16
  in
  let site_order = ref [] in
  (* gauge overflows aggregated across schedules: label -> worst case *)
  let overflows : (string, Sanitizer.overflow) Hashtbl.t = Hashtbl.create 4 in
  (* probe writer sets aggregated across schedules: label -> owner, files *)
  let probe_agg : (string, string * string list ref) Hashtbl.t = Hashtbl.create 4 in
  (* the static independence feed: memoized over file pairs, since the
     same pairs recur at every choice point of every schedule *)
  let indep =
    match certs with
    | None -> fun _ _ -> false
    | Some certs ->
      let memo = Hashtbl.create 16 in
      fun fa fb ->
        match Hashtbl.find_opt memo (fa, fb) with
        | Some v -> v
        | None ->
          let v = Certificate.independent certs fa fb in
          Hashtbl.add memo (fa, fb) v;
          v
  in
  (* per-run conflict relation: the node heuristic, refined on same-node
     pairs by the certificate feed when both tags trace to source files *)
  let conflict_for (run : run) a b =
    match (footprint a, footprint b) with
    | None, _ | _, None -> true
    | Some x, Some y ->
      x = y
      &&
      (match (run.r_tag_file a, run.r_tag_file b) with
      | Some fa, Some fb -> not (indep fa fb)
      | _ -> true)
  in
  while !stack <> [] && !schedules < budget.max_schedules do
    match !stack with
    | [] -> ()
    | (prefix, lineage) :: rest ->
      stack := rest;
      let run = run_one scenario ~prefix ~budget in
      let sid = !schedules in
      incr schedules;
      if run.r_truncated then incr truncated_runs;
      if not run.r_quiescent then incr nonquiescent_runs;
      if run.r_nsteps > !deepest then deepest := run.r_nsteps;
      List.iter
        (fun (v : Sanitizer.violation) ->
          (* event *ids* are a process-global counter, different in every
             re-executed run — sites are identified by label instead *)
          let key = (v.Sanitizer.rule, v.Sanitizer.coroutine, v.Sanitizer.event_label,
                     v.Sanitizer.message)
          in
          match Hashtbl.find_opt sites key with
          | Some s -> s.s_runs <- s.s_runs + 1
          | None ->
            let s =
              {
                s_rule = v.Sanitizer.rule;
                s_coroutine = v.Sanitizer.coroutine;
                s_node = v.Sanitizer.node;
                s_event_id = v.Sanitizer.event_id;
                s_event_label = v.Sanitizer.event_label;
                s_message = v.Sanitizer.message;
                s_runs = 1;
                s_first = sid;
              }
            in
            Hashtbl.replace sites key s;
            site_order := s :: !site_order)
        run.r_violations;
      List.iter
        (fun (o : Sanitizer.overflow) ->
          match Hashtbl.find_opt overflows o.Sanitizer.o_label with
          | Some prev when prev.Sanitizer.o_watermark >= o.Sanitizer.o_watermark -> ()
          | _ -> Hashtbl.replace overflows o.Sanitizer.o_label o)
        run.r_overflows;
      List.iter
        (fun (label, owner, writers) ->
          match Hashtbl.find_opt probe_agg label with
          | Some (_, acc) ->
            List.iter (fun w -> if not (List.mem w !acc) then acc := w :: !acc) writers
          | None -> Hashtbl.add probe_agg label (owner, ref writers))
        run.r_probes;
      let plen = Array.length prefix in
      if lineage < budget.delay_bound then begin
        let pushes = ref [] in
        Array.iteri
          (fun j tags ->
            let abs = plen + j in
            let n = Array.length tags in
            if abs < budget.max_depth then begin
              let inset = persistent_set_by (conflict_for run) tags 0 in
              let psize = Array.fold_left (fun a b -> if b then a + 1 else a) 0 inset in
              pruned := !pruned + (n - psize);
              for alt = n - 1 downto 1 do
                if inset.(alt) then begin
                  (* this run chose 0 at steps plen..abs-1; deviate at abs *)
                  let p' = Array.make (abs + 1) 0 in
                  Array.blit prefix 0 p' 0 plen;
                  p'.(abs) <- alt;
                  pushes := (p', lineage + 1) :: !pushes
                end
              done
            end
            else pruned := !pruned + (n - 1))
          run.r_steps;
        stack := !pushes @ !stack
      end
      else
        Array.iter (fun tags -> pruned := !pruned + (Array.length tags - 1)) run.r_steps
  done;
  let complete = !stack = [] && !truncated_runs = 0 in
  let dynamic = List.rev !site_order in
  let mismatches =
    match certs with
    | None -> []
    | Some certs ->
      List.filter_map
        (fun s ->
          if s.s_coroutine = "" then None
          else
            match scenario.Scenario.provenance s.s_coroutine with
            | Some file when Certificate.clean certs file ->
              Some
                (Analysis.Finding.v ~rule:Analysis.Finding.certificate_mismatch
                   ~severity:Analysis.Finding.Error
                   ~loc:(Analysis.Finding.File { file; line = 0 })
                   (Printf.sprintf
                      "%s: dynamic %s in coroutine %s, but the static certificate \
                       holds %s clean"
                      scenario.Scenario.name s.s_rule s.s_coroutine file))
            | _ -> None)
        dynamic
  in
  (* the boundedness cross-check: a gauge past its cap over a container
     whose file the static growth analysis certified bounded means one
     side is wrong — the static evidence doesn't actually run on the
     producing path, or the runtime broke an assumption *)
  let gauge_mismatches =
    match certs with
    | None -> []
    | Some certs ->
      Hashtbl.fold (fun _ o acc -> o :: acc) overflows []
      |> List.sort compare
      |> List.filter_map (fun (o : Sanitizer.overflow) ->
             if Certificate.bounded_clean certs o.Sanitizer.o_file then
               Some
                 (Analysis.Finding.v ~rule:Analysis.Finding.certificate_mismatch
                    ~severity:Analysis.Finding.Error
                    ~loc:
                      (Analysis.Finding.File { file = o.Sanitizer.o_file; line = 0 })
                    (Printf.sprintf
                       "%s: gauge %s reached depth %d past its declared cap %d, but \
                        the static boundedness certificate holds %s clean"
                       scenario.Scenario.name o.Sanitizer.o_label
                       o.Sanitizer.o_watermark o.Sanitizer.o_cap o.Sanitizer.o_file))
             else None)
  in
  (* the independence cross-check: two files the static footprints hold
     independent must never both mutate one probed cell — if they did,
     the DPOR feed pruned schedules it had no right to prune *)
  let probe_mismatches =
    Hashtbl.fold (fun label (owner, writers) acc -> (label, owner, !writers) :: acc)
      probe_agg []
    |> List.sort compare
    |> List.concat_map (fun (label, owner, writers) ->
           let files = List.sort_uniq compare (owner :: writers) in
           List.concat_map
             (fun fa ->
               List.filter_map
                 (fun fb ->
                   if fa < fb && indep fa fb then
                     Some
                       (Analysis.Finding.v ~rule:Analysis.Finding.certificate_mismatch
                          ~severity:Analysis.Finding.Error
                          ~loc:(Analysis.Finding.File { file = fa; line = 0 })
                          (Printf.sprintf
                             "%s: files %s and %s both mutated probed cell %s, but \
                              the static effect footprints hold them independent — \
                              the DPOR feed claimed a false independence"
                             scenario.Scenario.name fa fb label))
                   else None)
                 files)
             files)
  in
  let findings =
    List.map (finding_of_site scenario.Scenario.name) dynamic @ mismatches
    @ gauge_mismatches @ probe_mismatches
    |> List.sort_uniq (fun a b ->
           let c = Analysis.Finding.by_location a b in
           if c <> 0 then c else compare a b)
  in
  {
    scenario = scenario.Scenario.name;
    schedules = !schedules;
    pruned = !pruned;
    truncated_runs = !truncated_runs;
    nonquiescent_runs = !nonquiescent_runs;
    deepest = !deepest;
    complete;
    findings;
  }
