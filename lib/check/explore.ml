open Sim

(* Stateless schedule-space exploration by re-execution: given a fixed
   seed, a run is fully determined by the sequence of chooser decisions,
   so a schedule IS its decision prefix. The explorer does a DFS over
   prefixes: each run follows its prefix and then defaults (index 0) to a
   terminal state, recording the enabled set at every choice point past
   the prefix; backtracking re-runs with the prefix extended by an
   alternative decision. Alternatives are filtered by a persistent-set
   (DPOR-lite) heuristic: the conflict closure of the taken transition,
   where two transitions conflict iff their tag footprints land on the
   same node (unknown provenance conflicts with everything). This is
   exact for share-nothing message-passing scenarios — cross-node effects
   travel through Link-tagged deliveries — and scenarios with genuinely
   shared state put every coroutine on one node, disabling pruning.

   The depfast-domains certificate refines the same-node case: two
   same-node transitions whose coroutines trace to distinct source files
   that the static effect footprints hold independent (disjoint
   read/write sets over top-level cells) do not conflict either. That
   optimism is cross-checked dynamically: sanitizer probes observe
   registered shared cells at every choice point, attributing value
   changes to the file of the transition that just ran; two files
   claimed independent that both mutate one probed cell are reported as
   a [certificate-mismatch]. *)

exception Out_of_steps

type budget = {
  max_schedules : int;  (* explored runs *)
  max_steps : int;  (* choice points per run before truncation *)
  max_depth : int;  (* no new backtrack points past this choice index *)
  delay_bound : int;  (* max prefix extensions along one lineage *)
}

let default_budget =
  { max_schedules = 2000; max_steps = 4000; max_depth = 200; delay_bound = max_int }

type run = {
  r_steps : Engine.tag array array;
      (* enabled sets at choice points past the prefix (decision 0 taken) *)
  r_nsteps : int;  (* choice points seen, including prefix replay *)
  r_truncated : bool;
  r_quiescent : bool;
  r_violations : Sanitizer.violation list;
  r_overflows : Sanitizer.overflow list;  (* gauges past their declared cap *)
  r_probes : (string * string * string list) list;
      (* probe label, owning file, files observed mutating the cell *)
  r_spg_edges : (string * Depfast.Spg.edge) list;
      (* observed SPG edges attributed (via provenance) to the source
         file whose coroutine waited; only collected when the scenario
         injects a fault, for the static-exposure cross-check *)
  r_tag_file : Engine.tag -> string option;
      (* scenario provenance of a transition tag, via this run's monitor
         (coroutine ids are run-local, so the mapping is too) *)
}

let footprint = function
  | Engine.Anon -> None
  | Engine.Coro (_, n) -> if n < 0 then None else Some n
  | Engine.On_node n -> Some n
  | Engine.Link (_, d) -> Some d

let conflicts a b =
  match (footprint a, footprint b) with
  | None, _ | _, None -> true
  | Some x, Some y -> x = y

(* conflict closure of [chosen] within [tags] under an arbitrary conflict
   relation: true for members of the persistent set; everything outside
   it is provably independent of the chosen transition and safe to skip *)
let persistent_set_by conflict tags chosen =
  let n = Array.length tags in
  let inset = Array.make n false in
  inset.(chosen) <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if not inset.(i) then
        for j = 0 to n - 1 do
          if inset.(j) && conflict tags.(i) tags.(j) then begin
            inset.(i) <- true;
            changed := true
          end
        done
    done
  done;
  inset

let persistent_set tags chosen = persistent_set_by conflicts tags chosen

let run_one (scenario : Scenario.t) ~prefix ~budget =
  let engine = Engine.create ~seed:1L () in
  let trace = Depfast.Trace.create ~enabled:true () in
  let sched = Depfast.Sched.create ~trace engine in
  let san = Sanitizer.create sched in
  let nsteps = ref 0 in
  let truncated = ref false in
  let steps = ref [] in
  let plen = Array.length prefix in
  let tag_file tag =
    match tag with
    | Engine.Coro (cid, _) -> (
      match Sanitizer.coro_name san cid with
      | Some name -> scenario.Scenario.provenance name
      | None -> None)
    | _ -> None
  in
  let last_writer = ref None in
  Engine.set_chooser engine (fun tags ->
      (* queue-depth watermarks: every choice point is a reachable
         state, so the gauges see the containers mid-interleaving, not
         just at the end of the run *)
      Sanitizer.sample_gauges san;
      let i = !nsteps in
      if i >= budget.max_steps then raise Out_of_steps;
      incr nsteps;
      if i < plen then begin
        let c = prefix.(i) in
        if c < Array.length tags then c else 0
      end
      else begin
        steps := Array.copy tags :: !steps;
        0
      end);
  (* probe attribution rides the step observer, not the chooser: it sees
     every transition — singleton steps included — so a probed-cell
     change since the last sample is always the work of the previous
     transition (scenario setup runs under writer None) *)
  Engine.set_step_observer engine
    (Some
       (fun tag ->
         Sanitizer.sample_probes san ~writer:!last_writer;
         last_writer := tag_file tag));
  let inst = scenario.Scenario.make san sched in
  (try Depfast.Sched.run ?until:inst.Scenario.until sched with
  | Out_of_steps -> truncated := true
  | e ->
    Sanitizer.report san ~rule:Analysis.Finding.invariant_violation
      ("uncaught exception: " ^ Printexc.to_string e));
  let quiescent = (not !truncated) && Engine.pending engine = 0 in
  Sanitizer.sample_gauges san;
  Sanitizer.sample_probes san ~writer:!last_writer;
  if quiescent then Sanitizer.check_quiescent san else Sanitizer.check_live san;
  List.iter
    (fun msg -> Sanitizer.report san ~rule:Analysis.Finding.invariant_violation msg)
    (inst.Scenario.check ());
  List.iter
    (fun (v : Depfast.Spg.violation) ->
      let w = v.Depfast.Spg.v_wait in
      Sanitizer.report san ~rule:Analysis.Finding.dynamic_red_wait
        ~coroutine:w.Depfast.Trace.coroutine ~node:w.Depfast.Trace.node
        ~event_id:(Depfast.Trace.event_id w)
        ~event_label:(Depfast.Trace.event_label w)
        (Printf.sprintf "wait stallable by node %d alone" v.Depfast.Spg.v_peer))
    (Depfast.Spg.audit ~allow:scenario.Scenario.allow trace);
  let spg_edges =
    match scenario.Scenario.fault with
    | None -> []
    | Some _ ->
      List.filter_map
        (fun (coro, e) ->
          match scenario.Scenario.provenance coro with
          | Some file -> Some (file, e)
          | None -> None)
        (Depfast.Spg.waiter_edges ~allow:scenario.Scenario.allow trace)
  in
  {
    r_steps = Array.of_list (List.rev !steps);
    r_nsteps = !nsteps;
    r_truncated = !truncated;
    r_quiescent = quiescent;
    r_violations = Sanitizer.violations san;
    r_overflows = Sanitizer.gauge_overflows san;
    r_probes = Sanitizer.probe_writers san;
    r_spg_edges = spg_edges;
    r_tag_file = tag_file;
  }

(* Canonical prefix order: shorter first, then lexicographic. Schedule
   "first seen" attributions rank by this order rather than exploration
   order, so serial and parallel runs — which visit the frontier in
   different orders — report byte-identical findings. *)
let prefix_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i = la then 0
      else
        let c = compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

(* a deduplicated violation site across all explored schedules *)
type site = {
  s_rule : string;
  s_coroutine : string;
  s_node : int;
  s_event_id : int;
  s_event_label : string;
  s_message : string;
  mutable s_runs : int;  (* schedules exhibiting it *)
  mutable s_min_prefix : int array;
      (* canonically least explored prefix exhibiting it; ranked against
         all explored prefixes at report time *)
}

type result = {
  scenario : string;
  schedules : int;  (* schedules actually executed *)
  pruned : int;  (* enabled alternatives skipped as independent (DPOR) *)
  truncated_runs : int;
  nonquiescent_runs : int;
  deepest : int;  (* most choice points seen in one run *)
  complete : bool;  (* frontier exhausted within the schedule budget *)
  findings : Analysis.Finding.t list;  (* deduplicated, sorted *)
}

let finding_of_site scenario ~first s =
  (* the event id is run-local (global counter, fresh engine per run):
     zeroed so reports are stable across runs and invocations *)
  let loc = Analysis.Finding.Node { event_id = 0; event_label = s.s_event_label } in
  let context =
    (if s.s_coroutine = "" then ""
     else Printf.sprintf " [coroutine %s, node %d]" s.s_coroutine s.s_node)
    ^ Printf.sprintf " (%d schedule%s, first #%d)" s.s_runs
        (if s.s_runs = 1 then "" else "s")
        first
  in
  Analysis.Finding.v ~rule:s.s_rule ~severity:Analysis.Finding.Error ~loc
    (Printf.sprintf "%s: %s%s" scenario s.s_message context)

(* ---- exploration core, shared by the serial and parallel paths ------- *)

(* Per-worker accumulator. Every field merges commutatively (sums, max,
   keyed unions with canonical tie-breaks), so folding worker results in
   any order — or running everything in one worker — yields the same
   report. The independence memo is worker-local: the same file pairs
   recur at every choice point of every schedule, and a shared table
   would be a cross-domain race. *)
type acc = {
  mutable a_schedules : int;
  mutable a_pruned : int;
  mutable a_truncated : int;
  mutable a_nonquiescent : int;
  mutable a_deepest : int;
  mutable a_prefixes : int array list;  (* every prefix this worker ran *)
  a_sites : (string * string * string * string, site) Hashtbl.t;
  a_overflows : (string, Sanitizer.overflow) Hashtbl.t;
  a_probes : (string, string * string list ref) Hashtbl.t;
  a_spg : (string * Depfast.Spg.color, int) Hashtbl.t;
      (* cumulative observed SPG edges over all schedules, keyed by
         (waiter's source file, edge color): a keyed counted union, so
         merging worker accumulators commutes *)
  a_indep : string -> string -> bool;
}

let make_indep certs =
  match certs with
  | None -> fun _ _ -> false
  | Some certs ->
    let memo = Hashtbl.create 16 in
    fun fa fb ->
      match Hashtbl.find_opt memo (fa, fb) with
      | Some v -> v
      | None ->
        let v = Certificate.independent certs fa fb in
        Hashtbl.add memo (fa, fb) v;
        v

let fresh_acc ~indep () =
  {
    a_schedules = 0;
    a_pruned = 0;
    a_truncated = 0;
    a_nonquiescent = 0;
    a_deepest = 0;
    a_prefixes = [];
    a_sites = Hashtbl.create 16;
    a_overflows = Hashtbl.create 4;
    a_probes = Hashtbl.create 4;
    a_spg = Hashtbl.create 8;
    a_indep = indep;
  }

(* deterministic "worst overflow" order: higher watermark wins, ties go
   to the least record — never to whichever run happened to land first *)
let overflow_beats (o : Sanitizer.overflow) (p : Sanitizer.overflow) =
  o.Sanitizer.o_watermark > p.Sanitizer.o_watermark
  || (o.Sanitizer.o_watermark = p.Sanitizer.o_watermark && compare o p < 0)

(* Execute one frontier item against [acc] and return the child items it
   backtracks to. The children depend only on the item (runs re-execute
   deterministically), so the frontier reached from the root is one fixed
   tree no matter which worker visits which node in what order. *)
let process_item (scenario : Scenario.t) ~budget acc (prefix, lineage) =
  let run = run_one scenario ~prefix ~budget in
  acc.a_schedules <- acc.a_schedules + 1;
  acc.a_prefixes <- prefix :: acc.a_prefixes;
  if run.r_truncated then acc.a_truncated <- acc.a_truncated + 1;
  if not run.r_quiescent then acc.a_nonquiescent <- acc.a_nonquiescent + 1;
  if run.r_nsteps > acc.a_deepest then acc.a_deepest <- run.r_nsteps;
  List.iter
    (fun (v : Sanitizer.violation) ->
      (* event *ids* are a process-global counter, different in every
         re-executed run — sites are identified by label instead *)
      let key = (v.Sanitizer.rule, v.Sanitizer.coroutine, v.Sanitizer.event_label,
                 v.Sanitizer.message)
      in
      match Hashtbl.find_opt acc.a_sites key with
      | Some s ->
        s.s_runs <- s.s_runs + 1;
        if prefix_compare prefix s.s_min_prefix < 0 then s.s_min_prefix <- prefix
      | None ->
        Hashtbl.replace acc.a_sites key
          {
            s_rule = v.Sanitizer.rule;
            s_coroutine = v.Sanitizer.coroutine;
            s_node = v.Sanitizer.node;
            s_event_id = v.Sanitizer.event_id;
            s_event_label = v.Sanitizer.event_label;
            s_message = v.Sanitizer.message;
            s_runs = 1;
            s_min_prefix = prefix;
          })
    run.r_violations;
  List.iter
    (fun (o : Sanitizer.overflow) ->
      match Hashtbl.find_opt acc.a_overflows o.Sanitizer.o_label with
      | Some prev when not (overflow_beats o prev) -> ()
      | _ -> Hashtbl.replace acc.a_overflows o.Sanitizer.o_label o)
    run.r_overflows;
  List.iter
    (fun (label, owner, writers) ->
      match Hashtbl.find_opt acc.a_probes label with
      | Some (_, seen) ->
        List.iter (fun w -> if not (List.mem w !seen) then seen := w :: !seen) writers
      | None -> Hashtbl.add acc.a_probes label (owner, ref writers))
    run.r_probes;
  List.iter
    (fun (file, (e : Depfast.Spg.edge)) ->
      let key = (file, e.Depfast.Spg.color) in
      let prev = Option.value ~default:0 (Hashtbl.find_opt acc.a_spg key) in
      Hashtbl.replace acc.a_spg key (prev + e.Depfast.Spg.count))
    run.r_spg_edges;
  (* per-run conflict relation: the node heuristic, refined on same-node
     pairs by the certificate feed when both tags trace to source files *)
  let conflict a b =
    match (footprint a, footprint b) with
    | None, _ | _, None -> true
    | Some x, Some y ->
      x = y
      &&
      (match (run.r_tag_file a, run.r_tag_file b) with
      | Some fa, Some fb -> not (acc.a_indep fa fb)
      | _ -> true)
  in
  let plen = Array.length prefix in
  if lineage < budget.delay_bound then begin
    let pushes = ref [] in
    Array.iteri
      (fun j tags ->
        let abs = plen + j in
        let n = Array.length tags in
        if abs < budget.max_depth then begin
          let inset = persistent_set_by conflict tags 0 in
          let psize = Array.fold_left (fun a b -> if b then a + 1 else a) 0 inset in
          acc.a_pruned <- acc.a_pruned + (n - psize);
          for alt = n - 1 downto 1 do
            if inset.(alt) then begin
              (* this run chose 0 at steps plen..abs-1; deviate at abs *)
              let p' = Array.make (abs + 1) 0 in
              Array.blit prefix 0 p' 0 plen;
              p'.(abs) <- alt;
              pushes := (p', lineage + 1) :: !pushes
            end
          done
        end
        else acc.a_pruned <- acc.a_pruned + (n - 1))
      run.r_steps;
    !pushes
  end
  else begin
    Array.iter
      (fun tags -> acc.a_pruned <- acc.a_pruned + (Array.length tags - 1))
      run.r_steps;
    []
  end

let merge_into dst src =
  dst.a_schedules <- dst.a_schedules + src.a_schedules;
  dst.a_pruned <- dst.a_pruned + src.a_pruned;
  dst.a_truncated <- dst.a_truncated + src.a_truncated;
  dst.a_nonquiescent <- dst.a_nonquiescent + src.a_nonquiescent;
  if src.a_deepest > dst.a_deepest then dst.a_deepest <- src.a_deepest;
  dst.a_prefixes <- List.rev_append src.a_prefixes dst.a_prefixes;
  Hashtbl.iter
    (fun key (s : site) ->
      match Hashtbl.find_opt dst.a_sites key with
      | Some d ->
        d.s_runs <- d.s_runs + s.s_runs;
        if prefix_compare s.s_min_prefix d.s_min_prefix < 0 then
          d.s_min_prefix <- s.s_min_prefix
      | None -> Hashtbl.replace dst.a_sites key s)
    src.a_sites;
  Hashtbl.iter
    (fun label o ->
      match Hashtbl.find_opt dst.a_overflows label with
      | Some prev when not (overflow_beats o prev) -> ()
      | _ -> Hashtbl.replace dst.a_overflows label o)
    src.a_overflows;
  Hashtbl.iter
    (fun label (owner, writers) ->
      match Hashtbl.find_opt dst.a_probes label with
      | Some (_, seen) ->
        List.iter (fun w -> if not (List.mem w !seen) then seen := w :: !seen) !writers
      | None -> Hashtbl.add dst.a_probes label (owner, ref !writers))
    src.a_probes;
  Hashtbl.iter
    (fun key n ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt dst.a_spg key) in
      Hashtbl.replace dst.a_spg key (prev + n))
    src.a_spg

(* Build the report from a merged accumulator. Site "first" numbers are
   ranks in the canonical order over all explored prefixes; every list
   that reaches the findings is sorted, so the output is a pure function
   of the explored prefix SET — the property the parallel determinism
   tests pin. *)
let finalize (scenario : Scenario.t) ~certs ~indep ~complete acc =
  let ordered = List.sort prefix_compare acc.a_prefixes in
  let rank = Hashtbl.create (List.length ordered) in
  List.iteri (fun i p -> Hashtbl.replace rank p i) ordered;
  let first_of s =
    match Hashtbl.find_opt rank s.s_min_prefix with Some i -> i | None -> 0
  in
  let dynamic =
    Hashtbl.fold (fun _ s l -> s :: l) acc.a_sites []
    |> List.sort (fun a b ->
           let c = compare (first_of a) (first_of b) in
           if c <> 0 then c
           else
             compare
               (a.s_rule, a.s_coroutine, a.s_event_label, a.s_message)
               (b.s_rule, b.s_coroutine, b.s_event_label, b.s_message))
  in
  let mismatches =
    match certs with
    | None -> []
    | Some certs ->
      List.filter_map
        (fun s ->
          if s.s_coroutine = "" then None
          else
            match scenario.Scenario.provenance s.s_coroutine with
            | Some file when Certificate.clean certs file ->
              Some
                (Analysis.Finding.v ~rule:Analysis.Finding.certificate_mismatch
                   ~severity:Analysis.Finding.Error
                   ~loc:(Analysis.Finding.File { file; line = 0 })
                   (Printf.sprintf
                      "%s: dynamic %s in coroutine %s, but the static certificate \
                       holds %s clean"
                      scenario.Scenario.name s.s_rule s.s_coroutine file))
            | _ -> None)
        dynamic
  in
  (* the boundedness cross-check: a gauge past its cap over a container
     whose file the static growth analysis certified bounded means one
     side is wrong — the static evidence doesn't actually run on the
     producing path, or the runtime broke an assumption *)
  let gauge_mismatches =
    match certs with
    | None -> []
    | Some certs ->
      Hashtbl.fold (fun _ o acc -> o :: acc) acc.a_overflows []
      |> List.sort compare
      |> List.filter_map (fun (o : Sanitizer.overflow) ->
             if Certificate.bounded_clean certs o.Sanitizer.o_file then
               Some
                 (Analysis.Finding.v ~rule:Analysis.Finding.certificate_mismatch
                    ~severity:Analysis.Finding.Error
                    ~loc:
                      (Analysis.Finding.File { file = o.Sanitizer.o_file; line = 0 })
                    (Printf.sprintf
                       "%s: gauge %s reached depth %d past its declared cap %d, but \
                        the static boundedness certificate holds %s clean"
                       scenario.Scenario.name o.Sanitizer.o_label
                       o.Sanitizer.o_watermark o.Sanitizer.o_cap o.Sanitizer.o_file))
             else None)
  in
  (* the independence cross-check: two files the static footprints hold
     independent must never both mutate one probed cell — if they did,
     the DPOR feed pruned schedules it had no right to prune *)
  let probe_mismatches =
    Hashtbl.fold (fun label (owner, writers) acc -> (label, owner, !writers) :: acc)
      acc.a_probes []
    |> List.sort compare
    |> List.concat_map (fun (label, owner, writers) ->
           let files = List.sort_uniq compare (owner :: writers) in
           List.concat_map
             (fun fa ->
               List.filter_map
                 (fun fb ->
                   if fa < fb && indep fa fb then
                     Some
                       (Analysis.Finding.v ~rule:Analysis.Finding.certificate_mismatch
                          ~severity:Analysis.Finding.Error
                          ~loc:(Analysis.Finding.File { file = fa; line = 0 })
                          (Printf.sprintf
                             "%s: files %s and %s both mutated probed cell %s, but \
                              the static effect footprints hold them independent — \
                              the DPOR feed claimed a false independence"
                             scenario.Scenario.name fa fb label))
                   else None)
                 files)
             files)
  in
  (* the slowness-propagation cross-check: every observed SPG edge must
     land inside the static exposure set for the injected fault kind —
     an edge in a covered file with no such exposure means the static
     taint missed a flow (escaped alias, unscanned producer) and is a
     certificate-mismatch. The converse — a static red exposure for the
     kind never observed red across the explored schedules — is only a
     staleness warning: static edges over-approximate by design. *)
  let spg_mismatches, spg_stale =
    match (certs, scenario.Scenario.fault) with
    | Some certs, Some kind ->
      let observed = Hashtbl.fold (fun k n l -> (k, n) :: l) acc.a_spg [] in
      let observed_files =
        List.sort_uniq compare (List.map (fun ((f, _), _) -> f) observed)
      in
      let mismatches =
        List.filter_map
          (fun file ->
            if Certificate.covered certs file && not (Certificate.exposed certs ~file ~kind)
            then
              Some
                (Analysis.Finding.v ~rule:Analysis.Finding.certificate_mismatch
                   ~severity:Analysis.Finding.Error
                   ~loc:(Analysis.Finding.File { file; line = 0 })
                   (Printf.sprintf
                      "%s: observed a slowness-propagation edge from a wait in %s \
                       under an injected %s fault, but the static exposure map gives \
                       %s no %s exposure at all — the taint analysis missed a flow"
                      scenario.Scenario.name file
                      (Cluster.Fault.name kind)
                      file (Certificate.fault_key kind)))
            else None)
          observed_files
      in
      let observed_red f =
        List.exists (fun ((file, c), _) -> file = f && c = Depfast.Spg.Red) observed
      in
      let stale =
        List.filter_map
          (fun file ->
            if Certificate.red_exposed certs ~file ~kind && not (observed_red file) then
              Some
                (Analysis.Finding.v ~rule:Analysis.Finding.spg_stale_edge
                   ~severity:Analysis.Finding.Warning
                   ~loc:(Analysis.Finding.File { file; line = 0 })
                   (Printf.sprintf
                      "%s: %s carries a static red %s exposure, but no explored \
                       schedule observed a red propagation edge there — possibly a \
                       stale certificate or an unexercised path"
                      scenario.Scenario.name file (Certificate.fault_key kind)))
            else None)
          (List.sort_uniq compare scenario.Scenario.modules)
      in
      (mismatches, stale)
    | _ -> ([], [])
  in
  let findings =
    List.map (fun s -> finding_of_site scenario.Scenario.name ~first:(first_of s) s)
      dynamic
    @ mismatches @ gauge_mismatches @ probe_mismatches @ spg_mismatches @ spg_stale
    |> List.sort_uniq (fun a b ->
           let c = Analysis.Finding.by_location a b in
           if c <> 0 then c else compare a b)
  in
  {
    scenario = scenario.Scenario.name;
    schedules = acc.a_schedules;
    pruned = acc.a_pruned;
    truncated_runs = acc.a_truncated;
    nonquiescent_runs = acc.a_nonquiescent;
    deepest = acc.a_deepest;
    complete;
    findings;
  }

(* ---- the two drivers ------------------------------------------------- *)

let explore_serial ~budget ~certs scenario =
  let acc = fresh_acc ~indep:(make_indep certs) () in
  let stack = ref [ ([||], 0) ] in
  while !stack <> [] && acc.a_schedules < budget.max_schedules do
    match !stack with
    | [] -> ()
    | item :: rest ->
      stack := rest;
      stack := process_item scenario ~budget acc item @ !stack
  done;
  finalize scenario ~certs ~indep:acc.a_indep
    ~complete:(!stack = [] && acc.a_truncated = 0)
    acc

(* Parallel driver: one Chase–Lev deque per worker domain holding
   frontier items; a worker pops its own bottom (depth-first locally,
   keeping frontiers small) and steals from others' tops when dry. A
   frontier item counts in [pending] from push to retirement; children
   are published before the parent retires, so [pending] reaching zero
   really is termination. The schedule budget is claimed through one
   atomic counter — exactly [max_schedules] claims execute; later claims
   drop their item (recorded, so [complete] stays honest). Idle workers
   sleep on a wakeup gate: producers bump it after pushing, the last
   retirement bumps it for termination, and on a box with fewer cores
   than workers sleeping beats burning a timeslice spinning. *)
let explore_parallel ~budget ~certs ~jobs scenario =
  let deques = Array.init jobs (fun _ -> Wsq.create ()) in
  Wsq.push deques.(0) ([||], 0);
  let pending = Atomic.make 1 in
  let claimed = Atomic.make 0 in
  let dropped = Atomic.make false in
  let gate = Dpool.Gate.create () in
  let worker w =
    let acc = fresh_acc ~indep:(make_indep certs) () in
    let my = deques.(w) in
    let steal_any () =
      let rec scan tries =
        if tries = 0 then None
        else begin
          let got = ref None in
          let raced = ref false in
          for k = 1 to jobs - 1 do
            if !got = None then
              match Wsq.steal deques.((w + k) mod jobs) with
              | Wsq.Stolen it -> got := Some it
              | Wsq.Retry -> raced := true
              | Wsq.Empty -> ()
          done;
          match !got with
          | Some _ as r -> r
          | None -> if !raced then scan (tries - 1) else None
        end
      in
      scan 32
    in
    let take () =
      match Wsq.pop my with Some _ as r -> r | None -> steal_any ()
    in
    let handle item =
      let pushes =
        if Atomic.fetch_and_add claimed 1 >= budget.max_schedules then begin
          Atomic.set dropped true;
          []
        end
        else process_item scenario ~budget acc item
      in
      let n = List.length pushes in
      List.iter (Wsq.push my) pushes;
      if n > 0 then ignore (Atomic.fetch_and_add pending n);
      let left = Atomic.fetch_and_add pending (-1) - 1 in
      if n > 0 || left = 0 then Dpool.Gate.wake_all gate
    in
    let rec loop () =
      if Atomic.get pending > 0 then
        match take () with
        | Some item ->
          handle item;
          loop ()
        | None ->
          (* epoch-fenced sleep: re-check for work after reading the
             epoch so a wakeup between scan and sleep is never lost *)
          let seen = Dpool.Gate.epoch gate in
          (match take () with
          | Some item -> handle item
          | None -> if Atomic.get pending > 0 then Dpool.Gate.await gate ~seen);
          loop ()
    in
    loop ();
    acc
  in
  let accs = Dpool.scatter ~jobs worker in
  let acc = accs.(0) in
  for i = 1 to jobs - 1 do
    merge_into acc accs.(i)
  done;
  finalize scenario ~certs ~indep:(make_indep certs)
    ~complete:((not (Atomic.get dropped)) && acc.a_truncated = 0)
    acc

let explore ?(budget = default_budget) ?certs ?(jobs = 1) (scenario : Scenario.t) =
  (* Concurrent runs are gated twice: the scenario must declare its runs
     self-contained (par_safe), and — when certificates are in play — no
     module it exercises may carry an unsafe-shared-state verdict. The
     static domains pass is what certifies the parallelism safe; absent
     that safety, fall back to one domain rather than race. *)
  let jobs =
    if jobs <= 1 then 1
    else if not scenario.Scenario.par_safe then 1
    else
      match certs with
      | Some c
        when not
               (List.for_all (Certificate.domain_clean c) scenario.Scenario.modules)
        -> 1
      | _ -> jobs
  in
  if jobs = 1 then explore_serial ~budget ~certs scenario
  else explore_parallel ~budget ~certs ~jobs scenario
