(** The fail-slow sanitizer: runtime invariants checked over explored
    schedules.

    One instance shadows one run: {!create} installs a {!Depfast.Sched}
    monitor that mirrors every coroutine's park/wake/resume protocol, and
    the check entry points compare that mirror against the event
    structures. Violations are reported under {!Analysis.Finding} rule ids
    ([lost-wakeup], [double-wake], [parked-on-abandoned],
    [unsatisfiable-wait], [quorum-overcount], [parked-at-quiescence]);
    other layers (the network's FIFO self-check, scenario invariants)
    funnel their violations through {!report}. *)

type t

type violation = {
  rule : string;  (** an {!Analysis.Finding} rule id *)
  coroutine : string;  (** [""] when not attributable to a coroutine *)
  node : int;  (** [-1] when not attributable to a node *)
  event_id : int;  (** [0] when no event is involved *)
  event_label : string;
  message : string;
}

type overflow = {
  o_label : string;
  o_file : string;  (** source file owning the container *)
  o_cap : int;  (** declared bound *)
  o_watermark : int;  (** highest sampled depth *)
}

val create : Depfast.Sched.t -> t
(** Installs the monitor on the scheduler (replacing any previous one).
    Use a fresh scheduler per explored run. *)

val add_gauge :
  t -> label:string -> file:string -> cap:int -> (unit -> int) -> unit
(** Register a queue-depth gauge over a live container. [file] is the
    source file owning the container (certificate domain); [cap] its
    declared bound. The explorer samples all gauges at every choice
    point and at terminal states. *)

val sample_gauges : t -> unit
(** Read every gauge, update watermarks, and report a
    [queue-gauge-overflow] violation (once per gauge per run) when a
    watermark exceeds its declared cap. *)

val gauge_overflows : t -> overflow list
(** Gauges whose watermark exceeded the cap, sorted — input to the
    explorer's boundedness-certificate cross-check. *)

val add_probe : t -> label:string -> file:string -> (unit -> int) -> unit
(** Register a shared-cell probe for the domains cross-check: an
    observation of a top-level mutable cell's value (depth, counter,
    ...). [file] is the source file owning the cell. The explorer
    samples all probes at every choice point. *)

val sample_probes : t -> writer:string option -> unit
(** Read every probe; a value change since the last sample is
    attributed to [writer] — the source file of the transition that
    just ran — building the per-cell dynamic writer sets. *)

val probe_writers : t -> (string * string * string list) list
(** [(label, owning file, files observed mutating the cell)], sorted —
    input to the explorer's independence cross-check: two files the
    static effect footprints hold independent must never both mutate
    one probed cell. *)

val coro_name : t -> int -> string option
(** The registered name of a coroutine id, from the monitor's shadow —
    lets the explorer map transition tags back to scenario provenance. *)

val report :
  t ->
  rule:string ->
  ?coroutine:string ->
  ?node:int ->
  ?event_id:int ->
  ?event_label:string ->
  string ->
  unit
(** Record a violation from an external checker (network FIFO sanitizer,
    scenario invariants, audit cross-checks). *)

val check_live : t -> unit
(** Invariants sound at {e any} point of a run: compound ready-counter
    consistency (no double-fire) and lost wakeups (parked on a ready
    event). *)

val check_quiescent : t -> unit
(** {!check_live} plus the parked-forever family — only sound when the
    engine is truly quiescent ([Engine.pending = 0]): no remaining work
    can fire events or rescue a waiter by timeout. *)

val violations : t -> violation list
(** In report order. *)

val parked_count : t -> int
(** Coroutines currently parked (for tests). *)
