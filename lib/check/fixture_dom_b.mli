(** Domain-safety fixture B: a lock-free [Atomic] counter (the
    {e guarded} exemplar, no Mutex needed) plus [relay] — a writer
    through a parameter alias that neither the growth nor the effect
    analysis can see, seeded for the explorer's false-independence
    cross-check. *)

val value : unit -> int
val reset : unit -> unit
val bump : unit -> unit

val spawn_worker : Depfast.Sched.t -> name:string -> rounds:int -> unit
(** [rounds] atomic increments with a yield between each. *)

val relay : int Queue.t -> int -> unit
(** Write [n] into whatever queue it is handed — the statically
    invisible alias write. *)

val spawn_relay :
  Depfast.Sched.t -> name:string -> int Queue.t -> rounds:int -> unit
