(** Domain-safety fixture A: a module-level queue deliberately shared
    outside any lock or owner record — the depfast-domains pass's
    canonical {e unsafe-shared} cell (pragma-acknowledged), probed by the
    explorer's independence cross-check. *)

val export : unit -> int Queue.t
(** The shared queue itself — handing it to {!Fixture_dom_b.relay} is
    how the seeded false-independence scenario routes statically
    invisible writes into it. *)

val depth : unit -> int
(** Live queue depth, for probes and checks. *)

val reset : unit -> unit
(** Clear the queue — call at [make] time; module state persists across
    the explorer's re-executions. *)

val bump : int -> unit
val drain : unit -> unit

val worker_loop : Depfast.Sched.t -> rounds:int -> unit
(** [rounds] bump/yield iterations, then a full drain. *)

val spawn_worker : Depfast.Sched.t -> name:string -> rounds:int -> unit
