(* SPG blind-spot fixture: slowness that arrives through an escaped
   alias.

   [post] mints a remote-completion event — a net-slow source under the
   depfast-spg taint seeding — and drops it into a module-level mailbox;
   [waiter_loop] takes the event back out and parks on it bare. The
   static slowness-propagation pass tracks taint along call edges, and
   no call edge connects the two functions (the event escapes through
   the queue), so the pass records {e no} net-slow exposure for this
   file. Dynamically the wait IS a fate-sharing net edge — a bare 1/1
   wait on a remote peer — so when the [spg-alias-blindspot] scenario
   injects [Net_slow], the explorer's cross-check sees an observed
   propagation edge land in a covered file with no matching static
   exposure and escalates [certificate-mismatch]. Being that blind spot
   is this fixture's whole job; the scenario stays out of the gating
   registry. *)

(* the escaped-alias channel itself: shared and growable by design *)
(* depfast-lint: allow unsafe-shared-state *)
let mailbox : Depfast.Event.t Queue.t = Queue.create ()

(* module state persists across the explorer's re-executions *)
let reset () = Queue.clear mailbox

let post ~peer =
  let ev = Depfast.Event.rpc_completion ~label:"sg.reply" ~peer () in
  (* depfast-lint: allow unbounded-growth — one event per run, drained
     by the waiter; bounding it would defeat the escaped-alias shape *)
  Queue.add ev mailbox;
  ev

let waiter_loop sched =
  match Queue.take_opt mailbox with
  | None -> ()
  | Some ev ->
    (* depfast-lint: allow red-wait unbounded-wait orphan-wait — the
       statically invisible net wait; the dynamic cross-check must
       catch what the pragma acknowledges the static pass cannot *)
    Depfast.Sched.wait sched ev

let spawn sched =
  reset ();
  let ev = post ~peer:1 in
  Depfast.Sched.spawn sched ~node:0 ~name:"sg.waiter" (fun () ->
      waiter_loop sched);
  Depfast.Sched.spawn sched ~node:1 ~name:"sg.firer" (fun () ->
      Depfast.Sched.yield sched;
      Depfast.Event.fire ev)
