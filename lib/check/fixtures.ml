(* A deliberately-broken quorum builder, kept in its own module so the
   static certificate over lib/check can vouch for it separately.

   The bug: the builder collects reply events *after* yielding, and only
   [Event.add]s a reply that is not already ready — forgetting that ready
   replies still count toward the quorum. In the program-order schedule
   every reply is still pending when the quorum is built, so the quorum
   sees all children and fires: a single-schedule run is clean. Under an
   interleaving where a responder fires before the builder runs, the
   quorum is wired with fewer children than it requires and the builder
   parks forever — exactly the class of bug only schedule exploration
   catches, and (the waits being quorum-shaped) one the static passes
   certify as clean. *)

let spawn_broken_quorum sched =
  let open Depfast in
  let replies =
    List.map (fun peer -> Event.rpc_completion ~label:"fx.reply" ~peer ()) [ 1; 2; 3 ]
  in
  List.iteri
    (fun i ev ->
      Sched.spawn sched ~node:0
        ~name:(Printf.sprintf "fx.responder%d" (i + 1))
        (fun () ->
          Sched.yield sched;
          Event.fire ev))
    replies;
  Sched.spawn sched ~node:0 ~name:"fx.builder" (fun () ->
      (* 2-of-3: correctly wired this is a green quorum *)
      let q = Event.quorum ~label:"fx.quorum" (Event.Count (List.length replies - 1)) in
      List.iter
        (fun r -> if not (Event.is_ready r) then Event.add q ~child:r)
        replies;
      Sched.wait sched q)
