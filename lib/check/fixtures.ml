(* A deliberately-broken quorum builder, kept in its own module so the
   static certificate over lib/check can vouch for it separately.

   The bug: the builder collects reply events *after* yielding, and only
   [Event.add]s a reply that is not already ready — forgetting that ready
   replies still count toward the quorum. In the program-order schedule
   every reply is still pending when the quorum is built, so the quorum
   sees all children and fires: a single-schedule run is clean. Under an
   interleaving where a responder fires before the builder runs, the
   quorum is wired with fewer children than it requires and the builder
   parks forever — exactly the class of bug only schedule exploration
   catches, and (the waits being quorum-shaped) one the static passes
   certify as clean. *)

let spawn_broken_quorum sched =
  let open Depfast in
  let replies =
    List.map (fun peer -> Event.rpc_completion ~label:"fx.reply" ~peer ()) [ 1; 2; 3 ]
  in
  List.iteri
    (fun i ev ->
      Sched.spawn sched ~node:0
        ~name:(Printf.sprintf "fx.responder%d" (i + 1))
        (fun () ->
          Sched.yield sched;
          Event.fire ev))
    replies;
  Sched.spawn sched ~node:0 ~name:"fx.builder" (fun () ->
      (* 2-of-3: correctly wired this is a green quorum *)
      let q = Event.quorum ~label:"fx.quorum" (Event.Count (List.length replies - 1)) in
      List.iter
        (fun r -> if not (Event.is_ready r) then Event.add q ~child:r)
        replies;
      Sched.wait sched q)

(* A seeded boundedness-certificate mismatch for the queue-depth gauge
   sanitizer.

   Statically this file is *certified bounded*: the producer's component
   reaches the consumer (the producer spawns it, and the growth analysis
   treats closures as invoked), and the consumer drains [backlog] with
   [Queue.pop] — exactly the evidence shape that certifies the
   [Queue.add] site. Dynamically the evidence never runs: the consumer
   parks on a gate that nobody fires, so the producer grows the queue
   monotonically past its declared cap. The gauge registered over
   [backlog] watches the live depth during exploration and reports
   [queue-gauge-overflow]; the explorer, seeing the overflow inside a
   [bounded_clean] file, escalates it to [certificate-mismatch] — the
   dynamic half of the depfast-bounds story: a static drain that is
   structurally present but never scheduled is no bound at all. *)

(* unsafe-shared by design: the producer/consumer pair races on it with
   no lock, which is half of what makes the fixture a fixture *)
(* depfast-lint: allow unsafe-shared-state *)
let backlog = Queue.create ()
let backlog_cap = 4

let leak_consumer sched gate =
  let open Depfast in
  match Sched.wait_timeout sched gate (Sim.Time.ms 1000) with
  | Sched.Ready ->
    while not (Queue.is_empty backlog) do
      ignore (Queue.pop backlog)
    done
  | Sched.Timed_out -> ()

let leak_producer sched gate =
  let open Depfast in
  Sched.spawn sched ~node:0 ~name:"fx.leak-consumer" (fun () ->
      leak_consumer sched gate);
  for i = 1 to 2 * backlog_cap do
    Queue.add i backlog;
    Sched.yield sched
  done

let spawn_leaky_backlog san sched =
  let open Depfast in
  (* the store is module-level (so the static pass can name it) but the
     runs are not: reset between re-executions *)
  Queue.clear backlog;
  Sanitizer.add_gauge san ~label:"fx.backlog" ~file:"lib/check/fixtures.ml"
    ~cap:backlog_cap (fun () -> Queue.length backlog);
  let gate = Event.signal ~label:"fx.leak-gate" () in
  Sched.spawn sched ~node:0 ~name:"fx.leak-producer" (fun () ->
      leak_producer sched gate)
