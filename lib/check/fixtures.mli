(** Deliberately-defective dynamic fixtures, kept in their own module so
    the static certificates over lib/check speak about them separately
    from the registry's correct scenarios. *)

val spawn_broken_quorum : Depfast.Sched.t -> unit
(** The broken quorum builder: ready replies are dropped from the
    quorum wiring, so some interleavings park the builder forever —
    clean to the static wait-structure passes (the wait is
    quorum-shaped), caught only by exploration. *)

val backlog_cap : int
(** The declared bound on {!spawn_leaky_backlog}'s queue. *)

val spawn_leaky_backlog : Sanitizer.t -> Depfast.Sched.t -> unit
(** The seeded boundedness-certificate mismatch: a producer grows a
    module-level queue past [backlog_cap] while the consumer carrying
    the statically-certified drain is parked on a gate nobody fires.
    Registers a queue-depth gauge on the sanitizer; exploring the
    scenario yields [queue-gauge-overflow] and (with certificates) a
    [certificate-mismatch]. *)
