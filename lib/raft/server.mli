(** DepFastRaft (§3.4): a Raft server written in the DepFast style.

    All request-path waits are quorum waits:
    - a replication round waits on one [QuorumEvent] whose children are the
      leader's own WAL-durability event plus one progress signal per
      follower, with majority arity;
    - elections wait on a [QuorumEvent] over vote-granted signals;
    - client handlers wait on the request's commit event (local).

    Per-follower response handling is framework code driven by event
    callbacks; no coroutine ever waits on a single follower, so a minority
    of arbitrarily slow followers cannot stall the request path
    ({!Depfast.Spg.audit} verifies this mechanically in the tests).

    Leadership: randomized election timeouts with leader stickiness (a
    server that heard from a live leader recently rejects votes, unless the
    election is a deliberate transfer), plus §5's leadership transfer used
    by the fail-slow mitigation. *)

type rpc = (Types.req, Types.resp) Cluster.Rpc.t

type t

val create : rpc -> Cluster.Node.t -> peers:int list -> cfg:Config.t -> t
(** Build the server and install its RPC handler. [peers] are the other
    servers' node ids. Call {!start} to begin operating. *)

val start : t -> unit
(** Spawn the election timer, applier, and hiccup coroutines. *)

type role = Follower | Candidate | Leader

val id : t -> int
val node : t -> Cluster.Node.t
val role : t -> role
val term : t -> Types.term
val is_leader : t -> bool
val leader_hint : t -> int option
val commit_index : t -> Types.index
val last_applied : t -> Types.index
val log : t -> Rlog.t
val kv : t -> Kv.t

val become_leader_now : t -> unit
(** Test/bootstrap helper: start an election immediately (bypassing the
    randomized timeout), as after a [Timeout_now]. *)

val pending_depth : t -> int
(** Live depth of the leader's bounded admission queue (always ≤
    [Config.admission_depth] — requests past that are shed). The
    schedule-space checker registers this as a sanitizer queue gauge. *)

val batch_hist : t -> Sim.Hist.t
(** Commit-batch-size distribution: one sample per group-commit flush,
    valued at the number of client commands sealed into that log entry. *)

val shed_count : t -> int
(** Client requests rejected at admission (fail-fast shed replies). *)

val commit_latency_ewma : t -> float
(** Exponentially weighted average of enqueue-to-apply latency for client
    commands at this leader, in microseconds; -1 before the first commit.
    This is the trace-point signal the §5 failure detector consumes. *)

val best_follower : t -> int option
(** Leader-side: the most caught-up follower — the natural leadership
    transfer target. [None] if not leader. *)

val transfer_leadership : t -> target:int -> unit
(** Leader-side: wait (in the calling coroutine) until [target] is caught
    up, then tell it to elect itself. No-op if not leader. *)
