open Sim
open Types

type rpc = (Types.req, Types.resp) Cluster.Rpc.t
type role = Follower | Candidate | Leader

type pending = {
  mutable p_ok : bool;
  mutable p_value : string option;
  p_done : Depfast.Event.t;
  p_t0 : Time.t;  (* enqueue time, for commit-latency tracking *)
}

type queued = { q_cmd : command; q_client : int; q_seq : int; q_pending : pending }

type follower_state = {
  f_id : int;
  mutable next_index : index;  (* next index to (re)send from *)
  mutable match_index : index;
  mutable sent_index : index;  (* optimistically advanced as batches ship *)
  mutable inflight : int;  (* unacknowledged AppendEntries in the window *)
  mutable last_send : Time.t;
  mutable last_ack : Time.t;
  progress_cv : Depfast.Condvar.t;
  (* replication-round watchers: (target index, progress event with this
     follower as peer); fired when match_index reaches the target *)
  mutable watchers : (index * Depfast.Event.t) list;
}

type t = {
  rpc : rpc;
  node : Cluster.Node.t;
  sched : Depfast.Sched.t;
  cfg : Config.t;
  peers : int list;
  n_voters : int;
  rng : Rng.t;
  mutable role : role;
  mutable term : term;
  mutable voted_for : int option;
  rlog : Rlog.t;
  mutable commit_index : index;
  mutable last_applied : index;
  kv : Kv.t;
  mutable last_contact : Time.t;
  mutable leader : int option;
  (* leader-side state *)
  pending_q : queued Queue.t;  (* admission queue, bounded by Config.admission_depth *)
  mutable forming : queued list;  (* batcher buffer: the batch being sealed, reset per flush *)
  by_index : (index, pending array) Hashtbl.t;  (* one pending per command in the entry *)
  followers : (int, follower_state) Hashtbl.t;
  work_cv : Depfast.Condvar.t;
  commit_cv : Depfast.Condvar.t;
  mutable epoch : int;  (* bumped on every role/term transition *)
  mutable commit_latency_ewma : float;  (* us; -1 until first sample *)
  mutable wal_done_index : index;  (* highest locally durable log index *)
  mutable rounds_inflight : int;  (* pipelined replication rounds *)
  round_cv : Depfast.Condvar.t;
  append_mu : Depfast.Mutex.t;  (* serial, in-order replication-stream apply *)
  match_buf : int array;  (* scratch for the commit rule, one slot per voter *)
  (* per-leader load gauges *)
  batch_hist : Hist.t;  (* commit-batch-size distribution (count per flush) *)
  mutable shed_count : int;  (* requests rejected at admission *)
}

let id t = Cluster.Node.id t.node
let node t = t.node
let role t = t.role
let term t = t.term
let is_leader t = t.role = Leader
let leader_hint t = t.leader
let commit_index t = t.commit_index
let last_applied t = t.last_applied
let log t = t.rlog
let kv t = t.kv
let now t = Depfast.Sched.now t.sched
let alive t = Cluster.Node.alive t.node
let cpu_work t w = Cluster.Node.cpu_work t.node w

(* async CPU accounting for work done in framework callbacks (response
   processing): occupies the station without blocking anyone *)
let cpu_charge t w = ignore (Cluster.Station.submit (Cluster.Node.cpu t.node) ~work:w ())

let wal_append t ~bytes =
  let disk = Cluster.Node.disk t.node in
  ignore (Cluster.Disk.write disk ~bytes);
  Cluster.Disk.fsync disk

let election_timeout t =
  Rng.int_in t.rng t.cfg.Config.election_timeout_min t.cfg.Config.election_timeout_max

let fail_pending t =
  Queue.iter
    (fun q ->
      q.q_pending.p_ok <- false;
      Depfast.Event.fire q.q_pending.p_done)
    t.pending_q;
  Queue.clear t.pending_q;
  t.forming <- [];
  Hashtbl.iter
    (fun _ ps ->
      Array.iter
        (fun p ->
          p.p_ok <- false;
          Depfast.Event.fire p.p_done)
        ps)
    t.by_index;
  Hashtbl.reset t.by_index

let step_down t new_term ~leader =
  let was_leader = t.role = Leader in
  if new_term > t.term then begin
    t.term <- new_term;
    t.voted_for <- None
  end;
  if t.role <> Follower then t.epoch <- t.epoch + 1;
  t.role <- Follower;
  (match leader with Some _ -> t.leader <- leader | None -> ());
  if was_leader then fail_pending t

(* k-th (0-based) largest by quickselect with a descending Hoare partition:
   O(n) expected, in place, so the per-ack commit rule allocates nothing *)
let rec select_kth (a : int array) lo hi k =
  if lo >= hi then a.(lo)
  else begin
    let pivot = a.((lo + hi) / 2) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) > pivot do
        incr i
      done;
      while a.(!j) < pivot do
        decr j
      done;
      if !i <= !j then begin
        let tmp = a.(!i) in
        a.(!i) <- a.(!j);
        a.(!j) <- tmp;
        incr i;
        decr j
      end
    done;
    if k <= !j then select_kth a lo !j k
    else if k >= !i then select_kth a !i hi k
    else a.(k)
  end

(* commit rule: the majority-replicated index, restricted to entries of the
   current term (Raft §5.4.2) *)
let advance_commit t =
  if t.role = Leader then begin
    (* the leader's own vote counts only up to its durable WAL index *)
    let buf = t.match_buf in
    buf.(0) <- t.wal_done_index;
    List.iteri (fun i p -> buf.(i + 1) <- (Hashtbl.find t.followers p).match_index) t.peers;
    let candidate = select_kth buf 0 (t.n_voters - 1) (Config.majority t.n_voters - 1) in
    let rec settle n =
      if n > t.commit_index then
        match Rlog.term_at t.rlog n with
        | Some tm when tm = t.term ->
          t.commit_index <- n;
          Depfast.Condvar.broadcast t.commit_cv
        | Some _ | None -> settle (n - 1)
    in
    settle candidate
  end

let fire_watchers fs =
  let ready, rest = List.partition (fun (idx, _) -> idx <= fs.match_index) fs.watchers in
  fs.watchers <- rest;
  List.iter (fun (_, ev) -> Depfast.Event.fire ev) ready

(* ---------------- response processing (framework callbacks) ------------- *)

let handle_append_resp t fs call =
  fs.last_ack <- now t;
  (* pooled path: the ack resolves through a direct-indexed slot, not a
     per-call closure + hashtable lookup *)
  cpu_charge t t.cfg.Config.cost_ack_indexed;
  (match Cluster.Rpc.response call with
  | Some (Append_resp { term; success; match_index }) ->
    if term > t.term then step_down t term ~leader:None
    else if t.role = Leader && term = t.term then begin
      if success then begin
        if match_index > fs.match_index then fs.match_index <- match_index;
        fs.next_index <- fs.match_index + 1;
        if fs.sent_index < fs.match_index then fs.sent_index <- fs.match_index;
        fire_watchers fs;
        advance_commit t
      end
      else begin
        (* consistency miss: rewind to the follower's last-index hint and
           restream from there *)
        fs.next_index <- max 1 (min (fs.next_index - 1) (match_index + 1));
        fs.sent_index <- fs.next_index - 1
      end
    end
  | Some _ | None -> ());
  Depfast.Condvar.broadcast fs.progress_cv

(* ---------------- leader: per-follower sender coroutine ----------------- *)

(* Pipelined streaming: the sender ships batches as the log grows, without
   waiting for each ack, up to [Config.pipeline_depth] un-acknowledged
   AppendEntries per follower. The leader therefore pays the same send cost
   for a fail-slow follower as for a healthy one — it is the *wait* that is
   quorum-based, not the sending. Each batch is a zero-copy {!Rlog.view}
   into the log: handing it to the NIC is O(1) in the batch size (no
   per-entry copy), and the follower materializes on receipt. Requests
   unanswered after an RPC timeout are abandoned (their buffers released —
   the framework-level discard of §2.3). *)
let send_append t fs =
  let from = fs.sent_index + 1 in
  let batch = Rlog.view t.rlog ~from ~max:t.cfg.Config.batch_max in
  let n = Rlog.View.length batch in
  let prev_index = from - 1 in
  let prev_term = Option.value ~default:0 (Rlog.term_at t.rlog prev_index) in
  let bytes = 256 + Rlog.View.bytes batch in
  (* ship cost is per batch, not per entry — the zero-copy win *)
  if n > 0 then cpu_work t t.cfg.Config.cost_ship_view;
  fs.sent_index <- prev_index + n;
  fs.last_send <- now t;
  fs.inflight <- fs.inflight + 1;
  let call =
    Cluster.Rpc.call t.rpc ~src:t.node ~dst:fs.f_id ~bytes
      (Append_entries
         {
           term = t.term;
           leader = id t;
           prev_index;
           prev_term;
           entries = batch;
           commit = t.commit_index;
         })
  in
  let settled = ref false in
  let settle () =
    if not !settled then begin
      settled := true;
      fs.inflight <- fs.inflight - 1
    end
  in
  Depfast.Event.on_fire (Cluster.Rpc.event call) (fun () ->
      settle ();
      handle_append_resp t fs call);
  Depfast.Event.on_abandon (Cluster.Rpc.event call) (fun () -> settle ());
  (* bound the wait for this response; late replies are discarded *)
  ignore
    (Engine.schedule (Depfast.Sched.engine t.sched) ~delay:t.cfg.Config.rpc_timeout
       (fun () -> Cluster.Rpc.abandon call))

let sender_loop t fs epoch =
  let cfg = t.cfg in
  let rec loop () =
    if alive t && t.role = Leader && t.epoch = epoch then begin
      let stalled =
        (* no ack for a full timeout with data outstanding: the follower is
           unreachable or drowning — retry at heartbeat pace, resending
           from the last acknowledged point *)
        fs.sent_index > fs.match_index
        && Time.diff (now t) fs.last_ack >= cfg.Config.rpc_timeout
      in
      if stalled then begin
        (* window rewind under silence: restream from the last ack *)
        fs.sent_index <- fs.match_index;
        if Time.diff (now t) fs.last_send >= cfg.Config.heartbeat_interval then
          send_append t fs;
        ignore
          (Depfast.Condvar.wait_timeout t.sched fs.progress_cv
             cfg.Config.heartbeat_interval);
        loop ()
      end
      else if fs.inflight >= cfg.Config.pipeline_depth then begin
        (* flow control: window full, wait for an ack to free a slot *)
        ignore
          (Depfast.Condvar.wait_timeout t.sched fs.progress_cv cfg.Config.rpc_timeout);
        loop ()
      end
      else if fs.sent_index < Rlog.last_index t.rlog then begin
        send_append t fs;
        loop ()
      end
      else if Time.diff (now t) fs.last_send >= cfg.Config.heartbeat_interval then begin
        send_append t fs;
        loop ()
      end
      else begin
        ignore
          (Depfast.Condvar.wait_timeout t.sched t.work_cv
             cfg.Config.heartbeat_interval);
        loop ()
      end
    end
  in
  loop ()

(* ---------------- leader: adaptive batcher + group-commit replicator ---- *)

(* Seal up to [Config.max_batch] queued commands into the forming batch.
   The batcher buffer is a leader-owned accumulator: it grows only here,
   by moving commands out of the (bounded) admission queue, and is reset
   to empty the moment the batch is sealed into a log entry. *)
let take_batch t =
  let rec go k =
    if k > 0 && not (Queue.is_empty t.pending_q) then begin
      t.forming <- Queue.pop t.pending_q :: t.forming;
      go (k - 1)
    end
  in
  go t.cfg.Config.max_batch;
  let sealed = List.rev t.forming in
  t.forming <- [];
  sealed

let replicator_loop t epoch =
  let cfg = t.cfg in
  (* hard bound on concurrently outstanding commit rounds (quorum waits);
     the per-follower wire window is Config.pipeline_depth in the senders *)
  let rounds_window = 8 in
  let rec loop () =
    if alive t && t.role = Leader && t.epoch = epoch then begin
      if Queue.is_empty t.pending_q then
        ignore
          (Depfast.Condvar.wait_timeout t.sched t.work_cv cfg.Config.group_commit_window);
      if alive t && t.role = Leader && t.epoch = epoch then begin
        (* Adaptive group commit, no timer in the hot path: one batch forms
           while at most one earlier commit cycle is still in flight (double
           buffering), so the flush trigger is the previous cycle's
           completion — a cycle spans append/replicate/fsync *and* the
           apply + reply fan-out (see the round coroutine below). The batch
           interval therefore stretches exactly as far as the whole
           commit pipeline does, which is what keeps batches growing (and
           per-op cost shrinking) precisely when the disk or a follower
           turns slow. A *full* batch may pipeline deeper, up to
           [rounds_window]. *)
        let qlen = Queue.length t.pending_q in
        let flush_now =
          qlen > 0
          && (t.rounds_inflight < 2
             || (qlen >= cfg.Config.max_batch && t.rounds_inflight < rounds_window))
        in
        if not flush_now then begin
          if qlen > 0 || t.rounds_inflight >= rounds_window then
            (* wait for the round ahead to complete, not for a timer *)
            ignore
              (Depfast.Condvar.wait_timeout t.sched t.round_cv cfg.Config.rpc_timeout);
          loop ()
        end
        else begin
          (* pay the per-round fixed cost before draining: commands arriving
             while this round's fixed work runs still make this batch, so
             the batch interval covers the whole seal, not just the wait *)
          cpu_work t cfg.Config.cost_round_fixed;
          let batch = take_batch t in
          if batch = [] then loop ()
          else begin
            let index = Rlog.last_index t.rlog + 1 in
            let e =
              match batch with
              | [ q ] ->
                (* singleton: a plain entry, bit-identical to the unbatched
                   protocol *)
                { term = t.term; index; cmd = q.q_cmd; client_id = q.q_client; seq = q.q_seq }
              | qs ->
                {
                  term = t.term;
                  index;
                  cmd =
                    Batch
                      (Array.of_list
                         (List.map
                            (fun q -> { b_cmd = q.q_cmd; b_client = q.q_client; b_seq = q.q_seq })
                            qs));
                  client_id = -1;
                  seq = 0;
                }
            in
            (* depfast-lint: allow unbounded-growth — known-unbounded
               log: leader appends are never compacted (ROADMAP: log
               compaction / snapshots) *)
            Rlog.append t.rlog e;
            let pendings = Array.of_list (List.map (fun q -> q.q_pending) batch) in
            Hashtbl.replace t.by_index index pendings;
            let n = List.length batch in
            Hist.add t.batch_hist n;
            (* zero-copy path: the round's remaining serial work is the WAL
               encode only — no wire-buffer marshal (the senders ship
               views); the fixed cost was paid above, once per batch *)
            cpu_work t (n * cfg.Config.cost_wal_entry);
            let last = index in
            let bytes = entry_bytes e + cfg.Config.wal_entry_overhead in
            let wal_ev = wal_append t ~bytes in
            (* disk completions are FIFO, so WAL durability advances in
               log order *)
            Depfast.Event.on_fire wal_ev (fun () ->
                if last > t.wal_done_index then t.wal_done_index <- last;
                if t.role = Leader && t.epoch = epoch then advance_commit t);
            (* the §3.1 QuorumEvent: local durability + follower progress,
               majority arity — no single replica can stall this wait *)
            let required =
              match cfg.Config.replication_arity with
              | `Majority -> Config.majority t.n_voters
              | `All -> t.n_voters
            in
            let quorum =
              Depfast.Event.quorum ~label:"replicate" (Depfast.Event.Count required)
            in
            Depfast.Event.add quorum ~child:wal_ev;
            (* attach every child before firing any: a fired child can
               complete the quorum, and adding to a fired quorum is an error *)
            let round_followers =
              List.map
                (fun p ->
                  let fs = Hashtbl.find t.followers p in
                  let ack =
                    Depfast.Event.rpc_completion ~label:"repl-progress" ~peer:p ()
                  in
                  fs.watchers <- (last, ack) :: fs.watchers;
                  Depfast.Event.add quorum ~child:ack;
                  fs)
                t.peers
            in
            List.iter fire_watchers round_followers;
            Depfast.Condvar.broadcast t.work_cv;
            (* pipelining: a dedicated coroutine waits for this round's
               quorum while the replicator assembles the next one *)
            t.rounds_inflight <- t.rounds_inflight + 1;
            Depfast.Sched.spawn_here t.sched ~name:"raft.round" (fun () ->
                (match
                   Depfast.Sched.wait_timeout t.sched quorum cfg.Config.rpc_timeout
                 with
                | Depfast.Sched.Ready ->
                  if t.role = Leader && t.epoch = epoch then begin
                    advance_commit t;
                    (* self-clock the next non-full flush on the whole
                       group-commit cycle: hold this round open until the
                       batch's replies have flushed (or failed over), not
                       merely until it replicated — the batch interval then
                       tracks replicate + apply + reply, which is what
                       actually bounds how fast commands leave the system *)
                    ignore
                      (Depfast.Sched.wait_timeout t.sched
                         pendings.(Array.length pendings - 1).p_done
                         cfg.Config.rpc_timeout)
                  end
                | Depfast.Sched.Timed_out -> ());
                t.rounds_inflight <- t.rounds_inflight - 1;
                Depfast.Condvar.broadcast t.round_cv);
            loop ()
          end
        end
      end
    end
  in
  loop ()

(* ---------------- applier ----------------------------------------------- *)

let fire_reply t p value =
  p.p_value <- value;
  p.p_ok <- true;
  let lat = float_of_int (Time.diff (now t) p.p_t0) in
  t.commit_latency_ewma <-
    (if t.commit_latency_ewma < 0.0 then lat
     else (0.95 *. t.commit_latency_ewma) +. (0.05 *. lat));
  Depfast.Event.fire p.p_done

let applier_loop t =
  let cfg = t.cfg in
  let rec loop () =
    if alive t then begin
      if t.last_applied < t.commit_index then begin
        let i = t.last_applied + 1 in
        match Rlog.get t.rlog i with
        | None ->
          (* committed entry missing would be a safety bug *)
          assert false
        | Some e ->
          let pendings = Hashtbl.find_opt t.by_index i in
          (match pendings with Some _ -> Hashtbl.remove t.by_index i | None -> ());
          (match e.cmd with
          | Batch subs ->
            (* batched apply: entry fetch/dispatch once, then the marginal
               per-command update — the session and store tables stay
               cache-warm across the group. Each reply fires as its command
               applies, so the fan-out streams out over the batch's apply
               window instead of bursting after it — the woken client
               handlers overlap with the remaining applies *)
            cpu_work t cfg.Config.cost_apply_entry;
            Array.iteri
              (fun k b ->
                cpu_work t cfg.Config.cost_apply_cmd;
                let value =
                  Kv.apply_cmd t.kv ~cmd:b.b_cmd ~client_id:b.b_client ~seq:b.b_seq
                in
                match pendings with
                | Some ps -> fire_reply t ps.(k) value
                | None -> ())
              subs
          | _ ->
            cpu_work t cfg.Config.cost_apply_entry;
            let value = Kv.apply t.kv e in
            (match pendings with
            | Some ps -> Array.iter (fun p -> fire_reply t p value) ps
            | None -> ()));
          (* grouped reply fan-out: one vectored flush pushes the whole
             batch's replies out (leader only — followers have no pendings) *)
          (match pendings with
          | Some _ -> cpu_work t cfg.Config.cost_reply_flush
          | None -> ());
          t.last_applied <- i;
          loop ()
      end
      else begin
        (* depfast-lint: allow red-exposure — applier handoff signalled by
           the local commit path; no remote peer can stall this condvar *)
        Depfast.Condvar.wait t.sched t.commit_cv;
        loop ()
      end
    end
  in
  loop ()

(* ---------------- elections --------------------------------------------- *)

let reset_follower_state t =
  Hashtbl.reset t.followers;
  List.iter
    (fun p ->
      Hashtbl.replace t.followers p
        {
          f_id = p;
          next_index = Rlog.last_index t.rlog + 1;
          match_index = 0;
          sent_index = Rlog.last_index t.rlog;
          inflight = 0;
          last_send = Time.zero;
          last_ack = now t;
          progress_cv = Depfast.Condvar.create ~label:"progress" ();
          watchers = [];
        })
    t.peers

let enqueue t ~cmd ~client ~seq =
  let p =
    {
      p_ok = false;
      p_value = None;
      p_done = Depfast.Event.signal ~label:"committed" ();
      p_t0 = now t;
    }
  in
  Queue.add { q_cmd = cmd; q_client = client; q_seq = seq; q_pending = p } t.pending_q;
  Depfast.Condvar.broadcast t.work_cv;
  p

let become_leader t =
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  t.role <- Leader;
  t.leader <- Some (id t);
  t.wal_done_index <- 0;
  t.rounds_inflight <- 0;
  reset_follower_state t;
  (* commit barrier: a fresh leader commits a no-op to learn commit index *)
  ignore (enqueue t ~cmd:Nop ~client:(-1) ~seq:0);
  Cluster.Node.spawn t.node ~name:"raft.replicator" (fun () -> replicator_loop t epoch);
  List.iter
    (fun p ->
      let fs = Hashtbl.find t.followers p in
      Cluster.Node.spawn t.node ~name:(Printf.sprintf "raft.sender.%d" p) (fun () ->
          sender_loop t fs epoch))
    t.peers

(* ask peers whether they would vote for us at [term]; used for both the
   Pre-Vote probe and the real election *)
let gather_votes t ~term:ask_term ~transfer ~prevote ~needed =
  let quorum =
    Depfast.Event.quorum
      ~label:(if prevote then "prevotes" else "votes")
      (Depfast.Event.Count needed)
  in
  let grants =
    List.map
      (fun p ->
        let g =
          Depfast.Event.rpc_completion
            ~label:(if prevote then "prevote-granted" else "vote-granted")
            ~peer:p ()
        in
        Depfast.Event.add quorum ~child:g;
        (p, g))
      t.peers
  in
  List.iter
    (fun (p, grant) ->
      let call =
        Cluster.Rpc.call t.rpc ~src:t.node ~dst:p
          (Request_vote
             {
               term = ask_term;
               candidate = id t;
               last_log_index = Rlog.last_index t.rlog;
               last_log_term = Rlog.last_term t.rlog;
               transfer;
               prevote;
             })
      in
      Depfast.Event.on_fire (Cluster.Rpc.event call) (fun () ->
          cpu_charge t t.cfg.Config.cost_ack_process;
          match Cluster.Rpc.response call with
          | Some (Vote_resp { term; granted }) ->
            if term > t.term then step_down t term ~leader:None
            else if granted then Depfast.Event.fire grant
          | Some _ | None -> ()))
    grants;
  quorum

let run_election t ~transfer =
  t.epoch <- t.epoch + 1;
  t.role <- Candidate;
  t.term <- t.term + 1;
  t.voted_for <- Some (id t);
  t.leader <- None;
  t.last_contact <- now t;
  let my_term = t.term in
  let needed = Config.majority t.n_voters - 1 in
  if needed = 0 then become_leader t
  else begin
    let quorum = gather_votes t ~term:my_term ~transfer ~prevote:false ~needed in
    match Depfast.Sched.wait_timeout t.sched quorum (election_timeout t) with
    | Depfast.Sched.Ready ->
      if t.role = Candidate && t.term = my_term then become_leader t
    | Depfast.Sched.Timed_out -> ()
  end

(* Pre-Vote (Raft thesis §9.6): probe a majority before disturbing anyone.
   Without it, a follower whose inbound link is slow (the 400 ms tc fault)
   times out, inflates its term, and deposes a healthy leader — precisely
   the kind of fail-slow propagation this system must not have. *)
let run_prevote_then_election t ~transfer =
  if transfer then run_election t ~transfer
  else begin
    let needed = Config.majority t.n_voters - 1 in
    if needed = 0 then run_election t ~transfer
    else begin
      let quorum =
        gather_votes t ~term:(t.term + 1) ~transfer ~prevote:true ~needed
      in
      match Depfast.Sched.wait_timeout t.sched quorum (election_timeout t) with
      | Depfast.Sched.Ready -> if t.role <> Leader then run_election t ~transfer
      | Depfast.Sched.Timed_out -> ()
    end
  end

let election_timer_loop t =
  let rec loop () =
    if alive t then begin
      if t.role = Leader then begin
        Depfast.Sched.sleep t.sched t.cfg.Config.heartbeat_interval;
        loop ()
      end
      else begin
        let timeout = election_timeout t in
        let elapsed = Time.diff (now t) t.last_contact in
        if elapsed >= timeout then begin
          run_prevote_then_election t ~transfer:false;
          loop ()
        end
        else begin
          Depfast.Sched.sleep t.sched (timeout - elapsed);
          loop ()
        end
      end
    end
  in
  loop ()

let hiccup_loop t =
  let cfg = t.cfg in
  let cpu = Cluster.Node.cpu t.node in
  let rec loop () =
    if alive t then begin
      Depfast.Sched.sleep t.sched (Dist.sample_span t.rng cfg.Config.hiccup_interval);
      let duration =
        min (Time.ms 10) (Dist.sample_span t.rng cfg.Config.hiccup_duration)
      in
      Cluster.Station.set_speed cpu (Cluster.Station.speed cpu *. cfg.Config.hiccup_factor);
      Depfast.Sched.sleep t.sched duration;
      Cluster.Station.set_speed cpu (Cluster.Station.speed cpu /. cfg.Config.hiccup_factor);
      loop ()
    end
  in
  loop ()

(* ---------------- request handlers -------------------------------------- *)

let handle_request_vote t ~term ~candidate ~last_log_index ~last_log_term ~transfer
    ~prevote =
  cpu_work t t.cfg.Config.cost_vote;
  (* leader stickiness: if we heard from a live leader recently, reject —
     unless this is a deliberate leadership transfer *)
  let sticky =
    (not transfer)
    && Time.diff (now t) t.last_contact < t.cfg.Config.election_timeout_min
  in
  let up_to_date =
    last_log_term > Rlog.last_term t.rlog
    || (last_log_term = Rlog.last_term t.rlog && last_log_index >= Rlog.last_index t.rlog)
  in
  if prevote then
    (* advisory only: no state changes, no term adoption *)
    Vote_resp
      { term = t.term; granted = term >= t.term && up_to_date && not sticky }
  else if term < t.term || sticky then Vote_resp { term = t.term; granted = false }
  else begin
    if term > t.term then step_down t term ~leader:None;
    let granted =
      (match t.voted_for with None -> true | Some v -> v = candidate) && up_to_date
    in
    if granted then begin
      t.voted_for <- Some candidate;
      t.last_contact <- now t
    end;
    Vote_resp { term = t.term; granted }
  end

(* [entries] here is already materialized from the shipped view — see the
   dispatch in [handle] *)
let handle_append_entries t ~term ~leader ~prev_index ~prev_term ~entries ~commit =
  (* the replication stream is processed serially, in delivery order (a
     retransmitted message must not race its successor) *)
  Depfast.Mutex.with_lock t.sched t.append_mu @@ fun () ->
  let cfg = t.cfg in
  (* depfast-lint: allow lock-across-call — serial by design: the FIFO
     append lock admits entries in delivery order, and the modeled CPU
     cost of processing one message is part of that critical section *)
  cpu_work t
    (cfg.Config.cost_follower_fixed
    + (Array.length entries * cfg.Config.cost_follower_entry_view));
  if term < t.term then Append_resp { term = t.term; success = false; match_index = 0 }
  else begin
    if term > t.term || t.role <> Follower then step_down t term ~leader:(Some leader);
    t.leader <- Some leader;
    t.last_contact <- now t;
    if not (Rlog.matches t.rlog ~prev_index ~prev_term) then
      (* hint our last index so the leader can back off quickly *)
      Append_resp
        { term = t.term; success = false; match_index = Rlog.last_index t.rlog }
    else begin
      (* idempotent append with conflict truncation *)
      Array.iter
        (fun e ->
          match Rlog.term_at t.rlog e.index with
          | Some tm when tm = e.term -> ()
          | Some _ ->
            Rlog.truncate_from t.rlog e.index;
            Rlog.append t.rlog e
          | None ->
            if e.index = Rlog.last_index t.rlog + 1 then Rlog.append t.rlog e)
        entries;
      let match_index = prev_index + Array.length entries in
      if Array.length entries > 0 then begin
        let bytes =
          entries_bytes_a entries + (Array.length entries * cfg.Config.wal_entry_overhead)
        in
        (* depfast-lint: allow lock-across-wait red-exposure — the append
           lock is the documented FIFO-stream substitution (DESIGN §5):
           appends serialise, and the wait is on the node's own WAL *)
        Depfast.Sched.wait t.sched (wal_append t ~bytes)
      end;
      let new_commit = min commit (Rlog.last_index t.rlog) in
      if new_commit > t.commit_index then begin
        t.commit_index <- new_commit;
        Depfast.Condvar.broadcast t.commit_cv
      end;
      t.last_contact <- now t;
      Append_resp { term = t.term; success = true; match_index }
    end
  end

let handle_client_request t ~cmd ~client_id ~seq =
  let cfg = t.cfg in
  (* pooled connection path: direct-indexed slot, no per-request closure *)
  cpu_work t cfg.Config.cost_client_parse_pooled;
  if t.role <> Leader then
    Client_resp { ok = false; shed = false; leader_hint = t.leader; value = None }
  else if cfg.Config.admission_depth <= Queue.length t.pending_q then begin
    (* bounded admission: shed at the door with an explicit fail-fast reply
       instead of joining a backlog that a fail-slow disk would grow without
       bound (the paper's §2 RethinkDB root cause, inverted) *)
    t.shed_count <- t.shed_count + 1;
    cpu_work t cfg.Config.cost_client_reply_grouped;
    Client_resp { ok = false; shed = true; leader_hint = Some (id t); value = None }
  end
  else begin
    let p = enqueue t ~cmd ~client:client_id ~seq in
    let outcome = Depfast.Sched.wait_timeout t.sched p.p_done cfg.Config.client_timeout in
    (* grouped fan-out path: fill the connection slot's outbuf; the flush
       syscall is shared by the whole commit batch (applier side) *)
    cpu_work t cfg.Config.cost_client_reply_grouped;
    match outcome with
    | Depfast.Sched.Ready ->
      Client_resp { ok = p.p_ok; shed = false; leader_hint = Some (id t); value = p.p_value }
    | Depfast.Sched.Timed_out ->
      Client_resp { ok = false; shed = false; leader_hint = t.leader; value = None }
  end

let transfer_leadership t ~target =
  if t.role = Leader && List.mem target t.peers then begin
    let fs = Hashtbl.find t.followers target in
    (* wait (bounded) for the target to catch up, then fire Timeout_now *)
    let deadline = Time.add (now t) t.cfg.Config.election_timeout_max in
    let rec wait_caught_up () =
      if
        t.role = Leader
        && fs.match_index < Rlog.last_index t.rlog
        && now t < deadline
      then begin
        ignore (Depfast.Condvar.wait_timeout t.sched fs.progress_cv (Time.ms 10));
        wait_caught_up ()
      end
    in
    wait_caught_up ();
    if t.role = Leader then begin
      ignore (Cluster.Rpc.call t.rpc ~src:t.node ~dst:target Timeout_now);
      (* step down proactively; the target's election will supersede us *)
      step_down t t.term ~leader:None
    end
  end

let handle t ~src:_ (req : Types.req) : Types.resp option =
  match req with
  | Request_vote { term; candidate; last_log_index; last_log_term; transfer; prevote }
    ->
    Some
      (handle_request_vote t ~term ~candidate ~last_log_index ~last_log_term ~transfer
         ~prevote)
  | Append_entries { term; leader; prev_index; prev_term; entries; commit } -> (
    (* materialize the shipped view — the one copy on the replication path,
       paid by the receiver. A stale view means the sender truncated after
       shipping (a deposed leader): the wire copy never happened, so the
       message is simply lost — no response, always safe for Raft *)
    match Types.view_materialize entries with
    | None -> None
    | Some entries ->
      Some (handle_append_entries t ~term ~leader ~prev_index ~prev_term ~entries ~commit))
  | Client_request { cmd; client_id; seq } ->
    Some (handle_client_request t ~cmd ~client_id ~seq)
  | Transfer_leadership { target } ->
    transfer_leadership t ~target;
    Some Ack
  | Timeout_now ->
    if t.role <> Leader then run_election t ~transfer:true;
    Some Ack
  | Pull_oplog _ | Update_position _ ->
    (* baseline-only messages; a DepFastRaft node ignores them *)
    Some Ack

let create rpc node ~peers ~cfg =
  let sched = Cluster.Node.sched node in
  let t =
    {
      rpc;
      node;
      sched;
      cfg;
      peers;
      n_voters = List.length peers + 1;
      rng = Engine.split_rng (Depfast.Sched.engine sched);
      role = Follower;
      term = 0;
      voted_for = None;
      rlog = Rlog.create ();
      commit_index = 0;
      last_applied = 0;
      kv = Kv.create ();
      last_contact = Time.zero;
      leader = None;
      pending_q = Queue.create ();
      forming = [];
      by_index = Hashtbl.create 256;
      followers = Hashtbl.create 8;
      work_cv = Depfast.Condvar.create ~label:"work" ();
      commit_cv = Depfast.Condvar.create ~label:"commit" ();
      epoch = 0;
      commit_latency_ewma = -1.0;
      wal_done_index = 0;
      rounds_inflight = 0;
      round_cv = Depfast.Condvar.create ~label:"rounds" ();
      append_mu = Depfast.Mutex.create ~label:"append" ();
      match_buf = Array.make (List.length peers + 1) 0;
      batch_hist = Hist.create ();
      shed_count = 0;
    }
  in
  reset_follower_state t;
  Cluster.Rpc.serve rpc ~node ~handler:(fun ~src req -> handle t ~src req);
  t

let start t =
  Cluster.Node.spawn t.node ~name:"raft.election-timer" (fun () -> election_timer_loop t);
  Cluster.Node.spawn t.node ~name:"raft.applier" (fun () -> applier_loop t);
  if t.cfg.Config.enable_hiccups then
    Cluster.Node.spawn t.node ~name:"hiccup" (fun () -> hiccup_loop t)

let become_leader_now t = if t.role <> Leader then run_election t ~transfer:true

let commit_latency_ewma t = t.commit_latency_ewma

(* load gauges — the admission queue's live depth (the check scenarios
   register this with the sanitizer against Config.admission_depth), the
   commit-batch-size distribution, and the shed counter *)
let pending_depth t = Queue.length t.pending_q
let batch_hist t = t.batch_hist
let shed_count t = t.shed_count

let best_follower t =
  if t.role <> Leader then None
  else
    Hashtbl.fold
      (fun p fs best ->
        match best with
        | Some (_, m) when m >= fs.match_index -> best
        | _ -> Some (p, fs.match_index))
      t.followers None
    |> Option.map fst
