open Types

type t = {
  rpc : (Types.req, Types.resp) Cluster.Rpc.t;
  node : Cluster.Node.t;
  sched : Depfast.Sched.t;
  servers : int array;
  cfg : Config.t;
  client_id : int;
  rng : Sim.Rng.t;
  mutable seq : int;
  mutable leader_hint : int option;
  mutable attempted : int;
  mutable failed : int;
  mutable shed : int;
}

type outcome = Committed of string option | Shed | Failed

let create rpc node ~servers ?(cfg = Config.default) ~id () =
  {
    rpc;
    node;
    sched = Cluster.Node.sched node;
    servers = Array.of_list servers;
    cfg;
    client_id = id;
    rng = Sim.Engine.split_rng (Depfast.Sched.engine (Cluster.Node.sched node));
    seq = 0;
    leader_hint = None;
    attempted = 0;
    failed = 0;
    shed = 0;
  }

let id t = t.client_id
let node t = t.node

let target t =
  match t.leader_hint with
  | Some s -> s
  | None -> Sim.Rng.pick t.rng t.servers

(* one command, retried across leader changes; same seq = exactly-once.
   A shed reply (bounded admission) is terminal: the leader told us it is
   overloaded, and hammering it with an immediate retry — or spraying the
   same command at followers that would only redirect back — feeds the
   overload the shed exists to relieve. Fail fast; the caller decides. *)
let submit t cmd =
  t.seq <- t.seq + 1;
  t.attempted <- t.attempted + 1;
  let seq = t.seq in
  let max_attempts = 8 in
  let rec attempt k =
    if k >= max_attempts then begin
      t.failed <- t.failed + 1;
      Failed
    end
    else begin
      let dst = target t in
      let call =
        Cluster.Rpc.call t.rpc ~src:t.node ~dst
          (Client_request { cmd; client_id = t.client_id; seq })
      in
      (* per-attempt budget: a leader that cannot answer within two RPC
         timeouts has likely crashed or lost its quorum; retrying elsewhere
         is safe because the sequence number deduplicates *)
      match
        (* depfast-lint: allow red-wait — the Figure-2 exemption: a client
           waits on the leader it is talking to; bounded by the timeout and
           retried against another node, mirroring Spg.audit's ~allow *)
        Depfast.Sched.wait_timeout t.sched (Cluster.Rpc.event call)
          (2 * t.cfg.Config.rpc_timeout)
      with
      | Depfast.Sched.Timed_out ->
        Cluster.Rpc.abandon call;
        t.leader_hint <- None;
        attempt (k + 1)
      | Depfast.Sched.Ready -> (
        match Cluster.Rpc.response call with
        | Some (Client_resp { ok = true; leader_hint; value; _ }) ->
          t.leader_hint <- leader_hint;
          Committed value
        | Some (Client_resp { shed = true; leader_hint; _ }) ->
          t.shed <- t.shed + 1;
          t.leader_hint <- leader_hint;
          Shed
        | Some (Client_resp { ok = false; leader_hint; _ }) ->
          (match leader_hint with
          | Some h when Some h <> Some dst -> t.leader_hint <- leader_hint
          | _ -> t.leader_hint <- None);
          (* back off briefly before retrying (election may be in flight) *)
          Depfast.Sched.sleep t.sched (Sim.Time.ms (5 * (k + 1)));
          attempt (k + 1)
        | Some _ | None ->
          t.leader_hint <- None;
          attempt (k + 1))
    end
  in
  attempt 0

let command t cmd = match submit t cmd with Committed v -> Some v | Shed | Failed -> None

let put t ~key ~value =
  match submit t (Put { key; value }) with Committed _ -> true | Shed | Failed -> false

let get t ~key =
  match submit t (Get { key }) with Committed v -> Some v | Shed | Failed -> None

let ops_attempted t = t.attempted
let ops_failed t = t.failed
let ops_shed t = t.shed
