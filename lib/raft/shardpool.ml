(* Per-domain Raft shards: the scale-out counterpart of [Sharded], which
   multiplexes every shard group onto one scheduler. Here each shard owns
   a full engine/scheduler/group/client stack, shards are statically
   partitioned over a pool of OCaml 5 domains, and the simulation
   advances in fixed virtual-time quanta separated by barriers.

   Cross-shard traffic never touches another shard's engine directly:
   during a quantum a client whose key routes elsewhere appends the
   request to its shard's outbox (shard-local state). At the barrier one
   domain — whichever trips the barrier — folds every outbox into the
   destination inboxes in (send time, source shard, sequence) order, and
   each owning domain replays its inbox at the start of the next quantum.
   The merged order is a pure function of the outbox contents, and each
   shard's evolution is a pure function of its seed and its inbox
   sequence, so by induction over quanta the whole run is deterministic
   in the domain count: jobs=1 and jobs=N produce identical per-shard
   stats. Barrier waits (Mutex/Condition under the hood) give the
   happens-before edges that make the cross-domain queue handoff safe. *)

type xmsg = {
  x_time : Sim.Time.t;  (* virtual send time on the source shard *)
  x_src : int;
  x_seq : int;  (* per-source counter; ties on x_time sort by (src, seq) *)
  x_dst : int;
  x_key : string;
  x_value : string;
}

type stats = {
  st_shard : int;
  st_ops : int;  (* committed puts, local and ingress *)
  st_failed : int;
  st_shed : int;
  st_cross_out : int;  (* requests routed away from this shard *)
  st_cross_in : int;  (* requests replayed from the inbox *)
  st_latency : Sim.Hist.t;  (* local put latency, virtual µs *)
  st_time : Sim.Time.t;  (* shard clock at the end of the run *)
}

type report = {
  r_shards : stats array;  (* indexed by shard id *)
  r_virtual : Sim.Time.span;  (* measured virtual duration (the quanta) *)
}

type shard = {
  sh_id : int;
  sh_sched : Depfast.Sched.t;
  sh_clients : Client.t list;
  sh_ingress : Client.t;
  sh_outbox : xmsg Queue.t;  (* filled locally, drained at the barrier *)
  sh_inbox : xmsg Queue.t;  (* filled at the barrier, drained locally *)
  mutable sh_seq : int;
  mutable sh_ops : int;
  mutable sh_failed : int;
  mutable sh_shed : int;
  mutable sh_cross_out : int;
  mutable sh_cross_in : int;
  sh_latency : Sim.Hist.t;
}

let default_cfg =
  {
    Config.default with
    Config.enable_hiccups = false;
    election_timeout_min = Sim.Time.ms 80;
    election_timeout_max = Sim.Time.ms 160;
    heartbeat_interval = Sim.Time.ms 20;
    rpc_timeout = Sim.Time.ms 100;
    client_timeout = Sim.Time.ms 300;
  }

let count_outcome sh = function
  | Client.Committed _ -> sh.sh_ops <- sh.sh_ops + 1
  | Client.Shed -> sh.sh_shed <- sh.sh_shed + 1
  | Client.Failed -> sh.sh_failed <- sh.sh_failed + 1

let make_shard ~cfg ~replicas ~clients ~seed id =
  let engine = Sim.Engine.create ~seed:(Int64.of_int (seed + (id * 9973))) () in
  let sched = Depfast.Sched.create engine in
  let g =
    Group.create sched ~n:replicas ~cfg ~first_node_id:(id * (replicas + clients + 8)) ()
  in
  match Group.make_clients g ~count:(clients + 1) () with
  | [] -> assert false
  | ingress :: rest ->
    Depfast.Sched.spawn sched ~node:(id * (replicas + clients + 8))
      ~name:"sp.bootstrap"
      (fun () -> Group.elect g (id * (replicas + clients + 8)));
    {
      sh_id = id;
      sh_sched = sched;
      sh_clients = rest;
      sh_ingress = ingress;
      sh_outbox = Queue.create ();
      sh_inbox = Queue.create ();
      sh_seq = 0;
      sh_ops = 0;
      sh_failed = 0;
      sh_shed = 0;
      sh_cross_out = 0;
      sh_cross_in = 0;
      sh_latency = Sim.Hist.create ();
    }

(* Closed-loop per-shard load: each client coroutine puts into its own
   shard, except that with probability [cross_permille]/1000 the key is
   deemed owned elsewhere and the request is deposited in the outbox
   instead (fire-and-forget: delivery lands at the next barrier). *)
let spawn_load sh ~shards ~cross_permille ~seed =
  List.iteri
    (fun ci c ->
      let rng =
        Sim.Rng.create
          (Int64.of_int ((seed * 1_000_003) + (sh.sh_id * 131) + ci))
      in
      Cluster.Node.spawn (Client.node c)
        ~name:(Printf.sprintf "sp.load%d" ci)
        (fun () ->
          while true do
            let key = Printf.sprintf "k%d" (Sim.Rng.int rng 64) in
            if shards > 1 && Sim.Rng.int rng 1000 < cross_permille then begin
              let d = Sim.Rng.int rng (shards - 1) in
              let dst = if d >= sh.sh_id then d + 1 else d in
              sh.sh_seq <- sh.sh_seq + 1;
              Queue.push
                {
                  x_time = Depfast.Sched.now sh.sh_sched;
                  x_src = sh.sh_id;
                  x_seq = sh.sh_seq;
                  x_dst = dst;
                  x_key = key;
                  x_value = Printf.sprintf "s%d.%d" sh.sh_id sh.sh_seq;
                }
                sh.sh_outbox;
              sh.sh_cross_out <- sh.sh_cross_out + 1;
              (* the send is async: pace the loop so one client cannot
                 flood the outbox inside a single quantum *)
              Depfast.Sched.sleep sh.sh_sched (Sim.Time.ms 2)
            end
            else begin
              let t0 = Depfast.Sched.now sh.sh_sched in
              let outcome =
                Client.submit c (Types.Put { key; value = "v" ^ key })
              in
              count_outcome sh outcome;
              Sim.Hist.add sh.sh_latency
                (Sim.Time.diff (Depfast.Sched.now sh.sh_sched) t0)
            end
          done))
    sh.sh_clients

(* Fold every outbox into the destination inboxes, ordered by
   (send time, source shard, sequence): a pure function of the outbox
   contents, independent of domain count or barrier arrival order. *)
let merge_crossings pool =
  let all = ref [] in
  Array.iter
    (fun sh ->
      Queue.iter (fun m -> all := m :: !all) sh.sh_outbox;
      Queue.clear sh.sh_outbox)
    pool;
  List.iter
    (fun m -> Queue.push m pool.(m.x_dst).sh_inbox)
    (List.sort
       (fun a b -> compare (a.x_time, a.x_src, a.x_seq) (b.x_time, b.x_src, b.x_seq))
       !all)

(* Replay the inbox through the shard's ingress client, in merge order:
   one spawned coroutine per request, created before the quantum runs so
   the engine sequences them deterministically. *)
let drain_inbox sh =
  while not (Queue.is_empty sh.sh_inbox) do
    let m = Queue.pop sh.sh_inbox in
    sh.sh_cross_in <- sh.sh_cross_in + 1;
    Cluster.Node.spawn (Client.node sh.sh_ingress)
      ~name:(Printf.sprintf "sp.ingress%d.%d" m.x_src m.x_seq)
      (fun () ->
        count_outcome sh
          (Client.submit sh.sh_ingress (Types.Put { key = m.x_key; value = m.x_value })))
  done

let stats_of sh =
  {
    st_shard = sh.sh_id;
    st_ops = sh.sh_ops;
    st_failed = sh.sh_failed;
    st_shed = sh.sh_shed;
    st_cross_out = sh.sh_cross_out;
    st_cross_in = sh.sh_cross_in;
    st_latency = sh.sh_latency;
    st_time = Depfast.Sched.now sh.sh_sched;
  }

let run ?(shards = 4) ?(jobs = 1) ?(replicas = 3) ?(cfg = default_cfg)
    ?(quantum = Sim.Time.ms 50) ?(quanta = 20) ?(clients = 4)
    ?(cross_permille = 100) ?(seed = 1) () =
  let jobs = max 1 (min jobs shards) in
  let boot = Sim.Time.ms 300 in
  let barrier = Sim.Dpool.Barrier.create jobs in
  let pool : shard option array = Array.make shards None in
  let owned d = List.init shards Fun.id |> List.filter (fun i -> i mod jobs = d) in
  let worker d =
    let mine = owned d in
    (* build and bootstrap each owned shard on its owning domain, so
       every engine-owned record is domain-local by construction *)
    List.iter
      (fun id ->
        let sh = make_shard ~cfg ~replicas ~clients ~seed id in
        Depfast.Sched.run ~until:(Sim.Time.add Sim.Time.zero boot) sh.sh_sched;
        spawn_load sh ~shards ~cross_permille ~seed;
        pool.(id) <- Some sh)
      mine;
    let mine = List.map (fun id -> Option.get pool.(id)) mine in
    ignore (Sim.Dpool.Barrier.wait barrier);
    for q = 1 to quanta do
      let t_end = Sim.Time.add Sim.Time.zero (boot + (quantum * q)) in
      List.iter
        (fun sh ->
          drain_inbox sh;
          Depfast.Sched.run ~until:t_end sh.sh_sched)
        mine;
      (* first barrier: every shard reached t_end, outboxes are final;
         the tripping domain merges while the others hold at the second *)
      if Sim.Dpool.Barrier.wait barrier then
        merge_crossings (Array.map (fun s -> Option.get s) pool);
      ignore (Sim.Dpool.Barrier.wait barrier)
    done;
    List.map stats_of mine
  in
  let per_domain = Sim.Dpool.scatter ~jobs worker in
  let all = Array.to_list per_domain |> List.concat in
  let by_id = List.sort (fun a b -> compare a.st_shard b.st_shard) all in
  { r_shards = Array.of_list by_id; r_virtual = quantum * quanta }

let total_ops r = Array.fold_left (fun a s -> a + s.st_ops) 0 r.r_shards
let total_cross r = Array.fold_left (fun a s -> a + s.st_cross_in) 0 r.r_shards

let merged_latency r =
  Array.fold_left
    (fun acc s -> Sim.Hist.merge acc s.st_latency)
    (Sim.Hist.create ()) r.r_shards
