type t = {
  sched : Depfast.Sched.t;
  groups : Group.t array;
  cfg : Config.t;
  mutable next_session_node : int;
}

let create sched ~shards ~replicas ?(cfg = Config.default) () =
  let groups =
    Array.init shards (fun s ->
        Group.create sched ~n:replicas ~cfg ~first_node_id:(s * replicas) ())
  in
  {
    sched;
    groups;
    cfg;
    next_session_node = (shards * replicas) + 1000;
  }

let bootstrap t =
  Array.iteri
    (fun s g ->
      Depfast.Sched.spawn t.sched ~name:"bootstrap" (fun () ->
          Group.elect g (s * Array.length t.groups |> fun _ -> s * List.length g.Group.nodes)))
    t.groups;
  Depfast.Sched.run ~until:(Sim.Time.add (Depfast.Sched.now t.sched) (Sim.Time.sec 1)) t.sched

let shards t = Array.length t.groups
let groups t = Array.to_list t.groups
let shard_of t key = Hashtbl.hash key mod Array.length t.groups

type session = {
  store : t;
  node : Cluster.Node.t;
  clients : Client.t array;  (* one per shard, sharing the node *)
  sid : int;
  mutable tx_counter : int;
}

let session t ~id =
  let node_id = t.next_session_node in
  t.next_session_node <- t.next_session_node + 1;
  let node =
    Cluster.Node.create t.sched ~id:node_id ~name:(Printf.sprintf "txc%d" id) ()
  in
  let clients =
    Array.map
      (fun g ->
        Cluster.Rpc.attach g.Group.rpc node;
        Client.create g.Group.rpc node
          ~servers:(List.map Server.id g.Group.servers)
          ~cfg:t.cfg ~id:node_id ())
      t.groups
  in
  { store = t; node; clients; sid = id; tx_counter = 0 }

let session_node s = s.node

type outcome = Committed | Aborted | Failed

(* submit a command on a shard from a sub-coroutine, reporting the result
   into ok/bad signal events — the coordinator never waits on one shard *)
let submit_async s ~shard cmd ~classify =
  let ok = Depfast.Event.rpc_completion ~label:"shard-ok" ~peer:shard () in
  let bad = Depfast.Event.rpc_completion ~label:"shard-bad" ~peer:shard () in
  Depfast.Sched.spawn_here s.store.sched ~name:"tx-branch" (fun () ->
      let result = Client.command s.clients.(shard) cmd in
      if classify result then Depfast.Event.fire ok else Depfast.Event.fire bad);
  (ok, bad)

let prepared = function Some (Some "ok") -> true | Some _ | None -> false
let acked = function Some _ -> true | None -> false

let fresh_txid s =
  s.tx_counter <- s.tx_counter + 1;
  (s.sid * 1_000_000) + s.tx_counter

let by_shard s writes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (k, v) ->
      let sh = shard_of s.store k in
      Hashtbl.replace tbl sh ((k, v) :: Option.value ~default:[] (Hashtbl.find_opt tbl sh)))
    writes;
  Hashtbl.fold (fun sh ws acc -> (sh, List.rev ws) :: acc) tbl []

let phase2 s participants cmd =
  (* commit/abort decisions must reach every participant: an AndEvent of
     per-shard acks (each ack itself stands for a majority commit inside
     the shard) *)
  let all = Depfast.Event.and_ ~label:"phase2" () in
  List.iter
    (fun (shard, _) ->
      let ok, bad = submit_async s ~shard cmd ~classify:acked in
      let either = Depfast.Event.or_ () in
      Depfast.Event.add either ~child:ok;
      Depfast.Event.add either ~child:bad;
      Depfast.Event.add all ~child:either)
    participants;
  ignore
    (Depfast.Sched.wait_timeout s.store.sched all
       (2 * s.store.cfg.Config.client_timeout))

let txn s ~writes =
  match by_shard s writes with
  | [] -> Committed
  | [ (shard, ws) ] ->
    (* single-shard fast path: one replicated multi-key prepare+commit
       collapses to a plain transactional write *)
    let txid = fresh_txid s in
    if prepared (Client.command s.clients.(shard) (Types.Tx_prepare { txid; writes = ws }))
    then begin
      phase2 s [ (shard, ws) ] (Types.Tx_commit { txid });
      Committed
    end
    else Failed
  | participants ->
    let txid = fresh_txid s in
    (* phase 1: prepare everywhere in parallel; wait on the §3.2 nest:
       Or( And(all ok), Or(any reject) ) *)
    (* depfast-lint: allow degenerate-quorum — 2PC phase 1 inherently needs
       every participant; the and_ is raced against any_bad under
       wait_timeout below, which bounds the stall *)
    let all_ok = Depfast.Event.and_ ~label:"prepared" () in
    let any_bad = Depfast.Event.or_ ~label:"rejected" () in
    List.iter
      (fun (shard, ws) ->
        let ok, bad =
          submit_async s ~shard (Types.Tx_prepare { txid; writes = ws })
            ~classify:prepared
        in
        Depfast.Event.add all_ok ~child:ok;
        Depfast.Event.add any_bad ~child:bad)
      participants;
    let decided = Depfast.Event.or_ ~label:"phase1" () in
    Depfast.Event.add decided ~child:all_ok;
    Depfast.Event.add decided ~child:any_bad;
    let outcome =
      Depfast.Sched.wait_timeout s.store.sched decided
        (2 * s.store.cfg.Config.client_timeout)
    in
    if outcome = Depfast.Sched.Ready && Depfast.Event.is_ready all_ok then begin
      phase2 s participants (Types.Tx_commit { txid });
      Committed
    end
    else begin
      (* release any locks we did take *)
      phase2 s participants (Types.Tx_abort { txid });
      if Depfast.Event.is_ready any_bad then Aborted else Failed
    end

let read s ~key =
  let shard = shard_of s.store key in
  Client.get s.clients.(shard) ~key

let put s ~key ~value =
  let shard = shard_of s.store key in
  Client.put s.clients.(shard) ~key ~value
