(** RSM client: leader discovery, retries, exactly-once sessions.

    A client is a coroutine-side handle bound to a client {!Cluster.Node.t}.
    Operations block the calling coroutine until the command commits (or
    retries are exhausted). Retries reuse the same sequence number, so the
    server-side session dedup keeps them exactly-once.

    Per the paper's Figure 2, the client's wait on the leader is a {e red}
    1/1 edge — an accepted single-point wait outside the replication
    quorums. *)

type t

type outcome =
  | Committed of string option  (** applied; the value for reads *)
  | Shed  (** rejected at admission — terminal, no retry (fail-fast) *)
  | Failed  (** retries exhausted (leader unreachable / no quorum) *)

val create :
  (Types.req, Types.resp) Cluster.Rpc.t ->
  Cluster.Node.t ->
  servers:int list ->
  ?cfg:Config.t ->
  id:int ->
  unit ->
  t
(** The client node must already be attached to the RPC fabric
    ([Cluster.Rpc.attach]). *)

val id : t -> int

val node : t -> Cluster.Node.t
(** The node hosting this client's coroutines. *)

val submit : t -> Types.command -> outcome
(** Submit any state-machine command through the log and report what
    happened. A [Shed] reply is terminal: the leader said it is overloaded,
    and an immediate retry would feed the overload the bounded admission
    queue exists to relieve. Blocking; coroutine context. *)

val command : t -> Types.command -> string option option
(** [submit] collapsed to the legacy shape (used by the 2PC coordinator).
    [None] = failed or shed; [Some r] = committed with apply result [r].
    Blocking; coroutine context. *)

val put : t -> key:string -> value:string -> bool
(** Blocking update; [true] iff committed. Must run inside a coroutine on
    the client's node. *)

val get : t -> key:string -> string option option
(** Blocking linearizable read through the log. [None] = failed;
    [Some v] = committed, [v] is the value (or [None] if key absent). *)

val ops_attempted : t -> int
val ops_failed : t -> int

val ops_shed : t -> int
(** Commands that ended in a fail-fast shed reply. *)
