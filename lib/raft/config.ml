(** Timing and cost model for the RSM implementations.

    The CPU costs are calibrated (see DESIGN.md §6) so that a 3-node
    DepFastRaft under the paper's YCSB-style closed-loop write workload
    serves ≈5K requests/second with the leader around 75% CPU — the §3.4
    operating point. All implementations share this model; they differ only
    in {e how they wait}. *)

open Sim

type t = {
  (* Raft timing *)
  election_timeout_min : Time.span;
  election_timeout_max : Time.span;
  heartbeat_interval : Time.span;
  batch_max : int;  (** max entries per AppendEntries *)
  max_batch : int;
      (** max client commands the leader's batcher coalesces into one
          multi-command log entry (group commit); 1 disables batching — one
          entry, one fsync, one replication round per command *)
  admission_depth : int;
      (** bound on the leader's pending client-command queue: a request
          arriving with the queue at this depth is shed with an explicit
          fail-fast reply instead of joining an unbounded backlog (the
          paper's §2 RethinkDB root cause) *)
  pipeline_depth : int;
      (** max unacknowledged AppendEntries per follower: the leader streams
          up to this many batches past the last ack (flow-control window,
          rewound on a consistency reject) instead of one batch per
          round-trip *)
  group_commit_window : Time.span;  (** how long an idle leader waits for work *)
  rpc_timeout : Time.span;
  client_timeout : Time.span;
  (* CPU cost model, nominal core-microseconds *)
  cost_client_parse : Time.span;
      (** per client request, at the leader: decode plus the per-connection
          hashtable lookup and per-request dispatch closure of the baseline
          systems' connection handling *)
  cost_client_reply : Time.span;
  cost_client_parse_pooled : Time.span;
      (** per client request, at the leader, on the pooled/indexed
          connection path: the request resolves through a direct-indexed
          connection slot — no hash traffic, no per-request closure *)
  cost_client_reply_pooled : Time.span;
      (** per client reply on the pooled path: the reply is written straight
          out of the connection slot's reusable buffer *)
  cost_round_fixed : Time.span;  (** per replication round, leader serial *)
  cost_marshal_entry : Time.span;
      (** per entry per round, leader serial: WAL encode {e plus} the wire
          serialization into a per-send buffer — the copying replication
          path the baseline systems model *)
  cost_wal_entry : Time.span;
      (** per entry per round, leader serial, on the zero-copy path: WAL
          encode only — the wire buffer is gone, the NIC ships straight out
          of the log ({!Rlog.view}) *)
  cost_per_follower : Time.span;
      (** per follower per round, leader serial: assemble and hand off one
          peer's send buffer — the baseline systems' ship path *)
  cost_ship_view : Time.span;
      (** per follower per round, leader serial, on the zero-copy path:
          enqueue a view descriptor on the peer's pooled link — no buffer
          assembly, O(1) in the batch size *)
  cost_ack_process : Time.span;
      (** per ack, leader async: closure dispatch + per-call table lookup —
          the baseline systems' response path *)
  cost_ack_indexed : Time.span;
      (** per ack, leader async, on the pooled/indexed path: the response
          resolves through a direct-indexed connection slot and an O(1)
          window update, no per-message closure or hash traffic *)
  cost_send_entry : Time.span;
      (** per entry per follower, sender serial: the per-entry copy into the
          send buffer. The zero-copy path does not pay this — shipping a
          view is O(1) in the batch size *)
  cost_follower_fixed : Time.span;  (** per AppendEntries, follower serial *)
  cost_follower_entry : Time.span;
      (** per entry, follower serial: unmarshal the wire buffer entry by
          entry, then append — the baseline systems' receive path *)
  cost_follower_entry_view : Time.span;
      (** per entry, follower serial, on the zero-copy path: the batch
          materializes from the shipped log view as structured entries, so
          the stream pays append + checksum only, no per-entry unmarshal *)
  cost_apply_entry : Time.span;  (** per committed entry, both sides *)
  cost_apply_cmd : Time.span;
      (** per command inside a committed multi-command (batch) entry: the
          marginal state-machine update only — entry fetch, index advance,
          and dispatch are paid once per entry via [cost_apply_entry],
          and the session table stays cache-warm across the batch *)
  cost_client_reply_grouped : Time.span;
      (** per client reply on the grouped fan-out path: the reply is
          appended to its connection slot's outbuf; the syscall is the
          shared per-batch flush ([cost_reply_flush]) *)
  cost_reply_flush : Time.span;
      (** per commit batch, leader serial: one vectored flush pushing every
          reply of the batch out — the syscall half of what
          [cost_client_reply_pooled] paid per reply *)
  cost_vote : Time.span;
  (* storage *)
  wal_entry_overhead : int;  (** bytes per entry beyond payload *)
  (* transient hiccups (GC pauses etc.), per node *)
  hiccup_interval : Dist.t;  (** gap between hiccups, us *)
  hiccup_duration : Dist.t;  (** hiccup length, us *)
  hiccup_factor : float;  (** CPU slowdown during a hiccup *)
  enable_hiccups : bool;
  replication_arity : [ `Majority | `All ];
      (** ablation knob: [`All] replaces the replication QuorumEvent's
          majority arity with wait-for-everyone — the anti-pattern *)
}

let default =
  {
    election_timeout_min = Time.ms 150;
    election_timeout_max = Time.ms 300;
    heartbeat_interval = Time.ms 50;
    batch_max = 64;
    max_batch = 64;
    admission_depth = 256;
    pipeline_depth = 4;
    group_commit_window = Time.ms 5;
    rpc_timeout = Time.ms 1000;
    client_timeout = Time.ms 5000;
    cost_client_parse = Time.us 250;
    cost_client_reply = Time.us 120;
    cost_client_parse_pooled = Time.us 200;
    cost_client_reply_pooled = Time.us 100;
    cost_round_fixed = Time.us 240;
    cost_marshal_entry = Time.us 80;
    cost_wal_entry = Time.us 40;
    cost_per_follower = Time.us 60;
    cost_ship_view = Time.us 40;
    cost_ack_process = Time.us 60;
    cost_ack_indexed = Time.us 20;
    cost_send_entry = Time.us 20;
    cost_follower_fixed = Time.us 200;
    cost_follower_entry = Time.us 100;
    cost_follower_entry_view = Time.us 60;
    cost_apply_entry = Time.us 100;
    cost_apply_cmd = Time.us 40;
    cost_client_reply_grouped = Time.us 30;
    cost_reply_flush = Time.us 70;
    cost_vote = Time.us 50;
    wal_entry_overhead = 48;
    hiccup_interval = Dist.Exponential 400_000.0;  (* ~every 400 ms *)
    hiccup_duration = Dist.Shifted (500.0, Dist.Pareto (500.0, 1.8));
    hiccup_factor = 4.0;
    enable_hiccups = true;
    replication_arity = `Majority;
  }

(** Majority of a group of [n] voters. *)
let majority n = (n / 2) + 1
