let dummy : Types.entry = { term = 0; index = 0; cmd = Types.Nop; client_id = -1; seq = 0 }

type t = { mutable entries : Types.entry array; mutable len : int }
(* entries.(i) holds the entry at raft index i+1; slots >= len are [dummy] *)

let create () = { entries = Array.make 64 dummy; len = 0 }
let last_index t = t.len

let last_term t = if t.len = 0 then 0 else t.entries.(t.len - 1).Types.term

let term_at t i =
  if i = 0 then Some 0
  else if i < 0 || i > t.len then None
  else Some t.entries.(i - 1).Types.term

let get t i = if i < 1 || i > t.len then None else Some t.entries.(i - 1)

let grow t =
  let bigger = Array.make (2 * Array.length t.entries) dummy in
  Array.blit t.entries 0 bigger 0 t.len;
  t.entries <- bigger

let append t (e : Types.entry) =
  if e.Types.index <> t.len + 1 then
    invalid_arg
      (Printf.sprintf "Rlog.append: index %d but last is %d" e.Types.index t.len);
  if t.len = Array.length t.entries then grow t;
  t.entries.(t.len) <- e;
  t.len <- t.len + 1

let truncate_from t i =
  if i >= 1 && i <= t.len then begin
    Array.fill t.entries (i - 1) (t.len - (i - 1)) dummy;
    t.len <- i - 1
  end

let slice_array t ~from ~max =
  if from < 1 || from > t.len then [||]
  else
    let stop = min t.len (from + max - 1) in
    Array.sub t.entries (from - 1) (stop - from + 1)

let slice t ~from ~max = Array.to_list (slice_array t ~from ~max)

let length t = t.len

let matches t ~prev_index ~prev_term =
  match term_at t prev_index with Some tm -> tm = prev_term | None -> false
