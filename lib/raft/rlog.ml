let dummy : Types.entry = { term = 0; index = 0; cmd = Types.Nop; client_id = -1; seq = 0 }

type t = {
  mutable entries : Types.entry array;
  mutable len : int;
  gen : int ref;  (* truncation generation; shared with every View cut here *)
}
(* entries.(i) holds the entry at raft index i+1; slots >= len are [dummy] *)

(* the backing store starts on the major heap (1024 slots > the minor-alloc
   limit) and grows 4x: a log that reaches steady state stops copying *)
let initial_capacity = 1024

let create ?(capacity = initial_capacity) () =
  { entries = Array.make (max 8 capacity) dummy; len = 0; gen = ref 0 }

let last_index t = t.len

let last_term t = if t.len = 0 then 0 else t.entries.(t.len - 1).Types.term

let term_at t i =
  if i = 0 then Some 0
  else if i < 0 || i > t.len then None
  else Some t.entries.(i - 1).Types.term

let get t i = if i < 1 || i > t.len then None else Some t.entries.(i - 1)

let grow t =
  let bigger = Array.make (4 * Array.length t.entries) dummy in
  Array.blit t.entries 0 bigger 0 t.len;
  t.entries <- bigger

let append t (e : Types.entry) =
  if e.Types.index <> t.len + 1 then
    invalid_arg
      (Printf.sprintf "Rlog.append: index %d but last is %d" e.Types.index t.len);
  if t.len = Array.length t.entries then grow t;
  Array.unsafe_set t.entries t.len e;
  t.len <- t.len + 1

let truncate_from t i =
  if i >= 1 && i <= t.len then begin
    Array.fill t.entries (i - 1) (t.len - (i - 1)) dummy;
    t.len <- i - 1;
    (* invalidate every outstanding view: the slots just blanked (and any
       slot later re-appended over) may be referenced by in-flight ships *)
    incr t.gen
  end

let generation t = !(t.gen)

let slice_array t ~from ~max =
  if from < 1 || from > t.len then [||]
  else
    let stop = min t.len (from + max - 1) in
    Array.sub t.entries (from - 1) (stop - from + 1)

let slice t ~from ~max = Array.to_list (slice_array t ~from ~max)

let length t = t.len

let matches t ~prev_index ~prev_term =
  match term_at t prev_index with Some tm -> tm = prev_term | None -> false

module View = struct
  type nonrec t = Types.eview

  exception Stale

  let length = Types.view_len
  let valid = Types.view_valid

  let bytes v =
    if not (valid v) then raise Stale;
    Types.view_bytes v

  let to_array v =
    match Types.view_materialize v with Some a -> a | None -> raise Stale

  let get v i =
    if not (valid v) then raise Stale;
    if i < 0 || i >= v.Types.v_len then invalid_arg "Rlog.View.get";
    v.Types.v_store.(v.Types.v_off + i)

  let iter f v =
    if not (valid v) then raise Stale;
    for i = v.Types.v_off to v.Types.v_off + v.Types.v_len - 1 do
      f (Array.unsafe_get v.Types.v_store i)
    done
end

let view t ~from ~max =
  if from < 1 || from > t.len || max <= 0 then
    { Types.v_store = t.entries; v_off = 0; v_len = 0; v_gen = !(t.gen); v_live = t.gen }
  else
    let stop = min t.len (from + max - 1) in
    {
      Types.v_store = t.entries;
      v_off = from - 1;
      v_len = stop - from + 1;
      v_gen = !(t.gen);
      v_live = t.gen;
    }
