(** Wire and log types shared by DepFastRaft and the baseline RSMs. *)

type term = int [@@deriving show { with_path = false }, eq]
type index = int [@@deriving show { with_path = false }, eq]

(** State-machine commands. [Nop] is the no-op a fresh leader commits to
    learn its commit index. *)
type command =
  | Put of { key : string; value : string }
  | Get of { key : string }
  | Nop
  | Tx_prepare of { txid : int; writes : (string * string) list }
      (** 2PC phase 1, replicated through the shard's log: lock the keys and
          stage the writes; applies to "ok" or "conflict" *)
  | Tx_commit of { txid : int }  (** 2PC phase 2: install staged writes *)
  | Tx_abort of { txid : int }  (** 2PC phase 2: discard staged writes *)
[@@deriving show { with_path = false }, eq]

type entry = {
  term : term;
  index : index;
  cmd : command;
  client_id : int;  (** -1 for internal entries *)
  seq : int;  (** client request sequence number, for dedup *)
}
[@@deriving show { with_path = false }, eq]

(** Requests. The RSM uses one RPC channel for peer and client traffic,
    like real systems sharing a port. *)
type req =
  | Request_vote of {
      term : term;
      candidate : int;
      last_log_index : index;
      last_log_term : term;
      transfer : bool;
          (** set during leadership transfer; bypasses leader stickiness *)
      prevote : bool;
          (** Pre-Vote phase (Raft thesis §9.6): probe electability without
              disturbing the incumbent; grants are advisory, the term is the
              term the candidate {e would} use *)
    }
  | Append_entries of {
      term : term;
      leader : int;
      prev_index : index;
      prev_term : term;
      entries : entry array;  (** sliced straight out of the leader's log *)
      commit : index;
    }
  | Client_request of { cmd : command; client_id : int; seq : int }
  | Pull_oplog of { from : index; follower : int }
      (** MongoDB-like pull-based replication (baseline only). *)
  | Update_position of { follower : int; match_index : index; term : term }
      (** MongoDB-like progress report (baseline only). *)
  | Transfer_leadership of { target : int }
      (** §5 mitigation: ask the leader to hand off to [target]. *)
  | Timeout_now
      (** sent by a transferring leader: start an election immediately. *)
[@@deriving show { with_path = false }]

type resp =
  | Vote_resp of { term : term; granted : bool }
  | Append_resp of { term : term; success : bool; match_index : index }
  | Client_resp of { ok : bool; leader_hint : int option; value : string option }
  | Oplog_resp of { entries : entry list; prev_index : index; prev_term : term; commit : index }
  | Ack
[@@deriving show { with_path = false }]

(** Size estimate of an entry on the wire / WAL, for disk and buffer
    accounting. *)
let entry_bytes e =
  match e.cmd with
  | Put { key; value } -> 64 + String.length key + String.length value
  | Get { key } -> 64 + String.length key
  | Nop -> 64
  | Tx_prepare { writes; _ } ->
    List.fold_left (fun acc (k, v) -> acc + String.length k + String.length v) 96 writes
  | Tx_commit _ | Tx_abort _ -> 72

let entries_bytes es = List.fold_left (fun acc e -> acc + entry_bytes e) 0 es
let entries_bytes_a es = Array.fold_left (fun acc e -> acc + entry_bytes e) 0 es
