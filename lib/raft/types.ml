(** Wire and log types shared by DepFastRaft and the baseline RSMs. *)

type term = int [@@deriving show { with_path = false }, eq]
type index = int [@@deriving show { with_path = false }, eq]

(** State-machine commands. [Nop] is the no-op a fresh leader commits to
    learn its commit index. *)
type command =
  | Put of { key : string; value : string }
  | Get of { key : string }
  | Nop
  | Tx_prepare of { txid : int; writes : (string * string) list }
      (** 2PC phase 1, replicated through the shard's log: lock the keys and
          stage the writes; applies to "ok" or "conflict" *)
  | Tx_commit of { txid : int }  (** 2PC phase 2: install staged writes *)
  | Tx_abort of { txid : int }  (** 2PC phase 2: discard staged writes *)
  | Batch of bcmd array
      (** group commit: concurrent client commands coalesced by the leader's
          batcher into one log entry — one WAL fsync and one replication
          round for the whole group. Each element keeps its own client
          session identity so dedup and reply fan-out stay per-command. *)

and bcmd = { b_cmd : command; b_client : int; b_seq : int }
[@@deriving show { with_path = false }, eq]

type entry = {
  term : term;
  index : index;
  cmd : command;
  client_id : int;  (** -1 for internal entries *)
  seq : int;  (** client request sequence number, for dedup *)
}
[@@deriving show { with_path = false }, eq]

(** A zero-copy window into a log's backing store — what AppendEntries
    carries on the (simulated) wire instead of an [Array.sub] copy. The
    window stays valid as long as the producing log has not truncated:
    [v_live] is the log's generation cell, bumped on every truncation, and
    a mismatch with [v_gen] marks the view stale. Appends and backing-array
    growth never invalidate a view (growth blits the prefix; the view holds
    the old store). Consumers materialize with {!view_materialize}. *)
type eview = {
  v_store : entry array;  (** the log's backing array when the view was cut *)
  v_off : int;  (** 0-based offset into [v_store] *)
  v_len : int;
  v_gen : int;  (** producing log's generation at creation *)
  v_live : int ref;  (** the log's live generation cell *)
}

let pp_eview fmt v =
  Format.fprintf fmt "<view %d entries @@%d gen %d%s>" v.v_len v.v_off v.v_gen
    (if !(v.v_live) = v.v_gen then "" else " STALE")

let show_eview v = Format.asprintf "%a" pp_eview v

let view_of_array a =
  (* a self-owned copy wrapped as a view (always valid): the path baseline
     systems take — they still pay the copy this wrapper carries *)
  { v_store = a; v_off = 0; v_len = Array.length a; v_gen = 0; v_live = ref 0 }

let view_len v = v.v_len
let view_valid v = !(v.v_live) = v.v_gen

let view_materialize v =
  (* [None] when the producer truncated after the view was cut: the send
     buffer was reclaimed before the (simulated) NIC shipped it, so the
     message is treated as lost — always safe for AppendEntries *)
  if not (view_valid v) then None
  else if v.v_len = 0 then Some [||]
  else Some (Array.sub v.v_store v.v_off v.v_len)

(** Requests. The RSM uses one RPC channel for peer and client traffic,
    like real systems sharing a port. *)
type req =
  | Request_vote of {
      term : term;
      candidate : int;
      last_log_index : index;
      last_log_term : term;
      transfer : bool;
          (** set during leadership transfer; bypasses leader stickiness *)
      prevote : bool;
          (** Pre-Vote phase (Raft thesis §9.6): probe electability without
              disturbing the incumbent; grants are advisory, the term is the
              term the candidate {e would} use *)
    }
  | Append_entries of {
      term : term;
      leader : int;
      prev_index : index;
      prev_term : term;
      entries : eview;
          (** zero-copy view into the sender's log; the receiver
              materializes (and a stale view is a lost message) *)
      commit : index;
    }
  | Client_request of { cmd : command; client_id : int; seq : int }
  | Pull_oplog of { from : index; follower : int }
      (** MongoDB-like pull-based replication (baseline only). *)
  | Update_position of { follower : int; match_index : index; term : term }
      (** MongoDB-like progress report (baseline only). *)
  | Transfer_leadership of { target : int }
      (** §5 mitigation: ask the leader to hand off to [target]. *)
  | Timeout_now
      (** sent by a transferring leader: start an election immediately. *)
[@@deriving show { with_path = false }]

type resp =
  | Vote_resp of { term : term; granted : bool }
  | Append_resp of { term : term; success : bool; match_index : index }
  | Client_resp of {
      ok : bool;
      shed : bool;
          (** the leader's bounded admission queue was full and the request
              was rejected at the door (fail-fast) — retrying immediately
              would only feed the overload *)
      leader_hint : int option;
      value : string option;
    }
  | Oplog_resp of { entries : entry list; prev_index : index; prev_term : term; commit : index }
  | Ack
[@@deriving show { with_path = false }]

(** Size estimate of a command / an entry on the wire / WAL, for disk and
    buffer accounting. A batch pays one entry header plus a small per-element
    frame — the WAL-amortization the batcher exists for. *)
let rec cmd_bytes = function
  | Put { key; value } -> 64 + String.length key + String.length value
  | Get { key } -> 64 + String.length key
  | Nop -> 64
  | Tx_prepare { writes; _ } ->
    List.fold_left (fun acc (k, v) -> acc + String.length k + String.length v) 96 writes
  | Tx_commit _ | Tx_abort _ -> 72
  | Batch subs -> Array.fold_left (fun acc b -> acc + 16 + cmd_bytes b.b_cmd) 32 subs

let entry_bytes e = cmd_bytes e.cmd

let entries_bytes es = List.fold_left (fun acc e -> acc + entry_bytes e) 0 es
let entries_bytes_a es = Array.fold_left (fun acc e -> acc + entry_bytes e) 0 es

(* wire/WAL size of a view's window, without materializing it *)
let view_bytes v =
  let acc = ref 0 in
  for i = v.v_off to v.v_off + v.v_len - 1 do
    acc := !acc + entry_bytes (Array.unsafe_get v.v_store i)
  done;
  !acc
