(** Per-domain Raft shards: independent shard groups on separate OCaml 5
    domains with a deterministic cross-shard message merge at barrier
    points.

    Each shard owns a full engine/scheduler/group/client stack, built on
    its owning domain. The simulation advances in fixed virtual-time
    quanta: every domain runs its shards to the quantum boundary, all
    meet at a barrier, one domain folds every shard's outbox of
    cross-shard requests into the destination inboxes in
    (send time, source shard, sequence) order, and the owners replay
    their inboxes at the start of the next quantum. Because the merged
    order is a pure function of outbox contents and each shard evolves
    deterministically from its seed and inbox sequence, the run is
    deterministic in the domain count: [jobs = 1] and [jobs = N] report
    identical per-shard stats. *)

type stats = {
  st_shard : int;
  st_ops : int;  (** committed puts, local and ingress *)
  st_failed : int;
  st_shed : int;
  st_cross_out : int;  (** requests routed away from this shard *)
  st_cross_in : int;  (** requests replayed from the inbox *)
  st_latency : Sim.Hist.t;  (** local put latency, virtual µs *)
  st_time : Sim.Time.t;  (** shard clock at the end of the run *)
}

type report = {
  r_shards : stats array;  (** indexed by shard id *)
  r_virtual : Sim.Time.span;  (** measured virtual duration (the quanta) *)
}

val default_cfg : Config.t
(** The checker's fast Raft timing (hiccups off, 80–160 ms elections). *)

val run :
  ?shards:int ->
  ?jobs:int ->
  ?replicas:int ->
  ?cfg:Config.t ->
  ?quantum:Sim.Time.span ->
  ?quanta:int ->
  ?clients:int ->
  ?cross_permille:int ->
  ?seed:int ->
  unit ->
  report
(** Run [shards] (default 4) shard groups of [replicas] (default 3) on
    [jobs] domains (default 1, clamped to [shards]), each under
    [clients] (default 4) closed-loop writers, for [quanta] (default
    20) quanta of [quantum] (default 50 ms) virtual time after a 300 ms
    election bootstrap. A put routes cross-shard with probability
    [cross_permille]/1000 (default 100); such requests are
    fire-and-forget and land at the next barrier. Deterministic in
    [jobs] for a fixed [seed]. *)

val total_ops : report -> int
val total_cross : report -> int

val merged_latency : report -> Sim.Hist.t
(** Cross-domain histogram aggregation: exact bucket-wise {!Sim.Hist.merge}
    fold of every shard's latency histogram. *)
