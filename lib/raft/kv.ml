type t = {
  store : (string, string) Hashtbl.t;
  sessions : (int, int) Hashtbl.t;  (* client_id -> last applied seq *)
  locks : (string, int) Hashtbl.t;  (* key -> txid holding its 2PC lock *)
  staged : (int, (string * string) list) Hashtbl.t;  (* txid -> writes *)
  mutable applied : int;
}

let create () =
  {
    store = Hashtbl.create 1024;
    sessions = Hashtbl.create 64;
    locks = Hashtbl.create 64;
    staged = Hashtbl.create 64;
    applied = 0;
  }

let last_seq t ~client_id = Option.value ~default:(-1) (Hashtbl.find_opt t.sessions client_id)

let bump t ~client_id ~seq =
  if client_id >= 0 then Hashtbl.replace t.sessions client_id seq;
  t.applied <- t.applied + 1

(* One command under one session identity. A [Batch] entry carries its own
   per-element identities, so applying it whole and applying its elements
   one by one are the same sequence of [apply_cmd] calls — the QCheck
   batched-vs-sequential property pins this. *)
let rec apply_cmd t ~cmd ~client_id ~seq =
  let duplicate = client_id >= 0 && seq <= last_seq t ~client_id in
  match cmd with
  | Types.Nop -> None
  | Types.Batch subs ->
    Array.iter
      (fun (b : Types.bcmd) ->
        ignore (apply_cmd t ~cmd:b.b_cmd ~client_id:b.b_client ~seq:b.b_seq))
      subs;
    None
  | Types.Tx_prepare { txid; writes } ->
    if duplicate then
      (* deterministic re-answer: prepared iff still staged *)
      Some (if Hashtbl.mem t.staged txid then "ok" else "conflict")
    else begin
      bump t ~client_id ~seq;
      let conflicting =
        List.exists
          (fun (k, _) ->
            match Hashtbl.find_opt t.locks k with
            | Some holder -> holder <> txid
            | None -> false)
          writes
      in
      if conflicting then Some "conflict"
      else begin
        List.iter (fun (k, _) -> Hashtbl.replace t.locks k txid) writes;
        Hashtbl.replace t.staged txid writes;
        Some "ok"
      end
    end
  | Types.Tx_commit { txid } ->
    if not duplicate then begin
      bump t ~client_id ~seq;
      (match Hashtbl.find_opt t.staged txid with
      | Some writes ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace t.store k v;
            Hashtbl.remove t.locks k)
          writes;
        Hashtbl.remove t.staged txid
      | None -> ())
    end;
    Some "ok"
  | Types.Tx_abort { txid } ->
    if not duplicate then begin
      bump t ~client_id ~seq;
      (match Hashtbl.find_opt t.staged txid with
      | Some writes ->
        List.iter (fun (k, _) -> Hashtbl.remove t.locks k) writes;
        Hashtbl.remove t.staged txid
      | None -> ())
    end;
    Some "ok"
  | Types.Get { key } ->
    if not duplicate then bump t ~client_id ~seq;
    Hashtbl.find_opt t.store key
  | Types.Put { key; value } ->
    if not duplicate then begin
      Hashtbl.replace t.store key value;
      bump t ~client_id ~seq
    end;
    None

let apply t (e : Types.entry) = apply_cmd t ~cmd:e.cmd ~client_id:e.client_id ~seq:e.seq

let get t key = Hashtbl.find_opt t.store key
let size t = Hashtbl.length t.store
let applied_count t = t.applied

let locked t key = Hashtbl.find_opt t.locks key
let staged_count t = Hashtbl.length t.staged

let digest t =
  Hashtbl.fold (fun k v acc -> acc lxor Hashtbl.hash (k, v)) t.store 0
