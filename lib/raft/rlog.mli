(** The Raft log: 1-based, append-only except for conflict truncation.

    Index 0 is a virtual sentinel with term 0. Purely in-memory; durability
    timing is modelled by the WAL writes the servers issue against the
    simulated disk. *)

type t

val create : unit -> t

val last_index : t -> Types.index
val last_term : t -> Types.term

val term_at : t -> Types.index -> Types.term option
(** [None] beyond the end; [Some 0] at index 0. *)

val get : t -> Types.index -> Types.entry option

val append : t -> Types.entry -> unit
(** @raise Invalid_argument if the entry's index is not [last_index + 1]. *)

val truncate_from : t -> Types.index -> unit
(** Drop entries at indices >= the given one (conflict resolution). *)

val slice_array : t -> from:Types.index -> max:int -> Types.entry array
(** Up to [max] entries starting at [from] ([||] if [from] is past the end).
    One [Array.sub] of the backing store; the hot path for replication. *)

val slice : t -> from:Types.index -> max:int -> Types.entry list
(** {!slice_array} as a list, for callers that want one. *)

val length : t -> int
(** Number of real entries ([last_index]). *)

val matches : t -> prev_index:Types.index -> prev_term:Types.term -> bool
(** The AppendEntries consistency check. *)
