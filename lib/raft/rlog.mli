(** The Raft log: 1-based, append-only except for conflict truncation.

    Index 0 is a virtual sentinel with term 0. Purely in-memory; durability
    timing is modelled by the WAL writes the servers issue against the
    simulated disk.

    Replication ships {!View.t} windows — zero-copy references into the
    backing store guarded by a truncation generation — instead of
    [Array.sub] copies; see {!view}. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 512) pre-sizes the backing store; it lands on the
    major heap and grows 4x, so steady-state appends never copy. *)

val last_index : t -> Types.index
val last_term : t -> Types.term

val term_at : t -> Types.index -> Types.term option
(** [None] beyond the end; [Some 0] at index 0. *)

val get : t -> Types.index -> Types.entry option

val append : t -> Types.entry -> unit
(** @raise Invalid_argument if the entry's index is not [last_index + 1]. *)

val truncate_from : t -> Types.index -> unit
(** Drop entries at indices >= the given one (conflict resolution). Bumps
    the log's generation, invalidating every outstanding {!View.t}. *)

val generation : t -> int
(** Current truncation generation (starts at 0). *)

(** A sub-array window into the log: store reference + offset + length +
    the generation it was cut at. Valid until the log next truncates;
    stale views fail loudly ({!View.Stale}) rather than exposing slots
    that may have been blanked or overwritten. Appends and backing-store
    growth never invalidate a view. *)
module View : sig
  type t = Types.eview

  exception Stale

  val length : t -> int

  val valid : t -> bool

  val bytes : t -> int
  (** Wire/WAL size of the window ({!Types.entry_bytes} summed), computed
      in place — no copy.
      @raise Stale on an invalidated view (it walks the store). *)

  val to_array : t -> Types.entry array
  (** Materialize the window — the one copy on the replication path, paid
      by the receiver. @raise Stale if the log truncated since. *)

  val get : t -> int -> Types.entry
  (** 0-based within the window. @raise Stale if invalidated. *)

  val iter : (Types.entry -> unit) -> t -> unit
  (** In-place iteration, no copy. @raise Stale if invalidated. *)
end

val view : t -> from:Types.index -> max:int -> View.t
(** Up to [max] entries starting at [from] (empty view if [from] is past
    the end). O(1), no copy — the replication hot path. *)

val slice_array : t -> from:Types.index -> max:int -> Types.entry array
(** Copying variant ([Array.sub]) kept for the baseline systems, which
    model copy-per-send replication. *)

val slice : t -> from:Types.index -> max:int -> Types.entry list
(** {!slice_array} as a list, for callers that want one. *)

val length : t -> int
(** Number of real entries ([last_index]). *)

val matches : t -> prev_index:Types.index -> prev_term:Types.term -> bool
(** The AppendEntries consistency check. *)
