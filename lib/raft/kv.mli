(** The replicated key-value state machine, with client-session dedup.

    Applying the same committed log prefix always yields the same state;
    retried client commands (same [client_id], [seq]) are applied once. *)

type t

val create : unit -> t

val apply : t -> Types.entry -> string option
(** Apply a committed entry. Returns the read value for [Get], [None]
    otherwise (including for [Batch] entries, whose elements are applied in
    order under their own session identities — the leader uses
    {!apply_cmd} per element when it needs each result). Duplicate
    [(client_id, seq)] pairs are skipped (still returning the current value
    for reads). *)

val apply_cmd : t -> cmd:Types.command -> client_id:int -> seq:int -> string option
(** Apply one command under the given session identity — the per-element
    entry point the leader's batched apply/reply fan-out uses. [apply] of a
    [Batch] entry is exactly [apply_cmd] over its elements in order. *)

val get : t -> string -> string option
(** Direct lookup (used by leader reads after commit). *)

val size : t -> int
(** Number of live keys. *)

val applied_count : t -> int
(** Entries actually applied (excludes deduplicated retries and Nops). *)

val last_seq : t -> client_id:int -> int
(** Highest applied sequence number for a client; -1 if none. *)

val locked : t -> string -> int option
(** The transaction currently holding a 2PC lock on the key, if any. *)

val staged_count : t -> int
(** Transactions prepared but not yet committed or aborted. *)

val digest : t -> int
(** Order-independent hash of the full store, for replica-agreement
    checks in tests. *)
