(* Tests for the cluster substrate: stations, disk, memory, network, RPC,
   and the Table-1 fault injectors. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_sched ?(seed = 1L) () = Depfast.Sched.create (Sim.Engine.create ~seed ())

(* ------------------------------------------------------------------ *)
(* Station *)

let test_station_single_server_fifo () =
  let s = make_sched () in
  let st = Cluster.Station.create s ~servers:1 ~name:"cpu" () in
  let done_at = ref [] in
  let submit tag work =
    let ev = Cluster.Station.submit st ~work () in
    Depfast.Event.on_fire ev (fun () -> done_at := (tag, Depfast.Sched.now s) :: !done_at)
  in
  submit "a" 100;
  submit "b" 50;
  Depfast.Sched.run s;
  (* FIFO: a (100us) finishes at 100, then b at 150 despite being shorter *)
  Alcotest.(check (list (pair string int)))
    "fifo order" [ ("a", 100); ("b", 150) ] (List.rev !done_at)

let test_station_parallel_servers () =
  let s = make_sched () in
  let st = Cluster.Station.create s ~servers:2 ~name:"cpu" () in
  let finished = ref [] in
  for i = 1 to 2 do
    let ev = Cluster.Station.submit st ~work:100 () in
    Depfast.Event.on_fire ev (fun () -> finished := (i, Depfast.Sched.now s) :: !finished)
  done;
  Depfast.Sched.run s;
  List.iter (fun (_, t) -> check_int "parallel completion" 100 t) !finished

let test_station_speed_factor () =
  let s = make_sched () in
  let st = Cluster.Station.create s ~servers:1 ~name:"cpu" () in
  Cluster.Station.set_speed st 20.0;
  let at = ref 0 in
  Depfast.Event.on_fire (Cluster.Station.submit st ~work:100 ()) (fun () ->
      at := Depfast.Sched.now s);
  Depfast.Sched.run s;
  check_int "20x slower" 2000 !at

let test_station_utilization () =
  let s = make_sched () in
  let st = Cluster.Station.create s ~servers:2 ~name:"cpu" () in
  (* one server busy for the whole horizon = 50% utilization *)
  ignore (Cluster.Station.submit st ~work:1000 ());
  Depfast.Sched.run s;
  let u = Cluster.Station.utilization st in
  check_bool "50% util" true (Float.abs (u -. 0.5) < 0.01);
  check_int "completed" 1 (Cluster.Station.completed_jobs st)

let test_station_queue_length () =
  let s = make_sched () in
  let st = Cluster.Station.create s ~servers:1 ~name:"cpu" () in
  ignore (Cluster.Station.submit st ~work:100 ());
  ignore (Cluster.Station.submit st ~work:100 ());
  ignore (Cluster.Station.submit st ~work:100 ());
  check_int "two queued" 2 (Cluster.Station.queue_length st);
  check_int "one busy" 1 (Cluster.Station.busy_servers st);
  Depfast.Sched.run s

(* ------------------------------------------------------------------ *)
(* Memory *)

let test_memory_pressure_and_penalty () =
  let m = Cluster.Memory.create ~soft_cap:1000 ~hard_cap:4000 () in
  Cluster.Memory.alloc m 500;
  check_bool "no pressure" true (Cluster.Memory.penalty m = 1.0);
  Cluster.Memory.alloc m 1000;
  (* used 1500, soft 1000 -> pressure 1.5 -> penalty 1 + 4*0.5 = 3 *)
  check_bool "pressure penalty" true (Float.abs (Cluster.Memory.penalty m -. 3.0) < 1e-9);
  Cluster.Memory.free m 1000;
  check_int "free" 500 (Cluster.Memory.used m)

let test_memory_oom_fires_once () =
  let m = Cluster.Memory.create ~soft_cap:100 ~hard_cap:200 () in
  let ooms = ref 0 in
  Cluster.Memory.on_oom m (fun () -> incr ooms);
  Cluster.Memory.alloc m 150;
  check_int "below hard" 0 !ooms;
  Cluster.Memory.alloc m 100;
  check_int "oom" 1 !ooms;
  Cluster.Memory.alloc m 100;
  check_int "only once" 1 !ooms

(* ------------------------------------------------------------------ *)
(* Disk *)

let test_disk_write_cost () =
  let s = make_sched () in
  let d = Cluster.Disk.create s ~node_id:0 ~base_latency:100 ~bandwidth_mb_s:200.0 () in
  let at = ref 0 in
  (* 200 MB/s = 200 bytes/us -> 20_000 bytes = 100us transfer + 100us base *)
  Depfast.Event.on_fire (Cluster.Disk.write d ~bytes:20_000) (fun () ->
      at := Depfast.Sched.now s);
  Depfast.Sched.run s;
  check_int "write cost" 200 !at

let test_disk_bandwidth_throttle () =
  let s = make_sched () in
  let d = Cluster.Disk.create s ~node_id:0 ~base_latency:0 ~bandwidth_mb_s:200.0 () in
  Cluster.Disk.set_bandwidth_factor d 0.05;
  let at = ref 0 in
  Depfast.Event.on_fire (Cluster.Disk.write d ~bytes:10_000) (fun () ->
      at := Depfast.Sched.now s);
  Depfast.Sched.run s;
  check_int "throttled 20x" 1000 !at

let test_disk_fsync_after_write () =
  let s = make_sched () in
  let d = Cluster.Disk.create s ~node_id:0 () in
  let order = ref [] in
  Depfast.Event.on_fire (Cluster.Disk.write d ~bytes:1000) (fun () -> order := "w" :: !order);
  Depfast.Event.on_fire (Cluster.Disk.fsync d) (fun () -> order := "f" :: !order);
  Depfast.Sched.run s;
  Alcotest.(check (list string)) "write before fsync" [ "w"; "f" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Network *)

let test_net_delivery_and_fifo () =
  let s = make_sched () in
  let net = Cluster.Net.create s ~latency:(Sim.Dist.Constant 100.0) () in
  let a = Cluster.Node.create s ~id:0 ~name:"a" () in
  let b = Cluster.Node.create s ~id:1 ~name:"b" () in
  let got = ref [] in
  Cluster.Net.register net a ~handler:(fun ~src:_ _ -> ());
  Cluster.Net.register net b ~handler:(fun ~src:_ m -> got := m :: !got);
  Cluster.Net.send net ~src:0 ~dst:1 "first";
  Cluster.Net.send net ~src:0 ~dst:1 "second";
  Depfast.Sched.run s;
  Alcotest.(check (list string)) "in order" [ "first"; "second" ] (List.rev !got);
  check_int "delivered" 2 (Cluster.Net.delivered_count net)

let test_net_partition_drops () =
  let s = make_sched () in
  let net = Cluster.Net.create s () in
  let a = Cluster.Node.create s ~id:0 ~name:"a" () in
  let b = Cluster.Node.create s ~id:1 ~name:"b" () in
  let got = ref 0 in
  Cluster.Net.register net a ~handler:(fun ~src:_ () -> ());
  Cluster.Net.register net b ~handler:(fun ~src:_ () -> incr got);
  Cluster.Net.partition net 0 1;
  Cluster.Net.send net ~src:0 ~dst:1 ();
  Depfast.Sched.run s;
  check_int "dropped" 0 !got;
  Cluster.Net.heal net 0 1;
  Cluster.Net.send net ~src:0 ~dst:1 ();
  Depfast.Sched.run s;
  check_int "healed" 1 !got

let test_net_dead_node_drops () =
  let s = make_sched () in
  let net = Cluster.Net.create s () in
  let a = Cluster.Node.create s ~id:0 ~name:"a" () in
  let b = Cluster.Node.create s ~id:1 ~name:"b" () in
  let got = ref 0 in
  Cluster.Net.register net a ~handler:(fun ~src:_ () -> ());
  Cluster.Net.register net b ~handler:(fun ~src:_ () -> incr got);
  Cluster.Node.crash b;
  Cluster.Net.send net ~src:0 ~dst:1 ();
  Depfast.Sched.run s;
  check_int "to dead dropped" 0 !got

let test_net_nic_delay () =
  let s = make_sched () in
  let net = Cluster.Net.create s ~latency:(Sim.Dist.Constant 100.0) () in
  let a = Cluster.Node.create s ~id:0 ~name:"a" () in
  let b = Cluster.Node.create s ~id:1 ~name:"b" () in
  let at = ref 0 in
  Cluster.Net.register net a ~handler:(fun ~src:_ () -> ());
  Cluster.Net.register net b ~handler:(fun ~src:_ () -> at := Depfast.Sched.now s);
  Cluster.Node.set_nic_delay b (Sim.Time.ms 400);
  Cluster.Net.send net ~src:0 ~dst:1 ();
  Depfast.Sched.run s;
  check_int "tc delay applied" (Sim.Time.ms 400 + 100) !at

(* a burst of messages with random latencies must still arrive in send
   order on each directed link (the pooled outbox preserves the FIFO
   clamp), with per-link stats accounting every message *)
let test_net_fifo_pooled_burst () =
  let s = make_sched () in
  let net = Cluster.Net.create s ~latency:(Sim.Dist.Exponential 50.0) () in
  let a = Cluster.Node.create s ~id:0 ~name:"a" () in
  let b = Cluster.Node.create s ~id:1 ~name:"b" () in
  let got = ref [] in
  Cluster.Net.register net a ~handler:(fun ~src:_ _ -> ());
  Cluster.Net.register net b ~handler:(fun ~src:_ m -> got := m :: !got);
  for i = 1 to 200 do
    Cluster.Net.send net ~units:10 ~src:0 ~dst:1 i
  done;
  Depfast.Sched.run s;
  Alcotest.(check (list int)) "send order preserved" (List.init 200 (fun i -> i + 1))
    (List.rev !got);
  let st = Cluster.Net.stats net ~src:0 ~dst:1 in
  check_int "link delivered" 200 st.Cluster.Net.delivered;
  check_int "link dropped" 0 st.Cluster.Net.dropped;
  check_int "link units" 2000 st.Cluster.Net.units;
  check_int "reverse link untouched" 0 (Cluster.Net.stats net ~src:1 ~dst:0).Cluster.Net.delivered

(* partition installed while a message is in flight drops it at arrival
   time; messages sent while partitioned drop at send time; after heal the
   link resumes in order *)
let test_net_partition_heal_mid_flight () =
  let s = make_sched () in
  let net = Cluster.Net.create s ~latency:(Sim.Dist.Constant 100.0) () in
  let a = Cluster.Node.create s ~id:0 ~name:"a" () in
  let b = Cluster.Node.create s ~id:1 ~name:"b" () in
  let got = ref [] in
  Cluster.Net.register net a ~handler:(fun ~src:_ _ -> ());
  Cluster.Net.register net b ~handler:(fun ~src:_ m -> got := m :: !got);
  let engine = Depfast.Sched.engine s in
  Cluster.Net.send net ~src:0 ~dst:1 "in-flight";
  ignore
    (Sim.Engine.schedule engine ~delay:50 (fun () -> Cluster.Net.partition net 0 1));
  ignore
    (Sim.Engine.schedule engine ~delay:150 (fun () ->
         Cluster.Net.send net ~src:0 ~dst:1 "while-cut"));
  ignore
    (Sim.Engine.schedule engine ~delay:200 (fun () ->
         Cluster.Net.heal net 0 1;
         Cluster.Net.send net ~src:0 ~dst:1 "after-heal"));
  Depfast.Sched.run s;
  Alcotest.(check (list string)) "only post-heal delivered" [ "after-heal" ] (List.rev !got);
  let st = Cluster.Net.stats net ~src:0 ~dst:1 in
  check_int "link delivered" 1 st.Cluster.Net.delivered;
  check_int "link dropped" 2 st.Cluster.Net.dropped;
  let tot = Cluster.Net.totals net in
  check_int "totals delivered" 1 tot.Cluster.Net.delivered;
  check_int "totals dropped" 2 tot.Cluster.Net.dropped

let test_net_nodes_cached_sorted () =
  let s = make_sched () in
  let net = Cluster.Net.create s () in
  let mk id = Cluster.Node.create s ~id ~name:(Printf.sprintf "n%d" id) () in
  List.iter
    (fun id -> Cluster.Net.register net (mk id) ~handler:(fun ~src:_ () -> ()))
    [ 5; 1; 3 ];
  let ids () = List.map Cluster.Node.id (Cluster.Net.nodes net) in
  check_bool "sorted" true (ids () = [ 1; 3; 5 ]);
  check_bool "cached list reused" true (Cluster.Net.nodes net == Cluster.Net.nodes net);
  ignore (Cluster.Net.register net (mk 2) ~handler:(fun ~src:_ () -> ()));
  check_bool "cache refreshed after register" true (ids () = [ 1; 2; 3; 5 ])

(* ------------------------------------------------------------------ *)
(* RPC *)

let rpc_pair () =
  let s = make_sched () in
  let rpc : (string, string) Cluster.Rpc.t = Cluster.Rpc.create s () in
  let a = Cluster.Node.create s ~id:0 ~name:"a" () in
  let b = Cluster.Node.create s ~id:1 ~name:"b" () in
  Cluster.Rpc.attach rpc a;
  (s, rpc, a, b)

let test_rpc_roundtrip () =
  let s, rpc, a, b = rpc_pair () in
  Cluster.Rpc.serve rpc ~node:b ~handler:(fun ~src:_ req -> Some (req ^ "-pong"));
  let got = ref None in
  Depfast.Sched.spawn s ~node:0 (fun () ->
      let call = Cluster.Rpc.call rpc ~src:a ~dst:1 "ping" in
      Depfast.Sched.wait s (Cluster.Rpc.event call);
      got := Cluster.Rpc.response call);
  Depfast.Sched.run s;
  Alcotest.(check (option string)) "reply" (Some "ping-pong") !got

let test_rpc_handler_can_wait () =
  let s, rpc, a, b = rpc_pair () in
  Cluster.Rpc.serve rpc ~node:b ~handler:(fun ~src:_ req ->
      Cluster.Node.cpu_work b (Sim.Time.ms 5);
      Some req);
  let at = ref 0 in
  Depfast.Sched.spawn s ~node:0 (fun () ->
      let call = Cluster.Rpc.call rpc ~src:a ~dst:1 "x" in
      Depfast.Sched.wait s (Cluster.Rpc.event call);
      at := Depfast.Sched.now s);
  Depfast.Sched.run s;
  check_bool "handler cpu time included" true (!at > Sim.Time.ms 5)

let test_rpc_memory_accounting () =
  let s, rpc, a, b = rpc_pair () in
  Cluster.Rpc.serve rpc ~node:b ~handler:(fun ~src:_ req -> Some req);
  let baseline = Cluster.Memory.used (Cluster.Node.memory a) in
  Depfast.Sched.spawn s ~node:0 (fun () ->
      let call = Cluster.Rpc.call rpc ~src:a ~dst:1 ~bytes:4096 "x" in
      check_int "charged while in flight" (baseline + 4096)
        (Cluster.Memory.used (Cluster.Node.memory a));
      check_int "outstanding tracked" 4096 (Cluster.Rpc.outstanding_bytes rpc ~node:0);
      Depfast.Sched.wait s (Cluster.Rpc.event call);
      check_int "released on reply" baseline (Cluster.Memory.used (Cluster.Node.memory a)));
  Depfast.Sched.run s

let test_rpc_abandon_releases () =
  let s, rpc, a, b = rpc_pair () in
  (* no handler installed: the call would hang forever *)
  ignore b;
  let baseline = Cluster.Memory.used (Cluster.Node.memory a) in
  Depfast.Sched.spawn s ~node:0 (fun () ->
      let call = Cluster.Rpc.call rpc ~src:a ~dst:1 ~bytes:1024 "x" in
      match Depfast.Sched.wait_timeout s (Cluster.Rpc.event call) (Sim.Time.ms 100) with
      | Depfast.Sched.Timed_out ->
        Cluster.Rpc.abandon call;
        check_int "released on abandon" baseline (Cluster.Memory.used (Cluster.Node.memory a))
      | Depfast.Sched.Ready -> Alcotest.fail "unexpected reply");
  Depfast.Sched.run s

let test_rpc_broadcast_quorum_and_discard () =
  let s = make_sched () in
  let rpc : (string, string) Cluster.Rpc.t = Cluster.Rpc.create s () in
  let caller = Cluster.Node.create s ~id:9 ~name:"caller" () in
  Cluster.Rpc.attach rpc caller;
  let replicas =
    List.map
      (fun i ->
        let n = Cluster.Node.create s ~id:i ~name:(string_of_int i) () in
        let delay = if i = 2 then Sim.Time.sec 30 else Sim.Time.ms i in
        Cluster.Rpc.serve rpc ~node:n ~handler:(fun ~src:_ req ->
            Cluster.Node.cpu_work n delay;
            Some req);
        n)
      [ 0; 1; 2 ]
  in
  ignore replicas;
  let completed = ref false in
  Depfast.Sched.spawn s ~node:9 (fun () ->
      let q, calls =
        Cluster.Rpc.broadcast rpc ~src:caller ~dsts:[ 0; 1; 2 ] ~arity:Depfast.Event.Majority
          "hello"
      in
      Depfast.Sched.wait s q;
      completed := true;
      (* quorum met at ~1ms; the straggler's call must be abandoned *)
      check_bool "before straggler" true (Depfast.Sched.now s < Sim.Time.sec 1);
      let straggler = List.nth calls 2 in
      check_bool "straggler abandoned" true
        (Depfast.Event.is_abandoned (Cluster.Rpc.event straggler)));
  Depfast.Sched.run ~until:(Sim.Time.sec 40) s;
  check_bool "completed" true !completed

(* ------------------------------------------------------------------ *)
(* Faults (Table 1) *)

let measure_cpu_work_under fault =
  let s = make_sched () in
  let n = Cluster.Node.create s ~id:0 ~name:"victim" () in
  (match fault with None -> () | Some k -> ignore (Cluster.Fault.inject n k));
  let at = ref 0 in
  Depfast.Sched.spawn s ~node:0 (fun () ->
      Cluster.Node.cpu_work n (Sim.Time.ms 1);
      at := Depfast.Sched.now s);
  Depfast.Sched.run ~until:(Sim.Time.sec 2) s;
  !at

let test_fault_cpu_slow () =
  let healthy = measure_cpu_work_under None in
  let faulty = measure_cpu_work_under (Some Cluster.Fault.Cpu_slow) in
  check_int "baseline 1ms" (Sim.Time.ms 1) healthy;
  check_int "20x slower" (Sim.Time.ms 20) faulty

let test_fault_cpu_contention () =
  let faulty = measure_cpu_work_under (Some Cluster.Fault.Cpu_contention) in
  check_bool "queueing delay" true (faulty > Sim.Time.ms 2)

let test_fault_mem_contention_penalty () =
  let faulty = measure_cpu_work_under (Some Cluster.Fault.Mem_contention) in
  (* pressure 2.0 -> penalty 5x *)
  check_int "5x slower" (Sim.Time.ms 5) faulty

let test_fault_disk_slow () =
  let s = make_sched () in
  let n = Cluster.Node.create s ~id:0 ~name:"victim" () in
  ignore (Cluster.Fault.inject n Cluster.Fault.Disk_slow);
  let at = ref 0 in
  Depfast.Event.on_fire (Cluster.Disk.write (Cluster.Node.disk n) ~bytes:100_000) (fun () ->
      at := Depfast.Sched.now s);
  Depfast.Sched.run s;
  (* 100KB at 10MB/s = 10ms + base *)
  check_bool "throttled" true (!at > Sim.Time.ms 9)

let test_fault_net_slow () =
  let s = make_sched () in
  let n = Cluster.Node.create s ~id:0 ~name:"victim" () in
  ignore (Cluster.Fault.inject n Cluster.Fault.Net_slow);
  check_int "400ms nic" (Sim.Time.ms 400) (Cluster.Node.nic_delay n)

let test_fault_clear_restores () =
  let s = make_sched () in
  let n = Cluster.Node.create s ~id:0 ~name:"victim" () in
  let active = Cluster.Fault.inject n Cluster.Fault.Cpu_slow in
  Cluster.Fault.clear active;
  let at = ref 0 in
  Depfast.Sched.spawn s ~node:0 (fun () ->
      Cluster.Node.cpu_work n (Sim.Time.ms 1);
      at := Depfast.Sched.now s);
  Depfast.Sched.run s;
  check_int "restored" (Sim.Time.ms 1) !at

let test_fault_catalog_complete () =
  check_int "six fault kinds" 6 (List.length Cluster.Fault.all);
  List.iter
    (fun k ->
      check_bool "has name" true (String.length (Cluster.Fault.name k) > 0);
      check_bool "has paper injection" true (String.length (Cluster.Fault.paper_injection k) > 0);
      check_bool "has sim mapping" true (String.length (Cluster.Fault.sim_injection k) > 0))
    Cluster.Fault.all

let suite =
  [
    ( "cluster.station",
      [
        Alcotest.test_case "single-server FIFO" `Quick test_station_single_server_fifo;
        Alcotest.test_case "parallel servers" `Quick test_station_parallel_servers;
        Alcotest.test_case "speed factor" `Quick test_station_speed_factor;
        Alcotest.test_case "utilization" `Quick test_station_utilization;
        Alcotest.test_case "queue length" `Quick test_station_queue_length;
      ] );
    ( "cluster.memory",
      [
        Alcotest.test_case "pressure and penalty" `Quick test_memory_pressure_and_penalty;
        Alcotest.test_case "oom fires once" `Quick test_memory_oom_fires_once;
      ] );
    ( "cluster.disk",
      [
        Alcotest.test_case "write cost" `Quick test_disk_write_cost;
        Alcotest.test_case "bandwidth throttle" `Quick test_disk_bandwidth_throttle;
        Alcotest.test_case "fsync after write" `Quick test_disk_fsync_after_write;
      ] );
    ( "cluster.net",
      [
        Alcotest.test_case "delivery + FIFO links" `Quick test_net_delivery_and_fifo;
        Alcotest.test_case "partition" `Quick test_net_partition_drops;
        Alcotest.test_case "dead node" `Quick test_net_dead_node_drops;
        Alcotest.test_case "nic delay (tc)" `Quick test_net_nic_delay;
        Alcotest.test_case "pooled FIFO burst + stats" `Quick test_net_fifo_pooled_burst;
        Alcotest.test_case "partition/heal mid-flight" `Quick
          test_net_partition_heal_mid_flight;
        Alcotest.test_case "nodes cached sorted" `Quick test_net_nodes_cached_sorted;
      ] );
    ( "cluster.rpc",
      [
        Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
        Alcotest.test_case "handler waits" `Quick test_rpc_handler_can_wait;
        Alcotest.test_case "memory accounting" `Quick test_rpc_memory_accounting;
        Alcotest.test_case "abandon releases" `Quick test_rpc_abandon_releases;
        Alcotest.test_case "broadcast quorum + discard" `Quick test_rpc_broadcast_quorum_and_discard;
      ] );
    ( "cluster.fault",
      [
        Alcotest.test_case "cpu slow" `Quick test_fault_cpu_slow;
        Alcotest.test_case "cpu contention" `Quick test_fault_cpu_contention;
        Alcotest.test_case "memory contention" `Quick test_fault_mem_contention_penalty;
        Alcotest.test_case "disk slow" `Quick test_fault_disk_slow;
        Alcotest.test_case "net slow" `Quick test_fault_net_slow;
        Alcotest.test_case "clear restores" `Quick test_fault_clear_restores;
        Alcotest.test_case "catalog complete" `Quick test_fault_catalog_complete;
      ] );
  ]
