(* Tests for the §5 extensions: the fail-slow detector + mitigation, and
   the sharded store with 2PC transactions. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* KV transactional commands (the state-machine layer of 2PC) *)

let entry i cmd : Raft.Types.entry = { term = 1; index = i; cmd; client_id = 77; seq = i }

let test_kv_prepare_commit () =
  let kv = Raft.Kv.create () in
  let r1 =
    Raft.Kv.apply kv (entry 1 (Raft.Types.Tx_prepare { txid = 1; writes = [ ("a", "1"); ("b", "2") ] }))
  in
  Alcotest.(check (option string)) "prepared" (Some "ok") r1;
  Alcotest.(check (option int)) "a locked" (Some 1) (Raft.Kv.locked kv "a");
  check_bool "not yet visible" true (Raft.Kv.get kv "a" = None);
  ignore (Raft.Kv.apply kv (entry 2 (Raft.Types.Tx_commit { txid = 1 })));
  Alcotest.(check (option string)) "a visible" (Some "1") (Raft.Kv.get kv "a");
  Alcotest.(check (option string)) "b visible" (Some "2") (Raft.Kv.get kv "b");
  Alcotest.(check (option int)) "unlocked" None (Raft.Kv.locked kv "a");
  check_int "nothing staged" 0 (Raft.Kv.staged_count kv)

let test_kv_prepare_conflict () =
  let kv = Raft.Kv.create () in
  ignore (Raft.Kv.apply kv (entry 1 (Raft.Types.Tx_prepare { txid = 1; writes = [ ("a", "1") ] })));
  let r =
    Raft.Kv.apply kv (entry 2 (Raft.Types.Tx_prepare { txid = 2; writes = [ ("a", "9"); ("c", "3") ] }))
  in
  Alcotest.(check (option string)) "conflict" (Some "conflict") r;
  Alcotest.(check (option int)) "lock held by 1" (Some 1) (Raft.Kv.locked kv "a");
  (* abort releases *)
  ignore (Raft.Kv.apply kv (entry 3 (Raft.Types.Tx_abort { txid = 1 })));
  Alcotest.(check (option int)) "released" None (Raft.Kv.locked kv "a");
  check_bool "no write happened" true (Raft.Kv.get kv "a" = None)

let test_kv_prepare_retry_idempotent () =
  let kv = Raft.Kv.create () in
  ignore (Raft.Kv.apply kv (entry 1 (Raft.Types.Tx_prepare { txid = 5; writes = [ ("k", "v") ] })));
  (* a duplicate retry (same client seq) re-answers without re-locking *)
  let r = Raft.Kv.apply kv (entry 1 (Raft.Types.Tx_prepare { txid = 5; writes = [ ("k", "v") ] })) in
  Alcotest.(check (option string)) "replay says ok" (Some "ok") r;
  check_int "staged once" 1 (Raft.Kv.staged_count kv)

(* ------------------------------------------------------------------ *)
(* Sharded store + 2PC *)

let make_store ?(seed = 3L) () =
  let engine = Sim.Engine.create ~seed () in
  let sched = Depfast.Sched.create engine in
  let store = Raft.Sharded.create sched ~shards:3 ~replicas:3 () in
  Raft.Sharded.bootstrap store;
  (sched, store)

let in_session sched store ~id body =
  let s = Raft.Sharded.session store ~id in
  let finished = ref false in
  Cluster.Node.spawn (Raft.Sharded.session_node s) ~name:"txn-test" (fun () ->
      body s;
      finished := true);
  Depfast.Sched.run ~until:(Sim.Time.add (Depfast.Sched.now sched) (Sim.Time.sec 30)) sched;
  check_bool "session finished" true !finished

let test_txn_cross_shard_commit () =
  let sched, store = make_store () in
  in_session sched store ~id:1 (fun s ->
      let writes = [ ("alpha", "1"); ("beta", "2"); ("gamma", "3") ] in
      check_bool "spans shards" true
        (List.length (List.sort_uniq compare (List.map (fun (k, _) -> Raft.Sharded.shard_of store k) writes)) > 1);
      (match Raft.Sharded.txn s ~writes with
      | Raft.Sharded.Committed -> ()
      | _ -> Alcotest.fail "txn failed");
      List.iter
        (fun (k, v) ->
          match Raft.Sharded.read s ~key:k with
          | Some (Some got) -> Alcotest.(check string) k v got
          | _ -> Alcotest.fail ("read failed for " ^ k))
        writes)

let test_txn_single_shard_fast_path () =
  let sched, store = make_store () in
  in_session sched store ~id:2 (fun s ->
      match Raft.Sharded.txn s ~writes:[ ("solo-key", "x") ] with
      | Raft.Sharded.Committed -> (
        match Raft.Sharded.read s ~key:"solo-key" with
        | Some (Some "x") -> ()
        | _ -> Alcotest.fail "read after single-shard txn")
      | _ -> Alcotest.fail "single-shard txn failed")

let test_txn_conflict_aborts_one () =
  let sched, store = make_store () in
  let s1 = Raft.Sharded.session store ~id:3 in
  let s2 = Raft.Sharded.session store ~id:4 in
  let results = ref [] in
  let racer s tag =
    Cluster.Node.spawn (Raft.Sharded.session_node s) ~name:tag (fun () ->
        let r = Raft.Sharded.txn s ~writes:[ ("hot-a", tag); ("hot-b", tag) ] in
        results := r :: !results)
  in
  racer s1 "one";
  racer s2 "two";
  Depfast.Sched.run ~until:(Sim.Time.add (Depfast.Sched.now sched) (Sim.Time.sec 30)) sched;
  check_int "both resolved" 2 (List.length !results);
  let committed = List.filter (fun r -> r = Raft.Sharded.Committed) !results in
  (* at least one commits; they cannot both have written interleaved halves *)
  check_bool "at least one committed" true (List.length committed >= 1);
  (* atomicity: both keys must carry the same writer's tag *)
  in_session sched store ~id:5 (fun s ->
      match (Raft.Sharded.read s ~key:"hot-a", Raft.Sharded.read s ~key:"hot-b") with
      | Some (Some a), Some (Some b) -> Alcotest.(check string) "atomic" a b
      | _ -> Alcotest.fail "reads failed")

let test_txn_no_leaked_locks () =
  let sched, store = make_store () in
  in_session sched store ~id:6 (fun s ->
      ignore (Raft.Sharded.txn s ~writes:[ ("l1", "x"); ("l2", "y") ]);
      ignore (Raft.Sharded.txn s ~writes:[ ("l1", "z") ]);
      (* all groups eventually hold zero staged transactions *)
      Depfast.Sched.sleep (Cluster.Node.sched (Raft.Sharded.session_node s)) (Sim.Time.sec 2);
      List.iter
        (fun g ->
          List.iter
            (fun srv -> check_int "no staged tx" 0 (Raft.Kv.staged_count (Raft.Server.kv srv)))
            g.Raft.Group.servers)
        (Raft.Sharded.groups store))

let test_txn_tolerates_fail_slow_follower () =
  let sched, store = make_store () in
  (* slow a follower in every shard: 2PC latency must stay low *)
  List.iter
    (fun g ->
      ignore (Cluster.Fault.inject (List.nth g.Raft.Group.nodes 1) Cluster.Fault.Cpu_slow))
    (Raft.Sharded.groups store);
  in_session sched store ~id:7 (fun s ->
      let t0 = Depfast.Sched.now (Cluster.Node.sched (Raft.Sharded.session_node s)) in
      (match Raft.Sharded.txn s ~writes:[ ("fa", "1"); ("fb", "2"); ("fc", "3") ] with
      | Raft.Sharded.Committed -> ()
      | _ -> Alcotest.fail "txn under fault");
      let elapsed =
        Sim.Time.diff (Depfast.Sched.now (Cluster.Node.sched (Raft.Sharded.session_node s))) t0
      in
      check_bool "fast despite slow followers" true (elapsed < Sim.Time.ms 200))

(* ------------------------------------------------------------------ *)
(* Detector + mitigation *)

let test_detector_ignores_healthy_leader () =
  let engine = Sim.Engine.create ~seed:11L () in
  let sched = Depfast.Sched.create engine in
  let g = Raft.Group.create sched ~n:3 () in
  Depfast.Sched.spawn sched ~name:"bootstrap" (fun () -> Raft.Group.elect g 0);
  Depfast.Sched.run ~until:(Sim.Time.sec 1) sched;
  let d = Raft.Detector.attach (Raft.Group.server g 0) () in
  let clients = Raft.Group.make_clients g ~count:8 () in
  List.iter
    (fun c ->
      Cluster.Node.spawn (Raft.Client.node c) ~name:"load" (fun () ->
          for i = 1 to 200 do
            ignore (Raft.Client.put c ~key:(string_of_int (i mod 10)) ~value:"v")
          done))
    clients;
  Depfast.Sched.run ~until:(Sim.Time.sec 10) sched;
  check_int "no mitigation" 0 (Raft.Detector.mitigations d);
  check_bool "leader kept" true (Raft.Server.is_leader (Raft.Group.server g 0));
  check_bool "baseline learned" true (Raft.Detector.baseline d > 0.0)

let test_detector_mitigates_fail_slow_leader () =
  let engine = Sim.Engine.create ~seed:11L () in
  let sched = Depfast.Sched.create engine in
  let g = Raft.Group.create sched ~n:3 () in
  Depfast.Sched.spawn sched ~name:"bootstrap" (fun () -> Raft.Group.elect g 0);
  Depfast.Sched.run ~until:(Sim.Time.sec 1) sched;
  let detectors = List.map (fun s -> Raft.Detector.attach s ()) g.Raft.Group.servers in
  let clients = Raft.Group.make_clients g ~count:16 () in
  List.iter
    (fun c ->
      Cluster.Node.spawn (Raft.Client.node c) ~name:"load" (fun () ->
          let rec go i =
            if Depfast.Sched.now sched < Sim.Time.sec 18 then begin
              ignore (Raft.Client.put c ~key:(string_of_int (i mod 10)) ~value:"v");
              go (i + 1)
            end
          in
          go 0))
    clients;
  Depfast.Sched.run ~until:(Sim.Time.sec 4) sched;
  ignore (Cluster.Fault.inject (Raft.Server.node (Raft.Group.server g 0)) Cluster.Fault.Cpu_slow);
  Depfast.Sched.run ~until:(Sim.Time.sec 20) sched;
  let total = List.fold_left (fun a d -> a + Raft.Detector.mitigations d) 0 detectors in
  check_bool "mitigated" true (total >= 1);
  (match Raft.Group.leader g with
  | Some s -> check_bool "leadership moved off the slow node" true (Raft.Server.id s <> 0)
  | None -> Alcotest.fail "no leader after mitigation");
  check_bool "old leader is follower now" false
    (Raft.Server.is_leader (Raft.Group.server g 0))

(* ------------------------------------------------------------------ *)
(* Spg.audit ~allow: the Figure-2 exemption — a client waits on the one
   leader it is talking to, which the audit flags unless the waiter is
   explicitly allowed *)

let test_audit_allow_exempts_client () =
  let engine = Sim.Engine.create ~seed:11L () in
  let trace = Depfast.Trace.create () in
  let sched = Depfast.Sched.create ~trace engine in
  let client_node = 9 and leader = 0 in
  Depfast.Trace.enable trace;
  Depfast.Sched.spawn sched ~node:client_node ~name:"client" (fun () ->
      let reply = Depfast.Event.rpc_completion ~label:"client->leader" ~peer:leader () in
      ignore
        (Sim.Engine.schedule engine ~delay:(Sim.Time.ms 2) (fun () ->
             Depfast.Event.fire reply));
      (* depfast-lint: allow red-wait unbounded-wait — the wait under test *)
      Depfast.Sched.wait sched reply);
  Depfast.Sched.run ~until:(Sim.Time.ms 10) sched;
  (match Depfast.Spg.audit trace with
  | [ v ] ->
    check_int "stalling peer is the leader" leader v.Depfast.Spg.v_peer;
    check_int "waiter is the client" client_node v.Depfast.Spg.v_wait.Depfast.Trace.node
  | vs -> Alcotest.failf "expected one violation without ~allow, got %d" (List.length vs));
  check_bool "not tolerant without the exemption" false
    (Depfast.Spg.is_fail_slow_tolerant trace);
  let allow ~node = node = client_node in
  check_int "client exempted" 0 (List.length (Depfast.Spg.audit ~allow trace));
  check_bool "tolerant under the Figure-2 exemption" true
    (Depfast.Spg.is_fail_slow_tolerant ~allow trace)

let test_audit_allow_is_per_waiter () =
  (* the exemption is keyed on the waiter: allowing some other node must
     not silence the client's red wait *)
  let engine = Sim.Engine.create ~seed:12L () in
  let trace = Depfast.Trace.create () in
  let sched = Depfast.Sched.create ~trace engine in
  Depfast.Trace.enable trace;
  Depfast.Sched.spawn sched ~node:9 ~name:"client" (fun () ->
      let reply = Depfast.Event.rpc_completion ~peer:0 () in
      ignore
        (Sim.Engine.schedule engine ~delay:(Sim.Time.ms 2) (fun () ->
             Depfast.Event.fire reply));
      (* depfast-lint: allow red-wait unbounded-wait — the wait under test *)
      Depfast.Sched.wait sched reply);
  Depfast.Sched.run ~until:(Sim.Time.ms 10) sched;
  check_int "allowing a different node changes nothing" 1
    (List.length (Depfast.Spg.audit ~allow:(fun ~node -> node = 3) trace))

let suite =
  [
    ( "kv.transactions",
      [
        Alcotest.test_case "prepare/commit" `Quick test_kv_prepare_commit;
        Alcotest.test_case "prepare conflict" `Quick test_kv_prepare_conflict;
        Alcotest.test_case "retry idempotent" `Quick test_kv_prepare_retry_idempotent;
      ] );
    ( "sharded.2pc",
      [
        Alcotest.test_case "cross-shard commit" `Quick test_txn_cross_shard_commit;
        Alcotest.test_case "single-shard fast path" `Quick test_txn_single_shard_fast_path;
        Alcotest.test_case "conflict atomicity" `Quick test_txn_conflict_aborts_one;
        Alcotest.test_case "no leaked locks" `Quick test_txn_no_leaked_locks;
        Alcotest.test_case "tolerates fail-slow followers" `Quick
          test_txn_tolerates_fail_slow_follower;
      ] );
    ( "detector",
      [
        Alcotest.test_case "healthy leader untouched" `Quick test_detector_ignores_healthy_leader;
        Alcotest.test_case "fail-slow leader mitigated" `Slow
          test_detector_mitigates_fail_slow_leader;
      ] );
    ( "spg.allow",
      [
        Alcotest.test_case "client exemption (Figure 2)" `Quick test_audit_allow_exempts_client;
        Alcotest.test_case "exemption is per waiter" `Quick test_audit_allow_is_per_waiter;
      ] );
  ]
