(* Tests for the schedule-space checker: chooser plumbing, DPOR
   persistent sets, the sanitizer, net choice mode, exploration results,
   and the static-certificate cross-check. The key contract under test:
   the deliberately-broken fixture is invisible to a single
   (program-order) run and caught only by exploration. *)

module E = Check.Explore
module F = Analysis.Finding

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let budget ?(schedules = 500) () =
  { E.default_budget with E.max_schedules = schedules }

let scenario name =
  match Check.Registry.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s not registered" name

let has_rule rule fs = List.exists (fun f -> f.F.rule = rule) fs

(* ------------------------------------------------------------------ *)
(* engine chooser: the decision index selects among enabled transitions *)

let order_with pick =
  let engine = Sim.Engine.create () in
  let sched = Depfast.Sched.create engine in
  let order = ref [] in
  Sim.Engine.set_chooser engine pick;
  for i = 1 to 2 do
    Depfast.Sched.spawn sched ~node:i
      ~name:(Printf.sprintf "w%d" i)
      (fun () -> order := i :: !order)
  done;
  Depfast.Sched.run sched;
  List.rev !order

let test_chooser_controls_order () =
  Alcotest.(check (list int)) "default order" [ 1; 2 ] (order_with (fun _ -> 0));
  Alcotest.(check (list int)) "alternative decision flips it" [ 2; 1 ]
    (order_with (fun tags -> Array.length tags - 1))

(* ------------------------------------------------------------------ *)
(* persistent sets: conflict closure over node footprints *)

let test_persistent_set_independence () =
  let tags = [| Sim.Engine.On_node 0; Sim.Engine.On_node 1; Sim.Engine.On_node 0 |] in
  let inset = E.persistent_set tags 0 in
  check_bool "chosen transition in its own set" true inset.(0);
  check_bool "other-node transition pruned" false inset.(1);
  check_bool "same-node transition conflicts" true inset.(2)

let test_persistent_set_anon_conflicts_all () =
  (* unknown provenance must be treated as conflicting with everything *)
  let tags = [| Sim.Engine.Anon; Sim.Engine.On_node 1; Sim.Engine.Link (0, 2) |] in
  let inset = E.persistent_set tags 0 in
  check_bool "anon closure swallows the enabled set" true
    (inset.(0) && inset.(1) && inset.(2))

let test_link_footprint_is_destination () =
  check_bool "links to distinct nodes are independent" false
    (E.conflicts (Sim.Engine.Link (0, 1)) (Sim.Engine.Link (0, 2)));
  check_bool "links into one node conflict" true
    (E.conflicts (Sim.Engine.Link (0, 1)) (Sim.Engine.Link (2, 1)));
  check_bool "delivery conflicts with its target's coroutines" true
    (E.conflicts (Sim.Engine.Link (0, 1)) (Sim.Engine.On_node 1))

(* ------------------------------------------------------------------ *)
(* sanitizer: a coroutine parked when the engine has drained is a hang *)

let test_sanitizer_parked_at_quiescence () =
  let engine = Sim.Engine.create () in
  let sched = Depfast.Sched.create engine in
  let san = Check.Sanitizer.create sched in
  Depfast.Sched.spawn sched ~name:"stuck" (fun () ->
      Depfast.Sched.wait sched (Depfast.Event.signal ~label:"never-fired" ()));
  Depfast.Sched.run sched;
  check_int "one coroutine parked" 1 (Check.Sanitizer.parked_count san);
  Check.Sanitizer.check_quiescent san;
  let vs = Check.Sanitizer.violations san in
  check_bool "hang detected" true
    (List.exists (fun v -> v.Check.Sanitizer.rule = F.parked_at_quiescence) vs);
  match List.find_opt (fun v -> v.Check.Sanitizer.rule = F.parked_at_quiescence) vs with
  | Some v -> Alcotest.(check string) "attributed" "stuck" v.Check.Sanitizer.coroutine
  | None -> ()

let test_sanitizer_clean_run_is_silent () =
  let engine = Sim.Engine.create () in
  let sched = Depfast.Sched.create engine in
  let san = Check.Sanitizer.create sched in
  let ev = Depfast.Event.signal () in
  Depfast.Sched.spawn sched ~name:"waiter" (fun () -> Depfast.Sched.wait sched ev);
  Depfast.Sched.spawn sched ~name:"firer" (fun () -> Depfast.Event.fire ev);
  Depfast.Sched.run sched;
  Check.Sanitizer.check_quiescent san;
  check_int "no violations" 0 (List.length (Check.Sanitizer.violations san))

(* ------------------------------------------------------------------ *)
(* net choice mode: immediate tagged deliveries, FIFO preserved *)

let test_net_choice_mode_fifo () =
  let engine = Sim.Engine.create () in
  let sched = Depfast.Sched.create engine in
  let net = Cluster.Net.create sched ~latency:(Sim.Dist.Constant 50.0) () in
  let a = Cluster.Node.create sched ~id:0 ~name:"a" () in
  let b = Cluster.Node.create sched ~id:1 ~name:"b" () in
  let got = ref [] in
  Cluster.Net.register net a ~handler:(fun ~src:_ _ -> ());
  Cluster.Net.register net b ~handler:(fun ~src:_ m -> got := m :: !got);
  Cluster.Net.set_choice_mode net true;
  let fifo_bad = ref 0 in
  Cluster.Net.set_sanitizer net (fun _ -> incr fifo_bad);
  for i = 1 to 10 do
    Cluster.Net.send net ~src:0 ~dst:1 i
  done;
  Depfast.Sched.run sched;
  Alcotest.(check (list int)) "all delivered, per-link FIFO"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !got);
  check_int "no fifo violations" 0 !fifo_bad;
  check_int "no virtual latency in choice mode" 0 (Sim.Engine.now engine)

(* ------------------------------------------------------------------ *)
(* exploration: clean scenarios enumerate without findings *)

let test_quorum_majority_exhausts_clean () =
  let res = E.explore ~budget:(budget ~schedules:2500 ()) (scenario "quorum-majority") in
  check_bool "frontier exhausted" true res.E.complete;
  check_bool "hundreds of interleavings" true (res.E.schedules > 100);
  check_int "no findings" 0 (List.length res.E.findings)

let test_dpor_prunes_raft () =
  let res = E.explore ~budget:(budget ~schedules:60 ()) (scenario "raft-elect-3") in
  check_bool "independent alternatives pruned" true (res.E.pruned > 0);
  check_int "safety holds on every explored schedule" 0 (List.length res.E.findings)

let test_slow_disk_admission_bounded () =
  (* ISSUE 7 satellite: a slow leader disk under offered load must not
     grow the admission queue past its certified bound — the gauge
     sampled at every choice point would report queue_gauge_overflow. *)
  let res =
    E.explore ~budget:(budget ~schedules:60 ()) (scenario "raft-slow-disk-admission-3")
  in
  check_bool "schedules explored" true (res.E.schedules > 0);
  check_int "gauge bounded, safety holds, no sheds lost" 0
    (List.length res.E.findings)

let test_explore_is_deterministic () =
  let sc = scenario "broken-quorum" in
  let show r = List.map F.to_string r.E.findings in
  let r1 = E.explore ~budget:(budget ~schedules:300 ()) sc in
  let r2 = E.explore ~budget:(budget ~schedules:300 ()) sc in
  check_int "same schedule count" r1.E.schedules r2.E.schedules;
  Alcotest.(check (list string)) "same findings, same order" (show r1) (show r2)

(* ------------------------------------------------------------------ *)
(* the broken fixture: clean on the program-order schedule, caught by
   exploration — the whole reason the explorer exists *)

let test_broken_fixture_needs_exploration () =
  let sc = scenario "broken-quorum" in
  let r0 = E.run_one sc ~prefix:[||] ~budget:(budget ()) in
  check_bool "program-order run quiesces" true r0.E.r_quiescent;
  check_int "program-order run sees nothing" 0 (List.length r0.E.r_violations);
  let res = E.explore ~budget:(budget ~schedules:1000 ()) sc in
  check_bool "exploration finds the hang" true
    (has_rule F.unsatisfiable_wait res.E.findings);
  check_bool "and the degenerate rewiring" true
    (has_rule F.dynamic_red_wait res.E.findings)

let test_certificate_mismatch_on_broken_fixture () =
  (* the fixture's waits are quorum-shaped, so the static passes (and
     hence the certificate) hold the file clean; dynamic evidence to the
     contrary must surface as certificate-mismatch *)
  let certs = Check.Certificate.of_findings ~files:[ "lib/check/fixtures.ml" ] [] in
  check_bool "fixture certified clean" true
    (Check.Certificate.clean certs "lib/check/fixtures.ml");
  let res =
    E.explore ~budget:(budget ~schedules:1000 ()) ~certs (scenario "broken-quorum")
  in
  check_bool "static certificate contradicted" true
    (has_rule F.certificate_mismatch res.E.findings)

let test_flagged_file_is_not_clean () =
  let finding =
    F.v ~rule:F.red_wait ~severity:F.Error
      ~loc:(F.File { file = "lib/raft/client.ml"; line = 3 })
      "bare wait"
  in
  let certs = Check.Certificate.of_findings ~files:[ "lib/raft/client.ml" ] [ finding ] in
  check_bool "covered" true (Check.Certificate.covered certs "lib/raft/client.ml");
  check_bool "not clean" false (Check.Certificate.clean certs "lib/raft/client.ml");
  check_bool "uncovered file is not clean either" false
    (Check.Certificate.clean certs "lib/raft/server.ml")

(* ------------------------------------------------------------------ *)
(* multicore: the work-stealing parallel explorer must report exactly
   what the serial explorer reports — same schedule and prune totals,
   same findings in the same order — at every domain count, certificates
   included (ISSUE 9 tentpole contract) *)

let tree_certs =
  lazy
    (match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
    | None -> None (* sources not materialized in this sandbox *)
    | Some root -> Some (Check.Certificate.build ~roots:[ root ] ()))

let check_parallel_matches_serial ?(schedules = 300) name () =
  let sc = scenario name in
  let certs = Lazy.force tree_certs in
  let b = budget ~schedules () in
  let serial = E.explore ~budget:b ?certs sc in
  let show r = List.map F.to_string r.E.findings in
  List.iter
    (fun jobs ->
      let par = E.explore ~budget:b ?certs ~jobs sc in
      check_int (Printf.sprintf "%s jobs=%d: schedule count" name jobs)
        serial.E.schedules par.E.schedules;
      (* under a budget cap the two traversals claim different subsets of
         the frontier, so the prune tally is only pinned when the tree
         was exhausted — the schedule total and findings are pinned
         either way *)
      if serial.E.complete then
        check_int (Printf.sprintf "%s jobs=%d: pruned count" name jobs) serial.E.pruned
          par.E.pruned;
      check_bool (Printf.sprintf "%s jobs=%d: completeness" name jobs) serial.E.complete
        par.E.complete;
      Alcotest.(check (list string))
        (Printf.sprintf "%s jobs=%d: findings" name jobs)
        (show serial) (show par))
    [ 1; 2; 4 ]

let test_par_serial_broken_quorum = check_parallel_matches_serial "broken-quorum"

let test_par_serial_domains_disjoint =
  (* par_safe = false in the registry: every jobs value must be forced
     back to one domain and still agree with the serial run *)
  check_parallel_matches_serial "domains-disjoint"

let test_par_serial_slow_disk =
  check_parallel_matches_serial ~schedules:60 "raft-slow-disk-admission-3"

(* ------------------------------------------------------------------ *)
(* satellite: report order must not depend on source discovery order *)

let test_report_order_shuffle_invariant () =
  let left =
    {|let log_mu = Depfast.Mutex.create ()
let flush sched = Depfast.Mutex.with_lock sched log_mu (fun () -> Right.sync sched)
|}
  in
  let right =
    {|let snap_mu = Depfast.Mutex.create ()
let sync sched = Depfast.Mutex.with_lock sched snap_mu (fun () -> Left.flush sched)
|}
  in
  let show fs = List.map F.to_string fs in
  let fs1 = Analysis.Interproc.analyze_sources [ ("left.ml", left); ("right.ml", right) ] in
  let fs2 = Analysis.Interproc.analyze_sources [ ("right.ml", right); ("left.ml", left) ] in
  check_bool "fixture produces findings" true (fs1 <> []);
  Alcotest.(check (list string)) "same report either way" (show fs1) (show fs2)

let test_by_location_total_order () =
  let f ~file ~line ~rule ~sev msg = F.v ~rule ~severity:sev ~loc:(F.File { file; line }) msg in
  let fs =
    [
      f ~file:"b.ml" ~line:1 ~rule:"red-wait" ~sev:F.Error "m";
      f ~file:"a.ml" ~line:9 ~rule:"red-wait" ~sev:F.Error "m";
      f ~file:"a.ml" ~line:2 ~rule:"unbounded-wait" ~sev:F.Warning "m";
      f ~file:"a.ml" ~line:2 ~rule:"red-wait" ~sev:F.Error "m";
    ]
  in
  let sorted l = List.map F.to_string (List.sort F.by_location l) in
  Alcotest.(check (list string)) "sort is permutation-invariant" (sorted fs)
    (sorted (List.rev fs));
  match List.sort F.by_location fs with
  | a :: b :: _ ->
    check_bool "file then line then rule" true
      (F.loc_string a.F.loc = "a.ml:2" && a.F.rule = "red-wait"
      && F.loc_string b.F.loc = "a.ml:2" && b.F.rule = "unbounded-wait")
  | _ -> Alcotest.fail "unreachable"

let suite =
  [
    ( "check.explore",
      [
        Alcotest.test_case "chooser controls order" `Quick test_chooser_controls_order;
        Alcotest.test_case "persistent set independence" `Quick
          test_persistent_set_independence;
        Alcotest.test_case "anon conflicts with all" `Quick
          test_persistent_set_anon_conflicts_all;
        Alcotest.test_case "link footprint" `Quick test_link_footprint_is_destination;
        Alcotest.test_case "quorum-majority exhausts clean" `Quick
          test_quorum_majority_exhausts_clean;
        Alcotest.test_case "DPOR prunes raft" `Quick test_dpor_prunes_raft;
        Alcotest.test_case "slow-disk admission stays bounded" `Quick
          test_slow_disk_admission_bounded;
        Alcotest.test_case "deterministic results" `Quick test_explore_is_deterministic;
        Alcotest.test_case "broken fixture needs exploration" `Quick
          test_broken_fixture_needs_exploration;
      ] );
    ( "check.sanitizer",
      [
        Alcotest.test_case "parked at quiescence" `Quick
          test_sanitizer_parked_at_quiescence;
        Alcotest.test_case "clean run silent" `Quick test_sanitizer_clean_run_is_silent;
        Alcotest.test_case "net choice mode FIFO" `Quick test_net_choice_mode_fifo;
      ] );
    ( "check.certificate",
      [
        Alcotest.test_case "mismatch on broken fixture" `Quick
          test_certificate_mismatch_on_broken_fixture;
        Alcotest.test_case "flagged file not clean" `Quick test_flagged_file_is_not_clean;
      ] );
    ( "check.multicore",
      [
        Alcotest.test_case "parallel == serial: broken-quorum" `Quick
          test_par_serial_broken_quorum;
        Alcotest.test_case "parallel == serial: domains-disjoint" `Quick
          test_par_serial_domains_disjoint;
        Alcotest.test_case "parallel == serial: slow-disk admission" `Quick
          test_par_serial_slow_disk;
      ] );
    ( "check.ordering",
      [
        Alcotest.test_case "shuffle-invariant reports" `Quick
          test_report_order_shuffle_invariant;
        Alcotest.test_case "by_location total order" `Quick test_by_location_total_order;
      ] );
  ]
