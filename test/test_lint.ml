(* Self-tests for the static fail-slow lint: tokenizer, source rules
   (positive and negative for each), pragma allowlisting, and the
   trace-free DAG checker. Fixture files live under test/fixtures/ and
   are scanned but never compiled. *)

module F = Analysis.Finding
module L = Analysis.Lexer
module SL = Analysis.Source_lint
module DL = Analysis.Dag_lint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_rules = Alcotest.(check (list string))

let rules fs = List.sort_uniq compare (List.map (fun f -> f.F.rule) fs)
let unallowed_rules fs = rules (F.unallowed fs)

let fixture name =
  let cands = [ Filename.concat "fixtures" name; Filename.concat "test/fixtures" name ] in
  match List.find_opt Sys.file_exists cands with
  | Some p -> p
  | None -> Alcotest.fail ("fixture not found: " ^ name)

(* ------------------------------------------------------------------ *)
(* lexer *)

let test_lexer_positions () =
  let r = L.scan "let x = 1\nlet y = f x\n" in
  let tok i = r.L.tokens.(i) in
  check_int "tokens" 9 (Array.length r.L.tokens);
  check_bool "first is let at origin" true
    ((tok 0).L.text = "let" && (tok 0).L.line = 1 && (tok 0).L.col = 0);
  check_bool "second line tracked" true ((tok 4).L.text = "let" && (tok 4).L.line = 2)

let test_lexer_skips_noise () =
  let r = L.scan "(* comment (* nested *) more *) \"a string (\" f {|quoted )|} 'c' g" in
  let texts = Array.to_list (Array.map (fun (t : L.token) -> t.L.text) r.L.tokens) in
  check_rules "only code survives" [ "f"; "g" ] texts

let test_lexer_pragma () =
  let r = L.scan "let a = 1\n(* depfast-lint: allow red-wait lock-across-wait — prose *)\nlet b = 2\n" in
  match r.L.pragmas with
  | [ p ] ->
    check_int "pragma line" 2 p.L.p_line;
    check_bool "rules captured" true
      (List.mem "red-wait" p.L.p_rules && List.mem "lock-across-wait" p.L.p_rules)
  | ps -> Alcotest.failf "expected one pragma, got %d" (List.length ps)

(* ------------------------------------------------------------------ *)
(* source lint: red / unbounded waits *)

let test_red_wait_positive () =
  let fs =
    SL.lint_string
      {|let f sched =
  let ev = Depfast.Event.rpc_completion ~peer:3 () in
  Depfast.Sched.wait sched ev
|}
  in
  check_rules "naked rpc wait is red and unbounded" [ "red-wait"; "unbounded-wait" ]
    (unallowed_rules fs)

let test_red_wait_direct_call () =
  let fs =
    SL.lint_string
      {|let f sched call = Depfast.Sched.wait sched (Cluster.Rpc.event call)
|}
  in
  check_rules "direct Rpc.event wait" [ "red-wait"; "unbounded-wait" ] (unallowed_rules fs)

let test_red_wait_negative_quorum () =
  let fs =
    SL.lint_string
      {|let f sched =
  let q = Depfast.Event.quorum Depfast.Event.Majority in
  Depfast.Sched.wait sched q
|}
  in
  check_rules "quorum wait is green" [] (rules fs)

let test_disk_wait_is_warning () =
  let fs =
    SL.lint_string
      {|let f sched d = Depfast.Sched.wait sched (Cluster.Disk.read d ~bytes:4096)
|}
  in
  check_rules "blocking disk read" [ "red-wait" ] (rules fs);
  match fs with
  | [ f ] -> check_bool "warning severity" true (f.F.severity = F.Warning)
  | _ -> Alcotest.fail "expected exactly one finding"

let test_unbounded_negative_timeout () =
  let fs =
    SL.lint_string
      {|let f sched call span =
  ignore (Depfast.Sched.wait_timeout sched (Cluster.Rpc.event call) span)
|}
  in
  check_rules "timed wait is still red but bounded" [ "red-wait" ] (rules fs)

let test_shadowing_clears_fact () =
  let fs =
    SL.lint_string
      {|let f sched =
  let ev = Depfast.Event.rpc_completion ~peer:1 () in
  let ev = Depfast.Event.signal () in
  Depfast.Sched.wait sched ev
|}
  in
  check_rules "rebinding to a local event clears the remote fact" [] (rules fs)

let test_producer_propagation () =
  let fs =
    SL.lint_string
      {|let replica sched ~peer =
  let reply = Depfast.Event.rpc_completion ~peer () in
  ignore sched;
  reply

let f sched ~peer = Depfast.Sched.wait sched (replica sched ~peer)
|}
  in
  check_rules "wait on a local producer function"
    [ "red-wait"; "unbounded-wait" ] (unallowed_rules fs)

let test_tuple_binding_tracked () =
  (* regression: [let ev, meta = ...] used to launder the completion *)
  let fs =
    SL.lint_string
      {|let f sched ~peer =
  let ack, _meta = (Depfast.Event.rpc_completion ~peer (), peer) in
  Depfast.Sched.wait sched ack
|}
  in
  check_rules "tuple literal binding tracked" [ "red-wait"; "unbounded-wait" ]
    (unallowed_rules fs)

let test_tuple_binding_other_component () =
  let fs =
    SL.lint_string
      {|let f sched ~peer =
  let _meta, ack = (peer, Depfast.Event.signal ()) in
  let ev, _ = (Depfast.Event.rpc_completion ~peer (), peer) in
  ignore ev;
  Depfast.Sched.wait sched ack
|}
  in
  check_rules "non-remote component stays green" [] (rules fs)

let test_tuple_producer_function () =
  let fs =
    SL.lint_string
      {|let begin_call ~peer = (Depfast.Event.rpc_completion ~peer (), peer)

let f sched ~peer =
  let ack, _where = begin_call ~peer in
  Depfast.Sched.wait sched ack
|}
  in
  check_rules "completion tracked through a tuple-returning function"
    [ "red-wait"; "unbounded-wait" ] (unallowed_rules fs)

(* ------------------------------------------------------------------ *)
(* source lint: degenerate quorum *)

let test_degenerate_quorum_positive () =
  let fs =
    SL.lint_string
      {|let f sched ~peers =
  let all = Depfast.Event.and_ () in
  List.iter
    (fun p -> Depfast.Event.add all ~child:(Depfast.Event.rpc_completion ~peer:p ()))
    peers;
  Depfast.Sched.wait sched all
|}
  in
  check_rules "and_ over rpc completions" [ "degenerate-quorum" ] (rules fs)

let test_degenerate_quorum_negative () =
  let fs =
    SL.lint_string
      {|let f sched ~peers =
  let q = Depfast.Event.quorum Depfast.Event.Majority in
  List.iter
    (fun p -> Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer:p ()))
    peers;
  Depfast.Sched.wait sched q
|}
  in
  check_rules "majority quorum is fine" [] (rules fs)

(* ------------------------------------------------------------------ *)
(* source lint: lock across wait *)

let test_lock_across_wait_positive_applied () =
  let fs =
    SL.lint_string
      {|let f sched mu ~peer =
  Depfast.Mutex.with_lock sched mu @@ fun () ->
  let ev = Depfast.Event.rpc_completion ~peer () in
  Depfast.Sched.wait sched ev
|}
  in
  check_bool "with_lock @@ form caught" true
    (List.mem "lock-across-wait" (rules fs))

let test_lock_across_wait_positive_explicit () =
  let fs =
    SL.lint_string
      {|let f sched mu ev =
  Depfast.Mutex.lock sched mu;
  Depfast.Sched.wait sched ev;
  Depfast.Mutex.unlock mu
|}
  in
  check_rules "explicit lock/unlock caught" [ "lock-across-wait" ] (rules fs)

let test_lock_across_wait_negative () =
  let fs =
    SL.lint_string
      {|let f sched mu ev =
  Depfast.Mutex.lock sched mu;
  Depfast.Mutex.unlock mu;
  Depfast.Sched.wait sched ev
|}
  in
  check_rules "wait after unlock is fine" [] (rules fs)

(* ------------------------------------------------------------------ *)
(* pragmas *)

let test_pragma_window () =
  let fs =
    SL.lint_string
      {|let f sched =
  (* depfast-lint: allow red-wait unbounded-wait *)
  let ev = Depfast.Event.rpc_completion ~peer:1 () in
  Depfast.Sched.wait sched ev
|}
  in
  check_int "findings still reported" 2 (List.length fs);
  check_int "but all allowed" 0 (List.length (F.unallowed fs))

let test_pragma_too_far () =
  let fs =
    SL.lint_string
      {|let f sched =
  (* depfast-lint: allow red-wait unbounded-wait *)
  let a = 1 in
  let b = a in
  let c = b in
  let ev = Depfast.Event.rpc_completion ~peer:c () in
  Depfast.Sched.wait sched ev
|}
  in
  check_int "pragma out of its 3-line window" 2 (List.length (F.unallowed fs))

(* ------------------------------------------------------------------ *)
(* fixture files *)

let test_fixture_red_wait () =
  let bad = SL.lint_file (fixture "red_wait_bad.ml") in
  check_rules "bad fixture flagged" [ "red-wait"; "unbounded-wait" ] (unallowed_rules bad);
  let ok = SL.lint_file (fixture "red_wait_ok.ml") in
  check_rules "quorum fixture clean" [] (rules ok)

let test_fixture_lock_across_wait () =
  let bad = SL.lint_file (fixture "lock_across_wait_bad.ml") in
  check_bool "bad fixture flagged" true (List.mem "lock-across-wait" (unallowed_rules bad));
  let ok = SL.lint_file (fixture "lock_across_wait_ok.ml") in
  check_rules "disciplined fixture clean" [] (rules ok)

let test_fixture_tuple_red_wait () =
  let fs = SL.lint_file (fixture "tuple_red_wait.ml") in
  check_rules "tuple fixture flagged" [ "red-wait"; "unbounded-wait" ] (unallowed_rules fs)

let test_fixture_pragma () =
  let fs = SL.lint_file (fixture "pragma_allowed.ml") in
  check_int "findings reported" 2 (List.length fs);
  check_int "all allowed" 0 (List.length (F.unallowed fs))

(* ------------------------------------------------------------------ *)
(* DAG checker *)

let quorum_over peers =
  let q = Depfast.Event.quorum Depfast.Event.Majority in
  let cs =
    List.map
      (fun p ->
        let c = Depfast.Event.rpc_completion ~peer:p () in
        Depfast.Event.add q ~child:c;
        c)
      peers
  in
  (q, cs)

let test_dag_classify () =
  let q, _ = quorum_over [ 0; 1; 2 ] in
  check_bool "majority quorum green" true (DL.classify q = `Green);
  let lone = Depfast.Event.rpc_completion ~peer:7 () in
  check_bool "lone rpc red" true (DL.classify lone = `Red [ 7 ])

let test_dag_red_wait () =
  let lone = Depfast.Event.rpc_completion ~peer:7 () in
  check_rules "red wait reported" [ "red-wait" ] (rules (DL.analyze lone));
  let q, _ = quorum_over [ 0; 1; 2 ] in
  check_rules "quorum clean" [] (rules (DL.analyze q))

let test_dag_orphan_positive () =
  (* an abandoned child can never fire *)
  let q, cs = quorum_over [ 0; 1; 2 ] in
  Depfast.Event.abandon (List.nth cs 2);
  check_bool "abandoned child is an orphan" true (List.mem "orphan-wait" (rules (DL.analyze q)));
  (* with an explicit firer list, unregistered events are orphans and a
     2-of-3 quorum with one live firer cannot fire either *)
  let q2, cs2 = quorum_over [ 0; 1; 2 ] in
  let fs = DL.analyze ~firers:[ List.nth cs2 0 ] q2 in
  check_bool "unfirable children are orphans" true (List.mem "orphan-wait" (rules fs));
  check_bool "quorum itself cannot fire" true
    (List.exists
       (fun f -> f.F.rule = "orphan-wait" && f.F.loc = F.Node
          { event_id = Depfast.Event.id q2; event_label = Depfast.Event.label q2 })
       fs)

let test_dag_orphan_negative () =
  let q, cs = quorum_over [ 0; 1; 2 ] in
  let fs = DL.analyze ~firers:cs q in
  check_bool "fully registered quorum has no orphans" false
    (List.mem "orphan-wait" (rules fs));
  (* a fired quorum with a discarded straggler is not an orphan *)
  let q2, cs2 = quorum_over [ 0; 1; 2 ] in
  Depfast.Event.fire (List.nth cs2 0);
  Depfast.Event.fire (List.nth cs2 1);
  Depfast.Event.abandon (List.nth cs2 2);
  check_bool "straggler under a fired quorum ignored" false
    (List.mem "orphan-wait" (rules (DL.analyze ~firers:cs2 q2)))

let test_dag_vacuous () =
  let q = Depfast.Event.quorum (Depfast.Event.Count 5) in
  List.iter
    (fun p -> Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer:p ()))
    [ 0; 1; 2 ];
  check_bool "count 5 of 3 is vacuous" true (List.mem "vacuous-quorum" (rules (DL.analyze q)));
  let ok = Depfast.Event.quorum (Depfast.Event.Count 2) in
  List.iter
    (fun p -> Depfast.Event.add ok ~child:(Depfast.Event.rpc_completion ~peer:p ()))
    [ 0; 1; 2 ];
  check_bool "count 2 of 3 is fine" false (List.mem "vacuous-quorum" (rules (DL.analyze ok)))

let test_dag_allow () =
  let lone = Depfast.Event.rpc_completion ~label:"client->leader" ~peer:0 () in
  let allow ~rule e = rule = "red-wait" && Depfast.Event.label e = "client->leader" in
  let fs = DL.analyze ~allow lone in
  check_int "finding still reported" 1 (List.length fs);
  check_int "but allowed" 0 (List.length (F.unallowed fs))

let suite =
  [
    ( "lint.lexer",
      [
        Alcotest.test_case "positions" `Quick test_lexer_positions;
        Alcotest.test_case "comments/strings skipped" `Quick test_lexer_skips_noise;
        Alcotest.test_case "pragma parsing" `Quick test_lexer_pragma;
      ] );
    ( "lint.source",
      [
        Alcotest.test_case "red wait (positive)" `Quick test_red_wait_positive;
        Alcotest.test_case "red wait (direct call)" `Quick test_red_wait_direct_call;
        Alcotest.test_case "red wait (negative: quorum)" `Quick test_red_wait_negative_quorum;
        Alcotest.test_case "disk wait severity" `Quick test_disk_wait_is_warning;
        Alcotest.test_case "unbounded (negative: timeout)" `Quick test_unbounded_negative_timeout;
        Alcotest.test_case "shadowing clears fact" `Quick test_shadowing_clears_fact;
        Alcotest.test_case "producer propagation" `Quick test_producer_propagation;
        Alcotest.test_case "tuple binding tracked" `Quick test_tuple_binding_tracked;
        Alcotest.test_case "tuple binding (negative)" `Quick test_tuple_binding_other_component;
        Alcotest.test_case "tuple producer function" `Quick test_tuple_producer_function;
        Alcotest.test_case "degenerate quorum (positive)" `Quick test_degenerate_quorum_positive;
        Alcotest.test_case "degenerate quorum (negative)" `Quick test_degenerate_quorum_negative;
        Alcotest.test_case "lock across wait (with_lock)" `Quick
          test_lock_across_wait_positive_applied;
        Alcotest.test_case "lock across wait (explicit)" `Quick
          test_lock_across_wait_positive_explicit;
        Alcotest.test_case "lock across wait (negative)" `Quick test_lock_across_wait_negative;
        Alcotest.test_case "pragma window" `Quick test_pragma_window;
        Alcotest.test_case "pragma out of window" `Quick test_pragma_too_far;
      ] );
    ( "lint.fixtures",
      [
        Alcotest.test_case "red wait pair" `Quick test_fixture_red_wait;
        Alcotest.test_case "lock pair" `Quick test_fixture_lock_across_wait;
        Alcotest.test_case "tuple red wait" `Quick test_fixture_tuple_red_wait;
        Alcotest.test_case "pragma" `Quick test_fixture_pragma;
      ] );
    ( "lint.dag",
      [
        Alcotest.test_case "classify" `Quick test_dag_classify;
        Alcotest.test_case "red wait" `Quick test_dag_red_wait;
        Alcotest.test_case "orphan (positive)" `Quick test_dag_orphan_positive;
        Alcotest.test_case "orphan (negative)" `Quick test_dag_orphan_negative;
        Alcotest.test_case "vacuous quorum" `Quick test_dag_vacuous;
        Alcotest.test_case "allow predicate" `Quick test_dag_allow;
      ] );
  ]
