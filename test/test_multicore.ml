(* Tests for the multicore scale-out layer (ISSUE 9): the Chase–Lev
   work-stealing deque (sequential contracts plus real steal/push/pop
   races across domains), the domain-pool plumbing, exact histogram and
   metrics merging, and the per-domain Raft shard pool's determinism in
   the domain count. *)

module W = Sim.Wsq
module P = Sim.Dpool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* deque, owner side: LIFO pops, growth past the initial capacity *)

let test_wsq_lifo () =
  let q = W.create () in
  check_bool "fresh deque empty" true (W.is_empty q);
  check_int "fresh deque size" 0 (W.size q);
  for i = 1 to 5 do
    W.push q i
  done;
  check_int "five queued" 5 (W.size q);
  Alcotest.(check (list (option int)))
    "owner pops newest first, then None"
    [ Some 5; Some 4; Some 3; Some 2; Some 1; None ]
    (List.init 6 (fun _ -> W.pop q));
  check_bool "drained" true (W.is_empty q)

let test_wsq_growth () =
  let q = W.create ~capacity:2 () in
  let n = 1000 in
  for i = 1 to n do
    W.push q i
  done;
  check_int "all retained across grows" n (W.size q);
  let sum = ref 0 in
  let rec drain () =
    match W.pop q with
    | Some v ->
      sum := !sum + v;
      drain ()
    | None -> ()
  in
  drain ();
  check_int "every element intact" (n * (n + 1) / 2) !sum

(* thief side, no concurrency: steals take the oldest element *)

let test_wsq_steal_fifo () =
  let q = W.create () in
  List.iter (W.push q) [ 1; 2; 3 ];
  (match W.steal q with
  | W.Stolen v -> check_int "thief takes the oldest" 1 v
  | W.Empty | W.Retry -> Alcotest.fail "steal from a 3-element deque failed");
  Alcotest.(check (option int)) "owner still pops the newest" (Some 3) (W.pop q);
  (match W.steal q with
  | W.Stolen v -> check_int "next oldest" 2 v
  | W.Empty | W.Retry -> Alcotest.fail "steal from a 1-element deque failed");
  check_bool "steal on empty reports Empty" true
    (match W.steal q with W.Empty -> true | W.Stolen _ | W.Retry -> false)

(* the race the structure exists for: one owner pushing and popping,
   several thieves stealing concurrently on real domains. Every element
   must be consumed exactly once — no loss, no duplication. *)

let test_wsq_domain_race () =
  let q = W.create ~capacity:4 () in
  let n = 20_000 in
  let thieves = 3 in
  let stolen = Array.init thieves (fun _ -> Atomic.make 0) in
  let done_ = Atomic.make false in
  let thief k =
    Domain.spawn (fun () ->
        let rec loop () =
          match W.steal q with
          | W.Stolen v ->
            Atomic.set stolen.(k) (Atomic.get stolen.(k) + v);
            loop ()
          | W.Retry -> loop ()
          | W.Empty -> if not (Atomic.get done_) then loop ()
        in
        loop ())
  in
  let ds = List.init thieves thief in
  (* owner: interleave pushes with occasional pops, then drain *)
  let popped = ref 0 in
  for i = 1 to n do
    W.push q i;
    if i mod 7 = 0 then
      match W.pop q with Some v -> popped := !popped + v | None -> ()
  done;
  let rec drain () =
    match W.pop q with
    | Some v ->
      popped := !popped + v;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set done_ true;
  List.iter Domain.join ds;
  (* the owner can race one final steal: drain anything left behind *)
  drain ();
  let total =
    Array.fold_left (fun a c -> a + Atomic.get c) !popped stolen
  in
  check_int "every element consumed exactly once" (n * (n + 1) / 2) total;
  check_bool "deque empty at quiescence" true (W.is_empty q)

(* ------------------------------------------------------------------ *)
(* domain pool: scatter/join indexing, error propagation, the gate *)

let test_scatter_indexes () =
  let r = P.scatter ~jobs:4 (fun i -> i * i) in
  Alcotest.(check (list int)) "slice i computes f i" [ 0; 1; 4; 9 ] (Array.to_list r)

let test_scatter_reraises () =
  check_bool "lowest-indexed slice exception wins" true
    (try
       ignore (P.scatter ~jobs:3 (fun i -> if i >= 1 then failwith (string_of_int i)));
       false
     with Failure s -> s = "1")

let test_recommended_jobs_env () =
  check_bool "at least one worker" true (P.recommended_jobs () >= 1);
  check_bool "cap respected" true (P.recommended_jobs ~cap:2 () <= 2)

let test_gate_epoch () =
  let g = P.Gate.create () in
  let e = P.Gate.epoch g in
  P.Gate.wake_all g;
  check_bool "wake bumps the epoch" true (P.Gate.epoch g > e);
  (* a wake between reading the epoch and awaiting it must not block *)
  P.Gate.await g ~seen:e

(* ------------------------------------------------------------------ *)
(* satellite: Hist.merge is exact — merging histograms equals recording
   the concatenated samples (bucket-wise, so every quantile agrees) *)

let hist_of samples =
  let h = Sim.Hist.create () in
  List.iter (Sim.Hist.add h) samples;
  h

let test_hist_merge_concat =
  QCheck.Test.make ~count:200 ~name:"Hist.merge == concat"
    QCheck.(pair (list (int_bound 2_000_000)) (list (int_bound 2_000_000)))
    (fun (xs, ys) ->
      let merged = Sim.Hist.merge (hist_of xs) (hist_of ys) in
      let concat = hist_of (xs @ ys) in
      Sim.Hist.count merged = Sim.Hist.count concat
      && Sim.Hist.min_value merged = Sim.Hist.min_value concat
      && Sim.Hist.max_value merged = Sim.Hist.max_value concat
      && Sim.Hist.mean merged = Sim.Hist.mean concat
      && List.for_all
           (fun q -> Sim.Hist.quantile merged q = Sim.Hist.quantile concat q)
           [ 0.0; 0.5; 0.9; 0.99; 1.0 ])

let test_metrics_merge () =
  let mk ~completed ~failed ~shed ~util ~fsyncs ~lat ~dur =
    {
      Workload.Metrics.duration = dur;
      completed;
      failed;
      shed;
      latency = hist_of lat;
      leader_utilization = util;
      leader_crashed = false;
      leader_fsyncs = fsyncs;
    }
  in
  let a =
    mk ~completed:300 ~failed:2 ~shed:1 ~util:0.9 ~fsyncs:60
      ~lat:[ 1000; 2000; 3000 ] ~dur:(Sim.Time.ms 500)
  in
  let b =
    mk ~completed:100 ~failed:0 ~shed:3 ~util:0.1 ~fsyncs:40 ~lat:[ 9000 ]
      ~dur:(Sim.Time.ms 400)
  in
  let m = Workload.Metrics.merge [ a; b ] in
  check_int "ops sum" 400 m.Workload.Metrics.completed;
  check_int "failures sum" 2 m.Workload.Metrics.failed;
  check_int "sheds sum" 4 m.Workload.Metrics.shed;
  check_int "fsyncs sum" 100 m.Workload.Metrics.leader_fsyncs;
  check_int "window is the longest shard window (concurrent shards)"
    (Sim.Time.ms 500) m.Workload.Metrics.duration;
  check_int "latency histogram merged exactly" 4
    (Sim.Hist.count m.Workload.Metrics.latency);
  Alcotest.(check (float 1e-9)) "utilization weighted by completed ops" 0.7
    m.Workload.Metrics.leader_utilization;
  check_bool "empty merge is the zero report" true
    ((Workload.Metrics.merge []).Workload.Metrics.completed = 0)

(* ------------------------------------------------------------------ *)
(* shard pool: per-shard stats are a pure function of the seed and the
   merged cross-shard traffic — identical on one domain and on two *)

let test_shardpool_deterministic_in_jobs () =
  let run jobs =
    Raft.Shardpool.run ~shards:2 ~jobs ~quanta:6 ~clients:2 ~seed:7 ()
  in
  let r1 = run 1 in
  let r2 = run 2 in
  let show r =
    r.Raft.Shardpool.r_shards |> Array.to_list
    |> List.map (fun (s : Raft.Shardpool.stats) ->
           Printf.sprintf "sh%d ops=%d failed=%d shed=%d out=%d in=%d p99=%d n=%d t=%d"
             s.Raft.Shardpool.st_shard s.Raft.Shardpool.st_ops
             s.Raft.Shardpool.st_failed s.Raft.Shardpool.st_shed
             s.Raft.Shardpool.st_cross_out s.Raft.Shardpool.st_cross_in
             (Sim.Hist.p99 s.Raft.Shardpool.st_latency)
             (Sim.Hist.count s.Raft.Shardpool.st_latency)
             s.Raft.Shardpool.st_time)
  in
  check_bool "load actually ran" true (Raft.Shardpool.total_ops r1 > 0);
  check_bool "cross-shard traffic actually crossed" true
    (Raft.Shardpool.total_cross r1 > 0);
  Alcotest.(check (list string)) "per-shard stats identical at jobs=1 and jobs=2"
    (show r1) (show r2)

let suite =
  [
    ( "multicore.wsq",
      [
        Alcotest.test_case "owner LIFO" `Quick test_wsq_lifo;
        Alcotest.test_case "growth past capacity" `Quick test_wsq_growth;
        Alcotest.test_case "thief FIFO" `Quick test_wsq_steal_fifo;
        Alcotest.test_case "owner vs thieves on domains" `Quick test_wsq_domain_race;
      ] );
    ( "multicore.dpool",
      [
        Alcotest.test_case "scatter indexes slices" `Quick test_scatter_indexes;
        Alcotest.test_case "scatter re-raises" `Quick test_scatter_reraises;
        Alcotest.test_case "recommended jobs" `Quick test_recommended_jobs_env;
        Alcotest.test_case "gate epoch" `Quick test_gate_epoch;
      ] );
    ( "multicore.merge",
      [
        QCheck_alcotest.to_alcotest test_hist_merge_concat;
        Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
      ] );
    ( "multicore.shardpool",
      [
        Alcotest.test_case "deterministic in jobs" `Quick
          test_shardpool_deterministic_in_jobs;
      ] );
  ]
