(* Unit and property tests for the DepFast event abstraction. *)

open Depfast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_signal_lifecycle () =
  let ev = Event.signal ~label:"x" () in
  check_bool "starts pending" false (Event.is_ready ev);
  let fired = ref 0 in
  Event.on_fire ev (fun () -> incr fired);
  Event.fire ev;
  check_bool "ready" true (Event.is_ready ev);
  check_int "observer ran" 1 !fired;
  Event.fire ev;
  check_int "idempotent" 1 !fired;
  (* late observer runs immediately *)
  Event.on_fire ev (fun () -> incr fired);
  check_int "late observer" 2 !fired

let test_quorum_majority () =
  let q = Event.quorum ~label:"maj" Event.Majority in
  let children = List.init 5 (fun i -> Event.rpc_completion ~peer:i ()) in
  List.iter (fun c -> Event.add q ~child:c) children;
  check_int "required 3 of 5" 3 (Event.required q);
  Event.fire (List.nth children 0);
  Event.fire (List.nth children 1);
  check_bool "2/5 pending" false (Event.is_ready q);
  Event.fire (List.nth children 4);
  check_bool "3/5 ready" true (Event.is_ready q);
  check_int "ready children" 3 (Event.ready_children q)

let test_quorum_count () =
  let q = Event.quorum (Event.Count 2) in
  let a = Event.signal () and b = Event.signal () and c = Event.signal () in
  List.iter (fun ch -> Event.add q ~child:ch) [ a; b; c ];
  Event.fire a;
  check_bool "1/3" false (Event.is_ready q);
  Event.fire c;
  check_bool "2/3" true (Event.is_ready q)

let test_and_or () =
  let a = Event.signal () and b = Event.signal () in
  let all = Event.and_ () in
  Event.add all ~child:a;
  Event.add all ~child:b;
  let any = Event.or_ () in
  let c = Event.signal () and d = Event.signal () in
  Event.add any ~child:c;
  Event.add any ~child:d;
  Event.fire a;
  check_bool "and 1/2" false (Event.is_ready all);
  Event.fire b;
  check_bool "and 2/2" true (Event.is_ready all);
  Event.fire d;
  check_bool "or fires on any" true (Event.is_ready any)

let test_add_already_ready_child () =
  let a = Event.signal () in
  Event.fire a;
  let q = Event.quorum (Event.Count 1) in
  Event.add q ~child:a;
  check_bool "immediately ready" true (Event.is_ready q)

let test_nesting_or_of_quorums () =
  (* the fast-path / slow-path idiom from §3.2 *)
  let oks = List.init 3 (fun i -> Event.rpc_completion ~peer:i ()) in
  let rejects = List.init 3 (fun i -> Event.rpc_completion ~peer:i ()) in
  let fast_ok = Event.quorum ~label:"fast_ok" (Event.Count 2) in
  let fast_reject = Event.quorum ~label:"fast_reject" (Event.Count 2) in
  List.iter (fun c -> Event.add fast_ok ~child:c) oks;
  List.iter (fun c -> Event.add fast_reject ~child:c) rejects;
  let fastpath = Event.or_ ~label:"fastpath" () in
  Event.add fastpath ~child:fast_ok;
  Event.add fastpath ~child:fast_reject;
  Event.fire (List.nth rejects 0);
  Event.fire (List.nth oks 1);
  check_bool "no side decided" false (Event.is_ready fastpath);
  Event.fire (List.nth rejects 2);
  check_bool "reject quorum" true (Event.is_ready fast_reject);
  check_bool "or propagates" true (Event.is_ready fastpath);
  check_bool "ok side still pending" false (Event.is_ready fast_ok)

let test_nesting_and_of_quorums () =
  (* 2PC-style: all shards must reach their own majority *)
  let shard n =
    let q = Event.quorum (Event.Count 2) in
    let evs = List.init 3 (fun i -> Event.rpc_completion ~peer:((n * 3) + i) ()) in
    List.iter (fun c -> Event.add q ~child:c) evs;
    (q, evs)
  in
  let q1, evs1 = shard 0 and q2, evs2 = shard 1 in
  let all = Event.and_ () in
  Event.add all ~child:q1;
  Event.add all ~child:q2;
  List.iteri (fun i e -> if i < 2 then Event.fire e) evs1;
  check_bool "one shard done" false (Event.is_ready all);
  List.iteri (fun i e -> if i >= 1 then Event.fire e) evs2;
  check_bool "both shards done" true (Event.is_ready all)

let test_children_order () =
  (* the array-backed children must preserve attachment order through
     growth (initial capacity is 6) *)
  let q = Event.quorum (Event.Count 15) in
  let cs = List.init 15 (fun i -> Event.rpc_completion ~peer:i ()) in
  List.iter (fun c -> Event.add q ~child:c) cs;
  check_int "count" 15 (Event.child_count q);
  Alcotest.(check (list int))
    "attachment order" (List.map Event.id cs)
    (List.map Event.id (Event.children q));
  let seen = ref [] in
  Event.iter_children q (fun c -> seen := Event.id c :: !seen);
  Alcotest.(check (list int))
    "iter_children order" (List.map Event.id cs)
    (List.rev !seen)

let test_observer_order () =
  (* observers run in registration order even though they are stored
     reversed *)
  let ev = Event.signal () in
  let ran = ref [] in
  List.iter (fun i -> Event.on_fire ev (fun () -> ran := i :: !ran)) [ 1; 2; 3 ];
  Event.fire ev;
  Alcotest.(check (list int)) "registration order" [ 1; 2; 3 ] (List.rev !ran);
  let ab = Event.signal () in
  let ran = ref [] in
  List.iter (fun i -> Event.on_abandon ab (fun () -> ran := i :: !ran)) [ 1; 2; 3 ];
  Event.abandon ab;
  Alcotest.(check (list int)) "abandon observer order" [ 1; 2; 3 ] (List.rev !ran)

let test_fire_compound_rejected () =
  let q = Event.quorum Event.Any in
  Alcotest.check_raises "fire compound" (Invalid_argument "Event.fire: compound events fire via children")
    (fun () -> Event.fire q)

let test_add_to_basic_rejected () =
  let s = Event.signal () in
  Alcotest.check_raises "add to basic" (Invalid_argument "Event.add: not a compound event")
    (fun () -> Event.add s ~child:(Event.signal ()))

let test_abandon () =
  let q = Event.quorum (Event.Count 2) in
  let slow = Event.rpc_completion ~peer:9 () in
  let abandoned = ref false in
  Event.on_abandon slow (fun () -> abandoned := true);
  Event.add q ~child:slow;
  Event.abandon q;
  check_bool "child abandoned" true !abandoned;
  check_bool "abandoned flag" true (Event.is_abandoned slow);
  (* firing an abandoned basic event is a no-op *)
  Event.fire slow;
  check_bool "no late fire" false (Event.is_ready slow)

let test_abandon_shared_child_kept () =
  (* a child still awaited by another live parent must not be abandoned *)
  let shared = Event.rpc_completion ~peer:1 () in
  let q1 = Event.quorum Event.Any and q2 = Event.quorum Event.Any in
  Event.add q1 ~child:shared;
  Event.add q2 ~child:shared;
  Event.abandon q1;
  check_bool "shared child survives" false (Event.is_abandoned shared);
  Event.fire shared;
  check_bool "q2 still fires" true (Event.is_ready q2)

let test_peers () =
  let q = Event.quorum Event.Majority in
  List.iter (fun p -> Event.add q ~child:(Event.rpc_completion ~peer:p ())) [ 3; 1; 3; 2 ];
  Alcotest.(check (list int)) "deduplicated in order" [ 3; 1; 2 ] (Event.peers q)

let test_stallers_basic () =
  let rpc = Event.rpc_completion ~peer:7 () in
  Alcotest.(check (list int)) "basic rpc staller" [ 7 ] (Event.stallers rpc);
  let t = Event.timer_kind () in
  Alcotest.(check (list int)) "timer no staller" [] (Event.stallers t)

let test_stallers_quorum () =
  let q = Event.quorum Event.Majority in
  List.iter (fun p -> Event.add q ~child:(Event.rpc_completion ~peer:p ())) [ 0; 1; 2 ];
  Alcotest.(check (list int)) "majority quorum tolerant" [] (Event.stallers q);
  let all = Event.and_ () in
  List.iter (fun p -> Event.add all ~child:(Event.rpc_completion ~peer:p ())) [ 0; 1; 2 ];
  Alcotest.(check (list int)) "and-event: everyone stalls" [ 0; 1; 2 ] (Event.stallers all)

let test_stallers_nested () =
  (* And of two majority quorums: no single node can stall *)
  let shard ps =
    let q = Event.quorum Event.Majority in
    List.iter (fun p -> Event.add q ~child:(Event.rpc_completion ~peer:p ())) ps;
    q
  in
  let all = Event.and_ () in
  Event.add all ~child:(shard [ 0; 1; 2 ]);
  Event.add all ~child:(shard [ 3; 4; 5 ]);
  Alcotest.(check (list int)) "2pc over quorums tolerant" [] (Event.stallers all);
  (* but if one shard is a single replica, that replica stalls the And *)
  let all2 = Event.and_ () in
  Event.add all2 ~child:(shard [ 0; 1; 2 ]);
  Event.add all2 ~child:(Event.rpc_completion ~peer:9 ());
  Alcotest.(check (list int)) "single-replica shard stalls" [ 9 ] (Event.stallers all2)

let test_stallers_abandoned_child () =
  (* an abandoned child of a pending quorum can never fire, so the live
     quorum shrinks: 2-of-3 over {0,1,2} with child 2 abandoned is really
     2-of-2 over {0,1} — each survivor now stalls it *)
  let q = Event.quorum Event.Majority in
  let cs =
    List.map
      (fun p ->
        let c = Event.rpc_completion ~peer:p () in
        Event.add q ~child:c;
        c)
      [ 0; 1; 2 ]
  in
  Alcotest.(check (list int)) "tolerant before abandon" [] (Event.stallers q);
  Event.abandon (List.nth cs 2);
  Alcotest.(check (list int)) "abandoned child shrinks quorum" [ 0; 1 ] (Event.stallers q);
  (* abandonment under an already-fired parent must not re-redden it *)
  let q2 = Event.quorum Event.Majority in
  let cs2 =
    List.map
      (fun p ->
        let c = Event.rpc_completion ~peer:p () in
        Event.add q2 ~child:c;
        c)
      [ 0; 1; 2 ]
  in
  Event.fire (List.nth cs2 0);
  Event.fire (List.nth cs2 1);
  Alcotest.(check bool) "quorum fired" true (Event.is_ready q2);
  Event.abandon (List.nth cs2 2);
  Alcotest.(check (list int)) "straggler discard stays green" [] (Event.stallers q2)

let test_stallers_abandoned_nested () =
  (* nested: and_ of two majority quorums is tolerant, but abandoning one
     child of the first shard turns that shard (and hence the and_) red
     for the shard's two survivors *)
  let shard ps =
    let q = Event.quorum Event.Majority in
    let cs =
      List.map
        (fun p ->
          let c = Event.rpc_completion ~peer:p () in
          Event.add q ~child:c;
          c)
        ps
    in
    (q, cs)
  in
  let q1, cs1 = shard [ 0; 1; 2 ] in
  let q2, _ = shard [ 3; 4; 5 ] in
  let all = Event.and_ () in
  Event.add all ~child:q1;
  Event.add all ~child:q2;
  Alcotest.(check (list int)) "tolerant before abandon" [] (Event.stallers all);
  Event.abandon (List.nth cs1 2);
  Alcotest.(check (list int)) "inner abandon reddens the and_" [ 0; 1 ] (Event.stallers all);
  Alcotest.(check (list int)) "abandoned shard red on its own" [ 0; 1 ] (Event.stallers q1);
  Alcotest.(check (list int)) "other shard unaffected" [] (Event.stallers q2)

(* property: a random quorum event fires exactly when >= k children fired,
   regardless of fire order *)
let test_quorum_fire_order_property =
  QCheck.Test.make ~name:"quorum fires iff k children fired (any order)" ~count:300
    QCheck.(pair (int_range 1 12) (int_range 1 12))
    (fun (n, k) ->
      let n = max n k in
      let q = Depfast.Event.quorum (Depfast.Event.Count k) in
      let children = Array.init n (fun i -> Depfast.Event.rpc_completion ~peer:i ()) in
      Array.iter (fun c -> Depfast.Event.add q ~child:c) children;
      let order = Array.init n Fun.id in
      let rng = Sim.Rng.create (Int64.of_int ((n * 100) + k)) in
      Sim.Rng.shuffle rng order;
      let ok = ref true in
      Array.iteri
        (fun fired_count idx ->
          (* before firing child #(fired_count+1): ready iff fired_count >= k *)
          if Depfast.Event.is_ready q <> (fired_count >= k) then ok := false;
          Depfast.Event.fire children.(idx))
        order;
      !ok && Depfast.Event.is_ready q = (n >= k))

(* property: nested events' stallers computation matches brute force over
   single-node stalls *)
let test_stallers_brute_force =
  let gen_tree =
    QCheck.Gen.(
      sized_size (int_range 1 3) @@ fix (fun self depth ->
          if depth = 0 then map (fun p -> `Leaf p) (int_range 0 5)
          else
            frequency
              [
                (1, map (fun p -> `Leaf p) (int_range 0 5));
                ( 2,
                  map2
                    (fun k kids -> `Node (k, kids))
                    (int_range 1 4)
                    (list_size (int_range 1 4) (self (depth - 1))) );
              ]))
  in
  let rec build = function
    | `Leaf p -> Depfast.Event.rpc_completion ~peer:p ()
    | `Node (k, kids) ->
      let n = List.length kids in
      let q = Depfast.Event.quorum (Depfast.Event.Count (min k n)) in
      List.iter (fun kid -> Depfast.Event.add q ~child:(build kid)) kids;
      q
  in
  (* does the tree fire if all leaves except those with peer [p] fire? *)
  let rec fires_without p = function
    | `Leaf q -> q <> p
    | `Node (k, kids) ->
      let n = List.length kids in
      let k = min k n in
      let alive = List.length (List.filter (fires_without p) kids) in
      alive >= k
  in
  QCheck.Test.make ~name:"stallers = brute-force single-node stall set" ~count:300
    (QCheck.make gen_tree) (fun tree ->
      let ev = build tree in
      let expected =
        List.filter (fun p -> not (fires_without p tree)) [ 0; 1; 2; 3; 4; 5 ]
      in
      let got = List.sort compare (Depfast.Event.stallers ev) in
      got = expected)

let suite =
  [
    ( "event.basic",
      [
        Alcotest.test_case "signal lifecycle" `Quick test_signal_lifecycle;
        Alcotest.test_case "fire compound rejected" `Quick test_fire_compound_rejected;
        Alcotest.test_case "add to basic rejected" `Quick test_add_to_basic_rejected;
        Alcotest.test_case "peers deduplicated" `Quick test_peers;
        Alcotest.test_case "children keep attachment order" `Quick test_children_order;
        Alcotest.test_case "observers keep registration order" `Quick test_observer_order;
      ] );
    ( "event.compound",
      [
        Alcotest.test_case "quorum majority" `Quick test_quorum_majority;
        Alcotest.test_case "quorum count" `Quick test_quorum_count;
        Alcotest.test_case "and / or" `Quick test_and_or;
        Alcotest.test_case "already-ready child" `Quick test_add_already_ready_child;
        Alcotest.test_case "or of quorums (fast path)" `Quick test_nesting_or_of_quorums;
        Alcotest.test_case "and of quorums (2PC)" `Quick test_nesting_and_of_quorums;
        QCheck_alcotest.to_alcotest test_quorum_fire_order_property;
      ] );
    ( "event.abandon",
      [
        Alcotest.test_case "abandon propagates" `Quick test_abandon;
        Alcotest.test_case "shared child kept" `Quick test_abandon_shared_child_kept;
      ] );
    ( "event.stallers",
      [
        Alcotest.test_case "basic events" `Quick test_stallers_basic;
        Alcotest.test_case "quorum vs and" `Quick test_stallers_quorum;
        Alcotest.test_case "nested" `Quick test_stallers_nested;
        Alcotest.test_case "abandoned child" `Quick test_stallers_abandoned_child;
        Alcotest.test_case "abandoned child (nested)" `Quick test_stallers_abandoned_nested;
        QCheck_alcotest.to_alcotest test_stallers_brute_force;
      ] );
  ]
