(* Additional property-based suites over core data structures and
   substrate invariants. *)

(* ------------------------------------------------------------------ *)
(* Rlog: a random sequence of appends/truncations behaves like a list *)

let rlog_ops_gen =
  QCheck.Gen.(
    list_size (int_range 1 200)
      (frequency [ (4, return `Append); (1, map (fun i -> `Truncate i) (int_range 1 220)) ]))

let test_rlog_model =
  QCheck.Test.make ~name:"rlog behaves like its list model" ~count:300
    (QCheck.make rlog_ops_gen) (fun ops ->
      let log = Raft.Rlog.create () in
      let model = ref [] (* newest first; entry i at position len-i *) in
      let term_of i = (i mod 5) + 1 in
      List.iter
        (fun op ->
          match op with
          | `Append ->
            let index = Raft.Rlog.last_index log + 1 in
            let e : Raft.Types.entry =
              { term = term_of index; index; cmd = Raft.Types.Nop; client_id = -1; seq = 0 }
            in
            Raft.Rlog.append log e;
            model := e :: !model
          | `Truncate i ->
            Raft.Rlog.truncate_from log i;
            model := List.filter (fun (e : Raft.Types.entry) -> e.index < i) !model)
        ops;
      let len = List.length !model in
      Raft.Rlog.last_index log = len
      && Raft.Rlog.last_term log = (match !model with [] -> 0 | e :: _ -> e.term)
      && List.for_all
           (fun (e : Raft.Types.entry) -> Raft.Rlog.get log e.index = Some e)
           !model
      && Raft.Rlog.get log (len + 1) = None
      && Raft.Rlog.term_at log 0 = Some 0)

let test_rlog_slice_coherent =
  QCheck.Test.make ~name:"rlog slice = contiguous window" ~count:200
    QCheck.(triple (int_range 1 100) (int_range 1 120) (int_range 1 50))
    (fun (len, from, max_n) ->
      let log = Raft.Rlog.create () in
      for i = 1 to len do
        Raft.Rlog.append log
          { term = 1; index = i; cmd = Raft.Types.Nop; client_id = -1; seq = 0 }
      done;
      let s = Raft.Rlog.slice log ~from ~max:max_n in
      if from > len then s = []
      else
        List.length s = min max_n (len - from + 1)
        && List.for_all2
             (fun (e : Raft.Types.entry) k -> e.index = from + k)
             s
             (List.init (List.length s) Fun.id))

(* a view over any window materializes to exactly the copying slice *)
let test_rlog_view_matches_slice =
  QCheck.Test.make ~name:"rlog view materializes to the slice" ~count:200
    QCheck.(triple (int_range 1 100) (int_range 1 120) (int_range 1 50))
    (fun (len, from, max_n) ->
      let log = Raft.Rlog.create () in
      for i = 1 to len do
        Raft.Rlog.append log
          { term = 1; index = i; cmd = Raft.Types.Nop; client_id = -1; seq = 0 }
      done;
      let v = Raft.Rlog.view log ~from ~max:max_n in
      Raft.Rlog.View.valid v
      &&
      match Raft.Types.view_materialize v with
      | Some a -> a = Raft.Rlog.slice_array log ~from ~max:max_n
      | None -> false)

(* ------------------------------------------------------------------ *)
(* KV sessions: replaying any prefix of a command stream never double-
   applies *)

let test_kv_exactly_once =
  QCheck.Test.make ~name:"kv dedup: random replays apply exactly once" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_bound 3) (int_bound 9)))
    (fun cmds ->
      (* build an entry stream with client retries: each (client, key) cmd
         appears, sometimes twice, with the same seq *)
      let kv = Raft.Kv.create () in
      let reference = Hashtbl.create 16 in
      let seqs = Hashtbl.create 4 in
      let index = ref 0 in
      List.iter
        (fun (client, key) ->
          let seq = 1 + Option.value ~default:0 (Hashtbl.find_opt seqs client) in
          Hashtbl.replace seqs client seq;
          let e : Raft.Types.entry =
            {
              term = 1;
              index = (incr index; !index);
              cmd = Raft.Types.Put { key = string_of_int key; value = Printf.sprintf "%d-%d" client seq };
              client_id = client;
              seq;
            }
          in
          ignore (Raft.Kv.apply kv e);
          (* duplicate delivery of the same command *)
          ignore (Raft.Kv.apply kv e);
          Hashtbl.replace reference (string_of_int key) (Printf.sprintf "%d-%d" client seq))
        cmds;
      Raft.Kv.applied_count kv = List.length cmds
      && Hashtbl.fold
           (fun k v acc -> acc && Raft.Kv.get kv k = Some v)
           reference true)

(* the leader's group commit seals the same command stream into
   multi-command Batch entries (singletons stay plain entries); applying
   the batched log must be indistinguishable from applying the commands
   one entry each — including dedup of retried sequence numbers *)

let batched_apply_gen =
  QCheck.Gen.(
    pair
      (list_size (int_range 1 120)
         (triple (int_range 0 3)
            (frequency [ (4, return `Put); (1, return `Get); (1, return `Dup) ])
            (pair (int_range 0 9) (int_range 0 99))))
      (list_size (int_range 1 60) (int_range 1 8)))

let test_batched_apply_equiv =
  QCheck.Test.make ~name:"kv: batched apply == sequential apply" ~count:200
    (QCheck.make batched_apply_gen) (fun (raw, cuts) ->
      (* per-client increasing seqs; `Dup re-sends the previous seq *)
      let seqs = Array.make 4 0 in
      let cmds =
        List.map
          (fun (c, kind, (k, v)) ->
            let key = Printf.sprintf "k%d" k in
            let cmd =
              match kind with
              | `Get -> Raft.Types.Get { key }
              | `Put | `Dup -> Raft.Types.Put { key; value = string_of_int v }
            in
            let seq =
              match kind with
              | `Dup -> max 1 seqs.(c)
              | `Put | `Get ->
                seqs.(c) <- seqs.(c) + 1;
                seqs.(c)
            in
            { Raft.Types.b_cmd = cmd; b_client = c; b_seq = seq })
          raw
      in
      (* reference: one apply_cmd per command, in order *)
      let kv_seq = Raft.Kv.create () in
      List.iter
        (fun (b : Raft.Types.bcmd) ->
          ignore (Raft.Kv.apply_cmd kv_seq ~cmd:b.b_cmd ~client_id:b.b_client ~seq:b.b_seq))
        cmds;
      (* batched: cut the same stream into entries at the random sizes *)
      let kv_b = Raft.Kv.create () in
      let rec take k l =
        match (k, l) with
        | k, x :: r when k > 0 ->
          let a, b = take (k - 1) r in
          (x :: a, b)
        | _, l -> ([], l)
      in
      let rec seal idx cmds cuts =
        match cmds with
        | [] -> ()
        | _ ->
          let n, rest_cuts =
            match cuts with [] -> (3, []) | c :: r -> (c, r)
          in
          let batch, rest = take n cmds in
          let e : Raft.Types.entry =
            match batch with
            | [ (b : Raft.Types.bcmd) ] ->
              { term = 1; index = idx; cmd = b.b_cmd; client_id = b.b_client; seq = b.b_seq }
            | _ ->
              {
                term = 1;
                index = idx;
                cmd = Raft.Types.Batch (Array.of_list batch);
                client_id = -1;
                seq = 0;
              }
          in
          ignore (Raft.Kv.apply kv_b e);
          seal (idx + 1) rest rest_cuts
      in
      seal 1 cmds cuts;
      Raft.Kv.digest kv_seq = Raft.Kv.digest kv_b
      && Raft.Kv.applied_count kv_seq = Raft.Kv.applied_count kv_b
      && Raft.Kv.size kv_seq = Raft.Kv.size kv_b)

(* ------------------------------------------------------------------ *)
(* Network: FIFO per directed link under random latencies *)

let test_net_fifo_property =
  QCheck.Test.make ~name:"net: per-link delivery is FIFO under random latency" ~count:100
    QCheck.(pair (int_range 1 60) (int_range 1 1000))
    (fun (n_msgs, mean_latency) ->
      let engine = Sim.Engine.create ~seed:(Int64.of_int (n_msgs + mean_latency)) () in
      let sched = Depfast.Sched.create engine in
      let net =
        Cluster.Net.create sched
          ~latency:(Sim.Dist.Exponential (float_of_int mean_latency))
          ()
      in
      let a = Cluster.Node.create sched ~id:0 ~name:"a" () in
      let b = Cluster.Node.create sched ~id:1 ~name:"b" () in
      let got = ref [] in
      Cluster.Net.register net a ~handler:(fun ~src:_ _ -> ());
      Cluster.Net.register net b ~handler:(fun ~src:_ m -> got := m :: !got);
      for i = 1 to n_msgs do
        Cluster.Net.send net ~src:0 ~dst:1 i
      done;
      Sim.Engine.run engine;
      List.rev !got = List.init n_msgs (fun i -> i + 1))

(* ------------------------------------------------------------------ *)
(* Event algebra: And/Or/Quorum consistency under random fire subsets *)

let test_event_algebra =
  QCheck.Test.make ~name:"And = Count n, Or = Count 1 on random fire subsets" ~count:300
    QCheck.(pair (int_range 1 10) (list (int_bound 9)))
    (fun (n, fired) ->
      let mk () = List.init n (fun i -> Depfast.Event.rpc_completion ~peer:i ()) in
      let attach parent children =
        List.iter (fun c -> Depfast.Event.add parent ~child:c) children;
        children
      in
      let and_parent = Depfast.Event.and_ () in
      let and_kids = attach and_parent (mk ()) in
      let or_parent = Depfast.Event.or_ () in
      let or_kids = attach or_parent (mk ()) in
      let cnt_parent = Depfast.Event.quorum (Depfast.Event.Count n) in
      let cnt_kids = attach cnt_parent (mk ()) in
      let distinct = List.sort_uniq compare (List.filter (fun i -> i < n) fired) in
      List.iter
        (fun i ->
          Depfast.Event.fire (List.nth and_kids i);
          Depfast.Event.fire (List.nth or_kids i);
          Depfast.Event.fire (List.nth cnt_kids i))
        distinct;
      let k = List.length distinct in
      Depfast.Event.is_ready and_parent = (k = n)
      && Depfast.Event.is_ready cnt_parent = (k = n)
      && Depfast.Event.is_ready or_parent = (k >= 1))

(* ------------------------------------------------------------------ *)
(* Station: completions never exceed server parallelism and conserve jobs *)

let test_station_conservation =
  QCheck.Test.make ~name:"station conserves jobs across random loads" ~count:100
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 1 80) (int_range 1 2000)))
    (fun (servers, works) ->
      let engine = Sim.Engine.create () in
      let sched = Depfast.Sched.create engine in
      let st = Cluster.Station.create sched ~servers ~name:"s" () in
      let done_count = ref 0 in
      List.iter
        (fun w ->
          Depfast.Event.on_fire (Cluster.Station.submit st ~work:w ()) (fun () ->
              incr done_count))
        works;
      Sim.Engine.run engine;
      !done_count = List.length works
      && Cluster.Station.completed_jobs st = List.length works
      && Cluster.Station.queue_length st = 0
      && Cluster.Station.busy_servers st = 0)

(* ------------------------------------------------------------------ *)
(* Hist: quantiles are monotone in q *)

let test_hist_quantile_monotone =
  QCheck.Test.make ~name:"hist quantiles monotone" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 300) (int_bound 5_000_000))
    (fun values ->
      let h = Sim.Hist.create () in
      List.iter (Sim.Hist.add h) values;
      let qs = [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let vals = List.map (Sim.Hist.quantile h) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals && Sim.Hist.quantile h 1.0 = Sim.Hist.max_value h)

(* ------------------------------------------------------------------ *)
(* Timer wheel: any random push/pop/cancel sequence pops in exactly the
   binary heap's order. Deltas mix duplicates (same-instant bursts that
   exercise the due queue), mid-range values (slot scans and cascades) and
   far-future jumps (the heap fallback); cancellation hits live and
   already-popped handles alike. *)

let wheel_ops_gen =
  QCheck.Gen.(
    list_size (int_range 1 400)
      (frequency
         [
           (3, return (`Push 0));
           (6, map (fun d -> `Push d) (int_range 0 40));
           (3, map (fun d -> `Push d) (int_range 0 5_000));
           (1, map (fun d -> `Push (d + (1 lsl 31))) (int_range 0 1000));
           (4, return `Pop);
           (2, map (fun k -> `Cancel k) (int_range 0 1_000_000));
         ]))

let test_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel pop order = heap pop order" ~count:300
    (QCheck.make wheel_ops_gen) (fun ops ->
      let w = Sim.Wheel.create () in
      let h = Sim.Heap.create () in
      let handles = ref [||] and n_handles = ref 0 in
      let id = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Push d ->
            (* both structures see times >= the last popped time, matching
               the engine's clock discipline *)
            let time = Sim.Wheel.pos w + d in
            incr id;
            let wh = Sim.Wheel.push w ~time !id in
            let hh = Sim.Heap.push h ~time !id in
            if !n_handles = Array.length !handles then begin
              let bigger = Array.make (max 8 (2 * !n_handles)) None in
              Array.blit !handles 0 bigger 0 !n_handles;
              handles := bigger
            end;
            !handles.(!n_handles) <- Some (wh, hh);
            incr n_handles
          | `Pop -> (
            match (Sim.Wheel.pop w, Sim.Heap.pop h) with
            | Some (tw, vw), Some (th, vh) -> ok := !ok && tw = th && vw = vh
            | None, None -> ()
            | Some _, None | None, Some _ -> ok := false)
          | `Cancel k ->
            if !n_handles > 0 then begin
              match !handles.(k mod !n_handles) with
              | Some (wh, hh) ->
                Sim.Wheel.cancel w wh;
                Sim.Heap.cancel h hh
              | None -> ()
            end)
        ops;
      let rec drain () =
        match (Sim.Wheel.pop w, Sim.Heap.pop h) with
        | Some (tw, vw), Some (th, vh) ->
          ok := !ok && tw = th && vw = vh;
          drain ()
        | None, None -> ()
        | Some _, None | None, Some _ -> ok := false
      in
      drain ();
      !ok && Sim.Wheel.is_empty w && Sim.Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Trace ring buffer: capacity bound, drop-oldest policy, dropped counter *)

let mk_wait cid : Depfast.Trace.wait =
  {
    cid;
    node = 0;
    coroutine = "c";
    event = Depfast.Event.signal ();
    quorum_k = 1;
    quorum_n = 1;
    t_start = Sim.Time.zero;
    t_end = Sim.Time.zero;
    outcome = Depfast.Trace.Ready;
    stallers_memo = Some [];
  }

let test_trace_ring_drop_oldest () =
  let tr = Depfast.Trace.create ~capacity:4 ~enabled:true () in
  for i = 1 to 6 do
    Depfast.Trace.record_wait tr (mk_wait i)
  done;
  Alcotest.(check int) "bounded by capacity" 4 (Depfast.Trace.wait_count tr);
  Alcotest.(check int) "two overwritten" 2 (Depfast.Trace.dropped tr);
  Alcotest.(check (list int))
    "oldest dropped, order kept" [ 3; 4; 5; 6 ]
    (List.map (fun (w : Depfast.Trace.wait) -> w.cid) (Depfast.Trace.waits tr));
  Depfast.Trace.clear tr;
  Alcotest.(check int) "clear empties" 0 (Depfast.Trace.wait_count tr);
  Alcotest.(check int) "clear resets dropped" 0 (Depfast.Trace.dropped tr);
  Depfast.Trace.record_wait tr (mk_wait 9);
  Alcotest.(check (list int))
    "records again after clear" [ 9 ]
    (List.map (fun (w : Depfast.Trace.wait) -> w.cid) (Depfast.Trace.waits tr))

let test_trace_ring_disabled () =
  let tr = Depfast.Trace.create ~capacity:4 () in
  Depfast.Trace.record_wait tr (mk_wait 1);
  Alcotest.(check int) "disabled records nothing" 0 (Depfast.Trace.wait_count tr);
  Depfast.Trace.enable tr;
  Depfast.Trace.record_wait tr (mk_wait 2);
  Alcotest.(check int) "enabled records" 1 (Depfast.Trace.wait_count tr)

let suite =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest test_rlog_model;
        QCheck_alcotest.to_alcotest test_rlog_slice_coherent;
        QCheck_alcotest.to_alcotest test_rlog_view_matches_slice;
        QCheck_alcotest.to_alcotest test_kv_exactly_once;
        QCheck_alcotest.to_alcotest test_batched_apply_equiv;
        QCheck_alcotest.to_alcotest test_net_fifo_property;
        QCheck_alcotest.to_alcotest test_event_algebra;
        QCheck_alcotest.to_alcotest test_station_conservation;
        QCheck_alcotest.to_alcotest test_hist_quantile_monotone;
        QCheck_alcotest.to_alcotest test_wheel_matches_heap;
      ] );
    ( "trace.ring",
      [
        Alcotest.test_case "drop-oldest policy" `Quick test_trace_ring_drop_oldest;
        Alcotest.test_case "disabled is a no-op" `Quick test_trace_ring_disabled;
      ] );
  ]
