(* Tests for the core concurrency utilities (Mutex, Condvar) and the
   workload library (YCSB generator, metrics, closed-loop driver). *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_sched ?(seed = 1L) () = Depfast.Sched.create (Sim.Engine.create ~seed ())

(* ------------------------------------------------------------------ *)
(* Condvar *)

let test_condvar_broadcast_wakes_all () =
  let s = make_sched () in
  let cv = Depfast.Condvar.create () in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Depfast.Sched.spawn s (fun () ->
        Depfast.Condvar.wait s cv;
        incr woken)
  done;
  ignore (Sim.Engine.schedule (Depfast.Sched.engine s) ~delay:10 (fun () ->
      Depfast.Condvar.broadcast cv));
  Depfast.Sched.run s;
  check_int "all woken" 3 !woken

let test_condvar_renews () =
  let s = make_sched () in
  let cv = Depfast.Condvar.create () in
  let phases = ref [] in
  Depfast.Sched.spawn s (fun () ->
      Depfast.Condvar.wait s cv;
      phases := 1 :: !phases;
      Depfast.Condvar.wait s cv;
      phases := 2 :: !phases);
  ignore (Sim.Engine.schedule (Depfast.Sched.engine s) ~delay:10 (fun () ->
      Depfast.Condvar.broadcast cv));
  ignore (Sim.Engine.schedule (Depfast.Sched.engine s) ~delay:20 (fun () ->
      Depfast.Condvar.broadcast cv));
  Depfast.Sched.run s;
  Alcotest.(check (list int)) "two distinct waits" [ 1; 2 ] (List.rev !phases)

let test_condvar_timeout () =
  let s = make_sched () in
  let cv = Depfast.Condvar.create () in
  let outcome = ref Depfast.Sched.Ready in
  Depfast.Sched.spawn s (fun () ->
      outcome := Depfast.Condvar.wait_timeout s cv (Sim.Time.ms 5));
  Depfast.Sched.run s;
  check_bool "timed out" true (!outcome = Depfast.Sched.Timed_out)

(* ------------------------------------------------------------------ *)
(* Mutex *)

let test_mutex_mutual_exclusion () =
  let s = make_sched () in
  let mu = Depfast.Mutex.create () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  for _ = 1 to 5 do
    Depfast.Sched.spawn s (fun () ->
        Depfast.Mutex.with_lock s mu (fun () ->
            incr inside;
            max_inside := max !max_inside !inside;
            Depfast.Sched.sleep s (Sim.Time.ms 1);
            decr inside))
  done;
  Depfast.Sched.run s;
  check_int "never concurrent" 1 !max_inside

let test_mutex_fifo_order () =
  let s = make_sched () in
  let mu = Depfast.Mutex.create () in
  let order = ref [] in
  for i = 1 to 4 do
    Depfast.Sched.spawn s (fun () ->
        (* stagger arrivals *)
        Depfast.Sched.sleep s (Sim.Time.us i);
        Depfast.Mutex.with_lock s mu (fun () ->
            order := i :: !order;
            Depfast.Sched.sleep s (Sim.Time.ms 1)))
  done;
  Depfast.Sched.run s;
  Alcotest.(check (list int)) "acquired in arrival order" [ 1; 2; 3; 4 ] (List.rev !order)

let test_mutex_exception_releases () =
  let s = make_sched () in
  let mu = Depfast.Mutex.create () in
  let second_ran = ref false in
  Depfast.Sched.spawn s (fun () ->
      (try Depfast.Mutex.with_lock s mu (fun () -> failwith "boom")
       with Failure _ -> ());
      check_bool "released" false (Depfast.Mutex.locked mu));
  Depfast.Sched.run s;
  Depfast.Sched.spawn s (fun () ->
      Depfast.Mutex.with_lock s mu (fun () -> second_ran := true));
  Depfast.Sched.run s;
  check_bool "lock reusable" true !second_ran

let test_mutex_unlock_unheld_raises () =
  let mu = Depfast.Mutex.create () in
  Alcotest.check_raises "unlock unheld" (Invalid_argument "Mutex.unlock: not locked")
    (fun () -> Depfast.Mutex.unlock mu)

(* ------------------------------------------------------------------ *)
(* YCSB *)

let test_ycsb_update_heavy_shape () =
  let wl = Workload.Ycsb.update_heavy in
  check_int "500K records" 500_000 wl.Workload.Ycsb.record_count;
  check_int "1KiB values" 1024 wl.Workload.Ycsb.value_size;
  check_bool "write-only" true (wl.Workload.Ycsb.read_proportion = 0.0)

let test_ycsb_ops_valid () =
  let wl = Workload.Ycsb.scaled ~records:100 Workload.Ycsb.update_heavy in
  let gen = Workload.Ycsb.make_gen wl (Sim.Rng.create 5L) in
  for _ = 1 to 1000 do
    match Workload.Ycsb.next_op gen with
    | Workload.Ycsb.Update { key; value } ->
      check_bool "key prefix" true (String.length key > 4 && String.sub key 0 4 = "user");
      check_int "value size" 1024 (String.length value)
    | Workload.Ycsb.Read _ -> Alcotest.fail "write-only workload emitted a read"
  done

let test_ycsb_read_mix () =
  let wl = { Workload.Ycsb.update_heavy with read_proportion = 0.5; record_count = 100 } in
  let gen = Workload.Ycsb.make_gen wl (Sim.Rng.create 6L) in
  let reads = ref 0 in
  for _ = 1 to 2000 do
    match Workload.Ycsb.next_op gen with
    | Workload.Ycsb.Read _ -> incr reads
    | Workload.Ycsb.Update _ -> ()
  done;
  check_bool "about half reads" true (!reads > 850 && !reads < 1150)

let test_ycsb_zipfian_skew () =
  let wl = Workload.Ycsb.scaled ~records:1000 Workload.Ycsb.update_heavy in
  let gen = Workload.Ycsb.make_gen wl (Sim.Rng.create 7L) in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 20_000 do
    match Workload.Ycsb.next_op gen with
    | Workload.Ycsb.Update { key; _ } ->
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
    | Workload.Ycsb.Read _ -> ()
  done;
  let hottest = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  check_bool "zipfian head" true (hottest > 20_000 / 100)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics_with ?(shed = 0) ?(leader_fsyncs = 0) latencies duration =
  let h = Sim.Hist.create () in
  List.iter (Sim.Hist.add h) latencies;
  {
    Workload.Metrics.duration;
    completed = List.length latencies;
    failed = 0;
    shed;
    latency = h;
    leader_utilization = 0.5;
    leader_crashed = false;
    leader_fsyncs;
  }

let test_metrics_throughput () =
  let m = metrics_with [ 100; 200; 300; 400 ] (Sim.Time.sec 2) in
  Alcotest.(check (float 1e-9)) "ops/s" 2.0 (Workload.Metrics.throughput m)

let test_metrics_normalize () =
  let base = metrics_with [ 1000; 1000; 1000; 1000 ] (Sim.Time.sec 1) in
  let faulty = metrics_with [ 2000; 2000 ] (Sim.Time.sec 1) in
  let tput, mean, _ = Workload.Metrics.normalize faulty ~baseline:base in
  Alcotest.(check (float 1e-9)) "tput halved" 0.5 tput;
  Alcotest.(check (float 0.1)) "latency doubled" 2.0 mean

let test_metrics_shed_and_fsyncs () =
  (* 4 completed, 1 shed: shed rate over offered load; 2 fsyncs over 4
     committed ops = 0.5 fsyncs/op (group commit amortization) *)
  let m = metrics_with ~shed:1 ~leader_fsyncs:2 [ 100; 200; 300; 400 ] (Sim.Time.sec 1) in
  Alcotest.(check (float 1e-9)) "shed rate" 0.2 (Workload.Metrics.shed_rate m);
  Alcotest.(check (float 1e-9)) "fsyncs per op" 0.5 (Workload.Metrics.fsyncs_per_op m);
  (* degenerate cases must not divide by zero *)
  let empty = metrics_with [] (Sim.Time.sec 1) in
  Alcotest.(check (float 1e-9)) "no offered load" 0.0 (Workload.Metrics.shed_rate empty);
  Alcotest.(check (float 1e-9)) "no completed ops" 0.0 (Workload.Metrics.fsyncs_per_op empty)

(* ------------------------------------------------------------------ *)
(* Driver *)

let test_driver_closed_loop () =
  let s = make_sched () in
  let node = Cluster.Node.create s ~id:0 ~name:"client" () in
  (* each op takes exactly 1ms: expect ~1000 ops/s per client *)
  let client =
    {
      Workload.Driver.node;
      run_op =
        (fun _ ->
          Depfast.Sched.sleep s (Sim.Time.ms 1);
          Workload.Driver.Committed);
    }
  in
  let m =
    Workload.Driver.run s ~clients:[ client; client ]
      ~workload:(Workload.Ycsb.scaled ~records:100 Workload.Ycsb.update_heavy)
      ~warmup:(Sim.Time.ms 100) ~duration:(Sim.Time.sec 1) ()
  in
  check_bool "about 2000 ops/s" true
    (Workload.Metrics.throughput m > 1900.0 && Workload.Metrics.throughput m <= 2100.0);
  check_bool "latency ~1ms" true
    (Float.abs (Workload.Metrics.mean_latency_ms m -. 1.0) < 0.05)

let test_driver_counts_failures () =
  let s = make_sched () in
  let node = Cluster.Node.create s ~id:0 ~name:"client" () in
  let flip = ref false in
  let client =
    {
      Workload.Driver.node;
      run_op =
        (fun _ ->
          Depfast.Sched.sleep s (Sim.Time.ms 1);
          flip := not !flip;
          if !flip then Workload.Driver.Committed else Workload.Driver.Failed);
    }
  in
  let m =
    Workload.Driver.run s ~clients:[ client ]
      ~workload:(Workload.Ycsb.scaled ~records:100 Workload.Ycsb.update_heavy)
      ~warmup:0 ~duration:(Sim.Time.ms 100) ()
  in
  check_bool "failures counted" true (m.Workload.Metrics.failed > 0);
  check_bool "successes counted" true (m.Workload.Metrics.completed > 0)

let test_driver_warmup_excluded () =
  let s = make_sched () in
  let node = Cluster.Node.create s ~id:0 ~name:"client" () in
  let ops = ref 0 in
  let client =
    {
      Workload.Driver.node;
      run_op =
        (fun _ ->
          incr ops;
          Depfast.Sched.sleep s (Sim.Time.ms 10);
          Workload.Driver.Committed);
    }
  in
  let m =
    Workload.Driver.run s ~clients:[ client ]
      ~workload:(Workload.Ycsb.scaled ~records:100 Workload.Ycsb.update_heavy)
      ~warmup:(Sim.Time.ms 500) ~duration:(Sim.Time.ms 500) ()
  in
  (* ~100 ops issued total but only ~50 fall in the measured window *)
  check_bool "warmup excluded" true (m.Workload.Metrics.completed < !ops)

let test_driver_boundary_op_excluded () =
  let s = make_sched () in
  let node = Cluster.Node.create s ~id:0 ~name:"client" () in
  let first = ref true in
  let client =
    {
      Workload.Driver.node;
      run_op =
        (fun _ ->
          (* the first op starts at t=0 (during warmup) and completes at
             t=600ms, inside the measurement window; later ops take 1ms *)
          let d = if !first then Sim.Time.ms 600 else Sim.Time.ms 1 in
          first := false;
          Depfast.Sched.sleep s d;
          Workload.Driver.Committed);
    }
  in
  let m =
    Workload.Driver.run s ~clients:[ client ]
      ~workload:(Workload.Ycsb.scaled ~records:100 Workload.Ycsb.update_heavy)
      ~warmup:(Sim.Time.ms 500) ~duration:(Sim.Time.ms 500) ()
  in
  check_bool "completed some" true (m.Workload.Metrics.completed > 0);
  (* the straddling op must not be recorded with its warmup-inflated
     latency: everything in the histogram is a ~1ms op *)
  check_bool "no warmup-inflated latency" true
    (Sim.Hist.max_value m.Workload.Metrics.latency < Sim.Time.ms 10)

let test_driver_shed_at_warmup_boundary () =
  let s = make_sched () in
  let node = Cluster.Node.create s ~id:0 ~name:"client" () in
  let first = ref true in
  let client =
    {
      Workload.Driver.node;
      run_op =
        (fun _ ->
          (* the only Shed op straddles the warmup boundary (starts at t=0,
             resolves at t=600ms inside the window): like a straddling
             commit, it must not leak into the windowed counters *)
          if !first then begin
            first := false;
            Depfast.Sched.sleep s (Sim.Time.ms 600);
            Workload.Driver.Shed
          end
          else begin
            Depfast.Sched.sleep s (Sim.Time.ms 1);
            Workload.Driver.Committed
          end);
    }
  in
  let m =
    Workload.Driver.run s ~clients:[ client ]
      ~workload:(Workload.Ycsb.scaled ~records:100 Workload.Ycsb.update_heavy)
      ~warmup:(Sim.Time.ms 500) ~duration:(Sim.Time.ms 500) ()
  in
  check_bool "completed some" true (m.Workload.Metrics.completed > 0);
  check_int "straddling shed excluded" 0 m.Workload.Metrics.shed

let test_driver_shed_counted_separately () =
  let s = make_sched () in
  let node = Cluster.Node.create s ~id:0 ~name:"client" () in
  let flip = ref false in
  let client =
    {
      Workload.Driver.node;
      run_op =
        (fun _ ->
          Depfast.Sched.sleep s (Sim.Time.ms 1);
          flip := not !flip;
          if !flip then Workload.Driver.Committed else Workload.Driver.Shed);
    }
  in
  let m =
    Workload.Driver.run s ~clients:[ client ]
      ~workload:(Workload.Ycsb.scaled ~records:100 Workload.Ycsb.update_heavy)
      ~warmup:0 ~duration:(Sim.Time.ms 100) ()
  in
  check_bool "shed counted" true (m.Workload.Metrics.shed > 0);
  check_bool "completed counted" true (m.Workload.Metrics.completed > 0);
  check_int "shed ops are not failures" 0 m.Workload.Metrics.failed;
  (* strict alternation: shed and completed within one of each other *)
  check_bool "alternating split" true
    (abs (m.Workload.Metrics.shed - m.Workload.Metrics.completed) <= 1);
  check_bool "shed rate about half" true
    (Float.abs (Workload.Metrics.shed_rate m -. 0.5) < 0.05)

let suite =
  [
    ( "depfast.condvar",
      [
        Alcotest.test_case "broadcast wakes all" `Quick test_condvar_broadcast_wakes_all;
        Alcotest.test_case "renews after broadcast" `Quick test_condvar_renews;
        Alcotest.test_case "timeout" `Quick test_condvar_timeout;
      ] );
    ( "depfast.mutex",
      [
        Alcotest.test_case "mutual exclusion" `Quick test_mutex_mutual_exclusion;
        Alcotest.test_case "FIFO order" `Quick test_mutex_fifo_order;
        Alcotest.test_case "exception releases" `Quick test_mutex_exception_releases;
        Alcotest.test_case "unlock unheld raises" `Quick test_mutex_unlock_unheld_raises;
      ] );
    ( "workload.ycsb",
      [
        Alcotest.test_case "paper workload shape" `Quick test_ycsb_update_heavy_shape;
        Alcotest.test_case "ops valid" `Quick test_ycsb_ops_valid;
        Alcotest.test_case "read mix" `Quick test_ycsb_read_mix;
        Alcotest.test_case "zipfian skew" `Quick test_ycsb_zipfian_skew;
      ] );
    ( "workload.metrics",
      [
        Alcotest.test_case "throughput" `Quick test_metrics_throughput;
        Alcotest.test_case "normalization" `Quick test_metrics_normalize;
        Alcotest.test_case "shed rate and fsyncs per op" `Quick test_metrics_shed_and_fsyncs;
      ] );
    ( "workload.driver",
      [
        Alcotest.test_case "closed loop" `Quick test_driver_closed_loop;
        Alcotest.test_case "failures counted" `Quick test_driver_counts_failures;
        Alcotest.test_case "warmup excluded" `Quick test_driver_warmup_excluded;
        Alcotest.test_case "boundary op excluded" `Quick test_driver_boundary_op_excluded;
        Alcotest.test_case "shed at warmup boundary excluded" `Quick
          test_driver_shed_at_warmup_boundary;
        Alcotest.test_case "shed counted separately" `Quick
          test_driver_shed_counted_separately;
      ] );
  ]
