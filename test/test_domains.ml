(* Tests for the depfast-domains pass and its DPOR feed: each verdict
   class has a clean fixture and a broken (or pragma'd) twin, the
   interprocedural effect fixpoint is exercised through a callee-only
   write, regressions pin the real tree's inventory, and the explorer
   tests prove the independence feed prunes provably-disjoint scenarios
   while the probe cross-check catches a seeded false-independence
   claim. *)

module F = Analysis.Finding
module D = Analysis.Domains
module G = Analysis.Growth
module Ef = Analysis.Effects
module E = Check.Explore

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_rules = Alcotest.(check (list string))

let rules fs = List.sort_uniq compare (List.map (fun f -> f.F.rule) fs)

let fixture name =
  let cands = [ Filename.concat "fixtures" name; Filename.concat "test/fixtures" name ] in
  match List.find_opt Sys.file_exists cands with
  | Some p -> p
  | None -> Alcotest.fail ("fixture not found: " ^ name)

let analyze name = D.analyze_files [ fixture name ]

let cert_for certs ~site = List.find_opt (fun c -> c.D.c_site = site) certs

let has_class c cls =
  String.length c.D.c_evidence >= String.length cls
  && String.sub c.D.c_evidence 0 (String.length cls) = cls

let require_cert certs ~site ~cls ~verdict =
  match cert_for certs ~site with
  | Some c ->
    check_bool (Printf.sprintf "%s verdict" site) true (c.D.c_verdict = verdict);
    check_bool (Printf.sprintf "%s evidence class is %s" site cls) true (has_class c cls);
    c
  | None -> Alcotest.failf "no domain certificate for site %s" site

(* ------------------------------------------------------------------ *)
(* verdict classes: clean fixture vs broken twin, one pair per class *)

let test_immutable_certified () =
  let fs, certs, _ = analyze "dom_immutable_ok.ml" in
  check_rules "read-only table is clean" [] (rules fs);
  let c =
    require_cert certs ~site:"Dom_immutable_ok.limits" ~cls:D.class_immutable
      ~verdict:G.Bounded
  in
  Alcotest.(check string) "inventoried as a hashtbl" "hashtbl" c.D.c_kind

let test_immutable_broken_flagged () =
  let fs, certs, _ = analyze "dom_immutable_bad.ml" in
  check_rules "one unlocked write breaks the verdict" [ F.unsafe_shared_state ]
    (rules fs);
  ignore
    (require_cert certs ~site:"Dom_immutable_bad.limits" ~cls:D.class_unsafe
       ~verdict:G.Flagged);
  check_bool "finding sited at the cell definition" true
    (List.exists
       (fun f -> match f.F.loc with F.File { line; _ } -> line = 4 | F.Node _ -> false)
       fs)

let test_engine_owned_certified () =
  let fs, certs, _ = analyze "dom_engine_ok.ml" in
  check_rules "threaded record writes are domain-local" [] (rules fs);
  ignore (require_cert certs ~site:".depth" ~cls:D.class_engine ~verdict:G.Bounded)

let test_engine_broken_global_flagged () =
  (* same field writes, but the owner record is itself a module-level
     global — the sharing judgment lands on the base cell *)
  let fs, certs, _ = analyze "dom_engine_bad.ml" in
  check_rules "global record base flagged" [ F.unsafe_shared_state ] (rules fs);
  ignore
    (require_cert certs ~site:"Dom_engine_bad.shared" ~cls:D.class_unsafe
       ~verdict:G.Flagged);
  ignore (require_cert certs ~site:".depth" ~cls:D.class_engine ~verdict:G.Bounded)

let test_guarded_certified () =
  let fs, certs, _ = analyze "dom_guarded_ok.ml" in
  check_rules "all writes under the Mutex region" [] (rules fs);
  ignore
    (require_cert certs ~site:"Dom_guarded_ok.hits" ~cls:D.class_guarded
       ~verdict:G.Bounded)

let test_guarded_broken_flagged () =
  let fs, certs, _ = analyze "dom_guarded_bad.ml" in
  check_rules "one write path outside the lock forfeits guarded"
    [ F.unsafe_shared_state ] (rules fs);
  ignore
    (require_cert certs ~site:"Dom_guarded_bad.hits" ~cls:D.class_unsafe
       ~verdict:G.Flagged)

let test_unsafe_flagged_error () =
  let fs, certs, _ = analyze "dom_unsafe_bad.ml" in
  check_rules "bare shared ref flagged" [ F.unsafe_shared_state ] (rules fs);
  check_bool "error severity" true (List.for_all (fun f -> f.F.severity = F.Error) fs);
  let c =
    require_cert certs ~site:"Dom_unsafe_bad.total" ~cls:D.class_unsafe
      ~verdict:G.Flagged
  in
  check_int "certificate sited at the cell definition" 5 c.D.c_line

let test_unsafe_pragma_allowed () =
  let fs, _, _ = analyze "dom_unsafe_allowed.ml" in
  check_bool "finding still reported" true (fs <> []);
  check_bool "but carried as allowed" true (List.for_all (fun f -> f.F.allowed) fs);
  check_rules "nothing gates" [] (rules (F.gating ~strict:true fs))

(* ------------------------------------------------------------------ *)
(* the effect fixpoint: dom_unsafe_bad's [add] never writes the cell
   directly — the write flows up from [raw_add] through the call graph *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_interproc_write_propagates () =
  let path = fixture "dom_unsafe_bad.ml" in
  let eff = Ef.compute (G.load [ (path, read_file path) ]) in
  match Ef.fn_summary eff "Dom_unsafe_bad.add" with
  | None -> Alcotest.fail "no summary for Dom_unsafe_bad.add"
  | Some s ->
    check_bool "callee write visible in the caller's closed footprint" true
      (List.mem "Dom_unsafe_bad.total" s.Analysis.Summary.writes)

(* ------------------------------------------------------------------ *)
(* the real tree: inventory counts pinned, every unsafe-shared verdict
   pragma'd, and the key cells carry the expected verdicts *)

let rec ml_files_under dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun name ->
         let p = Filename.concat dir name in
         if Sys.is_directory p then ml_files_under p
         else if Filename.check_suffix name ".ml" && not (Filename.check_suffix name ".pp.ml")
         then [ p ]
         else [])

let tree () =
  match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
  | None -> None (* sources not materialized in this sandbox *)
  | Some root -> Some (D.analyze_files (List.sort compare (ml_files_under root)))

let test_tree_inventory_pinned () =
  match tree () with
  | None -> ()
  | Some (fs, certs, footprints) ->
    check_int "every top-level mutable cell carries a certificate" 171
      (List.length certs);
    let flagged = List.filter (fun c -> c.D.c_verdict = G.Flagged) certs in
    Alcotest.(check (list string)) "exactly the three seeded fixture cells unsafe"
      [ "Fixture_dom_a.track"; "Fixture_spg.mailbox"; "Fixtures.backlog" ]
      (List.sort compare (List.map (fun c -> c.D.c_site) flagged));
    check_bool "both acknowledged by pragma" true (List.for_all (fun f -> f.F.allowed) fs);
    check_rules "zero unallowed unsafe-shared verdicts" []
      (rules (F.gating ~strict:true fs));
    check_bool "every file has a footprint row" true
      (List.length footprints > 60)

let test_tree_key_verdicts () =
  match tree () with
  | None -> ()
  | Some (_, certs, _) ->
    let c =
      require_cert certs ~site:"Event.next_id" ~cls:D.class_guarded ~verdict:G.Bounded
    in
    Alcotest.(check string) "next_id is the Atomic fix" "atomic" c.D.c_kind;
    ignore
      (require_cert certs ~site:"Event.dummy" ~cls:D.class_immutable ~verdict:G.Bounded);
    ignore
      (require_cert certs ~site:"Fixture_dom_b.counter" ~cls:D.class_guarded
         ~verdict:G.Bounded)

(* ------------------------------------------------------------------ *)
(* the DPOR feed: file-level independence from the effect footprints *)

let certs_for_tree =
  lazy
    (match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
    | None -> None
    | Some root -> Some (Check.Certificate.build ~roots:[ root ] ()))

let test_independence_relation () =
  match Lazy.force certs_for_tree with
  | None -> ()
  | Some certs ->
    let indep = Check.Certificate.independent certs in
    check_bool "disjoint fixture pair independent" true
      (indep "lib/check/fixture_dom_a.ml" "lib/check/fixture_dom_b.ml");
    check_bool "symmetric" true
      (indep "lib/check/fixture_dom_b.ml" "lib/check/fixture_dom_a.ml");
    check_bool "same-file pairs never independent" false
      (indep "lib/check/fixture_dom_a.ml" "lib/check/fixture_dom_a.ml");
    check_bool "shared-cell pair conflicts" false
      (indep "lib/check/fixtures.ml" "lib/check/registry.ml");
    check_bool "unknown files never independent" false
      (indep "lib/check/fixture_dom_a.ml" "lib/nowhere/ghost.ml")

(* ------------------------------------------------------------------ *)
(* the explorer: the feed collapses the provably-disjoint scenario to a
   single schedule, leaves same-file scenarios untouched, and the probe
   cross-check catches the seeded false-independence claim *)

let scenario name =
  match Check.Registry.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s not registered" name

let budget = { E.default_budget with E.max_schedules = 400 }

let test_disjoint_scenario_pruned () =
  match Lazy.force certs_for_tree with
  | None -> ()
  | Some certs ->
    let res = E.explore ~budget ~certs (scenario "domains-disjoint") in
    check_rules "clean under the feed" [] (rules res.E.findings);
    check_int "one schedule suffices for two disjoint files" 1 res.E.schedules;
    check_bool "the feed did the pruning" true (res.E.pruned > 0);
    let off = E.explore ~budget (scenario "domains-disjoint") in
    check_rules "still clean without the feed" [] (rules off.E.findings);
    check_bool "without the feed the interleavings come back" true (off.E.schedules > 1)

let test_false_independence_caught () =
  match Lazy.force certs_for_tree with
  | None -> ()
  | Some certs ->
    let res = E.explore ~budget ~certs (scenario "domains-false-independence") in
    check_bool "probe cross-check raises certificate-mismatch" true
      (List.mem F.certificate_mismatch (rules res.E.findings));
    check_bool "the mismatch names the probed cell" true
      (List.exists
         (fun f ->
           f.F.rule = F.certificate_mismatch
           && String.length f.F.message > 0
           &&
           let re = "dom.track" in
           let rec find i =
             i + String.length re <= String.length f.F.message
             && (String.sub f.F.message i (String.length re) = re || find (i + 1))
           in
           find 0)
         res.E.findings);
    let off = E.explore ~budget (scenario "domains-false-independence") in
    check_rules "no feed, no claim, no mismatch" [] (rules off.E.findings)

let test_probe_sees_both_writers () =
  (* the raw run-level evidence behind the cross-check: the program-order
     schedule already shows both files mutating the probed queue *)
  let r = E.run_one (scenario "domains-false-independence") ~prefix:[||] ~budget in
  match List.find_opt (fun (label, _, _) -> label = "dom.track") r.E.r_probes with
  | None -> Alcotest.fail "no dom.track probe in the run record"
  | Some (_, owner, writers) ->
    let files = List.sort_uniq compare (owner :: writers) in
    check_bool "fixture A mutates the cell" true
      (List.mem "lib/check/fixture_dom_a.ml" files);
    check_bool "fixture B mutates the cell through the escaped alias" true
      (List.mem "lib/check/fixture_dom_b.ml" files)

let test_broken_quorum_unaffected () =
  (* same-file pairs are never independent, so the feed must neither
     prune nor change coverage on the existing seeded scenario *)
  match Lazy.force certs_for_tree with
  | None -> ()
  | Some certs ->
    let sc = scenario "broken-quorum" in
    let on = E.explore ~certs sc in
    let off = E.explore sc in
    check_int "identical schedule count" off.E.schedules on.E.schedules;
    check_int "feed prunes nothing on a same-file scenario" 0 on.E.pruned;
    check_bool "the quorum violation is still detected" true (on.E.findings <> []);
    (* feed-on also carries the wait-structure certificate-mismatch for
       the seeded violation in a certified-clean file — the pre-existing
       cross-check; the dynamic findings themselves must be identical *)
    check_rules "identical dynamic findings either way" (rules off.E.findings)
      (rules
         (List.filter (fun f -> f.F.rule <> F.certificate_mismatch) on.E.findings))

let suite =
  [
    ( "domains.verdicts",
      [
        Alcotest.test_case "read-only table immutable" `Quick test_immutable_certified;
        Alcotest.test_case "written table flagged" `Quick test_immutable_broken_flagged;
        Alcotest.test_case "threaded record engine-owned" `Quick
          test_engine_owned_certified;
        Alcotest.test_case "global record base flagged" `Quick
          test_engine_broken_global_flagged;
        Alcotest.test_case "mutex-guarded counter certified" `Quick
          test_guarded_certified;
        Alcotest.test_case "unlocked write path flagged" `Quick
          test_guarded_broken_flagged;
        Alcotest.test_case "bare shared ref is an error" `Quick test_unsafe_flagged_error;
        Alcotest.test_case "pragma acknowledges without gating" `Quick
          test_unsafe_pragma_allowed;
        Alcotest.test_case "write propagates through callees" `Quick
          test_interproc_write_propagates;
      ] );
    ( "domains.tree",
      [
        Alcotest.test_case "inventory counts pinned" `Quick test_tree_inventory_pinned;
        Alcotest.test_case "key cell verdicts" `Quick test_tree_key_verdicts;
      ] );
    ( "domains.feed",
      [
        Alcotest.test_case "independence relation" `Quick test_independence_relation;
        Alcotest.test_case "disjoint scenario collapses to one schedule" `Quick
          test_disjoint_scenario_pruned;
        Alcotest.test_case "seeded false independence caught" `Quick
          test_false_independence_caught;
        Alcotest.test_case "probes record both writers" `Quick
          test_probe_sees_both_writers;
        Alcotest.test_case "broken-quorum coverage unchanged" `Quick
          test_broken_quorum_unaffected;
      ] );
  ]
