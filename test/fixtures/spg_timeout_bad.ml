(* depfast-spg fixture: an [Event.and_] over two peers' replies is
   fate-sharing with BOTH of them — all children must fire — and this
   one has no timeout escape. Expect [red-exposure] on the and_ wait. *)

let settle sched rpc =
  let a = Rpc.call rpc ~peer:1 "prepare" in
  let b = Rpc.call rpc ~peer:2 "prepare" in
  let both = Event.and_ [ a; b ] in
  Sched.wait sched both
