(* A majority quorum waited on with no deadline, on the RPC-handler
   path: green to the wait-structure rules (the wait is quorum-shaped),
   but a fail-slow minority still delays it without bound. *)

let replicate sched peers =
  let q = Depfast.Event.quorum ~label:"acks" Depfast.Event.Majority in
  List.iter
    (fun peer -> Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer ()))
    peers;
  Depfast.Sched.wait sched q

let handle sched peers req =
  ignore req;
  replicate sched peers

let serve rpc node sched peers =
  Cluster.Rpc.serve rpc ~node ~handler:(fun ~src req ->
      ignore src;
      handle sched peers req)
