(* fixture: the other half — [archive] holds snap_mu and calls back into
   Cycle_left, which acquires log_mu: snap_mu -> log_mu. Either file
   alone is clean; together the order graph has a cycle. *)
let snap_mu = Depfast.Mutex.create ~label:"right-snap" ()

let sync sched = Depfast.Mutex.with_lock sched snap_mu (fun () -> ())

let archive sched =
  Depfast.Mutex.with_lock sched snap_mu (fun () -> Cycle_left.flush sched)
