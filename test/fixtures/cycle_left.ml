(* fixture: half of a two-module lock-order cycle. [checkpoint] holds
   log_mu and calls into Cycle_right, which acquires snap_mu — so the
   static acquisition order here is log_mu -> snap_mu. *)
let log_mu = Depfast.Mutex.create ~label:"left-log" ()

let flush sched = Depfast.Mutex.with_lock sched log_mu (fun () -> ())

let checkpoint sched =
  Depfast.Mutex.with_lock sched log_mu (fun () -> Cycle_right.sync sched)
