(* fixture: a perfectly green quorum wait — per-file this module is
   clean, but it does suspend, which matters to anyone calling it with
   a lock held *)
let await_majority sched ~peers =
  let q = Depfast.Event.quorum Depfast.Event.Majority in
  List.iter
    (fun peer -> Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer ()))
    peers;
  Depfast.Sched.wait sched q
