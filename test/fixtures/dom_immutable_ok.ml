(* immutable-after-init: a module-level table built once and only ever
   read — safe to share across domains by construction *)

let limits : (string, int) Hashtbl.t = Hashtbl.create 8

let lookup k = Hashtbl.find_opt limits k
let known k = Hashtbl.mem limits k
