(* depfast-spg fixture: the bounded twin of spg_disk_bad — the same
   disk-slow exposure, but the wait carries a deadline, so the red wait
   is covered and the pass certifies it without a finding. *)

let append sched disk payload =
  let done_ = Disk.write disk payload in
  match Sched.wait_timeout sched done_ (Sim.Time.ms 50) with
  | Sched.Ready -> true
  | Sched.Timed_out -> false
