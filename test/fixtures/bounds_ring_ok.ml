(* The same handler shape, bounded: the producing path checks the ring's
   occupancy against a capacity before enqueueing, so a slow consumer
   costs requests (shed at admission) instead of memory. *)

let ring = Queue.create ()
let cap = 64

let submit frame = if cap > Queue.length ring then Queue.add frame ring

let handle ~src req =
  ignore src;
  submit req;
  None

let serve rpc node =
  Cluster.Rpc.serve rpc ~node ~handler:(fun ~src req -> handle ~src req)
