(* fixture: naked wait on a single rpc completion — red-wait, and since it
   is untimed, unbounded-wait too *)
let replicate sched ~peer =
  let ack = Depfast.Event.rpc_completion ~peer () in
  Depfast.Sched.wait sched ack;
  ack
