(* The client-admission shape from the batched leader, bounded: the RPC
   handler checks the admission queue's depth against a capacity before
   enqueueing (shedding the request otherwise), and the batcher's
   forming buffer is reset wholesale at every flush — so neither the
   queue nor the cons accumulator can outgrow one batch under a slow
   consumer. *)

type batcher = { mutable forming : int list }

let b = { forming = [] }
let admit_q = Queue.create ()
let cap = 8

let admit req = if cap <= Queue.length admit_q then () else Queue.add req admit_q

let flush () =
  let sealed = List.rev b.forming in
  b.forming <- [];
  sealed

let seal req =
  b.forming <- req :: b.forming;
  ignore (flush ())

let serve rpc node =
  Cluster.Rpc.serve rpc ~node ~handler:(fun ~src req ->
      ignore src;
      admit req;
      None);
  Cluster.Node.spawn node ~name:"batcher" (fun () -> seal 1)
