(* the broken twin of dom_engine_ok: the record itself is a module-level
   global, so the field writes land on shared state after all *)

type t = { mutable depth : int; cap : int }

let shared = { depth = 0; cap = 8 }

let bump () = shared.depth <- shared.depth + 1
let level () = shared.depth
