(* The same admission shape with the evidence removed: the handler
   enqueues without consulting the queue's depth, and the batcher conses
   onto its forming buffer without ever resetting it — both grow without
   bound the moment the drain side falls behind (fail-slow, not
   fail-stop). *)

type batcher = { mutable forming : int list }

let b = { forming = [] }
let admit_q = Queue.create ()

let admit req = Queue.add req admit_q

let seal req = b.forming <- req :: b.forming

let serve rpc node =
  Cluster.Rpc.serve rpc ~node ~handler:(fun ~src req ->
      ignore src;
      admit req;
      None);
  Cluster.Node.spawn node ~name:"batcher" (fun () -> seal 1)
