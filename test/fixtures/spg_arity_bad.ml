(* depfast-spg fixture: a quorum that claims green but whose Count
   arity flows from a net-tainted callee — the slow resource controls
   the mitigation's own k, so the pass must report
   [unreached-mitigation]. *)

let count_live rpc =
  let probe = Rpc.call rpc ~peer:0 "ping" in
  ignore probe;
  3

let gather sched rpc =
  let n = count_live rpc in
  let q = Event.quorum ~label:"acks" (Event.Count n) in
  Sched.wait sched q
