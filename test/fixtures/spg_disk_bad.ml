(* depfast-spg fixture: a disk-slow source radiating into a bare wait.
   [Disk.write] seeds disk-slow taint in [append]; the wait on the
   completion is fate-sharing (red) with no timeout escape, so the pass
   must report [red-exposure] with a disk-slow x self exposure. *)

let append sched disk payload =
  let done_ = Disk.write disk payload in
  Sched.wait sched done_
