(* The same retry loop, bounded: attempts are capped and each retry
   backs off, so a fail-slow peer costs a bounded number of resends at
   decreasing pressure. *)

let rec send sched rpc ~src ~dst ~attempt req =
  let max_attempts = 8 in
  let call = Cluster.Rpc.call rpc ~src ~dst ~bytes:256 req in
  match Depfast.Sched.wait_timeout sched (Cluster.Rpc.event call) (Sim.Time.ms 50) with
  | Depfast.Sched.Ready -> Cluster.Rpc.response call
  | Depfast.Sched.Timed_out ->
    if attempt < max_attempts then begin
      Depfast.Sched.sleep sched (Sim.Time.ms (10 * attempt));
      send sched rpc ~src ~dst ~attempt:(attempt + 1) req
    end
    else None
