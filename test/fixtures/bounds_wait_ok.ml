(* The same quorum, deadline-guarded: the wait carries its own timeout,
   so a fail-slow minority costs one bounded stall, not forever. *)

let replicate sched peers =
  let q = Depfast.Event.quorum ~label:"acks" Depfast.Event.Majority in
  List.iter
    (fun peer -> Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer ()))
    peers;
  match Depfast.Sched.wait_timeout sched q (Sim.Time.ms 100) with
  | Depfast.Sched.Ready -> true
  | Depfast.Sched.Timed_out -> false

let handle sched peers req =
  ignore req;
  replicate sched peers

let serve rpc node sched peers =
  Cluster.Rpc.serve rpc ~node ~handler:(fun ~src req ->
      ignore src;
      handle sched peers req)
