(* An outbox that only ever grows: the RPC handler enqueues one frame
   per request, and nothing on that path drains, sheds, or bounds the
   queue — the RethinkDB backlog shape. *)

let outbox = Queue.create ()

let submit frame = Queue.add frame outbox

let handle ~src req =
  ignore src;
  submit req;
  None

let serve rpc node =
  Cluster.Rpc.serve rpc ~node ~handler:(fun ~src req -> handle ~src req)
