(* depfast-spg fixture: the clean twin of spg_arity_bad — the quorum's
   Count arity comes from an untainted constant function, so the green
   verdict stands and no finding is reported. *)

let majority () = 2

let gather sched rpc =
  let probe = Rpc.call rpc ~peer:1 "ping" in
  ignore probe;
  let n = majority () in
  let q = Event.quorum ~label:"acks" (Event.Count n) in
  Sched.wait sched q
