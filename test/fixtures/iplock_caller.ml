(* fixture: the RethinkDB hazard hidden behind a call boundary — the
   suspension happens two frames down in Iplock_callee, so the per-file
   lock-across-wait rule sees nothing here *)
let state_mu = Depfast.Mutex.create ~label:"state" ()

let commit sched ~peers =
  Depfast.Mutex.with_lock sched state_mu (fun () ->
      Iplock_callee.await_majority sched ~peers)
