(* the broken twin of dom_immutable_ok: one unlocked write is all it
   takes to turn the shared table into a data race *)

let limits : (string, int) Hashtbl.t = Hashtbl.create 8

let lookup k = Hashtbl.find_opt limits k
let set k v = Hashtbl.replace limits k v
