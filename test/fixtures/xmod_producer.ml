(* fixture: the producing half of a cross-module red wait — this file is
   spotless to a per-file lint (it never waits), but the completion it
   returns is bare *)
let begin_append sched ~peer =
  ignore sched;
  Depfast.Event.rpc_completion ~peer ()
