(* fixture: a tuple binding must not launder the completion — the event
   rides in the first component of begin_call's return, and the wait on
   it is as red as the direct form *)
let begin_call ~peer = (Depfast.Event.rpc_completion ~peer (), peer)

let replicate sched ~peer =
  let ack, _where = begin_call ~peer in
  Depfast.Sched.wait sched ack
