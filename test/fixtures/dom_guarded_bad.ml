(* the broken twin of dom_guarded_ok: one write path skips the lock, so
   the guarded verdict is forfeit *)

let mu = Depfast.Mutex.create ~label:"dg.mu" ()
let hits = ref 0

let record sched = Depfast.Mutex.with_lock sched mu (fun () -> incr hits)
let reset () = hits := 0
