(* unsafe-shared: a bare module-level ref written with no lock, no owner
   record, no atomics — the flagged class. The write flows through a
   callee, so catching it needs the interprocedural effect fixpoint. *)

let total = ref 0

let raw_add n = total := !total + n
let add n = raw_add n
let read () = !total
