(* depfast-spg fixture: the escaped twin of spg_timeout_bad — the same
   all-peers conjunction, but raced against a timer via [Event.or_], so
   the wait is green and deadline-covered: no finding. *)

let settle sched rpc =
  let a = Rpc.call rpc ~peer:1 "prepare" in
  let b = Rpc.call rpc ~peer:2 "prepare" in
  let both = Event.and_ [ a; b ] in
  let guarded = Event.or_ [ both; Sched.timer sched (Sim.Time.ms 50) ] in
  Sched.wait sched guarded
