(* fixture: a red wait exempted by pragma — the finding is still reported
   but marked allowed, so it does not gate CI *)
let ask_leader sched ~leader =
  let reply = Depfast.Event.rpc_completion ~peer:leader () in
  (* depfast-lint: allow red-wait unbounded-wait — client waits on the
     leader it queried (Figure 2) *)
  Depfast.Sched.wait sched reply
