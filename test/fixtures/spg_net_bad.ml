(* depfast-spg fixture: a net-slow source radiating into a bare wait on
   a single peer's reply — the fate-sharing shape the quorum twin
   (spg_net_ok) avoids. Expect [red-exposure] with net-slow x peer. *)

let fetch sched rpc =
  let reply = Rpc.call rpc ~peer:1 "get" in
  Sched.wait sched reply
