(* fixture: the same replication wait done right — a majority quorum over
   per-peer completions is fail-slow tolerant, so the lint stays silent *)
let replicate sched ~peers =
  let q = Depfast.Event.quorum Depfast.Event.Majority in
  List.iter
    (fun peer -> Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer ()))
    peers;
  Depfast.Sched.wait sched q
