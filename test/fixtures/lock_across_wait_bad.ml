(* fixture: the RethinkDB hazard — a coroutine suspends on a remote
   completion while holding a mutex, so one slow peer blocks every
   contender *)
let append sched mu ~peer =
  Depfast.Mutex.with_lock sched mu (fun () ->
      let ack = Depfast.Event.rpc_completion ~peer () in
      Depfast.Sched.wait sched ack)
