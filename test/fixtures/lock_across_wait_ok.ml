(* fixture: lock discipline done right — mutate under the lock, wait
   outside it. The wait itself is quorum-shaped, so nothing fires. *)
let append sched mu q ~entry =
  Depfast.Mutex.with_lock sched mu (fun () -> enqueue entry);
  Depfast.Sched.wait sched q
