(* Resend forever, back-to-back: a fail-slow peer turns every timeout
   into an immediate retry — a tight unbounded resend loop that feeds
   the very congestion it is trying to outrun. *)

let rec send sched rpc ~src ~dst req =
  let call = Cluster.Rpc.call rpc ~src ~dst ~bytes:256 req in
  match Depfast.Sched.wait_timeout sched (Cluster.Rpc.event call) (Sim.Time.ms 50) with
  | Depfast.Sched.Ready -> Cluster.Rpc.response call
  | Depfast.Sched.Timed_out -> send sched rpc ~src ~dst req
