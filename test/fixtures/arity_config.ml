(* fixture: deployment constants for arity_use.ml — a per-file pass
   cannot resolve either of these from the consuming module *)
let replicas = [ "a"; "b"; "c" ]
let needed = 5
