(* depfast-spg fixture: the green twin of spg_net_bad — the same
   net-slow exposure, but the wait is on the k-of-n quorum built by
   [Rpc.broadcast], so any single slow peer is outvoted: green, no
   finding. *)

let replicate sched rpc =
  let quorum, _calls = Rpc.broadcast rpc "append" in
  Sched.wait sched quorum
