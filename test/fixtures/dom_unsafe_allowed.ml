(* the pragma'd twin of dom_unsafe_bad: the race is acknowledged, so the
   finding carries allowed=true and nothing gates *)

(* depfast-lint: allow unsafe-shared-state *)
let total = ref 0

let raw_add n = total := !total + n
let add n = raw_add n
let read () = !total
