(* guarded: every write to the shared counter sits lexically under the
   canonical Depfast.Mutex region *)

let mu = Depfast.Mutex.create ~label:"dg.mu" ()
let hits = ref 0

let record sched = Depfast.Mutex.with_lock sched mu (fun () -> incr hits)
let snapshot sched = Depfast.Mutex.with_lock sched mu (fun () -> !hits)
