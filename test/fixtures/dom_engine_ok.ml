(* engine-owned: a mutable field written only through threaded record
   values — domain-local as long as each owner record is *)

type t = { mutable depth : int; cap : int }

let make cap = { depth = 0; cap }
let push t = t.depth <- t.depth + 1
let pop t = t.depth <- t.depth - 1
let full t = t.depth >= t.cap
