(* fixture: a quorum that can never fire — Count 5 over 3 children, but
   both numbers live in another module, so only the whole-project pass
   (resolving constants and list lengths cross-module) can prove it *)
let replicate sched =
  let q = Depfast.Event.quorum (Depfast.Event.Count Arity_config.needed) in
  List.iter
    (fun peer -> Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer ()))
    Arity_config.replicas;
  Depfast.Sched.wait sched q
