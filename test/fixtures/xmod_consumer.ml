(* fixture: the consuming half — also spotless per-file, because the
   event's remote provenance is hidden behind Xmod_producer. Only the
   whole-project pass sees the red wait split across two modules. *)
let replicate sched ~peer =
  let ack = Xmod_producer.begin_append sched ~peer in
  Depfast.Sched.wait sched ack
