let () =
  Alcotest.run "depfast"
    (List.concat [ Test_sim.suite; Test_event.suite; Test_sched.suite; Test_cluster.suite; Test_raft.suite;
        Test_workload.suite; Test_baseline.suite; Test_extensions.suite; Test_harness.suite; Test_properties.suite;
        Test_lint.suite; Test_interproc.suite; Test_bounds.suite; Test_domains.suite; Test_spg.suite; Test_check.suite;
        Test_multicore.suite ])
