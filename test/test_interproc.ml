(* Self-tests for the whole-project interprocedural pass: each fixture
   pair is clean to the per-file lint and flagged only when analyzed
   together, plus negatives, the no-double-reporting contract, and a
   self-lint of the library sources. *)

module F = Analysis.Finding
module SL = Analysis.Source_lint
module IP = Analysis.Interproc

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_rules = Alcotest.(check (list string))

let rules fs = List.sort_uniq compare (List.map (fun f -> f.F.rule) fs)
let unallowed_rules fs = rules (F.unallowed fs)

let fixture name =
  let cands = [ Filename.concat "fixtures" name; Filename.concat "test/fixtures" name ] in
  match List.find_opt Sys.file_exists cands with
  | Some p -> p
  | None -> Alcotest.fail ("fixture not found: " ^ name)

let pair a b = IP.analyze_files [ fixture a; fixture b ]

let per_file_clean name =
  check_rules (name ^ " clean per-file") [] (rules (SL.lint_file (fixture name)))

(* ------------------------------------------------------------------ *)
(* cross-module red wait *)

let test_xmod_red_wait () =
  per_file_clean "xmod_producer.ml";
  per_file_clean "xmod_consumer.ml";
  let fs = pair "xmod_producer.ml" "xmod_consumer.ml" in
  check_rules "red wait seen only whole-project" [ "cross-module-red-wait" ]
    (unallowed_rules fs);
  match List.filter (fun f -> f.F.rule = F.cross_module_red_wait) fs with
  | [ f ] ->
    check_bool "error severity" true (f.F.severity = F.Error);
    check_bool "located in the consumer" true
      (match f.F.loc with
      | F.File { file; _ } -> Filename.basename file = "xmod_consumer.ml"
      | F.Node _ -> false)
  | l -> Alcotest.failf "expected one cross-module finding, got %d" (List.length l)

let test_no_double_reporting () =
  (* a same-file red wait belongs to the per-file lint; the
     interprocedural pass must stay silent about it *)
  let fs = IP.analyze_files [ fixture "red_wait_bad.ml" ] in
  check_bool "local facts are Source_lint's domain" false
    (List.mem F.cross_module_red_wait (rules fs))

(* ------------------------------------------------------------------ *)
(* lock-order cycle *)

let test_lock_order_cycle () =
  per_file_clean "cycle_left.ml";
  per_file_clean "cycle_right.ml";
  let fs = pair "cycle_left.ml" "cycle_right.ml" in
  check_rules "two-module deadlock found" [ "lock-order-cycle" ] (unallowed_rules fs);
  match fs with
  | [ f ] ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check_bool "names both mutexes" true
      (contains f.F.message "Cycle_left.log_mu" && contains f.F.message "Cycle_right.snap_mu")
  | l -> Alcotest.failf "expected one cycle finding, got %d" (List.length l)

let test_lock_order_consistent () =
  (* same two modules, but both sides take log before snap: no cycle *)
  let left =
    {|let log_mu = Depfast.Mutex.create ()
let flush sched = Depfast.Mutex.with_lock sched log_mu (fun () -> Right.sync sched)
|}
  in
  let right =
    {|let snap_mu = Depfast.Mutex.create ()
let sync sched = Depfast.Mutex.with_lock sched snap_mu (fun () -> ())
let archive sched = Left.flush sched
|}
  in
  let fs = IP.analyze_sources [ ("left.ml", left); ("right.ml", right) ] in
  check_rules "consistent order is clean" [] (rules fs)

(* ------------------------------------------------------------------ *)
(* quorum arity *)

let test_quorum_arity_mismatch () =
  per_file_clean "arity_config.ml";
  per_file_clean "arity_use.ml";
  let fs = pair "arity_config.ml" "arity_use.ml" in
  check_rules "Count 5 over 3 children proven dead" [ "quorum-arity-mismatch" ]
    (unallowed_rules fs)

let test_quorum_arity_satisfied () =
  let cfg = "let replicas = [ \"a\"; \"b\"; \"c\" ]\nlet needed = 2\n" in
  let use =
    {|let replicate sched =
  let q = Depfast.Event.quorum (Depfast.Event.Count Cfg.needed) in
  List.iter
    (fun peer -> Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer ()))
    Cfg.replicas;
  Depfast.Sched.wait sched q
|}
  in
  let fs = IP.analyze_sources [ ("cfg.ml", cfg); ("use.ml", use) ] in
  check_rules "Count 2 over 3 children is fine" [] (rules fs)

(* ------------------------------------------------------------------ *)
(* suspension under a lock, across a call *)

let test_lock_across_call () =
  per_file_clean "iplock_callee.ml";
  per_file_clean "iplock_caller.ml";
  let fs = pair "iplock_callee.ml" "iplock_caller.ml" in
  check_rules "hidden suspension under the lock" [ "lock-across-call" ] (unallowed_rules fs);
  match fs with
  | [ f ] ->
    check_bool "located at the call site" true
      (match f.F.loc with
      | F.File { file; _ } -> Filename.basename file = "iplock_caller.ml"
      | F.Node _ -> false)
  | l -> Alcotest.failf "expected one finding, got %d" (List.length l)

let test_lock_across_call_pragma () =
  let caller =
    {|let mu = Depfast.Mutex.create ()
let commit sched ~peers =
  Depfast.Mutex.with_lock sched mu (fun () ->
      (* depfast-lint: allow lock-across-call — serialized on purpose *)
      Callee.await_majority sched ~peers)
|}
  in
  let callee =
    {|let await_majority sched ~peers =
  let q = Depfast.Event.quorum Depfast.Event.Majority in
  List.iter
    (fun peer -> Depfast.Event.add q ~child:(Depfast.Event.rpc_completion ~peer ()))
    peers;
  Depfast.Sched.wait sched q
|}
  in
  let fs = IP.analyze_sources [ ("caller.ml", caller); ("callee.ml", callee) ] in
  check_int "finding still reported" 1
    (List.length (List.filter (fun f -> f.F.rule = F.lock_across_call) fs));
  check_rules "but exempted by the pragma" [] (unallowed_rules fs)

(* ------------------------------------------------------------------ *)
(* argument flow into a waiting callee *)

let test_red_wait_via_argument () =
  let producer = "let begin_append ~peer = Depfast.Event.rpc_completion ~peer ()\n" in
  let waiter = "let settle sched ev = Depfast.Sched.wait sched ev\n" in
  let glue =
    {|let replicate sched ~peer =
  let ack = Producer.begin_append ~peer in
  Waiter.settle sched ack
|}
  in
  let fs =
    IP.analyze_sources
      [ ("producer.ml", producer); ("waiter.ml", waiter); ("glue.ml", glue) ]
  in
  check_bool "caller hands a bare completion to a waiting callee" true
    (List.exists
       (fun f ->
         f.F.rule = F.cross_module_red_wait
         && match f.F.loc with F.File { file; _ } -> file = "glue.ml" | F.Node _ -> false)
       fs)

(* ------------------------------------------------------------------ *)
(* self-lint: the library must hold itself to the whole-project rules *)

let rec ml_files_under dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun name ->
         let p = Filename.concat dir name in
         if Sys.is_directory p then ml_files_under p
         else if Filename.check_suffix name ".ml" && not (Filename.check_suffix name ".pp.ml")
         then [ p ]
         else [])

let test_self_lint () =
  match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
  | None -> ()  (* sources not materialized in this sandbox: nothing to check *)
  | Some root ->
    let files = List.sort compare (ml_files_under root) in
    check_bool "found the library sources" true (List.length files > 10);
    let fs = IP.analyze_files files in
    let bad = F.gating ~strict:true fs in
    if bad <> [] then
      Alcotest.failf "library violates its own interprocedural rules:\n%s"
        (String.concat "\n" (List.map F.to_string bad))

let suite =
  [
    ( "interproc",
      [
        Alcotest.test_case "cross-module red wait" `Quick test_xmod_red_wait;
        Alcotest.test_case "no double reporting" `Quick test_no_double_reporting;
        Alcotest.test_case "lock-order cycle" `Quick test_lock_order_cycle;
        Alcotest.test_case "lock order (negative)" `Quick test_lock_order_consistent;
        Alcotest.test_case "quorum arity mismatch" `Quick test_quorum_arity_mismatch;
        Alcotest.test_case "quorum arity (negative)" `Quick test_quorum_arity_satisfied;
        Alcotest.test_case "lock across call" `Quick test_lock_across_call;
        Alcotest.test_case "lock across call (pragma)" `Quick test_lock_across_call_pragma;
        Alcotest.test_case "red wait via argument" `Quick test_red_wait_via_argument;
        Alcotest.test_case "self-lint lib/" `Quick test_self_lint;
      ] );
  ]
