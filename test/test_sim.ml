(* Unit and property tests for the simulation substrate. *)

open Sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_units () =
  check_int "ms" 1_000 (Time.ms 1);
  check_int "sec" 1_000_000 (Time.sec 1);
  check_int "of_ms_f rounds" 1_500 (Time.of_ms_f 1.5);
  check_int "add" 1_100 (Time.add (Time.ms 1) (Time.us 100));
  check_int "diff" 900 (Time.diff (Time.ms 1) (Time.us 100));
  Alcotest.(check (float 1e-9)) "to_ms_f" 1.5 (Time.to_ms_f 1_500)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42L in
  let c = Rng.split a in
  (* split stream differs from parent continuation *)
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.bits64 a <> Rng.bits64 c then differs := true
  done;
  check_bool "split differs" true !differs

let test_rng_bounds () =
  let r = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    check_bool "int in range" true (x >= 0 && x < 10);
    let y = Rng.int_in r 5 9 in
    check_bool "int_in range" true (y >= 5 && y <= 9);
    let f = Rng.unit_float r in
    check_bool "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_uniformity () =
  let r = Rng.create 11L in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Rng.int r 10 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      check_bool "bucket near 0.1" true (frac > 0.08 && frac < 0.12))
    counts

let test_rng_shuffle_permutation () =
  let r = Rng.create 3L in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Dist *)

let sample_mean d seed n =
  let r = Rng.create seed in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Dist.sample r d
  done;
  !acc /. float_of_int n

let test_dist_means () =
  let close what expected got tol =
    Alcotest.(check bool) what true (Float.abs (got -. expected) < tol)
  in
  close "constant" 5.0 (sample_mean (Dist.Constant 5.0) 1L 100) 1e-9;
  close "uniform" 10.0 (sample_mean (Dist.Uniform (5.0, 15.0)) 2L 50_000) 0.2;
  close "exponential" 4.0 (sample_mean (Dist.Exponential 4.0) 3L 100_000) 0.2;
  close "normal" 8.0 (sample_mean (Dist.Normal (8.0, 1.0)) 4L 50_000) 0.2;
  close "shifted" 12.0 (sample_mean (Dist.Shifted (8.0, Dist.Exponential 4.0)) 5L 100_000) 0.3;
  close "scaled" 8.0 (sample_mean (Dist.Scaled (2.0, Dist.Exponential 4.0)) 6L 100_000) 0.3

let test_dist_nonnegative () =
  let r = Rng.create 13L in
  for _ = 1 to 10_000 do
    check_bool "nonneg" true (Dist.sample r (Dist.Normal (0.5, 5.0)) >= 0.0)
  done

let test_dist_analytic_mean () =
  Alcotest.(check (float 1e-9)) "uniform mean" 10.0 (Dist.mean (Dist.Uniform (5.0, 15.0)));
  Alcotest.(check (float 1e-9)) "pareto inf" infinity (Dist.mean (Dist.Pareto (1.0, 0.9)));
  Alcotest.(check (float 1e-6)) "pareto finite" 3.0 (Dist.mean (Dist.Pareto (2.0, 3.0)))

let test_zipfian_skew () =
  let r = Rng.create 21L in
  let sample = Dist.make_zipfian ~n:1000 ~theta:0.99 in
  let counts = Array.make 1000 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let k = sample r in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 1000);
    counts.(k) <- counts.(k) + 1
  done;
  (* rank 0 must dominate and ordering must be roughly decreasing *)
  check_bool "head heavy" true (counts.(0) > counts.(500) * 10);
  check_bool "rank0 > rank9" true (counts.(0) > counts.(9))

let test_zipfian_uniform_theta0 () =
  (* theta -> 0 approaches uniform *)
  let r = Rng.create 22L in
  let sample = Dist.make_zipfian ~n:100 ~theta:0.01 in
  let counts = Array.make 100 0 in
  for _ = 1 to 100_000 do
    counts.(sample r) <- counts.(sample r) + 1
  done;
  let mx = Array.fold_left max 0 counts and mn = Array.fold_left min max_int counts in
  check_bool "roughly uniform" true (float_of_int mx /. float_of_int mn < 2.0)

(* ------------------------------------------------------------------ *)
(* Hist *)

let test_hist_basic () =
  let h = Hist.create () in
  check_int "empty count" 0 (Hist.count h);
  check_int "empty quantile" 0 (Hist.p99 h);
  List.iter (Hist.add h) [ 10; 20; 30; 40; 50 ];
  check_int "count" 5 (Hist.count h);
  check_int "min" 10 (Hist.min_value h);
  check_int "max" 50 (Hist.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 30.0 (Hist.mean h)

let test_hist_small_exact () =
  (* values < 64 are recorded exactly *)
  let h = Hist.create () in
  for v = 0 to 63 do
    Hist.add h v
  done;
  check_int "p50 exact" 31 (Hist.quantile h 0.5);
  check_int "p100 exact" 63 (Hist.quantile h 1.0)

let test_hist_quantile_vs_sorted =
  QCheck.Test.make ~name:"hist quantile close to exact quantile" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 500) (int_bound 1_000_000)) (float_range 0.0 1.0))
    (fun (values, q) ->
      QCheck.assume (values <> []);
      let q = Float.max 0.01 q in
      let h = Sim.Hist.create () in
      List.iter (Sim.Hist.add h) values;
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let idx = min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)) in
      let exact = sorted.(idx) in
      let approx = Sim.Hist.quantile h q in
      (* log-bucket relative error bound: <= 1/32 plus rounding *)
      approx >= exact && float_of_int approx <= (float_of_int exact *. 1.04) +. 1.0)

(* mirror of the histogram's log bucketing: exact below 64, then 32
   sub-buckets per power of two *)
let bucket_of v =
  if v < 64 then v
  else begin
    let k = ref 0 and x = ref v in
    while !x > 1 do
      incr k;
      x := !x lsr 1
    done;
    64 + ((!k - 6) * 32) + ((v lsr (!k - 5)) - 32)
  end

let test_hist_quantile_within_one_bucket =
  QCheck.Test.make ~name:"hist quantile within one bucket of sort-based reference"
    ~count:300
    QCheck.(
      pair (list_of_size Gen.(int_range 1 400) (int_bound 5_000_000)) (float_range 0.01 1.0))
    (fun (values, q) ->
      let h = Hist.create () in
      List.iter (Hist.add h) values;
      (* the old sort-based implementation: q-th order statistic *)
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let idx = min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)) in
      let exact = sorted.(idx) in
      let approx = Hist.quantile h q in
      abs (bucket_of approx - bucket_of exact) <= 1)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) [ 1; 2; 3 ];
  List.iter (Hist.add b) [ 100; 200 ];
  let m = Hist.merge a b in
  check_int "merged count" 5 (Hist.count m);
  check_int "merged min" 1 (Hist.min_value m);
  check_int "merged max" 200 (Hist.max_value m);
  (* originals untouched *)
  check_int "a count" 3 (Hist.count a)

let test_hist_clear () =
  let h = Hist.create () in
  Hist.add h 42;
  Hist.clear h;
  check_int "cleared" 0 (Hist.count h);
  check_int "cleared max" 0 (Hist.max_value h)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  let _ = Heap.push h ~time:30 "c" in
  let _ = Heap.push h ~time:10 "a" in
  let _ = Heap.push h ~time:20 "b" in
  Alcotest.(check (option (pair int string))) "pop a" (Some (10, "a")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop b" (Some (20, "b")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "pop c" (Some (30, "c")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "empty" None (Heap.pop h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  let _ = Heap.push h ~time:5 "first" in
  let _ = Heap.push h ~time:5 "second" in
  let _ = Heap.push h ~time:5 "third" in
  Alcotest.(check (option (pair int string))) "tie 1" (Some (5, "first")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "tie 2" (Some (5, "second")) (Heap.pop h)

let test_heap_cancel () =
  let h = Heap.create () in
  let _ = Heap.push h ~time:1 "keep1" in
  let dead = Heap.push h ~time:2 "dead" in
  let _ = Heap.push h ~time:3 "keep2" in
  check_int "size 3" 3 (Heap.size h);
  Heap.cancel h dead;
  check_int "size 2 after cancel" 2 (Heap.size h);
  check_bool "cancelled" true (Heap.cancelled dead);
  Alcotest.(check (option (pair int string))) "keep1" (Some (1, "keep1")) (Heap.pop h);
  Alcotest.(check (option (pair int string))) "skips dead" (Some (3, "keep2")) (Heap.pop h)

let test_heap_sorted_property =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:300
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Sim.Heap.create () in
      List.iter (fun t -> ignore (Sim.Heap.push h ~time:t ())) times;
      let rec drain last =
        match Sim.Heap.pop h with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain min_int)

let test_heap_cancel_property =
  QCheck.Test.make ~name:"cancelled entries never pop" ~count:200
    QCheck.(list (pair (int_bound 1000) bool))
    (fun entries ->
      let h = Sim.Heap.create () in
      let handles = List.map (fun (t, cancel) -> (Sim.Heap.push h ~time:t (t, cancel), cancel)) entries in
      List.iter (fun (hd, cancel) -> if cancel then Sim.Heap.cancel h hd) handles;
      let rec drain acc =
        match Sim.Heap.pop h with None -> acc | Some (_, v) -> drain (v :: acc)
      in
      let popped = drain [] in
      List.for_all (fun (_, cancelled) -> not cancelled) popped
      && List.length popped = List.length (List.filter (fun (_, c) -> not c) entries))

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_post_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.post e (fun () -> log := 1 :: !log);
  Engine.post e (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2 ] (List.rev !log);
  check_int "time unchanged" 0 (Engine.now e)

let test_engine_schedule_advances_clock () =
  let e = Engine.create () in
  let fired_at = ref (-1) in
  ignore (Engine.schedule e ~delay:(Time.ms 5) (fun () -> fired_at := Engine.now e));
  Engine.run e;
  check_int "fired at 5ms" (Time.ms 5) !fired_at;
  check_int "clock at 5ms" (Time.ms 5) (Engine.now e)

let test_engine_ordering_mixed () =
  let e = Engine.create () in
  let log = ref [] in
  let push tag () = log := tag :: !log in
  ignore (Engine.schedule e ~delay:20 (push "t20"));
  ignore (Engine.schedule e ~delay:10 (fun () ->
      push "t10" ();
      Engine.post e (push "posted-at-10")));
  Engine.post e (push "now");
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "now"; "t10"; "posted-at-10"; "t20" ] (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:10 (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  check_bool "not fired" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~delay:10 (fun () -> fired := 10 :: !fired));
  ignore (Engine.schedule e ~delay:30 (fun () -> fired := 30 :: !fired));
  Engine.run ~until:20 e;
  Alcotest.(check (list int)) "only t10" [ 10 ] (List.rev !fired);
  check_int "clock clamped to until" 20 (Engine.now e);
  Engine.run e;
  Alcotest.(check (list int)) "rest runs" [ 10; 30 ] (List.rev !fired)

let test_engine_periodic_chain () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 100 then ignore (Engine.schedule e ~delay:1 tick)
  in
  ignore (Engine.schedule e ~delay:1 tick);
  Engine.run e;
  check_int "100 ticks" 100 !count;
  check_int "clock 100us" 100 (Engine.now e)

let suite =
  [
    ( "sim.time",
      [
        Alcotest.test_case "units and arithmetic" `Quick test_time_units;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
      ] );
    ( "sim.dist",
      [
        Alcotest.test_case "sample means" `Quick test_dist_means;
        Alcotest.test_case "samples nonnegative" `Quick test_dist_nonnegative;
        Alcotest.test_case "analytic means" `Quick test_dist_analytic_mean;
        Alcotest.test_case "zipfian skew" `Quick test_zipfian_skew;
        Alcotest.test_case "zipfian ~uniform at theta~0" `Quick test_zipfian_uniform_theta0;
      ] );
    ( "sim.hist",
      [
        Alcotest.test_case "basic stats" `Quick test_hist_basic;
        Alcotest.test_case "small values exact" `Quick test_hist_small_exact;
        Alcotest.test_case "merge" `Quick test_hist_merge;
        Alcotest.test_case "clear" `Quick test_hist_clear;
        QCheck_alcotest.to_alcotest test_hist_quantile_vs_sorted;
        QCheck_alcotest.to_alcotest test_hist_quantile_within_one_bucket;
      ] );
    ( "sim.heap",
      [
        Alcotest.test_case "ordering" `Quick test_heap_ordering;
        Alcotest.test_case "FIFO tie-break" `Quick test_heap_fifo_ties;
        Alcotest.test_case "cancel" `Quick test_heap_cancel;
        QCheck_alcotest.to_alcotest test_heap_sorted_property;
        QCheck_alcotest.to_alcotest test_heap_cancel_property;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "post order" `Quick test_engine_post_order;
        Alcotest.test_case "schedule advances clock" `Quick test_engine_schedule_advances_clock;
        Alcotest.test_case "mixed ordering" `Quick test_engine_ordering_mixed;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "run ~until" `Quick test_engine_until;
        Alcotest.test_case "periodic chain" `Quick test_engine_periodic_chain;
      ] );
  ]
