(* Tests for the coroutine scheduler, tracing, and SPG construction. *)

open Depfast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make_sched ?(trace = false) () =
  let engine = Sim.Engine.create () in
  let tr = Trace.create ~enabled:trace () in
  Sched.create ~trace:tr engine

let test_spawn_runs () =
  let s = make_sched () in
  let ran = ref false in
  Sched.spawn s (fun () -> ran := true);
  Sched.run s;
  check_bool "body ran" true !ran

let test_sleep_advances_time () =
  let s = make_sched () in
  let woke_at = ref (-1) in
  Sched.spawn s (fun () ->
      Sched.sleep s (Sim.Time.ms 3);
      woke_at := Sched.now s);
  Sched.run s;
  check_int "woke at 3ms" (Sim.Time.ms 3) !woke_at

let test_wait_fired_later () =
  let s = make_sched () in
  let ev = Event.signal () in
  let got = ref (-1) in
  Sched.spawn s (fun () ->
      Sched.wait s ev;
      got := Sched.now s);
  ignore (Sim.Engine.schedule (Sched.engine s) ~delay:(Sim.Time.ms 7) (fun () -> Event.fire ev));
  Sched.run s;
  check_int "resumed at fire time" (Sim.Time.ms 7) !got

let test_wait_already_ready () =
  let s = make_sched () in
  let ev = Event.signal () in
  Event.fire ev;
  let resumed = ref false in
  Sched.spawn s (fun () ->
      Sched.wait s ev;
      resumed := true);
  Sched.run s;
  check_bool "immediate resume" true !resumed

let test_wait_timeout_expires () =
  let s = make_sched () in
  let ev = Event.signal () in
  let outcome = ref Sched.Ready in
  Sched.spawn s (fun () -> outcome := Sched.wait_timeout s ev (Sim.Time.ms 10));
  Sched.run s;
  check_bool "timed out" true (!outcome = Sched.Timed_out);
  check_int "clock at timeout" (Sim.Time.ms 10) (Sim.Engine.now (Sched.engine s))

let test_wait_timeout_beaten_by_fire () =
  let s = make_sched () in
  let ev = Event.signal () in
  let outcome = ref Sched.Timed_out in
  Sched.spawn s (fun () -> outcome := Sched.wait_timeout s ev (Sim.Time.ms 10));
  ignore (Sim.Engine.schedule (Sched.engine s) ~delay:(Sim.Time.ms 2) (fun () -> Event.fire ev));
  Sched.run s;
  check_bool "ready" true (!outcome = Sched.Ready);
  (* the cancelled timeout timer must not keep the engine busy *)
  check_int "no pending work" 0 (Sim.Engine.pending (Sched.engine s))

let test_quorum_wait_coroutines () =
  (* one coroutine per replica fires its rpc event after a delay; waiting on
     the majority quorum resumes at the 2nd-fastest, not the slowest *)
  let s = make_sched () in
  let q = Event.quorum Event.Majority in
  let delays = [ (0, 5); (1, 400); (2, 9) ] in
  List.iter
    (fun (peer, ms) ->
      let ev = Event.rpc_completion ~peer () in
      Event.add q ~child:ev;
      Sched.spawn s ~node:peer (fun () ->
          Sched.sleep s (Sim.Time.ms ms);
          Event.fire ev))
    delays;
  let resumed_at = ref (-1) in
  Sched.spawn s ~node:10 (fun () ->
      Sched.wait s q;
      resumed_at := Sched.now s);
  Sched.run s;
  check_int "majority at 9ms, not 400ms" (Sim.Time.ms 9) !resumed_at

let test_yield_interleaving () =
  let s = make_sched () in
  let log = ref [] in
  let worker tag =
    Sched.spawn s (fun () ->
        log := (tag ^ "1") :: !log;
        Sched.yield s;
        log := (tag ^ "2") :: !log)
  in
  worker "a";
  worker "b";
  Sched.run s;
  Alcotest.(check (list string)) "interleaved" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_spawn_here_inherits_node () =
  let s = make_sched () in
  let child_node = ref (-2) in
  Sched.spawn s ~node:5 (fun () ->
      Sched.spawn_here s (fun () -> child_node := Sched.current_node s));
  Sched.run s;
  check_int "inherited" 5 !child_node

let test_timer_event () =
  let s = make_sched () in
  let at = ref (-1) in
  Sched.spawn s (fun () ->
      let ev = Sched.timer s (Sim.Time.ms 4) in
      Sched.wait s ev;
      at := Sched.now s);
  Sched.run s;
  check_int "timer fires" (Sim.Time.ms 4) !at

let test_trace_records_quorum_arity () =
  let s = make_sched ~trace:true () in
  let q = Event.quorum Event.Majority in
  List.iter
    (fun peer ->
      let ev = Event.rpc_completion ~peer () in
      Event.add q ~child:ev;
      Sched.spawn s ~node:peer (fun () ->
          Sched.sleep s (Sim.Time.ms peer);
          Event.fire ev))
    [ 1; 2; 3 ];
  Sched.spawn s ~node:0 ~name:"leader" (fun () -> Sched.wait s q);
  Sched.run s;
  let w =
    List.find (fun w -> Trace.event_kind w = Event.Quorum) (Trace.waits (Sched.trace s))
  in
  check_int "k" 2 w.Trace.quorum_k;
  check_int "n" 3 w.Trace.quorum_n;
  check_int "node" 0 w.Trace.node;
  Alcotest.(check (list int)) "peers" [ 1; 2; 3 ] (Trace.peers w);
  Alcotest.(check (list int)) "no stallers" [] (Trace.stallers w)

let run_mixed_trace () =
  (* node 0 does a quorum wait over nodes 1-3 and a single rpc wait on
     node 4; node 9 (a "client") waits on node 0 *)
  let s = make_sched ~trace:true () in
  let q = Event.quorum Event.Majority in
  let replies = List.map (fun peer -> Event.rpc_completion ~peer ()) [ 1; 2; 3 ] in
  List.iter (fun ev -> Event.add q ~child:ev) replies;
  List.iter Event.fire replies;
  let single = Event.rpc_completion ~peer:4 () in
  let client_wait = Event.rpc_completion ~peer:0 () in
  Sched.spawn s ~node:0 ~name:"server" (fun () ->
      Sched.wait s q;
      Sched.wait s single;
      Event.fire client_wait);
  Sched.spawn s ~node:9 ~name:"client" (fun () -> Sched.wait s client_wait);
  ignore (Sim.Engine.schedule (Sched.engine s) ~delay:10 (fun () -> Event.fire single));
  Sched.run s;
  s

let test_spg_edges_and_colors () =
  let s = run_mixed_trace () in
  let g = Spg.of_trace (Sched.trace s) in
  let find src dst =
    List.find (fun e -> e.Spg.src = src && e.Spg.dst = dst) (Spg.edges g)
  in
  let quorum_edge = find 0 1 in
  check_bool "quorum edge green" true (quorum_edge.Spg.color = Spg.Green);
  check_int "quorum k" 2 quorum_edge.Spg.quorum_k;
  let single_edge = find 0 4 in
  check_bool "single edge red" true (single_edge.Spg.color = Spg.Red);
  let client_edge = find 9 0 in
  check_bool "client edge red" true (client_edge.Spg.color = Spg.Red);
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3; 4; 9 ] (Spg.nodes g)

let test_audit_flags_single_waits () =
  let s = run_mixed_trace () in
  let violations = Spg.audit (Sched.trace s) in
  (* two violations: server->4 and client->0 *)
  check_int "two violations" 2 (List.length violations);
  let allowed = Spg.audit ~allow:(fun ~node -> node = 9) (Sched.trace s) in
  check_int "client exempted" 1 (List.length allowed);
  check_int "remaining is node 4 wait" 4 (List.hd allowed).Spg.v_peer;
  check_bool "not tolerant" false (Spg.is_fail_slow_tolerant (Sched.trace s))

let test_audit_pure_quorum_tolerant () =
  let s = make_sched ~trace:true () in
  let q = Event.quorum Event.Majority in
  let replies = List.map (fun peer -> Event.rpc_completion ~peer ()) [ 1; 2; 3 ] in
  List.iter (fun ev -> Event.add q ~child:ev) replies;
  List.iter Event.fire replies;
  Sched.spawn s ~node:0 (fun () -> Sched.wait s q);
  Sched.run s;
  check_bool "tolerant" true (Spg.is_fail_slow_tolerant (Sched.trace s))

let test_spg_dot_output () =
  let s = run_mixed_trace () in
  let dot = Spg.to_dot ~node_name:(fun n -> if n = 9 then "c1" else "s" ^ string_of_int n)
      (Spg.of_trace (Sched.trace s))
  in
  check_bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "client edge" true (contains "c1 -> s0" dot);
  check_bool "green quorum edge" true (contains "color=green" dot);
  check_bool "red single edge" true (contains "color=red" dot)

let test_many_coroutines_scale () =
  (* 10k coroutines each sleeping then firing into one big quorum *)
  let s = make_sched () in
  let n = 10_000 in
  let q = Event.quorum (Event.Count (n / 2)) in
  for i = 0 to n - 1 do
    let ev = Event.signal () in
    Event.add q ~child:ev;
    Sched.spawn s (fun () ->
        Sched.sleep s (Sim.Time.us (i mod 100));
        Event.fire ev)
  done;
  let done_ = ref false in
  Sched.spawn s (fun () ->
      Sched.wait s q;
      done_ := true);
  Sched.run s;
  check_bool "completed" true !done_

let test_trace_stats_by_label () =
  let engine = Sim.Engine.create () in
  let trace = Depfast.Trace.create ~enabled:true () in
  let s = Sched.create ~trace engine in
  Sched.spawn s ~node:0 (fun () ->
      let ev = Event.rpc_completion ~label:"append" ~peer:1 () in
      ignore (Sim.Engine.schedule engine ~delay:10 (fun () -> Event.fire ev));
      Sched.wait s ev;
      let ev2 = Event.signal ~label:"commit" () in
      ignore (Sim.Engine.schedule engine ~delay:25 (fun () -> Event.fire ev2));
      Sched.wait s ev2);
  Sched.run s;
  let stats = Depfast.Trace_stats.of_trace Depfast.Trace_stats.By_label trace in
  Alcotest.(check (list string)) "keys" [ "append"; "commit" ] (Depfast.Trace_stats.keys stats);
  match Depfast.Trace_stats.histogram stats "append" with
  | Some h ->
    check_int "one append wait" 1 (Sim.Hist.count h);
    check_int "waited 10us" 10 (Sim.Hist.max_value h)
  | None -> Alcotest.fail "missing label"

let test_trace_stats_by_edge () =
  let s = run_mixed_trace () in
  let stats = Depfast.Trace_stats.of_trace Depfast.Trace_stats.By_edge (Sched.trace s) in
  let keys = Depfast.Trace_stats.keys stats in
  check_bool "client->leader edge" true (List.mem "n9->n0" keys);
  check_bool "quorum edges" true (List.mem "n0->n1" keys);
  (* self-waits (the wal on node 0) produce no edge *)
  check_bool "no self edge" true (not (List.mem "n0->n0" keys))

let test_trace_stats_online () =
  let engine = Sim.Engine.create () in
  let trace = Depfast.Trace.create ~enabled:true () in
  let s = Sched.create ~trace engine in
  let stats = Depfast.Trace_stats.create Depfast.Trace_stats.By_node in
  Depfast.Trace_stats.attach stats trace;
  Sched.spawn s ~node:3 (fun () -> Sched.sleep s 50 |> ignore);
  Sched.spawn s ~node:3 (fun () ->
      let ev = Event.signal () in
      match Sched.wait_timeout s ev 100 with _ -> ());
  Sched.run s;
  check_bool "online records" true (Depfast.Trace_stats.histogram stats "n3" <> None);
  check_int "timeout counted" 1 (Depfast.Trace_stats.timeouts stats "n3")

(* ------------------------------------------------------------------ *)
(* condvar / mutex edge cases: pin the current semantics *)

let test_condvar_broadcast_no_waiters () =
  let s = make_sched () in
  let cv = Condvar.create () in
  Condvar.broadcast cv;
  (* nobody was waiting: the broadcast is spent, not banked — a waiter
     arriving afterwards waits for the *next* broadcast *)
  let woke = ref false in
  Sched.spawn s (fun () ->
      Condvar.wait s cv;
      woke := true);
  Sched.spawn s (fun () ->
      Sched.yield s;
      Condvar.broadcast cv);
  Sched.run s;
  check_bool "waiter needed the second broadcast" true !woke

let test_condvar_capture_before_broadcast () =
  let s = make_sched () in
  let cv = Condvar.create () in
  (* the lost-wakeup-free idiom: capture the generation first, then a
     broadcast landing before the wait leaves the captured event fired *)
  let gen = Condvar.event cv in
  Condvar.broadcast cv;
  let woke = ref false in
  Sched.spawn s (fun () ->
      Sched.wait s gen;
      woke := true);
  Sched.run s;
  check_bool "pre-fired generation does not park" true !woke;
  check_int "no virtual time consumed" 0 (Sched.now s)

let test_mutex_unlock_unheld_raises () =
  let mu = Mutex.create () in
  (match Mutex.unlock mu with
  | () -> Alcotest.fail "unlock on an unheld mutex must raise"
  | exception Invalid_argument _ -> ());
  check_bool "still unlocked" false (Mutex.locked mu)

let test_mutex_unlock_from_non_owner () =
  (* the mutex tracks held-ness, not ownership: an unlock from a
     coroutine that never locked silently hands the section to the next
     waiter. This pins the permissive current behavior — catching such
     protocol misuse is the schedule checker's job, not the type's. *)
  let s = make_sched () in
  let mu = Mutex.create () in
  let entered_at = ref (-1) in
  Sched.spawn s ~name:"holder" (fun () ->
      Mutex.lock s mu;
      Sched.sleep s (Sim.Time.ms 5));
  Sched.spawn s ~name:"waiter" (fun () ->
      Sched.yield s;
      Mutex.lock s mu;
      entered_at := Sched.now s);
  Sched.spawn s ~name:"interloper" (fun () ->
      Sched.sleep s (Sim.Time.ms 1);
      Mutex.unlock mu);
  Sched.run s;
  check_int "waiter entered off the interloper's unlock" (Sim.Time.ms 1) !entered_at;
  check_bool "handoff left the mutex held" true (Mutex.locked mu)

(* ------------------------------------------------------------------ *)
(* Spg.audit dedup: one line per violation site, with an occurrence count *)

let audit_dedup_trace () =
  let engine = Sim.Engine.create () in
  let trace = Trace.create ~enabled:true () in
  let s = Sched.create ~trace engine in
  Sched.spawn s ~node:9 ~name:"client" (fun () ->
      for _ = 1 to 3 do
        let reply = Event.rpc_completion ~label:"req" ~peer:0 () in
        ignore
          (Sim.Engine.schedule engine ~delay:(Sim.Time.ms 1) (fun () ->
               Event.fire reply));
        (* depfast-lint: allow red-wait unbounded-wait — the wait under test *)
        Sched.wait s reply
      done);
  Sched.run s;
  trace

let test_audit_dedup_counts_occurrences () =
  let trace = audit_dedup_trace () in
  match Spg.audit trace with
  | [ v ] ->
    check_int "three occurrences collapsed into one site" 3 v.Spg.v_count;
    check_int "stalling peer" 0 v.Spg.v_peer
  | vs -> Alcotest.failf "expected one deduplicated site, got %d" (List.length vs)

let test_audit_dedup_escape_hatch () =
  let trace = audit_dedup_trace () in
  let raw = Spg.audit ~dedup:false trace in
  check_int "raw list keeps every occurrence" 3 (List.length raw);
  List.iter (fun v -> check_int "raw entries count 1 each" 1 v.Spg.v_count) raw

let suite =
  [
    ( "sched.coroutine",
      [
        Alcotest.test_case "spawn runs" `Quick test_spawn_runs;
        Alcotest.test_case "sleep advances time" `Quick test_sleep_advances_time;
        Alcotest.test_case "wait resumes on fire" `Quick test_wait_fired_later;
        Alcotest.test_case "wait on ready event" `Quick test_wait_already_ready;
        Alcotest.test_case "wait timeout expires" `Quick test_wait_timeout_expires;
        Alcotest.test_case "fire beats timeout" `Quick test_wait_timeout_beaten_by_fire;
        Alcotest.test_case "quorum wait ignores straggler" `Quick test_quorum_wait_coroutines;
        Alcotest.test_case "yield interleaves" `Quick test_yield_interleaving;
        Alcotest.test_case "spawn_here inherits node" `Quick test_spawn_here_inherits_node;
        Alcotest.test_case "timer event" `Quick test_timer_event;
        Alcotest.test_case "10k coroutines" `Quick test_many_coroutines_scale;
      ] );
    ( "sched.edge-cases",
      [
        Alcotest.test_case "broadcast with zero waiters" `Quick
          test_condvar_broadcast_no_waiters;
        Alcotest.test_case "capture before broadcast" `Quick
          test_condvar_capture_before_broadcast;
        Alcotest.test_case "unlock unheld raises" `Quick test_mutex_unlock_unheld_raises;
        Alcotest.test_case "unlock from non-owner" `Quick test_mutex_unlock_from_non_owner;
      ] );
    ( "sched.trace",
      [
        Alcotest.test_case "quorum arity recorded" `Quick test_trace_records_quorum_arity;
      ] );
    ( "spg.dedup",
      [
        Alcotest.test_case "occurrence counting" `Quick test_audit_dedup_counts_occurrences;
        Alcotest.test_case "~dedup:false escape hatch" `Quick test_audit_dedup_escape_hatch;
      ] );
    ( "trace_stats",
      [
        Alcotest.test_case "by label" `Quick test_trace_stats_by_label;
        Alcotest.test_case "by edge" `Quick test_trace_stats_by_edge;
        Alcotest.test_case "online subscription" `Quick test_trace_stats_online;
      ] );
    ( "spg",
      [
        Alcotest.test_case "edges and colors" `Quick test_spg_edges_and_colors;
        Alcotest.test_case "audit flags single waits" `Quick test_audit_flags_single_waits;
        Alcotest.test_case "pure quorum tolerant" `Quick test_audit_pure_quorum_tolerant;
        Alcotest.test_case "dot output" `Quick test_spg_dot_output;
      ] );
  ]
