(* Tests for the depfast-spg pass and its dynamic cross-check: fixture
   pairs covering the four exposure shapes (disk red wait, net green
   quorum, tainted arity, timeout escape), tree-wide pins over the real
   library, determinism of the emitted certificates, the synthetic
   exposure-map queries on {!Check.Certificate}, and the seeded
   alias-blindspot scenario reproducing [certificate-mismatch]. *)

module F = Analysis.Finding
module S = Analysis.Spg_static
module G = Analysis.Growth
module E = Check.Explore

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_rules = Alcotest.(check (list string))

let rules fs = List.sort_uniq compare (List.map (fun f -> f.F.rule) fs)

let contains ~needle hay =
  let nh = String.length needle and h = String.length hay in
  let rec go i = i + nh <= h && (String.sub hay i nh = needle || go (i + 1)) in
  go 0

let message_contains fs needle =
  List.exists (fun f -> contains ~needle f.F.message) fs

let fixture name =
  let cands = [ Filename.concat "fixtures" name; Filename.concat "test/fixtures" name ] in
  match List.find_opt Sys.file_exists cands with
  | Some p -> p
  | None -> Alcotest.fail ("fixture not found: " ^ name)

let analyze name = S.analyze_files [ fixture name ]

let cert_for certs ~site ~kind =
  List.find_opt (fun c -> c.G.c_site = site && c.G.c_kind = kind) certs

let require_cert certs ~site ~kind ~verdict =
  match cert_for certs ~site ~kind with
  | Some c ->
    check_bool
      (Printf.sprintf "%s %s verdict" site kind)
      true
      (c.G.c_verdict = verdict);
    c
  | None -> Alcotest.failf "no %s certificate for site %s" kind site

(* ------------------------------------------------------------------ *)
(* disk -> red wait: bare completion wait vs deadline-covered twin *)

let test_disk_bare_wait_flagged () =
  let fs, certs, _ = analyze "spg_disk_bad.ml" in
  check_rules "fate-sharing disk wait" [ F.red_exposure ] (rules fs);
  check_bool "exposure names the kind and role" true
    (message_contains fs "disk-slow x self");
  ignore (require_cert certs ~site:"done_" ~kind:"wait" ~verdict:G.Flagged);
  let c =
    require_cert certs ~site:"disk-slow->done_" ~kind:"propagation" ~verdict:G.Flagged
  in
  check_bool "witness path runs seed-first" true (contains ~needle:"role=self" c.G.c_evidence);
  check_bool "seed is the Disk.write site" true
    (contains ~needle:"seed Disk.write" c.G.c_evidence)

let test_disk_deadline_certified () =
  let fs, certs, _ = analyze "spg_disk_ok.ml" in
  check_rules "wait_timeout discharges the exposure" [] (rules fs);
  let c = require_cert certs ~site:"done_" ~kind:"wait" ~verdict:G.Bounded in
  check_bool "still red, but covered" true
    (contains ~needle:"deadline-covered" c.G.c_evidence)

(* ------------------------------------------------------------------ *)
(* net -> green quorum: single-peer wait vs Rpc.broadcast k-of-n *)

let test_net_single_peer_flagged () =
  let fs, certs, _ = analyze "spg_net_bad.ml" in
  check_rules "single reply fate-shares with its peer" [ F.red_exposure ] (rules fs);
  check_bool "net exposure is always peer-role" true
    (message_contains fs "net-slow x peer");
  ignore (require_cert certs ~site:"reply" ~kind:"wait" ~verdict:G.Flagged)

let test_net_broadcast_quorum_green () =
  let fs, certs, exposures = analyze "spg_net_ok.ml" in
  check_rules "the broadcast quorum outvotes a slow peer" [] (rules fs);
  let c = require_cert certs ~site:"quorum quorum" ~kind:"wait" ~verdict:G.Bounded in
  check_bool "green verdict in the evidence" true
    (contains ~needle:"green wait" c.G.c_evidence);
  match exposures with
  | [ (_, xs) ] ->
    Alcotest.(check (list (pair string string)))
      "file exposure map records the green net edge" [ ("net-slow", "green") ] xs
  | other -> Alcotest.failf "expected one exposed file, got %d" (List.length other)

(* ------------------------------------------------------------------ *)
(* tainted arity: the mitigation's own k controlled by the slow
   resource, vs an untainted constant *)

let test_tainted_arity_flagged () =
  let fs, _, _ = analyze "spg_arity_bad.ml" in
  check_rules "Count arity flows from a net-tainted callee"
    [ F.unreached_mitigation ] (rules fs);
  check_bool "names the tainted callee" true (message_contains fs "count_live")

let test_untainted_arity_clean () =
  let fs, _, _ = analyze "spg_arity_ok.ml" in
  check_rules "constant arity keeps the green verdict" [] (rules fs)

(* ------------------------------------------------------------------ *)
(* timeout escape: all-peers and_ bare vs raced against a timer *)

let test_and_uncovered_flagged () =
  let fs, certs, _ = analyze "spg_timeout_bad.ml" in
  check_rules "and_ fate-shares with every child" [ F.red_exposure ] (rules fs);
  ignore (require_cert certs ~site:"and_ both" ~kind:"wait" ~verdict:G.Flagged)

let test_or_timer_escape_clean () =
  let fs, certs, _ = analyze "spg_timeout_ok.ml" in
  check_rules "or_ against a timer is an escape" [] (rules fs);
  ignore (require_cert certs ~site:"or_ guarded" ~kind:"wait" ~verdict:G.Bounded)

(* ------------------------------------------------------------------ *)
(* the real tree: pins over lib/ *)

let rec ml_files_under dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun name ->
         let p = Filename.concat dir name in
         if Sys.is_directory p then ml_files_under p
         else if Filename.check_suffix name ".ml" && not (Filename.check_suffix name ".pp.ml")
         then [ p ]
         else [])

let tree =
  lazy
    (match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
    | None -> None (* sources not materialized in this sandbox *)
    | Some root -> Some (S.analyze_files (List.sort compare (ml_files_under root))))

let exposure_for exposures base =
  List.find_opt (fun (p, _) -> Filename.basename p = base) exposures

let test_tree_self_lint_clean () =
  match Lazy.force tree with
  | None -> ()
  | Some (fs, _, _) ->
    let bad = F.gating ~strict:true fs in
    if bad <> [] then
      Alcotest.failf "library violates its own spg rules:\n%s"
        (String.concat "\n" (List.map F.to_string bad))

let test_tree_server_red_disk_exposure () =
  (* the leader's own-WAL waits: statically red and disk-exposed (the
     pragma acknowledges them) — the staleness warning's subject *)
  match Lazy.force tree with
  | None -> ()
  | Some (_, _, exposures) -> (
    match exposure_for exposures "server.ml" with
    | None -> Alcotest.fail "no exposure row for lib/raft/server.ml"
    | Some (_, xs) ->
      check_bool "red disk-slow exposure recorded" true
        (List.mem ("disk-slow", "red") xs))

let test_tree_blindspot_file_unexposed () =
  (* the whole point of the fixture: the net-slow source escapes through
     the mailbox alias, so the static map must record NO net exposure *)
  match Lazy.force tree with
  | None -> ()
  | Some (_, _, exposures) -> (
    match exposure_for exposures "fixture_spg.ml" with
    | None -> () (* no waits exposed at all: fine *)
    | Some (_, xs) ->
      check_bool "no net-slow exposure through the alias" false
        (List.exists (fun (k, _) -> k = "net-slow") xs))

let test_tree_certificate_volume () =
  match Lazy.force tree with
  | None -> ()
  | Some (_, certs, _) ->
    let prop = List.filter (fun c -> c.G.c_kind = "propagation") certs in
    check_bool "at least 20 propagation certificates" true (List.length prop >= 20);
    check_bool "every wait yields a wait certificate" true
      (List.exists (fun c -> c.G.c_kind = "wait") certs)

let test_tree_deterministic_output () =
  (* two full runs must agree byte-for-byte on the emitted certificates *)
  match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
  | None -> ()
  | Some root ->
    let files = List.sort compare (ml_files_under root) in
    let dump () =
      let _, certs, _ = S.analyze_files files in
      String.concat "\n" (List.map G.cert_to_json certs)
    in
    Alcotest.(check string) "byte-identical across runs" (dump ()) (dump ())

let test_stable_ids () =
  let fs, _, _ = analyze "spg_disk_bad.ml" in
  let f = List.hd fs in
  Alcotest.(check string) "deterministic"
    (F.stable_id ~pass:"spg" f)
    (F.stable_id ~pass:"spg" f);
  check_bool "pass name is part of the identity" true
    (F.stable_id ~pass:"spg" f <> F.stable_id ~pass:"bounds" f)

(* ------------------------------------------------------------------ *)
(* the exposure map on Check.Certificate *)

let test_certificate_exposure_queries () =
  let certs =
    Check.Certificate.of_findings
      ~exposures:
        [
          ("lib/x/leader.ml", [ ("disk-slow", "red"); ("net-slow", "green") ]);
          ("lib/x/client.ml", [ ("net-slow", "red") ]);
        ]
      ~files:[ "lib/x/leader.ml"; "lib/x/client.ml" ] []
  in
  Alcotest.(check string) "contention shares its slow sibling's key" "disk-slow"
    (Check.Certificate.fault_key Cluster.Fault.Disk_contention);
  Alcotest.(check string) "memory key" "memory"
    (Check.Certificate.fault_key Cluster.Fault.Mem_contention);
  check_bool "exposed by suffix, any color" true
    (Check.Certificate.exposed certs ~file:"x/leader.ml" ~kind:Cluster.Fault.Net_slow);
  check_bool "red_exposed wants red" false
    (Check.Certificate.red_exposed certs ~file:"x/leader.ml" ~kind:Cluster.Fault.Net_slow);
  check_bool "red disk exposure seen" true
    (Check.Certificate.red_exposed certs ~file:"lib/x/leader.ml"
       ~kind:Cluster.Fault.Disk_slow);
  check_bool "unexposed kind" false
    (Check.Certificate.exposed certs ~file:"lib/x/client.ml" ~kind:Cluster.Fault.Cpu_slow);
  check_int "three exposure entries" 3 (Check.Certificate.exposure_count certs)

(* ------------------------------------------------------------------ *)
(* the dynamic half: the alias blindspot reproduces the mismatch, and
   the gating slow-disk scenario stays clean apart from the non-gating
   staleness warning *)

let scenario name =
  match Check.Registry.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s not registered" name

let budget ~schedules = { E.default_budget with E.max_schedules = schedules }

let spg_mismatches fs =
  List.filter
    (fun f ->
      f.F.rule = F.certificate_mismatch && contains ~needle:"slowness-propagation" f.F.message)
    fs

let test_blindspot_mismatch () =
  (* statically the fixture file is covered with no net-slow exposure;
     dynamically the escaped event is a red net edge — mismatch *)
  let certs = Check.Certificate.of_findings ~files:[ "lib/check/fixture_spg.ml" ] [] in
  let res =
    E.explore ~budget:(budget ~schedules:50) ~certs (scenario "spg-alias-blindspot")
  in
  let mm = spg_mismatches res.E.findings in
  check_int "one spg mismatch" 1 (List.length mm);
  check_bool "error severity" true (List.for_all (fun f -> f.F.severity = F.Error) mm);
  check_bool "names the missing exposure" true
    (message_contains mm "no net-slow exposure")

let test_blindspot_needs_injected_fault () =
  (* without a declared fault the explorer collects no edges, so the
     same certificate produces no spg mismatch *)
  let certs = Check.Certificate.of_findings ~files:[ "lib/check/fixture_spg.ml" ] [] in
  let sc = { (scenario "spg-alias-blindspot") with Check.Scenario.fault = None } in
  let res = E.explore ~budget:(budget ~schedules:50) ~certs sc in
  check_int "no spg mismatch without a fault" 0 (List.length (spg_mismatches res.E.findings))

let test_blindspot_exposure_silences_mismatch () =
  (* hand the certificate the exposure the static pass missed and the
     observed edge lands inside the blast radius again *)
  let certs =
    Check.Certificate.of_findings
      ~exposures:[ ("lib/check/fixture_spg.ml", [ ("net-slow", "red") ]) ]
      ~files:[ "lib/check/fixture_spg.ml" ] []
  in
  let res =
    E.explore ~budget:(budget ~schedules:50) ~certs (scenario "spg-alias-blindspot")
  in
  check_int "no spg mismatch once exposed" 0 (List.length (spg_mismatches res.E.findings))

let test_staleness_warning_nongating () =
  (* a static red exposure the runs never observe red: reported as a
     warning, which does not gate under the checker's discipline *)
  let certs =
    Check.Certificate.of_findings
      ~exposures:[ ("lib/check/fixture_spg.ml", [ ("net-slow", "green"); ("net-slow", "red") ]) ]
      ~files:[ "lib/check/fixture_spg.ml" ] []
  in
  (* the fixture's observed edge IS red, so force the never-observed
     case by pointing the scenario at a module with no waits at all *)
  let sc =
    {
      (scenario "spg-alias-blindspot") with
      Check.Scenario.allow = Check.Scenario.allow_all;
    }
  in
  let res = E.explore ~budget:(budget ~schedules:50) ~certs sc in
  let stale = List.filter (fun f -> f.F.rule = F.spg_stale_edge) res.E.findings in
  check_int "one staleness warning" 1 (List.length stale);
  check_bool "warning severity" true
    (List.for_all (fun f -> f.F.severity = F.Warning) stale);
  check_rules "warnings do not gate" []
    (rules (F.gating ~strict:false res.E.findings))

let test_jobs_agree_on_spg_findings () =
  (* the per-(file, color) edge accumulator merges commutatively, so
     parallel and serial exploration report identical findings *)
  let certs = Check.Certificate.of_findings ~files:[ "lib/check/fixture_spg.ml" ] [] in
  let run jobs =
    (E.explore ~budget:(budget ~schedules:50) ~certs ~jobs (scenario "spg-alias-blindspot"))
      .E.findings
  in
  Alcotest.(check (list string)) "jobs-independent"
    (List.map F.to_string (run 1))
    (List.map F.to_string (run 2))

let suite =
  [
    ( "spg.fixtures",
      [
        Alcotest.test_case "disk bare wait flagged" `Quick test_disk_bare_wait_flagged;
        Alcotest.test_case "disk deadline certified" `Quick test_disk_deadline_certified;
        Alcotest.test_case "net single peer flagged" `Quick test_net_single_peer_flagged;
        Alcotest.test_case "net broadcast quorum green" `Quick
          test_net_broadcast_quorum_green;
        Alcotest.test_case "tainted arity flagged" `Quick test_tainted_arity_flagged;
        Alcotest.test_case "untainted arity clean" `Quick test_untainted_arity_clean;
        Alcotest.test_case "uncovered and_ flagged" `Quick test_and_uncovered_flagged;
        Alcotest.test_case "or_ timer escape clean" `Quick test_or_timer_escape_clean;
      ] );
    ( "spg.tree",
      [
        Alcotest.test_case "self-lint clean" `Quick test_tree_self_lint_clean;
        Alcotest.test_case "server.ml red disk exposure" `Quick
          test_tree_server_red_disk_exposure;
        Alcotest.test_case "blindspot file unexposed" `Quick
          test_tree_blindspot_file_unexposed;
        Alcotest.test_case "certificate volume" `Quick test_tree_certificate_volume;
        Alcotest.test_case "deterministic output" `Quick test_tree_deterministic_output;
        Alcotest.test_case "stable finding ids" `Quick test_stable_ids;
      ] );
    ( "spg.cross-check",
      [
        Alcotest.test_case "exposure queries" `Quick test_certificate_exposure_queries;
        Alcotest.test_case "blindspot mismatch" `Quick test_blindspot_mismatch;
        Alcotest.test_case "no fault, no mismatch" `Quick
          test_blindspot_needs_injected_fault;
        Alcotest.test_case "exposure silences mismatch" `Quick
          test_blindspot_exposure_silences_mismatch;
        Alcotest.test_case "staleness warning non-gating" `Quick
          test_staleness_warning_nongating;
        Alcotest.test_case "jobs-independent findings" `Quick
          test_jobs_agree_on_spg_findings;
      ] );
  ]
