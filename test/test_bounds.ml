(* Tests for the depfast-bounds pass and its dynamic cross-check: each
   fixture pair has a flagged variant and a bounded twin differing only
   in the evidence the pass looks for, plus regressions pinning the
   real tree (rethink_like flagged, pooled Net rings certified clean),
   stable finding ids, and the gauge sanitizer's certificate-mismatch
   on the seeded leaky-backlog scenario. *)

module F = Analysis.Finding
module B = Analysis.Bounds
module G = Analysis.Growth
module E = Check.Explore

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_rules = Alcotest.(check (list string))

let rules fs = List.sort_uniq compare (List.map (fun f -> f.F.rule) fs)

let fixture name =
  let cands = [ Filename.concat "fixtures" name; Filename.concat "test/fixtures" name ] in
  match List.find_opt Sys.file_exists cands with
  | Some p -> p
  | None -> Alcotest.fail ("fixture not found: " ^ name)

let analyze name = B.analyze_files [ fixture name ]

let cert_for certs ~site ~kind =
  List.find_opt (fun c -> c.B.c_site = site && c.B.c_kind = kind) certs

let require_cert certs ~site ~kind ~verdict =
  match cert_for certs ~site ~kind with
  | Some c ->
    check_bool
      (Printf.sprintf "%s %s verdict" site kind)
      true
      (c.B.c_verdict = verdict);
    c
  | None -> Alcotest.failf "no %s certificate for site %s" kind site

(* ------------------------------------------------------------------ *)
(* growth: bounded ring vs unbounded append, behind an RPC handler *)

let test_ring_unbounded_flagged () =
  let fs, certs = analyze "bounds_ring_bad.ml" in
  check_rules "append with no drain or cap" [ F.unbounded_growth ] (rules fs);
  let c =
    require_cert certs ~site:"Bounds_ring_bad.outbox" ~kind:"queue" ~verdict:G.Flagged
  in
  check_int "sited at the growth op" 7 c.B.c_line

let test_ring_capacity_certified () =
  let fs, certs = analyze "bounds_ring_ok.ml" in
  check_rules "capacity check is evidence" [] (rules fs);
  let c =
    require_cert certs ~site:"Bounds_ring_ok.ring" ~kind:"queue" ~verdict:G.Bounded
  in
  check_bool "evidence names the check" true
    (String.length c.B.c_evidence > 0
    && String.sub c.B.c_evidence 0 14 = "capacity check")

(* ------------------------------------------------------------------ *)
(* admission control: the batched-leader shape — a capacity-checked
   admission queue behind the RPC handler plus a cons-accumulated
   forming buffer reset at flush — vs the twin with the evidence gone *)

let test_admission_unchecked_flagged () =
  let fs, certs = analyze "bounds_admission_bad.ml" in
  check_rules "unchecked admit and never-reset batch buffer"
    [ F.unbounded_growth ] (rules fs);
  check_int "both growth sites flagged" 2 (List.length fs);
  ignore
    (require_cert certs ~site:"Bounds_admission_bad.admit_q" ~kind:"queue"
       ~verdict:G.Flagged);
  ignore (require_cert certs ~site:".forming" ~kind:"cons" ~verdict:G.Flagged)

let test_admission_checked_certified () =
  let fs, certs = analyze "bounds_admission_ok.ml" in
  check_rules "depth check and per-flush reset are evidence" [] (rules fs);
  let c =
    require_cert certs ~site:"Bounds_admission_ok.admit_q" ~kind:"queue"
      ~verdict:G.Bounded
  in
  check_bool "evidence names the capacity check" true
    (String.length c.B.c_evidence > 14
    && String.sub c.B.c_evidence 0 14 = "capacity check");
  let c = require_cert certs ~site:".forming" ~kind:"cons" ~verdict:G.Bounded in
  check_bool "evidence names the reset" true
    (String.length c.B.c_evidence > 5 && String.sub c.B.c_evidence 0 5 = "reset")

(* ------------------------------------------------------------------ *)
(* timeout coverage: naked quorum wait vs deadline-guarded twin *)

let test_naked_quorum_wait_flagged () =
  let fs, certs = analyze "bounds_wait_bad.ml" in
  check_rules "untimed quorum wait on the handler path" [ F.missing_deadline ]
    (rules fs);
  check_bool "warning, not error" true
    (List.for_all (fun f -> f.F.severity = F.Warning) fs);
  ignore (require_cert certs ~site:"q" ~kind:"quorum-wait" ~verdict:G.Flagged)

let test_deadline_guarded_wait_certified () =
  let fs, certs = analyze "bounds_wait_ok.ml" in
  check_rules "wait_timeout discharges the obligation" [] (rules fs);
  let c = require_cert certs ~site:"q" ~kind:"quorum-wait" ~verdict:G.Bounded in
  Alcotest.(check string) "evidence" "deadline via Sched.wait_timeout" c.B.c_evidence

(* ------------------------------------------------------------------ *)
(* retry coverage: tight resend loop vs capped backoff twin.  Both
   fixtures draw the per-file red-wait (wait_timeout on a bare rpc
   completion), so assertions stay on the Bounds pass output alone. *)

let test_unbounded_retry_flagged () =
  let fs, certs = analyze "bounds_retry_bad.ml" in
  check_bool "tight Timed_out resend loop flagged" true
    (List.exists
       (fun f ->
         f.F.rule = F.unbounded_retry
         && (match f.F.loc with F.File { line; _ } -> line = 5 | F.Node _ -> false))
       fs);
  ignore
    (require_cert certs ~site:"Bounds_retry_bad.send" ~kind:"retry" ~verdict:G.Flagged)

let test_capped_backoff_retry_certified () =
  let fs, certs = analyze "bounds_retry_ok.ml" in
  check_bool "no retry finding" false (List.mem F.unbounded_retry (rules fs));
  let c =
    require_cert certs ~site:"Bounds_retry_ok.send" ~kind:"retry" ~verdict:G.Bounded
  in
  Alcotest.(check string) "both kinds of evidence" "attempt bound and backoff sleep"
    c.B.c_evidence

(* ------------------------------------------------------------------ *)
(* the real tree: rethink_like stays flagged (acknowledged by pragma),
   the pooled Net outbox rings certify clean, and the library violates
   none of its own bounds rules — lib/check included *)

let rec ml_files_under dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun name ->
         let p = Filename.concat dir name in
         if Sys.is_directory p then ml_files_under p
         else if Filename.check_suffix name ".ml" && not (Filename.check_suffix name ".pp.ml")
         then [ p ]
         else [])

let tree () =
  match List.find_opt Sys.file_exists [ "../lib"; "lib" ] with
  | None -> None (* sources not materialized in this sandbox *)
  | Some root -> Some (B.analyze_files (List.sort compare (ml_files_under root)))

let flagged_in fs suffix =
  List.exists
    (fun f ->
      f.F.rule = F.unbounded_growth
      && match f.F.loc with F.File { file; _ } -> Filename.basename file = suffix | F.Node _ -> false)
    fs

let test_tree_rethink_like_flagged () =
  match tree () with
  | None -> ()
  | Some (fs, _) ->
    check_bool "rethink_like backlog flagged" true (flagged_in fs "rethink_like.ml");
    check_bool "shared baseline helpers flagged" true (flagged_in fs "common.ml")

let test_tree_self_lint_clean () =
  (* every flagged growth site in the library carries its pragma, so
     nothing gates — the self-lint covering lib/check with the rest *)
  match tree () with
  | None -> ()
  | Some (fs, _) ->
    let bad = F.gating ~strict:true fs in
    if bad <> [] then
      Alcotest.failf "library violates its own bounds rules:\n%s"
        (String.concat "\n" (List.map F.to_string bad))

let test_tree_net_rings_certified () =
  match tree () with
  | None -> ()
  | Some (fs, certs) ->
    check_bool "pooled Net rings not flagged" false (flagged_in fs "net.ml");
    let bounded_counter file =
      List.exists
        (fun c ->
          Filename.basename c.B.c_file = file
          && c.B.c_kind = "counter-window" && c.B.c_verdict = G.Bounded)
        certs
    in
    check_bool "net.ml ring fill counter certified" true (bounded_counter "net.ml");
    check_bool "server.ml inflight window certified" true (bounded_counter "server.ml");
    check_bool "seeded fixture backlog statically certified" true
      (List.exists
         (fun c -> c.B.c_site = "Fixtures.backlog" && c.B.c_verdict = G.Bounded)
         certs)

let test_tree_admission_certified () =
  (* the real leader: the admission queue behind handle_client_request
     and the batcher's forming buffer must both certify Bounded — the
     depth check at the enqueue site and the wholesale reset at flush
     are the evidence, with no new pragmas *)
  match tree () with
  | None -> ()
  | Some (_, certs) ->
    let bounded ~site ~kind =
      List.exists
        (fun c ->
          Filename.basename c.B.c_file = "server.ml"
          && c.B.c_site = site && c.B.c_kind = kind && c.B.c_verdict = G.Bounded)
        certs
    in
    check_bool "admission queue certified bounded" true
      (bounded ~site:".pending_q" ~kind:"queue");
    check_bool "batcher forming buffer certified bounded" true
      (bounded ~site:".forming" ~kind:"cons")

(* ------------------------------------------------------------------ *)
(* stable ids: deterministic across runs, distinct across passes *)

let test_stable_ids () =
  let fs, _ = analyze "bounds_ring_bad.ml" in
  let f = List.hd fs in
  Alcotest.(check string) "deterministic"
    (F.stable_id ~pass:"bounds" f)
    (F.stable_id ~pass:"bounds" f);
  check_bool "pass name is part of the identity" true
    (F.stable_id ~pass:"bounds" f <> F.stable_id ~pass:"lint" f)

(* ------------------------------------------------------------------ *)
(* certificate: an allowed growth finding blocks bounded_clean but not
   the wait-structure clean *)

let test_bounded_clean_vs_clean () =
  let finding =
    {
      (F.v ~rule:F.unbounded_growth ~severity:F.Warning
         ~loc:(F.File { file = "lib/x/leaky.ml"; line = 3 })
         "backlog grows")
      with
      F.allowed = true;
    }
  in
  let certs = Check.Certificate.of_findings ~files:[ "lib/x/leaky.ml" ] [ finding ] in
  check_bool "pragma keeps the wait-structure certificate clean" true
    (Check.Certificate.clean certs "lib/x/leaky.ml");
  check_bool "but acknowledged growth is never bounded-clean" false
    (Check.Certificate.bounded_clean certs "lib/x/leaky.ml");
  Alcotest.(check (list string)) "recorded" [ "lib/x/leaky.ml" ]
    (Check.Certificate.growth_flagged_files certs)

(* ------------------------------------------------------------------ *)
(* the dynamic half: exploring leaky-backlog overflows the gauge, and
   with a certificate holding the fixture file clean the overflow
   escalates to certificate-mismatch *)

let scenario name =
  match Check.Registry.find name with
  | Some sc -> sc
  | None -> Alcotest.failf "scenario %s not registered" name

let budget = { E.default_budget with E.max_schedules = 200 }

let test_gauge_overflow_detected () =
  let res = E.explore ~budget (scenario "leaky-backlog") in
  check_bool "gauge overflow reported" true
    (List.mem F.queue_gauge_overflow (rules res.E.findings));
  check_bool "no certificate, no mismatch" false
    (List.mem F.certificate_mismatch (rules res.E.findings))

let test_gauge_certificate_mismatch () =
  (* statically the consumer's Queue.pop certifies the backlog bounded;
     dynamically the consumer parks on a gate that never fires, so the
     producer overruns the cap — exactly the gap the gauge closes *)
  let certs = Check.Certificate.of_findings ~files:[ "lib/check/fixtures.ml" ] [] in
  check_bool "fixture bounded-clean on paper" true
    (Check.Certificate.bounded_clean certs "lib/check/fixtures.ml");
  let res = E.explore ~budget ~certs (scenario "leaky-backlog") in
  let mm = List.filter (fun f -> f.F.rule = F.certificate_mismatch) res.E.findings in
  check_int "one mismatch for the gauge" 1 (List.length mm);
  check_bool "error severity" true
    (List.for_all (fun f -> f.F.severity = F.Error) mm);
  check_bool "watermark past the declared cap" true
    (List.exists
       (fun (o : Check.Sanitizer.overflow) ->
         o.Check.Sanitizer.o_label = "fx.backlog"
         && o.Check.Sanitizer.o_watermark > o.Check.Sanitizer.o_cap)
       (let r = E.run_one (scenario "leaky-backlog") ~prefix:[||] ~budget in
        r.E.r_overflows))

let test_gating_registry_gauge_clean () =
  (* the gauge sanitizer must stay silent on every gating scenario *)
  let sc = scenario "quorum-majority" in
  let res = E.explore ~budget:{ E.default_budget with E.max_schedules = 300 } sc in
  check_bool "no overflows on a clean scenario" false
    (List.mem F.queue_gauge_overflow (rules res.E.findings))

let suite =
  [
    ( "bounds.growth",
      [
        Alcotest.test_case "unbounded ring flagged" `Quick test_ring_unbounded_flagged;
        Alcotest.test_case "capacity-checked ring certified" `Quick
          test_ring_capacity_certified;
        Alcotest.test_case "unchecked admission flagged" `Quick
          test_admission_unchecked_flagged;
        Alcotest.test_case "checked admission certified" `Quick
          test_admission_checked_certified;
      ] );
    ( "bounds.timeout",
      [
        Alcotest.test_case "naked quorum wait flagged" `Quick
          test_naked_quorum_wait_flagged;
        Alcotest.test_case "deadline-guarded wait certified" `Quick
          test_deadline_guarded_wait_certified;
        Alcotest.test_case "unbounded retry flagged" `Quick test_unbounded_retry_flagged;
        Alcotest.test_case "capped backoff certified" `Quick
          test_capped_backoff_retry_certified;
      ] );
    ( "bounds.tree",
      [
        Alcotest.test_case "rethink_like stays flagged" `Quick
          test_tree_rethink_like_flagged;
        Alcotest.test_case "self-lint clean incl. lib/check" `Quick
          test_tree_self_lint_clean;
        Alcotest.test_case "pooled Net rings certified" `Quick
          test_tree_net_rings_certified;
        Alcotest.test_case "admission queue + batch buffer certified" `Quick
          test_tree_admission_certified;
        Alcotest.test_case "stable finding ids" `Quick test_stable_ids;
      ] );
    ( "bounds.gauge",
      [
        Alcotest.test_case "bounded_clean vs clean" `Quick test_bounded_clean_vs_clean;
        Alcotest.test_case "gauge overflow detected" `Quick test_gauge_overflow_detected;
        Alcotest.test_case "certificate mismatch on leaky backlog" `Quick
          test_gauge_certificate_mismatch;
        Alcotest.test_case "clean scenario stays silent" `Quick
          test_gating_registry_gauge_clean;
      ] );
  ]
